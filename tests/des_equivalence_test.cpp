// Cross-implementation DES equivalence: the scalar SP-table fast path and
// the bitsliced 64-lane path must be bit-identical to the retained
// per-bit FIPS 46-3 reference for every key and block. Random sweeps here
// are deterministic (fixed xoshiro seeds) and wide enough that every one
// of the 2^6 S-box input rows is exercised many times over in every box
// and round (16 rounds x 8 boxes x thousands of blocks of uniform input).

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "crypto/des.hpp"
#include "crypto/des_bitslice.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace buscrypt::crypto {
namespace {

bytes random_bytes(rng& r, std::size_t n) {
  bytes b(n);
  r.fill(b);
  return b;
}

// The chunked schedule must keep the key-schedule LRU cache entry size of
// the packed 16 x u64 format it replaced.
static_assert(sizeof(des_schedule) == 16 * sizeof(u64),
              "des_schedule must not outgrow the packed 48-bit schedule");

TEST(DesEquivalence, ScalarFastMatchesReference) {
  rng r(0xDE5'0001);
  for (int k = 0; k < 64; ++k) {
    const bytes key = random_bytes(r, 8);
    const des fast(key);
    const des_reference ref(key);
    for (int i = 0; i < 32; ++i) {
      const u64 x = r.next_u64();
      EXPECT_EQ(fast.encrypt_u64(x), ref.encrypt_u64(x));
      EXPECT_EQ(fast.decrypt_u64(x), ref.decrypt_u64(x));
    }
  }
}

TEST(DesEquivalence, BitslicedMatchesReferenceEveryWidth) {
  rng r(0xDE5'0002);
  const bytes key = random_bytes(r, 8);
  const des fast(key);
  const des_reference ref(key);
  const bitslice::des_pass enc{&fast.schedule(), false};
  const bitslice::des_pass dec{&fast.schedule(), true};

  // Drive the wide circuit directly at every lane count 1..64, so the
  // tiering threshold in encrypt_blocks can't hide a narrow-width bug.
  for (std::size_t n = 1; n <= bitslice::k_des_lanes; ++n) {
    const bytes in = random_bytes(r, n * 8);
    bytes out(n * 8), expect(n * 8);
    bitslice::des_crypt_wide({&enc, 1}, in, out);
    ref.encrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "encrypt width " << n;
    bitslice::des_crypt_wide({&dec, 1}, in, out);
    ref.decrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "decrypt width " << n;
  }
}

TEST(DesEquivalence, WideGroupKindsMatchReference) {
  rng r(0xDE5'0005);
  const bytes key = random_bytes(r, 8);
  const des fast(key);
  const des_reference ref(key);
  const bitslice::des_pass enc{&fast.schedule(), false};
  const bitslice::des_pass dec{&fast.schedule(), true};

  // Widths chosen to exercise every lane-group kind the host dispatch can
  // pick — 128 (SSE2/VL), 256 (AVX2/VL), 512 (AVX-512F) — plus partial
  // groups, group boundaries +-1 and mixed full-group/remainder runs.
  // On hosts without the wider kinds the same widths fall through to
  // narrower groups, so the dispatch seams are covered either way.
  for (std::size_t n :
       {65u, 96u, 127u, 128u, 129u, 192u, 255u, 256u, 257u, 300u, 511u, 512u, 513u, 640u, 1024u}) {
    const bytes in = random_bytes(r, n * 8);
    bytes out(n * 8), expect(n * 8);
    bitslice::des_crypt_wide({&enc, 1}, in, out);
    ref.encrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "encrypt width " << n;
    bitslice::des_crypt_wide({&dec, 1}, in, out);
    ref.decrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "decrypt width " << n;
  }
}

TEST(TripleDesEquivalence, WideGroupKindsMatchReference) {
  rng r(0x3DE5'0003);
  const bytes key = random_bytes(r, 24);
  const triple_des fast(key);
  const triple_des_reference ref(key);
  // The EDE pass chain through each wide kind (one transpose in/out, three
  // keyed passes) against the per-stage reference.
  for (std::size_t n : {129u, 256u, 300u, 512u, 640u}) {
    const bytes in = random_bytes(r, n * 8);
    bytes out(n * 8), expect(n * 8);
    fast.encrypt_blocks(in, out);
    ref.encrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "3des encrypt width " << n;
    fast.decrypt_blocks(in, out);
    ref.decrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "3des decrypt width " << n;
  }
}

TEST(DesEquivalence, BulkTieringMatchesReference) {
  rng r(0xDE5'0003);
  const bytes key = random_bytes(r, 8);
  const des fast(key);
  const des_reference ref(key);
  // Sizes straddling the scalar/bitsliced split and the 64-lane chunking:
  // pure-scalar runs, exactly one full group, a full group plus a scalar
  // tail, and multi-group runs.
  for (std::size_t n : {1u, 7u, 47u, 48u, 63u, 64u, 65u, 100u, 127u, 128u, 200u}) {
    const bytes in = random_bytes(r, n * 8);
    bytes out(n * 8), expect(n * 8);
    fast.encrypt_blocks(in, out);
    ref.encrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "encrypt blocks " << n;
    fast.decrypt_blocks(in, out);
    ref.decrypt_blocks(in, expect);
    EXPECT_EQ(out, expect) << "decrypt blocks " << n;
  }
}

TEST(DesEquivalence, BulkInPlaceAliasing) {
  rng r(0xDE5'0004);
  const bytes key = random_bytes(r, 8);
  const des fast(key);
  const bytes in = random_bytes(r, 128 * 8);
  bytes expect(in.size());
  fast.encrypt_blocks(in, expect);
  bytes buf = in;
  fast.encrypt_blocks(buf, buf); // in == out must be supported
  EXPECT_EQ(buf, expect);
  fast.decrypt_blocks(buf, buf);
  EXPECT_EQ(buf, in);
}

TEST(TripleDesEquivalence, BitslicedEdeMatchesReference) {
  rng r(0x3DE5'0001);
  for (std::size_t key_len : {16u, 24u}) {
    const bytes key = random_bytes(r, key_len);
    const triple_des fast(key);
    const triple_des_reference ref(key);
    for (std::size_t n : {1u, 23u, 24u, 64u, 65u, 128u}) {
      const bytes in = random_bytes(r, n * 8);
      bytes out(n * 8), expect(n * 8);
      fast.encrypt_blocks(in, out);
      ref.encrypt_blocks(in, expect);
      EXPECT_EQ(out, expect) << "3des encrypt, key " << key_len << ", blocks " << n;
      fast.decrypt_blocks(in, out);
      ref.decrypt_blocks(in, expect);
      EXPECT_EQ(out, expect) << "3des decrypt, key " << key_len << ", blocks " << n;
    }
  }
}

TEST(TripleDesEquivalence, KeyingOptionEdges) {
  rng r(0x3DE5'0002);
  const bytes k1 = random_bytes(r, 8);

  // K1 == K2 == K3 degenerates to single DES — including through the
  // bitsliced bulk path, where the E-D-E pass sequence must cancel.
  bytes k111(k1);
  k111.insert(k111.end(), k1.begin(), k1.end());
  k111.insert(k111.end(), k1.begin(), k1.end());
  const triple_des degenerate(k111);
  const des single(k1);
  const bytes in = random_bytes(r, 64 * 8);
  bytes out3(in.size()), out1(in.size());
  degenerate.encrypt_blocks(in, out3);
  single.encrypt_blocks(in, out1);
  EXPECT_EQ(out3, out1);

  // 2-key EDE (K1,K2,K1) equals the explicit 3-key spelling of the same.
  const bytes k2 = random_bytes(r, 8);
  bytes two_key(k1);
  two_key.insert(two_key.end(), k2.begin(), k2.end());
  bytes three_key = two_key;
  three_key.insert(three_key.end(), k1.begin(), k1.end());
  const triple_des ede2(two_key);
  const triple_des ede3(three_key);
  bytes a(in.size()), b(in.size());
  ede2.encrypt_blocks(in, a);
  ede3.encrypt_blocks(in, b);
  EXPECT_EQ(a, b);
  ede2.decrypt_blocks(a, b);
  EXPECT_EQ(b, in);
}

} // namespace
} // namespace buscrypt::crypto
