// Tests for the common substrate: bit operations, hex codec, RNG, tables.

#include "common/bitops.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

#include <gtest/gtest.h>

namespace buscrypt {
namespace {

TEST(Bitops, RotationRoundTrips) {
  const u32 x = 0xDEADBEEF;
  for (unsigned n = 0; n < 32; ++n) {
    EXPECT_EQ(rotr32(rotl32(x, n), n), x) << n;
  }
  const u64 y = 0x0123456789ABCDEFULL;
  for (unsigned n = 0; n < 64; ++n) {
    EXPECT_EQ(rotr64(rotl64(y, n), n), y) << n;
  }
}

TEST(Bitops, BigEndianLoadStore32) {
  u8 buf[4];
  store_be32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
}

TEST(Bitops, BigEndianLoadStore64) {
  u8 buf[8];
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);
}

TEST(Bitops, LittleEndianLoadStore) {
  u8 buf[8];
  store_le32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
  store_le64(buf, 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(buf[0], 0x18);
  EXPECT_EQ(load_le64(buf), 0xA1B2C3D4E5F60718ULL);
}

TEST(Bitops, XorBytesIsInvolutive) {
  bytes a = {1, 2, 3, 4};
  const bytes b = {0xFF, 0x00, 0xAA, 0x55};
  bytes orig = a;
  xor_bytes(a, b);
  xor_bytes(a, b);
  EXPECT_EQ(a, orig);
}

TEST(Bitops, HammingDistance) {
  const bytes a = {0x00, 0xFF};
  const bytes b = {0x01, 0xFF};
  EXPECT_EQ(hamming_bits(a, b), 1u);
  EXPECT_EQ(hamming_bits(a, a), 0u);
}

TEST(Bitops, PopcountBytes) {
  const bytes a = {0xFF, 0x0F, 0x01};
  EXPECT_EQ(popcount_bytes(a), 8u + 4u + 1u);
}

TEST(Bitops, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_EQ(log2_pow2(64), 6u);
}

TEST(Hex, RoundTrip) {
  const bytes data = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  EXPECT_EQ(to_hex(data), "deadbeef007f");
  EXPECT_EQ(from_hex("deadbeef007f"), data);
  EXPECT_EQ(from_hex("DEADBEEF007F"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

TEST(Hex, HexdumpShape) {
  const bytes data(40, 0x41); // 'A'
  const std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 3);
}

TEST(Rng, Deterministic) {
  rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  rng r(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, ChanceExtremes) {
  rng r(9);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, FillProducesBalancedBits) {
  rng r(11);
  bytes buf(4096);
  r.fill(buf);
  const std::size_t ones = popcount_bytes(buf);
  EXPECT_NEAR(static_cast<double>(ones), 4096 * 4.0, 4096 * 0.5);
}

TEST(Table, AlignsAndFormats) {
  table t({"engine", "overhead"});
  t.add_row({"plaintext", "+0.0%"});
  t.add_row({"AEGIS", "+25.0%"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| engine    |"), std::string::npos);
  EXPECT_NE(s.find("+25.0%"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::num(1234567ull), "1,234,567");
  EXPECT_EQ(table::pct(0.25, 1), "+25.0%");
  EXPECT_EQ(table::pct(-0.031, 1), "-3.1%");
}

} // namespace
} // namespace buscrypt
