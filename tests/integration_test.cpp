// Cross-module integration: the full pipeline the survey's introduction
// describes — software delivered over an insecure network, installed
// encrypted in external memory, executed through an EDU, probed by an
// attacker — plus consistency checks across the engine family.

#include "attack/known_plaintext.hpp"
#include "attack/probe.hpp"
#include "common/bitops.hpp"
#include "compress/entropy.hpp"
#include "edu/soc.hpp"
#include "keymgmt/session.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace buscrypt {
namespace {

using edu::engine_kind;
using edu::secure_soc;
using edu::soc_config;

bytes firmware_image(std::size_t n, u64 seed) {
  rng r(seed);
  bytes img(n);
  static constexpr u32 words[] = {0xE5921000, 0xE5832004, 0x47702000, 0xB510F000};
  for (std::size_t off = 0; off + 4 <= n; off += 4)
    store_le32(&img[off], words[r.below(4)] ^ static_cast<u32>(r.below(8)));
  const char* banner = "SECRET LICENSED SOFTWARE DO NOT COPY ";
  for (std::size_t i = 0; i < 38 && i + 256 < n; ++i)
    img[256 + i] = static_cast<u8>(banner[i]);
  return img;
}

soc_config default_cfg() {
  soc_config cfg;
  cfg.l1.size = 8 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  return cfg;
}

TEST(Integration, DeliveryToExecutionPipeline) {
  // Fig. 1 + Fig. 2c glued together: network delivery, then bus encryption.
  rng r(1);
  const keymgmt::chip_manufacturer maker(r, 384);
  const keymgmt::software_editor editor(firmware_image(32 * 1024, 2));
  const keymgmt::secure_processor proc(maker.provision_private_key());

  keymgmt::insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  const bytes sw = proc.receive(editor.deliver(em, ch, r));

  secure_soc soc(engine_kind::xom_aes, default_cfg());
  soc.load_image(0, sw);

  sim::recording_probe probe;
  soc.attach_probe(probe);
  const auto w = sim::make_sequential_code(30'000, 32 * 1024, 500, 3);
  const sim::run_stats rs = soc.run(w);
  EXPECT_GT(rs.instructions, 0u);

  // Neither channel nor bus exposed the plaintext banner.
  const bytes banner(sw.begin() + 256, sw.begin() + 256 + 38);
  EXPECT_FALSE(keymgmt::channel_leaks(ch, banner));
  EXPECT_EQ(attack::pattern_sightings(probe, banner), 0u);
  // But execution still worked on plaintext inside the trusted boundary.
  EXPECT_EQ(soc.read_back(0, sw.size()), sw);
}

TEST(Integration, EveryEngineComputesTheSameResults) {
  // Functional equivalence: the memory image after the same write-heavy
  // workload must be identical across engines (crypto must not corrupt).
  const auto w = sim::make_data_rw(10'000, 64 * 1024, 0.4, 0.5, 4, 4);
  const bytes img = firmware_image(16 * 1024, 5);

  bytes reference;
  for (engine_kind kind : edu::all_engines()) {
    secure_soc soc(kind, default_cfg());
    soc.load_image(0, img);
    // Data region used by the workload.
    soc.load_image(1 << 20, bytes(64 * 1024, 0));
    (void)soc.run(w);
    const bytes final_data = soc.read_back(1 << 20, 64 * 1024);
    if (reference.empty()) {
      reference = final_data;
    } else {
      EXPECT_EQ(final_data, reference) << edu::engine_name(kind);
    }
  }
}

TEST(Integration, EcbEngineLeaksStructureOnTheChip) {
  // The DRAM image under ECB shows the plaintext's repetition; CBC-line
  // and stream engines do not — Section 2.2's mode comparison end-to-end.
  const bytes img(16 * 1024, 0x42); // worst case: constant image
  auto census = [&](engine_kind kind) {
    secure_soc soc(kind, default_cfg());
    soc.load_image(0, img);
    soc.flush();
    const auto raw = soc.memory().raw();
    return attack::analyze_ecb(std::span<const u8>(raw).subspan(0, img.size()), 16)
        .exposure();
  };
  EXPECT_GT(census(engine_kind::block_ecb_aes), 0.9);
  EXPECT_LT(census(engine_kind::block_cbc_aes), 0.05);
  EXPECT_LT(census(engine_kind::stream_otp), 0.05);
  EXPECT_LT(census(engine_kind::aegis_cbc), 0.05);
}

TEST(Integration, StreamBeatsBlockOnMissLatency) {
  // Section 2.2's core performance claim, measured on the full SoC.
  const auto w = sim::make_jumpy_code(40'000, 256 * 1024, 0.15, 6);
  const bytes img = firmware_image(256 * 1024, 7);

  auto cycles_for = [&](engine_kind kind) {
    secure_soc soc(kind, default_cfg());
    soc.load_image(0, img);
    return soc.run(w).total_cycles;
  };

  const cycles plain = cycles_for(engine_kind::plaintext);
  const cycles stream = cycles_for(engine_kind::stream_otp);
  const cycles serial = cycles_for(engine_kind::stream_serial);
  const cycles block = cycles_for(engine_kind::block_cbc_aes);

  EXPECT_LT(plain, stream);
  EXPECT_LT(stream, serial); // parallel keystream is the whole point
  EXPECT_LT(stream, block);  // stream beats a non-pipelined block engine
}

TEST(Integration, GilmontNearPlaintextOnSequentialCode) {
  // "< 2.5% in term of performance cost" — for its favourable workload.
  const auto w = sim::make_sequential_code(60'000, 192 * 1024, 0, 8);
  const bytes img = firmware_image(192 * 1024, 9);

  secure_soc base(engine_kind::plaintext, default_cfg());
  base.load_image(0, img);
  const auto base_rs = base.run(w);

  secure_soc gil(engine_kind::gilmont_3des, default_cfg());
  gil.load_image(0, img);
  const auto gil_rs = gil.run(w);

  EXPECT_LT(gil_rs.slowdown_vs(base_rs), 1.05);
}

TEST(Integration, CachesideTaxesHitsUnlikeBusSideEdu) {
  // Fig. 7b vs 7a: with a high hit rate, the cache-side EDU pays on every
  // access while the bus-side stream EDU pays only on misses.
  const auto w = sim::make_sequential_code(40'000, 4 * 1024, 0, 10); // tiny, hot
  const bytes img = firmware_image(8 * 1024, 11);

  auto run_kind = [&](engine_kind kind) {
    secure_soc soc(kind, default_cfg());
    soc.load_image(0, img);
    return soc.run(w).total_cycles;
  };
  const cycles busside = run_kind(engine_kind::stream_otp);
  const cycles cacheside = run_kind(engine_kind::cacheside_otp);
  EXPECT_GT(cacheside, busside);
}

TEST(Integration, WritePolicyInteractsWithRmw) {
  // Write-through caches forward every sub-block store to the EDU; with a
  // block engine each one costs a read-modify-write. Write-back absorbs
  // them into full-line evictions.
  soc_config wb = default_cfg();
  soc_config wt = default_cfg();
  wt.l1.write_back = false;
  wt.l1.write_allocate = false;

  const auto w = sim::make_data_rw(15'000, 32 * 1024, 0.4, 0.6, 4, 12);

  secure_soc soc_wb(engine_kind::xom_aes, wb);
  soc_wb.load_image(0, firmware_image(16 * 1024, 13));
  soc_wb.load_image(1 << 20, bytes(32 * 1024, 0));
  (void)soc_wb.run(w);
  const u64 rmw_wb = soc_wb.engine().stats().rmw_ops;

  secure_soc soc_wt(engine_kind::xom_aes, wt);
  soc_wt.load_image(0, firmware_image(16 * 1024, 13));
  soc_wt.load_image(1 << 20, bytes(32 * 1024, 0));
  (void)soc_wt.run(w);
  const u64 rmw_wt = soc_wt.engine().stats().rmw_ops;

  EXPECT_GT(rmw_wt, rmw_wb * 10 + 10);
}

TEST(Integration, CompressionShrinksBusTraffic) {
  const auto w = sim::make_jumpy_code(30'000, 128 * 1024, 0.1, 14);
  const bytes img = firmware_image(128 * 1024, 15);

  auto traffic = [&](engine_kind kind) {
    secure_soc soc(kind, default_cfg());
    soc.load_image(0, img);
    const u64 before = soc.external().bytes_read();
    (void)soc.run(w);
    return soc.external().bytes_read() - before;
  };
  const u64 raw = traffic(engine_kind::stream_otp);
  const u64 packed = traffic(engine_kind::compress_otp);
  EXPECT_LT(packed, raw);
}

} // namespace
} // namespace buscrypt
