// Transaction pipeline: batch-vs-scalar functional equivalence across every
// engine, multi-bank DRAM scheduling, the memory_port default adapter, the
// native overlap paths (stream_edu, keyslot engine), and the ring-buffer
// recording probe.

#include "edu/soc.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/mem_txn.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

namespace buscrypt {
namespace {

using namespace sim;
using edu::engine_kind;

// --- compile-time contracts --------------------------------------------------

static_assert(edu::engine_name(engine_kind::plaintext) == "plaintext");
static_assert(edu::engine_name(engine_kind::stream_otp) == "Stream-OTP");
static_assert(edu::engine_name(engine_kind::inline_keyslot) == "Keyslot-aes-ctr");
static_assert(edu::engine_name(engine_kind::inline_keyslot) == edu::keyslot_default_name);
static_assert(edu::all_engines().size() == 16);
static_assert(edu::all_engines().front() == engine_kind::plaintext);
static_assert(!mem_txn{}.is_write());

// --- memory_port default adapter ---------------------------------------------

/// Fixed-latency scalar-only port; batches must flow through the default
/// adapter in submission order.
class fixed_latency_port final : public memory_port {
 public:
  explicit fixed_latency_port(std::size_t size, cycles latency)
      : image_(size, 0), latency_(latency) {}

  cycles read(addr_t addr, std::span<u8> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = image_[addr + i];
    ++reads;
    return latency_;
  }
  cycles write(addr_t addr, std::span<const u8> in) override {
    for (std::size_t i = 0; i < in.size(); ++i) image_[addr + i] = in[i];
    ++writes;
    return latency_;
  }

  bytes image_;
  u64 reads = 0;
  u64 writes = 0;

 private:
  cycles latency_;
};

TEST(DefaultAdapter, SerialisesBatchThroughScalarPath) {
  fixed_latency_port port(1024, 30);
  bytes wr(16, 0xAB), rd1(16, 0), rd2(16, 0xFF);
  mem_txn batch[3] = {mem_txn::write_of(0, 0x40, wr),
                      mem_txn::read_of(1, 0x40, rd1),
                      mem_txn::read_of(2, 0x80, rd2)};
  port.submit(batch);

  EXPECT_EQ(port.writes, 1u);
  EXPECT_EQ(port.reads, 2u);
  // Functional order: the read at 0x40 must observe the write before it.
  EXPECT_EQ(rd1, bytes(16, 0xAB));
  EXPECT_EQ(rd2, bytes(16, 0x00));
  // Serial timing: completes are cumulative and monotone.
  EXPECT_EQ(batch[0].complete_cycle, 30u);
  EXPECT_EQ(batch[1].complete_cycle, 60u);
  EXPECT_EQ(batch[2].complete_cycle, 90u);
  EXPECT_EQ(port.drain(), 90u);
  EXPECT_EQ(port.drain(), 0u) << "drain resets the accumulator";
}

TEST(DefaultAdapter, ScatterGatherSegmentsAndByteCount) {
  fixed_latency_port port(1024, 5);
  bytes a(8, 1), b(24, 2);
  mem_txn txn;
  txn.op = txn_op::write;
  txn.segments.push_back({0x00, a});
  txn.segments.push_back({0x100, b});
  EXPECT_EQ(txn.bytes(), 32u);
  std::span<mem_txn> batch(&txn, 1);
  port.submit(batch);
  EXPECT_EQ(port.drain(), 10u) << "one scalar call per segment";
  EXPECT_EQ(port.image_[0x100], 2);
}

// --- multi-bank DRAM ---------------------------------------------------------

dram_timing banked_timing(unsigned banks) {
  dram_timing t;
  t.banks = banks;
  return t;
}

TEST(MultiBankDram, BankOfInterleavesRows) {
  dram d(1 << 20, banked_timing(4));
  const std::size_t row = d.timing().row_size;
  EXPECT_EQ(d.bank_of(0), 0u);
  EXPECT_EQ(d.bank_of(row), 1u);
  EXPECT_EQ(d.bank_of(3 * row), 3u);
  EXPECT_EQ(d.bank_of(4 * row), 0u);
}

TEST(MultiBankDram, PerBankOpenRows) {
  dram d(1 << 20, banked_timing(2));
  const std::size_t row = d.timing().row_size;
  EXPECT_EQ(d.first_latency(0), d.timing().row_miss);       // bank 0 cold
  EXPECT_EQ(d.first_latency(row), d.timing().row_miss);     // bank 1 cold
  EXPECT_EQ(d.first_latency(64), d.timing().row_hit);       // bank 0 still open
  EXPECT_EQ(d.first_latency(2 * row), d.timing().row_miss); // bank 0 conflict
  EXPECT_EQ(d.first_latency(row + 64), d.timing().row_hit); // bank 1 untouched
  EXPECT_EQ(d.row_hits(), 2u);
  EXPECT_EQ(d.row_misses(), 3u);
}

TEST(MultiBankDram, RejectsZeroBanks) {
  EXPECT_THROW(dram(4096, banked_timing(0)), std::invalid_argument);
}

TEST(BankSchedule, DistinctBanksOverlapActivateLatency) {
  dram d(1 << 20, banked_timing(4));
  external_memory em(d);
  const std::size_t row = d.timing().row_size;

  bytes buf(4 * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < 4; ++i)
    batch.push_back(
        mem_txn::read_of(i, i * row, std::span<u8>(buf.data() + i * 32, 32)));
  em.submit(batch);

  // All four activates run concurrently (one per bank); only the 4-beat
  // bursts serialise on the bus: 46 + 4 * (4 * 2) = 78, not 4 * 54.
  const cycles burst = d.burst_cycles(32);
  EXPECT_EQ(em.drain(), d.timing().row_miss + 4 * burst);
}

TEST(BankSchedule, SameBankSerialisesLikeScalar) {
  dram d(1 << 20, banked_timing(4));
  external_memory em(d);
  const std::size_t stride = d.timing().row_size * 4; // same bank, new row

  bytes buf(4 * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < 4; ++i)
    batch.push_back(
        mem_txn::read_of(i, i * stride, std::span<u8>(buf.data() + i * 32, 32)));
  em.submit(batch);

  const cycles per_op = d.timing().row_miss + d.burst_cycles(32);
  EXPECT_EQ(em.drain(), 4 * per_op) << "bank conflicts leave nothing to overlap";
}

TEST(BankSchedule, SingleBankBatchMatchesScalarTiming) {
  const dram_timing t = banked_timing(1);
  dram d_scalar(1 << 20, t), d_batch(1 << 20, t);
  external_memory scalar(d_scalar), batched(d_batch);

  const addr_t addrs[] = {0, 64, 4096, 128, 1 << 16, 192};
  bytes buf(32);
  cycles scalar_total = 0;
  for (addr_t a : addrs) scalar_total += scalar.read(a, buf);

  bytes bufs(std::size(addrs) * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < std::size(addrs); ++i)
    batch.push_back(
        mem_txn::read_of(i, addrs[i], std::span<u8>(bufs.data() + i * 32, 32)));
  batched.submit(batch);

  EXPECT_EQ(batched.drain(), scalar_total);
}

TEST(BankSchedule, ProbeBeatsTimestampedFromSchedule) {
  dram d(1 << 20, banked_timing(4));
  external_memory em(d);
  recording_probe probe;
  em.attach(probe);
  const std::size_t row = d.timing().row_size;

  bytes buf(64);
  mem_txn batch[2] = {mem_txn::read_of(0, 0, std::span<u8>(buf.data(), 32)),
                      mem_txn::read_of(1, row, std::span<u8>(buf.data() + 32, 32))};
  em.submit(batch);
  (void)em.drain();

  ASSERT_EQ(probe.log().size(), 8u); // 4 beats per 32-byte burst
  // Beats are monotone and the second burst starts right after the first
  // releases the bus (its activate overlapped on the other bank).
  for (std::size_t i = 1; i < probe.log().size(); ++i)
    EXPECT_GE(probe.log()[i].at, probe.log()[i - 1].at);
  EXPECT_EQ(probe.log()[0].at, d.timing().row_miss);
  EXPECT_EQ(probe.log()[4].at, d.timing().row_miss + d.burst_cycles(32));
  EXPECT_EQ(probe.log()[4].addr, row);
}

// --- recording probe ring buffer ---------------------------------------------

TEST(RecordingProbe, UnboundedByDefault) {
  recording_probe p;
  for (u64 i = 0; i < 100; ++i) p.on_beat({i, i, false, cpu_master, {}});
  EXPECT_EQ(p.log().size(), 100u);
  EXPECT_EQ(p.beats_seen(), 100u);
  EXPECT_EQ(p.capacity(), 0u);
}

TEST(RecordingProbe, RingDropsOldestKeepsOrder) {
  recording_probe p(4);
  for (u64 i = 0; i < 10; ++i) p.on_beat({i, 0x100 + i, false, cpu_master, {}});
  EXPECT_EQ(p.beats_seen(), 10u);
  ASSERT_EQ(p.log().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p.log()[i].at, 6 + i) << "oldest-first after wrap";
    EXPECT_EQ(p.log()[i].addr, 0x106 + i);
  }
  // Keep observing after normalisation: order stays coherent.
  p.on_beat({10, 0x10A, false, cpu_master, {}});
  ASSERT_EQ(p.log().size(), 4u);
  EXPECT_EQ(p.log().back().at, 10u);
  EXPECT_EQ(p.log().front().at, 7u);
  p.clear();
  EXPECT_EQ(p.beats_seen(), 0u);
  EXPECT_TRUE(p.log().empty());
}

// --- batch-vs-scalar equivalence across every engine -------------------------

edu::soc_config pipeline_cfg(unsigned banks) {
  edu::soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  cfg.mem_timing.banks = banks;
  return cfg;
}

workload equivalence_workload() {
  // Random data mix with stores: touches many rows, exercises write paths.
  workload w = make_data_rw(4000, 128 * 1024, 0.6, 0.5, 8, 0xBA7C4);
  // Tack on a pointer chase so read-after-write and bank mixing both occur.
  workload chase = make_pointer_chase(1500, 128 * 1024, 0xBA7C5);
  w.accesses.insert(w.accesses.end(), chase.accesses.begin(), chase.accesses.end());
  return w;
}

class EngineBatchEquivalence : public ::testing::TestWithParam<engine_kind> {};

TEST_P(EngineBatchEquivalence, BatchedSubmissionMatchesScalarBytes) {
  const workload w = equivalence_workload();
  const edu::soc_config cfg = pipeline_cfg(4);
  const bytes image = [] {
    bytes img(256 * 1024);
    for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<u8>(i * 31 + 7);
    return img;
  }();

  edu::secure_soc scalar_soc(GetParam(), cfg);
  edu::secure_soc batched_soc(GetParam(), cfg);
  // First region is code (read-only under compress_otp), second is the
  // writable data region the workload stores into — same split run_engine
  // uses.
  scalar_soc.load_image(0, image);
  batched_soc.load_image(0, image);
  scalar_soc.load_image(1 << 20, bytes(256 * 1024, 0));
  batched_soc.load_image(1 << 20, bytes(256 * 1024, 0));

  const throughput_stats s = scalar_soc.run_throughput(w, 1);
  const throughput_stats b = batched_soc.run_throughput(w, 8);
  EXPECT_EQ(s.ops, b.ops);
  EXPECT_EQ(s.bytes, b.bytes);
  EXPECT_GT(s.ops, 100u) << "workload must actually exercise the pipeline";

  scalar_soc.flush();
  batched_soc.flush();

  // The survey's attacker-visible state: every DRAM byte must match.
  const std::span<const u8> ds = scalar_soc.memory().raw();
  const std::span<const u8> db = batched_soc.memory().raw();
  ASSERT_EQ(ds.size(), db.size());
  EXPECT_TRUE(std::equal(ds.begin(), ds.end(), db.begin()))
      << "batched path altered DRAM ciphertext for " << edu::engine_name(GetParam());

  // And the decrypt path agrees on the plaintext view of both regions.
  EXPECT_EQ(scalar_soc.read_back(0, image.size()),
            batched_soc.read_back(0, image.size()));
  EXPECT_EQ(scalar_soc.read_back(1 << 20, 256 * 1024),
            batched_soc.read_back(1 << 20, 256 * 1024));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineBatchEquivalence,
                         ::testing::ValuesIn(edu::all_engines()),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           std::string n(edu::engine_name(info.param));
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// --- native overlap paths deliver measurable throughput ----------------------

double bpc_for(engine_kind kind, std::size_t batch_txns) {
  edu::secure_soc soc(kind, pipeline_cfg(8));
  const workload w = make_jumpy_code(12'000, 256 * 1024, 0.15, 0x7117);
  soc.load_image(0, bytes(256 * 1024, 0x5A));
  return soc.run_throughput(w, batch_txns).bytes_per_cycle();
}

TEST(BatchThroughput, StreamOtpBatchedBeatsScalar) {
  const double scalar = bpc_for(engine_kind::stream_otp, 1);
  const double batched = bpc_for(engine_kind::stream_otp, 16);
  EXPECT_GT(batched, scalar * 1.10)
      << "keystream-parallel batch path should beat scalar issue";
}

TEST(BatchThroughput, InlineKeyslotBatchedBeatsScalar) {
  const double scalar = bpc_for(engine_kind::inline_keyslot, 1);
  const double batched = bpc_for(engine_kind::inline_keyslot, 16);
  EXPECT_GT(batched, scalar * 1.10)
      << "keyslot engine batch path should beat scalar issue";
}

TEST(BatchThroughput, PlaintextGainsFromBankOverlapAlone) {
  const double scalar = bpc_for(engine_kind::plaintext, 1);
  const double batched = bpc_for(engine_kind::plaintext, 16);
  EXPECT_GT(batched, scalar) << "multi-bank overlap alone should help";
}

TEST(BatchThroughput, BoundedProbeOnThroughputRunStaysBounded) {
  edu::secure_soc soc(engine_kind::plaintext, pipeline_cfg(2));
  recording_probe probe(256); // a long run must not grow the probe past this
  soc.attach_probe(probe);
  const workload w = make_streaming(4000, 64 * 1024, 4, 0x99);
  soc.load_image(0, bytes(64 * 1024, 1));
  (void)soc.run_throughput(w, 8);
  EXPECT_LE(probe.log().size(), 256u);
  EXPECT_GT(probe.beats_seen(), probe.log().size());
}

TEST(BatchThroughput, BatchCountersTrack) {
  edu::secure_soc soc(engine_kind::stream_otp, pipeline_cfg(4));
  const workload w = make_streaming(2000, 64 * 1024, 8, 0xF00D);
  soc.load_image(0, bytes(64 * 1024, 0x11));
  (void)soc.run_throughput(w, 8);
  EXPECT_GT(soc.engine().stats().batches, 0u);
  EXPECT_GT(soc.engine().stats().batched_txns, soc.engine().stats().batches);
}

// --- engine batch path under slot contention ---------------------------------

TEST(EngineBatchPath, TwoContextsOneSlotStaysFunctionallyExact) {
  // One hardware slot, two contexts in the same batch: the second context
  // takes the software fallback mid-batch; bytes must match scalar issue.
  auto build = [](fixed_latency_port& port, engine::keyslot_manager& slots,
                  engine::bus_encryption_engine& eng) {
    const bytes k1(16, 0x11), k2(16, 0x22);
    const auto c1 = eng.create_context({"aes-ctr", k1, 32});
    const auto c2 = eng.create_context({"aes-cbc", k2, 32});
    eng.map_region(0, 4096, c1);
    eng.map_region(4096, 4096, c2);
    (void)port;
    (void)slots;
  };

  fixed_latency_port ps(16 * 1024, 20), pb(16 * 1024, 20);
  engine::keyslot_manager ss(engine::backend_registry::builtin(), 1);
  engine::keyslot_manager sb(engine::backend_registry::builtin(), 1);
  engine::bus_encryption_engine scalar_eng(ps, ss);
  engine::bus_encryption_engine batch_eng(pb, sb);
  build(ps, ss, scalar_eng);
  build(pb, sb, batch_eng);

  const addr_t addrs[] = {0, 4096, 64, 4096 + 64, 128, 4096 + 128};
  bytes data(32);
  for (std::size_t i = 0; i < std::size(addrs); ++i) {
    fill_store_pattern(addrs[i], data);
    (void)scalar_eng.write(addrs[i], data);
  }

  bytes lanes(std::size(addrs) * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < std::size(addrs); ++i) {
    const std::span<u8> lane(lanes.data() + i * 32, 32);
    fill_store_pattern(addrs[i], lane);
    batch.push_back(mem_txn::write_of(i, addrs[i], lane));
  }
  batch_eng.submit(batch);
  EXPECT_GT(batch_eng.drain(), 0u);

  EXPECT_EQ(ps.image_, pb.image_) << "batched ciphertext diverged from scalar";
  EXPECT_GT(batch_eng.stats().batch_native, 0u);

  // Decrypt path agrees too (and sees the data written through the batch).
  bytes plain(32);
  batch_eng.read_plain(4096, plain);
  bytes expect(32);
  fill_store_pattern(4096, expect);
  EXPECT_EQ(plain, expect);
}

TEST(EngineBatchPath, SlotContentionRetiresWindowInsteadOfFallingBack) {
  // One hardware slot, two contexts, software fallback OFF: scalar issue
  // succeeds because each request releases its slot; the batch path must
  // match by retiring its window on a pool miss — not throw, and not
  // silently take a fallback the scalar path never used.
  engine::engine_config cfg;
  cfg.allow_fallback = false;

  fixed_latency_port ps(16 * 1024, 20), pb(16 * 1024, 20);
  engine::keyslot_manager ss(engine::backend_registry::builtin(), 1);
  engine::keyslot_manager sb(engine::backend_registry::builtin(), 1);
  engine::bus_encryption_engine scalar_eng(ps, ss, cfg);
  engine::bus_encryption_engine batch_eng(pb, sb, cfg);
  for (engine::bus_encryption_engine* e : {&scalar_eng, &batch_eng}) {
    const auto c1 = e->create_context({"aes-ctr", bytes(16, 0x11), 32});
    const auto c2 = e->create_context({"aes-cbc", bytes(16, 0x22), 32});
    e->map_region(0, 4096, c1);
    e->map_region(4096, 4096, c2);
  }

  const addr_t addrs[] = {0, 4096, 64, 4096 + 64};
  bytes data(32);
  for (const addr_t a : addrs) {
    fill_store_pattern(a, data);
    (void)scalar_eng.write(a, data);
  }

  bytes lanes(std::size(addrs) * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < std::size(addrs); ++i) {
    const std::span<u8> lane(lanes.data() + i * 32, 32);
    fill_store_pattern(addrs[i], lane);
    batch.push_back(mem_txn::write_of(i, addrs[i], lane));
  }
  EXPECT_NO_THROW(batch_eng.submit(batch));
  EXPECT_GT(batch_eng.drain(), 0u);

  EXPECT_EQ(batch_eng.stats().fallbacks, 0u);
  EXPECT_GT(batch_eng.stats().batch_native, 0u);
  EXPECT_EQ(ps.image_, pb.image_) << "contended batch diverged from scalar";

  // Mixed batch: an eligible txn pins its context, then an unaligned txn
  // in the *other* region detours to the scalar path — the detour must see
  // a released pool, not the batch's pin.
  bytes full(32), partial(8, 0xCD);
  fill_store_pattern(128, full);
  std::vector<mem_txn> mixed;
  mixed.push_back(mem_txn::write_of(10, 128, full));         // ctx 1, eligible
  mixed.push_back(mem_txn::write_of(11, 4096 + 4, partial)); // ctx 2, RMW detour
  EXPECT_NO_THROW(batch_eng.submit(mixed));
  (void)batch_eng.drain();
  EXPECT_EQ(batch_eng.stats().fallbacks, 0u);

  (void)scalar_eng.write(128, full);
  (void)scalar_eng.write(4096 + 4, partial);
  EXPECT_EQ(ps.image_, pb.image_) << "mixed contended batch diverged from scalar";
}

TEST(EngineBatchPath, DataDependentDecipherCannotOverlapItsOwnFetch) {
  // aes-cbc decrypt causally needs the fetched ciphertext, so a single-txn
  // batched read collapses to the scalar mem + crypto; aes-ctr's pad needs
  // only the DUN (Fig. 2a) and overlaps the fetch down to max(mem, crypto).
  auto timed_read = [](const std::string& backend) {
    fixed_latency_port port(4096, 200);
    engine::keyslot_manager slots(engine::backend_registry::builtin(), 2);
    engine::bus_encryption_engine eng(port, slots);
    const auto ctx = eng.create_context({backend, bytes(16, 0x44), 32});
    eng.map_region(0, 4096, ctx);
    bytes line(32);
    fill_store_pattern(0, line);
    (void)eng.write(0, line); // programs the slot; reads below hit it warm
    const cycles scalar = eng.read(0, line);
    bytes out(32);
    std::vector<mem_txn> batch;
    batch.push_back(mem_txn::read_of(0, 0, out));
    eng.submit(batch);
    return std::pair<cycles, cycles>(scalar, eng.drain());
  };

  const auto [cbc_scalar, cbc_batched] = timed_read("aes-cbc");
  EXPECT_EQ(cbc_batched, cbc_scalar)
      << "block-mode decipher was hidden behind its own fetch";

  const auto [ctr_scalar, ctr_batched] = timed_read("aes-ctr");
  EXPECT_LT(ctr_batched, ctr_scalar)
      << "precomputable pad should overlap the fetch";
}

TEST(EngineBatchPath, UnalignedTxnDetoursWithoutReordering) {
  fixed_latency_port port(8 * 1024, 10);
  engine::keyslot_manager slots(engine::backend_registry::builtin(), 2);
  engine::bus_encryption_engine eng(port, slots);
  const auto ctx = eng.create_context({"aes-ctr", bytes(16, 0x33), 32});
  eng.map_region(0, 8 * 1024, ctx);

  // Aligned write, then an overlapping *unaligned* write (RMW detour),
  // then an aligned read of the same unit: order must hold.
  bytes full(32), partial(8, 0xEE), out(32);
  fill_store_pattern(0, full);
  std::vector<mem_txn> batch;
  batch.push_back(mem_txn::write_of(0, 0, full));
  batch.push_back(mem_txn::write_of(1, 4, partial)); // ineligible: RMW
  batch.push_back(mem_txn::read_of(2, 0, out));
  eng.submit(batch);
  const cycles total = eng.drain();

  // Per-txn stamps: each txn carries its own completion time, monotone in
  // issue order and bounded by the batch makespan.
  EXPECT_GT(batch[0].complete_cycle, 0u);
  EXPECT_LE(batch[0].complete_cycle, batch[1].complete_cycle);
  EXPECT_LE(batch[1].complete_cycle, batch[2].complete_cycle);
  EXPECT_LE(batch[2].complete_cycle, total);

  bytes expect = full;
  std::copy(partial.begin(), partial.end(), expect.begin() + 4);
  EXPECT_EQ(out, expect);
  EXPECT_GT(eng.stats().rmw_ops, 0u);
}

// --- cache miss/evict pairs ride the batch path ------------------------------

TEST(CacheBatching, DirtyMissIssuesEvictFillPair) {
  dram d(1 << 20, banked_timing(2));
  external_memory em(d);
  cache_config cfg;
  cfg.size = 1024;
  cfg.line_size = 32;
  cfg.ways = 1; // direct-mapped: easy conflict construction
  cache c(cfg, em);

  bytes buf(4, 0xEE);
  (void)c.write(0x0, buf);  // dirty line in set 0
  (void)c.read(32 * 32, buf); // conflicting line, same set: evict + fill
  EXPECT_EQ(c.stats().writebacks, 1u);
  // The writeback really landed.
  bytes back(4);
  d.read_bytes(0, back);
  EXPECT_EQ(back[0], 0xEE);
}

TEST(CacheBatching, FlushDrainsAllDirtyLinesInOneBatch) {
  fixed_latency_port lower(1 << 16, 40);
  cache_config cfg;
  cfg.size = 1024;
  cfg.line_size = 32;
  cfg.ways = 2;
  cache c(cfg, lower);

  bytes buf(8, 0x77);
  for (addr_t a = 0; a < 8 * 32; a += 32) (void)c.write(a, buf);
  const cycles t = c.flush();
  EXPECT_EQ(c.stats().writebacks, 8u);
  EXPECT_EQ(t, 8 * 40u) << "default adapter: serial batch of 8 writebacks";
  EXPECT_EQ(lower.image_[5 * 32], 0x77);
}

} // namespace
} // namespace buscrypt
