// Best's substitution/transposition cipher and the DS5002FP byte cipher:
// correctness plus the *structural weaknesses* the survey uses them to
// illustrate.

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/best_cipher.hpp"
#include "crypto/toy_cipher.hpp"

#include <gtest/gtest.h>

#include <set>

namespace buscrypt::crypto {
namespace {

TEST(BestCipher, RoundTrip) {
  rng r(1);
  const best_cipher c(r.random_bytes(16));
  for (int i = 0; i < 64; ++i) {
    const bytes pt = r.random_bytes(8);
    bytes ct(8), back(8);
    c.encrypt_block(pt, ct);
    c.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
  }
}

TEST(BestCipher, KeyedDifferently) {
  rng r(2);
  const best_cipher a(r.random_bytes(16));
  const best_cipher b(r.random_bytes(16));
  const bytes pt = r.random_bytes(8);
  bytes ca(8), cb(8);
  a.encrypt_block(pt, ca);
  b.encrypt_block(pt, cb);
  EXPECT_NE(ca, cb);
}

TEST(BestCipher, RejectsBadKey) {
  rng r(3);
  EXPECT_THROW(best_cipher(r.random_bytes(8)), std::invalid_argument);
}

TEST(BestCipher, PoorDiffusionOneByteOut) {
  // The historical weakness: substitution+transposition has NO inter-byte
  // mixing, so flipping one input bit changes exactly ONE output byte.
  rng r(4);
  const best_cipher c(r.random_bytes(16));
  for (int trial = 0; trial < 50; ++trial) {
    bytes pt = r.random_bytes(8);
    bytes a(8), b(8);
    c.encrypt_block(pt, a);
    pt[r.below(8)] ^= static_cast<u8>(1u << r.below(8));
    c.encrypt_block(pt, b);
    int bytes_changed = 0;
    for (int i = 0; i < 8; ++i)
      if (a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)])
        ++bytes_changed;
    EXPECT_EQ(bytes_changed, 1);
  }
}

TEST(BestCipher, AvalancheFarBelowModernCiphers) {
  // Quantify E3's diffusion gap: Best flips ~4 bits of 64, AES-class
  // ciphers flip ~32 of 64 (DES) / 64 of 128 (AES).
  rng r(5);
  const best_cipher c(r.random_bytes(16));
  double flipped = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    bytes pt = r.random_bytes(8);
    bytes a(8), b(8);
    c.encrypt_block(pt, a);
    pt[r.below(8)] ^= static_cast<u8>(1u << r.below(8));
    c.encrypt_block(pt, b);
    flipped += static_cast<double>(hamming_bits(a, b));
  }
  EXPECT_LT(flipped / trials, 9.0); // << 32
}

TEST(ByteBusCipher, RoundTripAcrossAddresses) {
  rng r(6);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  for (addr_t a = 0; a < 2048; a += 37) {
    for (int v = 0; v < 256; v += 17) {
      const u8 ct = c.encrypt_byte(a, static_cast<u8>(v));
      EXPECT_EQ(c.decrypt_byte(a, ct), static_cast<u8>(v));
    }
  }
}

TEST(ByteBusCipher, PerAddressBijection) {
  rng r(7);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  for (addr_t a : {addr_t{0}, addr_t{1}, addr_t{0x1234}}) {
    std::set<u8> outputs;
    for (int v = 0; v < 256; ++v) outputs.insert(c.encrypt_byte(a, static_cast<u8>(v)));
    EXPECT_EQ(outputs.size(), 256u) << "address " << a;
  }
}

TEST(ByteBusCipher, AddressDependence) {
  rng r(8);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  int same = 0;
  for (int v = 0; v < 256; ++v)
    if (c.encrypt_byte(0, static_cast<u8>(v)) == c.encrypt_byte(1, static_cast<u8>(v)))
      ++same;
  EXPECT_LT(same, 32); // different alphabets at different addresses
}

TEST(ByteBusCipher, DeterministicPerAddress) {
  // The property Kuhn exploits: same (addr, byte) -> same bus value, and
  // only 256 possibilities exist per address.
  rng r(9);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  EXPECT_EQ(c.encrypt_byte(42, 0x99), c.encrypt_byte(42, 0x99));
}

TEST(ByteBusCipher, AddressScramblingBijective) {
  rng r(10);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  std::set<addr_t> seen;
  for (addr_t a = 0; a < (1u << 16); a += 19) {
    const addr_t s = c.scramble_addr(a);
    EXPECT_LT(s, 1u << 16);
    EXPECT_EQ(c.unscramble_addr(s), a);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), (0x10000u + 18) / 19);
}

TEST(ByteBusCipher, RangeHelpers) {
  rng r(11);
  const byte_bus_cipher c(r.random_bytes(8), 16);
  const bytes pt = r.random_bytes(100);
  bytes ct(100), back(100);
  c.encrypt_range(0x100, pt, ct);
  EXPECT_NE(ct, pt);
  c.decrypt_range(0x100, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(ByteBusCipher, RejectsBadParameters) {
  rng r(12);
  EXPECT_THROW(byte_bus_cipher(r.random_bytes(7), 16), std::invalid_argument);
  EXPECT_THROW(byte_bus_cipher(r.random_bytes(8), 0), std::invalid_argument);
  EXPECT_THROW(byte_bus_cipher(r.random_bytes(8), 49), std::invalid_argument);
}

TEST(ByteBusCipher, KeySpaceVsBlockSpace) {
  // Fig. 6's lesson in numbers: per address the attacker faces only 256
  // candidates regardless of key size — two different keys still both
  // yield byte-bijections, enumerable in 256 probes.
  rng r(13);
  const byte_bus_cipher c1(r.random_bytes(8), 16);
  const byte_bus_cipher c2(r.random_bytes(8), 16);
  // Exhaustively invert c1's table at one address in 256 oracle calls.
  std::array<int, 256> table{};
  table.fill(-1);
  for (int v = 0; v < 256; ++v) table[c1.encrypt_byte(7, static_cast<u8>(v))] = v;
  for (int ct = 0; ct < 256; ++ct) {
    ASSERT_NE(table[static_cast<std::size_t>(ct)], -1);
    EXPECT_EQ(c1.decrypt_byte(7, static_cast<u8>(ct)),
              static_cast<u8>(table[static_cast<std::size_t>(ct)]));
  }
  (void)c2;
}

} // namespace
} // namespace buscrypt::crypto
