// DRAM timing model and the probed external bus.

#include "common/rng.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"

#include <gtest/gtest.h>

namespace buscrypt::sim {
namespace {

TEST(Dram, FunctionalReadWrite) {
  dram d(4096);
  const bytes data = {1, 2, 3, 4, 5};
  d.write_bytes(100, data);
  bytes out(5);
  d.read_bytes(100, out);
  EXPECT_EQ(out, data);
}

TEST(Dram, BoundsChecked) {
  dram d(4096);
  bytes buf(16);
  EXPECT_THROW(d.read_bytes(4090, buf), std::out_of_range);
  EXPECT_THROW(d.write_bytes(4090, buf), std::out_of_range);
  EXPECT_THROW((void)d.access_time(4090, 16), std::out_of_range);
}

TEST(Dram, RowHitFasterThanRowMiss) {
  dram_timing t;
  dram d(1 << 20, t);
  const cycles first = d.access_time(0, 32);        // row miss (cold)
  const cycles second = d.access_time(64, 32);      // same row: hit
  const cycles third = d.access_time(1 << 16, 32);  // far away: miss
  EXPECT_GT(first, second);
  EXPECT_EQ(third, first);
  EXPECT_EQ(d.row_hits(), 1u);
  EXPECT_EQ(d.row_misses(), 2u);
}

TEST(Dram, BurstCostScalesWithLength) {
  dram_timing t;
  dram d(1 << 20, t);
  (void)d.access_time(0, 8); // open the row
  const cycles small = d.access_time(8, 8);
  const cycles large = d.access_time(64, 64);
  EXPECT_EQ(small, t.row_hit + 1 * t.beat);
  EXPECT_EQ(large, t.row_hit + 8 * t.beat);
}

TEST(Dram, RejectsZeroSize) {
  EXPECT_THROW(dram(0), std::invalid_argument);
}

TEST(ExternalMemory, MovesDataAndCharges) {
  dram d(1 << 16);
  external_memory ext(d);
  const bytes data = {0xCA, 0xFE};
  const cycles w = ext.write(10, data);
  EXPECT_GT(w, 0u);
  bytes out(2);
  const cycles r = ext.read(10, out);
  EXPECT_GT(r, 0u);
  EXPECT_EQ(out, data);
  EXPECT_EQ(ext.bytes_written(), 2u);
  EXPECT_EQ(ext.bytes_read(), 2u);
}

TEST(ExternalMemory, ProbeSeesEveryBeat) {
  dram d(1 << 16);
  external_memory ext(d);
  recording_probe probe;
  ext.attach(probe);

  bytes line(32);
  for (std::size_t i = 0; i < line.size(); ++i) line[i] = static_cast<u8>(i);
  (void)ext.write(0x40, line);

  // 32 bytes over an 8-byte bus = 4 beats.
  ASSERT_EQ(probe.log().size(), 4u);
  EXPECT_EQ(probe.log()[0].addr, 0x40u);
  EXPECT_EQ(probe.log()[1].addr, 0x48u);
  EXPECT_TRUE(probe.log()[0].write);
  EXPECT_EQ(probe.log()[0].data[0], 0);
  EXPECT_EQ(probe.log()[3].data[7], 31);

  bytes out(8);
  (void)ext.read(0x40, out);
  ASSERT_EQ(probe.log().size(), 5u);
  EXPECT_FALSE(probe.log()[4].write);
}

TEST(ExternalMemory, ProbeTimestampsAdvance) {
  dram d(1 << 16);
  external_memory ext(d);
  recording_probe probe;
  ext.attach(probe);
  bytes buf(8);
  (void)ext.read(0, buf);
  (void)ext.read(2048, buf);
  ASSERT_EQ(probe.log().size(), 2u);
  EXPECT_GT(probe.log()[1].at, probe.log()[0].at);
}

TEST(ExternalMemory, MultipleProbes) {
  dram d(1 << 16);
  external_memory ext(d);
  recording_probe p1, p2;
  ext.attach(p1);
  ext.attach(p2);
  bytes buf(8);
  (void)ext.read(0, buf);
  EXPECT_EQ(p1.log().size(), 1u);
  EXPECT_EQ(p2.log().size(), 1u);
}

TEST(ExternalMemory, RawChipAccessBypassesBus) {
  dram d(1 << 16);
  external_memory ext(d);
  recording_probe probe;
  ext.attach(probe);
  d.raw()[5] = 0x77; // desolder-and-read path
  EXPECT_TRUE(probe.log().empty());
  bytes out(1);
  (void)ext.read(5, out);
  EXPECT_EQ(out[0], 0x77);
}

} // namespace
} // namespace buscrypt::sim
