// The crash-safe update agent: clean commits, the anti-downgrade
// fail-stop, manifest/geometry rejection, journal-driven recovery after
// seeded power cuts at every phase, bounded stall retry, and the journal
// MAC chain against both torn tails (crash signature) and mid-chain
// tampering. The whole-device sweeps drive update/lifetime.hpp — the same
// runner tab13 and the fleet lifetime cells use — so the invariant is
// stated once: every episode ends exactly-old or exactly-new.

#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/cipher_backend.hpp"
#include "engine/keyslot_manager.hpp"
#include "keymgmt/session.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"
#include "sim/fault_injector.hpp"
#include "update/lifetime.hpp"
#include "update/update_agent.hpp"

#include <gtest/gtest.h>

namespace buscrypt {
namespace {

using update::update_journal;
using update::update_state;
using update::update_status;

constexpr std::size_t k_image = 4u << 10;
constexpr std::size_t k_chunk = 512;

update::update_config test_cfg(engine::auth_mode mode = engine::auth_mode::none,
                               const std::string& backend = "aes-ctr") {
  update::update_config c;
  c.slot_base_a = 0;
  c.slot_base_b = k_image;
  c.slot_bytes = k_image;
  c.staging_base = 2 * k_image;
  c.auth = mode;
  c.tag_base_a = 4 * k_image;
  c.tag_base_b = 6 * k_image;
  c.tag_base_staging = 8 * k_image;
  c.backend = backend;
  c.chunk_bytes = k_chunk;
  return c;
}

/// One device: DRAM, injectable external path, keyslot engine, agent,
/// provisioned with a v1 image and holding a packaged v2.
struct rig {
  rng r{0x0DDC0FFEEULL};
  crypto::rsa_keypair keys{crypto::rsa_generate(r, 256)};
  keymgmt::insecure_channel net;
  sim::dram chip{64u << 10};
  sim::external_memory ext{chip};
  sim::fault_injector fi{ext};
  engine::keyslot_manager slots{engine::backend_registry::builtin(), 4};
  engine::bus_encryption_engine eng{fi, slots};
  update::update_agent agent;
  bytes v1{rng(11).random_bytes(k_image)};
  bytes v2{rng(12).random_bytes(k_image)};
  update::update_package up;

  explicit rig(update::update_config cfg = test_cfg())
      : agent(eng, fi, keys.priv, cfg) {
    agent.provision(v1, 1);
    up = update::make_update_package(v2, 2, keys.pub, net, r, k_chunk);
  }
};

TEST(Update, CleanCommitBumpsVersionAndSwapsSlot) {
  rig rg;
  EXPECT_EQ(rg.agent.version(), 1u);
  EXPECT_EQ(rg.agent.active_slot(), 0u);
  EXPECT_EQ(rg.agent.active_image(), rg.v1);

  const update::update_report rep = rg.agent.apply(rg.up);
  EXPECT_EQ(rep.status, update_status::committed);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_slot(), 1u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
  EXPECT_GT(rep.verify_cycles, 0u);
  EXPECT_GT(rep.install_cycles, 0u);
}

TEST(Update, JournalRecordsTheStateSequence) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  const auto es = rg.agent.journal().entries();
  ASSERT_EQ(es.size(), 5u);
  const update_state want[] = {update_state::committed, update_state::staged,
                               update_state::installing, update_state::installed,
                               update_state::committed};
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_TRUE(es[i].valid) << i;
    EXPECT_EQ(es[i].state, want[i]) << i;
    EXPECT_EQ(es[i].seq, i + 1) << i; // seq is 1-based: records() + 1 at append
  }
  EXPECT_EQ(es.back().version, 2u);
  EXPECT_FALSE(rg.agent.journal().tampered());
}

TEST(Update, DowngradeFailStopsBeforeStaging) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  const update::update_package stale =
      update::make_update_package(rg.v1, 1, rg.keys.pub, rg.net, rg.r, k_chunk);
  const update::update_report rep = rg.agent.apply(stale);
  EXPECT_EQ(rep.status, update_status::downgrade_blocked);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
  // Nothing was journaled for the refused attempt.
  EXPECT_EQ(rg.agent.journal().records(), 5u);
}

TEST(Update, ManifestTamperIsRejected) {
  rig rg;
  update::update_package bad = rg.up;
  bad.manifest_mac[3] ^= 0x40;
  EXPECT_EQ(rg.agent.apply(bad).status, update_status::verify_failed);
  EXPECT_EQ(rg.agent.version(), 1u);
  EXPECT_EQ(rg.agent.active_image(), rg.v1);
}

TEST(Update, VersionFieldIsBoundByTheManifest) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  // Replay the stale v1 package with its version field forged to 3: the
  // manifest MAC (keyed by K, which binds the version) must catch it.
  update::update_package forged =
      update::make_update_package(rg.v1, 1, rg.keys.pub, rg.net, rg.r, k_chunk);
  forged.version = 3;
  EXPECT_EQ(rg.agent.apply(forged).status, update_status::verify_failed);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
}

TEST(Update, WrongChunkGeometryIsRejected) {
  rig rg;
  const update::update_package odd =
      update::make_update_package(rg.v2, 2, rg.keys.pub, rg.net, rg.r, 2 * k_chunk);
  EXPECT_EQ(rg.agent.apply(odd).status, update_status::verify_failed);
  EXPECT_EQ(rg.agent.version(), 1u);
}

TEST(Update, PowerCycleWithNothingPendingRecoversNonePending) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  rg.agent.power_cycle();
  const update::update_report rep = rg.agent.recover();
  EXPECT_EQ(rep.status, update_status::none_pending);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
}

TEST(Update, CutMidInstallWithoutReofferRollsBack) {
  rig rg;
  sim::fault_plan plan;
  plan.point = sim::fault_point::journal;
  plan.trigger = 2; // the `installed` record: cut after the slot program
  rg.fi.arm(plan);
  EXPECT_THROW((void)rg.agent.apply(rg.up), sim::power_cut);
  rg.agent.power_cycle();
  rg.fi.disarm();
  const update::update_report rep = rg.agent.recover(nullptr);
  EXPECT_EQ(rep.status, update_status::rolled_back);
  EXPECT_EQ(rg.agent.version(), 1u);
  EXPECT_EQ(rg.agent.active_slot(), 0u);
  EXPECT_EQ(rg.agent.active_image(), rg.v1);
}

TEST(Update, JournalCutAtEveryRecordResumesToCommit) {
  for (u64 trigger = 0; trigger < 4; ++trigger) {
    update::lifetime_config lc;
    lc.seed = 100 + trigger;
    lc.inject = sim::fault_point::journal;
    lc.trigger = trigger;
    const update::lifetime_result lr = update::run_lifetime(lc);
    EXPECT_TRUE(lr.cut) << trigger;
    EXPECT_TRUE(update::lifetime_safe(lr)) << trigger;
    // The daemon re-offers the package, so every cut re-drives to commit.
    EXPECT_TRUE(lr.committed_new) << trigger;
  }
}

TEST(Update, FlushCutAtEveryBoundaryIsSafe) {
  for (u64 trigger = 0; trigger < 3; ++trigger) {
    update::lifetime_config lc;
    lc.seed = 200 + trigger;
    lc.inject = sim::fault_point::flush;
    lc.trigger = trigger;
    const update::lifetime_result lr = update::run_lifetime(lc);
    EXPECT_TRUE(lr.cut) << trigger;
    EXPECT_TRUE(update::lifetime_safe(lr)) << trigger;
  }
}

TEST(Update, BusBeatCutsNeverTearAnyAuthScheme) {
  struct scheme {
    engine::auth_mode mode;
    const char* backend;
  };
  const scheme schemes[] = {{engine::auth_mode::none, "aes-ctr"},
                            {engine::auth_mode::mac, "aes-ctr"},
                            {engine::auth_mode::area, "aes-ecb"},
                            {engine::auth_mode::hash_tree, "aes-ctr"}};
  for (const scheme& s : schemes) {
    rng r(static_cast<u64>(s.mode) * 977 + 5);
    for (int i = 0; i < 5; ++i) {
      update::lifetime_config lc;
      lc.seed = r.next_u64();
      lc.auth = s.mode;
      lc.backend = s.backend;
      lc.inject = sim::fault_point::bus_beat;
      lc.trigger = r.between(8, 6000);
      const update::lifetime_result lr = update::run_lifetime(lc);
      EXPECT_TRUE(update::lifetime_safe(lr))
          << engine::auth_mode_name(s.mode) << " trigger " << lc.trigger
          << " status " << update::update_status_name(lr.status);
    }
  }
}

TEST(Update, StagedBitFlipsAreAlwaysCaughtOrOutrun) {
  for (const engine::auth_mode mode :
       {engine::auth_mode::none, engine::auth_mode::mac, engine::auth_mode::hash_tree}) {
    rng r(static_cast<u64>(mode) * 31 + 7);
    for (int i = 0; i < 4; ++i) {
      update::lifetime_config lc;
      lc.seed = r.next_u64();
      lc.auth = mode;
      lc.inject = sim::fault_point::bit_flip;
      lc.trigger = r.between(8, 6000);
      const update::lifetime_result lr = update::run_lifetime(lc);
      // Flip caught (old intact) or it landed after the image was safely
      // through (new committed) — but never a torn or silently wrong image.
      EXPECT_TRUE(update::lifetime_safe(lr))
          << engine::auth_mode_name(mode) << " trigger " << lc.trigger;
    }
  }
}

TEST(Update, StallsWithinTheRetryBudgetCommit) {
  update::lifetime_config lc;
  lc.seed = 42;
  lc.inject = sim::fault_point::bus_stall;
  lc.stalls = 3;
  const update::lifetime_result lr = update::run_lifetime(lc);
  EXPECT_EQ(lr.status, update_status::committed);
  EXPECT_EQ(lr.retries, 3u);
  EXPECT_TRUE(lr.committed_new);
}

TEST(Update, StallsBeyondTheRetryBudgetAbortToTheOldImage) {
  update::lifetime_config lc;
  lc.seed = 43;
  lc.inject = sim::fault_point::bus_stall;
  lc.stalls = 20;
  const update::lifetime_result lr = update::run_lifetime(lc);
  EXPECT_EQ(lr.status, update_status::stall_aborted);
  EXPECT_TRUE(lr.old_intact);
  EXPECT_TRUE(lr.downgrade_blocked);
}

TEST(Update, TornTailIsNeutralizedNotEscalatedToTamper) {
  // Regression: recovery appends records past the torn cell (rollback
  // here), making it interior. Without the in-place `torn` acknowledgement
  // every later recovery would misread the benign crash signature as
  // tampering and fail-stop the device forever.
  rig rg;
  sim::fault_plan plan;
  plan.point = sim::fault_point::journal;
  plan.trigger = 2; // tear the `installed` record mid-write
  rg.fi.arm(plan);
  EXPECT_THROW((void)rg.agent.apply(rg.up), sim::power_cut);
  rg.agent.power_cycle();
  rg.fi.disarm();
  EXPECT_EQ(rg.agent.recover(nullptr).status, update_status::rolled_back);

  // The journal chain reads clean: the torn cell was re-MAC'd as `torn`.
  EXPECT_FALSE(rg.agent.journal().tampered());
  const auto es = rg.agent.journal().entries();
  EXPECT_EQ(es[3].state, update_state::torn);
  EXPECT_EQ(es[3].seq, 4u);

  // Later crash recoveries keep working instead of reporting tampering.
  rg.agent.power_cycle();
  EXPECT_EQ(rg.agent.recover(nullptr).status, update_status::none_pending);
  EXPECT_EQ(rg.agent.version(), 1u);
  EXPECT_EQ(rg.agent.active_image(), rg.v1);

  // And the device still takes the update afterwards.
  EXPECT_EQ(rg.agent.apply(rg.up).status, update_status::committed);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
  rg.agent.power_cycle();
  EXPECT_EQ(rg.agent.recover(nullptr).status, update_status::none_pending);
}

TEST(Update, ResumePastATornTailLeavesACleanJournal) {
  rig rg;
  sim::fault_plan plan;
  plan.point = sim::fault_point::journal;
  plan.trigger = 2; // tear the `installed` record; `staged` is intact
  rg.fi.arm(plan);
  EXPECT_THROW((void)rg.agent.apply(rg.up), sim::power_cut);
  rg.agent.power_cycle();
  rg.fi.disarm();
  // The daemon re-offers the package: the torn marker must stay invisible
  // to the pending-update detection (the intact `staged` record drives it).
  EXPECT_EQ(rg.agent.recover(&rg.up).status, update_status::resumed);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
  EXPECT_FALSE(rg.agent.journal().tampered());
  rg.agent.power_cycle();
  EXPECT_EQ(rg.agent.recover(nullptr).status, update_status::none_pending);
  EXPECT_EQ(rg.agent.version(), 2u);
}

TEST(Update, RecoverBeforeProvisioningReportsInsteadOfThrowing) {
  // Regression: recover(pkg) on a factory-fresh device (empty journal,
  // pkg version > 0) fell through to apply(), which throws — an exception
  // escape from a path documented to return a report.
  rng r{1};
  crypto::rsa_keypair keys = crypto::rsa_generate(r, 256);
  keymgmt::insecure_channel net;
  sim::dram chip{64u << 10};
  sim::external_memory ext{chip};
  sim::fault_injector fi{ext};
  engine::keyslot_manager slots{engine::backend_registry::builtin(), 4};
  engine::bus_encryption_engine eng{fi, slots};
  update::update_agent agent(eng, fi, keys.priv, test_cfg());
  const bytes img = rng(2).random_bytes(k_image);
  const update::update_package up =
      update::make_update_package(img, 1, keys.pub, net, r, k_chunk);
  EXPECT_EQ(agent.recover(&up).status, update_status::none_pending);
  EXPECT_EQ(agent.recover(nullptr).status, update_status::none_pending);
}

TEST(Update, MidChainJournalTamperFailStops) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  rg.agent.power_cycle();
  // Flip a byte of the `staged` record (index 1 of 5): mid-chain MAC
  // breakage is tampering, not a crash signature.
  rg.agent.journal().raw()[update_journal::k_record_bytes + 5] ^= 0x01;
  EXPECT_TRUE(rg.agent.journal().tampered());
  const update::update_report rep = rg.agent.recover(nullptr);
  EXPECT_EQ(rep.status, update_status::journal_tampered);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
}

TEST(Update, TailJournalTamperCannotRewindTheVersion) {
  rig rg;
  (void)rg.agent.apply(rg.up);
  rg.agent.power_cycle();
  // Corrupt the newest `committed` record. It now looks like a torn tail
  // (a crash), but the monotonic on-chip version mirror must not rewind
  // to the baseline commit — that would be a downgrade primitive.
  rg.agent.journal().raw()[4 * update_journal::k_record_bytes + 20] ^= 0x80;
  const update::update_report rep = rg.agent.recover(nullptr);
  EXPECT_EQ(rep.status, update_status::rolled_back);
  EXPECT_EQ(rg.agent.version(), 2u);
  EXPECT_EQ(rg.agent.active_image(), rg.v2);
}

TEST(Update, LifetimeEpisodesAreDeterministic) {
  update::lifetime_config lc;
  lc.seed = 777;
  lc.inject = sim::fault_point::bus_beat;
  lc.trigger = 1234;
  const update::lifetime_result a = update::run_lifetime(lc);
  const update::lifetime_result b = update::run_lifetime(lc);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.beats, b.beats);
  EXPECT_EQ(a.dram_fingerprint, b.dram_fingerprint);
  EXPECT_EQ(a.update_cycles, b.update_cycles);
}

} // namespace
} // namespace buscrypt
