// Property tests for the pluggable-policy keyslot pool: randomized
// acquire/release/evict storms against every eviction policy, asserting
// the invariants that make a slot pool a slot pool — refcounts never go
// negative, a pinned slot is never evicted or reprogrammed, the slot
// count is conserved, a warm hit never triggers a demand program, and
// the stats counters always satisfy their sum rules. Plus directed
// sequences proving each policy actually differs from LRU where it
// should, and the pool-exhaustion -> fallback -> recovery regression.

#include "common/rng.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/eviction_policy.hpp"
#include "engine/keyslot_manager.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace buscrypt::engine {
namespace {

keyslot_key make_key(u8 fill, std::size_t du = 32) {
  return {"aes-ctr", bytes(16, fill), du};
}

/// The two sum rules every keyslot_stats must satisfy at all times.
void expect_stats_consistent(const keyslot_stats& s) {
  EXPECT_EQ(s.programs, s.cold_programs + s.reprograms + s.prefetch_programs);
  EXPECT_EQ(s.acquires, s.hits + s.cold_programs + s.reprograms + s.denials);
}

struct lease {
  int slot;
  keyslot_key key;
};

/// One randomized storm against one (policy, pool size, seed) point.
void run_storm(slot_policy policy, unsigned num_slots, u64 seed) {
  SCOPED_TRACE(std::string(slot_policy_name(policy)) + " pool " +
               std::to_string(num_slots) + " seed " + std::to_string(seed));
  keyslot_manager mgr(backend_registry::builtin(), num_slots, policy);
  ASSERT_EQ(mgr.policy(), policy);

  // A key universe ~3x the pool so hits, evictions and denials all occur.
  std::vector<keyslot_key> universe;
  for (unsigned i = 0; i < 3 * num_slots + 2; ++i)
    universe.push_back(make_key(static_cast<u8>(0x10 + i)));

  rng r(seed);
  std::vector<lease> held;
  const std::size_t max_held = num_slots + 2;
  keyslot_stats prev = mgr.stats();

  for (int op = 0; op < 3000; ++op) {
    const u64 dice = r.below(100);
    if (dice < 55 && held.size() < max_held) {
      // acquire
      const keyslot_key& k = universe[r.below(universe.size())];
      const bool was_pinned_out = mgr.slots_in_use() == num_slots;
      bool was_programmed = false;
      for (unsigned s = 0; s < num_slots; ++s) {
        if (mgr.key_of(static_cast<int>(s)) &&
            *mgr.key_of(static_cast<int>(s)) == k)
          was_programmed = true;
      }

      const int slot = mgr.acquire(k);
      const keyslot_stats& st = mgr.stats();
      EXPECT_EQ(st.acquires, prev.acquires + 1);
      if (slot == keyslot_manager::no_slot) {
        // Denied: only legal when the pool was fully pinned and the key
        // was not warm anywhere.
        EXPECT_TRUE(was_pinned_out);
        EXPECT_FALSE(was_programmed);
        EXPECT_EQ(st.denials, prev.denials + 1);
        EXPECT_EQ(st.programs, prev.programs);
      } else if (was_programmed) {
        // Warm hit: never a demand program, never a stall source.
        EXPECT_EQ(st.hits, prev.hits + 1);
        EXPECT_EQ(st.programs, prev.programs);
        EXPECT_EQ(st.evictions, prev.evictions);
        held.push_back({slot, k});
      } else {
        // Demand program: exactly one cold-or-reprogram, plus at most one
        // prefetch refill rides along.
        EXPECT_EQ(st.hits, prev.hits);
        EXPECT_EQ(st.cold_programs + st.reprograms,
                  prev.cold_programs + prev.reprograms + 1);
        EXPECT_LE(st.programs, prev.programs + 2);
        EXPECT_LE(st.prefetch_programs, prev.prefetch_programs + 1);
        ASSERT_TRUE(mgr.key_of(slot) != nullptr);
        EXPECT_TRUE(*mgr.key_of(slot) == k);
        held.push_back({slot, k});
      }
      // Occupancy is sampled once per acquire and bounded by the pool.
      EXPECT_LE(st.occupancy_acc - prev.occupancy_acc, num_slots);
    } else if (dice < 80 && !held.empty()) {
      // release a random lease
      const std::size_t i = r.below(held.size());
      mgr.release(held[i].slot);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (dice < 90) {
      // explicit evict of a random key; legal only when present and idle
      const keyslot_key& k = universe[r.below(universe.size())];
      bool present = false;
      for (unsigned s = 0; s < num_slots; ++s) {
        if (mgr.key_of(static_cast<int>(s)) &&
            *mgr.key_of(static_cast<int>(s)) == k)
          present = true;
      }
      bool in_use = false;
      for (const lease& l : held)
        if (l.key == k) in_use = true;
      const bool evicted = mgr.evict(k);
      EXPECT_EQ(evicted, present && !in_use);
      if (evicted) {
        EXPECT_EQ(mgr.stats().evictions, prev.evictions + 1);
      }
    }

    // Pool-wide invariants, every step.
    const keyslot_stats& st = mgr.stats();
    expect_stats_consistent(st);
    EXPECT_EQ(mgr.num_slots(), num_slots);

    unsigned programmed = 0;
    for (unsigned s = 0; s < num_slots; ++s)
      if (mgr.key_of(static_cast<int>(s))) ++programmed;
    EXPECT_EQ(mgr.slots_programmed(), programmed);
    EXPECT_LE(programmed, num_slots);

    std::vector<int> pinned;
    for (const lease& l : held) pinned.push_back(l.slot);
    std::sort(pinned.begin(), pinned.end());
    pinned.erase(std::unique(pinned.begin(), pinned.end()), pinned.end());
    EXPECT_EQ(mgr.slots_in_use(), pinned.size());

    // An in-use slot's key never changes out from under its holder.
    for (const lease& l : held) {
      ASSERT_TRUE(mgr.key_of(l.slot) != nullptr);
      EXPECT_TRUE(*mgr.key_of(l.slot) == l.key)
          << "pinned slot " << l.slot << " was reprogrammed";
    }
    prev = st;
  }

  for (const lease& l : held) mgr.release(l.slot);
  EXPECT_EQ(mgr.slots_in_use(), 0u);
}

TEST(KeyslotProperty, RandomStormsHoldInvariantsAcrossAllPolicies) {
  for (const slot_policy p : all_slot_policies)
    for (const unsigned pool : {1u, 2u, 4u, 8u})
      for (const u64 seed : {0xA11CEULL, 0xB0BULL, 0xCA7ULL})
        run_storm(p, pool, seed);
}

TEST(KeyslotProperty, ReleaseOfIdleSlotThrows) {
  keyslot_manager mgr(backend_registry::builtin(), 2);
  const int s = mgr.acquire(make_key(0x41));
  ASSERT_GE(s, 0);
  mgr.release(s);
  EXPECT_THROW(mgr.release(s), std::logic_error); // refcount would go negative
  EXPECT_THROW(mgr.release(7), std::out_of_range);
}

// --- directed sequences: the policies really are different ------------------

TEST(KeyslotProperty, ClockGivesRecentlyTouchedKeysASecondChance) {
  // Pool of 3: program A, B, C, then touch A again and demand D.
  // LRU's victim is B (oldest last_use); CLOCK spends everyone's ref bit
  // on the first sweep and takes the slot after the hand — evicting A
  // despite its recent touch. Different victims, by design.
  const keyslot_key A = make_key(0xA1), B = make_key(0xB2), C = make_key(0xC3),
                    D = make_key(0xD4);
  auto survivors = [&](slot_policy p) {
    keyslot_manager mgr(backend_registry::builtin(), 3, p);
    for (const keyslot_key* k : {&A, &B, &C}) mgr.release(mgr.acquire(*k));
    mgr.release(mgr.acquire(A)); // warm touch
    mgr.release(mgr.acquire(D)); // forces one eviction
    std::vector<bool> alive(4, false);
    const keyslot_key* keys[4] = {&A, &B, &C, &D};
    for (int s = 0; s < 3; ++s)
      for (int i = 0; i < 4; ++i)
        if (mgr.key_of(s) && *mgr.key_of(s) == *keys[i]) alive[i] = true;
    return alive;
  };
  const auto lru = survivors(slot_policy::lru);
  EXPECT_TRUE(lru[0]) << "LRU keeps the re-touched A";
  EXPECT_FALSE(lru[1]) << "LRU evicts the oldest B";
  const auto clk = survivors(slot_policy::clock_hand);
  EXPECT_FALSE(clk[0]) << "CLOCK's hand lands on A after clearing the bits";
  EXPECT_TRUE(clk[1]);
  EXPECT_TRUE(clk[3]);
}

TEST(KeyslotProperty, RefcountPolicyKeepsProvenHotKeys) {
  // Pool of 2: A serves three acquires, B one. Demanding C makes LRU
  // evict A (older last_use) but the usage-aware policy evict B (fewer
  // uses) — hot keys survive one-shot bursts.
  const keyslot_key A = make_key(0xA1), B = make_key(0xB2), C = make_key(0xC3);
  auto a_survives = [&](slot_policy p) {
    keyslot_manager mgr(backend_registry::builtin(), 2, p);
    for (int i = 0; i < 3; ++i) mgr.release(mgr.acquire(A));
    mgr.release(mgr.acquire(B));
    mgr.release(mgr.acquire(C));
    for (int s = 0; s < 2; ++s)
      if (mgr.key_of(s) && *mgr.key_of(s) == A) return true;
    return false;
  };
  EXPECT_FALSE(a_survives(slot_policy::lru));
  EXPECT_TRUE(a_survives(slot_policy::refcount));
}

TEST(KeyslotProperty, PrefetchRestoresDisplacedHotKeyWithoutAStall) {
  // Pool of 2: H proves itself hot (three acquires), X programs the
  // other slot, then Y displaces H. The prefetch policy remembers H and
  // refills it into the idle one-shot slot (displacing X) during the
  // same demand program — so the next acquire(H) is a warm hit with no
  // demand program at all.
  const keyslot_key H = make_key(0x1A), X = make_key(0x2B), Y = make_key(0x3C);
  keyslot_manager mgr(backend_registry::builtin(), 2, slot_policy::prefetch);
  for (int i = 0; i < 3; ++i) mgr.release(mgr.acquire(H));
  mgr.release(mgr.acquire(X));
  mgr.release(mgr.acquire(Y)); // evicts H, prefetch brings it back over X

  const keyslot_stats mid = mgr.stats();
  EXPECT_EQ(mid.prefetch_programs, 1u);
  expect_stats_consistent(mid);

  const int s = mgr.acquire(H);
  ASSERT_GE(s, 0);
  const keyslot_stats& st = mgr.stats();
  EXPECT_EQ(st.hits, mid.hits + 1) << "prefetched H must be warm";
  EXPECT_EQ(st.cold_programs + st.reprograms, mid.cold_programs + mid.reprograms)
      << "a warm hit never demand-programs";
  mgr.release(s);

  // The same traffic under plain LRU pays a demand program instead.
  keyslot_manager lru(backend_registry::builtin(), 2, slot_policy::lru);
  for (int i = 0; i < 3; ++i) lru.release(lru.acquire(H));
  lru.release(lru.acquire(X));
  lru.release(lru.acquire(Y));
  const keyslot_stats before = lru.stats();
  lru.release(lru.acquire(H));
  EXPECT_EQ(lru.stats().reprograms, before.reprograms + 1);
}

// --- pool exhaustion: fallback and recovery ---------------------------------

TEST(KeyslotProperty, ExhaustedPoolFallsBackAndRecoversWithoutSpuriousEviction) {
  sim::dram dram(1u << 16);
  sim::external_memory ext(dram);
  keyslot_manager slots(backend_registry::builtin(), 2);
  bus_encryption_engine eng(ext, slots);

  const auto ctx = eng.create_context(make_key(0x77));
  eng.map_region(0, 1u << 16, ctx);
  bytes image(256);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<u8>(i);
  eng.install(0, image);

  // Pin the whole pool with two foreign keys; the context key is nowhere.
  const keyslot_key pinned_key = make_key(0x99);
  slot_guard g2(slots, pinned_key);
  ASSERT_TRUE(g2.valid());
  const int pinned_slot = g2.index();
  bytes out(32);
  {
    slot_guard g1(slots, make_key(0x88));
    ASSERT_TRUE(g1.valid());
    ASSERT_EQ(slots.slots_in_use(), 2u);

    ASSERT_EQ(eng.stats().fallbacks, 0u);
    (void)eng.read(0, out);
    EXPECT_EQ(eng.stats().fallbacks, 1u)
        << "pinned-out pool must take software path";
    EXPECT_TRUE(std::equal(out.begin(), out.end(), image.begin()))
        << "fallback must still decrypt correctly";
  } // g1 releases its slot; g2 stays pinned

  // Releasing one slot restores hardware service: the context key takes
  // the freed slot (one eviction — the released key, nothing else), the
  // pinned slot keeps its key, and no further fallback happens.
  const keyslot_stats before = slots.stats();
  const u64 fallbacks_before = eng.stats().fallbacks;

  (void)eng.read(32, out);
  EXPECT_EQ(eng.stats().fallbacks, fallbacks_before) << "hardware path restored";
  EXPECT_EQ(slots.stats().evictions, before.evictions + 1)
      << "exactly the freed slot is reprogrammed — no spurious eviction";
  ASSERT_TRUE(slots.key_of(pinned_slot) != nullptr);
  EXPECT_TRUE(*slots.key_of(pinned_slot) == pinned_key)
      << "the still-pinned slot is untouched";
  EXPECT_TRUE(std::equal(out.begin(), out.end(), image.begin() + 32));

  // Warm now: the next read costs no program at all.
  const u64 programs_now = slots.stats().programs;
  (void)eng.read(64, out);
  EXPECT_EQ(slots.stats().programs, programs_now);
  EXPECT_EQ(eng.stats().fallbacks, fallbacks_before);
}

} // namespace
} // namespace buscrypt::engine
