// The integrity EDU (the paper's "future exploration"), the tamper-attack
// trio, pad-reuse, and address-trace leakage.

#include "attack/pad_reuse.hpp"
#include "attack/tamper.hpp"
#include "attack/trace_analysis.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "edu/integrity_edu.hpp"
#include "edu/soc.hpp"
#include "edu/stream_edu.hpp"

#include <gtest/gtest.h>

namespace buscrypt {
namespace {

using edu::integrity_edu;
using edu::integrity_edu_config;
using edu::integrity_level;

struct rig {
  sim::dram chip{8u << 20};
  sim::external_memory ext{chip};
  rng r{99};
  crypto::aes prf{r.random_bytes(16)};
  bytes mac_key{r.random_bytes(16)};

  integrity_edu make(integrity_level level) {
    integrity_edu_config cfg;
    cfg.level = level;
    return integrity_edu(ext, prf, mac_key, cfg);
  }
};

TEST(IntegrityEdu, RoundTripAllLevels) {
  for (integrity_level level :
       {integrity_level::none, integrity_level::mac, integrity_level::mac_versioned}) {
    rig rg;
    integrity_edu e = rg.make(level);
    const bytes img = rg.r.random_bytes(4096);
    e.install_image(0, img);
    bytes back(img.size());
    e.read_image(0, back);
    EXPECT_EQ(back, img) << static_cast<int>(level);
    EXPECT_EQ(e.tamper_events(), 0u);
  }
}

TEST(IntegrityEdu, CiphertextAndTagsInExternalMemory) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac_versioned);
  const bytes line(32, 0x55);
  (void)e.write(0x100, line);

  bytes raw(32);
  rg.chip.read_bytes(0x100, raw);
  EXPECT_NE(raw, line); // ciphertext

  bytes tag(e.config().tag_bytes);
  rg.chip.read_bytes(e.tag_addr(0x100), tag);
  bool tag_nonzero = false;
  for (u8 b : tag)
    if (b) tag_nonzero = true;
  EXPECT_TRUE(tag_nonzero);
}

TEST(IntegrityEdu, VersionedWritesChangeCiphertext) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac_versioned);
  const bytes line(32, 0x42);
  (void)e.write(0x200, line);
  bytes ct1(32);
  rg.chip.read_bytes(0x200, ct1);
  (void)e.write(0x200, line); // same data again
  bytes ct2(32);
  rg.chip.read_bytes(0x200, ct2);
  EXPECT_NE(ct1, ct2); // fresh pad per version: no two-time pad
}

TEST(IntegrityEdu, UnversionedWritesReusePad) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac);
  const bytes line(32, 0x42);
  (void)e.write(0x200, line);
  bytes ct1(32);
  rg.chip.read_bytes(0x200, ct1);
  (void)e.write(0x200, line);
  bytes ct2(32);
  rg.chip.read_bytes(0x200, ct2);
  EXPECT_EQ(ct1, ct2); // deterministic: the weakness pad_reuse exploits
}

TEST(IntegrityEdu, SubLineWritePaysRmw) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac);
  const bytes word = {1, 2, 3, 4};
  (void)e.write(0x304, word);
  EXPECT_EQ(e.stats().rmw_ops, 1u);
  bytes back(4);
  (void)e.read(0x304, back);
  EXPECT_EQ(back, word);
}

TEST(IntegrityEdu, CostOrderingAcrossLevels) {
  const bytes line(32, 0x11);
  cycles t[3];
  int idx = 0;
  for (integrity_level level :
       {integrity_level::none, integrity_level::mac, integrity_level::mac_versioned}) {
    rig rg;
    integrity_edu e = rg.make(level);
    (void)e.write(0, line);
    bytes buf(32);
    t[idx++] = e.read(0, buf);
  }
  EXPECT_LT(t[0], t[1]); // MAC adds tag fetch + MAC unit time
  EXPECT_LE(t[1], t[2] + 1);
}

TEST(IntegrityEdu, RejectsBadConfig) {
  rig rg;
  integrity_edu_config cfg;
  cfg.tag_bytes = 0;
  EXPECT_THROW(integrity_edu(rg.ext, rg.prf, rg.mac_key, cfg), std::invalid_argument);
  cfg = {};
  cfg.tag_base = 0; // overlaps protected range
  EXPECT_THROW(integrity_edu(rg.ext, rg.prf, rg.mac_key, cfg), std::invalid_argument);
}

// --- the detection matrix ---------------------------------------------------

TEST(TamperSuite, NoProtectionMissesEverything) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::none);
  const auto rep = attack::run_tamper_suite(e, rg.chip, 0x400, 0x800);
  EXPECT_FALSE(rep.spoof_detected);
  EXPECT_FALSE(rep.splice_detected);
  EXPECT_FALSE(rep.replay_detected);
  EXPECT_TRUE(rep.spoof_corrupted_data); // and the CPU silently ate garbage
}

TEST(TamperSuite, MacCatchesSpoofAndSpliceButNotReplay) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac);
  const auto rep = attack::run_tamper_suite(e, rg.chip, 0x400, 0x800);
  EXPECT_TRUE(rep.spoof_detected);
  EXPECT_TRUE(rep.splice_detected);
  EXPECT_FALSE(rep.replay_detected);
  EXPECT_TRUE(rep.replay_restored_stale); // the rollback WORKED
}

TEST(TamperSuite, VersionedMacCatchesAllThree) {
  rig rg;
  integrity_edu e = rg.make(integrity_level::mac_versioned);
  const auto rep = attack::run_tamper_suite(e, rg.chip, 0x400, 0x800);
  EXPECT_TRUE(rep.spoof_detected);
  EXPECT_TRUE(rep.splice_detected);
  EXPECT_TRUE(rep.replay_detected);
  EXPECT_FALSE(rep.replay_restored_stale);
}

// --- pad reuse ----------------------------------------------------------------

TEST(PadReuse, StreamEduLeaksXorOfPlaintexts) {
  // The address-only pad of stream_edu reuses its pad on rewrite; a probe
  // capturing both versions cancels it.
  sim::dram chip(1 << 20);
  sim::external_memory ext(chip);
  rng r(7);
  const crypto::aes prf(r.random_bytes(16));
  edu::stream_edu s(ext, prf, {});

  const char* msg1 = "balance: $0000100.00 USD acct#777 ";
  const char* msg2 = "balance: $9999999.99 USD acct#777 ";
  const bytes pt1(reinterpret_cast<const u8*>(msg1), reinterpret_cast<const u8*>(msg1) + 34);
  const bytes pt2(reinterpret_cast<const u8*>(msg2), reinterpret_cast<const u8*>(msg2) + 34);

  (void)s.write(0x500, pt1);
  bytes ct1(34);
  chip.read_bytes(0x500, ct1);
  (void)s.write(0x500, pt2);
  bytes ct2(34);
  chip.read_bytes(0x500, ct2);

  // The attacker knows msg1 (e.g. the advertised default) and recovers msg2.
  const bytes recovered = attack::two_time_pad_recover(ct1, ct2, pt1);
  EXPECT_EQ(recovered, pt2);
  EXPECT_GT(attack::printable_fraction(recovered), 0.95);
}

TEST(PadReuse, VersionedPadsDefeatIt) {
  sim::dram chip(8u << 20);
  sim::external_memory ext(chip);
  rng r(8);
  const crypto::aes prf(r.random_bytes(16));
  integrity_edu e(ext, prf, r.random_bytes(16), {});

  bytes pt1(32, 'A');
  bytes pt2(32, 'B');
  (void)e.write(0x4e0, pt1);
  bytes ct1(32);
  chip.read_bytes(0x4e0, ct1);
  (void)e.write(0x4e0, pt2);
  bytes ct2(32);
  chip.read_bytes(0x4e0, ct2);

  const bytes recovered = attack::two_time_pad_recover(ct1, ct2, pt1);
  EXPECT_NE(recovered, pt2); // pads differ: XOR does not cancel
}

TEST(PadReuse, InputValidation) {
  EXPECT_THROW((void)attack::xor_ciphertexts(bytes(4), bytes(5)), std::invalid_argument);
  EXPECT_THROW((void)attack::two_time_pad_recover(bytes(4), bytes(4), bytes(5)),
               std::invalid_argument);
}

// --- address-trace leakage ------------------------------------------------------

TEST(TraceAnalysis, LoopStructureVisibleThroughEncryption) {
  // Data is perfectly encrypted; the fetch ADDRESS sequence still shows a
  // loop bigger than the cache, its period, and the working set.
  edu::soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.mem_size = 4u << 20;
  edu::secure_soc soc(edu::engine_kind::stream_otp, cfg);
  rng r(9);
  soc.load_image(0, r.random_bytes(256 * 1024));

  sim::recording_probe probe;
  soc.attach_probe(probe);
  // A 64 KiB loop: 16x the cache, so every iteration misses the same way.
  const std::size_t loop_bytes = 64 * 1024;
  sim::workload w;
  w.name = "big-loop";
  for (int iter = 0; iter < 6; ++iter)
    for (addr_t pc = 0; pc < loop_bytes; pc += 4)
      w.accesses.push_back({pc, 4, sim::access_kind::fetch});
  (void)soc.run(w);

  const auto profile = attack::profile_bus_trace(probe, cfg.l1.line_size);
  EXPECT_EQ(profile.distinct_lines, loop_bytes / cfg.l1.line_size);
  EXPECT_EQ(profile.loop_period, loop_bytes / cfg.l1.line_size);
  EXPECT_EQ(profile.write_beats, 0u);
}

TEST(TraceAnalysis, WriteFractionVisible) {
  edu::soc_config cfg;
  cfg.l1.size = 1024;
  cfg.l1.ways = 2;
  cfg.l1.write_back = false;
  cfg.l1.write_allocate = false;
  cfg.mem_size = 4u << 20;
  edu::secure_soc soc(edu::engine_kind::stream_otp, cfg);
  rng r(10);
  soc.load_image(0, r.random_bytes(64 * 1024));
  soc.load_image(1 << 20, bytes(64 * 1024, 0));

  sim::recording_probe probe;
  soc.attach_probe(probe);
  const auto w = sim::make_data_rw(20'000, 64 * 1024, 0.5, 0.5, 4, 11);
  (void)soc.run(w);

  const auto profile = attack::profile_bus_trace(probe, 32);
  EXPECT_GT(profile.write_beats, 0u);
  EXPECT_GT(profile.write_fraction(), 0.05);
  EXPECT_GT(profile.distinct_lines, 100u);
}

TEST(TraceAnalysis, EmptyTrace) {
  sim::recording_probe probe;
  const auto profile = attack::profile_bus_trace(probe, 32);
  EXPECT_EQ(profile.distinct_lines, 0u);
  EXPECT_EQ(profile.loop_period, 0u);
}

} // namespace
} // namespace buscrypt
