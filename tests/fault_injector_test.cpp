// The fault injector: a pure pass-through unarmed, a deterministic
// single-fire fault when armed — torn bus writes, flush/journal power
// cuts, seeded staged-image bit flips, bounded bus stalls. These are the
// primitives tab13's crash-safety claims quantify over, so their exact
// semantics (what lands, what doesn't, when the cut fires) get pinned
// here.

#include "common/rng.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace buscrypt {
namespace {

using sim::fault_injector;
using sim::fault_plan;
using sim::fault_point;
using sim::power_cut;

struct rig {
  sim::dram chip{64u << 10};
  sim::external_memory ext{chip};
  fault_injector fi{ext};
};

TEST(FaultInject, UnarmedIsAPurePassThrough) {
  rig a, b;
  rng r(7);
  const bytes data = r.random_bytes(200);
  const cycles direct = a.ext.write(0x100, data);
  const cycles through = b.fi.write(0x100, data);
  EXPECT_EQ(direct, through);

  bytes da(200), db(200);
  const cycles rd = a.ext.read(0x100, da);
  const cycles rf = b.fi.read(0x100, db);
  EXPECT_EQ(rd, rf);
  EXPECT_EQ(da, data);
  EXPECT_EQ(db, data);
  EXPECT_FALSE(b.fi.fired());
}

TEST(FaultInject, BeatsCountEightByteBusBeats) {
  rig rg;
  rg.fi.arm({}); // reset counters; point none = unarmed
  const bytes data(64, 0xAB);
  (void)rg.fi.write(0, data);            // 8 beats
  bytes buf(20);
  (void)rg.fi.read(0, buf);              // ceil(20/8) = 3 beats
  (void)rg.fi.write(0x40, bytes(1, 1));  // 1 beat
  EXPECT_EQ(rg.fi.beats(), 12u);
}

TEST(FaultInject, BusBeatCutTearsTheWritePrefix) {
  rig rg;
  rg.chip.write_bytes(0x200, bytes(64, 0xEE)); // prior contents
  fault_plan p;
  p.point = fault_point::bus_beat;
  p.trigger = 3; // cut after 3 beats = 24 bytes of the burst
  rg.fi.arm(p);

  bytes data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  EXPECT_THROW((void)rg.fi.write(0x200, data), power_cut);
  EXPECT_TRUE(rg.fi.fired());

  bytes now(64);
  rg.chip.read_bytes(0x200, now);
  for (std::size_t i = 0; i < 24; ++i) EXPECT_EQ(now[i], data[i]) << i;
  for (std::size_t i = 24; i < 64; ++i) EXPECT_EQ(now[i], 0xEE) << i;
}

TEST(FaultInject, BusBeatCutOnReadDeliversNothing) {
  rig rg;
  rg.chip.write_bytes(0, bytes(32, 0x11));
  fault_plan p;
  p.point = fault_point::bus_beat;
  p.trigger = 1;
  rg.fi.arm(p);
  bytes buf(32, 0x00);
  EXPECT_THROW((void)rg.fi.read(0, buf), power_cut);
  EXPECT_EQ(buf, bytes(32, 0x00)); // nothing reached the core
}

TEST(FaultInject, FiresAtMostOncePerArm) {
  rig rg;
  fault_plan p;
  p.point = fault_point::bus_beat;
  p.trigger = 0;
  rg.fi.arm(p);
  EXPECT_THROW((void)rg.fi.write(0, bytes(16, 1)), power_cut);
  // After firing the path is a pass-through again until re-armed.
  const bytes data(16, 2);
  EXPECT_NO_THROW((void)rg.fi.write(0, data));
  bytes back(16);
  rg.chip.read_bytes(0, back);
  EXPECT_EQ(back, data);
}

TEST(FaultInject, FlushCutFiresPastTheTriggerBoundary) {
  rig rg;
  fault_plan p;
  p.point = fault_point::flush;
  p.trigger = 2;
  rg.fi.arm(p);
  EXPECT_NO_THROW(rg.fi.on_flush()); // boundary 1
  EXPECT_NO_THROW(rg.fi.on_flush()); // boundary 2
  EXPECT_THROW(rg.fi.on_flush(), power_cut);
  EXPECT_EQ(rg.fi.flushes(), 3u);
}

TEST(FaultInject, JournalCutLeavesASeededTornPrefix) {
  rig rg;
  fault_plan p;
  p.point = fault_point::journal;
  p.trigger = 1; // second record write tears
  p.seed = 13;   // 13 % 40 = 13 bytes land
  rg.fi.arm(p);

  bytes cell(40, 0xFF);
  const bytes rec_a(40, 0xA0), rec_b(40, 0xB0);
  EXPECT_NO_THROW(rg.fi.nvm_write(cell, rec_a));
  EXPECT_EQ(cell, rec_a); // first record lands whole

  bytes cell2(40, 0xFF);
  EXPECT_THROW(rg.fi.nvm_write(cell2, rec_b), power_cut);
  for (std::size_t i = 0; i < 13; ++i) EXPECT_EQ(cell2[i], 0xB0) << i;
  for (std::size_t i = 13; i < 40; ++i) EXPECT_EQ(cell2[i], 0xFF) << i;
}

TEST(FaultInject, BitFlipHitsOneSeededBitInTheBlastWindow) {
  rig rg;
  const bytes window(256, 0x00);
  rg.chip.write_bytes(0x1000, window);

  fault_plan p;
  p.point = fault_point::bit_flip;
  p.trigger = 0; // first beat past the trigger flips
  p.seed = (u64{5} << 32) | 37; // byte 37, bit 5
  p.blast_base = 0x1000;
  p.blast_len = 256;
  rg.fi.arm(p);

  bytes buf(8);
  EXPECT_NO_THROW((void)rg.fi.read(0x2000, buf)); // traffic passes the trigger
  EXPECT_TRUE(rg.fi.fired());

  bytes now(256);
  rg.chip.read_bytes(0x1000, now);
  for (std::size_t i = 0; i < 256; ++i)
    EXPECT_EQ(now[i], i == 37 ? (1u << 5) : 0x00) << i;
}

TEST(FaultInject, StallsConsumeThenClear) {
  rig rg;
  fault_plan p;
  p.point = fault_point::bus_stall;
  p.stalls = 3;
  rg.fi.arm(p);
  EXPECT_TRUE(rg.fi.stall_pending());
  EXPECT_TRUE(rg.fi.stall_pending());
  EXPECT_FALSE(rg.fi.fired()); // still one stall outstanding
  EXPECT_TRUE(rg.fi.stall_pending());
  EXPECT_TRUE(rg.fi.fired());
  EXPECT_FALSE(rg.fi.stall_pending());
  EXPECT_FALSE(rg.fi.stall_pending());
}

TEST(FaultInject, SamePlanSameTrafficSameTear) {
  const auto run = [](sim::dram& chip) {
    sim::external_memory ext(chip);
    fault_injector fi(ext);
    fault_plan p;
    p.point = fault_point::bus_beat;
    p.trigger = 9;
    fi.arm(p);
    rng r(0x5EED);
    try {
      for (int i = 0; i < 32; ++i)
        (void)fi.write(static_cast<addr_t>(i) * 64, r.random_bytes(48));
    } catch (const power_cut&) {
    }
  };
  sim::dram a(64u << 10), b(64u << 10);
  run(a);
  run(b);
  EXPECT_TRUE(std::equal(a.raw().begin(), a.raw().end(), b.raw().begin()));
}

TEST(FaultInject, PointNamesRoundTrip) {
  for (const fault_point p : sim::all_fault_points) {
    fault_point out{};
    EXPECT_TRUE(sim::parse_fault_point(sim::fault_point_name(p), out));
    EXPECT_EQ(out, p);
  }
  fault_point out = fault_point::flush;
  EXPECT_FALSE(sim::parse_fault_point("meteor-strike", out));
  EXPECT_EQ(out, fault_point::flush);
}

} // namespace
} // namespace buscrypt
