// EDU tests: functional transparency (install/read-back through every
// engine), ciphertext actually on the bus/DRAM, timing-policy behaviours
// (stream parallelism, RMW penalties, prefetching, page faulting, MAC
// verification), and the secure_soc assembly.

#include "attack/probe.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"

#include <algorithm>
#include <cctype>
#include "compress/entropy.hpp"
#include "crypto/aes.hpp"
#include "crypto/des.hpp"
#include "edu/aegis_edu.hpp"
#include "edu/block_edu.hpp"
#include "edu/compress_edu.hpp"
#include "edu/dma_edu.hpp"
#include "edu/gi_edu.hpp"
#include "edu/gilmont_edu.hpp"
#include "edu/soc.hpp"
#include "edu/stream_edu.hpp"

#include <gtest/gtest.h>

namespace buscrypt::edu {
namespace {

using sim::access_kind;
using sim::workload;

/// Code-like image: repetitive words so ECB leakage and compression are
/// both visible.
bytes make_image(std::size_t size, u64 seed) {
  rng r(seed);
  bytes img(size);
  static constexpr u32 words[] = {0xE5921000, 0xE5832004, 0x47702000, 0xB510F000};
  for (std::size_t off = 0; off + 4 <= size; off += 4)
    store_le32(&img[off], words[r.below(4)] ^ static_cast<u32>(r.below(16)));
  return img;
}

soc_config default_cfg() {
  soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  return cfg;
}

// --- parameterized over every engine ---------------------------------------

class EveryEngine : public ::testing::TestWithParam<engine_kind> {};

TEST_P(EveryEngine, InstallReadBackRoundTrip) {
  secure_soc soc(GetParam(), default_cfg());
  const bytes img = make_image(8 * 1024, 1);
  soc.load_image(0, img);
  EXPECT_EQ(soc.read_back(0, img.size()), img) << engine_name(GetParam());
}

TEST_P(EveryEngine, DramHoldsCiphertextExceptBaselines) {
  secure_soc soc(GetParam(), default_cfg());
  const bytes img = make_image(8 * 1024, 2);
  soc.load_image(0, img);
  soc.flush();

  std::size_t matches = 0;
  const auto raw = soc.memory().raw();
  for (std::size_t i = 0; i < img.size(); ++i)
    if (raw[i] == img[i]) ++matches;
  const double match_rate = static_cast<double>(matches) / static_cast<double>(img.size());

  if (GetParam() == engine_kind::plaintext) {
    EXPECT_GT(match_rate, 0.99);
  } else if (GetParam() == engine_kind::best_stp) {
    // Best's cipher permutes bytes without mixing; coincidental matches
    // run a few percent — itself evidence of its weakness.
    EXPECT_LT(match_rate, 0.06);
  } else {
    EXPECT_LT(match_rate, 0.02) << engine_name(GetParam());
  }
}

TEST_P(EveryEngine, WorkloadRunsAndSlowsDownSanely) {
  soc_config cfg = default_cfg();
  const workload w = sim::make_jumpy_code(30'000, 128 * 1024, 0.05, 3);

  secure_soc base(engine_kind::plaintext, cfg);
  base.load_image(0, make_image(128 * 1024, 4));
  const sim::run_stats base_rs = base.run(w);

  secure_soc soc(GetParam(), cfg);
  soc.load_image(0, make_image(128 * 1024, 4));
  const sim::run_stats rs = soc.run(w);

  EXPECT_EQ(rs.instructions, base_rs.instructions);
  const double slowdown = rs.slowdown_vs(base_rs);
  EXPECT_GE(slowdown, 0.5) << engine_name(GetParam());
  // GI's whole-segment CBC+MAC is the survey's "unacceptable" data point;
  // everything else stays within an order of magnitude.
  const double cap = GetParam() == engine_kind::gi_3des_cbc ? 200.0 : 40.0;
  EXPECT_LT(slowdown, cap) << engine_name(GetParam());
  // Engines that add prefetching (Gilmont) or compression (Fig. 8) can
  // legitimately beat the unprotected baseline.
  if (GetParam() != engine_kind::plaintext &&
      GetParam() != engine_kind::compress_otp &&
      GetParam() != engine_kind::gilmont_3des) {
    EXPECT_GE(slowdown, 1.0) << engine_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EveryEngine, ::testing::ValuesIn(all_engines()),
    [](const ::testing::TestParamInfo<engine_kind>& info) {
      std::string n(engine_name(info.param));
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// --- per-engine behaviours ---------------------------------------------------

TEST(StreamEdu, ParallelKeystreamHidesPadLatency) {
  // Separate DRAMs so open-row state cannot skew the comparison.
  sim::dram d1(1 << 20), d2(1 << 20), d3(1 << 20);
  sim::external_memory ext1(d1), ext2(d2), ext3(d3);
  rng r(5);
  const crypto::aes prf(r.random_bytes(16));

  stream_edu_config par;
  stream_edu parallel(ext1, prf, par);
  stream_edu_config ser = par;
  ser.parallel_keystream = false;
  stream_edu serial(ext2, prf, ser);

  bytes buf(32);
  const cycles t_par = parallel.read(0x100, buf);
  const cycles t_ser = serial.read(0x100, buf);
  EXPECT_LT(t_par, t_ser);
  // Parallel ~ max(mem, pad) + 1: barely above raw memory for a line.
  const cycles mem_only = ext3.read(0x100, buf);
  EXPECT_LE(t_par, std::max(mem_only, par.pad_core.time_parallel(2)) +
                       par.xor_cycles);
}

TEST(StreamEdu, NoRmwForSubBlockWrites) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(6);
  const crypto::aes prf(r.random_bytes(16));
  stream_edu s(ext, prf, {});
  const bytes one = {0x42};
  (void)s.write(0x123, one); // 1-byte store, block size 16
  EXPECT_EQ(s.stats().rmw_ops, 0u);
  bytes back(1);
  (void)s.read(0x123, back);
  EXPECT_EQ(back, one);
}

TEST(BlockEdu, SubBlockWritePaysRmw) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(7);
  const crypto::aes cipher(r.random_bytes(16));
  block_edu b(ext, cipher, {block_mode::ecb, aes_iterative(), 32, 0});

  bytes line(16);
  (void)b.write(0, line); // aligned full block: no RMW
  EXPECT_EQ(b.stats().rmw_ops, 0u);

  const bytes one = {0x55};
  const cycles t_small = b.write(0x20, one);
  EXPECT_EQ(b.stats().rmw_ops, 1u);

  bytes block(16);
  const cycles t_full = b.write(0x40, block);
  EXPECT_GT(t_small, t_full); // the five-step penalty

  bytes back(1);
  (void)b.read(0x20, back);
  EXPECT_EQ(back[0], 0x55);
}

TEST(BlockEdu, CbcEncryptChainsSerially) {
  // Separate DRAMs, same address: only the chaining policy differs.
  sim::dram d1(1 << 20), d2(1 << 20);
  sim::external_memory ext1(d1), ext2(d2);
  rng r(8);
  const crypto::aes cipher(r.random_bytes(16));
  block_edu ecb(ext1, cipher, {block_mode::ecb, aes_pipelined(), 32, 0});
  block_edu cbc(ext2, cipher, {block_mode::cbc_line, aes_pipelined(), 32, 0});

  bytes line(32);
  const cycles t_ecb = ecb.write(0, line);
  const cycles t_cbc = cbc.write(0, line);
  EXPECT_GT(t_cbc, t_ecb); // chained encryption drains the pipeline
}

TEST(BlockEdu, EcbLeaksStructureCbcDoesNot) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(9);
  const crypto::aes cipher(r.random_bytes(16));
  block_edu ecb(ext, cipher, {block_mode::ecb, aes_iterative(), 32, 0});
  block_edu cbc(ext, cipher, {block_mode::cbc_line, aes_iterative(), 32, 1});

  const bytes img(4096, 0xAA); // maximally repetitive
  ecb.install_image(0, img);
  cbc.install_image(1 << 19, img);
  const auto raw = d.raw();
  const std::size_t ecb_reps = compress::repeated_blocks(raw.subspan(0, 4096), 16);
  const std::size_t cbc_reps =
      compress::repeated_blocks(raw.subspan(1 << 19, 4096), 16);
  EXPECT_EQ(ecb_reps, 4096u / 16);
  EXPECT_EQ(cbc_reps, 0u);
}

TEST(GilmontEdu, PrefetchHitsOnSequentialFetch) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(10);
  const crypto::triple_des cipher(r.random_bytes(24));
  gilmont_edu g(ext, cipher, {});
  g.install_image(0, make_image(4096, 11));

  bytes line(32);
  cycles first = g.read(0, line);
  cycles second = g.read(32, line); // predicted!
  EXPECT_LT(second, first / 4);
  EXPECT_GE(g.prefetch_hits(), 1u);
}

TEST(GilmontEdu, DataRegionIsClearForm) {
  sim::dram d(1 << 21);
  sim::external_memory ext(d);
  rng r(12);
  const crypto::triple_des cipher(r.random_bytes(24));
  gilmont_edu_config cfg;
  cfg.code_limit = 1 << 20;
  gilmont_edu g(ext, cipher, cfg);

  const bytes data = {1, 2, 3, 4};
  (void)g.write((1 << 20) + 64, data);
  bytes raw(4);
  d.read_bytes((1 << 20) + 64, raw);
  EXPECT_EQ(raw, data); // the surveyed limitation: data travels in clear
}

TEST(DmaEdu, PageFaultsAmortize) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(13);
  const crypto::aes cipher(r.random_bytes(16));

  // Install via one engine instance, then measure on a fresh one with
  // cold page buffers (same key and config -> same ciphertext mapping).
  {
    dma_edu installer(ext, cipher, {});
    installer.install_image(0, make_image(64 * 1024, 14));
    (void)installer.flush();
  }
  dma_edu dma(ext, cipher, {});

  bytes buf(32);
  const cycles fault = dma.read(0, buf);
  const cycles hit = dma.read(32, buf);
  EXPECT_GT(fault, hit * 10);
  EXPECT_EQ(dma.page_faults(), 1u);

  // Touch more pages than buffers: faults every time.
  for (int p = 0; p < 8; ++p) (void)dma.read(static_cast<addr_t>(p) * 4096, buf);
  EXPECT_GE(dma.page_faults(), 5u);
}

TEST(DmaEdu, DirtyPageWritebackPreservesData) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(15);
  const crypto::aes cipher(r.random_bytes(16));
  dma_edu dma(ext, cipher, {4096, 2, 2, aes_pipelined(), 0x99});

  const bytes v1 = {0xDE, 0xAD};
  (void)dma.write(100, v1);
  // Evict page 0 by touching three other pages.
  bytes buf(8);
  for (int p = 1; p <= 3; ++p) (void)dma.read(static_cast<addr_t>(p) * 4096, buf);
  bytes back(2);
  (void)dma.read(100, back);
  EXPECT_EQ(back, v1);
  // And DRAM holds ciphertext of it, not plaintext.
  bytes raw(2);
  d.read_bytes(100, raw);
  EXPECT_NE(raw, v1);
}

TEST(GiEdu, TamperDetectedByKeyedHash) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(16);
  const crypto::triple_des cipher(r.random_bytes(24));
  gi_edu_config cfg;
  cfg.verified_cache_entries = 1; // re-verify on every segment change
  gi_edu gi(ext, cipher, r.random_bytes(16), cfg);
  gi.install_image(0, make_image(4096, 17));

  bytes buf(32);
  (void)gi.read(0, buf);
  EXPECT_EQ(gi.auth_failures(), 0u);

  // Class-II tamper: flip a bit in external memory, then return to the
  // segment after its verified-cache entry has aged out.
  d.raw()[100] ^= 0x01;
  (void)gi.read(2048, buf); // evicts segment 0 from the verified window
  (void)gi.read(64, buf);   // segment 0 again -> verification fires
  EXPECT_GE(gi.auth_failures(), 1u);
}

TEST(GiEdu, RandomAccessCostsWholeSegment) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(18);
  const crypto::triple_des cipher(r.random_bytes(24));
  gi_edu gi(ext, cipher, r.random_bytes(16), {});
  gi.install_image(0, make_image(64 * 1024, 19));

  bytes line(32);
  const cycles random_touch = gi.read(40'000, line);

  // Compare to a stream EDU touching the same line.
  rng r2(20);
  const crypto::aes prf(r2.random_bytes(16));
  stream_edu s(ext, prf, {});
  const cycles stream_touch = s.read(40'000 + 70'000, line);
  EXPECT_GT(random_touch, stream_touch * 5);
}

TEST(AegisEdu, FreshNoncePerWrite) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(21);
  const crypto::aes cipher(r.random_bytes(16));
  aegis_edu a(ext, cipher, {});

  bytes line(32, 0x77);
  (void)a.write(0, line);
  bytes ct1(32);
  d.read_bytes(0, ct1);
  (void)a.write(0, line); // same data, same address
  bytes ct2(32);
  d.read_bytes(0, ct2);
  EXPECT_NE(ct1, ct2); // freshness: ciphertext changes anyway

  bytes back(32);
  (void)a.read(0, back);
  EXPECT_EQ(back, line);
}

TEST(AegisEdu, CounterNoncesAreSequential) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(22);
  const crypto::aes cipher(r.random_bytes(16));
  aegis_edu a(ext, cipher, {32, aegis_iv_mode::counter, aes_pipelined(), 1});
  bytes line(32);
  for (int i = 0; i < 5; ++i) (void)a.write(64, line);
  EXPECT_EQ(a.nonces().at(64), 5u);
}

TEST(CompressEdu, DensityGainOnCode) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(23);
  const crypto::aes prf(r.random_bytes(16));
  compress_edu ce(ext, prf, {});

  const bytes img = make_image(64 * 1024, 24);
  ce.install_code(0, img);
  EXPECT_GT(ce.density_gain(), 0.15);

  bytes line(32);
  (void)ce.read(1024, line);
  EXPECT_TRUE(std::equal(line.begin(), line.end(), img.begin() + 1024));
}

TEST(CompressEdu, CodeRegionReadOnly) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(25);
  const crypto::aes prf(r.random_bytes(16));
  compress_edu ce(ext, prf, {});
  ce.install_code(0, make_image(4096, 26));
  const bytes data = {1};
  EXPECT_THROW((void)ce.write(100, data), std::logic_error);
  (void)ce.write(8192, data); // data region is fine
}

TEST(CompressEdu, CompressedFetchReadsFewerBusBytes) {
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(27);
  const crypto::aes prf(r.random_bytes(16));
  compress_edu ce(ext, prf, {});
  const bytes img = make_image(64 * 1024, 28);
  ce.install_code(0, img);

  const u64 before = ext.bytes_read();
  bytes line(64);
  (void)ce.read(4096, line);
  const u64 moved = ext.bytes_read() - before;
  EXPECT_LT(moved, 64u); // compressed group smaller than the line
}

TEST(SecureSoc, EngineNamesRoundTrip) {
  for (engine_kind k : all_engines()) {
    secure_soc soc(k, default_cfg());
    EXPECT_FALSE(engine_name(k).empty());
  }
}

TEST(SecureSoc, BusProbeSeesOnlyCiphertext) {
  soc_config cfg = default_cfg();
  secure_soc soc(engine_kind::stream_otp, cfg);
  const bytes img = make_image(32 * 1024, 29);
  soc.load_image(0, img);

  sim::recording_probe probe;
  soc.attach_probe(probe);
  const workload w = sim::make_jumpy_code(20'000, 32 * 1024, 0.1, 30);
  (void)soc.run(w);

  ASSERT_FALSE(probe.log().empty());
  EXPECT_LT(attack::leakage_fraction(probe, 0, img), 0.02);
}

TEST(SecureSoc, PlaintextBaselineLeaksEverythingTouched) {
  soc_config cfg = default_cfg();
  secure_soc soc(engine_kind::plaintext, cfg);
  const bytes img = make_image(32 * 1024, 31);
  soc.load_image(0, img);

  sim::recording_probe probe;
  soc.attach_probe(probe);
  const workload w = sim::make_jumpy_code(20'000, 32 * 1024, 0.1, 32);
  (void)soc.run(w);

  EXPECT_GT(attack::leakage_fraction(probe, 0, img), 0.5);
}

} // namespace
} // namespace buscrypt::edu
