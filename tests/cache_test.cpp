// Cache model: hit/miss accounting, LRU, write policies, data integrity.

#include "common/rng.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace buscrypt::sim {
namespace {

/// A scripted lower level that records traffic and serves bytes from a
/// flat image with fixed latency.
class scripted_memory final : public memory_port {
 public:
  explicit scripted_memory(std::size_t size, cycles latency = 50)
      : image_(size, 0), latency_(latency) {}

  cycles read(addr_t addr, std::span<u8> out) override {
    ++reads;
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = image_[addr + i];
    return latency_;
  }
  cycles write(addr_t addr, std::span<const u8> in) override {
    ++writes;
    for (std::size_t i = 0; i < in.size(); ++i) image_[addr + i] = in[i];
    return latency_;
  }

  bytes image_;
  u64 reads = 0;
  u64 writes = 0;

 private:
  cycles latency_;
};

cache_config small_cache() {
  cache_config cfg;
  cfg.size = 1024;
  cfg.line_size = 32;
  cfg.ways = 2;
  cfg.hit_latency = 1;
  return cfg;
}

TEST(Cache, ColdMissThenHit) {
  scripted_memory mem(1 << 16);
  cache c(small_cache(), mem);
  bytes buf(4);

  const cycles first = c.read(0x100, buf);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_GT(first, 1u);

  const cycles second = c.read(0x104, buf); // same line
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(mem.reads, 1u); // one line fill only
}

TEST(Cache, ReadsReturnWrittenData) {
  scripted_memory mem(1 << 16);
  rng r(1);
  for (std::size_t i = 0; i < mem.image_.size(); ++i) mem.image_[i] = r.next_byte();

  cache c(small_cache(), mem);
  bytes buf(8);
  for (int i = 0; i < 200; ++i) {
    const addr_t a = r.below((1 << 16) - 8);
    (void)c.read(a, buf);
    for (int k = 0; k < 8; ++k)
      ASSERT_EQ(buf[static_cast<std::size_t>(k)], mem.image_[a + static_cast<std::size_t>(k)]);
  }
}

TEST(Cache, WriteBackDefersAndFlushes) {
  scripted_memory mem(1 << 16);
  cache c(small_cache(), mem);
  const bytes data = {1, 2, 3, 4};
  (void)c.write(0x200, data);
  EXPECT_EQ(mem.writes, 0u); // dirty in cache only
  EXPECT_EQ(mem.image_[0x200], 0);

  (void)c.flush();
  EXPECT_EQ(mem.writes, 1u);
  EXPECT_EQ(mem.image_[0x200], 1);
  EXPECT_EQ(mem.image_[0x203], 4);
}

TEST(Cache, DirtyEvictionWritesBack) {
  cache_config cfg = small_cache(); // 16 sets, 2 ways
  scripted_memory mem(1 << 20);
  cache c(cfg, mem);
  const bytes data = {0xAA};
  // Three lines mapping to the same set (stride = line * sets = 512).
  (void)c.write(0x0000, data);
  (void)c.write(0x0200, data);
  EXPECT_EQ(mem.writes, 0u);
  (void)c.write(0x0400, data); // evicts the LRU dirty line 0x0000
  EXPECT_EQ(mem.writes, 1u);
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(mem.image_[0x0000], 0xAA);
}

TEST(Cache, LruPrefersRecentlyUsed) {
  cache_config cfg = small_cache();
  scripted_memory mem(1 << 20);
  cache c(cfg, mem);
  bytes buf(1);
  (void)c.read(0x0000, buf); // A
  (void)c.read(0x0200, buf); // B (same set)
  (void)c.read(0x0000, buf); // touch A again
  (void)c.read(0x0400, buf); // C evicts B, not A
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0200));
  EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, WriteThroughAlwaysWritesBelow) {
  cache_config cfg = small_cache();
  cfg.write_back = false;
  cfg.write_allocate = false;
  scripted_memory mem(1 << 16);
  cache c(cfg, mem);
  const bytes data = {9, 9};
  (void)c.write(0x300, data);
  (void)c.write(0x300, data);
  EXPECT_EQ(mem.writes, 2u);
  EXPECT_EQ(mem.image_[0x300], 9);
  EXPECT_EQ(c.stats().bypass_writes, 2u);
}

TEST(Cache, WriteThroughUpdatesResidentLine) {
  cache_config cfg = small_cache();
  cfg.write_back = false;
  cfg.write_allocate = false;
  scripted_memory mem(1 << 16);
  mem.image_[0x100] = 5;
  cache c(cfg, mem);
  bytes buf(1);
  (void)c.read(0x100, buf); // line now resident
  EXPECT_EQ(buf[0], 5);
  const bytes data = {7};
  (void)c.write(0x100, data);
  (void)c.read(0x100, buf); // must see the new value from the cache
  EXPECT_EQ(buf[0], 7);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, AccessStraddlingLines) {
  scripted_memory mem(1 << 16);
  rng r(2);
  for (std::size_t i = 0; i < mem.image_.size(); ++i) mem.image_[i] = r.next_byte();
  cache c(small_cache(), mem);
  bytes buf(8);
  (void)c.read(32 - 4, buf); // 4 bytes in line 0, 4 in line 1
  for (int k = 0; k < 8; ++k)
    EXPECT_EQ(buf[static_cast<std::size_t>(k)], mem.image_[28 + static_cast<std::size_t>(k)]);
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, MissRateDropsWithFootprintFit) {
  scripted_memory mem(1 << 20);
  cache c(small_cache(), mem); // 1 KiB cache
  rng r(3);
  bytes buf(4);

  // Working set fits: after warmup everything hits.
  for (int i = 0; i < 2000; ++i) (void)c.read(r.below(1024 - 4), buf);
  const double fit_rate = c.stats().miss_rate();
  EXPECT_LT(fit_rate, 0.05);

  c.reset_stats();
  for (int i = 0; i < 2000; ++i) (void)c.read(r.below((1 << 18) - 4), buf);
  EXPECT_GT(c.stats().miss_rate(), 0.5);
}

TEST(Cache, RejectsBadGeometry) {
  scripted_memory mem(1024);
  cache_config cfg = small_cache();
  cfg.line_size = 24; // not a power of two
  EXPECT_THROW(cache(cfg, mem), std::invalid_argument);
  cfg = small_cache();
  cfg.ways = 0;
  EXPECT_THROW(cache(cfg, mem), std::invalid_argument);
  cfg = small_cache();
  cfg.size = 1000; // not a multiple
  EXPECT_THROW(cache(cfg, mem), std::invalid_argument);
}

TEST(Cache, StallCyclesTrackMissCost) {
  scripted_memory mem(1 << 16, 80);
  cache c(small_cache(), mem);
  bytes buf(4);
  (void)c.read(0, buf);
  EXPECT_EQ(c.stats().stall_cycles, 80u);
  (void)c.read(4, buf);
  EXPECT_EQ(c.stats().stall_cycles, 80u); // hit adds nothing
}

} // namespace
} // namespace buscrypt::sim
