// SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 4231) and CBC-MAC tests.

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/mac.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

std::string hash_hex(std::string_view msg) {
  const auto d = sha256::hash(
      std::span<const u8>(reinterpret_cast<const u8*>(msg.data()), msg.size()));
  return to_hex(d);
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  sha256 ctx;
  const bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  rng r(1);
  const bytes msg = r.random_bytes(10'000);
  sha256 ctx;
  std::size_t off = 0;
  while (off < msg.size()) {
    const std::size_t n = std::min<std::size_t>(1 + r.below(257), msg.size() - off);
    ctx.update(std::span<const u8>(msg).subspan(off, n));
    off += n;
  }
  EXPECT_EQ(ctx.digest(), sha256::hash(msg));
}

TEST(Sha256, PaddingBoundaries) {
  // Message lengths straddling the 55/56/64-byte padding edges.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const bytes msg(len, 0x5A);
    sha256 a;
    a.update(msg);
    EXPECT_EQ(a.digest(), sha256::hash(msg)) << len;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const bytes key(20, 0x0b);
  const char* data = "Hi There";
  const auto mac = hmac_sha256(
      key, std::span<const u8>(reinterpret_cast<const u8*>(data), 8));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const char* key = "Jefe";
  const char* data = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      std::span<const u8>(reinterpret_cast<const u8*>(key), 4),
      std::span<const u8>(reinterpret_cast<const u8*>(data), 28));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const bytes key(20, 0xaa);
  const bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const bytes key(131, 0xaa);
  const char* data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, std::span<const u8>(reinterpret_cast<const u8*>(data), 54));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TruncatedTags) {
  rng r(2);
  const bytes key = r.random_bytes(16);
  const bytes msg = r.random_bytes(100);
  const auto full = hmac_sha256(key, msg);
  const bytes tag8 = hmac_sha256_tag(key, msg, 8);
  ASSERT_EQ(tag8.size(), 8u);
  EXPECT_TRUE(std::equal(tag8.begin(), tag8.end(), full.begin()));
  EXPECT_THROW((void)hmac_sha256_tag(key, msg, 0), std::invalid_argument);
  EXPECT_THROW((void)hmac_sha256_tag(key, msg, 33), std::invalid_argument);
}

TEST(CbcMac, DetectsAnyFlippedBit) {
  rng r(3);
  const aes c(r.random_bytes(16));
  bytes msg = r.random_bytes(64);
  const bytes tag = cbc_mac(c, msg);
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    msg[i] ^= 0x40;
    EXPECT_NE(cbc_mac(c, msg), tag) << i;
    msg[i] ^= 0x40;
  }
  EXPECT_EQ(cbc_mac(c, msg), tag);
}

TEST(CbcMac, RequiresBlockMultiple) {
  rng r(4);
  const aes c(r.random_bytes(16));
  EXPECT_THROW((void)cbc_mac(c, r.random_bytes(15)), std::invalid_argument);
}

TEST(TagEqual, ConstantTimeSemantics) {
  const bytes a = {1, 2, 3, 4};
  const bytes b = {1, 2, 3, 4};
  const bytes c = {1, 2, 3, 5};
  const bytes d = {1, 2, 3};
  EXPECT_TRUE(tag_equal(a, b));
  EXPECT_FALSE(tag_equal(a, c));
  EXPECT_FALSE(tag_equal(a, d));
}

} // namespace
} // namespace buscrypt::crypto
