// Differential fuzzing: every storage path in the library is compared,
// operation by operation, against a flat reference memory under thousands
// of random reads/writes. Any divergence in the functional data path —
// cipher, mode, RMW splitting, page buffering, cache coherence — fails.

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/best_cipher.hpp"
#include "crypto/des.hpp"
#include "crypto/modes.hpp"
#include "edu/soc.hpp"
#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>

namespace buscrypt {
namespace {

constexpr std::size_t k_arena = 64 * 1024;

/// One random operation against both the device under test and the model.
template <typename ReadFn, typename WriteFn>
void fuzz_ops(rng& r, std::size_t n_ops, bytes& model, ReadFn do_read, WriteFn do_write) {
  for (std::size_t op = 0; op < n_ops; ++op) {
    const std::size_t len = 1 + r.below(64);
    const addr_t addr = r.below(k_arena - len);
    if (r.chance(0.5)) {
      const bytes data = r.random_bytes(len);
      do_write(addr, data);
      for (std::size_t i = 0; i < len; ++i) model[addr + i] = data[i];
    } else {
      bytes got(len);
      do_read(addr, got);
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(got[i], model[addr + i]) << "op " << op << " addr " << addr + i;
    }
  }
}

// --- every engine through the full SoC read_back/load path -----------------

class EngineFuzz : public ::testing::TestWithParam<edu::engine_kind> {};

TEST_P(EngineFuzz, RandomOpsMatchReferenceMemory) {
  edu::soc_config cfg;
  cfg.l1.size = 2 * 1024; // small cache: force evictions and refills
  cfg.l1.ways = 2;
  cfg.mem_size = 8u << 20;
  edu::secure_soc soc(GetParam(), cfg);

  rng r(static_cast<u64>(GetParam()) * 977 + 5);
  bytes model(k_arena, 0);
  soc.load_image(0, model);

  // Drive the CPU-visible port: the cache for bus-side engines, the EDU
  // itself for the Fig. 7b cache-side placement.
  sim::memory_port& port = GetParam() == edu::engine_kind::cacheside_otp
                               ? static_cast<sim::memory_port&>(soc.engine())
                               : static_cast<sim::memory_port&>(soc.l1());
  fuzz_ops(
      r, 1500, model,
      [&](addr_t a, std::span<u8> out) { (void)port.read(a, out); },
      [&](addr_t a, std::span<const u8> in) { (void)port.write(a, in); });

  // Final sweep: flush everything and audit the full arena.
  EXPECT_EQ(soc.read_back(0, k_arena), model);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineFuzz,
    ::testing::Values(edu::engine_kind::plaintext, edu::engine_kind::best_stp,
                      edu::engine_kind::dallas_byte, edu::engine_kind::dallas_des,
                      edu::engine_kind::block_ecb_aes, edu::engine_kind::block_cbc_aes,
                      edu::engine_kind::xom_aes, edu::engine_kind::aegis_cbc,
                      edu::engine_kind::gi_3des_cbc, edu::engine_kind::stream_otp,
                      edu::engine_kind::gilmont_3des, edu::engine_kind::secure_dma,
                      edu::engine_kind::cacheside_otp),
    [](const ::testing::TestParamInfo<edu::engine_kind>& info) {
      std::string n(edu::engine_name(info.param));
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// --- the cache alone against a scripted lower level ------------------------

TEST(CacheFuzz, AllGeometriesMatchReference) {
  for (unsigned ways : {1u, 2u, 8u}) {
    for (std::size_t line : {16u, 32u, 128u}) {
      for (bool write_back : {true, false}) {
        sim::dram d(1 << 20);
        sim::external_memory ext(d);
        sim::cache_config cfg;
        cfg.size = 4 * 1024;
        cfg.line_size = line;
        cfg.ways = ways;
        cfg.write_back = write_back;
        cfg.write_allocate = write_back;
        sim::cache c(cfg, ext);

        rng r(ways * 131 + line + (write_back ? 7 : 0));
        bytes model(k_arena, 0);
        fuzz_ops(
            r, 800, model,
            [&](addr_t a, std::span<u8> out) { (void)c.read(a, out); },
            [&](addr_t a, std::span<const u8> in) { (void)c.write(a, in); });
        (void)c.flush();
        bytes final_mem(k_arena);
        d.read_bytes(0, final_mem);
        EXPECT_EQ(final_mem, model)
            << "ways=" << ways << " line=" << line << " wb=" << write_back;
      }
    }
  }
}

// --- modes over every cipher: encrypt/decrypt identity under random sizes ---

class ModeCipherFuzz : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<crypto::block_cipher> make(rng& r) const {
    switch (GetParam()) {
      case 0: return std::make_unique<crypto::aes>(r.random_bytes(16));
      case 1: return std::make_unique<crypto::aes>(r.random_bytes(32));
      case 2: return std::make_unique<crypto::des>(r.random_bytes(8));
      case 3: return std::make_unique<crypto::triple_des>(r.random_bytes(24));
      default: return std::make_unique<crypto::best_cipher>(r.random_bytes(16));
    }
  }
};

TEST_P(ModeCipherFuzz, AllModesRoundTrip) {
  rng r(static_cast<u64>(GetParam()) + 41);
  const auto c = make(r);
  const std::size_t bs = c->block_size();

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t blocks = 1 + r.below(16);
    const bytes pt = r.random_bytes(blocks * bs);
    const bytes iv = r.random_bytes(bs);
    bytes ct(pt.size()), back(pt.size());

    crypto::ecb_encrypt(*c, pt, ct);
    crypto::ecb_decrypt(*c, ct, back);
    ASSERT_EQ(back, pt) << c->name() << " ECB";

    crypto::cbc_encrypt(*c, iv, pt, ct);
    crypto::cbc_decrypt(*c, iv, ct, back);
    ASSERT_EQ(back, pt) << c->name() << " CBC";

    crypto::cfb_encrypt(*c, iv, pt, ct);
    crypto::cfb_decrypt(*c, iv, ct, back);
    ASSERT_EQ(back, pt) << c->name() << " CFB";

    crypto::ofb_crypt(*c, iv, pt, ct);
    crypto::ofb_crypt(*c, iv, ct, back);
    ASSERT_EQ(back, pt) << c->name() << " OFB";

    crypto::ctr_crypt(*c, 5, 9, pt, ct);
    crypto::ctr_crypt(*c, 5, 9, ct, back);
    ASSERT_EQ(back, pt) << c->name() << " CTR";
  }
}

TEST_P(ModeCipherFuzz, ModesProduceDistinctCiphertexts) {
  rng r(static_cast<u64>(GetParam()) + 97);
  const auto c = make(r);
  const std::size_t bs = c->block_size();
  const bytes pt = r.random_bytes(bs * 8);
  const bytes iv = r.random_bytes(bs);

  bytes ecb(pt.size()), cbc(pt.size()), cfb(pt.size()), ofb(pt.size());
  crypto::ecb_encrypt(*c, pt, ecb);
  crypto::cbc_encrypt(*c, iv, pt, cbc);
  crypto::cfb_encrypt(*c, iv, pt, cfb);
  crypto::ofb_crypt(*c, iv, pt, ofb);
  EXPECT_NE(ecb, cbc);
  EXPECT_NE(cbc, cfb);
  EXPECT_NE(cfb, ofb);
  EXPECT_NE(ecb, ofb);
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, ModeCipherFuzz, ::testing::Values(0, 1, 2, 3, 4));

} // namespace
} // namespace buscrypt
