// Multi-master interconnect: bus_master/bus_arbiter policies and
// accounting, per-master protection domains in the keyslot engine
// (denied-access fault path, slot-pool sharing), mixed-master workload
// generators, soc::run_multi_master solo-vs-concurrent equivalence, and
// per-master bus-beat attribution.

#include "attack/trace_analysis.hpp"
#include "edu/soc.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "sim/bus.hpp"
#include "sim/bus_arbiter.hpp"
#include "sim/bus_master.hpp"
#include "sim/interconnect.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

namespace buscrypt {
namespace {

using namespace sim;
using edu::engine_kind;
using engine::bus_encryption_engine;

// --- compile-time contracts --------------------------------------------------

static_assert(cpu_master == 0);
static_assert(arb_policy_name(arb_policy::round_robin) == "round-robin");
static_assert(arb_policy_name(arb_policy::fixed_priority) == "fixed-priority");
static_assert(edu::master_kind_name(edu::master_kind::dma) == "dma");
static_assert(mem_txn{}.master == cpu_master,
              "untagged transactions must default to the CPU master");

// --- shared fixtures ---------------------------------------------------------

/// Fixed-latency scalar-only port (same shape the pipeline tests use).
class fixed_latency_port final : public memory_port {
 public:
  explicit fixed_latency_port(std::size_t size, cycles latency)
      : image_(size, 0), latency_(latency) {}

  cycles read(addr_t addr, std::span<u8> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = image_[addr + i];
    ++reads;
    return latency_;
  }
  cycles write(addr_t addr, std::span<const u8> in) override {
    for (std::size_t i = 0; i < in.size(); ++i) image_[addr + i] = in[i];
    ++writes;
    return latency_;
  }

  bytes image_;
  u64 reads = 0;
  u64 writes = 0;

 private:
  cycles latency_;
};

/// n_ops chunk-granular alternating-line reads starting at base.
std::vector<port_op> read_stream(addr_t base, std::size_t n_ops, std::size_t chunk) {
  std::vector<port_op> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) ops.push_back({base + i * chunk, false});
  return ops;
}

bus_master_config master_cfg(master_id id, const char* name, unsigned priority,
                             std::size_t chunk = 32) {
  bus_master_config c;
  c.id = id;
  c.name = name;
  c.priority = priority;
  c.chunk = chunk;
  return c;
}

// --- mixed-master workload generators ----------------------------------------

TEST(MakeDmaCopy, LowersToDenseBurstStream) {
  const std::size_t burst = 128;
  const workload w = make_dma_copy(1024, 0x10000, 0x20000, burst, 1);
  // Full 8-byte coverage of both ranges, reads before writes per burst.
  EXPECT_EQ(w.accesses.size(), 2 * 1024 / 8);
  EXPECT_DOUBLE_EQ(w.write_fraction, 0.5);

  const auto ops = to_port_ops(w, burst);
  ASSERT_EQ(ops.size(), 2 * 1024 / burst);
  for (std::size_t i = 0; i < ops.size(); i += 2) {
    EXPECT_FALSE(ops[i].write);
    EXPECT_EQ(ops[i].addr, 0x10000 + (i / 2) * burst);
    EXPECT_TRUE(ops[i + 1].write);
    EXPECT_EQ(ops[i + 1].addr, 0x20000 + (i / 2) * burst);
  }
  // Lowering at a smaller chunk still covers both ranges densely.
  const auto fine = to_port_ops(w, 32);
  EXPECT_EQ(fine.size(), 2 * 1024 / 32);
}

TEST(MakeDmaCopy, RejectsRaggedBursts) {
  EXPECT_THROW((void)make_dma_copy(100, 0, 4096, 64, 1), std::invalid_argument);
  EXPECT_THROW((void)make_dma_copy(128, 0, 4096, 12, 1), std::invalid_argument);
}

TEST(MakePeripheralPoll, RotatesRegistersAndWrites) {
  const workload w = make_peripheral_poll(64, 0x8000, 4, 64, 16, 1);
  ASSERT_EQ(w.accesses.size(), 64 + 4);
  EXPECT_EQ(w.accesses[0].addr, 0x8000u);
  EXPECT_EQ(w.accesses[1].addr, 0x8040u);
  EXPECT_EQ(w.footprint, 4 * 64u);
  u64 stores = 0;
  for (const mem_access& a : w.accesses)
    if (a.kind == access_kind::store) ++stores;
  EXPECT_EQ(stores, 4u);
  // Rotation across register lines survives the L1-style coalescing.
  EXPECT_GT(to_port_ops(w, 32).size(), 60u);
}

TEST(OffsetWorkload, ShiftsEveryAccess) {
  workload w = make_peripheral_poll(8, 0, 2, 64, 0, 1);
  const workload shifted = offset_workload(w, 1 << 20);
  ASSERT_EQ(shifted.accesses.size(), w.accesses.size());
  for (std::size_t i = 0; i < w.accesses.size(); ++i)
    EXPECT_EQ(shifted.accesses[i].addr, w.accesses[i].addr + (1u << 20));
}

// --- arbiter: grant policies and accounting ----------------------------------
// These run through the topology-first interconnect (a topology with no
// clusters is the flat bus); one deliberate shim test below keeps the
// deprecated bus_arbiter constructor honest.

TEST(Arbiter, RejectsBadConfigAndDuplicateIds) {
  fixed_latency_port port(4096, 10);
  EXPECT_THROW(interconnect(port, topology({arb_policy::round_robin, 0, 0})),
               std::invalid_argument);
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  bus_master a(master_cfg(1, "a", 0), read_stream(0, 8, 32));
  bus_master b(master_cfg(1, "b", 0), read_stream(0, 8, 32));
  ic.add_master(a);
  EXPECT_THROW(ic.add_master(b), std::invalid_argument);
  // The reserved sentinel can never become a real master on the bus.
  bus_master forged(master_cfg(any_master, "forged", 0), read_stream(0, 8, 32));
  EXPECT_THROW(ic.add_master(forged), std::invalid_argument);
}

TEST(Arbiter, RoundRobinSharesGrantsAndBoundsWaiting) {
  fixed_latency_port port(1 << 16, 10);
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  bus_master a(master_cfg(0, "a", 0), read_stream(0, 32, 32));
  bus_master b(master_cfg(1, "b", 0), read_stream(8192, 32, 32));
  bus_master c(master_cfg(2, "c", 0), read_stream(16384, 32, 32));
  ic.add_master(a);
  ic.add_master(b);
  ic.add_master(c);

  const arbiter_stats st = ic.run().bus;
  ASSERT_EQ(st.masters.size(), 3u);
  EXPECT_EQ(st.rounds, 3 * 32u / 4);
  EXPECT_EQ(st.txns, 3 * 32u);
  EXPECT_EQ(st.bytes, 3 * 32u * 32);
  for (const master_stats& m : st.masters) {
    EXPECT_EQ(m.grants, 8u);
    EXPECT_EQ(m.txns, 32u);
    EXPECT_EQ(m.bytes, 32u * 32);
    // Round-robin: nobody waits more than (masters - 1) consecutive rounds.
    EXPECT_LE(m.max_wait_streak, 2u);
  }
  // Equal streams through a fixed-latency port: service time splits evenly.
  EXPECT_EQ(st.masters[0].service_cycles, st.masters[1].service_cycles);
  EXPECT_EQ(st.total_cycles, st.masters[0].service_cycles * 3);
}

TEST(Arbiter, FixedPriorityServesHighFirstAndStarvesLow) {
  fixed_latency_port port(1 << 16, 10);
  interconnect ic(port, topology({arb_policy::fixed_priority, 4, 0}));
  bus_master low(master_cfg(0, "low", 1), read_stream(0, 16, 32));
  bus_master high(master_cfg(1, "high", 9), read_stream(8192, 32, 32));
  ic.add_master(low);
  ic.add_master(high);

  const arbiter_stats st = ic.run().bus;
  const master_stats& lo = st.masters[0];
  const master_stats& hi = st.masters[1];
  // Strict priority: high drains completely before low's first grant.
  EXPECT_LT(hi.finish_cycle, lo.finish_cycle);
  EXPECT_LT(hi.avg_txn_latency(), lo.avg_txn_latency());
  EXPECT_EQ(lo.max_wait_streak, 32u / 4) << "low waits out every high window";
  EXPECT_EQ(hi.max_wait_streak, 0u);
}

TEST(Arbiter, StarvationLimitBoundsFixedPriorityWaiting) {
  fixed_latency_port port(1 << 16, 10);
  interconnect ic(port,
                  topology({arb_policy::fixed_priority, 4, /*starvation_limit=*/2}));
  bus_master low(master_cfg(0, "low", 1), read_stream(0, 32, 32));
  bus_master high(master_cfg(1, "high", 9), read_stream(8192, 32, 32));
  ic.add_master(low);
  ic.add_master(high);

  const arbiter_stats st = ic.run().bus;
  EXPECT_LE(st.masters[0].max_wait_streak, 2u)
      << "aging must grant a master once it hits the starvation limit";
  // High priority still dominates overall.
  EXPECT_LE(st.masters[1].finish_cycle, st.masters[0].finish_cycle);
}

TEST(Arbiter, GrantHookSeesEveryWindowThenRestoresCpu) {
  fixed_latency_port port(1 << 16, 10);
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  bus_master a(master_cfg(3, "a", 0), read_stream(0, 8, 32));
  bus_master b(master_cfg(7, "b", 0), read_stream(8192, 8, 32));
  ic.add_master(a);
  ic.add_master(b);
  std::vector<master_id> grants;
  ic.set_grant_hook([&](master_id m) { grants.push_back(m); });
  const arbiter_stats st = ic.run().bus;
  ASSERT_EQ(grants.size(), st.rounds + 1);
  EXPECT_EQ(grants.back(), cpu_master) << "hook must restore the idle default";
  EXPECT_EQ(grants[0], 3u);
  EXPECT_EQ(grants[1], 7u);
}

TEST(Arbiter, CompletionStampsAreMonotonePerMaster) {
  fixed_latency_port port(1 << 16, 10);
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  bus_master a(master_cfg(0, "a", 0), read_stream(0, 12, 32));
  ic.add_master(a);
  const arbiter_stats st = ic.run().bus;
  // Single master: every txn completes by the end; the mean absolute
  // latency is below the total and above the first window's makespan.
  EXPECT_LE(st.masters[0].finish_cycle, st.total_cycles);
  EXPECT_GT(st.masters[0].avg_txn_latency(), 0.0);
  EXPECT_LT(st.masters[0].avg_txn_latency(),
            static_cast<double>(st.total_cycles));
}

TEST(Arbiter, DeprecatedConstructorIsABitExactShim) {
  // The one deliberate direct use of the deprecated flat API: bus_arbiter
  // must take the identical grant sequence as the topology it desugars to.
  const auto run_flat = [&](bool deprecated_api) {
    fixed_latency_port port(1 << 16, 10);
    bus_master a(master_cfg(0, "a", 2), read_stream(0, 32, 32));
    bus_master b(master_cfg(1, "b", 9), read_stream(8192, 16, 32));
    bus_master c(master_cfg(2, "c", 1), read_stream(16384, 48, 32));
    const arbiter_config cfg{arb_policy::fixed_priority, 4, 3};
    if (deprecated_api) {
      bus_arbiter arb(port, cfg);
      arb.add_master(a);
      arb.add_master(b);
      arb.add_master(c);
      return arb.run();
    }
    interconnect ic(port, topology(cfg));
    ic.add_master(a);
    ic.add_master(b);
    ic.add_master(c);
    return ic.run().bus;
  };
  const arbiter_stats shim = run_flat(true);
  const arbiter_stats topo = run_flat(false);
  ASSERT_EQ(shim.masters.size(), topo.masters.size());
  EXPECT_EQ(shim.rounds, topo.rounds);
  EXPECT_EQ(shim.txns, topo.txns);
  EXPECT_EQ(shim.bytes, topo.bytes);
  EXPECT_EQ(shim.total_cycles, topo.total_cycles);
  for (std::size_t i = 0; i < shim.masters.size(); ++i) {
    EXPECT_EQ(shim.masters[i].grants, topo.masters[i].grants);
    EXPECT_EQ(shim.masters[i].finish_cycle, topo.masters[i].finish_cycle);
    EXPECT_EQ(shim.masters[i].latency_sum, topo.masters[i].latency_sum);
    EXPECT_EQ(shim.masters[i].wait_rounds, topo.masters[i].wait_rounds);
    EXPECT_EQ(shim.masters[i].max_wait_streak, topo.masters[i].max_wait_streak);
  }
}

// --- per-master protection domains in the keyslot engine ---------------------

/// Two private domains (masters 1 and 2) over a fixed-latency lower port.
struct domain_rig {
  fixed_latency_port port{64 * 1024, 10};
  engine::keyslot_manager slots{engine::backend_registry::builtin(), 4};
  bus_encryption_engine eng{port, slots};
  bus_encryption_engine::context_id c1, c2;

  domain_rig() {
    c1 = eng.create_context({"aes-ctr", bytes(16, 0x11), 32});
    c2 = eng.create_context({"aes-ctr", bytes(16, 0x22), 32});
    eng.bind_domain(1, 0, 4096, c1);
    eng.bind_domain(2, 4096, 4096, c2);
  }

  cycles submit_one(mem_txn txn) {
    std::vector<mem_txn> batch;
    batch.push_back(std::move(txn));
    eng.submit(batch);
    return eng.drain();
  }
};

TEST(ProtectionDomains, OwnerRoundTripsThroughItsDomain) {
  domain_rig rig;
  bytes in(32), out(32, 0);
  fill_store_pattern(64, in);
  mem_txn w = mem_txn::write_of(0, 64, in);
  w.master = 1;
  (void)rig.submit_one(std::move(w));
  mem_txn r = mem_txn::read_of(1, 64, out);
  r.master = 1;
  (void)rig.submit_one(std::move(r));
  EXPECT_EQ(out, in);
  EXPECT_EQ(rig.eng.stats().domain_faults, 0u);
  EXPECT_GT(rig.eng.domain(1).writes, 0u);
  EXPECT_GT(rig.eng.domain(1).reads, 0u);
}

TEST(ProtectionDomains, CrossDomainReadReturnsFaultNotPlaintext) {
  domain_rig rig;
  bytes secret(32);
  fill_store_pattern(0, secret);
  mem_txn w = mem_txn::write_of(0, 0, secret);
  w.master = 1;
  (void)rig.submit_one(std::move(w));

  bytes out(32, 0);
  mem_txn r = mem_txn::read_of(1, 0, out);
  r.master = 2; // wrong domain
  const cycles t = rig.submit_one(std::move(r));
  EXPECT_EQ(out, bytes(32, bus_encryption_engine::fault_fill))
      << "denied read must return the bus-error pattern";
  EXPECT_NE(out, secret);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(rig.eng.domain(2).faults, 1u);
  EXPECT_EQ(rig.eng.stats().domain_faults, 1u);

  // The CPU (master 0) is just another non-owner.
  bytes cpu_view(32, 0);
  EXPECT_GT(rig.eng.read(0, cpu_view), 0u);
  EXPECT_EQ(cpu_view, bytes(32, bus_encryption_engine::fault_fill));
  EXPECT_EQ(rig.eng.domain(cpu_master).faults, 1u);
}

TEST(ProtectionDomains, DeniedAccessNeverReachesTheBus) {
  domain_rig rig;
  const u64 reads_before = rig.port.reads;
  const u64 writes_before = rig.port.writes;
  bytes buf(32, 0xAB);
  mem_txn r = mem_txn::read_of(0, 0, buf);
  r.master = 2;
  (void)rig.submit_one(std::move(r));
  mem_txn w = mem_txn::write_of(1, 0, buf);
  w.master = 2;
  (void)rig.submit_one(std::move(w));
  EXPECT_EQ(rig.port.reads, reads_before) << "firewall blocks on-chip";
  EXPECT_EQ(rig.port.writes, writes_before);
}

TEST(ProtectionDomains, CrossDomainWriteIsDroppedWhole) {
  domain_rig rig;
  bytes original(32);
  fill_store_pattern(128, original);
  mem_txn w1 = mem_txn::write_of(0, 128, original);
  w1.master = 1;
  (void)rig.submit_one(std::move(w1));

  bytes intruder(32, 0x66);
  mem_txn w2 = mem_txn::write_of(1, 128, intruder);
  w2.master = 2;
  (void)rig.submit_one(std::move(w2));
  EXPECT_EQ(rig.eng.domain(2).faults, 1u);

  bytes out(32, 0);
  mem_txn r = mem_txn::read_of(2, 128, out);
  r.master = 1;
  (void)rig.submit_one(std::move(r));
  EXPECT_EQ(out, original) << "owner's data must survive the denied write";
}

TEST(ProtectionDomains, ScalarDetourHonoursTheTxnMaster) {
  domain_rig rig;
  // Unaligned (RMW-shaped) transactions are ineligible for the native
  // batch path and detour through the scalar datapath — which must still
  // fault under the txn's master, not the CPU default.
  bytes partial(8, 0x5A);
  mem_txn w = mem_txn::write_of(0, 4, partial);
  w.master = 2; // domain 1's range
  (void)rig.submit_one(std::move(w));
  EXPECT_EQ(rig.eng.domain(2).faults, 1u);
  EXPECT_EQ(rig.eng.active_master(), cpu_master)
      << "detour must restore the scalar master";

  bytes out(8, 0);
  mem_txn r = mem_txn::read_of(1, 4, out);
  r.master = 2;
  (void)rig.submit_one(std::move(r));
  EXPECT_EQ(out, bytes(8, bus_encryption_engine::fault_fill));
}

TEST(ProtectionDomains, ForgedAnyMasterTagCannotBypassTheFirewall) {
  // any_master is an in-band sentinel reserved for the trusted offline
  // view (span_at); a transaction forged with it on the untrusted
  // datapath must be denied like any non-owner, never granted the
  // ownership-blind view.
  domain_rig rig;
  bytes secret(32);
  fill_store_pattern(0, secret);
  mem_txn w = mem_txn::write_of(0, 0, secret);
  w.master = 1;
  (void)rig.submit_one(std::move(w));

  bytes out(32, 0);
  mem_txn r = mem_txn::read_of(1, 0, out);
  r.master = bus_encryption_engine::any_master;
  (void)rig.submit_one(std::move(r));
  EXPECT_EQ(out, bytes(32, bus_encryption_engine::fault_fill));
  EXPECT_NE(out, secret);
  EXPECT_GT(rig.eng.stats().domain_faults, 0u);

  bytes intruder(32, 0x77);
  mem_txn fw = mem_txn::write_of(2, 0, intruder);
  fw.master = bus_encryption_engine::any_master;
  (void)rig.submit_one(std::move(fw));
  bytes back(32, 0);
  mem_txn rb = mem_txn::read_of(3, 0, back);
  rb.master = 1;
  (void)rig.submit_one(std::move(rb));
  EXPECT_EQ(back, secret) << "forged write must be dropped";
}

TEST(ProtectionDomains, SharedMappingStaysOpenToAllMasters) {
  domain_rig rig;
  const auto shared = rig.eng.create_context({"aes-ctr", bytes(16, 0x33), 32});
  rig.eng.map_region(8192, 4096, shared);
  bytes in(32), out(32, 0);
  fill_store_pattern(8192, in);
  mem_txn w = mem_txn::write_of(0, 8192, in);
  w.master = 1;
  (void)rig.submit_one(std::move(w));
  mem_txn r = mem_txn::read_of(1, 8192, out);
  r.master = 2;
  (void)rig.submit_one(std::move(r));
  EXPECT_EQ(out, in);
  EXPECT_EQ(rig.eng.stats().domain_faults, 0u);
}

TEST(ProtectionDomains, OfflineInstallAndReadbackAreOwnershipBlind) {
  domain_rig rig;
  bytes image(64, 0xC3);
  rig.eng.install(0, image); // the trusted loader writes into domain 1
  bytes back(64, 0);
  rig.eng.read_plain(0, back);
  EXPECT_EQ(back, image);
  EXPECT_EQ(rig.eng.stats().domain_faults, 0u);
}

TEST(ProtectionDomains, DomainBoundarySplitsASingleRequest) {
  domain_rig rig;
  // A read straddling both domains as master 1: own half decrypts, the
  // foreign half comes back as the fault pattern.
  bytes own(32);
  fill_store_pattern(4064, own);
  mem_txn w = mem_txn::write_of(0, 4064, own);
  w.master = 1;
  (void)rig.submit_one(std::move(w));

  bytes out(64, 0);
  mem_txn r = mem_txn::read_of(1, 4064, out);
  r.master = 1;
  (void)rig.submit_one(std::move(r));
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 32, own.begin()));
  EXPECT_EQ(bytes(out.begin() + 32, out.end()),
            bytes(32, bus_encryption_engine::fault_fill));
  EXPECT_EQ(rig.eng.domain(1).faults, 1u);
}

TEST(ProtectionDomains, TwoDomainsShareOneSlotPool) {
  // One hardware slot, two single-master domains with different keys:
  // both must function (contention retirement / reprogramming), and the
  // pool counters must show the keys really displaced each other.
  fixed_latency_port port(64 * 1024, 10);
  engine::keyslot_manager slots(engine::backend_registry::builtin(), 1);
  bus_encryption_engine eng(port, slots);
  const auto c1 = eng.create_context({"aes-ctr", bytes(16, 0x11), 32});
  const auto c2 = eng.create_context({"aes-ctr", bytes(16, 0x22), 32});
  eng.bind_domain(1, 0, 4096, c1);
  eng.bind_domain(2, 4096, 4096, c2);

  bytes lanes(4 * 32);
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    const addr_t a = (i % 2 == 0) ? i * 32 : 4096 + i * 32;
    const std::span<u8> lane(lanes.data() + i * 32, 32);
    fill_store_pattern(a, lane);
    mem_txn t = mem_txn::write_of(i, a, lane);
    t.master = (i % 2 == 0) ? 1u : 2u;
    batch.push_back(std::move(t));
  }
  eng.submit(batch);
  (void)eng.drain();
  EXPECT_GE(slots.stats().programs, 2u) << "both keys must hit the pool";
  EXPECT_EQ(eng.stats().domain_faults, 0u);

  // Each owner reads its own bytes back.
  bytes out(32, 0);
  mem_txn r1 = mem_txn::read_of(10, 0, out);
  r1.master = 1;
  std::vector<mem_txn> rb;
  rb.push_back(std::move(r1));
  eng.submit(rb);
  (void)eng.drain();
  bytes expect(32);
  fill_store_pattern(0, expect);
  EXPECT_EQ(out, expect);
}

TEST(ProtectionDomains, BindDomainValidatesOwnerAndContext) {
  domain_rig rig;
  EXPECT_THROW(rig.eng.bind_domain(bus_encryption_engine::any_master, 0, 64, rig.c1),
               std::invalid_argument);
  EXPECT_THROW(rig.eng.bind_domain(3, 0, 64, 99), std::out_of_range);
}

// --- soc::run_multi_master ----------------------------------------------------

edu::soc_config mm_cfg(unsigned banks) {
  edu::soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  cfg.mem_timing.banks = banks;
  return cfg;
}

constexpr addr_t kCpuData = 1u << 20;        // make_data_rw's data region
constexpr addr_t kDmaSrc = 2u << 20;
constexpr addr_t kDmaDst = (2u << 20) + (1u << 19);
constexpr addr_t kPeriphRegs = 3u << 20;
constexpr std::size_t kDmaBytes = 32 * 1024;

/// CPU compute + DMA bulk copy + peripheral polling, disjoint footprints.
std::vector<edu::master_desc> mixed_scenario(bool keyslot_domains) {
  std::vector<edu::master_desc> m(3);
  m[0].role = edu::master_kind::cpu;
  m[0].work = make_data_rw(3000, 64 * 1024, 0.5, 0.4, 8, 0xC0FFEE);
  m[1].role = edu::master_kind::dma;
  m[1].work = make_dma_copy(kDmaBytes, kDmaSrc, kDmaDst, 128, 0xD0);
  m[1].priority = 1;
  if (keyslot_domains) {
    m[1].domain_base = kDmaSrc;
    m[1].domain_len = 1u << 20;
  }
  m[2].role = edu::master_kind::peripheral;
  m[2].work = make_peripheral_poll(1500, kPeriphRegs, 8, 64, 16, 0x9E);
  m[2].priority = 9;
  return m;
}

class MultiMasterEquivalence : public ::testing::TestWithParam<engine_kind> {};

TEST_P(MultiMasterEquivalence, EachMasterMatchesItsSoloRun) {
  const auto scenario = mixed_scenario(GetParam() == engine_kind::inline_keyslot);
  const edu::soc_config cfg = mm_cfg(4);
  const bytes image = [] {
    bytes img(64 * 1024);
    for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<u8>(i * 13 + 5);
    return img;
  }();

  // The attacker-visible range each master owns (writes land only here).
  struct range {
    addr_t base;
    std::size_t len;
  };
  const range ranges[3] = {{kCpuData, 64 * 1024 + 64},
                           {kDmaDst, kDmaBytes + 256},
                           {kPeriphRegs, 8 * 64}};

  edu::secure_soc multi(GetParam(), cfg);
  multi.load_image(0, image);
  const arbiter_stats st = multi.run_multi_master(scenario, {});
  multi.flush();
  ASSERT_EQ(st.masters.size(), 3u);
  EXPECT_GT(st.txns, 100u);
  for (const master_stats& m : st.masters) EXPECT_GT(m.txns, 0u);

  for (std::size_t i = 0; i < scenario.size(); ++i) {
    edu::secure_soc solo(GetParam(), cfg);
    solo.load_image(0, image);
    const std::vector<edu::master_desc> one(scenario.begin() + i,
                                            scenario.begin() + i + 1);
    (void)solo.run_multi_master(one, {});
    solo.flush();

    const std::span<const u8> dm = multi.memory().raw().subspan(ranges[i].base,
                                                                ranges[i].len);
    const std::span<const u8> ds = solo.memory().raw().subspan(ranges[i].base,
                                                               ranges[i].len);
    EXPECT_TRUE(std::equal(dm.begin(), dm.end(), ds.begin()))
        << "master " << i << " DRAM bytes diverged under contention for "
        << edu::engine_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MultiMasterEquivalence,
                         ::testing::ValuesIn(edu::all_engines()),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           std::string n(edu::engine_name(info.param));
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

double aggregate_bpc(engine_kind kind, std::size_t n_masters, arb_policy policy) {
  const auto scenario = mixed_scenario(kind == engine_kind::inline_keyslot);
  const std::vector<edu::master_desc> subset(scenario.begin(),
                                             scenario.begin() + n_masters);
  edu::secure_soc soc(kind, mm_cfg(8));
  soc.load_image(0, bytes(64 * 1024, 0x5A));
  edu::multi_master_config mm;
  mm.policy = policy;
  mm.starvation_limit = policy == arb_policy::fixed_priority ? 16 : 0;
  return soc.run_multi_master(subset, mm).bytes_per_cycle();
}

TEST(MultiMasterThroughput, DmaMasterRaisesAggregateForOverlapEngines) {
  // Stream-OTP's cheap pad leaves it memory-bound (big headroom); the
  // keyslot engine's serial AES-CTR core caps it at ~32/22 bytes/cycle,
  // so its gain is real but asymptotic — assert a strict increase with a
  // margin each engine can honestly clear.
  const struct {
    engine_kind kind;
    double margin;
  } cases[] = {{engine_kind::stream_otp, 1.05}, {engine_kind::inline_keyslot, 1.02}};
  for (const auto& c : cases) {
    const double solo = aggregate_bpc(c.kind, 1, arb_policy::round_robin);
    const double with_dma = aggregate_bpc(c.kind, 2, arb_policy::round_robin);
    EXPECT_GT(with_dma, solo * c.margin)
        << edu::engine_name(c.kind)
        << ": adding the bandwidth-bound DMA master must raise aggregate "
           "bytes/cycle";
  }
}

TEST(MultiMasterLatency, PriorityShieldsThePeripheral) {
  const auto scenario = mixed_scenario(false);
  auto periph_latency = [&](arb_policy policy) {
    edu::secure_soc soc(engine_kind::stream_otp, mm_cfg(8));
    soc.load_image(0, bytes(64 * 1024, 0x5A));
    edu::multi_master_config mm;
    mm.policy = policy;
    mm.starvation_limit = policy == arb_policy::fixed_priority ? 64 : 0;
    const arbiter_stats st = soc.run_multi_master(scenario, mm);
    return st.masters[2].avg_txn_latency();
  };
  // The peripheral has the highest priority: fixed-priority arbitration
  // must serve it faster than the fair rotation does.
  EXPECT_LT(periph_latency(arb_policy::fixed_priority),
            periph_latency(arb_policy::round_robin));
}

TEST(MultiMasterDomains, PerMasterKeysChangeTheCiphertext) {
  const edu::soc_config cfg = mm_cfg(4);
  auto dst_bytes = [&](bool domains) {
    edu::secure_soc soc(engine_kind::inline_keyslot, cfg);
    soc.load_image(0, bytes(16 * 1024, 0x11));
    (void)soc.run_multi_master(mixed_scenario(domains), {});
    soc.flush();
    const auto raw = soc.memory().raw().subspan(kDmaDst, kDmaBytes);
    return bytes(raw.begin(), raw.end());
  };
  EXPECT_NE(dst_bytes(true), dst_bytes(false))
      << "a private domain must encipher under its own key, not the default";
}

// --- per-master bus-beat attribution -----------------------------------------

TEST(BeatAttribution, ProbeSeparatesTheMastersStreams) {
  edu::secure_soc soc(engine_kind::plaintext, mm_cfg(4));
  recording_probe probe;
  soc.attach_probe(probe);
  soc.load_image(0, bytes(64 * 1024, 0x22));
  probe.clear(); // drop install traffic; observe only the contended run
  (void)soc.run_multi_master(mixed_scenario(false), {});

  const auto ids = attack::masters_in_trace(probe);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids, (std::vector<master_id>{0, 1, 2}));

  const auto profiles = attack::per_master_profiles(probe, 32);
  ASSERT_EQ(profiles.size(), 3u);
  // DMA (master 1) traffic stays inside its copy ranges and is half writes.
  const attack::trace_profile& dma = profiles[1].second;
  EXPECT_GT(dma.write_beats, 0u);
  EXPECT_NEAR(dma.write_fraction(), 0.5, 0.05);
  EXPECT_GE(dma.hottest_line, kDmaSrc);
  // Peripheral (master 2) polls a tiny working set.
  const attack::trace_profile& periph = profiles[2].second;
  EXPECT_LE(periph.distinct_lines, 16u);
  EXPECT_GE(periph.hottest_line, kPeriphRegs);
  // The conflated profile sees everything the parts see.
  const attack::trace_profile all = attack::profile_bus_trace(probe, 32);
  EXPECT_EQ(all.read_beats + all.write_beats,
            profiles[0].second.read_beats + profiles[0].second.write_beats +
                dma.read_beats + dma.write_beats + periph.read_beats +
                periph.write_beats);
}

TEST(BeatAttribution, ScalarCpuTrafficKeepsTheDefaultTag) {
  edu::secure_soc soc(engine_kind::plaintext, mm_cfg(1));
  recording_probe probe;
  soc.attach_probe(probe);
  soc.load_image(0, bytes(16 * 1024, 0x33));
  (void)soc.run(make_sequential_code(2000, 8 * 1024, 0, 0x41));
  ASSERT_GT(probe.size(), 0u);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(probe[i].master, cpu_master);
}

} // namespace
} // namespace buscrypt
