// Mode-of-operation semantics: the ECB determinism weakness, CBC chaining,
// CTR seekability, PKCS#7, and the address_pad the stream EDUs rely on.

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/des.hpp"
#include "crypto/modes.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

TEST(Ecb, IdenticalBlocksLeak) {
  // "a same data will be ciphered to the same value".
  rng r(1);
  const aes c(r.random_bytes(16));
  bytes pt(64, 0xAB); // four identical blocks
  bytes ct(64);
  ecb_encrypt(c, pt, ct);
  for (int blk = 1; blk < 4; ++blk)
    EXPECT_TRUE(std::equal(ct.begin(), ct.begin() + 16,
                           ct.begin() + 16 * blk));
}

TEST(Cbc, IdenticalBlocksDoNotLeak) {
  rng r(2);
  const aes c(r.random_bytes(16));
  const bytes iv = r.random_bytes(16);
  bytes pt(64, 0xAB);
  bytes ct(64);
  cbc_encrypt(c, iv, pt, ct);
  EXPECT_FALSE(std::equal(ct.begin(), ct.begin() + 16, ct.begin() + 16));
}

TEST(Cbc, IvChangesEverything) {
  rng r(3);
  const aes c(r.random_bytes(16));
  const bytes pt = r.random_bytes(64);
  bytes ct1(64), ct2(64);
  cbc_encrypt(c, r.random_bytes(16), pt, ct1);
  cbc_encrypt(c, r.random_bytes(16), pt, ct2);
  EXPECT_NE(ct1, ct2);
}

TEST(Cbc, ErrorPropagationIsLocal) {
  // Flipping ciphertext block k garbles plaintext blocks k and k+1 only —
  // why CBC *reads* are random-access but writes are not.
  rng r(4);
  const aes c(r.random_bytes(16));
  const bytes iv = r.random_bytes(16);
  const bytes pt = r.random_bytes(16 * 6);
  bytes ct(pt.size());
  cbc_encrypt(c, iv, pt, ct);

  ct[16 * 2 + 5] ^= 0x80; // corrupt block 2
  bytes back(pt.size());
  cbc_decrypt(c, iv, ct, back);

  EXPECT_TRUE(std::equal(back.begin(), back.begin() + 32, pt.begin()));    // 0,1 intact
  EXPECT_FALSE(std::equal(back.begin() + 32, back.begin() + 48, pt.begin() + 32));
  EXPECT_FALSE(std::equal(back.begin() + 48, back.begin() + 64, pt.begin() + 48));
  EXPECT_TRUE(std::equal(back.begin() + 64, back.end(), pt.begin() + 64)); // 4,5 intact
}

TEST(Modes, AliasSafety) {
  rng r(5);
  const aes c(r.random_bytes(16));
  const bytes iv = r.random_bytes(16);
  const bytes pt = r.random_bytes(128);

  bytes buf = pt;
  cbc_encrypt(c, iv, buf, buf);
  cbc_decrypt(c, iv, buf, buf);
  EXPECT_EQ(buf, pt);

  buf = pt;
  ecb_encrypt(c, buf, buf);
  ecb_decrypt(c, buf, buf);
  EXPECT_EQ(buf, pt);
}

TEST(Modes, RejectNonBlockMultiples) {
  rng r(6);
  const aes c(r.random_bytes(16));
  bytes odd(17), out(17);
  EXPECT_THROW(ecb_encrypt(c, odd, out), std::invalid_argument);
  EXPECT_THROW(cbc_encrypt(c, r.random_bytes(16), odd, out), std::invalid_argument);
  bytes iv_bad = r.random_bytes(8);
  bytes pt(16), ct(16);
  EXPECT_THROW(cbc_encrypt(c, iv_bad, pt, ct), std::invalid_argument);
}

TEST(Ctr, SeekableAndSymmetric) {
  rng r(7);
  const aes c(r.random_bytes(16));
  const bytes pt = r.random_bytes(100); // deliberately not block-multiple
  bytes ct(100), back(100);
  ctr_crypt(c, 0x1111, 0, pt, ct);
  ctr_crypt(c, 0x1111, 0, ct, back);
  EXPECT_EQ(back, pt);
  EXPECT_NE(ct, pt);
}

TEST(Ctr, WorksWith8ByteBlocks) {
  rng r(8);
  const des c(r.random_bytes(8));
  const bytes pt = r.random_bytes(50);
  bytes ct(50), back(50);
  ctr_crypt(c, 0x2222, 7, pt, ct);
  ctr_crypt(c, 0x2222, 7, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Pkcs7, RoundTripAllResidues) {
  rng r(9);
  for (std::size_t len = 0; len <= 33; ++len) {
    const bytes pt = r.random_bytes(len);
    const bytes padded = pkcs7_pad(pt, 16);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), pt.size());
    EXPECT_EQ(pkcs7_unpad(padded, 16), pt);
  }
}

TEST(Pkcs7, RejectsCorruptPadding) {
  bytes padded = pkcs7_pad(bytes{1, 2, 3}, 16);
  padded.back() = 0;
  EXPECT_THROW((void)pkcs7_unpad(padded, 16), std::invalid_argument);
  padded.back() = 17;
  EXPECT_THROW((void)pkcs7_unpad(padded, 16), std::invalid_argument);
  EXPECT_THROW((void)pkcs7_unpad(bytes{}, 16), std::invalid_argument);
}

TEST(AddressPad, DeterministicPerAddress) {
  rng r(10);
  const aes c(r.random_bytes(16));
  const address_pad pad(c, 0x1234);
  bytes a(64), b(64);
  pad.generate(0x1000, a);
  pad.generate(0x1000, b);
  EXPECT_EQ(a, b);
}

TEST(AddressPad, DifferentAddressesDifferentPads) {
  rng r(11);
  const aes c(r.random_bytes(16));
  const address_pad pad(c, 0x1234);
  bytes a(32), b(32);
  pad.generate(0x1000, a);
  pad.generate(0x2000, b);
  EXPECT_NE(a, b);
}

TEST(AddressPad, UnalignedWindowsAreConsistent) {
  // pad(addr+k) must equal pad(addr)[k..]: the write-back path depends on
  // regenerating the exact pad for any sub-range.
  rng r(12);
  const aes c(r.random_bytes(16));
  const address_pad pad(c, 0x99);
  bytes whole(64);
  pad.generate(0x500, whole);
  for (std::size_t off : {1u, 7u, 15u, 16u, 17u, 31u}) {
    bytes part(64 - off);
    pad.generate(0x500 + off, part);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), whole.begin() + static_cast<std::ptrdiff_t>(off)))
        << off;
  }
}

TEST(AddressPad, BlocksCoveringCounts) {
  rng r(13);
  const aes c(r.random_bytes(16));
  const address_pad pad(c, 0);
  EXPECT_EQ(pad.blocks_covering(0, 0), 0u);
  EXPECT_EQ(pad.blocks_covering(0, 1), 1u);
  EXPECT_EQ(pad.blocks_covering(0, 16), 1u);
  EXPECT_EQ(pad.blocks_covering(0, 17), 2u);
  EXPECT_EQ(pad.blocks_covering(15, 2), 2u); // straddles a block edge
  EXPECT_EQ(pad.blocks_covering(8, 64), 5u);
}

TEST(AddressPad, TweakSeparatesDomains) {
  rng r(14);
  const aes c(r.random_bytes(16));
  const address_pad p1(c, 1), p2(c, 2);
  bytes a(32), b(32);
  p1.generate(0, a);
  p2.generate(0, b);
  EXPECT_NE(a, b);
}

} // namespace
} // namespace buscrypt::crypto
