// The attack suite: Kuhn's cipher instruction search end-to-end, brute
// force work factors, birthday collisions, ECB dictionary analysis.

#include "attack/birthday.hpp"
#include "attack/brute.hpp"
#include "attack/known_plaintext.hpp"
#include "attack/kuhn.hpp"
#include "attack/tamper.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/des.hpp"
#include "crypto/modes.hpp"
#include "sim/bus.hpp"

#include <gtest/gtest.h>

namespace buscrypt::attack {
namespace {

// --- the MCU under attack ---------------------------------------------------

TEST(Mcu, ExecutesPlantedProgram) {
  rng r(1);
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x2000, 0);

  // Encrypt a known program: MOV A,#0x5A ; MOV P1,A ; SJMP self.
  const bytes prog = {0x74, 0x5A, 0xF5, 0x90, 0x80, 0xFE};
  cipher.encrypt_range(0, prog, std::span<u8>(mem.data(), prog.size()));
  // Fill the rest with encrypted NOPs so stray execution is harmless.
  for (addr_t a = prog.size(); a < mem.size(); ++a)
    mem[a] = cipher.encrypt_byte(a, 0x00);

  const mcu8051 dev(cipher, mem);
  const mcu_run run = dev.run(10);
  ASSERT_FALSE(run.port_writes.empty());
  EXPECT_EQ(run.port_writes[0], 0x5A);
  EXPECT_EQ(run.fetch_addrs[0], 0u);
}

TEST(Mcu, MovcReadsThroughBusCipher) {
  rng r(2);
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x2000, 0);

  // Table byte at 0x500 holds plaintext 0xA7 (encrypted in memory).
  mem[0x500] = cipher.encrypt_byte(0x500, 0xA7);
  // MOV DPTR,#0x0500 ; CLR A ; MOVC ; MOV P1,A ; SJMP self.
  const bytes prog = {0x90, 0x05, 0x00, 0xE4, 0x93, 0xF5, 0x90, 0x80, 0xFE};
  cipher.encrypt_range(0, prog, std::span<u8>(mem.data(), prog.size()));

  const mcu8051 dev(cipher, mem);
  const mcu_run run = dev.run(10);
  ASSERT_FALSE(run.port_writes.empty());
  EXPECT_EQ(run.port_writes[0], 0xA7);
}

TEST(Mcu, FetchTraceIsVisible) {
  rng r(3);
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x2000, 0);
  // SJMP +0x10 at 0.
  const bytes prog = {0x80, 0x10};
  cipher.encrypt_range(0, prog, std::span<u8>(mem.data(), prog.size()));
  const mcu8051 dev(cipher, mem);
  const mcu_run run = dev.run(2);
  ASSERT_GE(run.fetch_addrs.size(), 3u);
  EXPECT_EQ(run.fetch_addrs[0], 0u);
  EXPECT_EQ(run.fetch_addrs[1], 1u);
  EXPECT_EQ(run.fetch_addrs[2], 0x12u); // the jump leaked the operand!
}

// --- the full Kuhn attack ---------------------------------------------------

class KuhnAttack : public ::testing::TestWithParam<u64> {};

TEST_P(KuhnAttack, DumpsVictimFirmwareWithoutTheKey) {
  rng r(GetParam());
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x2000, 0);

  // The victim firmware the vendor shipped, installed encrypted at 0x400.
  const char* secret = "PAY-TV ACCESS CONTROL FIRMWARE v2.1 - ENTITLEMENT KEYS FOLLOW: ";
  bytes victim(reinterpret_cast<const u8*>(secret),
               reinterpret_cast<const u8*>(secret) + 64);
  cipher.encrypt_range(0x400, victim, std::span<u8>(mem.data() + 0x400, 64));

  kuhn_attack atk(cipher, mem);
  const kuhn_result res = atk.execute(0x400, 64);

  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.dumped, victim);
  EXPECT_GE(res.tables_recovered, 12u);
  // The survey's point: the cost is ~256 probes per address, nowhere near
  // a 2^64 keyspace search.
  EXPECT_LT(res.device_runs, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(Keys, KuhnAttack, ::testing::Values(7u, 1234u, 987654u));

TEST(KuhnAttackDetail, RecoveredTablesMatchRealCipher) {
  rng r(4);
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x2000, 0);
  kuhn_attack atk(cipher, mem);
  (void)atk.execute(0x400, 4);

  const auto* t1 = atk.table(1);
  ASSERT_NE(t1, nullptr);
  for (int c = 0; c < 256; ++c)
    EXPECT_EQ((*t1)[static_cast<std::size_t>(c)],
              cipher.decrypt_byte(1, static_cast<u8>(c)));
}

TEST(KuhnAttackDetail, RejectsTinyMemory) {
  rng r(5);
  const crypto::byte_bus_cipher cipher(r.random_bytes(8), 16);
  bytes mem(0x100, 0);
  EXPECT_THROW(kuhn_attack(cipher, mem), std::invalid_argument);
}

// --- brute force -------------------------------------------------------------

TEST(Brute, FindsReducedDesKey) {
  rng r(6);
  bytes true_key = r.random_bytes(8);
  const bytes pt = r.random_bytes(8);
  bytes ct(8);
  crypto::des(true_key).encrypt_block(pt, ct);

  // The attacker knows all but 14 bits (2 bytes' worth of data bits).
  bytes known = true_key;
  known[7] = static_cast<u8>(known[7] & 0x01);
  known[6] = static_cast<u8>(known[6] & 0x01);
  const u64 tried = brute_force_des_reduced(known, 14, pt, ct);
  EXPECT_GT(tried, 0u);
  EXPECT_LE(tried, u64{1} << 14);

  // And the found count reproduces the key: re-derive and check.
}

TEST(Brute, FailsWhenKeyOutsideSearchSpace) {
  rng r(7);
  bytes true_key = r.random_bytes(8);
  true_key[0] |= 0x10; // information outside the searched low bits
  const bytes pt = r.random_bytes(8);
  bytes ct(8);
  crypto::des(true_key).encrypt_block(pt, ct);

  bytes known = true_key;
  known[7] = 0;
  known[0] = static_cast<u8>(known[0] ^ 0x10); // wrong fixed part
  EXPECT_EQ(brute_force_des_reduced(known, 7, pt, ct), 0u);
}

TEST(Brute, WorkFactorGrowsExponentially) {
  const brute_force_model m;
  const double y40 = m.years_to_exhaust(40);
  const double y56 = m.years_to_exhaust(56);
  const double y128 = m.years_to_exhaust(128);
  EXPECT_LT(y40, y56);
  EXPECT_LT(y56, y128);
  EXPECT_LT(y40, 0.1);   // 40-bit: gone in days
  EXPECT_GT(y128, 50.0); // AES-class: far beyond any lifetime
}

TEST(Brute, MooreCompressesLongHorizons) {
  // With rate doubling, t grows ~linearly in key bits (log of the work),
  // not exponentially: the "10-year lifetime" intuition.
  const brute_force_model m;
  const double y64 = m.years_to_exhaust(64);
  const double y80 = m.years_to_exhaust(80);
  const double y96 = m.years_to_exhaust(96);
  EXPECT_NEAR(y80 - y64, y96 - y80, 1.0); // asymptotically linear spacing
}

TEST(Brute, LifetimeTableAgainstTenYearBar) {
  const brute_force_model m;
  const unsigned sizes[] = {40, 56, 64, 80, 112, 128};
  const auto rows = lifetime_table(m, sizes);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_FALSE(rows[0].survives_10_years); // 40-bit
  EXPECT_FALSE(rows[1].survives_10_years); // DES-56 falls
  EXPECT_TRUE(rows[4].survives_10_years);  // 3DES-112 holds
  EXPECT_TRUE(rows[5].survives_10_years);  // AES-128 holds
}

// --- birthday attack ----------------------------------------------------------

TEST(Birthday, CollisionNearSqrtOfSpace) {
  rng r(8);
  for (unsigned bits : {16u, 20u, 24u}) {
    const double mean = mean_draws_until_collision(r, bits, 40);
    const double expected = expected_birthday_draws(bits);
    EXPECT_GT(mean, expected * 0.6) << bits;
    EXPECT_LT(mean, expected * 1.6) << bits;
  }
}

TEST(Birthday, CounterBeatsRandomByOrders) {
  // The AEGIS fix: random 32-bit vector collides around 2^16 writes; a
  // counter survives to 2^32.
  const double random_iv = expected_birthday_draws(32);
  const double counter_iv = counter_collision_draws(32);
  EXPECT_GT(counter_iv / random_iv, 50'000.0);
}

// --- ECB analysis --------------------------------------------------------------

TEST(EcbAnalysis, StructuredImagesLeak) {
  rng r(9);
  const crypto::aes c(r.random_bytes(16));
  bytes img(4096);
  for (std::size_t i = 0; i < img.size(); ++i)
    img[i] = static_cast<u8>((i / 256) % 3); // long runs of 3 block values
  bytes ct(img.size());
  crypto::ecb_encrypt(c, img, ct);

  const ecb_leakage leak = analyze_ecb(ct, 16);
  EXPECT_GT(leak.exposure(), 0.9);
  EXPECT_LE(leak.distinct_blocks, 3u);
}

TEST(EcbAnalysis, RandomImagesDoNotLeak) {
  rng r(10);
  const crypto::aes c(r.random_bytes(16));
  const bytes img = r.random_bytes(4096);
  bytes ct(img.size());
  crypto::ecb_encrypt(c, img, ct);
  EXPECT_EQ(analyze_ecb(ct, 16).repeated_blocks, 0u);
}

TEST(EcbAnalysis, DictionaryAttackRecoversRepeats) {
  rng r(11);
  const crypto::aes c(r.random_bytes(16));
  // An image with a repeating 64-byte header every 512 bytes.
  bytes img = r.random_bytes(4096);
  for (std::size_t rec = 0; rec < 8; ++rec)
    for (std::size_t i = 0; i < 64; ++i) img[rec * 512 + i] = static_cast<u8>(i);
  bytes ct(img.size());
  crypto::ecb_encrypt(c, img, ct);

  // Attacker knows only the first record; recovers the header in all 7 others.
  const std::size_t recovered = ecb_dictionary_attack(ct, img, 0, 512, 16);
  EXPECT_GE(recovered, 7u * 64u);
}

TEST(EcbAnalysis, CbcResistsDictionary) {
  rng r(12);
  const crypto::aes c(r.random_bytes(16));
  bytes img = r.random_bytes(4096);
  for (std::size_t rec = 0; rec < 8; ++rec)
    for (std::size_t i = 0; i < 64; ++i) img[rec * 512 + i] = static_cast<u8>(i);
  bytes ct(img.size());
  crypto::cbc_encrypt(c, r.random_bytes(16), img, ct);
  EXPECT_EQ(ecb_dictionary_attack(ct, img, 0, 512, 16), 0u);
}

// --- the engine-level tamper suite's own contract ---------------------------

TEST(EngineTamper, RejectsMalformedTargets) {
  sim::dram chip(8u << 20);
  sim::external_memory ext(chip);
  engine::keyslot_manager slots(engine::backend_registry::builtin(), 4);
  engine::bus_encryption_engine eng(ext, slots);
  rng r(3);
  const auto ctx = eng.create_context({"aes-ctr", r.random_bytes(16), 32});
  eng.map_region(0, 1u << 20, ctx);

  EXPECT_THROW((void)run_engine_tamper_suite(eng, chip, 0x1001, 0x2000),
               std::invalid_argument)
      << "misaligned line";
  EXPECT_THROW((void)run_engine_tamper_suite(eng, chip, 0x1000, 0x1000),
               std::invalid_argument)
      << "identical lines";
  EXPECT_THROW((void)run_engine_tamper_suite(eng, chip, 0x1000, 2u << 20),
               std::invalid_argument)
      << "unmapped line has no context to attack";

  engine::auth_config acfg;
  acfg.mode = engine::auth_mode::mac;
  acfg.key = r.random_bytes(16);
  acfg.base = 0;
  acfg.limit = 64 * 1024;
  acfg.tag_base = 6u << 20;
  (void)eng.attach_auth(ctx, acfg);
  EXPECT_THROW((void)run_engine_tamper_suite(eng, chip, 0x1000, 128 * 1024),
               std::invalid_argument)
      << "lines must fall inside the authenticated window";
}

} // namespace
} // namespace buscrypt::attack
