// Batch-native EDU datapaths (the Tab. 7 closing of the engine matrix):
// per-engine scalar-vs-batched equivalence under bank conflicts and
// unaligned detours, single-transaction degeneracy for the serial-decipher
// engines, per-engine state regressions (AEGIS nonce snapshots, DMA page
// recycling, Gilmont prefetch, GI verified-LRU, integrity tag forwarding),
// throughput-gain assertions for the newly native engines, and the crypto
// hot-loop layer (bulk keystream, key-schedule cache).

#include "crypto/aes.hpp"
#include "edu/gi_edu.hpp"
#include "edu/gilmont_edu.hpp"
#include "edu/soc.hpp"
#include "engine/cipher_backend.hpp"
#include "sim/mem_txn.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

namespace buscrypt {
namespace {

using namespace sim;
using edu::engine_kind;

edu::soc_config native_cfg(unsigned banks) {
  edu::soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  cfg.mem_timing.banks = banks;
  return cfg;
}

bytes patterned_image(std::size_t n) {
  bytes img(n);
  for (std::size_t i = 0; i < n; ++i) img[i] = static_cast<u8>(i * 131 + 17);
  return img;
}

std::string sanitized(engine_kind kind) {
  std::string n(edu::engine_name(kind));
  for (char& c : n)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return n;
}

// --- bank-conflict equivalence sweep -----------------------------------------
// Every access lands in one DRAM bank (stride = row_size * banks), so the
// batched schedule has nothing to overlap on the memory side and the
// serial-decipher chains carry the window. Bytes must still match scalar.

workload same_bank_workload(const dram_timing& t) {
  const std::size_t stride = t.row_size * t.banks; // one bank, new row each hop
  workload w;
  w.name = "same-bank";
  const addr_t data_base = 1 << 20;
  for (std::size_t i = 0; i < 1200; ++i) {
    const addr_t a = data_base + (i * stride) % (128 * 1024);
    w.accesses.push_back({a, 8, i % 3 == 2 ? access_kind::store : access_kind::load});
    w.accesses.push_back({(i * stride) % (64 * 1024), 4, access_kind::fetch});
  }
  w.footprint = 128 * 1024;
  return w;
}

class BatchBankConflict : public ::testing::TestWithParam<engine_kind> {};

TEST_P(BatchBankConflict, SameBankBatchesMatchScalarBytes) {
  const edu::soc_config cfg = native_cfg(4);
  const workload w = same_bank_workload(cfg.mem_timing);
  const bytes image = patterned_image(64 * 1024);

  edu::secure_soc scalar_soc(GetParam(), cfg), batched_soc(GetParam(), cfg);
  for (edu::secure_soc* soc : {&scalar_soc, &batched_soc}) {
    soc->load_image(0, image);
    soc->load_image(1 << 20, bytes(128 * 1024, 0));
  }
  const throughput_stats s = scalar_soc.run_throughput(w, 1);
  const throughput_stats b = batched_soc.run_throughput(w, 8);
  EXPECT_EQ(s.ops, b.ops);
  scalar_soc.flush();
  batched_soc.flush();
  const auto ds = scalar_soc.memory().raw();
  const auto db = batched_soc.memory().raw();
  EXPECT_TRUE(std::equal(ds.begin(), ds.end(), db.begin()))
      << "bank-conflict batch diverged for " << edu::engine_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, BatchBankConflict,
                         ::testing::ValuesIn(edu::all_engines()),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           return sanitized(info.param);
                         });

// --- unaligned-detour equivalence sweep --------------------------------------
// A batch mixing aligned transactions with sub-unit writes and odd-offset
// reads: the ineligible ones must detour through the scalar path without
// reordering, and the retired bytes must match pure scalar issue.

class BatchUnalignedDetour : public ::testing::TestWithParam<engine_kind> {};

TEST_P(BatchUnalignedDetour, MixedAlignmentBatchMatchesScalar) {
  const edu::soc_config cfg = native_cfg(4);
  const bytes image = patterned_image(64 * 1024);
  const addr_t data = 1 << 20;

  edu::secure_soc scalar_soc(GetParam(), cfg), batched_soc(GetParam(), cfg);
  for (edu::secure_soc* soc : {&scalar_soc, &batched_soc}) {
    soc->load_image(0, image);
    soc->load_image(data, bytes(64 * 1024, 0));
  }

  struct op {
    addr_t addr;
    std::size_t len;
    bool write;
  };
  // Aligned and unaligned, data and code, with read-after-write overlap.
  // Code-region ops are reads only (Gilmont's code is fetch-only, the
  // compression engine's code region is read-only by design).
  const op ops[] = {
      {data + 0, 32, true},    // aligned line write
      {data + 4, 8, true},     // sub-unit write: five-step RMW detour
      {data + 2, 12, false},   // odd-offset read across the fresh bytes
      {data + 0, 32, false},   // aligned read of the merged line
      {data + 64, 32, true},   // second line, aligned
      {data + 70, 3, false},   // tiny unaligned read
      {96, 32, false},         // aligned code read
      {100, 20, false},        // unaligned code read
  };

  // Scalar reference.
  bytes scalar_out, batched_out;
  for (const op& o : ops) {
    bytes buf(o.len);
    if (o.write) {
      fill_store_pattern(o.addr, buf);
      (void)scalar_soc.engine().write(o.addr, buf);
    } else {
      (void)scalar_soc.engine().read(o.addr, buf);
      scalar_out.insert(scalar_out.end(), buf.begin(), buf.end());
    }
  }
  // One batch through the native path.
  std::vector<bytes> lanes;
  lanes.reserve(std::size(ops));
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < std::size(ops); ++i) {
    lanes.emplace_back(ops[i].len);
    if (ops[i].write) {
      fill_store_pattern(ops[i].addr, lanes.back());
      batch.push_back(mem_txn::write_of(i, ops[i].addr, lanes.back()));
    } else {
      batch.push_back(mem_txn::read_of(i, ops[i].addr, lanes.back()));
    }
  }
  batched_soc.engine().submit(batch);
  (void)batched_soc.engine().drain();
  for (std::size_t i = 0; i < std::size(ops); ++i)
    if (!ops[i].write)
      batched_out.insert(batched_out.end(), lanes[i].begin(), lanes[i].end());

  EXPECT_EQ(batched_out, scalar_out)
      << "detour read bytes diverged for " << edu::engine_name(GetParam());
  // Stamps retire in order and stay within the drained window.
  for (std::size_t i = 1; i < batch.size(); ++i)
    EXPECT_LE(batch[i - 1].complete_cycle, batch[i].complete_cycle);

  scalar_soc.flush();
  batched_soc.flush();
  const auto ds = scalar_soc.memory().raw();
  const auto db = batched_soc.memory().raw();
  EXPECT_TRUE(std::equal(ds.begin(), ds.end(), db.begin()))
      << "detour DRAM bytes diverged for " << edu::engine_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, BatchUnalignedDetour,
                         ::testing::ValuesIn(edu::all_engines()),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           return sanitized(info.param);
                         });

// --- single-transaction degeneracy -------------------------------------------
// A one-transaction batch has nothing to overlap: for every engine whose
// read path is serial-decipher (or whose overlap is already expressed by
// the scalar max), the batched cycles must equal the scalar cycles.

class BatchSingleTxnDegeneracy : public ::testing::TestWithParam<engine_kind> {};

TEST_P(BatchSingleTxnDegeneracy, SingleReadCostsScalarTime) {
  const edu::soc_config cfg = native_cfg(4);
  edu::secure_soc scalar_soc(GetParam(), cfg), batched_soc(GetParam(), cfg);
  const bytes image = patterned_image(16 * 1024);
  scalar_soc.load_image(0, image);
  batched_soc.load_image(0, image);

  // Same address in both: first touch of a fresh engine either way.
  bytes s_out(32), b_out(32);
  const cycles scalar = scalar_soc.engine().read(64, s_out);

  std::vector<mem_txn> one;
  one.push_back(mem_txn::read_of(0, 64, b_out));
  batched_soc.engine().submit(one);
  const cycles batched = batched_soc.engine().drain();

  EXPECT_EQ(b_out, s_out);
  EXPECT_EQ(one[0].complete_cycle, batched) << "single txn must stamp the makespan";
  EXPECT_EQ(batched, scalar)
      << "a one-transaction window must degenerate to scalar timing for "
      << edu::engine_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, BatchSingleTxnDegeneracy,
    // The keyslot engine's CTR pad and SecureDMA's page fill overlap even a
    // lone fetch (their scalar paths already charge the max), and the
    // compression/integrity engines re-shape per-window startup costs —
    // their single-txn behaviour is pinned by their own tests instead.
    ::testing::Values(engine_kind::plaintext, engine_kind::best_stp,
                      engine_kind::dallas_byte, engine_kind::dallas_des,
                      engine_kind::block_ecb_aes, engine_kind::block_cbc_aes,
                      engine_kind::xom_aes, engine_kind::aegis_cbc,
                      engine_kind::gilmont_3des, engine_kind::gi_3des_cbc,
                      engine_kind::stream_otp, engine_kind::stream_serial,
                      engine_kind::cacheside_otp),
    [](const ::testing::TestParamInfo<engine_kind>& info) {
      return sanitized(info.param);
    });

// --- newly native engines actually gain --------------------------------------

double bpc_of(engine_kind kind, std::size_t batch_txns) {
  edu::secure_soc soc(kind, native_cfg(8));
  workload w = make_jumpy_code(10'000, 128 * 1024, 0.15, 0xBEEF);
  const workload s = make_streaming(3'000, 128 * 1024, 4, 0xBEF0);
  w.accesses.insert(w.accesses.end(), s.accesses.begin(), s.accesses.end());
  soc.load_image(0, patterned_image(128 * 1024));
  soc.load_image(1 << 20, bytes(128 * 1024, 0));
  return soc.run_throughput(w, batch_txns).bytes_per_cycle();
}

TEST(BatchNativeThroughput, BlockFamilyBatchedBeatsScalar) {
  for (const engine_kind kind :
       {engine_kind::best_stp, engine_kind::dallas_byte, engine_kind::dallas_des,
        engine_kind::block_ecb_aes, engine_kind::xom_aes, engine_kind::aegis_cbc}) {
    const double scalar = bpc_of(kind, 1);
    const double batched = bpc_of(kind, 16);
    EXPECT_GT(batched, scalar * 1.10)
        << edu::engine_name(kind) << " lost its pipelined batch gain";
  }
}

TEST(BatchNativeThroughput, SegmentAndPageEnginesBatchedBeatScalar) {
  for (const engine_kind kind : {engine_kind::gilmont_3des, engine_kind::gi_3des_cbc,
                                 engine_kind::compress_otp}) {
    const double scalar = bpc_of(kind, 1);
    const double batched = bpc_of(kind, 16);
    EXPECT_GT(batched, scalar * 1.05)
        << edu::engine_name(kind) << " lost its batch gain";
  }
  // Secure DMA's page writebacks are chained either way; the fill overlap
  // still has to show, and batching must never cost throughput.
  EXPECT_GE(bpc_of(engine_kind::secure_dma, 16),
            bpc_of(engine_kind::secure_dma, 1));
}

// --- per-engine state regressions --------------------------------------------

TEST(AegisBatch, InWindowWriteDoesNotBleedNonceIntoEarlierRead) {
  const edu::soc_config cfg = native_cfg(4);
  edu::secure_soc scalar_soc(engine_kind::aegis_cbc, cfg);
  edu::secure_soc batched_soc(engine_kind::aegis_cbc, cfg);
  const bytes image = patterned_image(4 * 1024);
  scalar_soc.load_image(0, image);
  batched_soc.load_image(0, image);

  // Scalar: read old, write new, read new.
  bytes s_r1(32), s_r2(32), w1(32);
  fill_store_pattern(0x40, w1);
  (void)scalar_soc.engine().read(0x40, s_r1);
  (void)scalar_soc.engine().write(0x40, w1);
  (void)scalar_soc.engine().read(0x40, s_r2);

  bytes b_r1(32), b_r2(32), w2(32);
  fill_store_pattern(0x40, w2);
  std::vector<mem_txn> batch;
  batch.push_back(mem_txn::read_of(0, 0x40, b_r1));
  batch.push_back(mem_txn::write_of(1, 0x40, w2));
  batch.push_back(mem_txn::read_of(2, 0x40, b_r2));
  batched_soc.engine().submit(batch);
  (void)batched_soc.engine().drain();

  EXPECT_EQ(b_r1, s_r1) << "pre-write read must decrypt under the OLD nonce";
  EXPECT_EQ(b_r2, s_r2) << "post-write read must decrypt under the NEW nonce";
  batched_soc.flush();
  scalar_soc.flush();
  EXPECT_TRUE(std::equal(scalar_soc.memory().raw().begin(),
                         scalar_soc.memory().raw().end(),
                         batched_soc.memory().raw().begin()));
}

TEST(DmaBatch, PageRecyclingInsideOneWindowStaysExact) {
  // 6 distinct pages through 4 buffers in one window: at least one victim
  // is a page filled earlier in the same window, forcing the mid-window
  // retire; bytes must match scalar issue, including dirty writebacks.
  const edu::soc_config cfg = native_cfg(4);
  edu::secure_soc scalar_soc(engine_kind::secure_dma, cfg);
  edu::secure_soc batched_soc(engine_kind::secure_dma, cfg);
  const bytes image = patterned_image(64 * 1024);
  scalar_soc.load_image(0, image);
  batched_soc.load_image(0, image);

  std::vector<addr_t> addrs;
  for (addr_t p = 0; p < 6; ++p) addrs.push_back(p * 4096 + 128);

  bytes s_reads, b_reads;
  for (std::size_t round = 0; round < 2; ++round) {
    for (const addr_t a : addrs) {
      bytes buf(32);
      if (round == 0) {
        fill_store_pattern(a, buf);
        (void)scalar_soc.engine().write(a, buf);
      } else {
        (void)scalar_soc.engine().read(a, buf);
        s_reads.insert(s_reads.end(), buf.begin(), buf.end());
      }
    }
  }
  std::vector<bytes> lanes;
  std::vector<mem_txn> batch;
  lanes.reserve(addrs.size() * 2);
  for (std::size_t round = 0; round < 2; ++round)
    for (const addr_t a : addrs) {
      lanes.emplace_back(32);
      if (round == 0) {
        fill_store_pattern(a, lanes.back());
        batch.push_back(mem_txn::write_of(lanes.size(), a, lanes.back()));
      } else {
        batch.push_back(mem_txn::read_of(lanes.size(), a, lanes.back()));
      }
    }
  batched_soc.engine().submit(batch);
  (void)batched_soc.engine().drain();
  for (std::size_t i = addrs.size(); i < lanes.size(); ++i)
    b_reads.insert(b_reads.end(), lanes[i].begin(), lanes[i].end());

  EXPECT_EQ(b_reads, s_reads);
  scalar_soc.flush();
  batched_soc.flush();
  EXPECT_TRUE(std::equal(scalar_soc.memory().raw().begin(),
                         scalar_soc.memory().raw().end(),
                         batched_soc.memory().raw().begin()));
}

TEST(GilmontBatch, PrefetcherStaysInTheLoopAcrossAWindow) {
  const edu::soc_config cfg = native_cfg(4);
  edu::secure_soc soc(engine_kind::gilmont_3des, cfg);
  edu::secure_soc scalar_soc(engine_kind::gilmont_3des, cfg);
  const bytes image = patterned_image(8 * 1024);
  soc.load_image(0, image);
  scalar_soc.load_image(0, image);

  // Sequential code lines: after the first miss every line is predicted.
  std::vector<bytes> lanes(8, bytes(32));
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < lanes.size(); ++i)
    batch.push_back(mem_txn::read_of(i, i * 32, lanes[i]));
  soc.engine().submit(batch);
  const cycles batched = soc.engine().drain();

  auto& gil = static_cast<edu::gilmont_edu&>(soc.engine());
  EXPECT_GT(gil.prefetch_hits(), 0u) << "sequential window must hit the predictor";

  cycles scalar = 0;
  bytes buf(32);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    scalar += scalar_soc.engine().read(i * 32, buf);
    EXPECT_EQ(buf, lanes[i]) << "line " << i;
  }
  EXPECT_LE(batched, scalar) << "batching must never cost the predictor its win";
}

TEST(GiBatch, BatchedReadsKeepVerifiedWindowAndTags) {
  const edu::soc_config cfg = native_cfg(4);
  edu::secure_soc scalar_soc(engine_kind::gi_3des_cbc, cfg);
  edu::secure_soc batched_soc(engine_kind::gi_3des_cbc, cfg);
  const bytes image = patterned_image(16 * 1024);
  scalar_soc.load_image(0, image);
  batched_soc.load_image(0, image);

  // Mixed window: reads across several 1 KiB segments plus a write (which
  // detours) and a read-back of the written range.
  struct op {
    addr_t addr;
    bool write;
  };
  const op ops[] = {{0, false},    {1024, false}, {64, false},  {2048, true},
                    {2048, false}, {3072, false}, {1024, false}};
  bytes s_reads, b_reads;
  for (const op& o : ops) {
    bytes buf(32);
    if (o.write) {
      fill_store_pattern(o.addr, buf);
      (void)scalar_soc.engine().write(o.addr, buf);
    } else {
      (void)scalar_soc.engine().read(o.addr, buf);
      s_reads.insert(s_reads.end(), buf.begin(), buf.end());
    }
  }
  std::vector<bytes> lanes;
  std::vector<mem_txn> batch;
  for (std::size_t i = 0; i < std::size(ops); ++i) {
    lanes.emplace_back(32);
    if (ops[i].write) {
      fill_store_pattern(ops[i].addr, lanes.back());
      batch.push_back(mem_txn::write_of(i, ops[i].addr, lanes.back()));
    } else {
      batch.push_back(mem_txn::read_of(i, ops[i].addr, lanes.back()));
    }
  }
  batched_soc.engine().submit(batch);
  (void)batched_soc.engine().drain();
  for (std::size_t i = 0; i < std::size(ops); ++i)
    if (!ops[i].write) b_reads.insert(b_reads.end(), lanes[i].begin(), lanes[i].end());

  EXPECT_EQ(b_reads, s_reads);
  auto& gi_s = static_cast<edu::gi_edu&>(scalar_soc.engine());
  auto& gi_b = static_cast<edu::gi_edu&>(batched_soc.engine());
  EXPECT_EQ(gi_b.auth_failures(), 0u) << "clean batch must verify clean";
  EXPECT_EQ(gi_s.auth_failures(), 0u);
}

// --- the crypto hot-loop layer ------------------------------------------------

TEST(BulkKeystream, GeneratePadsMatchesPerUnitTransform) {
  const auto& reg = engine::backend_registry::builtin();
  for (const char* name : {"aes-ctr", "3des-ctr", "rc4-stream", "lfsr-stream",
                           "trivium-stream"}) {
    const engine::cipher_backend& be = reg.at(name);
    bytes key(16, 0x42);
    if (!be.key_len_ok(key.size())) key.resize(8);
    ASSERT_TRUE(be.key_len_ok(key.size())) << name;
    const auto kc = be.make_keyed(key);
    ASSERT_TRUE(kc->pad_precomputable()) << name;

    constexpr std::size_t unit = 32;
    constexpr u64 first_dun = 77;
    bytes bulk(4 * unit);
    kc->generate_pads(first_dun, unit, bulk);

    // Per-unit reference: pad == encrypt(zeros).
    const bytes zeros(unit, 0);
    for (std::size_t u = 0; u < 4; ++u) {
      bytes one(unit);
      kc->encrypt_unit(first_dun + u, zeros, one);
      EXPECT_TRUE(std::equal(one.begin(), one.end(), bulk.begin() + u * unit))
          << name << " unit " << u;
    }
    // And the pad really deciphers data the per-unit path enciphered.
    bytes data(unit);
    fill_store_pattern(0x1000, data);
    bytes ct(unit);
    kc->encrypt_unit(first_dun + 1, data, ct);
    for (std::size_t i = 0; i < unit; ++i) ct[i] ^= bulk[unit + i];
    EXPECT_EQ(ct, data) << name;
  }
}

TEST(ScheduleCache, WarmKeysSkipExpansion) {
  // A private registry instance so counters start clean.
  const bytes k1(16, 0xA1), k2(16, 0xB2);
  engine::block_backend be(
      "aes-ctr-test", engine::unit_mode::ctr, engine::backend_cost{11, 11, 16, false},
      std::vector<std::size_t>{16},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::aes>(key);
      });

  const auto a = be.make_keyed(k1);
  EXPECT_EQ(be.schedule_expansions(), 1u);
  EXPECT_EQ(be.schedule_hits(), 0u);
  const auto b = be.make_keyed(k1); // same key: shared expanded core
  EXPECT_EQ(be.schedule_expansions(), 1u);
  EXPECT_EQ(be.schedule_hits(), 1u);
  const auto c = be.make_keyed(k2);
  EXPECT_EQ(be.schedule_expansions(), 2u);

  // Shared schedule, independent instances: identical transforms.
  bytes x(32);
  fill_store_pattern(0, x);
  bytes ya(32), yb(32);
  a->encrypt_unit(5, x, ya);
  b->encrypt_unit(5, x, yb);
  EXPECT_EQ(ya, yb);
  bytes back(32);
  c->decrypt_unit(5, ya, back);
  EXPECT_NE(back, x) << "different key must not decrypt";
}

TEST(ScheduleCache, KeyslotReprogramThrashReusesSchedules) {
  // Two contexts, one slot: every request reprograms the slot, but the
  // backend's schedule cache means each key expands exactly once.
  engine::block_backend be(
      "aes-cbc-test", engine::unit_mode::cbc, engine::backend_cost{11, 11, 16, true},
      std::vector<std::size_t>{16},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::aes>(key);
      });
  for (int i = 0; i < 10; ++i) {
    (void)be.make_keyed(bytes(16, 0x11));
    (void)be.make_keyed(bytes(16, 0x22));
  }
  EXPECT_EQ(be.schedule_expansions(), 2u);
  EXPECT_EQ(be.schedule_hits(), 18u);
}

} // namespace
} // namespace buscrypt
