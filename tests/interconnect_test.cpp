// Topology-first interconnect: builder/bind validation, the bus_firewall
// span-splitting and accounting contract, live reprogramming's
// window-boundary atomicity, QoS bandwidth reservation and class aging,
// flat-vs-one-cluster bit identity across every engine (fleet noc cells),
// the soc::run_topology driver, and the parse_*/name_* helper pairs the
// bench CLIs route through.

#include "edu/engine_edu.hpp"
#include "edu/soc.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/eviction_policy.hpp"
#include "engine/memory_authenticator.hpp"
#include "fleet/fleet.hpp"
#include "sim/bus.hpp"
#include "sim/firewall.hpp"
#include "sim/interconnect.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

namespace buscrypt {
namespace {

using namespace sim;
using edu::engine_kind;

// --- compile-time contracts --------------------------------------------------

static_assert(qos_class_name(qos_class::bulk) == "bulk");
static_assert(fw_perm_name(fw_perm::rw) == "rw");
static_assert(default_qos_params(qos_class::none).weight == 1,
              "class none must hold no reservation by default");
static_assert(firewall_rule{}.perm == fw_perm::rw,
              "a default-constructed rule must grant, not block");

// --- shared fixtures ---------------------------------------------------------

/// Fixed-latency scalar-only port (same shape the arbiter tests use).
class fixed_latency_port final : public memory_port {
 public:
  explicit fixed_latency_port(std::size_t size, cycles latency)
      : image_(size, 0), latency_(latency) {}

  cycles read(addr_t addr, std::span<u8> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = image_[addr + i];
    return latency_;
  }
  cycles write(addr_t addr, std::span<const u8> in) override {
    for (std::size_t i = 0; i < in.size(); ++i) image_[addr + i] = in[i];
    return latency_;
  }

 private:
  bytes image_;
  cycles latency_;
};

/// n_ops chunk-granular sequential reads starting at base.
std::vector<port_op> read_stream(addr_t base, std::size_t n_ops, std::size_t chunk) {
  std::vector<port_op> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) ops.push_back({base + i * chunk, false});
  return ops;
}

bus_master_config master_cfg(master_id id, const char* name, unsigned priority,
                             std::size_t chunk = 32) {
  bus_master_config c;
  c.id = id;
  c.name = name;
  c.priority = priority;
  c.chunk = chunk;
  return c;
}

// --- parse_*/name_* helper pairs ---------------------------------------------

TEST(InterconnectParse, HelperPairsRoundTripEveryName) {
  for (const arb_policy p : all_arb_policies) {
    arb_policy out = arb_policy::fixed_priority;
    EXPECT_TRUE(parse_arb_policy(arb_policy_name(p), out));
    EXPECT_EQ(out, p);
  }
  for (const qos_class c : all_qos_classes) {
    qos_class out = qos_class::none;
    EXPECT_TRUE(parse_qos_class(qos_class_name(c), out));
    EXPECT_EQ(out, c);
  }
  for (const fw_perm p : all_fw_perms) {
    fw_perm out = fw_perm::none;
    EXPECT_TRUE(parse_fw_perm(fw_perm_name(p), out));
    EXPECT_EQ(out, p);
  }
  for (const engine::auth_mode m : engine::all_auth_modes) {
    engine::auth_mode out = engine::auth_mode::none;
    EXPECT_TRUE(engine::parse_auth_mode(engine::auth_mode_name(m), out));
    EXPECT_EQ(out, m);
  }
  for (const engine::slot_policy p : engine::all_slot_policies) {
    engine::slot_policy out = engine::slot_policy::lru;
    EXPECT_TRUE(engine::parse_slot_policy(engine::slot_policy_name(p), out));
    EXPECT_EQ(out, p);
  }
}

TEST(InterconnectParse, UnknownNamesAreRejectedAndLeaveOutUntouched) {
  arb_policy ap = arb_policy::fixed_priority;
  EXPECT_FALSE(parse_arb_policy("token-ring", ap));
  EXPECT_EQ(ap, arb_policy::fixed_priority);

  qos_class qc = qos_class::realtime;
  EXPECT_FALSE(parse_qos_class("best-effort", qc));
  EXPECT_FALSE(parse_qos_class("", qc));
  EXPECT_EQ(qc, qos_class::realtime);

  fw_perm fp = fw_perm::w;
  EXPECT_FALSE(parse_fw_perm("rwx", fp));
  EXPECT_EQ(fp, fw_perm::w);
}

// --- topology builder validation ---------------------------------------------

TEST(InterconnectTopology, BuilderValidatesShape) {
  topology t;
  cluster_config bad;
  bad.arb.window_txns = 0;
  EXPECT_THROW((void)t.add_cluster(bad), std::invalid_argument);

  const cluster_id c = t.add_cluster({"compute", {arb_policy::round_robin, 4, 0}, 1,
                                      qos_class::none});
  EXPECT_THROW(t.add_master(static_cast<cluster_id>(7), 1), std::invalid_argument);
  t.add_master(c, 1);
  EXPECT_THROW(t.add_master(c, 1), std::invalid_argument);
  EXPECT_THROW(t.add_master(c, any_master), std::invalid_argument);

  EXPECT_THROW(t.set_qos(master_id{9}, qos_class::bulk), std::invalid_argument);
  EXPECT_THROW(t.set_qos_params(qos_class::bulk, {0, 0}), std::invalid_argument);

  EXPECT_THROW(t.add_firewall_rule(1, {0x1000, 0, fw_perm::rw, 0}),
               std::invalid_argument);
  EXPECT_THROW(t.add_firewall_rule(any_master, {0x1000, 0x100, fw_perm::rw, 0}),
               std::invalid_argument);

  EXPECT_FALSE(t.qos_enabled());
  t.set_qos(master_id{1}, qos_class::bulk);
  EXPECT_TRUE(t.qos_enabled());
}

TEST(InterconnectTopology, BindingsAreValidatedAndFlatClusterIsImplicit) {
  fixed_latency_port port(64 * 1024, 10);
  EXPECT_THROW((void)interconnect(port, topology({arb_policy::round_robin, 0, 0})),
               std::invalid_argument);

  // A topology with no clusters gets the implicit flat "bus" cluster — the
  // bus_arbiter compatibility shape.
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  ASSERT_EQ(ic.topo().clusters().size(), 1u);
  EXPECT_EQ(ic.topo().clusters()[0].name, "bus");

  bus_master a(master_cfg(1, "a", 0), read_stream(0, 4, 32));
  bus_master dup(master_cfg(1, "dup", 0), read_stream(4096, 4, 32));
  bus_master forged(master_cfg(any_master, "forged", 0), read_stream(8192, 4, 32));
  ic.add_master(a);
  EXPECT_THROW(ic.add_master(dup), std::invalid_argument);
  EXPECT_THROW(ic.add_master(forged), std::invalid_argument);
}

// --- bus_firewall span semantics ---------------------------------------------

TEST(InterconnectFirewall, PeekSplitsSpansFirstMatchWins) {
  bus_firewall fw;
  fw.program(1, {{0x1000, 0x100, fw_perm::rw, 0},
                 {0x1080, 0x100, fw_perm::none, 0},
                 {0x2000, 0x100, fw_perm::r, 0}});

  // No table: the port is open and the whole request passes untouched.
  const fw_span open = fw.peek(9, 0x1234, 0x40, true);
  EXPECT_TRUE(open.allowed);
  EXPECT_EQ(open.len, 0x40u);
  EXPECT_EQ(open.rule, -1);

  // Rules 0 and 1 overlap at [0x1080, 0x1100): the earlier rule wins there,
  // and the allowed prefix ends where rule 0's range does.
  const fw_span head = fw.peek(1, 0x1080, 0x100, false);
  EXPECT_TRUE(head.allowed);
  EXPECT_EQ(head.len, 0x80u);
  EXPECT_EQ(head.rule, 0);

  // The continuation falls to rule 1, an explicit block rule.
  const fw_span tail = fw.peek(1, 0x1100, 0x80, false);
  EXPECT_FALSE(tail.allowed);
  EXPECT_EQ(tail.len, 0x80u);
  EXPECT_EQ(tail.rule, 1);

  // Permission bits are direction-sensitive: rule 2 is read-only.
  EXPECT_TRUE(fw.peek(1, 0x2000, 0x40, false).allowed);
  EXPECT_FALSE(fw.peek(1, 0x2000, 0x40, true).allowed);
  EXPECT_EQ(fw.peek(1, 0x2000, 0x40, true).rule, 2);

  // A programmed port default-denies unmatched addresses, but only up to
  // the first point where some rule would start to decide differently.
  const fw_span gap = fw.peek(1, 0x0, 0x2000, false);
  EXPECT_FALSE(gap.allowed);
  EXPECT_EQ(gap.len, 0x1000u);
  EXPECT_EQ(gap.rule, -1);

  const fw_span past = fw.peek(1, 0x3000, 0x40, false);
  EXPECT_FALSE(past.allowed);
  EXPECT_EQ(past.len, 0x40u);
  EXPECT_EQ(past.rule, -1);
}

TEST(InterconnectFirewall, CheckAttributesPerRuleAndPerMasterCounters) {
  bus_firewall fw;
  fw.program(1, {{0x1000, 0x100, fw_perm::rw, 0}, {0x2000, 0x100, fw_perm::r, 7}});
  EXPECT_EQ(fw.reprograms(), 1u);

  EXPECT_TRUE(fw.check(1, 0x1000, 0x20, false).allowed);  // rule 0 hit
  EXPECT_FALSE(fw.check(1, 0x2000, 0x20, true).allowed);  // rule 1 perm deny
  EXPECT_FALSE(fw.check(1, 0x5000, 0x20, false).allowed); // default deny, no rule

  const fw_master_stats st = fw.stats(1);
  EXPECT_EQ(st.checks, 3u);
  EXPECT_EQ(st.denies, 2u);
  ASSERT_EQ(st.rules.size(), 2u);
  EXPECT_EQ(st.rules[0].hits, 1u);
  EXPECT_EQ(st.rules[0].denies, 0u);
  EXPECT_EQ(st.rules[1].hits, 0u);
  EXPECT_EQ(st.rules[1].denies, 1u); // the default denial is unattributed

  // Pure lookups never count; a never-checked master reads back zeros.
  (void)fw.peek(1, 0x1000, 0x20, false);
  EXPECT_EQ(fw.stats(1).checks, 3u);
  EXPECT_EQ(fw.stats(9).checks, 0u);

  // Reinstalling a table resets its per-rule counters (new table, new rules).
  fw.program(1, {{0x1000, 0x100, fw_perm::rw, 0}});
  EXPECT_EQ(fw.reprograms(), 2u);
  EXPECT_EQ(fw.stats(1).rules.size(), 1u);
  EXPECT_EQ(fw.stats(1).rules[0].hits, 0u);

  EXPECT_THROW(fw.program(any_master, {{0, 0x100, fw_perm::rw, 0}}),
               std::invalid_argument);
  EXPECT_THROW(fw.program(1, {{0, 0, fw_perm::rw, 0}}), std::invalid_argument);
}

TEST(InterconnectFirewall, ForgedSentinelIsDeniedWholeAndAccounted) {
  bus_firewall fw;
  // Even with no tables at all: no rule table can vouch for "every master".
  const fw_span s = fw.peek(any_master, 0x1000, 0x100, false);
  EXPECT_FALSE(s.allowed);
  EXPECT_EQ(s.len, 0x100u); // refused whole, never split
  EXPECT_EQ(fw.sentinel_denials(), 0u);
  (void)fw.check(any_master, 0x1000, 0x100, false);
  (void)fw.check(any_master, 0x2000, 0x40, true);
  EXPECT_EQ(fw.sentinel_denials(), 2u);
}

TEST(InterconnectFirewall, StageCommitSwapsTablesAtomically) {
  bus_firewall fw;
  fw.program(1, {{0x0, 0x1000, fw_perm::rw, 0}});
  fw.stage(1, {{0x0, 0x1000, fw_perm::none, 0}});
  fw.stage(2, {{0x8000, 0x1000, fw_perm::r, 0}});
  EXPECT_TRUE(fw.has_staged());

  // Staged tables are invisible until commit: master 1 still passes, and
  // master 2's port is still open.
  EXPECT_TRUE(fw.peek(1, 0x0, 0x20, true).allowed);
  EXPECT_TRUE(fw.peek(2, 0x0, 0x20, true).allowed);

  // A second stage for the same master replaces the first, not stacks.
  fw.stage(1, {{0x0, 0x800, fw_perm::none, 0}});
  EXPECT_EQ(fw.commit(), 2u);
  EXPECT_FALSE(fw.has_staged());
  EXPECT_FALSE(fw.peek(1, 0x0, 0x20, true).allowed);
  ASSERT_NE(fw.table(1), nullptr);
  EXPECT_EQ(fw.table(1)->front().len, 0x800u);
  EXPECT_FALSE(fw.peek(2, 0x0, 0x20, true).allowed); // whitelisted now
  EXPECT_TRUE(fw.peek(2, 0x8000, 0x20, false).allowed);

  fw.clear(2);
  EXPECT_TRUE(fw.peek(2, 0x0, 0x20, true).allowed); // open port again
}

// --- live reprogramming under traffic ----------------------------------------

TEST(InterconnectReprogram, MidRunStagedTableCommitsAtTheNextWindowBoundary) {
  fixed_latency_port port(64 * 1024, 10);
  topology t({arb_policy::round_robin, 4, 0});
  t.add_firewall_rule(1, {0, 64 * 1024, fw_perm::rw, 0});
  interconnect ic(port, std::move(t));

  bus_master m0(master_cfg(0, "cpu", 0), read_stream(0, 24, 32));
  bus_master m1(master_cfg(1, "accel", 0), read_stream(0x4000, 24, 32));
  ic.add_master(m0);
  ic.add_master(m1);

  // Snapshot the live table at every grant; stage a lockdown at grant 2.
  std::vector<fw_perm> perms_seen;
  ic.set_grant_hook([&](master_id) {
    perms_seen.push_back(ic.firewall().table(1)->front().perm);
    if (perms_seen.size() == 3)
      ic.reprogram_firewall(1, {{0, 64 * 1024, fw_perm::none, 0}});
  });

  const interconnect_stats st = ic.run();
  EXPECT_EQ(st.bus.rounds, 12u); // 48 ops / window of 4
  // 12 grants plus the exit path's attribution-restore callback.
  ASSERT_EQ(perms_seen.size(), 13u);

  // The staging grant's window still ran under the old table; every later
  // window saw the new one — nothing flipped mid-window.
  EXPECT_EQ(perms_seen[2], fw_perm::rw);
  for (std::size_t g = 3; g < perms_seen.size(); ++g)
    EXPECT_EQ(perms_seen[g], fw_perm::none) << "grant " << g;

  EXPECT_EQ(st.firewall_reprograms, 1u);
  EXPECT_GT(st.reconfig_latency_sum, 0u); // at least the staging window's makespan
  EXPECT_EQ(st.reconfig_latency_max, st.reconfig_latency_sum);
  EXPECT_FALSE(ic.firewall().has_staged());
}

TEST(InterconnectReprogram, TableStagedInTheFinalWindowStillLands) {
  fixed_latency_port port(64 * 1024, 10);
  topology t({arb_policy::round_robin, 4, 0});
  t.add_firewall_rule(1, {0, 64 * 1024, fw_perm::rw, 0});
  interconnect ic(port, std::move(t));

  bus_master m1(master_cfg(1, "accel", 0), read_stream(0, 8, 32));
  ic.add_master(m1);
  u64 grants = 0;
  ic.set_grant_hook([&](master_id) {
    if (++grants == 2) // the last window of the run
      ic.reprogram_firewall(1, {{0, 64 * 1024, fw_perm::none, 0}});
  });

  const interconnect_stats st = ic.run();
  EXPECT_EQ(st.bus.rounds, 2u);
  EXPECT_EQ(st.firewall_reprograms, 1u);
  EXPECT_GT(st.reconfig_latency_max, 0u);
  EXPECT_FALSE(ic.firewall().has_staged());
  EXPECT_EQ(ic.firewall().table(1)->front().perm, fw_perm::none);
}

// --- QoS reservation and aging -----------------------------------------------

TEST(InterconnectQos, ReservationSharesBandwidthByClassWeight) {
  fixed_latency_port port(64 * 1024, 10);
  topology t({arb_policy::round_robin, 4, 0});
  const cluster_id c = t.add_cluster({"bus", {arb_policy::round_robin, 4, 0}, 0,
                                      qos_class::none});
  t.add_master(c, 0, qos_class::bulk);
  t.add_master(c, 1, qos_class::none);
  ASSERT_TRUE(t.qos_enabled());
  interconnect ic(port, std::move(t));

  bus_master mover(master_cfg(0, "mover", 0), read_stream(0, 64, 32));
  bus_master other(master_cfg(1, "other", 0), read_stream(0x8000, 64, 32));
  ic.add_master(mover);
  ic.add_master(other);

  const interconnect_stats st = ic.run();
  ASSERT_EQ(st.qos.size(), 4u); // one entry per class once QoS engages
  u64 bulk_grants = 0;
  for (const qos_class_stats& q : st.qos)
    if (q.cls == qos_class::bulk) bulk_grants = q.grants;
  // The mover's 16 windows all arrive as bulk-class grants. (Class-none
  // totals also absorb the root's cluster grants, so cross-class grant
  // counts are not directly comparable — the reservation shows up in the
  // wait/finish asymmetry instead.)
  EXPECT_EQ(bulk_grants, 16u);
  // bulk reserves a 4:1 share: the mover never waits more than one round
  // while the best-effort master sits out whole credit bursts, so the
  // mover drains first even under round-robin.
  EXPECT_LE(st.bus.masters[0].max_wait_streak, 1u);
  EXPECT_GE(st.bus.masters[1].max_wait_streak, 3u);
  EXPECT_LT(st.bus.masters[0].finish_cycle, st.bus.masters[1].finish_cycle);
  EXPECT_EQ(st.bus.masters[0].txns, 64u);
  EXPECT_EQ(st.bus.masters[1].txns, 64u);
  EXPECT_EQ(st.bus.bytes, 2 * 64 * 32u);
}

TEST(InterconnectQos, PlainTopologyReportsNoQosLayer) {
  fixed_latency_port port(64 * 1024, 10);
  interconnect ic(port, topology({arb_policy::round_robin, 4, 0}));
  bus_master a(master_cfg(0, "a", 0), read_stream(0, 8, 32));
  ic.add_master(a);
  EXPECT_TRUE(ic.run().qos.empty());
}

TEST(InterconnectQos, AgingBoundsAStarvedClasssWait) {
  const auto starved_streak = [](u64 latency_aging_limit) {
    fixed_latency_port port(64 * 1024, 10);
    topology t({arb_policy::round_robin, 4, 0});
    const cluster_id c = t.add_cluster({"bus", {arb_policy::round_robin, 4, 0}, 0,
                                        qos_class::none});
    t.add_master(c, 0, qos_class::bulk);
    t.add_master(c, 1, qos_class::latency);
    t.set_qos_params(qos_class::bulk, {16, 0}); // a crushing reservation
    t.set_qos_params(qos_class::latency, {1, latency_aging_limit});
    interconnect ic(port, std::move(t));

    bus_master mover(master_cfg(0, "mover", 0), read_stream(0, 120, 32));
    bus_master poller(master_cfg(1, "poller", 0), read_stream(0x8000, 120, 32));
    ic.add_master(mover);
    ic.add_master(poller);

    const interconnect_stats st = ic.run();
    for (const qos_class_stats& q : st.qos)
      if (q.cls == qos_class::latency) return q;
    return qos_class_stats{};
  };

  // Strict 16:1 credits starve the poller's class for a full credit round.
  const qos_class_stats strict = starved_streak(0);
  EXPECT_EQ(strict.preempts, 0u);
  EXPECT_GE(strict.max_streak, 15u);

  // Aging pre-empts the credit choice once the class has waited 6 rounds.
  const qos_class_stats aged = starved_streak(6);
  EXPECT_GT(aged.preempts, 0u);
  EXPECT_LE(aged.max_streak, 7u);
  EXPECT_LT(aged.max_streak, strict.max_streak);
}

// --- flat vs clustered bit identity, every engine -----------------------------

class InterconnectSweep : public ::testing::TestWithParam<engine_kind> {};

TEST_P(InterconnectSweep, FlatAndOneClusterNocCellsAreBitIdentical) {
  // The implicit flat cluster and one explicit cluster must take the same
  // grant sequence, so the whole simulated state — bytes, cycles, engine
  // counters, post-flush DRAM image — is identical across every engine.
  fleet::fleet_cell flat;
  flat.kind = GetParam();
  flat.accesses = 2000;
  flat.footprint = 256 * 1024;
  flat.drive = fleet::drive_mode::noc;
  flat.noc_masters = 4;
  flat.noc_clusters = 0;

  fleet::fleet_cell one = flat;
  one.noc_clusters = 1;

  const fleet::cell_result a = fleet::run_cell(flat);
  fleet::cell_result b = fleet::run_cell(one);
  EXPECT_NE(a.label, b.label); // the cluster count is part of the label
  b.label = a.label;
  EXPECT_TRUE(a.sim_equal(b)) << edu::engine_name(GetParam()) << ": flat "
                              << a.total_cycles << " cycles / fnv " << a.dram_fnv
                              << " vs clustered " << b.total_cycles << " / "
                              << b.dram_fnv;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, InterconnectSweep,
                         ::testing::ValuesIn(edu::all_engines()),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           std::string n(edu::engine_name(info.param));
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// --- the soc-level topology driver -------------------------------------------

std::vector<edu::master_desc> small_cast() {
  std::vector<edu::master_desc> cast(3);
  cast[0].role = edu::master_kind::cpu;
  cast[0].work = make_data_rw(1200, 64 * 1024, 0.35, 0.3, 4, 11);
  cast[0].priority = 1;
  cast[1].role = edu::master_kind::dma;
  cast[1].work = make_dma_copy(16 * 1024, 2u << 20, (2u << 20) + (1u << 19), 128, 12);
  cast[1].priority = 3;
  cast[2].role = edu::master_kind::peripheral;
  cast[2].work = make_peripheral_poll(400, 3u << 20, 4, 64, 8, 13);
  cast[2].priority = 2;
  return cast;
}

TEST(InterconnectSoc, RunTopologyMatchesTheDeprecatedFlatShim) {
  const std::vector<edu::master_desc> cast = small_cast();
  edu::multi_master_config mm;
  mm.policy = arb_policy::fixed_priority;
  mm.window_txns = 8;
  mm.starvation_limit = 4;

  edu::secure_soc legacy(engine_kind::inline_keyslot, {});
  legacy.load_image(0, bytes(64 * 1024, 0x5A));
  const arbiter_stats flat = legacy.run_multi_master(cast, mm);

  edu::secure_soc topo(engine_kind::inline_keyslot, {});
  topo.load_image(0, bytes(64 * 1024, 0x5A));
  const edu::topology_run_stats tree = topo.run_topology(
      cast, topology({mm.policy, mm.window_txns, mm.starvation_limit}));

  EXPECT_EQ(flat.rounds, tree.noc.bus.rounds);
  EXPECT_EQ(flat.txns, tree.noc.bus.txns);
  EXPECT_EQ(flat.bytes, tree.noc.bus.bytes);
  EXPECT_EQ(flat.total_cycles, tree.noc.bus.total_cycles);
  ASSERT_EQ(flat.masters.size(), tree.noc.bus.masters.size());
  for (std::size_t i = 0; i < flat.masters.size(); ++i) {
    EXPECT_EQ(flat.masters[i].grants, tree.noc.bus.masters[i].grants) << i;
    EXPECT_EQ(flat.masters[i].finish_cycle, tree.noc.bus.masters[i].finish_cycle) << i;
    EXPECT_EQ(flat.masters[i].latency_sum, tree.noc.bus.masters[i].latency_sum) << i;
    EXPECT_EQ(flat.masters[i].wait_rounds, tree.noc.bus.masters[i].wait_rounds) << i;
  }
  EXPECT_EQ(tree.sentinel_denials, 0u);
}

TEST(InterconnectSoc, RunTopologySurfacesFirewallAndDomainAccounting) {
  // A whitelisted "accelerator" whose rule covers only half of its working
  // window: the out-of-rule half must show up as accounted denials in the
  // per-master, per-rule and engine-side counters — and the open CPU port
  // must stay untouched by the firewall layer.
  constexpr addr_t accel_base = 1u << 20;
  constexpr std::size_t accel_len = 32 * 1024;

  std::vector<edu::master_desc> cast(2);
  cast[0].role = edu::master_kind::cpu;
  cast[0].work = confine_workload(make_data_rw(800, 64 * 1024, 0.5, 0.4, 8, 21), 0,
                                  32 * 1024);
  cast[1].role = edu::master_kind::cpu;
  cast[1].name = "accel";
  cast[1].work = confine_workload(make_data_rw(800, 64 * 1024, 0.9, 0.4, 8, 22),
                                  accel_base, accel_len);

  topology t({arb_policy::round_robin, 8, 0});
  t.add_firewall_rule(1, {accel_base, accel_len / 2, fw_perm::rw, 0});

  edu::secure_soc soc(engine_kind::inline_keyslot, {});
  soc.load_image(0, bytes(32 * 1024, 0xC3));
  const edu::topology_run_stats ts = soc.run_topology(cast, t);

  ASSERT_EQ(ts.firewall.size(), 2u);
  EXPECT_EQ(ts.firewall[0].checks, 0u); // open port: never consulted
  EXPECT_GT(ts.firewall[1].checks, 0u);
  EXPECT_GT(ts.firewall[1].denies, 0u); // the unwhitelisted upper half
  EXPECT_LT(ts.firewall[1].denies, ts.firewall[1].checks);
  ASSERT_EQ(ts.firewall[1].rules.size(), 1u);
  EXPECT_GT(ts.firewall[1].rules[0].hits, 0u);
  EXPECT_EQ(ts.sentinel_denials, 0u);
  EXPECT_EQ(ts.domains.size(), 2u); // keyslot engine reports per-master domains

  // Denials rode the engine's fault path, not the bus: the denied spans
  // are charged as engine firewall denials, one for one.
  const auto& eng =
      static_cast<edu::engine_edu&>(soc.engine()).engine();
  EXPECT_EQ(eng.stats().firewall_denials, ts.firewall[1].denies);
}

TEST(InterconnectSoc, DeniedReadsServeTheBusErrorFillNotPlaintext) {
  // Regression for the mem_txn any_master contract: a request the firewall
  // refuses is an *accounted* denial — reads come back as 0xFF bus-error
  // fill with nothing of the plaintext, writes are dropped before the bus,
  // and a forged any_master tag is refused whole.
  sim::dram chip(8u << 20);
  sim::external_memory ext(chip);
  rng rand(0x7AC7);
  engine::keyslot_manager slots(engine::backend_registry::builtin(), 4);
  engine::bus_encryption_engine eng(ext, slots);
  const auto ctx = eng.create_context(
      {std::string(edu::keyslot_default_backend), rand.random_bytes(16), 32});
  eng.map_region(0, 1u << 20, ctx);
  bytes plain(256);
  for (std::size_t i = 0; i < plain.size(); ++i)
    plain[i] = static_cast<u8>(0x5A ^ i);
  eng.install(0x40000, plain);

  bus_firewall fw;
  fw.program(2, {{0x10000, 0x10000, fw_perm::rw, 0}});
  eng.set_firewall(&fw);

  const auto read_as = [&](master_id who, addr_t addr, std::span<u8> out) {
    mem_txn t = mem_txn::read_of(1, addr, out);
    t.master = who;
    eng.submit({&t, 1});
    (void)eng.drain();
  };

  bytes denied(256, 0);
  read_as(2, 0x40000, denied);
  for (const u8 b : denied) ASSERT_EQ(b, 0xFF);
  EXPECT_GT(eng.stats().firewall_denials, 0u);
  EXPECT_EQ(fw.stats(2).denies, 1u);

  bytes junk(256, 0x77);
  mem_txn w = mem_txn::write_of(2, 0x40000, junk);
  w.master = 2;
  eng.submit({&w, 1});
  (void)eng.drain();
  bytes after(256);
  eng.read_plain(0x40000, after);
  EXPECT_EQ(after, plain); // the denied write never reached memory

  bytes open(256, 0);
  read_as(cpu_master, 0x40000, open);
  EXPECT_EQ(open, plain); // no table for the CPU: its port is open

  bytes forged(64, 0);
  read_as(any_master, 0x40000, forged);
  for (const u8 b : forged) ASSERT_EQ(b, 0xFF);
  EXPECT_EQ(fw.sentinel_denials(), 1u);
}

} // namespace
} // namespace buscrypt
