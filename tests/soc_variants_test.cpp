// SoC configuration variants: split (Harvard) L1, AEGIS IV-mode ablation,
// and cross-config functional equivalence.

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "edu/aegis_edu.hpp"
#include "edu/soc.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace buscrypt {
namespace {

using edu::engine_kind;
using edu::secure_soc;
using edu::soc_config;

soc_config base_cfg(bool split) {
  soc_config cfg;
  cfg.l1.size = 8 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 4u << 20;
  cfg.split_l1 = split;
  return cfg;
}

TEST(SplitL1, WiresBothCaches) {
  secure_soc unified(engine_kind::stream_otp, base_cfg(false));
  EXPECT_EQ(unified.l1i(), nullptr);

  secure_soc split(engine_kind::stream_otp, base_cfg(true));
  ASSERT_NE(split.l1i(), nullptr);
  EXPECT_EQ(split.l1().config().size, 4u * 1024);
  EXPECT_EQ(split.l1i()->config().size, 4u * 1024);
}

TEST(SplitL1, FetchesAndDataLandInTheirOwnCaches) {
  secure_soc soc(engine_kind::stream_otp, base_cfg(true));
  rng r(1);
  soc.load_image(0, r.random_bytes(64 * 1024));
  soc.load_image(1 << 20, bytes(64 * 1024, 0));

  const auto w = sim::make_data_rw(20'000, 64 * 1024, 0.4, 0.4, 4, 2);
  (void)soc.run(w);

  EXPECT_GT(soc.l1i()->stats().accesses, 0u);  // fetches
  EXPECT_GT(soc.l1().stats().accesses, 0u);    // loads/stores
  // Every instruction fetched exactly once through the I-side.
  EXPECT_EQ(soc.l1i()->stats().accesses, 20'000u);
}

TEST(SplitL1, FunctionallyEquivalentToUnified) {
  const auto w = sim::make_data_rw(15'000, 32 * 1024, 0.4, 0.5, 4, 3);
  rng r(4);
  const bytes img = r.random_bytes(32 * 1024);

  bytes results[2];
  int idx = 0;
  for (bool split : {false, true}) {
    secure_soc soc(engine_kind::xom_aes, base_cfg(split));
    soc.load_image(0, img);
    soc.load_image(1 << 20, bytes(64 * 1024, 0));
    (void)soc.run(w);
    results[idx++] = soc.read_back(1 << 20, 64 * 1024);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(SplitL1, CodeDataConflictMissesReduced) {
  // A workload whose code and data map to the same sets thrashes a
  // unified cache; the Harvard split removes the cross-interference.
  sim::workload w;
  w.name = "conflict";
  // Code at 0x0000..0x0800 and data at 0x100000 (same low bits).
  for (int iter = 0; iter < 4000; ++iter) {
    const addr_t pc = static_cast<addr_t>((iter * 4) % 2048);
    w.accesses.push_back({pc, 4, sim::access_kind::fetch});
    w.accesses.push_back(
        {(1u << 20) + pc, 4, sim::access_kind::load});
  }

  soc_config small = base_cfg(false);
  small.l1.size = 2 * 1024;
  small.l1.ways = 1; // direct-mapped: maximal conflict
  secure_soc unified(engine_kind::plaintext, small);
  rng r(5);
  unified.load_image(0, r.random_bytes(64 * 1024));
  unified.load_image(1 << 20, bytes(64 * 1024, 0));
  const auto uni_rs = unified.run(w);

  soc_config harv = small;
  harv.split_l1 = true;
  secure_soc split(engine_kind::plaintext, harv);
  split.load_image(0, r.random_bytes(64 * 1024));
  split.load_image(1 << 20, bytes(64 * 1024, 0));
  const auto spl_rs = split.run(w);

  EXPECT_LT(spl_rs.total_cycles, uni_rs.total_cycles);
}

TEST(AegisIvModes, RandomVectorAlsoFresh) {
  // The ablation behind T4's birthday discussion: random_vector nonces are
  // fresh per write too — their weakness is collision probability over
  // time, not determinism.
  sim::dram d(1 << 20);
  sim::external_memory ext(d);
  rng r(6);
  const crypto::aes cipher(r.random_bytes(16));
  edu::aegis_edu_config cfg;
  cfg.iv_mode = edu::aegis_iv_mode::random_vector;
  edu::aegis_edu a(ext, cipher, cfg);

  const bytes line(32, 0x5A);
  (void)a.write(0, line);
  bytes ct1(32);
  d.read_bytes(0, ct1);
  (void)a.write(0, line);
  bytes ct2(32);
  d.read_bytes(0, ct2);
  EXPECT_NE(ct1, ct2);

  bytes back(32);
  (void)a.read(0, back);
  EXPECT_EQ(back, line);
}

TEST(AegisIvModes, CounterAndRandomBothRoundTrip) {
  for (edu::aegis_iv_mode mode :
       {edu::aegis_iv_mode::counter, edu::aegis_iv_mode::random_vector}) {
    sim::dram d(1 << 20);
    sim::external_memory ext(d);
    rng r(7);
    const crypto::aes cipher(r.random_bytes(16));
    edu::aegis_edu_config cfg;
    cfg.iv_mode = mode;
    edu::aegis_edu a(ext, cipher, cfg);

    const bytes img = r.random_bytes(4096);
    a.install_image(0, img);
    bytes back(img.size());
    a.read_image(0, back);
    EXPECT_EQ(back, img);
  }
}

} // namespace
} // namespace buscrypt
