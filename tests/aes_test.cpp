// AES known-answer tests (FIPS-197 appendix C, NIST SP 800-38A) plus
// structural and property tests.

#include "common/bitops.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/modes.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

bytes H(std::string_view s) { return from_hex(s); }

// --- FIPS-197 Appendix C example vectors ----------------------------------

TEST(Aes, Fips197Aes128) {
  const aes c(H("000102030405060708090a0b0c0d0e0f"));
  const bytes pt = H("00112233445566778899aabbccddeeff");
  bytes ct(16);
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  bytes back(16);
  c.decrypt_block(ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Aes, Fips197Aes192) {
  const aes c(H("000102030405060708090a0b0c0d0e0f1011121314151617"));
  const bytes pt = H("00112233445566778899aabbccddeeff");
  bytes ct(16);
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const aes c(H("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const bytes pt = H("00112233445566778899aabbccddeeff");
  bytes ct(16);
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

// --- NIST SP 800-38A mode vectors (AES-128) --------------------------------

const char* k_sp800_key = "2b7e151628aed2a6abf7158809cf4f3c";
const char* k_sp800_pt =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

TEST(Aes, Sp800_38A_Ecb) {
  const aes c(H(k_sp800_key));
  const bytes pt = H(k_sp800_pt);
  bytes ct(pt.size());
  ecb_encrypt(c, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf"
            "43b1cd7f598ece23881b00e3ed030688"
            "7b0c785e27e8ad3f8223207104725dd4");
  bytes back(pt.size());
  ecb_decrypt(c, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Aes, Sp800_38A_Cbc) {
  const aes c(H(k_sp800_key));
  const bytes iv = H("000102030405060708090a0b0c0d0e0f");
  const bytes pt = H(k_sp800_pt);
  bytes ct(pt.size());
  cbc_encrypt(c, iv, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7");
  bytes back(pt.size());
  cbc_decrypt(c, iv, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Aes, Sp800_38A_Ctr) {
  const aes c(H(k_sp800_key));
  const bytes pt = H(k_sp800_pt);
  // SP 800-38A uses counter block f0f1...ff incrementing in the low bits;
  // reproduce it via nonce = top half, initial counter = bottom half.
  bytes ct(pt.size());
  ctr_crypt(c, 0xf0f1f2f3f4f5f6f7ULL, 0xf8f9fafbfcfdfeffULL, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
  bytes back(pt.size());
  ctr_crypt(c, 0xf0f1f2f3f4f5f6f7ULL, 0xf8f9fafbfcfdfeffULL, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Aes, Sp800_38A_Cfb128) {
  const aes c(H(k_sp800_key));
  const bytes iv = H("000102030405060708090a0b0c0d0e0f");
  const bytes pt = H(k_sp800_pt);
  bytes ct(pt.size());
  cfb_encrypt(c, iv, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "3b3fd92eb72dad20333449f8e83cfb4a"
            "c8a64537a0b3a93fcde3cdad9f1ce58b"
            "26751f67a3cbb140b1808cf187a4f4df"
            "c04b05357c5d1c0eeac4c66f9ff7f2e6");
  bytes back(pt.size());
  cfb_decrypt(c, iv, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Aes, Sp800_38A_Ofb) {
  const aes c(H(k_sp800_key));
  const bytes iv = H("000102030405060708090a0b0c0d0e0f");
  const bytes pt = H(k_sp800_pt);
  bytes ct(pt.size());
  ofb_crypt(c, iv, pt, ct);
  EXPECT_EQ(to_hex(ct),
            "3b3fd92eb72dad20333449f8e83cfb4a"
            "7789508d16918f03f53c52dac54ed825"
            "9740051e9c5fecf64344f7a82260edcc"
            "304c6528f659c77866a510d9c1d6ae5e");
  bytes back(pt.size());
  ofb_crypt(c, iv, ct, back);
  EXPECT_EQ(back, pt);
}

// --- structure -------------------------------------------------------------

TEST(Aes, RoundCounts) {
  rng r(1);
  EXPECT_EQ(aes(r.random_bytes(16)).rounds(), 10);
  EXPECT_EQ(aes(r.random_bytes(24)).rounds(), 12);
  EXPECT_EQ(aes(r.random_bytes(32)).rounds(), 14);
}

TEST(Aes, RejectsBadKeyLengths) {
  rng r(2);
  EXPECT_THROW(aes(r.random_bytes(15)), std::invalid_argument);
  EXPECT_THROW(aes(r.random_bytes(17)), std::invalid_argument);
  EXPECT_THROW(aes(r.random_bytes(0)), std::invalid_argument);
  EXPECT_THROW(aes(r.random_bytes(16), aes_bits::k256), std::invalid_argument);
}

TEST(Aes, RejectsBadBlockLengths) {
  rng r(3);
  const aes c(r.random_bytes(16));
  bytes small(8), out(16);
  EXPECT_THROW(c.encrypt_block(small, out), std::invalid_argument);
  EXPECT_THROW(c.decrypt_block(out, small), std::invalid_argument);
}

TEST(Aes, InPlaceOperation) {
  rng r(4);
  const aes c(r.random_bytes(16));
  bytes buf = r.random_bytes(16);
  const bytes orig = buf;
  c.encrypt_block(buf, buf);
  EXPECT_NE(buf, orig);
  c.decrypt_block(buf, buf);
  EXPECT_EQ(buf, orig);
}

// --- properties across key widths ------------------------------------------

class AesProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesProperty, EncryptDecryptRoundTrip) {
  rng r(GetParam());
  const aes c(r.random_bytes(GetParam()));
  for (int i = 0; i < 64; ++i) {
    const bytes pt = r.random_bytes(16);
    bytes ct(16), back(16);
    c.encrypt_block(pt, ct);
    c.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST_P(AesProperty, AvalancheNearHalfTheBits) {
  rng r(GetParam() + 100);
  const aes c(r.random_bytes(GetParam()));
  double total_flipped = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    bytes pt = r.random_bytes(16);
    bytes ct_a(16), ct_b(16);
    c.encrypt_block(pt, ct_a);
    pt[r.below(16)] ^= static_cast<u8>(1u << r.below(8));
    c.encrypt_block(pt, ct_b);
    total_flipped += static_cast<double>(hamming_bits(ct_a, ct_b));
  }
  const double mean = total_flipped / trials;
  EXPECT_NEAR(mean, 64.0, 6.0); // half of 128 bits
}

TEST_P(AesProperty, KeySensitivity) {
  rng r(GetParam() + 200);
  bytes key = r.random_bytes(GetParam());
  const bytes pt = r.random_bytes(16);
  bytes ct_a(16), ct_b(16);
  aes(key).encrypt_block(pt, ct_a);
  key[0] ^= 1;
  aes(key).encrypt_block(pt, ct_b);
  EXPECT_GE(hamming_bits(ct_a, ct_b), 40u);
}

INSTANTIATE_TEST_SUITE_P(AllKeyWidths, AesProperty,
                         ::testing::Values(std::size_t{16}, std::size_t{24},
                                           std::size_t{32}));

} // namespace
} // namespace buscrypt::crypto
