// Cross-cutting property tests: the stream-cipher family contract, DES
// weak keys, hardware timing-model invariants, and workload determinism.

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "compress/entropy.hpp"
#include "crypto/des.hpp"
#include "crypto/lfsr.hpp"
#include "crypto/rc4.hpp"
#include "edu/timing.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

namespace buscrypt {
namespace {

using crypto::stream_cipher;

// --- every stream cipher obeys the same contract ----------------------------

class StreamFamily : public ::testing::TestWithParam<int> {
 protected:
  static std::unique_ptr<stream_cipher> make(int which, std::span<const u8> key,
                                             std::span<const u8> iv) {
    switch (which) {
      case 0: {
        auto c = std::make_unique<crypto::rc4>(key);
        c->reseed(key, iv);
        return c;
      }
      case 1: return std::make_unique<crypto::galois_lfsr>(key, iv);
      default: return std::make_unique<crypto::trivium>(key.subspan(0, 10), iv.subspan(0, 10));
    }
  }
};

TEST_P(StreamFamily, SameSeedSameStream) {
  rng r(1);
  const bytes key = r.random_bytes(16);
  const bytes iv = r.random_bytes(16);
  auto a = make(GetParam(), key, iv);
  auto b = make(GetParam(), key, iv);
  bytes ka(256), kb(256);
  a->keystream(ka);
  b->keystream(kb);
  EXPECT_EQ(ka, kb);
}

TEST_P(StreamFamily, ChunkingInvariance) {
  // Drawing 256 bytes in one call equals drawing them in ragged pieces.
  rng r(2);
  const bytes key = r.random_bytes(16);
  const bytes iv = r.random_bytes(16);
  auto a = make(GetParam(), key, iv);
  auto b = make(GetParam(), key, iv);

  bytes whole(256);
  a->keystream(whole);

  bytes pieces(256);
  std::size_t off = 0;
  while (off < pieces.size()) {
    const std::size_t n = std::min<std::size_t>(1 + r.below(31), pieces.size() - off);
    b->keystream(std::span<u8>(pieces).subspan(off, n));
    off += n;
  }
  EXPECT_EQ(pieces, whole);
}

TEST_P(StreamFamily, ApplyIsInvolution) {
  rng r(3);
  const bytes key = r.random_bytes(16);
  const bytes iv = r.random_bytes(16);
  bytes msg = r.random_bytes(333);
  const bytes orig = msg;
  make(GetParam(), key, iv)->apply(msg);
  EXPECT_NE(msg, orig);
  make(GetParam(), key, iv)->apply(msg);
  EXPECT_EQ(msg, orig);
}

TEST_P(StreamFamily, KeySensitivity) {
  rng r(4);
  bytes key = r.random_bytes(16);
  const bytes iv = r.random_bytes(16);
  bytes ka(128), kb(128);
  make(GetParam(), key, iv)->keystream(ka);
  key[5] ^= 0x04;
  make(GetParam(), key, iv)->keystream(kb);
  EXPECT_NE(ka, kb);
}

TEST_P(StreamFamily, KeystreamEntropyHigh) {
  rng r(5);
  const bytes key = r.random_bytes(16);
  const bytes iv = r.random_bytes(16);
  bytes ks(1 << 15);
  make(GetParam(), key, iv)->keystream(ks);
  EXPECT_GT(compress::shannon_entropy(ks), 7.8);
}

std::string stream_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "RC4";
    case 1: return "LFSR64";
    default: return "Trivium";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStreams, StreamFamily, ::testing::Values(0, 1, 2),
                         stream_name);

// --- DES weak keys -----------------------------------------------------------

TEST(DesWeakKeys, EncryptionIsSelfInverse) {
  // For the four weak keys, the subkey schedule is palindromic, so
  // E_k(E_k(x)) == x. A classic structural check of the key schedule.
  const char* weak_keys[] = {
      "0101010101010101",
      "fefefefefefefefe",
      "e0e0e0e0f1f1f1f1",
      "1f1f1f1f0e0e0e0e",
  };
  rng r(6);
  for (const char* wk : weak_keys) {
    const crypto::des c(from_hex(wk));
    for (int i = 0; i < 8; ++i) {
      const bytes x = r.random_bytes(8);
      bytes once(8), twice(8);
      c.encrypt_block(x, once);
      c.encrypt_block(once, twice);
      EXPECT_EQ(twice, x) << wk;
    }
  }
}

TEST(DesWeakKeys, NormalKeysAreNotSelfInverse) {
  rng r(7);
  const crypto::des c(r.random_bytes(8));
  const bytes x = r.random_bytes(8);
  bytes once(8), twice(8);
  c.encrypt_block(x, once);
  c.encrypt_block(once, twice);
  EXPECT_NE(twice, x);
}

// --- pipeline timing model -----------------------------------------------------

TEST(PipelineModel, BlockCountArithmetic) {
  const auto m = edu::aes_pipelined();
  EXPECT_EQ(m.blocks_for(0), 0u);
  EXPECT_EQ(m.blocks_for(1), 1u);
  EXPECT_EQ(m.blocks_for(16), 1u);
  EXPECT_EQ(m.blocks_for(17), 2u);
  EXPECT_EQ(m.blocks_for(64), 4u);
}

TEST(PipelineModel, ParallelTimeMonotonicAndPipelined) {
  const auto m = edu::aes_pipelined();
  EXPECT_EQ(m.time_parallel(0), 0u);
  EXPECT_EQ(m.time_parallel(1), m.latency);
  for (std::size_t n = 2; n < 20; ++n) {
    EXPECT_EQ(m.time_parallel(n), m.latency + (n - 1) * m.interval);
    EXPECT_GT(m.time_parallel(n), m.time_parallel(n - 1));
  }
}

TEST(PipelineModel, ChainedNeverFasterThanParallel) {
  for (const auto& m : {edu::aes_pipelined(), edu::aes_iterative(),
                        edu::tdes_pipelined(), edu::des_iterative()}) {
    for (std::size_t n = 1; n < 16; ++n)
      EXPECT_GE(m.time_chained(n), m.time_parallel(n)) << m.name << " n=" << n;
  }
}

TEST(PipelineModel, IterativeCoreHasNoPipelining) {
  const auto m = edu::aes_iterative();
  EXPECT_EQ(m.interval, m.latency);
  EXPECT_EQ(m.time_parallel(4), 4 * m.latency);
}

TEST(PipelineModel, SurveyFiguresPreserved) {
  // The numbers quoted verbatim by the paper must stay pinned.
  EXPECT_EQ(edu::aes_pipelined().latency, 14u);   // XOM: "14 latency cycles"
  EXPECT_EQ(edu::aes_pipelined().interval, 1u);   // "one ... per clock cycle"
  EXPECT_EQ(edu::aes_pipelined().gates, 300'000u); // AEGIS: "300,000 gates"
}

// --- workload generators are deterministic functions of their seed ------------

TEST(WorkloadDeterminism, SameSeedSameTrace) {
  const auto a = sim::make_jumpy_code(5'000, 1 << 16, 0.2, 99);
  const auto b = sim::make_jumpy_code(5'000, 1 << 16, 0.2, 99);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (std::size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr);
    EXPECT_EQ(a.accesses[i].kind, b.accesses[i].kind);
  }
  const auto c = sim::make_jumpy_code(5'000, 1 << 16, 0.2, 100);
  bool differs = false;
  for (std::size_t i = 0; i < a.accesses.size() && i < c.accesses.size(); ++i)
    if (a.accesses[i].addr != c.accesses[i].addr) differs = true;
  EXPECT_TRUE(differs);
}

} // namespace
} // namespace buscrypt
