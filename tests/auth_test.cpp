// Authenticated memory for the keyslot engine: the mac / area / hash-tree
// schemes of engine::memory_authenticator — tamper detection (replay,
// relocation, spoof) across backends, zero false faults on clean runs,
// scalar-vs-batched equivalence with tag traffic riding the batches, AREA's
// zero-extra-beats property, per-master integrity-fault attribution, and
// auth_mode=none staying cycle-identical to the unauthenticated engine.

#include "attack/tamper.hpp"
#include "common/rng.hpp"
#include "edu/engine_edu.hpp"
#include "edu/soc.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/memory_authenticator.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace buscrypt::engine {
namespace {

constexpr addr_t k_window = 64 * 1024;
constexpr addr_t k_tag_base = 6u << 20;

auth_config small_auth(auth_mode mode, addr_t window = k_window) {
  auth_config a;
  a.mode = mode;
  a.key = bytes(16, 0x5A);
  a.base = 0;
  a.limit = window;
  a.tag_base = k_tag_base;
  return a;
}

/// A bare engine over raw DRAM: one context over [0, 1 MiB), optionally
/// authenticated over [0, k_window).
struct rig {
  sim::dram chip{8u << 20};
  sim::external_memory ext{chip};
  keyslot_manager slots{backend_registry::builtin(), 4};
  bus_encryption_engine eng{ext, slots};
  bus_encryption_engine::context_id ctx;

  explicit rig(const std::string& backend, auth_mode mode = auth_mode::none,
               std::size_t du = 32) {
    rng r(0xA17);
    // Smallest key length the backend accepts (trivium wants 10, DES 8, ...).
    const cipher_backend& b = backend_registry::builtin().at(backend);
    std::size_t key_len = 16;
    for (std::size_t len = 1; len <= 32; ++len)
      if (b.key_len_ok(len)) {
        key_len = len;
        break;
      }
    ctx = eng.create_context({backend, r.random_bytes(key_len), du});
    eng.map_region(0, 1u << 20, ctx);
    if (mode != auth_mode::none) (void)eng.attach_auth(ctx, small_auth(mode));
  }

  memory_authenticator& auth() { return *eng.auth_of(ctx); }
};

bytes pattern(std::size_t n, u8 seed) {
  bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<u8>(seed + i * 13);
  return out;
}

// --- attach validation ------------------------------------------------------

TEST(AuthAttach, AreaRequiresBlockDiffusion) {
  // CTR and stream pads XOR bit-for-bit: a flipped ciphertext bit flips one
  // plaintext bit and no nonce slice — AREA must refuse them.
  for (const char* backend : {"aes-ctr", "3des-ctr", "rc4-stream", "trivium-stream"}) {
    rig r(backend);
    EXPECT_THROW((void)r.eng.attach_auth(r.ctx, small_auth(auth_mode::area)),
                 std::invalid_argument)
        << backend;
  }
  // Diffusing block modes are in (3des's 8-byte granule needs a smaller
  // redundancy share — the nonce must leave data capacity per block).
  for (const char* backend : {"aes-ecb", "aes-cbc", "3des-cbc"}) {
    rig r(backend);
    auth_config a = small_auth(auth_mode::area);
    a.tag_bytes = 4;
    EXPECT_NO_THROW((void)r.eng.attach_auth(r.ctx, a)) << backend;
  }
  {
    rig r("3des-cbc");
    EXPECT_THROW((void)r.eng.attach_auth(r.ctx, small_auth(auth_mode::area)),
                 std::invalid_argument)
        << "8-byte redundancy must not consume the whole 8-byte DES block";
  }
}

TEST(AuthAttach, ValidatesGeometryAndLifecycle) {
  rig r("aes-ctr");
  auth_config bad = small_auth(auth_mode::mac);
  bad.mode = auth_mode::none;
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, bad), std::invalid_argument);

  bad = small_auth(auth_mode::mac);
  bad.key.clear();
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, bad), std::invalid_argument);

  bad = small_auth(auth_mode::mac);
  bad.base = 7; // not unit aligned
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, bad), std::invalid_argument);

  bad = small_auth(auth_mode::mac);
  bad.tag_base = k_window / 2; // tag region inside the window
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, bad), std::invalid_argument);

  bad = small_auth(auth_mode::hash_tree);
  bad.tree_arity = 1;
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, bad), std::invalid_argument);

  EXPECT_NO_THROW((void)r.eng.attach_auth(r.ctx, small_auth(auth_mode::mac)));
  EXPECT_THROW((void)r.eng.attach_auth(r.ctx, small_auth(auth_mode::mac)),
               std::invalid_argument)
      << "second attach must be rejected";
  EXPECT_THROW((void)r.eng.attach_auth(99, small_auth(auth_mode::mac)),
               std::out_of_range);
}

// --- tamper-detection matrix ------------------------------------------------
// replay, relocation (splice) and spoof against every scheme x the CTR and
// ECB keyslot backends (AREA only composes with the diffusing ECB mode —
// its CTR pairing is the rejection asserted above).

class TamperMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, auth_mode>> {};

TEST_P(TamperMatrix, DetectsReplayRelocationSpoof) {
  const auto& [backend, mode] = GetParam();
  rig r(backend, mode);
  const auto rep = attack::run_engine_tamper_suite(r.eng, r.chip, 0x1000, 0x2000);
  EXPECT_FALSE(rep.clean_faulted) << "false fault on a clean round trip";
  EXPECT_TRUE(rep.spoof_detected);
  EXPECT_TRUE(rep.splice_detected);
  EXPECT_TRUE(rep.replay_detected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TamperMatrix,
    ::testing::Values(std::tuple{"aes-ctr", auth_mode::mac},
                      std::tuple{"aes-ecb", auth_mode::mac},
                      std::tuple{"aes-ctr", auth_mode::hash_tree},
                      std::tuple{"aes-ecb", auth_mode::hash_tree},
                      std::tuple{"aes-ecb", auth_mode::area}),
    [](const ::testing::TestParamInfo<TamperMatrix::ParamType>& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::string(auth_mode_name(std::get<1>(info.param)));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(TamperMatrix, UnauthenticatedEngineCatchesNothing) {
  rig r("aes-ctr");
  const auto rep = attack::run_engine_tamper_suite(r.eng, r.chip, 0x1000, 0x2000);
  EXPECT_FALSE(rep.clean_faulted);
  EXPECT_FALSE(rep.spoof_detected);
  EXPECT_FALSE(rep.splice_detected);
  EXPECT_FALSE(rep.replay_detected);
}

// --- clean runs never fault -------------------------------------------------

class AuthCleanRun
    : public ::testing::TestWithParam<std::tuple<std::string, auth_mode>> {};

TEST_P(AuthCleanRun, FullSocWorkloadRoundTripsWithZeroFaults) {
  const auto& [backend, mode] = GetParam();
  edu::soc_config cfg;
  cfg.l1.size = 4 * 1024;
  cfg.keyslot_backend = backend;
  cfg.keyslot_auth = mode;
  cfg.keyslot_auth_limit = k_window;
  edu::secure_soc soc(edu::engine_kind::inline_keyslot, cfg);
  rng r(0x5EED);
  const bytes image = r.random_bytes(48 * 1024);
  soc.load_image(0, image);

  const sim::workload w = sim::make_data_rw(6'000, 32 * 1024, 0.5, 0.4, 8, 0x1A);
  (void)soc.run(w);
  auto& adapter = static_cast<edu::engine_edu&>(soc.engine());
  EXPECT_EQ(adapter.engine().stats().integrity_faults, 0u);
  if (mode != auth_mode::none) {
    EXPECT_EQ(adapter.auth()->stats().faults, 0u);
    EXPECT_GT(adapter.auth()->stats().verifies, 0u);
  }
  EXPECT_EQ(soc.read_back(0, image.size()), image)
      << "authenticated writes must remain readable";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AuthCleanRun,
    ::testing::Values(std::tuple{"aes-ctr", auth_mode::none},
                      std::tuple{"aes-ctr", auth_mode::mac},
                      std::tuple{"aes-ctr", auth_mode::hash_tree},
                      std::tuple{"aes-ecb", auth_mode::mac},
                      std::tuple{"aes-ecb", auth_mode::area},
                      std::tuple{"aes-ecb", auth_mode::hash_tree}),
    [](const ::testing::TestParamInfo<AuthCleanRun::ParamType>& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::string(auth_mode_name(std::get<1>(info.param)));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// --- scalar vs batched equivalence under authentication ----------------------
// The batch path stages tag writes and tag fetches onto the same lower
// submissions; whatever the overlap, the bytes in DRAM — data AND tags —
// must match a scalar issue of the same stream, and nothing may fault.

class AuthBatchEquivalenceSweep : public ::testing::TestWithParam<
                                      std::tuple<std::string, auth_mode>> {};

TEST_P(AuthBatchEquivalenceSweep, BatchedMatchesScalarBytesAndNeverFaults) {
  const auto& [backend, mode] = GetParam();
  sim::workload w = sim::make_streaming(3'000, k_window, 3, 0xB47C);
  sim::workload j = sim::make_jumpy_code(3'000, k_window, 0.2, 0xB47D);
  w.accesses.insert(w.accesses.end(), j.accesses.begin(), j.accesses.end());

  auto run = [&](std::size_t batch) {
    edu::soc_config cfg;
    cfg.mem_timing.banks = 4;
    cfg.keyslot_backend = backend;
    cfg.keyslot_auth = mode;
    cfg.keyslot_auth_limit = k_window;
    auto soc = std::make_unique<edu::secure_soc>(edu::engine_kind::inline_keyslot, cfg);
    rng r(0x1337);
    soc->load_image(0, r.random_bytes(k_window));
    const auto st = soc->run_throughput(w, batch);
    auto& adapter = static_cast<edu::engine_edu&>(soc->engine());
    EXPECT_EQ(adapter.engine().stats().integrity_faults, 0u);
    return std::pair{st, bytes(soc->memory().raw().begin(), soc->memory().raw().end())};
  };

  const auto [scalar, scalar_mem] = run(1);
  const auto [batched, batched_mem] = run(16);
  EXPECT_EQ(scalar_mem, batched_mem)
      << "batched issue must leave identical data AND tag bytes in DRAM";
  EXPECT_LE(batched.total_cycles, scalar.total_cycles)
      << "riding tags on the batch must never cost more than scalar issue";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AuthBatchEquivalenceSweep,
    ::testing::Values(std::tuple{"aes-ctr", auth_mode::mac},
                      std::tuple{"aes-ecb", auth_mode::mac},
                      std::tuple{"aes-ecb", auth_mode::area},
                      std::tuple{"aes-ctr", auth_mode::hash_tree}),
    [](const ::testing::TestParamInfo<AuthBatchEquivalenceSweep::ParamType>& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::string(auth_mode_name(std::get<1>(info.param)));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// --- auth_mode=none stays cycle-identical to the PR 3 engine ------------------

TEST(AuthNoneSweep, DefaultConfigIsCycleIdenticalAcrossEngines) {
  // The auth axis must be inert when unset: every engine's default
  // construction (keyslot_auth = none) costs exactly what an explicitly
  // none-configured SoC costs, workload for workload.
  const sim::workload w = sim::make_jumpy_code(2'000, 64 * 1024, 0.1, 0x99);
  for (const edu::engine_kind kind : edu::all_engines()) {
    edu::soc_config base;
    edu::soc_config explicit_none;
    explicit_none.keyslot_auth = auth_mode::none;
    explicit_none.keyslot_backend.clear();
    // Compressible content: the compress_otp engine must fit its groups.
    bytes image(64 * 1024);
    for (std::size_t i = 0; i < image.size(); ++i)
      image[i] = static_cast<u8>((i / 64) & 0x0F);

    edu::secure_soc a(kind, base);
    a.load_image(0, image);
    edu::secure_soc b(kind, explicit_none);
    b.load_image(0, image);
    const auto sa = a.run_throughput(w, 8);
    const auto sb = b.run_throughput(w, 8);
    EXPECT_EQ(sa.total_cycles, sb.total_cycles) << edu::engine_name(kind);
    EXPECT_EQ(sa.bytes, sb.bytes) << edu::engine_name(kind);
  }
}

TEST(AuthNoneSweep, AuthOnDisjointContextLeavesPlainTrafficUntouched) {
  // Attaching auth to a *different* context must not change a single cycle
  // of traffic through an unauthenticated one.
  rng r(0xD15);
  const bytes key2 = r.random_bytes(16);

  auto drive = [&](bool with_auth) {
    rig rg("aes-ctr");
    const auto ctx2 = rg.eng.create_context({"aes-ecb", key2, 32});
    rg.eng.map_region(2u << 20, 64 * 1024, ctx2);
    if (with_auth) {
      auth_config a = small_auth(auth_mode::mac);
      a.base = 2u << 20;
      a.limit = (2u << 20) + 64 * 1024;
      (void)rg.eng.attach_auth(ctx2, a);
    }
    const bytes img = pattern(32, 0x21);
    cycles t = 0;
    for (addr_t at = 0; at < 16 * 1024; at += 32)
      t += rg.eng.write(at, img);
    bytes buf(32);
    for (addr_t at = 0; at < 16 * 1024; at += 32)
      t += rg.eng.read(at, buf);
    return t;
  };
  EXPECT_EQ(drive(false), drive(true));
}

// --- per-master integrity-fault attribution ----------------------------------

TEST(AuthFaults, BatchedTamperIsChargedToTheIssuingMaster) {
  rig r("aes-ctr", auth_mode::mac);
  const bytes img = pattern(32, 0x42);
  (void)r.eng.write(0x1000, img);

  r.chip.raw()[0x1000 + 5] ^= 0x80; // spoof behind the engine's back
  r.auth().drop_caches();

  bytes buf(32);
  sim::mem_txn txn = sim::mem_txn::read_of(1, 0x1000, buf);
  txn.master = 3;
  r.eng.submit(std::span<sim::mem_txn>(&txn, 1));
  (void)r.eng.drain();

  EXPECT_EQ(r.eng.stats().integrity_faults, 1u);
  EXPECT_EQ(r.eng.domain(3).integrity_faults, 1u);
  EXPECT_EQ(r.eng.domain(sim::cpu_master).integrity_faults, 0u);
  EXPECT_EQ(buf, bytes(32, bus_encryption_engine::fault_fill))
      << "a tampered unit must surface the bus-error fill, never plaintext";
}

TEST(AuthFaults, ScalarTamperFillsAndCounts) {
  for (const auth_mode mode : {auth_mode::mac, auth_mode::hash_tree}) {
    rig r("aes-ctr", mode);
    const bytes img = pattern(32, 0x42);
    (void)r.eng.write(0x2000, img);
    r.chip.raw()[0x2000] ^= 1;
    r.auth().drop_caches();
    bytes buf(32);
    (void)r.eng.read(0x2000, buf);
    EXPECT_EQ(r.eng.stats().integrity_faults, 1u) << auth_mode_name(mode);
    EXPECT_EQ(buf, bytes(32, bus_encryption_engine::fault_fill)) << auth_mode_name(mode);
    // Repair: a fresh write re-seals the unit, the engine recovers.
    (void)r.eng.write(0x2000, img);
    (void)r.eng.read(0x2000, buf);
    EXPECT_EQ(buf, img) << auth_mode_name(mode);
  }
}

TEST(AuthFaults, MixedBatchTagLineFetchDoesNotInstallStaleTags) {
  // One flush: a read whose tag-line fetch rides the batch, then a write
  // whose new tag packs into the SAME 64-byte tag line. The fetch is
  // ordered before the tag store, so the line it returns is stale for the
  // written unit — installing it verbatim would make the next read of
  // that unit false-fault against the bumped version.
  rig r("aes-ctr", auth_mode::mac);
  const bytes img_a = pattern(32, 0x01);
  const bytes img_b = pattern(32, 0x02);
  (void)r.eng.write(0x000, img_a); // tags of 0x000 and 0x020 share a tag line
  (void)r.eng.write(0x020, img_b);
  r.auth().drop_caches();

  bytes buf_a(32), new_b = pattern(32, 0x03), buf_b(32);
  sim::mem_txn txns[3] = {sim::mem_txn::read_of(1, 0x000, buf_a),
                          sim::mem_txn::write_of(2, 0x020, new_b),
                          sim::mem_txn::read_of(3, 0x020, buf_b)};
  r.eng.submit(txns);
  (void)r.eng.drain();
  EXPECT_EQ(buf_a, img_a);
  EXPECT_EQ(buf_b, new_b) << "in-flush read-after-write must forward the staged tag";

  bytes again(32);
  (void)r.eng.read(0x020, again); // hits whatever the flush left in the tag cache
  EXPECT_EQ(r.eng.stats().integrity_faults, 0u)
      << "a stale fetched tag line must not shadow the staged tag";
  EXPECT_EQ(again, new_b);
}

TEST(AuthFaults, AreaBatchReadBeforeWriteOfSameUnitUsesStagedState) {
  // One batch: read unit X, then write unit X. The read's data arrives
  // from before the write (functional order), so its unseal must use the
  // version and sideband snapshotted at staging — the write's bumped
  // version / new sideband belong to the new ciphertext only.
  rig r("aes-ecb", auth_mode::area);
  const bytes old_img = pattern(32, 0x44);
  (void)r.eng.write(0x1000, old_img);

  bytes buf(32), new_img = pattern(32, 0x55);
  sim::mem_txn txns[2] = {sim::mem_txn::read_of(1, 0x1000, buf),
                          sim::mem_txn::write_of(2, 0x1000, new_img)};
  r.eng.submit(txns);
  (void)r.eng.drain();

  EXPECT_EQ(r.eng.stats().integrity_faults, 0u)
      << "an untampered read staged before a write of the same unit must not fault";
  EXPECT_EQ(buf, old_img) << "the read precedes the write in functional order";
  bytes after(32);
  (void)r.eng.read(0x1000, after);
  EXPECT_EQ(after, new_img);
  EXPECT_EQ(r.eng.stats().integrity_faults, 0u);
}

TEST(AuthHashTree, ReplayedSiblingIsNeverLaunderedIntoTheRoot) {
  // Roll line B and its leaf node back to a stale-but-authentic pair, then
  // have the victim write B's tree sibling A. The update walk sees a path
  // that cannot meet the on-chip root and must REFUSE the rebuild — if it
  // proceeded, the stale sibling digest would be hashed into the new root
  // and the replayed line B would verify clean ever after.
  rig r("aes-ctr", auth_mode::hash_tree);
  const bytes img_a = pattern(32, 0x0A);
  (void)r.eng.write(0x1000, img_a);
  (void)r.eng.write(0x1020, pattern(32, 0x0B)); // stale state to roll back to

  const u64 leaf_b = 0x1020 / 32;
  bytes stale_ct(32), stale_leaf(r.auth().config().tag_bytes);
  r.chip.read_bytes(0x1020, stale_ct);
  r.chip.read_bytes(r.auth().node_addr(0, leaf_b), stale_leaf);

  (void)r.eng.write(0x1020, pattern(32, 0x0C)); // current value; root moves on

  r.chip.write_bytes(0x1020, stale_ct); // the attacker's rollback of B
  r.chip.write_bytes(r.auth().node_addr(0, leaf_b), stale_leaf);
  r.auth().drop_caches();

  const u64 before = r.eng.stats().integrity_faults;
  (void)r.eng.write(0x1000, pattern(32, 0x0D)); // victim writes the sibling
  EXPECT_GT(r.eng.stats().integrity_faults, before)
      << "the refused update must be visible as a write-path fault";

  bytes buf(32);
  (void)r.eng.read(0x1020, buf);
  EXPECT_EQ(buf, bytes(32, bus_encryption_engine::fault_fill))
      << "the replayed line must still read as tampered after the sibling write";
}

// --- tag cache / tree node cache ----------------------------------------------

TEST(AuthTagCache, HotLinesVerifyWithoutExtraBusTraffic) {
  rig r("aes-ctr", auth_mode::mac);
  const bytes img = pattern(32, 0x10);
  (void)r.eng.write(0x3000, img);
  bytes buf(32);
  (void)r.eng.read(0x3000, buf); // warm (store_tag kept the line cached? no: miss)
  const auto& st = r.auth().stats();
  const u64 misses_after_first = st.tag_misses;
  const u64 bus_reads_after_first = st.tag_bus_reads;
  for (int i = 0; i < 8; ++i) (void)r.eng.read(0x3000, buf);
  EXPECT_EQ(st.tag_misses, misses_after_first) << "hot line must hit the tag cache";
  EXPECT_EQ(st.tag_bus_reads, bus_reads_after_first);
  EXPECT_GE(st.tag_hits, 8u);
  EXPECT_EQ(buf, img);
}

TEST(AuthTagCache, TreeWalkTerminatesEarlyAtTrustedNodes) {
  rig r("aes-ctr", auth_mode::hash_tree);
  const bytes img = pattern(32, 0x31);
  (void)r.eng.write(0x4000, img);
  bytes buf(32);
  (void)r.eng.read(0x4000, buf);
  const u64 walked_first = r.auth().stats().nodes_walked;
  (void)r.eng.read(0x4000, buf);
  // Second walk stops at the cached leaf: exactly one level visited.
  EXPECT_EQ(r.auth().stats().nodes_walked, walked_first + 1);
  EXPECT_EQ(buf, img);
}

TEST(AuthTagCache, SurvivesPowerCycleViaOnChipState) {
  for (const auth_mode mode : {auth_mode::mac, auth_mode::area, auth_mode::hash_tree}) {
    rig r("aes-ecb", mode);
    const bytes img = pattern(32, 0x66);
    (void)r.eng.write(0x5000, img);
    r.auth().drop_caches(); // power cycle: caches are volatile, root/versions NVM
    bytes buf(32);
    (void)r.eng.read(0x5000, buf);
    EXPECT_EQ(r.eng.stats().integrity_faults, 0u) << auth_mode_name(mode);
    EXPECT_EQ(buf, img) << auth_mode_name(mode);
  }
}

// --- AREA specifics -----------------------------------------------------------

TEST(AuthArea, ZeroExtraBusBeatsVersusUnauthenticated) {
  auto beats_for = [&](auth_mode mode) {
    rig r("aes-ecb", mode);
    const bytes img = pattern(32, 0x55);
    const u64 start = r.ext.beats();
    bytes buf(32);
    for (addr_t at = 0; at < 8 * 1024; at += 32) (void)r.eng.write(at, img);
    for (addr_t at = 0; at < 8 * 1024; at += 32) (void)r.eng.read(at, buf);
    return r.ext.beats() - start;
  };
  const u64 plain = beats_for(auth_mode::none);
  EXPECT_EQ(beats_for(auth_mode::area), plain)
      << "AREA's redundancy rides the widened burst: zero extra beats";
  EXPECT_GT(beats_for(auth_mode::mac), plain) << "mac pays tag beats";
}

TEST(AuthArea, RedundancyExpandsStoredBytesNotTraffic) {
  rig r("aes-ecb", auth_mode::area);
  // 8-byte redundancy in 16-byte AES blocks: 32-byte units store 4 blocks.
  EXPECT_EQ(r.auth().area_stored_bytes(16), 64u);
  EXPECT_EQ(r.auth().tag_memory_bytes(), 0u) << "no tag region for AREA";
  const bytes img = pattern(32, 0x3C);
  (void)r.eng.write(0x1000, img);
  ASSERT_NE(r.auth().area_sideband(0x1000), nullptr);
  EXPECT_EQ(r.auth().area_sideband(0x1000)->size(), 32u);
}

// --- partial-unit writes (RMW) under auth -------------------------------------

TEST(AuthRmw, SubUnitWritesReVerifyAndReSeal) {
  for (const auth_mode mode : {auth_mode::mac, auth_mode::area, auth_mode::hash_tree}) {
    rig r("aes-ecb", mode);
    bytes base_img = pattern(64, 0x70);
    (void)r.eng.write(0x1000, base_img);
    const bytes patch = pattern(8, 0xEE);
    (void)r.eng.write(0x1000 + 28, patch); // straddles two units
    bytes expect = base_img;
    std::copy(patch.begin(), patch.end(), expect.begin() + 28);
    bytes buf(64);
    (void)r.eng.read(0x1000, buf);
    EXPECT_EQ(buf, expect) << auth_mode_name(mode);
    EXPECT_EQ(r.eng.stats().integrity_faults, 0u) << auth_mode_name(mode);
    EXPECT_GE(r.eng.stats().rmw_ops, 2u) << auth_mode_name(mode);
  }
}

// --- offline install path ------------------------------------------------------

TEST(AuthInstall, OfflineImageInstallKeepsSchemesConsistent) {
  for (const auth_mode mode : {auth_mode::mac, auth_mode::area, auth_mode::hash_tree}) {
    rig r("aes-ecb", mode);
    rng rr(9);
    const bytes image = rr.random_bytes(16 * 1024);
    r.eng.install(0, image);
    bytes back(image.size());
    r.eng.read_plain(0, back);
    EXPECT_EQ(back, image) << auth_mode_name(mode);
    // Timed reads of the installed image must be fault-free too.
    bytes buf(32);
    for (addr_t at = 0; at < 4 * 1024; at += 32) (void)r.eng.read(at, buf);
    EXPECT_EQ(r.eng.stats().integrity_faults, 0u) << auth_mode_name(mode);
  }
}

// --- hash-tree internals --------------------------------------------------------

TEST(AuthHashTree, StoredNodeTamperFaultsAgainstTheRoot) {
  rig r("aes-ctr", auth_mode::hash_tree);
  const bytes img = pattern(32, 0x88);
  (void)r.eng.write(0x1000, img);
  ASSERT_GT(r.auth().tree_levels(), 1u);
  // A Merkle walk consumes stored *siblings*, never its own stored path:
  // corrupt the leaf's sibling node and the recomputed path can no longer
  // meet the on-chip root — the untampered data line becomes unverifiable.
  const u64 leaf = 0x1000 / 32;
  r.chip.raw()[r.auth().node_addr(0, leaf ^ 1)] ^= 0x01;
  r.auth().drop_caches();
  bytes buf(32);
  (void)r.eng.read(0x1000, buf);
  EXPECT_EQ(r.eng.stats().integrity_faults, 1u);
  EXPECT_EQ(buf, bytes(32, bus_encryption_engine::fault_fill));
}

TEST(AuthHashTree, WiderArityShortensTheWalk) {
  auto depth = [&](unsigned arity) {
    rig r("aes-ctr");
    auth_config a = small_auth(auth_mode::hash_tree);
    a.tree_arity = arity;
    (void)r.eng.attach_auth(r.ctx, a);
    return r.auth().tree_levels();
  };
  EXPECT_GT(depth(2), depth(4));
  EXPECT_GT(depth(4), depth(8));
}

TEST(AuthHashTree, OnChipStateIsOneRootPlusCaches) {
  rig r("aes-ctr", auth_mode::hash_tree);
  EXPECT_EQ(r.auth().onchip_bytes(), r.auth().config().tag_bytes)
      << "cold tree: only the root lives on-chip";
  EXPECT_GT(r.auth().tag_memory_bytes(), (k_window / 32) * 8 - 1)
      << "stored nodes cover at least the leaves";
}

TEST(AuthSealGuard, SealDuringAnOpenBatchFlushWindowThrows) {
  // Regression: seal_from_memory() mid-flush would recompute tags from a
  // window whose staged tag writes are still in flight — the reseal must
  // be refused until batch_flush_done() retires the window.
  rig r("aes-ctr", auth_mode::mac);
  (void)r.eng.write(0, bytes(32, 0x11));

  (void)r.auth().batch_prepare_verify(0);
  EXPECT_TRUE(r.auth().batch_open());
  EXPECT_THROW(r.auth().seal_from_memory(), std::logic_error);

  r.auth().batch_flush_done();
  EXPECT_FALSE(r.auth().batch_open());
  EXPECT_NO_THROW(r.auth().seal_from_memory());

  // The write side opens the window too.
  (void)r.auth().batch_stage_update(0, bytes(32, 0x22), true);
  EXPECT_THROW(r.auth().seal_from_memory(), std::logic_error);
  r.auth().batch_flush_done();
  EXPECT_NO_THROW(r.auth().seal_from_memory());
}

TEST(AuthSealGuard, PowerCycleReleasesAWindowLeftOpenByACut) {
  // Regression: a power cut unwinding submit() mid-flush skips
  // batch_flush_done(), so the window flag stuck across the reboot and a
  // legitimate post-recovery reseal fail-stopped a healthy device.
  // drop_caches() models the power cycle and must clear the volatile
  // forwarding state with the rest of the caches.
  rig r("aes-ctr", auth_mode::mac);
  (void)r.eng.write(0, bytes(32, 0x11));
  (void)r.auth().batch_prepare_verify(0);
  EXPECT_TRUE(r.auth().batch_open());
  r.auth().drop_caches();
  EXPECT_FALSE(r.auth().batch_open());
  EXPECT_NO_THROW(r.auth().seal_from_memory());
}

} // namespace
} // namespace buscrypt::engine
