// Workload generator properties and the trace-driven CPU model.

#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/cpu.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace buscrypt::sim {
namespace {

TEST(Workload, SequentialCodeIsSequential) {
  const workload w = make_sequential_code(1000, 64 * 1024, 0, 1);
  ASSERT_EQ(w.accesses.size(), 1000u);
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_EQ(w.accesses[i].addr, w.accesses[i - 1].addr + 4);
    EXPECT_EQ(w.accesses[i].kind, access_kind::fetch);
  }
}

TEST(Workload, JumpRateRespected) {
  const workload w = make_jumpy_code(50'000, 1 << 20, 0.2, 2);
  std::size_t jumps = 0;
  for (std::size_t i = 1; i < w.accesses.size(); ++i)
    if (w.accesses[i].addr != w.accesses[i - 1].addr + 4 &&
        w.accesses[i].addr != 0)
      ++jumps;
  EXPECT_NEAR(static_cast<double>(jumps) / 50'000.0, 0.2, 0.02);
}

TEST(Workload, JumpTargetsAligned) {
  const workload w = make_jumpy_code(5'000, 1 << 16, 0.5, 3);
  for (const auto& a : w.accesses) {
    EXPECT_EQ(a.addr % 4, 0u);
    EXPECT_LT(a.addr + 4, (1u << 16) + 4);
  }
}

TEST(Workload, DataRwMixesKinds) {
  const workload w = make_data_rw(20'000, 1 << 16, 0.4, 0.5, 4, 4);
  std::size_t fetches = 0, loads = 0, stores = 0;
  for (const auto& a : w.accesses) {
    switch (a.kind) {
      case access_kind::fetch: ++fetches; break;
      case access_kind::load: ++loads; break;
      case access_kind::store: ++stores; break;
    }
  }
  EXPECT_EQ(fetches, 20'000u);
  EXPECT_NEAR(static_cast<double>(loads + stores) / 20'000.0, 0.4, 0.03);
  EXPECT_NEAR(static_cast<double>(stores) / static_cast<double>(loads + stores), 0.5, 0.05);
}

TEST(Workload, StoreSizeHonored) {
  const workload w = make_data_rw(5'000, 1 << 16, 0.5, 1.0, 2, 5);
  for (const auto& a : w.accesses)
    if (a.kind == access_kind::store) {
      EXPECT_EQ(a.size, 2);
      EXPECT_EQ(a.addr % 2, 0u);
    }
}

TEST(Workload, GeneratorsValidateArguments) {
  EXPECT_THROW((void)make_sequential_code(10, 8, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_jumpy_code(10, 1024, 1.5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_data_rw(10, 1024, 0.5, 0.5, 3, 1), std::invalid_argument);
}

TEST(Workload, StandardSuiteShape) {
  const auto suite = standard_suite(42);
  ASSERT_EQ(suite.size(), 5u);
  for (const auto& w : suite) {
    EXPECT_FALSE(w.accesses.empty());
    EXPECT_GT(w.footprint, 0u);
  }
  // Deterministic across calls.
  const auto again = standard_suite(42);
  EXPECT_EQ(again[0].accesses.size(), suite[0].accesses.size());
  EXPECT_EQ(again[2].accesses[100].addr, suite[2].accesses[100].addr);
}

TEST(Cpu, PerfectCacheGivesUnitCpi) {
  dram d(1 << 22);
  external_memory ext(d);
  cache_config cfg;
  cfg.size = 64 * 1024;
  cfg.line_size = 32;
  cfg.ways = 4;
  cache l1(cfg, ext);
  cpu core(l1, cfg.hit_latency);

  // Tiny loop fully resident after first pass.
  const workload w = make_sequential_code(50'000, 1024, 0, 6);
  const run_stats rs = core.run(w);
  EXPECT_EQ(rs.instructions, 50'000u);
  EXPECT_LT(rs.cpi(), 1.05);
}

TEST(Cpu, MissesInflateCpi) {
  dram d(1 << 22);
  external_memory ext(d);
  cache_config cfg;
  cfg.size = 1024;
  cfg.line_size = 32;
  cfg.ways = 2;
  cache l1(cfg, ext);
  cpu core(l1, cfg.hit_latency);

  const workload w = make_jumpy_code(20'000, 1 << 20, 0.3, 7);
  const run_stats rs = core.run(w);
  EXPECT_GT(rs.cpi(), 2.0);
  EXPECT_GT(rs.stall_cycles, 0u);
}

TEST(Cpu, AccessTaxChargesEveryAccess) {
  dram d(1 << 22);
  external_memory ext(d);
  cache_config cfg;
  cfg.size = 64 * 1024;
  cfg.line_size = 32;
  cfg.ways = 4;
  cache l1(cfg, ext);

  const workload w = make_sequential_code(10'000, 1024, 0, 8);
  cpu untaxed(l1, cfg.hit_latency);
  (void)untaxed.run(w); // warm the cache so both runs see identical hits
  const run_stats base = untaxed.run(w);

  cpu taxed(l1, cfg.hit_latency);
  taxed.set_access_tax(2);
  const run_stats heavy = taxed.run(w);
  EXPECT_EQ(heavy.total_cycles, base.total_cycles + 2 * 10'000u);
}

TEST(Cpu, SlowdownVsBaseline) {
  run_stats a, b;
  a.total_cycles = 100;
  b.total_cycles = 125;
  EXPECT_DOUBLE_EQ(b.slowdown_vs(a), 1.25);
}

TEST(Cpu, StoresChangeMemory) {
  dram d(1 << 22);
  external_memory ext(d);
  cache_config cfg;
  cfg.size = 1024;
  cfg.line_size = 32;
  cfg.ways = 2;
  cache l1(cfg, ext);
  cpu core(l1, cfg.hit_latency);

  workload w;
  w.name = "one-store";
  w.accesses.push_back({0, 4, access_kind::fetch});
  w.accesses.push_back({1 << 20, 8, access_kind::store});
  (void)core.run(w);
  (void)l1.flush();
  bytes out(8);
  d.read_bytes(1 << 20, out);
  bool nonzero = false;
  for (u8 b : out)
    if (b) nonzero = true;
  EXPECT_TRUE(nonzero);
}

} // namespace
} // namespace buscrypt::sim
