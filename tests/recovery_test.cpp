// Power-cycle recovery invariants for authenticated memory: the on-chip
// persistent state (version RAM, stored tags, the hash-tree root) must let
// a device resume verifying a window after every *volatile* cache is
// dropped mid-run — zero false integrity faults on clean data, undiminished
// tamper detection after the drop. Quantified property-style over seeds
// and all three auth schemes, at the engine level and through the update
// agent's power_cycle().

#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/cipher_backend.hpp"
#include "engine/keyslot_manager.hpp"
#include "engine/memory_authenticator.hpp"
#include "keymgmt/session.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"
#include "sim/fault_injector.hpp"
#include "update/lifetime.hpp"
#include "update/update_agent.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace buscrypt {
namespace {

constexpr addr_t k_window = 32 * 1024;
constexpr addr_t k_tag_base = 1u << 20;
constexpr std::size_t k_unit = 32;

struct scheme {
  engine::auth_mode mode;
  const char* backend; ///< AREA needs block diffusion
};
constexpr scheme k_schemes[] = {{engine::auth_mode::mac, "aes-ctr"},
                                {engine::auth_mode::area, "aes-ecb"},
                                {engine::auth_mode::hash_tree, "aes-ctr"}};

struct rig {
  sim::dram chip{4u << 20};
  sim::external_memory ext{chip};
  engine::keyslot_manager slots{engine::backend_registry::builtin(), 4};
  engine::bus_encryption_engine eng{ext, slots};
  engine::bus_encryption_engine::context_id ctx;

  rig(const scheme& s, u64 seed) {
    rng r(seed ^ 0xA0117ULL);
    ctx = eng.create_context({s.backend, r.random_bytes(16), k_unit});
    eng.map_region(0, 1u << 20, ctx);
    engine::auth_config a;
    a.mode = s.mode;
    a.key = r.random_bytes(16);
    a.base = 0;
    a.limit = k_window;
    a.tag_base = k_tag_base;
    (void)eng.attach_auth(ctx, a);
  }

  [[nodiscard]] u64 faults() const { return eng.stats().integrity_faults; }
};

TEST(UpdateRecovery, CacheDropMidRunCausesNoFalseFaults) {
  for (const scheme& s : k_schemes)
    for (u64 seed = 1; seed <= 3; ++seed) {
      rig rg(s, seed);
      rng r(seed * 7919);
      // Seeded write pattern: aligned units, some overwritten (version
      // bumps) — the state the tag cache / version RAM / root must carry.
      std::map<addr_t, bytes> truth;
      for (int i = 0; i < 48; ++i) {
        const addr_t at = r.below(k_window / k_unit) * k_unit;
        bytes unit = r.random_bytes(k_unit);
        (void)rg.eng.write(at, unit);
        truth[at] = std::move(unit);
      }
      ASSERT_EQ(rg.faults(), 0u) << s.backend << " seed " << seed;

      // Power-cycle analogue: every volatile authenticator structure gone;
      // stored tags, on-chip versions and the tree root persist.
      rg.eng.auth_of(rg.ctx)->drop_caches();

      bytes buf(k_unit);
      for (const auto& [at, unit] : truth) {
        (void)rg.eng.read(at, buf);
        EXPECT_EQ(buf, unit) << engine::auth_mode_name(s.mode) << " @" << at;
      }
      EXPECT_EQ(rg.faults(), 0u)
          << engine::auth_mode_name(s.mode) << " seed " << seed
          << ": false faults after cache drop";
    }
}

TEST(UpdateRecovery, TamperDetectionSurvivesTheCacheDrop) {
  for (const scheme& s : k_schemes)
    for (u64 seed = 1; seed <= 3; ++seed) {
      rig rg(s, seed);
      rng r(seed * 104729);
      const addr_t at = r.below(k_window / k_unit) * k_unit;
      (void)rg.eng.write(at, r.random_bytes(k_unit));
      rg.eng.auth_of(rg.ctx)->drop_caches();

      // The attacker edits external memory while the caches are cold.
      const addr_t hit = at + r.below(k_unit);
      rg.chip.raw()[hit] ^= static_cast<u8>(1u << r.below(8));

      bytes buf(k_unit);
      const u64 before = rg.faults();
      (void)rg.eng.read(at, buf);
      EXPECT_GT(rg.faults(), before)
          << engine::auth_mode_name(s.mode) << " seed " << seed;
    }
}

TEST(UpdateRecovery, HashTreeRootOutlivesTheDroppedNodeCache) {
  rig rg({engine::auth_mode::hash_tree, "aes-ctr"}, 5);
  rng r(55);
  const addr_t at = 4 * k_unit;
  (void)rg.eng.write(at, r.random_bytes(k_unit));
  rg.eng.auth_of(rg.ctx)->drop_caches();

  // Flip a stored node that the cold walk must consume: the verify path
  // recomputes the leaf for `at` from data, so tamper its level-0 sibling
  // (arity 2, 8-byte tags → leaf 5 lives at tag_base + 5*8). A cached-root
  // design would have lost the trusted anchor with the cache; the on-chip
  // root must still catch the poisoned sibling.
  rg.chip.raw()[k_tag_base + 5 * 8] ^= 0x01;
  bytes buf(k_unit);
  const u64 before = rg.faults();
  (void)rg.eng.read(at, buf);
  EXPECT_GT(rg.faults(), before);
}

TEST(UpdateRecovery, AgentPowerCycleKeepsEverySchemeBootable) {
  for (const scheme& s : k_schemes)
    for (u64 seed = 1; seed <= 2; ++seed) {
      rng r(seed ^ 0xB007ULL);
      const crypto::rsa_keypair keys = crypto::rsa_generate(r, 256);
      sim::dram chip(64u << 10);
      sim::external_memory ext(chip);
      sim::fault_injector fi(ext);
      engine::keyslot_manager slots(engine::backend_registry::builtin(), 4);
      engine::bus_encryption_engine eng(fi, slots);

      update::update_config cfg;
      cfg.slot_base_a = 0;
      cfg.slot_base_b = 4u << 10;
      cfg.slot_bytes = 4u << 10;
      cfg.staging_base = 8u << 10;
      cfg.auth = s.mode;
      cfg.tag_base_a = 16u << 10;
      cfg.tag_base_b = 24u << 10;
      cfg.tag_base_staging = 32u << 10;
      cfg.backend = s.backend;
      cfg.chunk_bytes = 512;
      cfg.device_key = update::backend_device_key(s.backend, seed);
      update::update_agent agent(eng, fi, keys.priv, cfg);

      const bytes v1 = r.random_bytes(cfg.slot_bytes);
      agent.provision(v1, 1);

      bytes buf(512);
      for (int i = 0; i < 6; ++i)
        (void)eng.read(r.below(cfg.slot_bytes / 512) * 512, buf);
      const u64 before = eng.stats().integrity_faults;

      agent.power_cycle();
      const update::update_report rep = agent.recover();
      EXPECT_EQ(rep.status, update::update_status::none_pending)
          << engine::auth_mode_name(s.mode);
      EXPECT_EQ(agent.version(), 1u);
      EXPECT_EQ(agent.active_image(), v1) << engine::auth_mode_name(s.mode);

      // Re-read through the authenticated path: zero new faults.
      for (int i = 0; i < 6; ++i)
        (void)eng.read(r.below(cfg.slot_bytes / 512) * 512, buf);
      EXPECT_EQ(eng.stats().integrity_faults, before)
          << engine::auth_mode_name(s.mode) << " seed " << seed;
    }
}

} // namespace
} // namespace buscrypt
