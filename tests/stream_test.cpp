// Stream cipher tests: RC4 against RFC 6229 keystream vectors, LFSR and
// Trivium structural/property tests.

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "compress/entropy.hpp"
#include "crypto/lfsr.hpp"
#include "crypto/rc4.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

bytes H(std::string_view s) { return from_hex(s); }

TEST(Rc4, Rfc6229KeystreamKey40Bit) {
  // RFC 6229, key 0x0102030405: first 16 keystream bytes.
  rc4 c(H("0102030405"));
  bytes ks(16);
  c.keystream(ks);
  EXPECT_EQ(to_hex(ks), "b2396305f03dc027ccc3524a0a1118a8");
}

TEST(Rc4, Rfc6229KeystreamKey128Bit) {
  rc4 c(H("0102030405060708090a0b0c0d0e0f10"));
  bytes ks(16);
  c.keystream(ks);
  EXPECT_EQ(to_hex(ks), "9ac7cc9a609d1ef7b2932899cde41b97");
}

TEST(Rc4, EncryptDecryptSymmetry) {
  rng r(1);
  const bytes key = r.random_bytes(16);
  bytes msg = r.random_bytes(1000);
  const bytes orig = msg;

  rc4 enc(key);
  enc.apply(msg);
  EXPECT_NE(msg, orig);

  rc4 dec(key);
  dec.apply(msg);
  EXPECT_EQ(msg, orig);
}

TEST(Rc4, ReseedRestartsStream) {
  rc4 c(H("0102030405"));
  bytes a(8), b(8);
  c.keystream(a);
  c.reseed(H("0102030405"), {});
  c.keystream(b);
  EXPECT_EQ(a, b);
}

TEST(Rc4, IvChangesStream) {
  rc4 a(H("0102030405"));
  rc4 b(H("0102030405"));
  b.reseed(H("0102030405"), H("ff"));
  bytes ka(16), kb(16);
  a.keystream(ka);
  b.keystream(kb);
  EXPECT_NE(ka, kb);
}

TEST(Rc4, RejectsEmptyAndOversizedKeys) {
  EXPECT_THROW(rc4(bytes{}), std::invalid_argument);
  EXPECT_THROW(rc4(bytes(257, 1)), std::invalid_argument);
}

TEST(Rc4, KeystreamLooksRandom) {
  rc4 c(H("deadbeefcafebabe"));
  bytes ks(1 << 16);
  c.keystream(ks);
  EXPECT_GT(compress::shannon_entropy(ks), 7.9);
}

TEST(GaloisLfsr, DeterministicAndKeyed) {
  rng r(2);
  const bytes key = r.random_bytes(8);
  const bytes iv = r.random_bytes(8);
  galois_lfsr a(key, iv), b(key, iv);
  bytes ka(64), kb(64);
  a.keystream(ka);
  b.keystream(kb);
  EXPECT_EQ(ka, kb);

  galois_lfsr c(key, r.random_bytes(8));
  bytes kc(64);
  c.keystream(kc);
  EXPECT_NE(ka, kc);
}

TEST(GaloisLfsr, ZeroSeedRemapped) {
  // An all-zero key/iv must not freeze the register at zero.
  const bytes zero(8, 0);
  galois_lfsr g(zero, zero);
  bytes ks(32);
  g.keystream(ks);
  bool all_zero = true;
  for (u8 b : ks)
    if (b != 0) all_zero = false;
  EXPECT_FALSE(all_zero);
}

TEST(GaloisLfsr, LongPeriod) {
  // Maximal-length 64-bit taps: the state must not cycle within 1M steps.
  const bytes key = {1, 2, 3, 4, 5, 6, 7, 8};
  galois_lfsr g(key, {});
  const u64 start = g.state();
  bytes ks(1 << 17); // 2^20 bit steps
  g.keystream(ks);
  EXPECT_NE(g.state(), start);
}

TEST(GaloisLfsr, StateIsLinearlyRecoverable) {
  // The documented weakness: 64 output bits determine the state. Verify
  // the produced byte stream equals a re-simulation from the exposed state
  // (i.e. an attacker cloning the register predicts all future output).
  const bytes key = {9, 9, 9, 9, 9, 9, 9, 9};
  galois_lfsr g(key, {});
  bytes skip(8);
  g.keystream(skip);
  const u64 captured = g.state();

  bytes future(32);
  g.keystream(future);

  // Clone: rebuild from the captured state by constructing a new LFSR and
  // forcing its state via keystream-of-zero trick (reseed with key bytes
  // equal to the captured state little-endian).
  bytes state_key(8);
  for (int i = 0; i < 8; ++i)
    state_key[static_cast<std::size_t>(i)] = static_cast<u8>(captured >> (8 * i));
  galois_lfsr clone(state_key, {});
  bytes predicted(32);
  clone.keystream(predicted);
  EXPECT_EQ(predicted, future);
}

TEST(Trivium, DeterministicAndKeySensitive) {
  const bytes key = H("0f62b5085bae0154a7fa");
  const bytes iv = H("288ff65dc42b92f960c7");
  trivium a(key, iv), b(key, iv);
  bytes ka(64), kb(64);
  a.keystream(ka);
  b.keystream(kb);
  EXPECT_EQ(ka, kb);

  bytes key2 = key;
  key2[0] ^= 1;
  trivium c(key2, iv);
  bytes kc(64);
  c.keystream(kc);
  EXPECT_NE(ka, kc);
}

TEST(Trivium, IvSensitive) {
  const bytes key = H("00000000000000000000");
  trivium a(key, H("00000000000000000000"));
  trivium b(key, H("00000000000000000001"));
  bytes ka(64), kb(64);
  a.keystream(ka);
  b.keystream(kb);
  EXPECT_NE(ka, kb);
}

TEST(Trivium, KeystreamLooksRandom) {
  trivium t(H("0123456789abcdef0123"), H("fedcba98765432100123"));
  bytes ks(1 << 15);
  t.keystream(ks);
  EXPECT_GT(compress::shannon_entropy(ks), 7.9);
  EXPECT_LT(std::abs(compress::serial_correlation(ks)), 0.05);
}

TEST(Trivium, ApplyIsInvolutive) {
  const bytes key = H("aabbccddeeff00112233");
  const bytes iv = H("99887766554433221100");
  rng r(3);
  bytes msg = r.random_bytes(500);
  const bytes orig = msg;
  trivium enc(key, iv);
  enc.apply(msg);
  EXPECT_NE(msg, orig);
  trivium dec(key, iv);
  dec.apply(msg);
  EXPECT_EQ(msg, orig);
}

} // namespace
} // namespace buscrypt::crypto
