// DES / 3DES known-answer and property tests (FIPS 46-3).

#include "common/bitops.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/des.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

bytes H(std::string_view s) { return from_hex(s); }

TEST(Des, ClassicKnownAnswer) {
  // The canonical worked example (appears in FIPS validation suites).
  const des c(H("133457799bbcdff1"));
  const bytes pt = H("0123456789abcdef");
  bytes ct(8);
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "85e813540f0ab405");
  bytes back(8);
  c.decrypt_block(ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Des, SecondKnownAnswer) {
  const des c(H("0e329232ea6d0d73"));
  const bytes pt = H("8787878787878787");
  bytes ct(8);
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "0000000000000000");
}

TEST(Des, ParityBitsIgnored) {
  // Keys differing only in parity bits (bit 0 of each byte) are equivalent.
  const bytes key_a = H("133457799bbcdff1");
  bytes key_b = key_a;
  for (auto& b : key_b) b ^= 0x01;
  const bytes pt = H("0123456789abcdef");
  bytes ct_a(8), ct_b(8);
  des(key_a).encrypt_block(pt, ct_a);
  des(key_b).encrypt_block(pt, ct_b);
  EXPECT_EQ(ct_a, ct_b);
}

TEST(Des, RejectsBadKeyLength) {
  rng r(1);
  EXPECT_THROW(des(r.random_bytes(7)), std::invalid_argument);
  EXPECT_THROW(des(r.random_bytes(9)), std::invalid_argument);
}

TEST(Des, RoundTripRandom) {
  rng r(2);
  for (int i = 0; i < 32; ++i) {
    const des c(r.random_bytes(8));
    const bytes pt = r.random_bytes(8);
    bytes ct(8), back(8);
    c.encrypt_block(pt, ct);
    c.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
  }
}

TEST(Des, AvalancheNearHalfTheBits) {
  rng r(3);
  const des c(r.random_bytes(8));
  double flipped = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    bytes pt = r.random_bytes(8);
    bytes a(8), b(8);
    c.encrypt_block(pt, a);
    pt[r.below(8)] ^= static_cast<u8>(1u << r.below(8));
    c.encrypt_block(pt, b);
    flipped += static_cast<double>(hamming_bits(a, b));
  }
  EXPECT_NEAR(flipped / trials, 32.0, 4.0);
}

TEST(Des, ComplementationProperty) {
  // DES's famous complementation: E_{~k}(~p) == ~E_k(p).
  rng r(4);
  const bytes key = r.random_bytes(8);
  const bytes pt = r.random_bytes(8);
  bytes key_c = key, pt_c = pt;
  for (auto& b : key_c) b = static_cast<u8>(~b);
  for (auto& b : pt_c) b = static_cast<u8>(~b);

  bytes ct(8), ct_c(8);
  des(key).encrypt_block(pt, ct);
  des(key_c).encrypt_block(pt_c, ct_c);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(static_cast<u8>(~ct[static_cast<std::size_t>(i)]),
              ct_c[static_cast<std::size_t>(i)]);
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys) {
  rng r(5);
  const bytes k = r.random_bytes(8);
  bytes k3;
  for (int i = 0; i < 3; ++i) k3.insert(k3.end(), k.begin(), k.end());

  const des single(k);
  const triple_des triple(k3);
  const bytes pt = r.random_bytes(8);
  bytes ct_s(8), ct_t(8);
  single.encrypt_block(pt, ct_s);
  triple.encrypt_block(pt, ct_t);
  EXPECT_EQ(ct_s, ct_t);
}

TEST(TripleDes, TwoKeyForm) {
  rng r(6);
  const bytes k16 = r.random_bytes(16);
  bytes k24(k16);
  k24.insert(k24.end(), k16.begin(), k16.begin() + 8); // K3 = K1
  const triple_des two_key(k16);
  const triple_des three_key(k24);
  const bytes pt = r.random_bytes(8);
  bytes a(8), b(8);
  two_key.encrypt_block(pt, a);
  three_key.encrypt_block(pt, b);
  EXPECT_EQ(a, b);
}

TEST(TripleDes, RoundTripAndRejects) {
  rng r(7);
  const triple_des c(r.random_bytes(24));
  for (int i = 0; i < 16; ++i) {
    const bytes pt = r.random_bytes(8);
    bytes ct(8), back(8);
    c.encrypt_block(pt, ct);
    c.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
  }
  EXPECT_THROW(triple_des(r.random_bytes(8)), std::invalid_argument);
  EXPECT_THROW(triple_des(r.random_bytes(23)), std::invalid_argument);
}

TEST(TripleDes, StrongerThanReusedDes) {
  // 3DES with independent keys must differ from single DES under any of
  // its three subkeys.
  rng r(8);
  const bytes k24 = r.random_bytes(24);
  const triple_des t(k24);
  const bytes pt = r.random_bytes(8);
  bytes ct_t(8), ct_s(8);
  t.encrypt_block(pt, ct_t);
  for (int part = 0; part < 3; ++part) {
    const des s(std::span<const u8>(k24).subspan(static_cast<std::size_t>(part) * 8, 8));
    s.encrypt_block(pt, ct_s);
    EXPECT_NE(ct_t, ct_s);
  }
}

} // namespace
} // namespace buscrypt::crypto
