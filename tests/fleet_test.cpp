// Many-SoC fleet runner: work-stealing pool semantics (every job exactly
// once, serial reference order, exception propagation, stealing under
// skew), the multi-threaded hammer on the shared builtin backend
// registry's key-schedule caches, fleet determinism (byte-identical
// fleet JSON across thread counts and execution orders, stable seed
// sweeps), and the 16-engine x 4-auth fleet-vs-solo bit-equivalence
// sweep. These are the proofs behind the cell-independence contract in
// fleet.hpp: scheduling may never leak into simulated results.

#include "engine/cipher_backend.hpp"
#include "fleet/fleet.hpp"
#include "fleet/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace buscrypt {
namespace {

using fleet::drive_mode;
using fleet::fleet_cell;
using fleet::fleet_config;
using fleet::fleet_result;
using fleet::traffic;

// --- pool -------------------------------------------------------------------

TEST(FleetPool, RunsEveryJobExactlyOnce) {
  constexpr std::size_t n = 97;
  std::vector<std::atomic<int>> hits(n);
  const fleet::pool_stats st =
      fleet::run_jobs(n, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(st.executed, n);
  EXPECT_EQ(st.threads, 4u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(FleetPool, ZeroJobsIsANoop) {
  const fleet::pool_stats st =
      fleet::run_jobs(0, 4, [](std::size_t) { FAIL() << "no job should run"; });
  EXPECT_EQ(st.executed, 0u);
  EXPECT_EQ(st.steals, 0u);
}

TEST(FleetPool, ThreadsClampToJobCount) {
  std::vector<std::atomic<int>> hits(3);
  const fleet::pool_stats st =
      fleet::run_jobs(3, 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(st.executed, 3u);
  EXPECT_LE(st.threads, 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(FleetPool, SerialPathRunsInIndexOrder) {
  std::vector<std::size_t> order;
  const fleet::pool_stats st =
      fleet::run_jobs(10, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(st.threads, 1u);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(FleetPool, FirstExceptionPropagates) {
  std::atomic<u64> ran{0};
  const auto boom = [&](std::size_t i) {
    if (i == 7) throw std::runtime_error("cell 7 failed");
    ran.fetch_add(1);
  };
  EXPECT_THROW(fleet::run_jobs(32, 4, boom), std::runtime_error);
  EXPECT_LT(ran.load(), 32u); // the throwing job never counts as run
}

TEST(FleetPool, IdleWorkersStealFromBusyVictims) {
  // Two workers, round-robin seeding: worker 0 owns {0,2,4,6} and pops
  // LIFO, so it executes job 6 first — and job 6 blocks until its three
  // deque-mates {0,2,4} have run. Worker 0 cannot run them itself (it is
  // inside job 6), so the only way the pool finishes is worker 1 stealing
  // them. No timing assumptions: the wait is on job completion, and the
  // pool's own termination guarantee makes the steal inevitable.
  std::vector<std::atomic<int>> done(8);
  const auto fn = [&](std::size_t i) {
    if (i == 6) {
      while (done[0].load() + done[2].load() + done[4].load() < 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done[i].fetch_add(1);
  };
  const fleet::pool_stats st = fleet::run_jobs(8, 2, fn);
  EXPECT_EQ(st.executed, 8u);
  EXPECT_GE(st.steals, 3u);
}

// --- the shared key-schedule cache (satellite: hammer the registry) ---------

// make_keyed() on the process-wide builtin() backends is the one code
// path where fleet worker threads share mutable state (the LRU schedule
// cache). Hammer it from many threads with overlapping keys and check
// (a) every minted cipher transforms exactly like a single-threaded
// reference, and (b) the cache telemetry invariant hits + expansions ==
// make_keyed calls survives the contention.
TEST(ScheduleCacheThreads, HammerBuiltinBackendsFromManyThreads) {
  const engine::backend_registry& reg = engine::backend_registry::builtin();
  const std::vector<std::string> names = {"aes-ecb", "aes-cbc", "aes-ctr",
                                          "3des-cbc", "rc4-stream"};
  constexpr std::size_t k_keys = 8;
  constexpr std::size_t k_threads = 8;
  constexpr std::size_t k_iters = 48;
  constexpr u64 k_dun = 0x51;

  std::vector<bytes> keys;
  for (std::size_t k = 0; k < k_keys; ++k) {
    bytes key(16);
    for (std::size_t i = 0; i < key.size(); ++i)
      key[i] = static_cast<u8>(0xA0 + 31 * k + 7 * i);
    keys.push_back(std::move(key));
  }
  bytes plain(64);
  for (std::size_t i = 0; i < plain.size(); ++i) plain[i] = static_cast<u8>(i * 5 + 1);

  // Single-threaded reference ciphertexts, one per (backend, key).
  std::vector<std::vector<bytes>> expected(names.size());
  for (std::size_t b = 0; b < names.size(); ++b) {
    const engine::cipher_backend& backend = reg.at(names[b]);
    for (const bytes& key : keys) {
      bytes ct(plain.size());
      backend.make_keyed(key)->encrypt_unit(k_dun, plain, ct);
      expected[b].push_back(std::move(ct));
    }
  }

  // Counter snapshot after the reference pass: the deltas below belong to
  // the hammer alone.
  struct counter_base {
    const engine::block_backend* backend;
    u64 hits, expansions;
  };
  std::vector<counter_base> bases;
  for (const std::string& name : names)
    if (const auto* bb = dynamic_cast<const engine::block_backend*>(reg.find(name)))
      bases.push_back({bb, bb->schedule_hits(), bb->schedule_expansions()});
  ASSERT_EQ(bases.size(), 4u); // the four block backends above

  std::atomic<u64> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < k_threads; ++t)
    threads.emplace_back([&, t] {
      bytes out(plain.size());
      bytes back(plain.size());
      for (std::size_t it = 0; it < k_iters; ++it)
        for (std::size_t b = 0; b < names.size(); ++b) {
          // Rotate key choice per thread so cache hits and LRU churn mix.
          const std::size_t k = (t + it + b) % k_keys;
          const auto keyed = reg.at(names[b]).make_keyed(keys[k]);
          keyed->encrypt_unit(k_dun, plain, out);
          if (out != expected[b][k]) mismatches.fetch_add(1);
          keyed->decrypt_unit(k_dun, out, back);
          if (back != plain) mismatches.fetch_add(1);
        }
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Every make_keyed call either hit the cache or expanded: the split is
  // schedule-dependent, the sum is not.
  for (const counter_base& base : bases) {
    const u64 delta = (base.backend->schedule_hits() - base.hits) +
                      (base.backend->schedule_expansions() - base.expansions);
    EXPECT_EQ(delta, k_threads * k_iters) << base.backend->name();
  }
}

// --- cell determinism -------------------------------------------------------

fleet_cell small_cell(edu::engine_kind kind, engine::auth_mode auth,
                      std::size_t accesses) {
  fleet_cell c;
  c.kind = kind;
  c.auth = auth;
  c.accesses = accesses;
  c.footprint = 64 * 1024;
  if (kind == edu::engine_kind::inline_keyslot && auth == engine::auth_mode::area)
    c.backend = "aes-ecb";
  return c;
}

TEST(FleetCell, SoloRerunIsBitIdentical) {
  const fleet_cell c =
      small_cell(edu::engine_kind::inline_keyslot, engine::auth_mode::mac, 400);
  const fleet::cell_result a = fleet::run_cell(c);
  const fleet::cell_result b = fleet::run_cell(c);
  EXPECT_TRUE(a.sim_equal(b));
  EXPECT_NE(a.dram_fnv, 0u);
  EXPECT_GT(a.ops, 0u);
  EXPECT_GT(a.total_cycles, 0u);
}

TEST(FleetCell, DistinctSeedsProduceDistinctImages) {
  fleet_cell proto = small_cell(edu::engine_kind::inline_keyslot,
                                engine::auth_mode::none, 300);
  const std::vector<fleet_cell> cells = fleet::seed_sweep(proto, 4);
  std::vector<fleet::cell_result> results;
  for (const fleet_cell& c : cells) results.push_back(fleet::run_cell(c));
  for (std::size_t i = 0; i < results.size(); ++i)
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      EXPECT_NE(results[i].dram_fnv, results[j].dram_fnv) << i << " vs " << j;
      EXPECT_NE(results[i].label, results[j].label);
    }
}

// The satellite-2 artifact: same fleet_config -> byte-identical
// machine-independent JSON whether the fleet runs serially, on 4
// threads, on hardware_concurrency threads, or in a shuffled order.
TEST(FleetDeterminism, JsonByteIdenticalAcrossThreadCountsAndOrders) {
  fleet_config cfg;
  cfg.cells = fleet::engine_matrix(200, 0xDE7E12ULL);
  for (fleet_cell& c : cfg.cells) c.footprint = 64 * 1024;
  cfg.cells.push_back(
      small_cell(edu::engine_kind::inline_keyslot, engine::auth_mode::mac, 200));
  {
    fleet_cell scalar = small_cell(edu::engine_kind::xom_aes,
                                   engine::auth_mode::none, 200);
    scalar.drive = drive_mode::scalar;
    cfg.cells.push_back(std::move(scalar));
  }

  cfg.threads = 1;
  cfg.shuffle = false;
  const std::string serial = fleet::fleet_json(cfg, fleet::run_fleet(cfg), false);
  const std::string serial_again =
      fleet::fleet_json(cfg, fleet::run_fleet(cfg), false);
  EXPECT_EQ(serial, serial_again);

  cfg.threads = 4;
  cfg.shuffle = true;
  cfg.shuffle_seed = 1;
  EXPECT_EQ(serial, fleet::fleet_json(cfg, fleet::run_fleet(cfg), false));

  cfg.threads = 0; // hardware_concurrency
  cfg.shuffle_seed = 99;
  EXPECT_EQ(serial, fleet::fleet_json(cfg, fleet::run_fleet(cfg), false));
}

TEST(FleetDeterminism, SeedSweepFleetIsStableAcrossRuns) {
  fleet_config cfg;
  cfg.cells = fleet::seed_sweep(
      small_cell(edu::engine_kind::inline_keyslot, engine::auth_mode::none, 300), 6);
  cfg.threads = 3;
  cfg.shuffle = true;
  cfg.shuffle_seed = 7;
  const std::string a = fleet::fleet_json(cfg, fleet::run_fleet(cfg), false);
  const std::string b = fleet::fleet_json(cfg, fleet::run_fleet(cfg), false);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"dram_fnv\""), std::string::npos);
}

TEST(FleetDeterminism, CpuDriveCellsMatchSoloRuns) {
  fleet_config cfg;
  for (const edu::engine_kind kind :
       {edu::engine_kind::plaintext, edu::engine_kind::inline_keyslot}) {
    fleet_cell c = small_cell(kind, engine::auth_mode::none, 800);
    c.drive = drive_mode::cpu;
    c.load = traffic::jumpy;
    cfg.cells.push_back(std::move(c));
  }
  std::vector<fleet::cell_result> solo;
  for (const fleet_cell& c : cfg.cells) solo.push_back(fleet::run_cell(c));

  cfg.threads = 8;
  cfg.shuffle = true;
  const fleet_result r = fleet::run_fleet(cfg);
  ASSERT_EQ(r.cells.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i)
    EXPECT_TRUE(r.cells[i].sim_equal(solo[i])) << solo[i].label;
}

// DES-backend cells on a multi-thread fleet: the GI engine's 1 KiB
// segment decrypts (128 blocks a call) and Gilmont's prefetch runs drive
// the bitsliced wide DES path concurrently from several worker threads
// while sharing immutable key schedules. Covered by the TSan CI leg (it
// filters -R 'Fleet'), so a data race in the lane-group dispatch table or
// the borrowed-schedule passes would surface here.
TEST(FleetDeterminism, BitslicedDesCellsAcrossWorkerThreads) {
  fleet_config cfg;
  for (const edu::engine_kind kind :
       {edu::engine_kind::dallas_des, edu::engine_kind::gilmont_3des,
        edu::engine_kind::gi_3des_cbc}) {
    const std::vector<fleet_cell> pair =
        fleet::seed_sweep(small_cell(kind, engine::auth_mode::none, 400), 2);
    cfg.cells.insert(cfg.cells.end(), pair.begin(), pair.end());
  }
  std::vector<fleet::cell_result> solo;
  for (const fleet_cell& c : cfg.cells) solo.push_back(fleet::run_cell(c));

  cfg.threads = 6;
  cfg.shuffle = true;
  cfg.shuffle_seed = 0xDE5F1EE7ULL;
  const fleet_result r = fleet::run_fleet(cfg);
  ASSERT_EQ(r.cells.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i)
    EXPECT_TRUE(r.cells[i].sim_equal(solo[i])) << solo[i].label;
}

TEST(FleetJson, HostFieldsAppearOnlyWhenRequested) {
  fleet_config cfg;
  cfg.cells.push_back(small_cell(edu::engine_kind::plaintext,
                                 engine::auth_mode::none, 100));
  cfg.threads = 1;
  const fleet_result r = fleet::run_fleet(cfg);
  const std::string with_host = fleet::fleet_json(cfg, r, true);
  const std::string without = fleet::fleet_json(cfg, r, false);
  EXPECT_NE(with_host.find("\"host_ms\""), std::string::npos);
  EXPECT_NE(with_host.find("\"threads\""), std::string::npos);
  EXPECT_EQ(without.find("\"host_ms\""), std::string::npos);
  EXPECT_EQ(without.find("\"threads\""), std::string::npos);
  EXPECT_NE(without.find("\"total_cycles\""), std::string::npos);
}

// --- the 16-engine x 4-auth bit-equivalence sweep (satellite 3) -------------

// Every engine under every auth mode, three ways: alone (run_cell),
// serially (threads=1 fleet), and on a 16-thread fleet in randomized
// order. All three must agree bit-for-bit on every cell — the ISSUE's
// acceptance matrix. Named *Sweep* so the sweep label/filter picks it up.
TEST(FleetSweep, AllEnginesAllAuthFleetVsSolo) {
  fleet_config cfg;
  cfg.cells = fleet::engine_auth_matrix(400, 0x5EC5EEDULL);
  for (fleet_cell& c : cfg.cells) c.footprint = 64 * 1024;
  ASSERT_EQ(cfg.cells.size(), edu::all_engines().size() * 4);

  std::vector<fleet::cell_result> solo;
  solo.reserve(cfg.cells.size());
  for (const fleet_cell& c : cfg.cells) solo.push_back(fleet::run_cell(c));

  cfg.threads = 1;
  cfg.shuffle = false;
  const fleet_result serial = fleet::run_fleet(cfg);

  cfg.threads = 16;
  cfg.shuffle = true;
  cfg.shuffle_seed = 0xF1EE7ULL;
  const fleet_result fleet_run = fleet::run_fleet(cfg);

  ASSERT_EQ(serial.cells.size(), solo.size());
  ASSERT_EQ(fleet_run.cells.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_TRUE(serial.cells[i].sim_equal(solo[i])) << "serial: " << solo[i].label;
    EXPECT_TRUE(fleet_run.cells[i].sim_equal(solo[i])) << "fleet: " << solo[i].label;
  }
  EXPECT_EQ(fleet_run.pool.executed, solo.size());
}

// --- lifetime cells: whole-device update episodes on the pool ----------------

TEST(FleetLifetime, MatrixCellsAreSafeAcrossThreadsAndOrders) {
  fleet_config cfg;
  cfg.cells = fleet::lifetime_matrix(2, 0x13F1EE7ULL);
  ASSERT_EQ(cfg.cells.size(), std::size(sim::all_fault_points) * 4 * 2);

  cfg.threads = 1;
  cfg.shuffle = false;
  const fleet_result serial = fleet::run_fleet(cfg);

  cfg.threads = 8;
  cfg.shuffle = true;
  cfg.shuffle_seed = 0xDEF7ULL;
  const fleet_result pooled = fleet::run_fleet(cfg);

  for (std::size_t i = 0; i < cfg.cells.size(); ++i) {
    EXPECT_TRUE(pooled.cells[i].sim_equal(serial.cells[i]))
        << serial.cells[i].label;
    // The crash-safety invariant, cell by cell: ended on exactly one of
    // the two images, stale-version probe refused.
    EXPECT_EQ(serial.cells[i].torn_images, 0u) << serial.cells[i].label;
    EXPECT_EQ(serial.cells[i].downgrade_breaches, 0u) << serial.cells[i].label;
    EXPECT_EQ(serial.cells[i].updates_committed + serial.cells[i].updates_rolled_back,
              1u)
        << serial.cells[i].label;
  }
}

TEST(FleetLifetime, LabelsCarryTheFaultAxis) {
  fleet_cell c;
  c.drive = drive_mode::lifetime;
  c.inject = sim::fault_point::bus_beat;
  c.inject_trigger = 42;
  c.offer_package = false;
  const std::string l = c.label();
  EXPECT_NE(l.find("lifetime"), std::string::npos) << l;
  EXPECT_NE(l.find("bus-beat"), std::string::npos) << l;
  EXPECT_NE(l.find("42"), std::string::npos) << l;
  EXPECT_NE(l.find("noresume"), std::string::npos) << l;
}

} // namespace
} // namespace buscrypt
