// Codec round-trips (including adversarial inputs), CodePack random access,
// and the entropy measurements behind the Fig. 8 claims.

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "compress/codepack.hpp"
#include <cmath>
#include "compress/entropy.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "compress/rle.hpp"
#include "crypto/aes.hpp"
#include "crypto/modes.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace buscrypt::compress {
namespace {

/// Synthetic "firmware": word-aligned, highly repetitive high halves —
/// the distribution CodePack targets.
bytes make_code_image(std::size_t words, u64 seed) {
  rng r(seed);
  bytes img(words * 4);
  static constexpr u16 opcodes[] = {0xE592, 0xE583, 0x4770, 0xB510,
                                    0x2000, 0xF000, 0x6800, 0x6001};
  for (std::size_t w = 0; w < words; ++w) {
    const u16 hi = opcodes[r.below(8)];
    const u16 lo = r.chance(0.6) ? static_cast<u16>(r.below(256))
                                 : static_cast<u16>(r.next_u32());
    store_le32(&img[w * 4], (u32{hi} << 16) | lo);
  }
  return img;
}

class CodecRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<codec> make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<rle_codec>();
      case 1: return std::make_unique<huffman_codec>();
      case 2: return std::make_unique<lz77_codec>();
      default: return std::make_unique<codepack_codec>();
    }
  }
};

TEST_P(CodecRoundTrip, RandomData) {
  rng r(1);
  const auto c = make();
  for (std::size_t len : {0u, 1u, 2u, 3u, 100u, 4096u}) {
    const bytes in = r.random_bytes(len);
    EXPECT_EQ(c->decompress(c->compress(in)), in) << c->name() << " len=" << len;
  }
}

TEST_P(CodecRoundTrip, AllSameByte) {
  const auto c = make();
  const bytes in(5000, 0x00);
  EXPECT_EQ(c->decompress(c->compress(in)), in);
  const bytes in2(5000, 0xA5); // the RLE marker itself
  EXPECT_EQ(c->decompress(c->compress(in2)), in2);
}

TEST_P(CodecRoundTrip, CodeImage) {
  const auto c = make();
  const bytes img = make_code_image(4096, 7);
  const bytes packed = c->compress(img);
  EXPECT_EQ(c->decompress(packed), img);
}

TEST_P(CodecRoundTrip, MarkerHeavyInput) {
  rng r(2);
  bytes in(2000);
  for (auto& b : in) b = r.chance(0.5) ? u8{0xA5} : r.next_byte();
  const auto c = make();
  EXPECT_EQ(c->decompress(c->compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip, ::testing::Values(0, 1, 2, 3));

TEST(Rle, CompressesRuns) {
  const rle_codec c;
  const bytes runs(10'000, 0x00);
  EXPECT_LT(c.ratio_on(runs), 0.02);
}

TEST(Rle, ExpandsRandomOnlySlightly) {
  rng r(3);
  const rle_codec c;
  const bytes in = r.random_bytes(10'000);
  EXPECT_LT(c.ratio_on(in), 1.05);
}

TEST(Huffman, CompressesSkewedDistributions) {
  rng r(4);
  bytes in(20'000);
  for (auto& b : in) b = r.chance(0.8) ? 0x00 : r.next_byte();
  const huffman_codec c;
  EXPECT_LT(c.ratio_on(in), 0.6);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  rng r(5);
  std::vector<u64> freq(256);
  for (auto& f : freq) f = r.below(1000);
  const auto lengths = huffman_code_lengths(freq);
  double kraft = 0;
  for (std::size_t s = 0; s < 256; ++s)
    if (lengths[s] != 0) kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
  EXPECT_LE(kraft, 1.0 + 1e-9);
  EXPECT_GT(kraft, 0.99); // complete code
}

TEST(Huffman, SingleSymbolInput) {
  const huffman_codec c;
  const bytes in(100, 0x42);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(Lz77, CompressesRepeatedStructure) {
  bytes in;
  const char* phrase = "the externally stored firmware image ";
  for (int i = 0; i < 300; ++i)
    in.insert(in.end(), phrase, phrase + 38);
  const lz77_codec c;
  EXPECT_LT(c.ratio_on(in), 0.15);
}

TEST(Lz77, RejectsCorruptStreams) {
  const lz77_codec c;
  EXPECT_THROW((void)c.decompress(bytes{1, 2}), std::invalid_argument);
  // A match that reaches before the start of output.
  bytes evil(4, 0);
  store_le32(evil.data(), 5);
  evil.push_back(0x01);
  evil.push_back(0xFF);
  evil.push_back(0x00);
  evil.push_back(5);
  EXPECT_THROW((void)c.decompress(evil), std::invalid_argument);
}

TEST(CodePack, DensityGainOnCode) {
  // The headline claim: "+35%" memory density on instruction streams.
  const bytes img = make_code_image(16'384, 11);
  const codepack engine(64);
  const auto packed = engine.compress_image(img);
  EXPECT_GT(packed.density_gain(), 0.20) << "compressed " << packed.compressed_size()
                                         << " of " << img.size();
  EXPECT_EQ(engine.decompress_all(packed), img);
}

TEST(CodePack, GroupRandomAccess) {
  const bytes img = make_code_image(1024, 13);
  const codepack engine(64);
  const auto packed = engine.compress_image(img);
  ASSERT_EQ(packed.group_bit_offsets.size(), img.size() / 64);
  // Decompress groups in scrambled order; each must match its slice.
  rng r(14);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t g = r.below(packed.group_bit_offsets.size());
    const bytes grp = engine.decompress_group(packed, g);
    ASSERT_EQ(grp.size(), 64u);
    EXPECT_TRUE(std::equal(grp.begin(), grp.end(), img.begin() + static_cast<std::ptrdiff_t>(g * 64)));
  }
}

TEST(CodePack, ChunkDecodeMatchesGroupDecode) {
  const bytes img = make_code_image(512, 15);
  const codepack engine(64);
  const auto packed = engine.compress_image(img);
  for (std::size_t g = 0; g < packed.group_bit_offsets.size(); ++g) {
    const std::size_t start_bit = packed.group_bit_offsets[g];
    const std::size_t end_bit = (g + 1 < packed.group_bit_offsets.size())
                                    ? packed.group_bit_offsets[g + 1]
                                    : packed.payload.size() * 8;
    const bytes chunk(packed.payload.begin() + static_cast<std::ptrdiff_t>(start_bit / 8),
                      packed.payload.begin() + static_cast<std::ptrdiff_t>((end_bit + 7) / 8));
    EXPECT_EQ(engine.decompress_chunk(chunk, start_bit % 8, 64, packed),
              engine.decompress_group(packed, g));
  }
}

TEST(CodePack, RejectsBadGeometry) {
  EXPECT_THROW(codepack(0), std::invalid_argument);
  EXPECT_THROW(codepack(65), std::invalid_argument);
  const codepack engine(64);
  EXPECT_THROW((void)engine.compress_image(bytes(10)), std::invalid_argument);
}

TEST(Entropy, OrderingOfKnownDistributions) {
  rng r(16);
  const bytes constant(8192, 7);
  bytes text;
  for (int i = 0; i < 1000; ++i) {
    const char* s = "entropy of english-like text ";
    text.insert(text.end(), s, s + 29);
  }
  const bytes random = r.random_bytes(8192);
  EXPECT_LT(shannon_entropy(constant), 0.01);
  EXPECT_LT(shannon_entropy(text), 5.0);
  EXPECT_GT(shannon_entropy(random), 7.9);
}

TEST(Entropy, CompressionRaisesEntropy) {
  // Section 4: "compression increases the message entropy".
  const bytes img = make_code_image(8192, 17);
  const huffman_codec c;
  const bytes packed = c.compress(img);
  EXPECT_GT(shannon_entropy(std::span<const u8>(packed).subspan(260)),
            shannon_entropy(img) + 0.5);
}

TEST(Entropy, EncryptedDataDoesNotCompress) {
  // Section 4: "compression will have a very poor ratio due to the strong
  // stochastic properties of encrypted data".
  rng r(18);
  const bytes img = make_code_image(8192, 19);
  const crypto::aes cipher(r.random_bytes(16));
  bytes ct(img.size());
  crypto::ctr_crypt(cipher, 1, 0, img, ct);

  const lz77_codec c;
  EXPECT_GT(c.ratio_on(ct), 0.98);                    // ciphertext does not compress
  EXPECT_LT(c.ratio_on(img), c.ratio_on(ct) - 0.15);  // plaintext clearly does
}

TEST(Entropy, ChiSquareSeparatesRandomFromStructured) {
  rng r(20);
  const bytes random = r.random_bytes(1 << 16);
  const double chi_rand = chi_square(random);
  EXPECT_GT(chi_rand, 180.0);
  EXPECT_LT(chi_rand, 340.0);
  const bytes structured(1 << 16, 0x11);
  EXPECT_GT(chi_square(structured), 1e6);
}

TEST(Entropy, SerialCorrelationDetectsSmoothness) {
  bytes ramp(4096);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<u8>(i / 16);
  EXPECT_GT(serial_correlation(ramp), 0.9);
  rng r(21);
  EXPECT_LT(std::abs(serial_correlation(r.random_bytes(1 << 16))), 0.02);
}

TEST(Entropy, RepeatedBlocksCensus) {
  bytes img(160, 0xEE);                 // 10 identical 16-byte blocks
  EXPECT_EQ(repeated_blocks(img, 16), 10u);
  rng r(22);
  const bytes rnd = r.random_bytes(160);
  EXPECT_EQ(repeated_blocks(rnd, 16), 0u);
}

} // namespace
} // namespace buscrypt::compress
