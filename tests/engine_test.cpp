// Keyslot-based bus-encryption engine: slot lifecycle, backend round-trips,
// address-derived IV uniqueness, RMW writes, fallback, and the Fig. 1
// session-key -> keyslot integration.

#include "common/rng.hpp"
#include "edu/engine_edu.hpp"
#include "edu/soc.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "keymgmt/session.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"

#include <gtest/gtest.h>

#include <string>

namespace buscrypt::engine {
namespace {

bytes key_for(const cipher_backend& b, rng& r) {
  // Smallest accepted key length <= 32 bytes.
  for (std::size_t len = 1; len <= 32; ++len)
    if (b.key_len_ok(len)) return r.random_bytes(len);
  ADD_FAILURE() << b.name() << ": no usable key length";
  return {};
}

keyslot_key make_key(std::string backend, u8 fill, std::size_t du = 32) {
  const backend_registry& reg = backend_registry::builtin();
  const cipher_backend& b = reg.at(backend);
  for (std::size_t len = 1; len <= 32; ++len)
    if (b.key_len_ok(len)) return {std::move(backend), bytes(len, fill), du};
  return {std::move(backend), bytes(16, fill), du};
}

// --- registry ---------------------------------------------------------------

TEST(BackendRegistry, BuiltinCoversTheCryptoLayer) {
  const backend_registry& reg = backend_registry::builtin();
  for (const char* name : {"aes-ecb", "aes-cbc", "aes-ctr", "des-cbc", "3des-cbc",
                           "3des-ctr", "best-ecb", "rc4-stream", "lfsr-stream",
                           "trivium-stream"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("rot13"), nullptr);
  EXPECT_THROW((void)reg.at("rot13"), std::out_of_range);
}

TEST(BackendRegistry, KeyLengthIsEnforced) {
  const cipher_backend& aes = backend_registry::builtin().at("aes-ctr");
  EXPECT_TRUE(aes.key_len_ok(16));
  EXPECT_FALSE(aes.key_len_ok(7));
  EXPECT_THROW((void)aes.make_keyed(bytes(7, 1)), std::invalid_argument);
}

// Round trip + determinism for every registered backend.
class EveryBackend : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBackend, UnitRoundTripAndDeterminism) {
  rng r(7);
  const cipher_backend& b = backend_registry::builtin().at(GetParam());
  const auto kc = b.make_keyed(key_for(b, r));

  // A unit length every granule divides (lcm of 1/8/16 = 16, use 64).
  const bytes pt = r.random_bytes(64);
  bytes ct(64), ct2(64), back(64);
  kc->encrypt_unit(5, pt, ct);
  kc->encrypt_unit(5, pt, ct2);
  EXPECT_EQ(ct, ct2) << "write-back re-encryption must reproduce ciphertext";
  kc->decrypt_unit(5, ct, back);
  EXPECT_EQ(back, pt);
  EXPECT_NE(ct, pt);
}

TEST_P(EveryBackend, AddressDerivedIvMakesUnitsDiffer) {
  rng r(8);
  const cipher_backend& b = backend_registry::builtin().at(GetParam());
  const auto kc = b.make_keyed(key_for(b, r));

  const bytes pt = r.random_bytes(64);
  bytes c0(64), c1(64);
  kc->encrypt_unit(0, pt, c0);
  kc->encrypt_unit(1, pt, c1);
  if (GetParam() == "aes-ecb" || GetParam() == "best-ecb") {
    // ECB ignores the DUN — the Section 2.2 weakness, kept on purpose.
    EXPECT_EQ(c0, c1);
  } else {
    EXPECT_NE(c0, c1) << "same plaintext at two addresses must not collide";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EveryBackend,
                         ::testing::Values("aes-ecb", "aes-cbc", "aes-ctr", "des-cbc",
                                           "3des-cbc", "3des-ctr", "best-ecb",
                                           "rc4-stream", "lfsr-stream", "trivium-stream"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

// --- keyslot manager --------------------------------------------------------

TEST(KeyslotManager, ProgramHitEvictReuse) {
  keyslot_manager mgr(backend_registry::builtin(), 2);
  const keyslot_key ka = make_key("aes-ctr", 0xA1);
  const keyslot_key kb = make_key("aes-ctr", 0xB2);
  const keyslot_key kc = make_key("3des-cbc", 0xC3);

  const int sa = mgr.acquire(ka);
  ASSERT_NE(sa, keyslot_manager::no_slot);
  EXPECT_EQ(mgr.stats().programs, 1u);
  mgr.release(sa);

  // Warm reuse: same key hits the same slot, no reprogram.
  const int sa2 = mgr.acquire(ka);
  EXPECT_EQ(sa2, sa);
  EXPECT_EQ(mgr.stats().hits, 1u);
  EXPECT_EQ(mgr.stats().programs, 1u);
  mgr.release(sa2);

  // Fill the pool, then a third key LRU-evicts the oldest idle slot (ka).
  const int sb = mgr.acquire(kb);
  mgr.release(sb);
  const int sc = mgr.acquire(kc);
  EXPECT_EQ(sc, sa) << "LRU victim should be the least-recently-used slot";
  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_EQ(mgr.stats().programs, 3u);
  mgr.release(sc);

  // ka was evicted: acquiring it again reprograms.
  const int sa3 = mgr.acquire(ka);
  EXPECT_EQ(mgr.stats().programs, 4u);
  mgr.release(sa3);
}

TEST(KeyslotManager, PinnedSlotsAreNotVictims) {
  keyslot_manager mgr(backend_registry::builtin(), 2);
  const keyslot_key ka = make_key("aes-ctr", 1);
  const keyslot_key kb = make_key("aes-ctr", 2);
  const keyslot_key kc = make_key("aes-ctr", 3);

  const int sa = mgr.acquire(ka); // pinned
  const int sb = mgr.acquire(kb);
  mgr.release(sb);                // idle

  const int sc = mgr.acquire(kc);
  EXPECT_EQ(sc, sb) << "only the idle slot may be evicted";
  EXPECT_EQ(mgr.slots_in_use(), 2u);

  // Everything pinned now: denial.
  EXPECT_EQ(mgr.acquire(kb), keyslot_manager::no_slot);
  EXPECT_EQ(mgr.stats().denials, 1u);
  mgr.release(sa);
  mgr.release(sc);
}

TEST(KeyslotManager, ExplicitEvictRespectsRefcounts) {
  keyslot_manager mgr(backend_registry::builtin(), 2);
  const keyslot_key ka = make_key("aes-ctr", 9);
  const int sa = mgr.acquire(ka);
  EXPECT_FALSE(mgr.evict(ka)) << "in-use keys must not be evictable";
  mgr.release(sa);
  EXPECT_TRUE(mgr.evict(ka));
  EXPECT_FALSE(mgr.evict(ka)) << "already gone";
  EXPECT_EQ(mgr.key_of(sa), nullptr);
}

TEST(KeyslotManager, RejectsBadConfigs) {
  EXPECT_THROW(keyslot_manager(backend_registry::builtin(), 0), std::invalid_argument);
  keyslot_manager mgr(backend_registry::builtin(), 1);
  EXPECT_THROW((void)mgr.acquire({"rot13", bytes(16, 0), 32}), std::out_of_range);
  EXPECT_THROW((void)mgr.acquire({"aes-ctr", bytes(3, 0), 32}), std::invalid_argument);
}

// --- engine datapath --------------------------------------------------------

struct engine_rig {
  sim::dram dram{1 << 20};
  sim::external_memory ext{dram};
  keyslot_manager slots{backend_registry::builtin(), 4};
  bus_encryption_engine eng{ext, slots};
};

TEST(BusEncryptionEngine, RoundTripThroughDram) {
  engine_rig rig;
  const auto ctx = rig.eng.create_context(make_key("aes-ctr", 0x11));
  rig.eng.map_region(0, 1 << 20, ctx);

  rng r(3);
  const bytes data = r.random_bytes(4096);
  (void)rig.eng.write(512, data);

  bytes back(4096);
  (void)rig.eng.read(512, back);
  EXPECT_EQ(back, data);

  // DRAM holds ciphertext, not plaintext.
  bytes raw(4096);
  (void)rig.ext.read(512, raw);
  EXPECT_NE(raw, data);
}

TEST(BusEncryptionEngine, PartialWritesReadModifyWrite) {
  engine_rig rig;
  const auto ctx = rig.eng.create_context(make_key("aes-cbc", 0x22, 32));
  rig.eng.map_region(0, 1 << 16, ctx);

  rng r(4);
  const bytes base = r.random_bytes(128);
  rig.eng.install(0, base);

  // 7-byte write straddling nothing: single-unit RMW.
  const bytes patch{1, 2, 3, 4, 5, 6, 7};
  (void)rig.eng.write(40, patch);
  EXPECT_EQ(rig.eng.stats().rmw_ops, 1u);

  // Straddle two units: head and tail RMW.
  (void)rig.eng.write(60, patch);
  EXPECT_EQ(rig.eng.stats().rmw_ops, 3u);

  bytes expect = base;
  for (std::size_t i = 0; i < 7; ++i) expect[40 + i] = patch[i];
  for (std::size_t i = 0; i < 7; ++i) expect[60 + i] = patch[i];
  bytes back(128);
  rig.eng.read_plain(0, back);
  EXPECT_EQ(back, expect);
}

TEST(BusEncryptionEngine, RegionsIsolateContextsAndPassthrough) {
  engine_rig rig;
  const auto aes = rig.eng.create_context(make_key("aes-ctr", 0x31));
  const auto tdes = rig.eng.create_context(make_key("3des-cbc", 0x32));
  rig.eng.map_region(0, 4096, aes);
  rig.eng.map_region(4096, 4096, tdes);
  // [8192, ...) stays unmapped: plaintext passthrough.

  rng r(5);
  const bytes img = r.random_bytes(12288);
  rig.eng.install(0, img);

  bytes back(12288);
  rig.eng.read_plain(0, back);
  EXPECT_EQ(back, img);

  bytes raw(12288);
  (void)rig.ext.read(0, raw);
  // Both protected regions differ from plaintext; the unmapped tail matches.
  EXPECT_NE(bytes(raw.begin(), raw.begin() + 4096), bytes(img.begin(), img.begin() + 4096));
  EXPECT_NE(bytes(raw.begin() + 4096, raw.begin() + 8192),
            bytes(img.begin() + 4096, img.begin() + 8192));
  EXPECT_EQ(bytes(raw.begin() + 8192, raw.end()), bytes(img.begin() + 8192, img.end()));

  // A timed access to the unmapped tail takes the passthrough path.
  bytes tail(64);
  (void)rig.eng.read(8192, tail);
  EXPECT_EQ(tail, bytes(img.begin() + 8192, img.begin() + 8256));
  EXPECT_GT(rig.eng.stats().passthrough, 0u);
}

TEST(BusEncryptionEngine, FallbackWhenPoolPinned) {
  sim::dram dram(1 << 16);
  sim::external_memory ext(dram);
  keyslot_manager slots(backend_registry::builtin(), 1);
  bus_encryption_engine eng(ext, slots);

  const auto ctx = eng.create_context(make_key("aes-ctr", 0x41));
  eng.map_region(0, 1 << 16, ctx);

  // Pin the only slot with an unrelated key, as a concurrent user would.
  const keyslot_key other = make_key("aes-ctr", 0x42);
  const int pinned = slots.acquire(other);
  ASSERT_NE(pinned, keyslot_manager::no_slot);

  const bytes data(64, 0x5A);
  (void)eng.write(0, data);
  EXPECT_GT(eng.stats().fallbacks, 0u);
  EXPECT_GT(slots.stats().denials, 0u);

  // Functional despite the fallback — and consistent with the slot path.
  slots.release(pinned);
  bytes back(64);
  (void)eng.read(0, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(eng.stats().fallbacks, 1u) << "released pool should serve from a slot again";
}

TEST(BusEncryptionEngine, FallbackDisabledThrows) {
  sim::dram dram(1 << 16);
  sim::external_memory ext(dram);
  keyslot_manager slots(backend_registry::builtin(), 1);
  engine_config cfg;
  cfg.allow_fallback = false;
  bus_encryption_engine eng(ext, slots, cfg);

  const auto ctx = eng.create_context(make_key("aes-ctr", 0x51));
  eng.map_region(0, 1 << 16, ctx);
  const int pinned = slots.acquire(make_key("aes-ctr", 0x52));
  ASSERT_NE(pinned, keyslot_manager::no_slot);

  bytes buf(32, 1);
  EXPECT_THROW((void)eng.write(0, buf), std::runtime_error);
  slots.release(pinned);
}

TEST(BusEncryptionEngine, ContextValidation) {
  engine_rig rig;
  EXPECT_THROW((void)rig.eng.create_context({"rot13", bytes(16, 0), 32}),
               std::out_of_range);
  EXPECT_THROW((void)rig.eng.create_context({"aes-ctr", bytes(5, 0), 32}),
               std::invalid_argument);
  // data unit must be a multiple of the cipher granule (8 for DES-CBC).
  EXPECT_THROW((void)rig.eng.create_context({"des-cbc", bytes(8, 0), 12}),
               std::invalid_argument);
  // CTR units above the per-DUN counter space would reuse keystream.
  EXPECT_THROW((void)rig.eng.create_context({"aes-ctr", bytes(16, 0), 2u << 20}),
               std::invalid_argument);
  // The largest safe CTR unit is accepted.
  EXPECT_NO_THROW((void)rig.eng.create_context({"aes-ctr", bytes(16, 0), 1u << 20}));
  EXPECT_THROW(rig.eng.map_region(0, 64, 99), std::out_of_range);

  const auto ctx = rig.eng.create_context(make_key("aes-ctr", 1));
  rig.eng.destroy_context(ctx);
  EXPECT_THROW(rig.eng.map_region(0, 64, ctx), std::out_of_range);
  EXPECT_THROW(rig.eng.destroy_context(ctx), std::out_of_range);
}

TEST(BusEncryptionEngine, SpanAtMatchesContextAt) {
  engine_rig rig;
  const auto a = rig.eng.create_context(make_key("aes-ctr", 1));
  const auto b = rig.eng.create_context(make_key("aes-ctr", 2));
  rig.eng.map_region(0, 256, a);
  rig.eng.map_region(64, 64, b);   // newer mapping carves out [64,128)
  rig.eng.map_region(512, 64, a);  // detached region further out

  // span_at must agree with byte-wise context_at at every position.
  for (addr_t addr = 0; addr < 640; ++addr) {
    const auto [ctx, n] = rig.eng.span_at(addr, 640 - addr);
    ASSERT_GE(n, 1u);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(rig.eng.context_at(addr + i), ctx) << "addr=" << addr << " i=" << i;
    if (addr + n < 640) {
      EXPECT_NE(rig.eng.context_at(addr + n), ctx) << "span ended early at " << addr;
    }
  }
}

TEST(BusEncryptionEngine, WarmSlotsAvoidReprogramming) {
  engine_rig rig;
  const auto ctx = rig.eng.create_context(make_key("aes-ctr", 0x61));
  rig.eng.map_region(0, 1 << 16, ctx);

  bytes line(32, 0xEE);
  (void)rig.eng.write(0, line);
  (void)rig.eng.write(32, line);
  (void)rig.eng.write(64, line);
  EXPECT_EQ(rig.slots.stats().programs, 1u);
  EXPECT_EQ(rig.slots.stats().hits, 2u);
}

// --- edu adapter + keymgmt integration --------------------------------------

TEST(EngineEdu, ActsAsInlineStageOnTheBus) {
  sim::dram dram(1 << 20);
  sim::external_memory ext(dram);
  edu::engine_edu_config cfg;
  cfg.backend = "trivium-stream";
  cfg.data_unit_size = 32;
  rng r(11);
  const bytes key = r.random_bytes(10);
  edu::engine_edu e(ext, key, cfg);
  EXPECT_EQ(e.name(), "Keyslot-trivium-stream");

  const bytes img = r.random_bytes(2048);
  e.install_image(0, img);
  bytes back(2048);
  e.read_image(0, back);
  EXPECT_EQ(back, img);

  bytes raw(2048);
  (void)ext.read(0, raw);
  EXPECT_NE(raw, img);

  bytes line(32);
  const cycles t = e.read(0, line);
  EXPECT_GT(t, 0u);
  EXPECT_GT(e.stats().cipher_blocks, 0u);
}

TEST(EngineEdu, SocEngineNameMatchesEduName) {
  edu::soc_config cfg;
  cfg.mem_size = 1u << 20;
  edu::secure_soc soc(edu::engine_kind::inline_keyslot, cfg);
  EXPECT_EQ(soc.engine().name(), edu::engine_name(edu::engine_kind::inline_keyslot));
}

TEST(SessionToKeyslot, Fig1SessionKeyProgramsTheEngine) {
  using namespace buscrypt::keymgmt;
  rng r(42);
  chip_manufacturer fab(r, 512);
  insecure_channel net;

  rng imgr(43);
  const bytes image = imgr.random_bytes(4096);
  software_editor editor(image);
  const software_package pkg = editor.deliver(fab.publish_public_key(net), net, r);

  sim::dram dram(1 << 20);
  sim::external_memory ext(dram);
  keyslot_manager slots(backend_registry::builtin(), 4);
  bus_encryption_engine eng(ext, slots);

  secure_processor proc(fab.provision_private_key());
  const auto ctx = proc.install_software(pkg, eng, 0x1000);

  // Installed image decrypts correctly and sits ciphered in DRAM.
  bytes back(image.size());
  eng.read_plain(0x1000, back);
  EXPECT_EQ(back, image);
  bytes raw(image.size());
  (void)ext.read(0x1000, raw);
  EXPECT_NE(raw, image);

  // The session key never crossed the channel in clear, and the engine's
  // context is keyed with exactly the recovered K.
  EXPECT_FALSE(channel_leaks(net, proc.last_session_key()));
  EXPECT_EQ(eng.context_key(ctx).key, proc.last_session_key());

  // Teardown evicts K from the pool.
  secure_processor::evict_session(eng, ctx);
  EXPECT_THROW((void)eng.context_key(ctx), std::out_of_range);
}

} // namespace
} // namespace buscrypt::engine
