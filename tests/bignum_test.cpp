// Arbitrary-precision integer tests: representation, arithmetic identities,
// Knuth-D division invariants, modular arithmetic.

#include "common/rng.hpp"
#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

bignum random_big(rng& r, std::size_t nbytes) {
  return bignum::from_bytes(r.random_bytes(nbytes));
}

TEST(Bignum, ZeroProperties) {
  const bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z, bignum{0});
}

TEST(Bignum, U64RoundTrip) {
  const bignum a{0xDEADBEEFCAFEF00DULL};
  EXPECT_EQ(a.low_u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(a.to_hex(), "deadbeefcafef00d");
  EXPECT_EQ(a.bit_length(), 64u);
}

TEST(Bignum, HexRoundTrip) {
  const char* h = "0123456789abcdef00112233445566778899aabbccddeeff";
  const bignum a = bignum::from_hex(h);
  EXPECT_EQ(a.to_hex(), std::string(h).substr(1)); // leading zero dropped
}

TEST(Bignum, BytesRoundTrip) {
  rng r(1);
  for (int i = 0; i < 20; ++i) {
    bytes raw = r.random_bytes(1 + r.below(64));
    raw[0] |= 0x80; // no leading zeros to lose
    const bignum a = bignum::from_bytes(raw);
    EXPECT_EQ(a.to_bytes(), raw);
  }
}

TEST(Bignum, ToBytesPadsToMinimum) {
  const bignum a{0x1234};
  const bytes padded = a.to_bytes(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[6], 0x12);
  EXPECT_EQ(padded[7], 0x34);
  EXPECT_EQ(padded[0], 0x00);
}

TEST(Bignum, ComparisonOrdering) {
  const bignum a{100}, b{200};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, bignum{100});
  const bignum big = bignum::from_hex("ffffffffffffffffff");
  EXPECT_GT(big, b);
}

TEST(Bignum, AddSubInverse) {
  rng r(2);
  for (int i = 0; i < 50; ++i) {
    const bignum a = random_big(r, 24);
    const bignum b = random_big(r, 16);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST(Bignum, SubtractionUnderflowThrows) {
  EXPECT_THROW((void)(bignum{1} - bignum{2}), std::domain_error);
}

TEST(Bignum, AdditionCarriesAcrossLimbs) {
  const bignum a = bignum::from_hex("ffffffffffffffffffffffff");
  const bignum one{1};
  EXPECT_EQ((a + one).to_hex(), "1000000000000000000000000");
}

TEST(Bignum, MultiplicationIdentities) {
  rng r(3);
  const bignum zero, one{1};
  for (int i = 0; i < 20; ++i) {
    const bignum a = random_big(r, 20);
    EXPECT_EQ(a * one, a);
    EXPECT_EQ(a * zero, zero);
    const bignum b = random_big(r, 20);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(Bignum, MultiplicationAgainstU64) {
  rng r(4);
  for (int i = 0; i < 100; ++i) {
    const u64 x = r.next_u32();
    const u64 y = r.next_u32();
    EXPECT_EQ((bignum{x} * bignum{y}).low_u64(), x * y);
  }
}

TEST(Bignum, ShiftRoundTrip) {
  rng r(5);
  for (int i = 0; i < 30; ++i) {
    const bignum a = random_big(r, 16);
    const std::size_t s = r.below(130);
    EXPECT_EQ(a.shifted_left(s).shifted_right(s), a);
  }
}

TEST(Bignum, DivModInvariant) {
  // The fundamental check: a == q*b + r with r < b, across sizes that
  // exercise the single-limb path, the add-back path and big operands.
  rng r(6);
  for (int i = 0; i < 200; ++i) {
    const bignum a = random_big(r, 1 + r.below(48));
    bignum b = random_big(r, 1 + r.below(24));
    if (b.is_zero()) b = bignum{1};
    const auto [q, rem] = bignum::divmod(a, b);
    EXPECT_EQ(q * b + rem, a);
    EXPECT_LT(rem, b);
  }
}

TEST(Bignum, DivisionByZeroThrows) {
  EXPECT_THROW((void)bignum::divmod(bignum{1}, bignum{}), std::domain_error);
}

TEST(Bignum, DivisionKnownValues) {
  const bignum a = bignum::from_hex("10000000000000000"); // 2^64
  const bignum b{3};
  const auto [q, rem] = bignum::divmod(a, b);
  EXPECT_EQ(q.to_hex(), "5555555555555555");
  EXPECT_EQ(rem, bignum{1});
}

TEST(Bignum, PowmodSmallCrossCheck) {
  // Against native arithmetic on small operands.
  rng r(7);
  for (int i = 0; i < 100; ++i) {
    const u64 base = 2 + r.below(1000);
    const u64 exp = r.below(20);
    const u64 mod = 2 + r.below(100'000);
    u64 expect = 1 % mod;
    for (u64 e = 0; e < exp; ++e) expect = (expect * base) % mod;
    EXPECT_EQ(bignum::powmod(bignum{base}, bignum{exp}, bignum{mod}).low_u64(), expect);
  }
}

TEST(Bignum, PowmodFermat) {
  // Fermat's little theorem for a decent-size prime: a^(p-1) = 1 mod p.
  const bignum p = bignum::from_hex("ffffffffffffffc5"); // largest 64-bit prime
  rng r(8);
  for (int i = 0; i < 10; ++i) {
    bignum a = random_big(r, 8) % p;
    if (a.is_zero()) a = bignum{2};
    EXPECT_EQ(bignum::powmod(a, p - bignum{1}, p), bignum{1});
  }
}

TEST(Bignum, GcdProperties) {
  EXPECT_EQ(bignum::gcd(bignum{12}, bignum{18}), bignum{6});
  EXPECT_EQ(bignum::gcd(bignum{17}, bignum{13}), bignum{1});
  EXPECT_EQ(bignum::gcd(bignum{}, bignum{5}), bignum{5});
  rng r(9);
  for (int i = 0; i < 20; ++i) {
    const bignum a = random_big(r, 12);
    const bignum b = random_big(r, 12);
    const bignum g = bignum::gcd(a, b);
    if (!g.is_zero()) {
      EXPECT_TRUE((a % g).is_zero());
      EXPECT_TRUE((b % g).is_zero());
    }
  }
}

TEST(Bignum, ModInverse) {
  rng r(10);
  const bignum m = bignum::from_hex("ffffffffffffffc5"); // prime modulus
  for (int i = 0; i < 30; ++i) {
    bignum a = random_big(r, 8) % m;
    if (a.is_zero()) a = bignum{3};
    const bignum inv = bignum::modinv(a, m);
    EXPECT_EQ(bignum::mulmod(a, inv, m), bignum{1});
  }
}

TEST(Bignum, ModInverseOfNonUnitThrows) {
  EXPECT_THROW((void)bignum::modinv(bignum{4}, bignum{8}), std::domain_error);
}

TEST(Bignum, MulModMatchesComposition) {
  rng r(11);
  const bignum m = random_big(r, 20) + bignum{5};
  for (int i = 0; i < 30; ++i) {
    const bignum a = random_big(r, 24);
    const bignum b = random_big(r, 24);
    EXPECT_EQ(bignum::mulmod(a, b, m), (a * b) % m);
  }
}

} // namespace
} // namespace buscrypt::crypto
