// Keyslot churn at scale: the Zipf context-storm generator (seeded
// determinism, rank-frequency slope, skew monotonicity), the churn fleet
// (thread-count/shuffle invariance, draw identity across policies), and
// the cross-policy equivalence sweeps — every engine x policy produces
// bit-identical DRAM, including under the tab8 multi-master domain
// workload. Policies may move telemetry and cycles, never bytes.

#include "edu/engine_edu.hpp"
#include "edu/soc.hpp"
#include "engine/churn.hpp"
#include "fleet/fleet.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace buscrypt {
namespace {

using engine::all_slot_policies;
using engine::churn_config;
using engine::churn_result;
using engine::slot_policy;
using engine::slot_policy_name;
using engine::zipf_sampler;

// --- the Zipf generator -----------------------------------------------------

TEST(ZipfGenerator, SeededDrawsAreDeterministic) {
  zipf_sampler a(10'000, 1.1, 0x5EEDULL);
  zipf_sampler b(10'000, 1.1, 0x5EEDULL);
  zipf_sampler c(10'000, 1.1, 0x5EEEULL);
  bool any_differ = false;
  for (int i = 0; i < 20'000; ++i) {
    const std::size_t da = a.next();
    EXPECT_EQ(da, b.next());
    if (da != c.next()) any_differ = true;
  }
  EXPECT_TRUE(any_differ) << "different seeds must give different storms";
}

TEST(ZipfGenerator, RejectsDegenerateParameters) {
  EXPECT_THROW(zipf_sampler(0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(zipf_sampler(10, -0.5, 1), std::invalid_argument);
}

/// Empirical skew estimate from rank-frequency pairs: for P(r) ~
/// (r+1)^-s, ln(f(a)/f(b)) = s * ln((b+1)/(a+1)). Averaged over a few
/// well-populated rank pairs.
double estimated_skew(double s, u64 seed) {
  constexpr std::size_t kRanks = 4096;
  constexpr std::size_t kDraws = 300'000;
  zipf_sampler z(kRanks, s, seed);
  std::vector<u64> count(kRanks, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++count[z.next()];

  const std::size_t pairs[3][2] = {{0, 15}, {1, 31}, {3, 63}};
  double acc = 0.0;
  for (const auto& p : pairs) {
    EXPECT_GT(count[p[0]], 0u);
    EXPECT_GT(count[p[1]], 0u);
    acc += std::log(static_cast<double>(count[p[0]]) /
                    static_cast<double>(count[p[1]])) /
           std::log(static_cast<double>(p[1] + 1) / static_cast<double>(p[0] + 1));
  }
  return acc / 3.0;
}

TEST(ZipfGenerator, RankFrequencySlopeTracksRequestedSkew) {
  EXPECT_NEAR(estimated_skew(0.8, 0xAB5EEDULL), 0.8, 0.15);
  EXPECT_NEAR(estimated_skew(1.2, 0xAB5EEDULL), 1.2, 0.15);
}

TEST(ZipfGenerator, HeadMassGrowsWithSkew) {
  double prev_mass = -1.0;
  for (const double s : {0.5, 1.0, 1.5}) {
    zipf_sampler z(2048, s, 0xFEEDULL);
    u64 head = 0;
    constexpr std::size_t kDraws = 100'000;
    for (std::size_t i = 0; i < kDraws; ++i)
      if (z.next() < 8) ++head;
    const double mass = static_cast<double>(head) / kDraws;
    EXPECT_GT(mass, prev_mass) << "top-8 mass must grow with s";
    prev_mass = mass;
  }
}

// --- churn cells and the fleet ----------------------------------------------

void expect_churn_consistent(const churn_result& r) {
  const engine::keyslot_stats& s = r.slots;
  EXPECT_EQ(s.programs, s.cold_programs + s.reprograms + s.prefetch_programs);
  EXPECT_EQ(s.acquires, s.hits + s.cold_programs + s.reprograms + s.denials);
  EXPECT_EQ(r.ops, s.acquires);
  EXPECT_EQ(r.fallbacks, s.denials);
  EXPECT_GE(r.warm_hit_rate(), 0.0);
  EXPECT_LE(r.warm_hit_rate(), 1.0);
  EXPECT_EQ(r.stall_cycles,
            (s.cold_programs + s.reprograms) * 40); // default program cost
}

std::vector<churn_config> policy_grid() {
  std::vector<churn_config> cells;
  for (const slot_policy p : all_slot_policies) {
    churn_config c;
    c.contexts = 3000;
    c.ops = 6000;
    c.zipf_s = 1.1;
    c.slots = 8;
    c.in_flight = 4;
    c.policy = p;
    c.seed = 0xC0117EULL;
    cells.push_back(c);
  }
  return cells;
}

TEST(ChurnFleet, ThreadCountAndShuffleNeverChangeResults) {
  fleet::churn_fleet_config serial;
  serial.cells = policy_grid();
  serial.threads = 1;

  fleet::churn_fleet_config pooled = serial;
  pooled.threads = 4;
  pooled.shuffle = true;
  pooled.shuffle_seed = 0xD15C0ULL;

  const fleet::churn_fleet_result a = fleet::run_churn_fleet(serial);
  const fleet::churn_fleet_result b = fleet::run_churn_fleet(pooled);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE(a.cells[i].label);
    EXPECT_TRUE(a.cells[i].sim_equal(b.cells[i]))
        << "churn cell diverged across thread counts";
    EXPECT_EQ(a.cells[i].draw_fnv, b.cells[i].draw_fnv)
        << "draw sequence must be identical on any worker count";
    expect_churn_consistent(a.cells[i]);
  }
}

TEST(ChurnFleet, PoliciesShareDrawsAndDifferOnlyInTelemetry) {
  const fleet::churn_fleet_result r =
      fleet::run_churn_fleet({policy_grid(), 1, false, 0});
  ASSERT_EQ(r.cells.size(), all_slot_policies.size());
  for (std::size_t i = 1; i < r.cells.size(); ++i) {
    EXPECT_EQ(r.cells[i].draw_fnv, r.cells[0].draw_fnv)
        << "same seed, same storm, whatever the policy";
    EXPECT_EQ(r.cells[i].ops, r.cells[0].ops);
    EXPECT_EQ(r.cells[i].bytes, r.cells[0].bytes);
  }
  // The prefetch cell actually prefetched under a skewed storm.
  EXPECT_GT(r.cells[3].slots.prefetch_programs, 0u);
}

TEST(ChurnFleet, SaturatedPoolFallsBackAndRoomyPoolDoesNot) {
  churn_config tight;
  tight.contexts = 2000;
  tight.ops = 4000;
  tight.zipf_s = 0.9;
  tight.slots = 4;
  tight.in_flight = 4; // misses find every slot pinned
  churn_config roomy = tight;
  roomy.slots = 16; // in_flight 4 can never pin 16 slots

  const churn_result a = engine::run_churn(tight);
  const churn_result b = engine::run_churn(roomy);
  EXPECT_GT(a.fallbacks, 0u);
  EXPECT_EQ(b.fallbacks, 0u);
  expect_churn_consistent(a);
  expect_churn_consistent(b);
  EXPECT_GT(b.warm_hit_rate(), a.warm_hit_rate() - 1e-12)
      << "a larger pool never hits less on the same storm";
}

// --- cross-policy equivalence sweeps (bit-identical DRAM) -------------------

TEST(KeyslotPolicySweep, EveryEngineEveryPolicyDramBitIdentical) {
  for (const edu::engine_kind kind : edu::all_engines()) {
    fleet::fleet_cell proto;
    proto.kind = kind;
    proto.accesses = 1500;
    proto.footprint = 96 * 1024;
    proto.seed = 0x5EC5EEDULL;
    if (kind == edu::engine_kind::inline_keyslot)
      proto.keyslot_slots = 2; // small pool: evictions actually happen

    const fleet::cell_result ref = fleet::run_cell(proto);
    for (const slot_policy p : all_slot_policies) {
      if (p == slot_policy::lru) continue;
      fleet::fleet_cell cell = proto;
      cell.policy = p;
      const fleet::cell_result got = fleet::run_cell(cell);
      SCOPED_TRACE(got.label);
      EXPECT_EQ(got.dram_fnv, ref.dram_fnv)
          << "policy changed ciphertext for " << edu::engine_name(kind);
      EXPECT_EQ(got.bytes, ref.bytes);
      EXPECT_EQ(got.edu.reads, ref.edu.reads);
      EXPECT_EQ(got.edu.writes, ref.edu.writes);
      EXPECT_EQ(got.integrity_faults, 0u);
      EXPECT_EQ(got.domain_faults, 0u);
    }
  }
}

// The tab8 multi-master mix with keyslot domains: CPU compute, DMA bulk
// copy in its own domain, peripheral polling — against a deliberately
// tiny pool so domain contexts churn through it. Every policy must leave
// the exact same DRAM image and fault nobody.
TEST(KeyslotPolicySweep, MultiMasterDomainStormIsPolicyInvariant) {
  constexpr addr_t kDmaSrc = 2u << 20;
  constexpr addr_t kDmaDst = (2u << 20) + (1u << 19);
  constexpr addr_t kPeriphRegs = 3u << 20;

  const auto scenario = [] {
    std::vector<edu::master_desc> m(3);
    m[0].role = edu::master_kind::cpu;
    m[0].work = sim::make_data_rw(3000, 64 * 1024, 0.5, 0.4, 8, 0xC0FFEE);
    m[1].role = edu::master_kind::dma;
    m[1].work = sim::make_dma_copy(32 * 1024, kDmaSrc, kDmaDst, 128, 0xD0);
    m[1].priority = 1;
    m[1].domain_base = kDmaSrc;
    m[1].domain_len = 1u << 20;
    m[2].role = edu::master_kind::peripheral;
    m[2].work = sim::make_peripheral_poll(1500, kPeriphRegs, 8, 64, 16, 0x9E);
    m[2].priority = 9;
    return m;
  }();

  bytes image(64 * 1024);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<u8>(i * 13 + 5);

  bytes ref_dram;
  for (const slot_policy p : all_slot_policies) {
    edu::soc_config cfg;
    cfg.l1.size = 4 * 1024;
    cfg.l1.line_size = 32;
    cfg.l1.ways = 2;
    cfg.mem_size = 4u << 20;
    cfg.mem_timing.banks = 4;
    cfg.keyslot_policy = p;
    cfg.keyslot_slots = 2; // default ctx + DMA domain ctx contend hard

    edu::secure_soc soc(edu::engine_kind::inline_keyslot, cfg);
    soc.load_image(0, image);
    (void)soc.run_multi_master(scenario, {});
    soc.flush();

    const engine::engine_stats& es =
        static_cast<edu::engine_edu&>(soc.engine()).engine().stats();
    EXPECT_EQ(es.integrity_faults, 0u) << slot_policy_name(p);
    EXPECT_EQ(es.domain_faults, 0u) << slot_policy_name(p);

    const std::span<const u8> raw = soc.memory().raw();
    if (ref_dram.empty()) {
      ref_dram.assign(raw.begin(), raw.end());
    } else {
      EXPECT_TRUE(std::equal(raw.begin(), raw.end(), ref_dram.begin()))
          << "multi-master DRAM diverged under policy " << slot_policy_name(p);
    }
  }
}

} // namespace
} // namespace buscrypt
