// RSA: primality, keygen, raw exponentiation, key wrapping.

#include "common/rng.hpp"
#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace buscrypt::crypto {
namespace {

TEST(Primality, KnownPrimesAndComposites) {
  rng r(1);
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 65537ull, 2147483647ull})
    EXPECT_TRUE(is_probable_prime(bignum{p}, r)) << p;
  for (u64 c : {1ull, 4ull, 9ull, 561ull /*Carmichael*/, 65536ull, 2147483647ull * 3})
    EXPECT_FALSE(is_probable_prime(bignum{c}, r)) << c;
}

TEST(Primality, LargeKnownPrime) {
  rng r(2);
  // 2^127 - 1 (Mersenne prime).
  const bignum m127 = bignum::from_hex("7fffffffffffffffffffffffffffffff");
  EXPECT_TRUE(is_probable_prime(m127, r));
  EXPECT_FALSE(is_probable_prime(m127 * bignum{3}, r));
}

TEST(Primality, GeneratedPrimesHaveExactBitLength) {
  rng r(3);
  for (unsigned bits : {16u, 24u, 48u, 96u}) {
    const bignum p = generate_prime(r, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
  }
}

TEST(Rsa, KeygenAndRawRoundTrip) {
  rng r(4);
  const rsa_keypair kp = rsa_generate(r, 256);
  EXPECT_GE(kp.pub.n.bit_length(), 250u);

  const bignum msg{0x123456789ULL};
  const bignum ct = rsa_encrypt_raw(kp.pub, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(rsa_decrypt_raw(kp.priv, ct), msg);
}

TEST(Rsa, MessageAboveModulusRejected) {
  rng r(5);
  const rsa_keypair kp = rsa_generate(r, 128);
  EXPECT_THROW((void)rsa_encrypt_raw(kp.pub, kp.pub.n + bignum{1}),
               std::invalid_argument);
}

TEST(Rsa, WrapUnwrapSessionKey) {
  rng r(6);
  const rsa_keypair kp = rsa_generate(r, 384);
  const bytes k = r.random_bytes(16);
  const bytes wrapped = rsa_wrap_key(kp.pub, k, r);
  EXPECT_EQ(wrapped.size(), kp.pub.modulus_bytes());
  EXPECT_EQ(rsa_unwrap_key(kp.priv, wrapped), k);
}

TEST(Rsa, WrappingIsRandomized) {
  rng r(7);
  const rsa_keypair kp = rsa_generate(r, 384);
  const bytes k = r.random_bytes(16);
  EXPECT_NE(rsa_wrap_key(kp.pub, k, r), rsa_wrap_key(kp.pub, k, r));
}

TEST(Rsa, OversizedKeyRejected) {
  rng r(8);
  const rsa_keypair kp = rsa_generate(r, 128); // 16-byte modulus
  EXPECT_THROW((void)rsa_wrap_key(kp.pub, r.random_bytes(8), r),
               std::invalid_argument);
}

TEST(Rsa, CorruptedWrapDetected) {
  rng r(9);
  const rsa_keypair kp = rsa_generate(r, 384);
  const bytes k = r.random_bytes(16);
  bytes wrapped = rsa_wrap_key(kp.pub, k, r);
  wrapped[wrapped.size() / 2] ^= 0x01;
  // Either the padding check fires or the key comes back wrong.
  try {
    const bytes out = rsa_unwrap_key(kp.priv, wrapped);
    EXPECT_NE(out, k);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Rsa, WrongPrivateKeyFails) {
  rng r(10);
  const rsa_keypair kp1 = rsa_generate(r, 384);
  const rsa_keypair kp2 = rsa_generate(r, 384);
  const bytes k = r.random_bytes(16);
  const bytes wrapped = rsa_wrap_key(kp1.pub, k, r);
  try {
    EXPECT_NE(rsa_unwrap_key(kp2.priv, wrapped), k);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Rsa, KeygenValidatesArguments) {
  rng r(11);
  EXPECT_THROW((void)rsa_generate(r, 63), std::invalid_argument);
  EXPECT_THROW((void)rsa_generate(r, 129), std::invalid_argument);
}

TEST(Rsa, CiphertextLongerThanPlaintext) {
  // Section 2.2's point: "ciphered text is longer than the original clear
  // text; larger memories are thus needed".
  rng r(12);
  const rsa_keypair kp = rsa_generate(r, 256);
  const bytes k = r.random_bytes(8);
  const bytes wrapped = rsa_wrap_key(kp.pub, k, r);
  EXPECT_GT(wrapped.size(), k.size());
}

} // namespace
} // namespace buscrypt::crypto
