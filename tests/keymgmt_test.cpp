// The Fig. 1 protocol end-to-end, with the eavesdropper's view checked.

#include "keymgmt/session.hpp"

#include <gtest/gtest.h>

namespace buscrypt::keymgmt {
namespace {

bytes make_software(std::size_t n, u64 seed) {
  rng r(seed);
  bytes sw = r.random_bytes(n);
  const char* banner = "FIRMWARE IMAGE (c) SOFTWARE EDITOR ";
  for (std::size_t i = 0; i < 35 && i < sw.size(); ++i)
    sw[i] = static_cast<u8>(banner[i]);
  return sw;
}

TEST(Session, EndToEndDelivery) {
  rng r(1);
  const chip_manufacturer maker(r, 384);
  const software_editor editor(make_software(1000, 2));
  const secure_processor proc(maker.provision_private_key());

  insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  const software_package pkg = editor.deliver(em, ch, r);
  const bytes installed = proc.receive(pkg);
  EXPECT_EQ(installed, editor.plaintext_image());
}

TEST(Session, ChannelNeverCarriesSessionKeyInClear) {
  rng r(3);
  const chip_manufacturer maker(r, 384);
  const software_editor editor(make_software(600, 4));
  const secure_processor proc(maker.provision_private_key());

  insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  const software_package pkg = editor.deliver(em, ch, r);
  const bytes installed = proc.receive(pkg);
  ASSERT_EQ(installed, editor.plaintext_image());

  // The eavesdropper saw every message; neither K nor the plaintext
  // software appears in any of them.
  EXPECT_FALSE(channel_leaks(ch, proc.last_session_key()));
  EXPECT_FALSE(channel_leaks(
      ch, std::span<const u8>(editor.plaintext_image()).subspan(0, 35)));
}

TEST(Session, ChannelSeesExpectedMessages) {
  rng r(5);
  const chip_manufacturer maker(r, 384);
  const software_editor editor(make_software(100, 6));
  insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  (void)editor.deliver(em, ch, r);
  ASSERT_EQ(ch.log().size(), 4u); // Em, wrapped K, IV, ciphered software
  EXPECT_NE(ch.log()[0].label.find("Em"), std::string::npos);
  EXPECT_NE(ch.log()[1].label.find("wrapped"), std::string::npos);
}

TEST(Session, WrongProcessorCannotDecrypt) {
  rng r(7);
  const chip_manufacturer maker_a(r, 384);
  const chip_manufacturer maker_b(r, 384);
  const software_editor editor(make_software(200, 8));
  const secure_processor wrong(maker_b.provision_private_key());

  insecure_channel ch;
  const auto em_a = maker_a.publish_public_key(ch);
  const software_package pkg = editor.deliver(em_a, ch, r);
  // Unwrap either throws on padding or yields a wrong key that fails the
  // PKCS#7 check on the image.
  EXPECT_THROW((void)wrong.receive(pkg), std::invalid_argument);
}

TEST(Session, TamperedPackageDetected) {
  rng r(9);
  const chip_manufacturer maker(r, 384);
  const software_editor editor(make_software(300, 10));
  const secure_processor proc(maker.provision_private_key());

  insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  software_package pkg = editor.deliver(em, ch, r);
  pkg.ciphered_image[50] ^= 0x01;
  try {
    const bytes out = proc.receive(pkg);
    EXPECT_NE(out, editor.plaintext_image()); // garbled at minimum
  } catch (const std::invalid_argument&) {
    SUCCEED(); // padding check fired
  }
}

TEST(Session, FreshSessionKeysPerDelivery) {
  rng r(11);
  const chip_manufacturer maker(r, 384);
  const software_editor editor(make_software(100, 12));
  const secure_processor proc(maker.provision_private_key());

  insecure_channel ch;
  const auto em = maker.publish_public_key(ch);
  (void)proc.receive(editor.deliver(em, ch, r));
  const bytes k1 = proc.last_session_key();
  (void)proc.receive(editor.deliver(em, ch, r));
  const bytes k2 = proc.last_session_key();
  EXPECT_NE(k1, k2);
}

} // namespace
} // namespace buscrypt::keymgmt
