#pragma once
/// \file bitops.hpp
/// Bit- and byte-level helpers used by the cipher cores and the simulator.
/// Everything here is constexpr and allocation-free; cipher round functions
/// are built exclusively from these primitives.

#include "common/types.hpp"

#include <bit>
#include <cstddef>
#include <cstring>
#include <span>

namespace buscrypt {

/// Rotate a 32-bit word left by \p n (n in [0,31]).
[[nodiscard]] constexpr u32 rotl32(u32 x, unsigned n) noexcept {
  return std::rotl(x, static_cast<int>(n));
}

/// Rotate a 32-bit word right by \p n (n in [0,31]).
[[nodiscard]] constexpr u32 rotr32(u32 x, unsigned n) noexcept {
  return std::rotr(x, static_cast<int>(n));
}

/// Rotate a 64-bit word left by \p n.
[[nodiscard]] constexpr u64 rotl64(u64 x, unsigned n) noexcept {
  return std::rotl(x, static_cast<int>(n));
}

/// Rotate a 64-bit word right by \p n.
[[nodiscard]] constexpr u64 rotr64(u64 x, unsigned n) noexcept {
  return std::rotr(x, static_cast<int>(n));
}

/// Load a big-endian 32-bit word from 4 bytes.
[[nodiscard]] constexpr u32 load_be32(const u8* p) noexcept {
  return (u32{p[0]} << 24) | (u32{p[1]} << 16) | (u32{p[2]} << 8) | u32{p[3]};
}

/// Store a 32-bit word as 4 big-endian bytes.
constexpr void store_be32(u8* p, u32 v) noexcept {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

/// Load a big-endian 64-bit word from 8 bytes.
[[nodiscard]] constexpr u64 load_be64(const u8* p) noexcept {
  return (u64{load_be32(p)} << 32) | u64{load_be32(p + 4)};
}

/// Store a 64-bit word as 8 big-endian bytes.
constexpr void store_be64(u8* p, u64 v) noexcept {
  store_be32(p, static_cast<u32>(v >> 32));
  store_be32(p + 4, static_cast<u32>(v));
}

/// Load a little-endian 32-bit word from 4 bytes.
[[nodiscard]] constexpr u32 load_le32(const u8* p) noexcept {
  return u32{p[0]} | (u32{p[1]} << 8) | (u32{p[2]} << 16) | (u32{p[3]} << 24);
}

/// Store a 32-bit word as 4 little-endian bytes.
constexpr void store_le32(u8* p, u32 v) noexcept {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
  p[2] = static_cast<u8>(v >> 16);
  p[3] = static_cast<u8>(v >> 24);
}

/// Load a little-endian 64-bit word from 8 bytes.
[[nodiscard]] constexpr u64 load_le64(const u8* p) noexcept {
  return u64{load_le32(p)} | (u64{load_le32(p + 4)} << 32);
}

/// Store a 64-bit word as 8 little-endian bytes.
constexpr void store_le64(u8* p, u64 v) noexcept {
  store_le32(p, static_cast<u32>(v));
  store_le32(p + 4, static_cast<u32>(v >> 32));
}

/// XOR \p src into \p dst element-wise; buffers must be the same length.
/// Runs u64-at-a-time over the aligned body (memcpy keeps it well-defined
/// for any alignment and lets the compiler emit vector loads) with a byte
/// tail, so pad/payload XORs are not byte loops.
inline void xor_bytes(std::span<u8> dst, std::span<const u8> src) noexcept {
  const std::size_t n = dst.size() < src.size() ? dst.size() : src.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    u64 a, b;
    std::memcpy(&a, dst.data() + i, 8);
    std::memcpy(&b, src.data() + i, 8);
    a ^= b;
    std::memcpy(dst.data() + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// dst = a ^ b element-wise over min of the three lengths; dst may alias
/// either input. Same u64-wide body as xor_bytes.
inline void xor_bytes(std::span<u8> dst, std::span<const u8> a,
                      std::span<const u8> b) noexcept {
  std::size_t n = dst.size() < a.size() ? dst.size() : a.size();
  n = n < b.size() ? n : b.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    u64 x, y;
    std::memcpy(&x, a.data() + i, 8);
    std::memcpy(&y, b.data() + i, 8);
    x ^= y;
    std::memcpy(dst.data() + i, &x, 8);
  }
  for (; i < n; ++i) dst[i] = static_cast<u8>(a[i] ^ b[i]);
}

/// Number of set bits across a byte buffer (used by avalanche tests).
[[nodiscard]] inline std::size_t popcount_bytes(std::span<const u8> s) noexcept {
  std::size_t n = 0;
  for (u8 b : s) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

/// Hamming distance in bits between two equal-length buffers.
[[nodiscard]] inline std::size_t hamming_bits(std::span<const u8> a,
                                              std::span<const u8> b) noexcept {
  std::size_t n = 0;
  const std::size_t len = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < len; ++i)
    n += static_cast<std::size_t>(std::popcount(static_cast<u8>(a[i] ^ b[i])));
  return n;
}

/// True when \p x is a power of two (and non-zero). Cache geometry checks.
[[nodiscard]] constexpr bool is_pow2(u64 x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(u64 x) noexcept {
  return static_cast<unsigned>(std::countr_zero(x));
}

} // namespace buscrypt
