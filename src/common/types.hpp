#pragma once
/// \file types.hpp
/// Fundamental aliases shared by every buscrypt subsystem.

#include <cstdint>
#include <vector>

namespace buscrypt {

/// Raw byte as used on the bus and in memory images.
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Simulated clock cycles. Signed arithmetic is never needed; overflows at
/// 2^64 cycles are outside any simulation horizon we run.
using cycles = std::uint64_t;

/// Physical address on the processor-memory bus.
using addr_t = std::uint64_t;

/// Mutable byte buffer (memory images, plaintext/ciphertext).
using bytes = std::vector<u8>;

} // namespace buscrypt
