#include "common/rng.hpp"

#include "common/bitops.hpp"

namespace buscrypt {

namespace {

u64 splitmix64(u64& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

} // namespace

rng::rng(u64 seed) noexcept {
  u64 s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

u64 rng::next_u64() noexcept {
  const u64 result = rotl64(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

u64 rng::below(u64 bound) noexcept {
  // Rejection sampling on the top of the range to kill modulo bias.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

bool rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit uniform double in [0,1).
  const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  return u < p;
}

void rng::fill(std::span<u8> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    store_le64(&out[i], next_u64());
    i += 8;
  }
  if (i < out.size()) {
    u64 last = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<u8>(last);
      last >>= 8;
    }
  }
}

bytes rng::random_bytes(std::size_t n) {
  bytes out(n);
  fill(out);
  return out;
}

} // namespace buscrypt
