#include "common/hex.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace buscrypt {

namespace {

constexpr char k_digits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}

} // namespace

std::string to_hex(std::span<const u8> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 b : data) {
    out.push_back(k_digits[b >> 4]);
    out.push_back(k_digits[b & 0xF]);
  }
  return out;
}

bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd-length input");
  bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<u8>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::string hexdump(std::span<const u8> data, addr_t base) {
  std::ostringstream os;
  for (std::size_t row = 0; row < data.size(); row += 16) {
    char addr_buf[20];
    std::snprintf(addr_buf, sizeof addr_buf, "%08llx  ",
                  static_cast<unsigned long long>(base + row));
    os << addr_buf;
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < data.size()) {
        const u8 b = data[row + col];
        os << k_digits[b >> 4] << k_digits[b & 0xF] << ' ';
      } else {
        os << "   ";
      }
      if (col == 7) os << ' ';
    }
    os << " |";
    for (std::size_t col = 0; col < 16 && row + col < data.size(); ++col) {
      const u8 b = data[row + col];
      os << (std::isprint(b) ? static_cast<char>(b) : '.');
    }
    os << "|\n";
  }
  return os.str();
}

} // namespace buscrypt
