#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random source for workload generation, key material
/// in tests, and Monte-Carlo attack experiments. xoshiro256** — fast, tiny,
/// and reproducible across platforms (unlike std::mt19937 distributions).
///
/// This RNG is NOT a CSPRNG and is never used as one: production key
/// generation is out of the survey's scope; tests and simulations only need
/// reproducibility.

#include "common/types.hpp"

#include <span>

namespace buscrypt {

/// xoshiro256** by Blackman & Vigna. Seeded via splitmix64 so that any
/// 64-bit seed (including 0) yields a well-mixed state.
class rng {
 public:
  explicit rng(u64 seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit output.
  [[nodiscard]] u64 next_u64() noexcept;

  /// Uniform 32-bit output.
  [[nodiscard]] u32 next_u32() noexcept { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform byte.
  [[nodiscard]] u8 next_byte() noexcept { return static_cast<u8>(next_u64() >> 56); }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling so the distribution is exactly uniform.
  [[nodiscard]] u64 below(u64 bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] u64 between(u64 lo, u64 hi) noexcept { return lo + below(hi - lo + 1); }

  /// Bernoulli trial with probability \p p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fill a buffer with pseudo-random bytes.
  void fill(std::span<u8> out) noexcept;

  /// Convenience: a fresh pseudo-random byte vector of length \p n.
  [[nodiscard]] bytes random_bytes(std::size_t n);

 private:
  u64 state_[4];
};

} // namespace buscrypt
