#pragma once
/// \file hex.hpp
/// Hex encoding/decoding for test vectors and human-readable dumps.

#include "common/types.hpp"

#include <span>
#include <string>
#include <string_view>

namespace buscrypt {

/// Encode a byte buffer as lowercase hex ("deadbeef").
[[nodiscard]] std::string to_hex(std::span<const u8> data);

/// Decode a hex string (case-insensitive, no separators) into bytes.
/// \throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] bytes from_hex(std::string_view hex);

/// Classic 16-bytes-per-row hexdump with an ASCII gutter, for examples
/// that display bus traffic and memory images.
[[nodiscard]] std::string hexdump(std::span<const u8> data, addr_t base = 0);

} // namespace buscrypt
