#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

namespace buscrypt {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != ',' && c != 'e' && c != 'x')
      return false;
  }
  return true;
}

} // namespace

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const std::size_t pad = widths[c] - cell.size();
      const bool right = align_numeric && looks_numeric(cell);
      os << ' ';
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  emit(headers_, false);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

std::string table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string table::num(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(raw[i]);
    const std::size_t rem = n - 1 - i;
    if (rem != 0 && rem % 3 == 0) out.push_back(',');
  }
  return out;
}

std::string table::pct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", digits, ratio * 100.0);
  return buf;
}

} // namespace buscrypt
