#pragma once
/// \file table.hpp
/// Minimal console table formatter used by the benchmark harnesses to print
/// the rows/series each paper figure or table reports. Right-aligns numbers,
/// left-aligns text, pads columns to content width.

#include <string>
#include <vector>

namespace buscrypt {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class table {
 public:
  /// Define the header row. Must be called before add_row.
  explicit table(std::vector<std::string> headers);

  /// Append a data row; missing cells render empty, extras are dropped.
  void add_row(std::vector<std::string> cells);

  /// Render with a header separator. Each call reflows column widths.
  [[nodiscard]] std::string str() const;

  /// Format a double with \p digits decimals (helper for callers).
  [[nodiscard]] static std::string num(double v, int digits = 2);

  /// Format an integer with thousands separators ("12,345,678").
  [[nodiscard]] static std::string num(unsigned long long v);

  /// Format a ratio as a percentage string with sign ("+25.0%").
  [[nodiscard]] static std::string pct(double ratio, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace buscrypt
