#include "keymgmt/session.hpp"

#include "crypto/modes.hpp"

#include <algorithm>

namespace buscrypt::keymgmt {

chip_manufacturer::chip_manufacturer(rng& r, unsigned modulus_bits)
    : keys_(crypto::rsa_generate(r, modulus_bits)) {}

crypto::rsa_public_key chip_manufacturer::publish_public_key(insecure_channel& ch) const {
  // Em is public by design; sending it in clear is part of the protocol.
  bytes em_bytes = keys_.pub.n.to_bytes();
  ch.send("manufacturer->editor: Em (public key)", em_bytes);
  return keys_.pub;
}

software_package software_editor::deliver(const crypto::rsa_public_key& em,
                                          insecure_channel& ch, rng& r) const {
  software_package pkg;

  // Session key K — symmetric, chosen per delivery.
  bytes k = r.random_bytes(16);
  pkg.wrapped_session_key = crypto::rsa_wrap_key(em, k, r);

  pkg.iv = r.random_bytes(16);
  const crypto::aes session_cipher(k);
  const bytes padded = crypto::pkcs7_pad(image_, 16);
  pkg.ciphered_image.resize(padded.size());
  crypto::cbc_encrypt(session_cipher, pkg.iv, padded, pkg.ciphered_image);

  ch.send("editor->processor: K wrapped under Em", pkg.wrapped_session_key);
  ch.send("editor->processor: IV", pkg.iv);
  ch.send("editor->processor: software under K", pkg.ciphered_image);
  return pkg;
}

bytes secure_processor::receive(const software_package& pkg) const {
  last_key_ = crypto::rsa_unwrap_key(dm_, pkg.wrapped_session_key);
  const crypto::aes session_cipher(last_key_);
  bytes padded(pkg.ciphered_image.size());
  crypto::cbc_decrypt(session_cipher, pkg.iv, pkg.ciphered_image, padded);
  return crypto::pkcs7_unpad(padded, 16);
}

engine::bus_encryption_engine::context_id
secure_processor::install_software(const software_package& pkg,
                                   engine::bus_encryption_engine& eng, addr_t base,
                                   std::string backend, std::size_t data_unit_size) const {
  const bytes image = receive(pkg);
  const auto ctx =
      eng.create_context({std::move(backend), last_key_, data_unit_size});
  eng.map_region(base, image.size(), ctx);
  eng.install(base, image);
  return ctx;
}

bool channel_leaks(const insecure_channel& ch, std::span<const u8> secret) {
  if (secret.empty()) return false;
  for (const channel_message& m : ch.log()) {
    const auto it = std::search(m.payload.begin(), m.payload.end(),
                                secret.begin(), secret.end());
    if (it != m.payload.end()) return true;
  }
  return false;
}

} // namespace buscrypt::keymgmt
