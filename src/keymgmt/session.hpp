#pragma once
/// \file session.hpp
/// The Fig. 1 secret-key exchange protocol, actor by actor:
///   1. the chip manufacturer provisions a private key Dm into the
///      processor's on-chip NVM and publishes Em;
///   2. the processor requests the session key K from the software editor;
///   3-4. the editor obtains Em and sends K wrapped under Em over the
///      insecure channel;
///   5. only the processor can unwrap K with Dm;
///   6. the processor uses K (symmetric) to decipher the software and
///      install it in external memory (through its EDU).
/// Every message crosses an insecure_channel that records the
/// eavesdropper's complete view.

#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "engine/bus_encryption_engine.hpp"

#include <string>
#include <vector>

namespace buscrypt::keymgmt {

/// A message as seen by an eavesdropper on the distribution network.
struct channel_message {
  std::string label;
  bytes payload;
};

/// The non-secure transmission channel: everything sent is observable.
class insecure_channel {
 public:
  void send(std::string label, bytes payload) {
    log_.push_back({std::move(label), std::move(payload)});
  }
  [[nodiscard]] const std::vector<channel_message>& log() const noexcept { return log_; }

 private:
  std::vector<channel_message> log_;
};

/// What the editor ships: the wrapped session key and the ciphered image.
struct software_package {
  bytes wrapped_session_key; ///< K under Em (asymmetric)
  bytes iv;                  ///< CBC IV for the image
  bytes ciphered_image;      ///< software under K (symmetric, AES-CBC+PKCS7)
};

/// Holds the device keypair; provisions processors and answers Em requests.
class chip_manufacturer {
 public:
  /// Generate the device keypair (Em, Dm).
  chip_manufacturer(rng& r, unsigned modulus_bits);

  /// Step 3: the editor requests Em; it travels in clear on the channel.
  [[nodiscard]] crypto::rsa_public_key publish_public_key(insecure_channel& ch) const;

  /// Factory-time provisioning of Dm (does NOT cross the channel).
  [[nodiscard]] const crypto::rsa_private_key& provision_private_key() const noexcept {
    return keys_.priv;
  }

 private:
  crypto::rsa_keypair keys_;
};

/// Owns the plaintext software; wraps K under Em and ships the package.
class software_editor {
 public:
  explicit software_editor(bytes software_image)
      : image_(std::move(software_image)) {}

  /// Steps 4 and 6-prep: pick K, cipher the software with it, wrap K under
  /// Em, send everything over the channel.
  [[nodiscard]] software_package deliver(const crypto::rsa_public_key& em,
                                         insecure_channel& ch, rng& r) const;

  [[nodiscard]] const bytes& plaintext_image() const noexcept { return image_; }

 private:
  bytes image_;
};

/// The "secure" processor: Dm lives inside; unwraps K and deciphers.
class secure_processor {
 public:
  explicit secure_processor(crypto::rsa_private_key dm) : dm_(std::move(dm)) {}

  /// Steps 5-6: unwrap K with Dm, decipher the software image.
  /// \throws std::invalid_argument if the package is malformed.
  [[nodiscard]] bytes receive(const software_package& pkg) const;

  /// Step 6 realised in hardware: unwrap K, program it into the SoC's
  /// bus-encryption engine as a fresh encryption context, map
  /// [base, base+image) to that context, and install the deciphered image
  /// into external memory through the engine's encrypt path. K goes
  /// chip-to-keyslot without ever crossing the external bus in clear.
  /// Returns the context id for later eviction (evict_session).
  engine::bus_encryption_engine::context_id
  install_software(const software_package& pkg, engine::bus_encryption_engine& eng,
                   addr_t base, std::string backend = "aes-ctr",
                   std::size_t data_unit_size = 32) const;

  /// Session teardown: destroy the context and evict K from the slot pool.
  static void evict_session(engine::bus_encryption_engine& eng,
                            engine::bus_encryption_engine::context_id ctx) {
    eng.destroy_context(ctx);
  }

  /// The recovered session key from the last receive() (test hook; in
  /// silicon this never leaves the chip).
  [[nodiscard]] const bytes& last_session_key() const noexcept { return last_key_; }

 private:
  crypto::rsa_private_key dm_;
  mutable bytes last_key_;
};

/// Eavesdropper check: true when \p secret appears as a contiguous
/// substring of any recorded message (i.e. the protocol leaked it).
[[nodiscard]] bool channel_leaks(const insecure_channel& ch, std::span<const u8> secret);

} // namespace buscrypt::keymgmt
