#pragma once
/// \file trace.hpp
/// Memory-access traces: the unit of work the CPU model executes. The
/// survey's overheads are all functions of the access pattern (fetch
/// locality, JUMP rate, write fraction), which traces capture exactly.

#include "common/types.hpp"

#include <string>
#include <vector>

namespace buscrypt::sim {

/// What kind of bus transaction an instruction performs.
enum class access_kind : u8 {
  fetch, ///< instruction fetch (reads are code; the common case)
  load,  ///< data read
  store, ///< data write
};

/// One architectural memory access.
struct mem_access {
  addr_t addr = 0;
  u8 size = 4; ///< bytes: 1, 2, 4 or 8
  access_kind kind = access_kind::fetch;
};

/// An ordered access stream plus bookkeeping.
using trace = std::vector<mem_access>;

/// A named trace with the memory image it executes over.
struct workload {
  std::string name;
  trace accesses;
  std::size_t footprint = 0; ///< bytes of address space the trace touches
  double write_fraction = 0; ///< stores / total, for reporting
  double jump_rate = 0;      ///< fraction of fetches that break sequence
};

} // namespace buscrypt::sim
