#pragma once
/// \file trace.hpp
/// Memory-access traces: the unit of work the CPU model executes. The
/// survey's overheads are all functions of the access pattern (fetch
/// locality, JUMP rate, write fraction), which traces capture exactly.

#include "common/bitops.hpp"
#include "common/types.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <string>
#include <vector>

namespace buscrypt::sim {

/// What kind of bus transaction an instruction performs.
enum class access_kind : u8 {
  fetch, ///< instruction fetch (reads are code; the common case)
  load,  ///< data read
  store, ///< data write
};

/// One architectural memory access.
struct mem_access {
  addr_t addr = 0;
  u8 size = 4; ///< bytes: 1, 2, 4 or 8
  access_kind kind = access_kind::fetch;
};

/// An ordered access stream plus bookkeeping.
using trace = std::vector<mem_access>;

/// The deterministic store payload the simulator writes at \p addr: every
/// 8-byte lane carries a value derived from its own address, so downstream
/// ciphertext and writebacks hold real, varying data. Shared by the CPU
/// model and the transaction drivers — scalar and batched issue of the
/// same trace therefore produce byte-identical memory images.
inline void fill_store_pattern(addr_t addr, std::span<u8> out) {
  std::array<u8, 8> lane{};
  for (std::size_t off = 0; off < out.size(); off += 8) {
    store_le64(lane.data(), (addr + off) * 0x9E3779B97F4A7C15ULL + 1);
    const std::size_t n = std::min<std::size_t>(8, out.size() - off);
    std::copy_n(lane.begin(), n, out.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

/// A named trace with the memory image it executes over.
struct workload {
  std::string name;
  trace accesses;
  std::size_t footprint = 0; ///< bytes of address space the trace touches
  double write_fraction = 0; ///< stores / total, for reporting
  double jump_rate = 0;      ///< fraction of fetches that break sequence
};

} // namespace buscrypt::sim
