#include "sim/firewall.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::sim {

bool parse_fw_perm(std::string_view name, fw_perm& out) noexcept {
  for (const fw_perm p : all_fw_perms)
    if (name == fw_perm_name(p)) {
      out = p;
      return true;
    }
  return false;
}

bus_firewall::port* bus_firewall::find(master_id m) noexcept {
  for (port& p : ports_)
    if (p.id == m) return &p;
  return nullptr;
}

const bus_firewall::port* bus_firewall::find(master_id m) const noexcept {
  for (const port& p : ports_)
    if (p.id == m) return &p;
  return nullptr;
}

void bus_firewall::validate(master_id m, const std::vector<firewall_rule>& table) {
  if (m == any_master)
    throw std::invalid_argument("bus_firewall: master id is the reserved "
                                "any_master sentinel");
  for (const firewall_rule& r : table)
    if (r.len == 0)
      throw std::invalid_argument("bus_firewall: rule len must be >= 1");
}

void bus_firewall::install(master_id m, std::vector<firewall_rule> table) {
  ++reprograms_;
  if (port* p = find(m)) {
    p->table = std::move(table);
    p->st.rules.assign(p->table.size(), fw_rule_stats{});
    return;
  }
  port p;
  p.id = m;
  p.table = std::move(table);
  p.st.rules.assign(p.table.size(), fw_rule_stats{});
  ports_.push_back(std::move(p));
}

void bus_firewall::program(master_id m, std::vector<firewall_rule> table) {
  validate(m, table);
  install(m, std::move(table));
}

void bus_firewall::stage(master_id m, std::vector<firewall_rule> table) {
  validate(m, table);
  for (auto& [id, t] : staged_)
    if (id == m) {
      t = std::move(table);
      return;
    }
  staged_.emplace_back(m, std::move(table));
}

std::size_t bus_firewall::commit() {
  const std::size_t n = staged_.size();
  for (auto& [id, table] : staged_) install(id, std::move(table));
  staged_.clear();
  return n;
}

void bus_firewall::clear(master_id m) noexcept {
  for (std::size_t i = 0; i < ports_.size(); ++i)
    if (ports_[i].id == m) {
      ports_.erase(ports_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
}

bool bus_firewall::has_table(master_id m) const noexcept { return find(m) != nullptr; }

bool bus_firewall::any_table() const noexcept { return !ports_.empty(); }

const std::vector<firewall_rule>* bus_firewall::table(master_id m) const noexcept {
  const port* p = find(m);
  return p == nullptr ? nullptr : &p->table;
}

fw_span bus_firewall::peek(master_id m, addr_t addr, std::size_t len,
                           bool is_write) const noexcept {
  fw_span out;
  out.len = len;
  if (m == any_master) {
    // The forged sentinel is denied whole: it names "every master" in
    // scope selectors, so no rule table can vouch for it as a requester.
    out.allowed = false;
    return out;
  }
  const port* p = find(m);
  if (p == nullptr) return out; // open port: no table, full access
  // First matching rule wins at addr; the uniform prefix ends where the
  // deciding rule ends or where any higher-priority (earlier) rule starts
  // — beyond that point a different rule would decide.
  const std::vector<firewall_rule>& t = p->table;
  std::size_t win = t.size();
  for (std::size_t i = 0; i < t.size(); ++i)
    if (addr >= t[i].base && addr - t[i].base < t[i].len) {
      win = i;
      break;
    }
  addr_t end = addr + len;
  if (win != t.size()) {
    const firewall_rule& r = t[win];
    out.rule = static_cast<int>(win);
    out.allowed = is_write ? (r.perm == fw_perm::w || r.perm == fw_perm::rw)
                           : (r.perm == fw_perm::r || r.perm == fw_perm::rw);
    end = std::min<addr_t>(end, r.base + r.len);
    for (std::size_t j = 0; j < win; ++j)
      if (t[j].base > addr && t[j].base < end) end = t[j].base;
  } else {
    // No rule matched: a programmed port is a whitelist, so default-deny,
    // but only up to the first point where some rule starts to match.
    out.allowed = false;
    for (const firewall_rule& r : t)
      if (r.base > addr && r.base < end) end = r.base;
  }
  out.len = static_cast<std::size_t>(end - addr);
  return out;
}

fw_span bus_firewall::check(master_id m, addr_t addr, std::size_t len, bool is_write) {
  const fw_span s = peek(m, addr, len, is_write);
  if (m == any_master) {
    ++sentinel_denials_;
    return s;
  }
  port* p = find(m);
  if (p == nullptr) return s;
  ++p->st.checks;
  if (s.rule >= 0) {
    fw_rule_stats& rs = p->st.rules[static_cast<std::size_t>(s.rule)];
    if (s.allowed) ++rs.hits;
    else ++rs.denies;
  }
  if (!s.allowed) ++p->st.denies;
  return s;
}

fw_master_stats bus_firewall::stats(master_id m) const {
  const port* p = find(m);
  return p == nullptr ? fw_master_stats{} : p->st;
}

} // namespace buscrypt::sim
