#pragma once
/// \file memory_port.hpp
/// The composition seam of the whole simulator: anything that can serve
/// line-sized reads/writes with a latency. The cache talks to a
/// memory_port; an EDU is a memory_port decorator wrapping the external
/// memory — which is exactly the survey's Fig. 2c/7a topology (cache ->
/// EDU -> memory controller -> external memory).

#include "common/types.hpp"

#include <span>

namespace buscrypt::sim {

/// A request/response memory interface. Functional and timed: data really
/// moves (so ciphertext really sits in DRAM and probes see real bytes) and
/// every call returns the cycles it consumed.
class memory_port {
 public:
  virtual ~memory_port() = default;

  /// Read |out| bytes at addr. Returns total latency in cycles.
  [[nodiscard]] virtual cycles read(addr_t addr, std::span<u8> out) = 0;

  /// Write |in| bytes at addr. Returns total latency in cycles.
  [[nodiscard]] virtual cycles write(addr_t addr, std::span<const u8> in) = 0;
};

} // namespace buscrypt::sim
