#pragma once
/// \file memory_port.hpp
/// The composition seam of the whole simulator: anything that can serve
/// line-sized reads/writes with a latency. The cache talks to a
/// memory_port; an EDU is a memory_port decorator wrapping the external
/// memory — which is exactly the survey's Fig. 2c/7a topology (cache ->
/// EDU -> memory controller -> external memory).
///
/// Two issue styles share the seam:
///  - scalar read()/write(): one blocking request, returns its latency;
///  - submit()/drain(): a batch of mem_txn requests whose *timing* may
///    overlap (multi-bank DRAM, keystream parallel to the fetch) while
///    functional effects stay in submission order. The default adapter
///    serialises a batch through the scalar path, so every existing
///    memory_port is batch-capable; ports with real concurrency
///    (external_memory, stream_edu, bus_encryption_engine) override it.
///
/// The full batch contract (ordering, stamp monotonicity, the scalar
/// fallback rule) is specified at \ref txn_contract in sim/mem_txn.hpp;
/// the per-method notes below state each call's share of it.

#include "common/types.hpp"
#include "sim/mem_txn.hpp"

#include <span>
#include <utility>

namespace buscrypt::sim {

/// A request/response memory interface. Functional and timed: data really
/// moves (so ciphertext really sits in DRAM and probes see real bytes) and
/// every call returns the cycles it consumed.
class memory_port {
 public:
  virtual ~memory_port() = default;

  /// Read |out| bytes at addr. Returns total latency in cycles.
  [[nodiscard]] virtual cycles read(addr_t addr, std::span<u8> out) = 0;

  /// Write |in| bytes at addr. Returns total latency in cycles.
  [[nodiscard]] virtual cycles write(addr_t addr, std::span<const u8> in) = 0;

  /// Submit a batch of transactions (see \ref txn_contract).
  ///
  /// **Ordering.** Functional effects are applied in submission order,
  /// transaction by transaction and segment by segment — byte-identical
  /// to scalar issue of the same requests. Timing alone may overlap.
  ///
  /// **Completion stamps.** Each txn's `complete_cycle` is set relative
  /// to this port's last drain(); stamps are non-decreasing across the
  /// batch and never exceed the makespan the next drain() reports.
  /// Cycles consumed accumulate across submit() calls until drain()
  /// collects them, so several submissions may share one drain window.
  ///
  /// **Scalar fallback.** This default adapter serialises the batch
  /// through read()/write() — one scalar call per segment, in order —
  /// so the batch makespan equals the sum of the scalar latencies and
  /// every derived port is batch-capable without overriding anything.
  /// Overriding ports may reorder *timing* only; any transaction they
  /// cannot schedule natively must detour through the scalar path at a
  /// point that preserves submission order (pending native work flushed
  /// first), which is what bus_encryption_engine::submit does.
  virtual void submit(std::span<mem_txn> batch) {
    cycles t = pending_txn_cycles_;
    for (mem_txn& txn : batch) {
      for (txn_segment& seg : txn.segments) {
        t += txn.is_write() ? write(seg.addr, std::span<const u8>(seg.data))
                            : read(seg.addr, seg.data);
      }
      txn.complete_cycle = t;
    }
    pending_txn_cycles_ = t;
  }

  /// Collect the cycles consumed by everything submitted since the last
  /// drain() (the batch makespan, not the per-txn sum, on overlapping
  /// ports) and reset the accumulator. Calling drain() with nothing
  /// pending returns 0; it also re-bases the `complete_cycle` origin for
  /// the next submission window.
  [[nodiscard]] virtual cycles drain() { return std::exchange(pending_txn_cycles_, 0); }

 protected:
  /// Accumulator shared by the default adapter and native batch paths.
  cycles pending_txn_cycles_ = 0;
};

} // namespace buscrypt::sim
