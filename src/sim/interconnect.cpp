#include "sim/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::sim {

bool parse_qos_class(std::string_view name, qos_class& out) noexcept {
  for (const qos_class c : all_qos_classes)
    if (name == qos_class_name(c)) {
      out = c;
      return true;
    }
  return false;
}

// --- topology ---------------------------------------------------------------

cluster_id topology::add_cluster(cluster_config cfg) {
  if (cfg.arb.window_txns == 0)
    throw std::invalid_argument("topology: cluster window_txns must be >= 1");
  if (cfg.name.empty()) cfg.name = "cluster" + std::to_string(clusters_.size());
  clusters_.push_back(std::move(cfg));
  return static_cast<cluster_id>(clusters_.size() - 1);
}

void topology::add_master(cluster_id c, master_id m, qos_class cls) {
  const auto ci = static_cast<std::size_t>(c);
  if (ci >= clusters_.size())
    throw std::invalid_argument("topology: unknown cluster id");
  if (m == any_master)
    throw std::invalid_argument("topology: master id is the reserved "
                                "any_master sentinel");
  for (const slot& s : slots_)
    if (s.id == m) throw std::invalid_argument("topology: duplicate master id");
  slots_.push_back({m, ci, cls});
}

void topology::set_qos(cluster_id c, qos_class cls) {
  const auto ci = static_cast<std::size_t>(c);
  if (ci >= clusters_.size())
    throw std::invalid_argument("topology: unknown cluster id");
  clusters_[ci].qos = cls;
}

void topology::set_qos(master_id m, qos_class cls) {
  for (slot& s : slots_)
    if (s.id == m) {
      s.cls = cls;
      return;
    }
  throw std::invalid_argument("topology: set_qos on an undeclared master");
}

void topology::set_qos_params(qos_class cls, qos_params p) {
  if (p.weight == 0)
    throw std::invalid_argument("topology: qos weight must be >= 1");
  params_[static_cast<std::size_t>(cls)] = p;
}

void topology::add_firewall_rule(master_id m, firewall_rule r) {
  if (m == any_master)
    throw std::invalid_argument("topology: firewall rule for the reserved "
                                "any_master sentinel");
  if (r.len == 0) throw std::invalid_argument("topology: firewall rule len must be >= 1");
  for (auto& [id, table] : tables_)
    if (id == m) {
      table.push_back(r);
      return;
    }
  tables_.emplace_back(m, std::vector<firewall_rule>{r});
}

const topology::slot* topology::slot_of(master_id m) const noexcept {
  for (const slot& s : slots_)
    if (s.id == m) return &s;
  return nullptr;
}

bool topology::qos_enabled() const noexcept {
  for (const cluster_config& c : clusters_)
    if (c.qos != qos_class::none) return true;
  for (const slot& s : slots_)
    if (s.cls != qos_class::none) return true;
  return false;
}

// --- arb_node ---------------------------------------------------------------

arb_node::arb_node(arbiter_config cfg, bool qos, const std::array<qos_params, 4>& params)
    : cfg_(cfg), qos_(qos), params_(params) {
  for (std::size_t c = 0; c < 4; ++c)
    credit_[c] = static_cast<long long>(params_[c].weight);
}

int arb_node::pick_policy(std::span<const child> kids, int cls) {
  const std::size_t n = kids.size();
  if (n == 0) return -1;
  const auto in_cls = [&](std::size_t i) {
    return cls < 0 || static_cast<int>(kids[i].cls) == cls;
  };

  if (cfg_.policy == arb_policy::round_robin) {
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = (rr_next_ + step) % n;
      if (kids[i].pending && in_cls(i)) {
        rr_next_ = (i + 1) % n;
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // fixed_priority. Aging first: the longest-waiting child past the
  // starvation limit pre-empts priority (ties toward registration order).
  int starved = -1;
  if (cfg_.starvation_limit > 0) {
    u64 longest = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u64 streak = kids[i].wait_streak;
      if (kids[i].pending && in_cls(i) && streak >= cfg_.starvation_limit &&
          streak > longest) {
        longest = streak;
        starved = static_cast<int>(i);
      }
    }
  }
  if (starved >= 0) return starved;

  int best = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!kids[i].pending || !in_cls(i)) continue;
    if (best < 0 ||
        kids[i].priority > kids[static_cast<std::size_t>(best)].priority)
      best = static_cast<int>(i);
  }
  return best;
}

int arb_node::pick(std::span<const child> kids) {
  if (!qos_) return pick_policy(kids, -1);

  bool pend[4] = {};
  bool any = false;
  for (const child& k : kids)
    if (k.pending) {
      pend[static_cast<std::size_t>(k.cls)] = true;
      any = true;
    }
  if (!any) return -1;

  // Class aging pre-empts the credit choice: a class whose pending work
  // has waited past its limit is served first, longest streak winning.
  int chosen = -1;
  u64 longest = 0;
  for (std::size_t c = 0; c < 4; ++c)
    if (pend[c] && params_[c].aging_limit > 0 &&
        class_streak_[c] >= params_[c].aging_limit && class_streak_[c] >= longest &&
        (chosen < 0 || class_streak_[c] > longest)) {
      longest = class_streak_[c];
      chosen = static_cast<int>(c);
    }
  if (chosen >= 0) {
    ++class_preempts_[static_cast<std::size_t>(chosen)];
  } else {
    // Weighted round-robin by reserved share: pick the pending class with
    // the most credit, recharging every class when the pending ones are
    // all spent (so an idle class cannot hoard unbounded credit).
    bool has_credit = false;
    for (std::size_t c = 0; c < 4; ++c)
      if (pend[c] && credit_[c] > 0) has_credit = true;
    if (!has_credit)
      for (std::size_t c = 0; c < 4; ++c)
        credit_[c] = static_cast<long long>(params_[c].weight);
    for (std::size_t c = 0; c < 4; ++c)
      if (pend[c] && (chosen < 0 || credit_[c] > credit_[static_cast<std::size_t>(chosen)]))
        chosen = static_cast<int>(c);
  }

  const auto cc = static_cast<std::size_t>(chosen);
  --credit_[cc];
  ++class_grants_[cc];
  class_streak_[cc] = 0;
  for (std::size_t c = 0; c < 4; ++c)
    if (c != cc && pend[c]) {
      ++class_streak_[c];
      class_max_streak_[c] = std::max(class_max_streak_[c], class_streak_[c]);
    }
  return pick_policy(kids, chosen);
}

u64 arb_node::class_grants(qos_class c) const noexcept {
  return class_grants_[static_cast<std::size_t>(c)];
}
u64 arb_node::class_preempts(qos_class c) const noexcept {
  return class_preempts_[static_cast<std::size_t>(c)];
}
u64 arb_node::class_max_streak(qos_class c) const noexcept {
  return class_max_streak_[static_cast<std::size_t>(c)];
}

// --- interconnect -----------------------------------------------------------

interconnect::interconnect(memory_port& port, topology topo)
    : port_(&port), topo_(std::move(topo)) {
  if (topo_.root().window_txns == 0)
    throw std::invalid_argument("interconnect: window_txns must be >= 1");
  if (topo_.clusters().empty()) {
    // Implicit flat cluster inheriting the root knobs — the bus_arbiter /
    // multi_master_config compatibility shape.
    cluster_config flat;
    flat.name = "bus";
    flat.arb = topo_.root();
    (void)topo_.add_cluster(std::move(flat));
  }
  for (const auto& [m, table] : topo_.firewall_tables()) fw_.program(m, table);
}

void interconnect::add_master(bus_master& m) {
  const master_id id = m.config().id;
  if (id == any_master)
    throw std::invalid_argument("interconnect: master id is the reserved "
                                "any_master sentinel");
  for (const bound& b : masters_)
    if (b.m->config().id == id)
      throw std::invalid_argument("interconnect: duplicate master id");
  bound b;
  b.m = &m;
  if (const topology::slot* s = topo_.slot_of(id)) {
    b.cluster = s->cluster;
    b.cls = s->cls;
  }
  masters_.push_back(b);
}

void interconnect::set_grant_hook(std::function<void(master_id)> hook) {
  grant_hook_ = std::move(hook);
}

void interconnect::reprogram_firewall(master_id m, std::vector<firewall_rule> rules) {
  fw_.stage(m, std::move(rules));
  staged_at_.push_back(clock_);
}

interconnect_stats interconnect::run() {
  const std::vector<cluster_config>& clusters = topo_.clusters();
  const bool qos = topo_.qos_enabled();

  interconnect_stats st;
  st.clusters.resize(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c)
    st.clusters[c].name = clusters[c].name;

  // Cluster membership, in master bind order (ties inside a cluster break
  // toward earlier registration, as the flat arbiter's did).
  std::vector<std::vector<std::size_t>> members(clusters.size());
  for (std::size_t i = 0; i < masters_.size(); ++i)
    members[masters_[i].cluster].push_back(i);

  arb_node root(topo_.root(), qos, topo_.params());
  std::vector<arb_node> nodes;
  nodes.reserve(clusters.size());
  for (const cluster_config& c : clusters) nodes.emplace_back(c.arb, qos, topo_.params());

  std::vector<u64> cluster_streak(clusters.size(), 0);
  std::vector<arb_node::child> ckids(clusters.size());
  std::vector<arb_node::child> mkids;
  std::vector<mem_txn> window;

  // Restore the default attribution once the bus falls idle — on every
  // exit path: if a window submission throws, downstream beat tagging
  // must not stay stuck on the last granted master.
  struct hook_restore {
    const std::function<void(master_id)>* hook;
    ~hook_restore() {
      if (*hook) (*hook)(cpu_master);
    }
  } restore{&grant_hook_};

  // Apply firewall tables staged since the last boundary. Called between
  // windows only: a granted window is checked under exactly one table.
  const auto commit_staged = [&] {
    if (!fw_.has_staged()) return;
    (void)fw_.commit();
    for (const cycles at : staged_at_) {
      const cycles lat = clock_ - at;
      ++st.firewall_reprograms;
      st.reconfig_latency_sum += lat;
      st.reconfig_latency_max = std::max(st.reconfig_latency_max, lat);
    }
    staged_at_.clear();
  };

  clock_ = 0;
  for (;;) {
    commit_staged();

    for (std::size_t c = 0; c < clusters.size(); ++c) {
      bool pending = false;
      for (const std::size_t i : members[c])
        if (masters_[i].m->pending()) {
          pending = true;
          break;
        }
      ckids[c] = {pending, clusters[c].priority, cluster_streak[c], clusters[c].qos};
    }
    const int ci = root.pick(ckids);
    if (ci < 0) break;
    const auto cu = static_cast<std::size_t>(ci);

    mkids.clear();
    for (const std::size_t i : members[cu]) {
      const bound& b = masters_[i];
      mkids.push_back({b.m->pending(), b.m->config().priority, b.m->wait_streak(), b.cls});
    }
    const int mi = nodes[cu].pick(mkids);
    if (mi < 0) break; // unreachable: the cluster was picked as pending
    bus_master& granted = *masters_[members[cu][static_cast<std::size_t>(mi)]].m;

    if (grant_hook_) grant_hook_(granted.config().id);
    const std::size_t n = granted.stage(clusters[cu].arb.window_txns, window);
    port_->submit(window);
    const cycles makespan = port_->drain();
    granted.retire(window, clock_, makespan);
    clock_ += makespan;

    ++st.bus.rounds;
    st.bus.txns += n;
    ++st.clusters[cu].grants;
    st.clusters[cu].txns += n;
    for (const bound& other : masters_)
      if (other.m != &granted && other.m->pending()) other.m->note_wait();
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (c == cu) {
        cluster_streak[c] = 0;
      } else if (ckids[c].pending) {
        ++cluster_streak[c];
        st.clusters[c].max_wait_streak =
            std::max(st.clusters[c].max_wait_streak, cluster_streak[c]);
      }
    }
  }
  commit_staged(); // a table staged in the last window still lands

  st.bus.total_cycles = clock_;
  st.bus.masters.reserve(masters_.size());
  for (const bound& b : masters_) {
    st.bus.bytes += b.m->stats().bytes;
    st.bus.masters.push_back(b.m->stats());
    st.clusters[b.cluster].bytes += b.m->stats().bytes;
  }

  if (qos) {
    for (const qos_class c : all_qos_classes) {
      qos_class_stats qs;
      qs.cls = c;
      qs.grants = root.class_grants(c);
      qs.preempts = root.class_preempts(c);
      qs.max_streak = root.class_max_streak(c);
      for (const arb_node& nd : nodes) {
        qs.grants += nd.class_grants(c);
        qs.preempts += nd.class_preempts(c);
        qs.max_streak = std::max(qs.max_streak, nd.class_max_streak(c));
      }
      st.qos.push_back(qs);
    }
  }
  return st;
}

} // namespace buscrypt::sim
