#pragma once
/// \file firewall.hpp
/// Per-master programmable bus firewalls, modeled on Cotret et al.'s FPGA
/// hardware firewalls: each master's bus interface carries an ordered rule
/// table `(base, len, perm, ctx)` that is consulted *before* the engine's
/// protection-domain map. A master with no table has an open port (the
/// PR 3 behaviour, bit-for-bit); a master with a table is whitelisted —
/// the first rule containing the address decides, and an address no rule
/// covers is denied. Denied reads are served the 0xFF bus-error fill by
/// the engine, denied writes are dropped; either way the request never
/// reaches the external bus.
///
/// Tables are *live-reprogrammable*: program() swaps a table immediately
/// (setup time), stage()/commit() is the under-traffic path — the
/// interconnect stages a new table mid-run and commits it at the next
/// window boundary, so a granted window is checked entirely under one
/// table version (no transaction is ever half-checked across a
/// reprogram). Every rule keeps hit/deny counters; per-master aggregates
/// and forged-sentinel denials are counted too, so containment is
/// observable, not assumed.

#include "sim/mem_txn.hpp"

#include <string_view>
#include <vector>

namespace buscrypt::sim {

/// Access permission one firewall rule grants over its range.
enum class fw_perm : u8 {
  none, ///< match-and-deny (an explicit block rule)
  r,    ///< read-only
  w,    ///< write-only
  rw,   ///< full access
};

[[nodiscard]] constexpr std::string_view fw_perm_name(fw_perm p) noexcept {
  switch (p) {
    case fw_perm::none: return "none";
    case fw_perm::r: return "r";
    case fw_perm::w: return "w";
    case fw_perm::rw: return "rw";
  }
  return "?";
}

/// Parse a fw_perm from its fw_perm_name() spelling. Returns false (and
/// leaves \p out untouched) on an unknown name.
[[nodiscard]] bool parse_fw_perm(std::string_view name, fw_perm& out) noexcept;

inline constexpr fw_perm all_fw_perms[] = {fw_perm::none, fw_perm::r, fw_perm::w,
                                           fw_perm::rw};

/// One ordered-table entry: the first rule whose [base, base+len) contains
/// the address decides the access. `ctx` is an opaque context tag carried
/// for attribution (which domain/context the rule speaks for); it never
/// changes the match.
struct firewall_rule {
  addr_t base = 0;
  std::size_t len = 0;
  fw_perm perm = fw_perm::rw;
  u32 ctx = 0;
};

/// Per-rule counters, parallel to the installed table.
struct fw_rule_stats {
  u64 hits = 0;   ///< spans this rule allowed
  u64 denies = 0; ///< spans this rule denied (perm mismatch or fw_perm::none)
};

/// One master's firewall accounting: aggregate checks/denies plus the
/// per-rule breakdown. `denies` includes default denials no rule matched.
struct fw_master_stats {
  u64 checks = 0;
  u64 denies = 0;
  std::vector<fw_rule_stats> rules;
};

/// Decision over the longest uniform prefix of a request: allowed or not,
/// how many bytes that decision covers (the span splits where a
/// higher-priority rule starts or the matching rule ends), and which rule
/// decided (-1 = no rule: open port allows, programmed port denies).
struct fw_span {
  bool allowed = true;
  std::size_t len = 0;
  int rule = -1;
};

/// The per-master rule-table set — one firewall object serves the whole
/// interconnect, keyed by master id.
class bus_firewall {
 public:
  /// Install \p table for \p m immediately (setup-time path). An empty
  /// table is a valid deny-all port; use clear() to reopen the port.
  /// \throws std::invalid_argument for the any_master sentinel or a
  ///         zero-length rule.
  void program(master_id m, std::vector<firewall_rule> table);

  /// Stage \p table for \p m; it takes effect at the next commit(). A
  /// second stage for the same master before commit replaces the first.
  void stage(master_id m, std::vector<firewall_rule> table);

  /// Apply every staged table. Returns the number applied. The
  /// interconnect calls this only at window boundaries, which is what
  /// makes live reprogramming window-atomic.
  std::size_t commit();

  /// Remove \p m's table entirely (open port again). Counters survive.
  void clear(master_id m) noexcept;

  [[nodiscard]] bool has_table(master_id m) const noexcept;
  [[nodiscard]] bool has_staged() const noexcept { return !staged_.empty(); }
  /// True when any master has a table installed (the engine hook is only
  /// wired up when there is something to enforce).
  [[nodiscard]] bool any_table() const noexcept;
  [[nodiscard]] const std::vector<firewall_rule>* table(master_id m) const noexcept;

  /// Pure lookup: the decision over the longest uniform prefix of
  /// [addr, addr+len) for \p m, no counters touched. The forged
  /// any_master sentinel is always denied whole (see mem_txn.hpp).
  [[nodiscard]] fw_span peek(master_id m, addr_t addr, std::size_t len,
                             bool is_write) const noexcept;

  /// peek() plus accounting: one check per call, a hit or deny on the
  /// deciding rule, aggregate denies, sentinel denials. The engine calls
  /// this exactly once per uniform span it serves or refuses.
  fw_span check(master_id m, addr_t addr, std::size_t len, bool is_write);

  /// \p m's counters (zeros for a master never checked).
  [[nodiscard]] fw_master_stats stats(master_id m) const;

  [[nodiscard]] u64 sentinel_denials() const noexcept { return sentinel_denials_; }
  /// Tables installed over the firewall's lifetime (program + commit).
  [[nodiscard]] u64 reprograms() const noexcept { return reprograms_; }

 private:
  struct port {
    master_id id = cpu_master;
    std::vector<firewall_rule> table;
    fw_master_stats st;
  };

  [[nodiscard]] port* find(master_id m) noexcept;
  [[nodiscard]] const port* find(master_id m) const noexcept;
  static void validate(master_id m, const std::vector<firewall_rule>& table);
  void install(master_id m, std::vector<firewall_rule> table);

  std::vector<port> ports_; ///< few masters: linear scan, like domain_stats
  std::vector<std::pair<master_id, std::vector<firewall_rule>>> staged_;
  u64 sentinel_denials_ = 0;
  u64 reprograms_ = 0;
};

} // namespace buscrypt::sim
