#pragma once
/// \file interconnect.hpp
/// Topology-first interconnect: a declarative description of the SoC's
/// master fabric (clusters of masters, QoS classes, per-master firewall
/// rule tables) instantiated as a tree of per-cluster arbiters feeding a
/// root arbiter onto the one shared downstream port (the EDU).
///
///                   root arbiter ──► EDU ──► bus/DRAM
///                 ┌───────┴────────┐
///           cluster0 arb     cluster1 arb   ...  (one arb_policy each)
///           ┌────┼────┐      ┌────┼────┐
///          m0   m1   m2     m3   m4   m5         (bus_master streams)
///
/// A topology with one cluster is *bit-identical* to the flat PR 3
/// bus_arbiter: the root has a single child, so every grant decision is
/// the cluster's, taken by the same policy code over the same master
/// order — which is how the multi_master_config shim keeps the committed
/// tab8 numbers unchanged.
///
/// QoS classes add bandwidth reservation and starvation aging *per class*
/// on top of the per-node policy: at each node, classes with pending work
/// are served weighted-round-robin by their reserved share (credits), and
/// a class whose pending children have waited past its aging limit
/// pre-empts the credit choice. With no class assigned (all
/// qos_class::none) the arbitration is exactly the legacy policy path.
///
/// Firewalls: each master may carry an ordered rule table (firewall.hpp)
/// checked by the engine *before* its protection-domain map. Tables are
/// reprogrammable under live traffic via reprogram_firewall(): the new
/// table is staged and committed at the next window boundary, so the
/// in-flight window finishes under the old rules and the next window sees
/// the new ones — reconfiguration latency is measured and reported.

#include "sim/bus_arbiter.hpp"
#include "sim/firewall.hpp"

#include <array>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace buscrypt::sim {

/// Service class of a master (or a whole cluster) under QoS arbitration.
enum class qos_class : u8 {
  none,     ///< best-effort: plain policy arbitration (the default)
  bulk,     ///< bandwidth-reserved bulk movers (DMA streams)
  latency,  ///< latency-sensitive low-bandwidth requesters (pollers)
  realtime, ///< bounded-wait traffic: reserved share + tight aging
};

[[nodiscard]] constexpr std::string_view qos_class_name(qos_class c) noexcept {
  switch (c) {
    case qos_class::none: return "none";
    case qos_class::bulk: return "bulk";
    case qos_class::latency: return "latency";
    case qos_class::realtime: return "realtime";
  }
  return "?";
}

/// Parse a qos_class from its qos_class_name() spelling. Returns false
/// (and leaves \p out untouched) on an unknown name.
[[nodiscard]] bool parse_qos_class(std::string_view name, qos_class& out) noexcept;

inline constexpr std::array<qos_class, 4> all_qos_classes = {
    qos_class::none, qos_class::bulk, qos_class::latency, qos_class::realtime};

/// Arbitration parameters of one QoS class at every node.
struct qos_params {
  unsigned weight = 1;  ///< reserved share: window grants per credit round
  u64 aging_limit = 0;  ///< pending-class wait rounds before pre-emption; 0 = never
};

/// Default reservation table: bulk holds the bandwidth share, latency and
/// realtime hold bounded-wait guarantees. Override via set_qos_params.
[[nodiscard]] constexpr qos_params default_qos_params(qos_class c) noexcept {
  switch (c) {
    case qos_class::none: return {1, 0};
    case qos_class::bulk: return {4, 0};
    case qos_class::latency: return {1, 6};
    case qos_class::realtime: return {2, 3};
  }
  return {1, 0};
}

/// Handle of one cluster in a topology (strongly typed so the set_qos
/// overloads for clusters and masters cannot be confused).
enum class cluster_id : u32 {};

struct cluster_config {
  std::string name;      ///< display name; "cluster<N>" when empty
  arbiter_config arb{};  ///< policy + window size among this cluster's masters
  unsigned priority = 0; ///< root-level rank under fixed_priority
  qos_class qos = qos_class::none; ///< class of the whole cluster at the root
};

/// The declarative builder: clusters, master slots, QoS assignments and
/// firewall rules. Pure description — nothing is instantiated until an
/// interconnect is built from it, so one topology can configure many runs
/// (it is the shape axis of soc_config and the fleet cells).
class topology {
 public:
  topology() = default;
  /// \p root arbitrates among the clusters (its window_txns is unused —
  /// windows are staged per cluster). A topology with no clusters gets an
  /// implicit single cluster inheriting \p root, which is the flat
  /// bus_arbiter shim.
  explicit topology(arbiter_config root) : root_(root) {}

  /// Add a cluster; masters attach to it by the returned id.
  /// \throws std::invalid_argument when cfg.arb.window_txns == 0.
  cluster_id add_cluster(cluster_config cfg);

  /// Declare master \p m as a member of cluster \p c. Masters bind to the
  /// slot by id at interconnect::add_master; undeclared masters land in
  /// cluster 0.
  /// \throws std::invalid_argument for an unknown cluster, a duplicate
  ///         id, or the any_master sentinel.
  void add_master(cluster_id c, master_id m, qos_class cls = qos_class::none);

  /// Assign cluster \p c's class for root-level arbitration.
  void set_qos(cluster_id c, qos_class cls);
  /// Assign declared master \p m's class inside its cluster.
  /// \throws std::invalid_argument for an undeclared master.
  void set_qos(master_id m, qos_class cls);
  /// Override one class's reservation/aging parameters (weight >= 1).
  void set_qos_params(qos_class cls, qos_params p);

  /// Append one rule to \p m's ordered firewall table (first match wins;
  /// a master with any rules is whitelisted — no match denies).
  /// \throws std::invalid_argument for a zero-length rule or the sentinel.
  void add_firewall_rule(master_id m, firewall_rule r);

  struct slot {
    master_id id = cpu_master;
    std::size_t cluster = 0;
    qos_class cls = qos_class::none;
  };

  [[nodiscard]] const arbiter_config& root() const noexcept { return root_; }
  [[nodiscard]] const std::vector<cluster_config>& clusters() const noexcept {
    return clusters_;
  }
  [[nodiscard]] const std::vector<slot>& slots() const noexcept { return slots_; }
  [[nodiscard]] const slot* slot_of(master_id m) const noexcept;
  [[nodiscard]] const std::vector<std::pair<master_id, std::vector<firewall_rule>>>&
  firewall_tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] const std::array<qos_params, 4>& params() const noexcept {
    return params_;
  }
  /// True when any cluster or declared master carries a non-none class —
  /// the switch that engages QoS arbitration (and nothing else changes).
  [[nodiscard]] bool qos_enabled() const noexcept;

 private:
  arbiter_config root_{};
  std::vector<cluster_config> clusters_;
  std::vector<slot> slots_;
  std::vector<std::pair<master_id, std::vector<firewall_rule>>> tables_;
  std::array<qos_params, 4> params_ = {
      default_qos_params(qos_class::none), default_qos_params(qos_class::bulk),
      default_qos_params(qos_class::latency), default_qos_params(qos_class::realtime)};
};

/// What one cluster contributed to a run.
struct cluster_stats {
  std::string name;
  u64 grants = 0; ///< windows granted into this cluster
  u64 txns = 0;
  u64 bytes = 0;
  u64 max_wait_streak = 0; ///< longest run of rounds the cluster waited pending
};

/// Per-class QoS accounting, summed over every node of the tree.
struct qos_class_stats {
  qos_class cls = qos_class::none;
  u64 grants = 0;
  u64 preempts = 0;   ///< grants forced by class starvation aging
  u64 max_streak = 0; ///< longest pending-class wait at any node
};

/// What one interconnect run measured: the flat arbiter_stats view (so
/// every tab8 consumer keeps working) plus the tree/QoS/reconfig layers.
struct interconnect_stats {
  arbiter_stats bus; ///< aggregate + per-master, master bind order
  std::vector<cluster_stats> clusters;
  std::vector<qos_class_stats> qos; ///< empty unless QoS engaged
  u64 firewall_reprograms = 0;      ///< staged tables committed during the run
  cycles reconfig_latency_sum = 0;  ///< stage -> window-boundary commit cycles
  cycles reconfig_latency_max = 0;
};

/// The reusable arbitration node: one grant decision among N children
/// (masters at a cluster node, clusters at the root) under a policy, with
/// optional per-class QoS on top. bus_arbiter::run and every tree level
/// share this code, so flat and 1-cluster arbitration cannot drift.
class arb_node {
 public:
  struct child {
    bool pending = false;
    unsigned priority = 0;
    u64 wait_streak = 0;
    qos_class cls = qos_class::none;
  };

  arb_node(arbiter_config cfg, bool qos, const std::array<qos_params, 4>& params);

  /// Index of the child to grant, or -1 when none is pending.
  [[nodiscard]] int pick(std::span<const child> kids);

  [[nodiscard]] u64 class_grants(qos_class c) const noexcept;
  [[nodiscard]] u64 class_preempts(qos_class c) const noexcept;
  [[nodiscard]] u64 class_max_streak(qos_class c) const noexcept;

 private:
  /// The legacy policy decision (bit-identical to the PR 3 bus_arbiter),
  /// restricted to children of class \p cls when cls >= 0.
  [[nodiscard]] int pick_policy(std::span<const child> kids, int cls);

  arbiter_config cfg_;
  bool qos_ = false;
  std::array<qos_params, 4> params_{};
  std::array<long long, 4> credit_{};
  std::array<u64, 4> class_streak_{};
  std::array<u64, 4> class_grants_{};
  std::array<u64, 4> class_preempts_{};
  std::array<u64, 4> class_max_streak_{};
  std::size_t rr_next_ = 0;
};

/// The instantiated tree. Owns the firewall and the topology copy, not
/// the port or the masters; drives the whole contention to completion in
/// run(), exactly as bus_arbiter does for the flat case.
class interconnect {
 public:
  /// \throws std::invalid_argument when the topology's root window size
  ///         is 0 or a firewall table fails validation.
  interconnect(memory_port& port, topology topo);

  /// Bind a master stream to its declared slot (by config().id);
  /// undeclared ids join cluster 0 with class none.
  /// \throws std::invalid_argument for a duplicate id or the sentinel.
  void add_master(bus_master& m);

  /// Called with the winning master's id at each grant, before its window
  /// is submitted (see bus_arbiter::set_grant_hook); restored to
  /// cpu_master on every exit from run().
  void set_grant_hook(std::function<void(master_id)> hook);

  /// The live firewall the engine checks. program() directly for
  /// setup-time tables; use reprogram_firewall for changes under traffic.
  [[nodiscard]] bus_firewall& firewall() noexcept { return fw_; }
  [[nodiscard]] const topology& topo() const noexcept { return topo_; }

  /// Stage a new rule table for \p m, committed at the next window
  /// boundary (before the next grant decision, or at run end): the
  /// in-flight window completes under the old table. Latency from this
  /// call to the commit is accounted in interconnect_stats.
  void reprogram_firewall(master_id m, std::vector<firewall_rule> rules);

  /// Arbitrate until every master's stream is drained.
  [[nodiscard]] interconnect_stats run();

 private:
  struct bound {
    bus_master* m = nullptr;
    std::size_t cluster = 0;
    qos_class cls = qos_class::none;
  };

  memory_port* port_;
  topology topo_;
  bus_firewall fw_;
  std::vector<bound> masters_;
  std::function<void(master_id)> grant_hook_;
  cycles clock_ = 0; ///< run()'s bus clock, visible to mid-run reprogram calls
  std::vector<cycles> staged_at_; ///< stage clocks of uncommitted reprograms
};

} // namespace buscrypt::sim
