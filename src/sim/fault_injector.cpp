#include "sim/fault_injector.hpp"

#include <algorithm>

namespace buscrypt::sim {

bool parse_fault_point(std::string_view name, fault_point& out) noexcept {
  for (const fault_point p : all_fault_points)
    if (name == fault_point_name(p)) {
      out = p;
      return true;
    }
  return false;
}

void fault_injector::on_flush() {
  ++flushes_;
  if (armed_ && !fired_ && plan_.point == fault_point::flush &&
      flushes_ > plan_.trigger) {
    fired_ = true;
    throw power_cut("flush");
  }
}

void fault_injector::nvm_write(std::span<u8> dst, std::span<const u8> src) {
  const std::size_t n = std::min(dst.size(), src.size());
  ++journal_writes_;
  if (armed_ && !fired_ && plan_.point == fault_point::journal &&
      journal_writes_ > plan_.trigger) {
    // A seeded prefix lands; the tail keeps whatever the NVM held before.
    // The record's MAC can no longer check out, which is the whole point:
    // recovery must disbelieve it, not half-trust it.
    const std::size_t torn = n == 0 ? 0 : static_cast<std::size_t>(plan_.seed % n);
    std::copy_n(src.begin(), torn, dst.begin());
    fired_ = true;
    throw power_cut("journal");
  }
  std::copy_n(src.begin(), n, dst.begin());
}

u64 fault_injector::cut_within(std::size_t len) noexcept {
  const u64 nb = span_beats(len);
  if (armed_ && !fired_ && plan_.point == fault_point::bus_beat &&
      beats_ + nb > plan_.trigger) {
    const u64 before = plan_.trigger > beats_ ? plan_.trigger - beats_ : 0;
    beats_ = plan_.trigger;
    return before;
  }
  beats_ += nb;
  return ~0ull;
}

void fault_injector::maybe_flip() {
  if (!armed_ || fired_ || plan_.point != fault_point::bit_flip) return;
  if (beats_ <= plan_.trigger || plan_.blast_len == 0) return;
  // One seeded bit inside the blast window, flipped directly on the chip
  // (functional write, no charged time — the attacker is not a bus master).
  const addr_t target =
      plan_.blast_base + static_cast<addr_t>(plan_.seed % plan_.blast_len);
  u8 b = 0;
  (void)lower_->read(target, std::span<u8>(&b, 1));
  b ^= static_cast<u8>(1u << ((plan_.seed >> 32) % 8));
  (void)lower_->write(target, std::span<const u8>(&b, 1));
  fired_ = true;
}

cycles fault_injector::read(addr_t addr, std::span<u8> out) {
  const u64 before = cut_within(out.size());
  if (before != ~0ull) {
    // Power dies mid-fetch: nothing useful reaches the core.
    fired_ = true;
    throw power_cut("bus-beat");
  }
  const cycles t = lower_->read(addr, out);
  maybe_flip();
  return t;
}

cycles fault_injector::write(addr_t addr, std::span<const u8> in) {
  const u64 before = cut_within(in.size());
  if (before != ~0ull) {
    // The beats already on the wire land; the rest never reach the chip.
    const std::size_t landed = static_cast<std::size_t>(
        std::min<u64>(before * k_beat_bytes, in.size()));
    if (landed > 0) (void)lower_->write(addr, in.first(landed));
    fired_ = true;
    throw power_cut("bus-beat");
  }
  const cycles t = lower_->write(addr, in);
  maybe_flip();
  return t;
}

} // namespace buscrypt::sim
