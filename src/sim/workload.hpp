#pragma once
/// \file workload.hpp
/// Synthetic workload generators. Each models one of the execution
/// behaviours the survey's arguments hinge on:
///   - sequential code     -> prefetch-friendly (Gilmont's <2.5% case)
///   - jumpy code          -> the CBC random-access problem
///   - data read/write mix -> the sub-block write penalty
///   - pointer chasing     -> latency-bound, worst case for block EDUs
///   - streaming           -> bandwidth-bound

#include "common/rng.hpp"
#include "sim/memory_port.hpp"
#include "sim/trace.hpp"

namespace buscrypt::sim {

/// Straight-line code: sequential 4-byte fetches over \p code_size bytes of
/// code, with a short backward loop every \p loop_every instructions
/// (loop_every == 0 disables looping).
[[nodiscard]] workload make_sequential_code(std::size_t n_instr, std::size_t code_size,
                                            std::size_t loop_every, u64 seed);

/// Branchy code: each fetch jumps to a uniformly random aligned target with
/// probability \p jump_rate, otherwise advances sequentially. This is the
/// "random data access problem (JUMP instructions)" workload.
[[nodiscard]] workload make_jumpy_code(std::size_t n_instr, std::size_t code_size,
                                       double jump_rate, u64 seed);

/// Loads and stores over a working set: every instruction fetches, and a
/// fraction \p mem_rate also touches data, of which \p write_fraction are
/// stores of \p store_size bytes.
[[nodiscard]] workload make_data_rw(std::size_t n_instr, std::size_t working_set,
                                    double mem_rate, double write_fraction,
                                    u8 store_size, u64 seed);

/// Dependent random loads over a working set (latency-bound).
[[nodiscard]] workload make_pointer_chase(std::size_t n_loads, std::size_t working_set,
                                          u64 seed);

/// Unit-stride streaming reads with one store per \p write_every elements.
[[nodiscard]] workload make_streaming(std::size_t n_elems, std::size_t array_size,
                                      std::size_t write_every, u64 seed);

// --- multi-master scenario generators ----------------------------------------
// Request streams for the non-CPU masters of a multi-master SoC (see
// sim/bus_master.hpp): the VLSI secure-DMA engine's page-by-page bulk
// transfers (Fig. 4) and a peripheral's register polling loop. Combined
// with the CPU generators above they form the mixed-master scenarios
// bench/tab8_multimaster sweeps.

/// Bulk DMA copy: \p n_bytes moved burst by burst from [src_base, ...) to
/// [dst_base, ...). Each \p burst_bytes burst is fully covered by 8-byte
/// reads then 8-byte writes, so lowering at any chunk <= burst_bytes
/// produces a dense read-burst/write-burst stream — the bandwidth-bound
/// traffic a secure DMA unit puts on the bus.
[[nodiscard]] workload make_dma_copy(std::size_t n_bytes, addr_t src_base,
                                     addr_t dst_base, std::size_t burst_bytes,
                                     u64 seed);

/// Peripheral register polling: \p n_polls reads rotating over \p n_regs
/// registers spaced \p reg_stride bytes apart from \p reg_base, with one
/// 4-byte control write every \p write_every polls (0 = read-only).
/// Latency-bound, tiny footprint — the master a fixed-priority arbiter
/// favours (or starves).
[[nodiscard]] workload make_peripheral_poll(std::size_t n_polls, addr_t reg_base,
                                            std::size_t n_regs, std::size_t reg_stride,
                                            std::size_t write_every, u64 seed);

/// Rebase a workload: every access shifted by \p base. Multi-master runs
/// use this to give each master a disjoint address range, which is what
/// makes per-master solo-vs-concurrent equivalence well defined.
[[nodiscard]] workload offset_workload(workload w, addr_t base);

/// Confine a workload to the window [base, base + len): every access
/// address folds to base + addr % len. The CPU-style generators place
/// code at frame offset 0 and data at the 1 MiB mark, so offset_workload
/// alone cannot keep a master inside a narrow slice of the shared map —
/// this can, which is what the interconnect's firewalled masters (fleet
/// noc cells, tab12's whitelisted accelerator) need. \p len must be a
/// multiple of 8 so every access keeps its alignment and lands whole.
[[nodiscard]] workload confine_workload(workload w, addr_t base, std::size_t len);

/// The common suite the tab1 survey-overheads bench runs every engine on:
/// a mix representative of embedded firmware (mostly sequential code, some
/// branches, moderate data traffic).
[[nodiscard]] std::vector<workload> standard_suite(u64 seed);

// --- transaction drivers -----------------------------------------------------
// Tools for issuing a workload straight at a memory_port (an EDU, usually)
// in chunk-granular transactions — the request/sec view of an engine that
// Sealer-style throughput evaluation needs, with no CPU/L1 in the way.

/// One chunk-granular port operation derived from a workload access.
struct port_op {
  addr_t addr = 0;   ///< chunk-aligned
  bool write = false;
};

/// Lower a trace to chunk-aligned port operations, in program order, with
/// consecutive duplicates coalesced (the filtering an L1 would do for
/// free). Writes widen to the whole chunk, as a write-allocate line store
/// would.
[[nodiscard]] std::vector<port_op> to_port_ops(const workload& w, std::size_t chunk);

/// What a driver run measured.
struct throughput_stats {
  u64 ops = 0;
  u64 bytes = 0;
  cycles total_cycles = 0;

  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(bytes) / static_cast<double>(total_cycles);
  }
};

/// Issue \p ops one blocking scalar read()/write() at a time.
[[nodiscard]] throughput_stats issue_scalar(memory_port& port,
                                            std::span<const port_op> ops,
                                            std::size_t chunk);

/// Issue \p ops as submit()/drain() batches of \p batch_txns transactions.
/// Store data uses fill_store_pattern, so a scalar and a batched issue of
/// the same ops leave byte-identical memory images behind the port.
[[nodiscard]] throughput_stats issue_batched(memory_port& port,
                                             std::span<const port_op> ops,
                                             std::size_t chunk,
                                             std::size_t batch_txns);

} // namespace buscrypt::sim
