#include "sim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::sim {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

addr_t align_down(addr_t a, addr_t align) { return a - (a % align); }

} // namespace

workload make_sequential_code(std::size_t n_instr, std::size_t code_size,
                              std::size_t loop_every, u64 seed) {
  require(code_size >= 64, "make_sequential_code: code_size too small");
  rng r(seed);
  workload w;
  w.name = "seq-code";
  w.footprint = code_size;
  w.accesses.reserve(n_instr);

  addr_t pc = 0;
  std::size_t since_loop = 0;
  std::size_t jumps = 0;
  for (std::size_t i = 0; i < n_instr; ++i) {
    w.accesses.push_back({pc, 4, access_kind::fetch});
    pc += 4;
    ++since_loop;
    if (loop_every != 0 && since_loop >= loop_every) {
      // Short backward loop, like firmware polling/copy loops.
      const addr_t span = std::min<addr_t>(pc, 64 + r.below(192));
      pc = align_down(pc - span, 4);
      since_loop = 0;
      ++jumps;
    }
    if (pc + 4 > code_size) {
      pc = 0;
      ++jumps;
    }
  }
  w.jump_rate = n_instr == 0 ? 0.0 : static_cast<double>(jumps) / static_cast<double>(n_instr);
  return w;
}

workload make_jumpy_code(std::size_t n_instr, std::size_t code_size,
                         double jump_rate, u64 seed) {
  require(code_size >= 64, "make_jumpy_code: code_size too small");
  require(jump_rate >= 0.0 && jump_rate <= 1.0, "make_jumpy_code: bad jump_rate");
  rng r(seed);
  workload w;
  w.name = "jumpy-code";
  w.footprint = code_size;
  w.jump_rate = jump_rate;
  w.accesses.reserve(n_instr);

  addr_t pc = 0;
  for (std::size_t i = 0; i < n_instr; ++i) {
    w.accesses.push_back({pc, 4, access_kind::fetch});
    if (r.chance(jump_rate)) {
      pc = align_down(r.below(code_size - 4), 4);
    } else {
      pc += 4;
      if (pc + 4 > code_size) pc = 0;
    }
  }
  return w;
}

workload make_data_rw(std::size_t n_instr, std::size_t working_set, double mem_rate,
                      double write_fraction, u8 store_size, u64 seed) {
  require(working_set >= 64, "make_data_rw: working_set too small");
  require(store_size == 1 || store_size == 2 || store_size == 4 || store_size == 8,
          "make_data_rw: store_size must be 1/2/4/8");
  rng r(seed);
  workload w;
  w.name = "data-rw";
  w.footprint = working_set;
  w.write_fraction = mem_rate * write_fraction;
  w.accesses.reserve(static_cast<std::size_t>(static_cast<double>(n_instr) * (1.0 + mem_rate)));

  // Code region below the data region so they do not collide in the cache
  // in pathological ways; 16 KiB of code looped over.
  constexpr std::size_t code_size = 16 * 1024;
  const addr_t data_base = 1 << 20;

  addr_t pc = 0;
  for (std::size_t i = 0; i < n_instr; ++i) {
    w.accesses.push_back({pc, 4, access_kind::fetch});
    pc = (pc + 4) % code_size;
    if (r.chance(mem_rate)) {
      const bool is_store = r.chance(write_fraction);
      const addr_t a =
          data_base + align_down(r.below(working_set - 8), store_size);
      w.accesses.push_back(
          {a, store_size, is_store ? access_kind::store : access_kind::load});
    }
  }
  return w;
}

workload make_pointer_chase(std::size_t n_loads, std::size_t working_set, u64 seed) {
  require(working_set >= 64, "make_pointer_chase: working_set too small");
  rng r(seed);
  workload w;
  w.name = "ptr-chase";
  w.footprint = working_set;
  w.accesses.reserve(n_loads * 2);

  constexpr std::size_t code_size = 4 * 1024;
  const addr_t data_base = 1 << 20;
  addr_t pc = 0;
  addr_t cursor = data_base;
  for (std::size_t i = 0; i < n_loads; ++i) {
    w.accesses.push_back({pc, 4, access_kind::fetch});
    pc = (pc + 4) % code_size;
    w.accesses.push_back({cursor, 8, access_kind::load});
    // Next pointer is a deterministic pseudo-random hop.
    cursor = data_base + align_down(r.below(working_set - 8), 8);
  }
  return w;
}

workload make_streaming(std::size_t n_elems, std::size_t array_size,
                        std::size_t write_every, u64 seed) {
  require(array_size >= 64, "make_streaming: array_size too small");
  rng r(seed);
  (void)r;
  workload w;
  w.name = "streaming";
  w.footprint = array_size;
  w.accesses.reserve(n_elems * 2);

  constexpr std::size_t code_size = 1024;
  const addr_t data_base = 1 << 20;
  addr_t pc = 0;
  std::size_t writes = 0;
  for (std::size_t i = 0; i < n_elems; ++i) {
    w.accesses.push_back({pc, 4, access_kind::fetch});
    pc = (pc + 4) % code_size;
    const addr_t a = data_base + (i * 8) % array_size;
    w.accesses.push_back({a, 8, access_kind::load});
    if (write_every != 0 && i % write_every == write_every - 1) {
      w.accesses.push_back({a, 8, access_kind::store});
      ++writes;
    }
  }
  w.write_fraction = n_elems == 0 ? 0.0 : static_cast<double>(writes) / static_cast<double>(2 * n_elems);
  return w;
}

workload make_dma_copy(std::size_t n_bytes, addr_t src_base, addr_t dst_base,
                       std::size_t burst_bytes, u64 seed) {
  require(burst_bytes >= 8 && burst_bytes % 8 == 0,
          "make_dma_copy: burst must be a multiple of 8");
  require(n_bytes % burst_bytes == 0, "make_dma_copy: n_bytes must be whole bursts");
  rng r(seed);
  (void)r; // DMA streams are deterministic; the seed is kept for API symmetry
  workload w;
  w.name = "dma-copy";
  w.footprint = 2 * n_bytes;
  w.accesses.reserve(2 * n_bytes / 8);

  for (std::size_t off = 0; off < n_bytes; off += burst_bytes) {
    for (std::size_t b = 0; b < burst_bytes; b += 8)
      w.accesses.push_back({src_base + off + b, 8, access_kind::load});
    for (std::size_t b = 0; b < burst_bytes; b += 8)
      w.accesses.push_back({dst_base + off + b, 8, access_kind::store});
  }
  w.write_fraction = 0.5;
  return w;
}

workload make_peripheral_poll(std::size_t n_polls, addr_t reg_base, std::size_t n_regs,
                              std::size_t reg_stride, std::size_t write_every,
                              u64 seed) {
  require(n_regs >= 1, "make_peripheral_poll: need >= 1 register");
  require(reg_stride >= 4, "make_peripheral_poll: registers must not overlap");
  rng r(seed);
  (void)r;
  workload w;
  w.name = "periph-poll";
  w.footprint = n_regs * reg_stride;
  w.accesses.reserve(n_polls + (write_every ? n_polls / write_every : 0));

  std::size_t writes = 0;
  for (std::size_t i = 0; i < n_polls; ++i) {
    const addr_t reg = reg_base + (i % n_regs) * reg_stride;
    w.accesses.push_back({reg, 4, access_kind::load});
    if (write_every != 0 && i % write_every == write_every - 1) {
      w.accesses.push_back({reg, 4, access_kind::store});
      ++writes;
    }
  }
  w.write_fraction =
      w.accesses.empty() ? 0.0
                         : static_cast<double>(writes) / static_cast<double>(w.accesses.size());
  return w;
}

workload offset_workload(workload w, addr_t base) {
  for (mem_access& acc : w.accesses) acc.addr += base;
  return w;
}

workload confine_workload(workload w, addr_t base, std::size_t len) {
  require(len >= 64 && len % 8 == 0,
          "confine_workload: len must be >= 64 and a multiple of 8");
  for (mem_access& acc : w.accesses)
    acc.addr = base + acc.addr % static_cast<addr_t>(len);
  w.footprint = len;
  return w;
}

std::vector<port_op> to_port_ops(const workload& w, std::size_t chunk) {
  require(chunk >= 8 && chunk % 8 == 0, "to_port_ops: chunk must be a multiple of 8");
  std::vector<port_op> ops;
  ops.reserve(w.accesses.size());
  for (const mem_access& acc : w.accesses) {
    const port_op op{acc.addr - acc.addr % chunk, acc.kind == access_kind::store};
    if (!ops.empty() && ops.back().addr == op.addr && ops.back().write == op.write)
      continue; // the L1 would have filtered this repeat
    ops.push_back(op);
  }
  return ops;
}

throughput_stats issue_scalar(memory_port& port, std::span<const port_op> ops,
                              std::size_t chunk) {
  throughput_stats ts;
  bytes buf(chunk);
  for (const port_op& op : ops) {
    if (op.write) {
      fill_store_pattern(op.addr, buf);
      ts.total_cycles += port.write(op.addr, buf);
    } else {
      ts.total_cycles += port.read(op.addr, buf);
    }
    ++ts.ops;
    ts.bytes += chunk;
  }
  return ts;
}

throughput_stats issue_batched(memory_port& port, std::span<const port_op> ops,
                               std::size_t chunk, std::size_t batch_txns) {
  require(batch_txns >= 1, "issue_batched: batch_txns must be >= 1");
  throughput_stats ts;
  bytes buf(chunk * batch_txns); // one backing lane per in-flight txn
  std::vector<mem_txn> batch;
  batch.reserve(batch_txns);
  for (std::size_t base = 0; base < ops.size(); base += batch_txns) {
    const std::size_t n = std::min(batch_txns, ops.size() - base);
    batch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const port_op& op = ops[base + i];
      const std::span<u8> lane(buf.data() + i * chunk, chunk);
      if (op.write) {
        fill_store_pattern(op.addr, lane);
        batch.push_back(mem_txn::write_of(base + i, op.addr, lane));
      } else {
        batch.push_back(mem_txn::read_of(base + i, op.addr, lane));
      }
    }
    port.submit(batch);
    ts.total_cycles += port.drain();
    ts.ops += n;
    ts.bytes += n * chunk;
  }
  return ts;
}

std::vector<workload> standard_suite(u64 seed) {
  std::vector<workload> suite;
  suite.push_back(make_sequential_code(200'000, 96 * 1024, 400, seed + 1));
  suite.back().name = "firmware-seq";
  suite.push_back(make_jumpy_code(200'000, 256 * 1024, 0.10, seed + 2));
  suite.back().name = "branchy-10%";
  suite.push_back(make_data_rw(150'000, 512 * 1024, 0.35, 0.3, 4, seed + 3));
  suite.back().name = "data-mix";
  suite.push_back(make_pointer_chase(60'000, 1 << 20, seed + 4));
  suite.back().name = "ptr-chase";
  suite.push_back(make_streaming(80'000, 1 << 20, 8, seed + 5));
  suite.back().name = "streaming";
  return suite;
}

} // namespace buscrypt::sim
