#pragma once
/// \file fault_injector.hpp
/// Deterministic fault injection on the external-memory path — the
/// machinery that makes crash-safety claims *testable*. The injector is a
/// memory_port decorator sitting between the bus-encryption engine and the
/// external part, counting bus beats exactly as the DRAM would serialise
/// them, plus two out-of-band hooks the update agent drives (flush
/// boundaries and on-chip journal writes). An armed plan fires once, at a
/// seeded, reproducible point:
///
///   bus_beat  — power loss mid-burst: the beats before the cut land, the
///               rest never reach the chip (a *torn* DRAM write), then
///               power_cut is thrown. This is the crash-safety crux — a
///               half-written firmware slot is exactly what A/B commit
///               protocols must survive.
///   flush     — power loss at a flush boundary (between agent phases).
///   journal   — power loss during an on-chip journal record write: a
///               seeded prefix of the record lands, so recovery sees a
///               torn (MAC-invalid) record, never a silently half-trusted
///               one.
///   bit_flip  — no power loss: a seeded bit inside the blast window
///               (e.g. the staged image) flips on the chip once the
///               trigger beat passes — the Class-II attacker corrupting a
///               staged transfer, fwupd's tampered-DFU case.
///   bus_stall — no power loss: the next \p stalls transfer attempts see a
///               stalled bus; the agent is expected to retry with bounded
///               backoff (DFU interrupted-transfer handling).
///
/// Everything is deterministic in (plan, traffic): same plan, same
/// request stream, same cut — which is what lets the fleet re-drive
/// thousands of interrupted updates and prove bit-identical outcomes.

#include "common/types.hpp"
#include "sim/memory_port.hpp"

#include <stdexcept>
#include <string_view>

namespace buscrypt::sim {

/// Where in the run an armed fault fires.
enum class fault_point : u8 { none, bus_beat, flush, journal, bit_flip, bus_stall };

[[nodiscard]] constexpr std::string_view fault_point_name(fault_point p) noexcept {
  switch (p) {
    case fault_point::none: return "none";
    case fault_point::bus_beat: return "bus-beat";
    case fault_point::flush: return "flush";
    case fault_point::journal: return "journal";
    case fault_point::bit_flip: return "bit-flip";
    case fault_point::bus_stall: return "bus-stall";
  }
  return "?";
}

/// Parse a fault_point from its fault_point_name() spelling. Returns false
/// (and leaves \p out untouched) on an unknown name.
[[nodiscard]] bool parse_fault_point(std::string_view name, fault_point& out) noexcept;

inline constexpr fault_point all_fault_points[] = {
    fault_point::none,     fault_point::bus_beat, fault_point::flush,
    fault_point::journal,  fault_point::bit_flip, fault_point::bus_stall};

/// Thrown when an armed power-loss trigger fires. The harness catches it,
/// power-cycles the device (volatile caches gone, on-chip NVM intact) and
/// re-drives recovery — the simulated analogue of pulling the plug.
struct power_cut final : std::runtime_error {
  explicit power_cut(const char* point) : std::runtime_error(point) {}
};

/// One armed fault. `trigger` counts the unit native to the point: bus
/// beats (bus_beat, bit_flip), flush boundaries (flush) or journal record
/// writes (journal); bus_stall ignores it and uses `stalls`.
struct fault_plan {
  fault_point point = fault_point::none;
  u64 trigger = 0;
  u64 seed = 0; ///< bit_flip bit choice; journal torn-prefix length
  /// bit_flip only: the external window the flip lands in (e.g. the
  /// staged-image region).
  addr_t blast_base = 0;
  std::size_t blast_len = 0;
  unsigned stalls = 0; ///< bus_stall: attempts that fail before recovery
};

/// The injectable external-memory path. Unarmed (or after firing) it is a
/// pure pass-through: identical bytes, identical cycles.
class fault_injector final : public memory_port {
 public:
  /// \param lower the real external path; referenced, not owned.
  explicit fault_injector(memory_port& lower) : lower_(&lower) {}

  /// Arm \p p and reset every counter. A plan fires at most once.
  void arm(fault_plan p) noexcept {
    plan_ = p;
    armed_ = p.point != fault_point::none;
    fired_ = false;
    beats_ = 0;
    flushes_ = 0;
    journal_writes_ = 0;
    stalls_left_ = p.point == fault_point::bus_stall ? p.stalls : 0;
  }
  void disarm() noexcept { arm({}); }

  [[nodiscard]] const fault_plan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool fired() const noexcept { return fired_; }
  [[nodiscard]] u64 beats() const noexcept { return beats_; }
  [[nodiscard]] u64 flushes() const noexcept { return flushes_; }
  [[nodiscard]] u64 journal_writes() const noexcept { return journal_writes_; }

  // --- update-agent hooks ---------------------------------------------------

  /// A flush boundary between agent phases. Counts; an armed `flush` plan
  /// throws power_cut when the trigger-th boundary is reached.
  void on_flush();

  /// Write one on-chip NVM (journal) record through the fault path: an
  /// armed `journal` plan lets a seeded prefix of \p src land in \p dst,
  /// then throws power_cut — recovery must treat the torn record as
  /// garbage. Unarmed, the whole record lands.
  void nvm_write(std::span<u8> dst, std::span<const u8> src);

  /// bus_stall: true while the bus is refusing transfers (consumes one
  /// stall per call). The agent retries with bounded backoff.
  [[nodiscard]] bool stall_pending() noexcept {
    if (stalls_left_ == 0) return false;
    --stalls_left_;
    if (stalls_left_ == 0) fired_ = true;
    return true;
  }

  // --- memory_port ----------------------------------------------------------

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;
  // submit() inherits the scalar-serialising default, so batched traffic
  // crosses the same beat counter as scalar traffic.

 private:
  static constexpr u64 k_beat_bytes = 8; ///< bytes per counted bus beat

  [[nodiscard]] static u64 span_beats(std::size_t len) noexcept {
    return (static_cast<u64>(len) + k_beat_bytes - 1) / k_beat_bytes;
  }
  /// Beats of the current span that precede an armed bus_beat cut, or
  /// ~0ull when no cut lands inside the span. Advances the beat counter.
  [[nodiscard]] u64 cut_within(std::size_t len) noexcept;
  void maybe_flip() ;

  memory_port* lower_;
  fault_plan plan_{};
  bool armed_ = false;
  bool fired_ = false;
  u64 beats_ = 0;
  u64 flushes_ = 0;
  u64 journal_writes_ = 0;
  unsigned stalls_left_ = 0;
};

} // namespace buscrypt::sim
