#include "sim/dram.hpp"

#include <stdexcept>

namespace buscrypt::sim {

dram::dram(std::size_t size, dram_timing timing)
    : store_(size, 0), timing_(timing) {
  if (size == 0) throw std::invalid_argument("dram: zero size");
  if (timing_.bus_bytes == 0 || timing_.row_size == 0)
    throw std::invalid_argument("dram: invalid timing parameters");
}

void dram::check_range(addr_t addr, std::size_t len) const {
  if (addr + len > store_.size() || addr + len < addr)
    throw std::out_of_range("dram: access beyond end of memory");
}

void dram::read_bytes(addr_t addr, std::span<u8> out) const {
  check_range(addr, out.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = store_[addr + i];
}

void dram::write_bytes(addr_t addr, std::span<const u8> in) {
  check_range(addr, in.size());
  for (std::size_t i = 0; i < in.size(); ++i) store_[addr + i] = in[i];
}

cycles dram::access_time(addr_t addr, std::size_t len) {
  check_range(addr, len);
  const addr_t row = addr / timing_.row_size;
  cycles first;
  if (row == open_row_) {
    first = timing_.row_hit;
    ++row_hits_;
  } else {
    first = timing_.row_miss;
    ++row_misses_;
    open_row_ = row;
  }
  const std::size_t beats = (len + timing_.bus_bytes - 1) / timing_.bus_bytes;
  return first + beats * timing_.beat;
}

} // namespace buscrypt::sim
