#include "sim/dram.hpp"

#include <stdexcept>

namespace buscrypt::sim {

dram::dram(std::size_t size, dram_timing timing)
    : store_(size, 0), timing_(timing),
      open_rows_(timing.banks == 0 ? 1 : timing.banks, ~addr_t{0}) {
  if (size == 0) throw std::invalid_argument("dram: zero size");
  if (timing_.bus_bytes == 0 || timing_.row_size == 0 || timing_.banks == 0)
    throw std::invalid_argument("dram: invalid timing parameters");
}

void dram::check_range(addr_t addr, std::size_t len) const {
  if (addr + len > store_.size() || addr + len < addr)
    throw std::out_of_range("dram: access beyond end of memory");
}

void dram::read_bytes(addr_t addr, std::span<u8> out) const {
  check_range(addr, out.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = store_[addr + i];
}

void dram::write_bytes(addr_t addr, std::span<const u8> in) {
  check_range(addr, in.size());
  for (std::size_t i = 0; i < in.size(); ++i) store_[addr + i] = in[i];
}

unsigned dram::bank_of(addr_t addr) const noexcept {
  return static_cast<unsigned>((addr / timing_.row_size) % timing_.banks);
}

cycles dram::first_latency(addr_t addr) {
  const addr_t row = addr / timing_.row_size;
  addr_t& open = open_rows_[row % timing_.banks];
  if (row == open) {
    ++row_hits_;
    return timing_.row_hit;
  }
  ++row_misses_;
  open = row;
  return timing_.row_miss;
}

cycles dram::burst_cycles(std::size_t len) const noexcept {
  const std::size_t beats = (len + timing_.bus_bytes - 1) / timing_.bus_bytes;
  return static_cast<cycles>(beats) * timing_.beat;
}

cycles dram::access_time(addr_t addr, std::size_t len) {
  check_range(addr, len);
  return first_latency(addr) + burst_cycles(len);
}

} // namespace buscrypt::sim
