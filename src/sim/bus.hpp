#pragma once
/// \file bus.hpp
/// The processor-memory bus — "the weakest point of the system, hacker's
/// favorite security hole" (Section 1). external_memory drives DRAM over
/// this bus and exposes probe taps: every beat (address + data + direction)
/// is observable, modelling "simple board-level probing at almost no cost".

#include "sim/dram.hpp"
#include "sim/memory_port.hpp"

#include <functional>
#include <vector>

namespace buscrypt::sim {

/// One observed bus beat, as a logic analyser would capture it.
struct bus_beat {
  cycles at = 0;     ///< simulated time of the beat
  addr_t addr = 0;   ///< address driven on the address lines
  bool write = false;
  bytes data;        ///< data lines for this beat (bus_bytes wide or less)
};

/// Observer interface for attack code and loggers.
class bus_probe {
 public:
  virtual ~bus_probe() = default;
  virtual void on_beat(const bus_beat& beat) = 0;
};

/// A probe that simply records everything it sees.
class recording_probe final : public bus_probe {
 public:
  void on_beat(const bus_beat& beat) override { log_.push_back(beat); }
  [[nodiscard]] const std::vector<bus_beat>& log() const noexcept { return log_; }
  void clear() noexcept { log_.clear(); }

 private:
  std::vector<bus_beat> log_;
};

/// The off-chip path: memory controller + bus + DRAM. Implements
/// memory_port so EDUs can decorate it. Advances a local clock so probes
/// get coherent timestamps.
class external_memory final : public memory_port {
 public:
  explicit external_memory(dram& backing) : dram_(&backing) {}

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Attach an observer; not owned. Multiple probes allowed.
  void attach(bus_probe& probe) { probes_.push_back(&probe); }

  /// Bytes moved (for bandwidth accounting, e.g. the compression bench).
  [[nodiscard]] u64 bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] u64 bytes_written() const noexcept { return bytes_written_; }

  [[nodiscard]] dram& backing() noexcept { return *dram_; }

 private:
  void emit_beats(addr_t addr, std::span<const u8> data, bool write);

  dram* dram_;
  std::vector<bus_probe*> probes_;
  cycles now_ = 0;
  u64 bytes_read_ = 0;
  u64 bytes_written_ = 0;
};

} // namespace buscrypt::sim
