#pragma once
/// \file bus.hpp
/// The processor-memory bus — "the weakest point of the system, hacker's
/// favorite security hole" (Section 1). external_memory drives DRAM over
/// this bus and exposes probe taps: every beat (address + data + direction)
/// is observable, modelling "simple board-level probing at almost no cost".

#include "sim/dram.hpp"
#include "sim/memory_port.hpp"

#include <vector>

namespace buscrypt::sim {

/// One observed bus beat, as a logic analyser would capture it. Real
/// multi-master buses drive the granted master's id on dedicated lines
/// (AHB HMASTER); the tag is what lets an analyser — or an attacker —
/// attribute traffic per master instead of conflating the streams.
struct bus_beat {
  cycles at = 0;     ///< simulated time of the beat
  addr_t addr = 0;   ///< address driven on the address lines
  bool write = false;
  master_id master = cpu_master; ///< bus master that drove the beat
  bytes data;        ///< data lines for this beat (bus_bytes wide or less)
};

/// Observer interface for attack code and loggers.
class bus_probe {
 public:
  virtual ~bus_probe() = default;
  virtual void on_beat(const bus_beat& beat) = 0;
};

/// A probe that records what it sees. By default it keeps everything (a
/// logic analyser with bottomless storage); give it a capacity to get a
/// ring buffer that drops the oldest beats, so long throughput runs don't
/// grow without bound. beats_seen() counts every beat ever observed,
/// retained or not.
class recording_probe final : public bus_probe {
 public:
  recording_probe() = default;
  /// \param capacity max retained beats; 0 = unbounded.
  explicit recording_probe(std::size_t capacity) : capacity_(capacity) {}

  void on_beat(const bus_beat& beat) override;

  /// Number of retained beats (≤ capacity when bounded).
  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }

  /// Logical access, oldest first, O(1). Precondition: i < size(). Use
  /// this in loops that interleave with capture — it never touches the
  /// ring layout.
  [[nodiscard]] const bus_beat& operator[](std::size_t i) const noexcept {
    return log_[head_ == 0 ? i : (head_ + i) % log_.size()];
  }

  /// The retained beats as one contiguous vector, oldest first. Snapshot
  /// accessor: normalises the ring in place (O(size) after a wrap), so
  /// the reference stays cheap to hand to the attack code afterwards;
  /// prefer operator[] when capture continues between inspections.
  [[nodiscard]] const std::vector<bus_beat>& log() const;

  /// Total beats observed, including any dropped by the ring.
  [[nodiscard]] u64 beats_seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear() noexcept {
    log_.clear();
    head_ = 0;
    seen_ = 0;
  }

 private:
  mutable std::vector<bus_beat> log_;
  mutable std::size_t head_ = 0; ///< ring start when the buffer is full
  std::size_t capacity_ = 0;     ///< 0 = unbounded
  u64 seen_ = 0;
};

/// The off-chip path: memory controller + bus + DRAM. Implements
/// memory_port so EDUs can decorate it. Advances a local clock so probes
/// get coherent timestamps.
///
/// Scalar read/write issue one blocking burst. submit() schedules a whole
/// transaction batch: each segment's activate/CAS latency binds to its
/// DRAM bank (distinct banks overlap), data beats serialise on the shared
/// bus, and probe beats are timestamped from that schedule — so an
/// attacker tracing a batched run sees the real interleaved bus activity.
class external_memory final : public memory_port {
 public:
  explicit external_memory(dram& backing)
      : dram_(&backing), bank_ready_(backing.timing().banks, 0) {}

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  void submit(std::span<mem_txn> batch) override;
  using memory_port::drain;

  /// Attach an observer; not owned. Multiple probes allowed.
  void attach(bus_probe& probe) { probes_.push_back(&probe); }

  /// Master driving subsequent *scalar* traffic (batched transactions
  /// carry their own tag). An arbiter sets this per granted window so
  /// beats emitted by scalar-path EDUs are attributed correctly; it
  /// defaults to — and should be restored to — sim::cpu_master.
  void set_master(master_id m) noexcept { scalar_master_ = m; }
  [[nodiscard]] master_id current_master() const noexcept { return scalar_master_; }

  /// Bytes moved (for bandwidth accounting, e.g. the compression bench).
  [[nodiscard]] u64 bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] u64 bytes_written() const noexcept { return bytes_written_; }

  /// Bus beats driven since construction, probes attached or not — the
  /// traffic-overhead metric the authentication benches report (a tag
  /// fetch costs beats, an AREA sideband does not).
  [[nodiscard]] u64 beats() const noexcept { return beats_; }

  [[nodiscard]] dram& backing() noexcept { return *dram_; }

 private:
  void emit_beats(addr_t addr, std::span<const u8> data, bool write, cycles at,
                  master_id master);

  dram* dram_;
  std::vector<bus_probe*> probes_;
  cycles now_ = 0;
  master_id scalar_master_ = cpu_master; ///< tag for scalar-path beats
  std::vector<cycles> bank_ready_; ///< per-bank busy-until, absolute time
  u64 bytes_read_ = 0;
  u64 bytes_written_ = 0;
  u64 beats_ = 0;
};

} // namespace buscrypt::sim
