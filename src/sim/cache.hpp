#pragma once
/// \file cache.hpp
/// On-chip cache. In the survey's trust model everything inside the SoC —
/// including this cache — is trusted, so it holds plaintext (Fig. 2c);
/// the Fig. 7b variant where even the cache holds ciphertext is modelled by
/// edu::cacheside_edu on top of this class.
///
/// Set-associative, true-LRU, write-back/write-allocate or
/// write-through/no-allocate. Functional: lines hold real bytes and misses
/// move real data through the lower memory_port (i.e. through the EDU).

#include "sim/memory_port.hpp"

#include <optional>
#include <vector>

namespace buscrypt::sim {

struct cache_config {
  std::size_t size = 16 * 1024; ///< total data bytes
  std::size_t line_size = 32;   ///< bytes per line
  unsigned ways = 4;            ///< associativity
  bool write_back = true;       ///< false => write-through
  bool write_allocate = true;   ///< false => store misses bypass the cache
  cycles hit_latency = 1;       ///< access time on a hit
};

struct cache_stats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;           ///< dirty lines written to the lower level
  u64 bypass_writes = 0;        ///< stores sent directly below (no allocate)
  cycles stall_cycles = 0;      ///< cycles spent beyond hit latency

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// A blocking, single-ported cache.
class cache final : public memory_port {
 public:
  /// \param lower the next level (EDU or external memory); referenced.
  cache(const cache_config& cfg, memory_port& lower);

  /// memory_port: byte-granular, may straddle lines (split internally).
  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Write back every dirty line (e.g. before an attacker inspects DRAM).
  /// Issued below as one transaction batch, so an overlapping lower level
  /// drains it at sustained throughput rather than per-line latency.
  [[nodiscard]] cycles flush();

  /// Write back every dirty line, then drop all lines. For callers that
  /// mutate memory below the cache (e.g. a direct transaction stream) and
  /// need later accesses to refetch.
  [[nodiscard]] cycles flush_and_invalidate() {
    const cycles t = flush();
    for (line& l : lines_) l.valid = false;
    return t;
  }

  /// True when the line containing \p addr is resident (test hook).
  [[nodiscard]] bool contains(addr_t addr) const noexcept;

  [[nodiscard]] const cache_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const cache_config& config() const noexcept { return cfg_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct line {
    bool valid = false;
    bool dirty = false;
    addr_t tag = 0;
    u64 last_used = 0;
    bytes data;
  };

  struct locate_result {
    line* entry;
    cycles latency;
  };

  /// Ensure the line holding \p line_addr is resident; returns it plus the
  /// cycles spent (0 extra on hit).
  locate_result locate(addr_t line_addr, bool for_write);

  [[nodiscard]] std::size_t set_index(addr_t line_addr) const noexcept;

  cache_config cfg_;
  memory_port* lower_;
  std::vector<line> lines_; // sets * ways, row-major by set
  std::size_t n_sets_;
  u64 tick_ = 0;
  cache_stats stats_;
};

} // namespace buscrypt::sim
