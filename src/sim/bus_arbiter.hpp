#pragma once
/// \file bus_arbiter.hpp
/// The interconnect arbiter: time-multiplexes N bus masters onto one
/// shared downstream memory_port (the EDU in front of the external bus).
/// Each grant hands the winning master a window of `window_txns`
/// transactions, submitted as one batch — so everything the transaction
/// pipeline already models (multi-bank DRAM overlap, keystream parallel
/// to the fetch) composes per window — and the windows of different
/// masters interleave on the shared path exactly as bursts of an AHB/AXI
/// arbiter would.
///
/// Two grant policies, the classic pair:
///  - round_robin: rotate among masters with pending work. Fair by
///    construction — no master waits more than (masters - 1) rounds.
///  - fixed_priority: highest priority wins every round. Latency-optimal
///    for the favoured master and starvation-prone for everyone else;
///    `starvation_limit` adds aging — a master skipped that many
///    consecutive rounds pre-empts priority. Starved masters drain one
///    per round (longest streak first), so the worst-case streak is
///    starvation_limit + masters − 2, not the limit itself. 0 keeps
///    strict priority (unbounded).

#include "sim/bus_master.hpp"
#include "sim/memory_port.hpp"

#include <functional>
#include <string_view>
#include <vector>

namespace buscrypt::sim {

/// Grant policy of the shared bus.
enum class arb_policy : u8 {
  round_robin,    ///< rotate among pending masters (fair, bounded wait)
  fixed_priority, ///< highest bus_master_config::priority wins (starvation-prone)
};

[[nodiscard]] constexpr std::string_view arb_policy_name(arb_policy p) noexcept {
  switch (p) {
    case arb_policy::round_robin: return "round-robin";
    case arb_policy::fixed_priority: return "fixed-priority";
  }
  return "?";
}

/// Parse an arb_policy from its arb_policy_name() spelling. Returns false
/// (and leaves \p out untouched) on an unknown name.
[[nodiscard]] bool parse_arb_policy(std::string_view name, arb_policy& out) noexcept;

inline constexpr arb_policy all_arb_policies[] = {arb_policy::round_robin,
                                                  arb_policy::fixed_priority};

struct arbiter_config {
  arb_policy policy = arb_policy::round_robin;
  std::size_t window_txns = 8; ///< transactions per granted bus window
  /// fixed_priority only: a master that has waited this many consecutive
  /// rounds with pending work pre-empts priority (aging). When several
  /// masters starve at once they are served longest-streak-first, one
  /// per round, so a streak can overshoot by up to masters − 2 rounds.
  /// 0 = strict priority, unbounded starvation.
  u64 starvation_limit = 0;
};

/// What one multi-master run measured. Aggregate throughput is
/// bytes/total_cycles; fairness shows up in the per-master breakdown.
struct arbiter_stats {
  u64 rounds = 0;        ///< grant decisions taken
  u64 txns = 0;          ///< transactions carried, all masters
  u64 bytes = 0;         ///< payload bytes moved, all masters
  cycles total_cycles = 0;
  std::vector<master_stats> masters; ///< one entry per master, add order

  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(bytes) / static_cast<double>(total_cycles);
  }
};

/// The arbiter. Owns neither the port nor the masters; drives the whole
/// contention to completion in run().
///
/// \deprecated Direct construction is the legacy flat-bus API, kept as a
/// compatibility shim: run() builds a single-cluster sim::topology and
/// delegates to sim::interconnect, which takes the bit-identical grant
/// sequence. New code should declare a topology (interconnect.hpp) and
/// drive it through sim::interconnect or edu::soc::run_topology — that is
/// the only way to reach clusters, QoS classes, and bus firewalls.
class bus_arbiter {
 public:
  bus_arbiter(memory_port& port, arbiter_config cfg);

  /// Register a master (referenced, not owned). Grant order ties break
  /// toward earlier registration.
  void add_master(bus_master& m);

  /// Called with the winning master's id at each grant, before its window
  /// is submitted — the hook external_memory attribution uses to tag
  /// scalar-path beats (see external_memory::set_master).
  void set_grant_hook(std::function<void(master_id)> hook);

  /// Arbitrate until every master's stream is drained; returns the
  /// aggregate and per-master accounting. The downstream port must have
  /// no undrained submissions when this is called.
  [[nodiscard]] arbiter_stats run();

 private:
  memory_port* port_;
  arbiter_config cfg_;
  std::vector<bus_master*> masters_;
  std::function<void(master_id)> grant_hook_;
};

} // namespace buscrypt::sim
