#pragma once
/// \file cpu.hpp
/// Trace-driven in-order core. One instruction issues per cycle; every
/// memory access blocks until the cache answers. This is deliberately the
/// simplest model in which the survey's overhead numbers are meaningful:
/// slowdown = extra memory-path cycles / baseline cycles.

#include "sim/cache.hpp"
#include "sim/trace.hpp"

namespace buscrypt::sim {

/// Results of one workload execution.
struct run_stats {
  u64 instructions = 0;  ///< fetches executed
  u64 mem_ops = 0;       ///< loads + stores
  u64 bytes = 0;         ///< architectural bytes moved (fetch + load + store)
  cycles total_cycles = 0;
  cycles stall_cycles = 0; ///< cycles beyond 1-per-instruction issue

  [[nodiscard]] double cpi() const noexcept {
    return instructions == 0 ? 0.0
                             : static_cast<double>(total_cycles) / static_cast<double>(instructions);
  }

  /// Sustained throughput of the run (the survey's overlap story is only
  /// visible in this metric, not in per-access latency).
  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(bytes) / static_cast<double>(total_cycles);
  }

  /// Slowdown of this run against a baseline run (1.0 = no overhead).
  [[nodiscard]] double slowdown_vs(const run_stats& baseline) const noexcept {
    return baseline.total_cycles == 0
               ? 0.0
               : static_cast<double>(total_cycles) / static_cast<double>(baseline.total_cycles);
  }
};

/// The core. Functional: loads really read bytes, stores really write them
/// (a value derived from the address, so ciphertext downstream is real).
class cpu {
 public:
  /// \param l1 the first-level memory the core talks to (unified).
  /// \param hit_latency cycles an L1 hit costs; hits are folded into the
  ///        1-cycle issue slot, so only latency beyond this stalls.
  explicit cpu(memory_port& l1, cycles hit_latency = 1)
      : l1i_(&l1), l1d_(&l1), hit_latency_(hit_latency) {}

  /// Split (Harvard) form: instruction fetches go to \p l1i, data accesses
  /// to \p l1d. No coherence is modeled between them; workloads must not
  /// treat one address as both code and data (ours do not).
  cpu(memory_port& l1i, memory_port& l1d, cycles hit_latency)
      : l1i_(&l1i), l1d_(&l1d), hit_latency_(hit_latency) {}

  /// Extra cycles charged on *every* L1 access — the Fig. 7b cache-side
  /// EDU tax ("modifying the cache access time directly impacts the system
  /// performance").
  void set_access_tax(cycles t) noexcept { access_tax_ = t; }

  /// Execute a whole trace.
  [[nodiscard]] run_stats run(const workload& w);

 private:
  memory_port* l1i_;
  memory_port* l1d_;
  cycles hit_latency_;
  cycles access_tax_ = 0;
};

} // namespace buscrypt::sim
