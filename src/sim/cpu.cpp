#include "sim/cpu.hpp"

#include "common/bitops.hpp"

#include <array>

namespace buscrypt::sim {

run_stats cpu::run(const workload& w) {
  run_stats rs;
  std::array<u8, 8> buf{};

  for (const mem_access& acc : w.accesses) {
    const std::size_t n = acc.size;
    cycles latency = 0;
    rs.bytes += n;
    switch (acc.kind) {
      case access_kind::fetch:
        ++rs.instructions;
        rs.total_cycles += 1; // issue slot
        latency = l1i_->read(acc.addr, std::span<u8>(buf.data(), n));
        break;
      case access_kind::load:
        ++rs.mem_ops;
        latency = l1d_->read(acc.addr, std::span<u8>(buf.data(), n));
        break;
      case access_kind::store: {
        ++rs.mem_ops;
        fill_store_pattern(acc.addr, std::span<u8>(buf.data(), n));
        latency = l1d_->write(acc.addr, std::span<const u8>(buf.data(), n));
        break;
      }
    }
    const cycles stall = latency > hit_latency_ ? latency - hit_latency_ : 0;
    rs.total_cycles += stall + access_tax_;
    rs.stall_cycles += stall + access_tax_;
  }
  return rs;
}

} // namespace buscrypt::sim
