#pragma once
/// \file dram.hpp
/// External memory: the untrusted RAM chip outside the SoC boundary. Holds
/// the actual byte image (ciphertext when an EDU is in front of it) and
/// charges open-page DRAM timing. Rows interleave across a configurable
/// number of banks; accesses to distinct banks can overlap their
/// activate/CAS latency, which is what the transaction pipeline exploits
/// (the data beats still serialise on the shared bus).

#include "common/types.hpp"

#include <span>
#include <vector>

namespace buscrypt::sim {

/// Timing parameters in CPU cycles. Defaults approximate an embedded
/// SDRAM behind a 100 MHz-class core: tens of cycles to first data, a few
/// cycles per burst beat.
struct dram_timing {
  cycles row_hit = 18;    ///< first-data latency, open-row hit
  cycles row_miss = 46;   ///< first-data latency, row conflict (ACT+CAS)
  cycles beat = 2;        ///< cycles per bus beat once bursting
  unsigned bus_bytes = 8; ///< bytes transferred per beat
  std::size_t row_size = 2048; ///< DRAM row (page) size in bytes
  unsigned banks = 1;     ///< independent banks; rows interleave across them
};

/// Byte-addressable external memory with per-bank open-row timing.
class dram {
 public:
  dram(std::size_t size, dram_timing timing = {});

  /// Functional access to the stored image.
  void read_bytes(addr_t addr, std::span<u8> out) const;
  void write_bytes(addr_t addr, std::span<const u8> in);

  /// Latency of a burst of \p len bytes at \p addr; updates the open row.
  /// Equals first_latency(addr) + burst_cycles(len).
  [[nodiscard]] cycles access_time(addr_t addr, std::size_t len);

  /// The bank serving \p addr (global row index modulo bank count).
  [[nodiscard]] unsigned bank_of(addr_t addr) const noexcept;

  /// First-data latency at \p addr: row hit or miss against the bank's open
  /// row; updates the open row and the hit/miss counters. The scheduled
  /// (transaction) path calls this per segment so per-bank row state stays
  /// consistent with the issue order.
  [[nodiscard]] cycles first_latency(addr_t addr);

  /// Bus occupancy of a \p len-byte burst, in cycles.
  [[nodiscard]] cycles burst_cycles(std::size_t len) const noexcept;

  /// The bare chip contents — what a Class-II attacker desoldering or
  /// probing the part reads. Attacks and loaders use this deliberately.
  [[nodiscard]] std::span<u8> raw() noexcept { return store_; }
  [[nodiscard]] std::span<const u8> raw() const noexcept { return store_; }

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] const dram_timing& timing() const noexcept { return timing_; }

  /// Timing statistics.
  [[nodiscard]] u64 row_hits() const noexcept { return row_hits_; }
  [[nodiscard]] u64 row_misses() const noexcept { return row_misses_; }

 private:
  void check_range(addr_t addr, std::size_t len) const;

  std::vector<u8> store_;
  dram_timing timing_;
  std::vector<addr_t> open_rows_; ///< per bank; ~0 = closed
  u64 row_hits_ = 0;
  u64 row_misses_ = 0;
};

} // namespace buscrypt::sim
