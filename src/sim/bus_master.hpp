#pragma once
/// \file bus_master.hpp
/// A bus master: one initiator on the shared processor-memory interconnect.
/// The survey's SoCs are multi-master in exactly this sense — the CPU (via
/// its L1), VLSI Technology's secure DMA unit (Fig. 4) and peripherals all
/// contend for the single external bus — and hardware-firewall work
/// (Cotret et al.) frames *protection* as a per-master property, which is
/// why every master carries a stable id that rides its transactions down
/// to the bus beats and the engine's protection domains.
///
/// A master is (id, name, priority, txn stream): a chunk-granular request
/// stream lowered from a workload, staged window by window into mem_txn
/// batches when the arbiter grants it the bus.

#include "sim/mem_txn.hpp"
#include "sim/workload.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace buscrypt::sim {

struct bus_master_config {
  master_id id = cpu_master;
  std::string name = "master";
  unsigned priority = 0;  ///< higher wins under fixed-priority arbitration
  std::size_t chunk = 32; ///< bytes per transaction (line or burst granularity)
};

/// Per-master counters the arbiter maintains. Latency stamps are absolute
/// (cycles since the run began; every master is ready at cycle 0), so
/// avg_txn_latency() is the mean queueing + service delay a master's
/// requests experienced under the chosen arbitration policy.
struct master_stats {
  master_id id = cpu_master;
  std::string name;
  unsigned priority = 0;
  u64 txns = 0;             ///< transactions retired
  u64 bytes = 0;            ///< payload bytes moved
  u64 grants = 0;           ///< bus windows granted
  cycles service_cycles = 0; ///< makespan of this master's granted windows
  cycles finish_cycle = 0;   ///< absolute completion of its last transaction
  cycles latency_sum = 0;    ///< sum of absolute per-txn completion stamps
  u64 wait_rounds = 0;       ///< rounds another master was granted while this
                             ///< one had pending work
  u64 max_wait_streak = 0;   ///< longest consecutive such run (starvation)

  [[nodiscard]] double avg_txn_latency() const noexcept {
    return txns == 0 ? 0.0
                     : static_cast<double>(latency_sum) / static_cast<double>(txns);
  }
};

/// One master's request stream plus the staging buffer its in-flight
/// window lives in. Referenced (not owned) by bus_arbiter.
class bus_master {
 public:
  /// From pre-lowered port operations (addresses chunk-aligned).
  bus_master(bus_master_config cfg, std::vector<port_op> ops)
      : cfg_(std::move(cfg)), ops_(std::move(ops)) {
    stats_.id = cfg_.id;
    stats_.name = cfg_.name;
    stats_.priority = cfg_.priority;
  }

  /// From a workload, lowered at this master's chunk granularity.
  bus_master(bus_master_config cfg, const workload& w)
      : bus_master(std::move(cfg), to_port_ops(w, cfg.chunk)) {}

  [[nodiscard]] bool pending() const noexcept { return next_ < ops_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return ops_.size() - next_; }
  [[nodiscard]] const bus_master_config& config() const noexcept { return cfg_; }
  [[nodiscard]] const master_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] u64 wait_streak() const noexcept { return wait_streak_; }

  /// Stage up to \p n transactions into \p out (cleared first), tagged
  /// with this master's id. Data spans point into the master's own lane
  /// buffer and stay valid until the next stage() call; store payloads
  /// use fill_store_pattern, so any interleaving of masters with disjoint
  /// footprints leaves the same bytes a solo run would.
  std::size_t stage(std::size_t n, std::vector<mem_txn>& out) {
    out.clear();
    const std::size_t count = std::min(n, remaining());
    lanes_.resize(count * cfg_.chunk);
    for (std::size_t i = 0; i < count; ++i) {
      const port_op& op = ops_[next_ + i];
      const std::span<u8> lane(lanes_.data() + i * cfg_.chunk, cfg_.chunk);
      mem_txn txn;
      if (op.write) {
        fill_store_pattern(op.addr, lane);
        txn = mem_txn::write_of(txn_seq_, op.addr, lane);
      } else {
        txn = mem_txn::read_of(txn_seq_, op.addr, lane);
      }
      txn.master = cfg_.id;
      ++txn_seq_;
      out.push_back(std::move(txn));
    }
    next_ += count;
    return count;
  }

  /// Account a drained window: \p window_start is the absolute cycle the
  /// window was granted, \p makespan what the port's drain() reported.
  /// Per-txn completion stamps (relative to the drain window) become
  /// absolute latencies.
  void retire(std::span<const mem_txn> window, cycles window_start, cycles makespan) {
    ++stats_.grants;
    stats_.service_cycles += makespan;
    for (const mem_txn& txn : window) {
      ++stats_.txns;
      stats_.bytes += txn.bytes();
      const cycles done = window_start + txn.complete_cycle;
      stats_.latency_sum += done;
      stats_.finish_cycle = std::max(stats_.finish_cycle, done);
    }
    wait_streak_ = 0;
  }

  /// Another master won this round while we had pending work.
  void note_wait() noexcept {
    ++stats_.wait_rounds;
    ++wait_streak_;
    stats_.max_wait_streak = std::max(stats_.max_wait_streak, wait_streak_);
  }

 private:
  bus_master_config cfg_;
  std::vector<port_op> ops_;
  std::size_t next_ = 0;
  bytes lanes_; ///< backing storage for the staged window's data spans
  master_stats stats_;
  u64 txn_seq_ = 0;
  u64 wait_streak_ = 0;
};

} // namespace buscrypt::sim
