#pragma once
/// \file mem_txn.hpp
/// The memory transaction: the unit of work on the cache -> EDU -> DRAM
/// path. Modeled on the Linux inline-encryption request shape (keyslot +
/// data-unit number + multi-segment payload): a request is identified by
/// an id, carries scatter-gather segments, and completes at a scheduled
/// cycle rather than blocking the issuer. Batching requests is what lets
/// an engine express the survey's overlap story — keystream generated in
/// parallel with the fetch (Fig. 2a), pipelined AES (XOM) — instead of
/// serialising every access through a scalar read/write call.
///
/// \section txn_contract The submit/drain transaction contract
///
/// Every port that accepts `mem_txn` batches (see sim::memory_port)
/// honours the same invariants, which the pipeline tests assert:
///
/// 1. **Functional order is submission order.** The byte effects of a
///    batch are exactly those of issuing its transactions — segment by
///    segment — through scalar read()/write() calls in batch order. A
///    read observes every earlier write in the same batch; only *timing*
///    may overlap between transactions.
/// 2. **Completion stamps are relative and monotone.** `complete_cycle`
///    is filled in by the serving port, measured from that port's last
///    drain() (not from simulation start). Within one submit() call the
///    stamps are non-decreasing in submission order (in-order retirement),
///    and no stamp exceeds the makespan the next drain() returns.
/// 3. **Scalar fallback is always legal.** A port with no native batch
///    path may serve a batch through its own scalar read()/write() (the
///    memory_port default adapter does exactly this). The result must be
///    byte-identical; the makespan then equals the sum of the scalar
///    latencies — batching is a timing optimisation, never a functional
///    one.

#include "common/types.hpp"

#include <span>
#include <vector>

namespace buscrypt::sim {

/// Identity of the bus master that issued a transaction. Master 0 is the
/// CPU (the implicit issuer of all scalar traffic); an arbiter tags each
/// granted window with its master's id so protection domains and probe
/// attribution can tell concurrent streams apart.
using master_id = u32;

/// The CPU/default master: scalar requests and untagged transactions.
inline constexpr master_id cpu_master = 0;

/// Reserved sentinel — never a real master. It means "any/all masters"
/// wherever a master id selects a scope: the engine's shared-region owner,
/// the trace analyser's unfiltered view. Registering a master with this id
/// throws at the arbiter/interconnect, and a transaction forged with it is
/// an *accounted denial*, not a silent drop: the bus firewall refuses it
/// whole (bus_firewall::sentinel_denials), and the engine serves the 0xFF
/// bus-error fill through the fault path so the attempt shows up in
/// engine_stats like any other firewall denial.
inline constexpr master_id any_master = static_cast<master_id>(-1);

/// Direction of a transaction, as seen from the requester.
enum class txn_op : u8 {
  read,  ///< fill the segment buffers from memory
  write, ///< store the segment buffers to memory
};

/// One scatter-gather element: a contiguous byte range at an address.
/// For reads the span is the destination; for writes it is the source and
/// is never modified by the port.
struct txn_segment {
  addr_t addr = 0;
  std::span<u8> data{};
};

/// One batched memory request. Functional effects are applied in
/// submission order (txn by txn, segment by segment); only *timing* may
/// overlap between transactions, which is exactly the concurrency the
/// surveyed hardware engines exploit. See \ref txn_contract for the
/// invariants every serving port upholds.
struct mem_txn {
  u64 id = 0;
  txn_op op = txn_op::read;
  master_id master = cpu_master; ///< issuing bus master (propagated downward
                                 ///< by decorating ports, tagged onto beats)
  std::vector<txn_segment> segments;
  cycles complete_cycle = 0; ///< set by the port: completion time relative to
                             ///< its last drain() (monotone within a batch)

  [[nodiscard]] constexpr bool is_write() const noexcept { return op == txn_op::write; }

  /// Total payload bytes across all segments.
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t n = 0;
    for (const txn_segment& s : segments) n += s.data.size();
    return n;
  }

  /// Single-segment read request.
  [[nodiscard]] static mem_txn read_of(u64 id, addr_t addr, std::span<u8> out) {
    mem_txn t;
    t.id = id;
    t.op = txn_op::read;
    t.segments.push_back({addr, out});
    return t;
  }

  /// Single-segment write request (the span is read, not modified).
  [[nodiscard]] static mem_txn write_of(u64 id, addr_t addr, std::span<u8> in) {
    mem_txn t;
    t.id = id;
    t.op = txn_op::write;
    t.segments.push_back({addr, in});
    return t;
  }
};

static_assert(static_cast<u8>(txn_op::read) == 0 && static_cast<u8>(txn_op::write) == 1,
              "txn_op is part of the wire-visible contract; keep it stable");
static_assert(cpu_master == 0, "master 0 is the CPU by contract; scalar traffic "
                               "and default-constructed txns rely on it");

} // namespace buscrypt::sim
