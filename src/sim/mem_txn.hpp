#pragma once
/// \file mem_txn.hpp
/// The memory transaction: the unit of work on the cache -> EDU -> DRAM
/// path. Modeled on the Linux inline-encryption request shape (keyslot +
/// data-unit number + multi-segment payload): a request is identified by
/// an id, carries scatter-gather segments, and completes at a scheduled
/// cycle rather than blocking the issuer. Batching requests is what lets
/// an engine express the survey's overlap story — keystream generated in
/// parallel with the fetch (Fig. 2a), pipelined AES (XOM) — instead of
/// serialising every access through a scalar read/write call.

#include "common/types.hpp"

#include <span>
#include <vector>

namespace buscrypt::sim {

/// Direction of a transaction, as seen from the requester.
enum class txn_op : u8 {
  read,  ///< fill the segment buffers from memory
  write, ///< store the segment buffers to memory
};

/// One scatter-gather element: a contiguous byte range at an address.
/// For reads the span is the destination; for writes it is the source and
/// is never modified by the port.
struct txn_segment {
  addr_t addr = 0;
  std::span<u8> data{};
};

/// One batched memory request. Functional effects are applied in
/// submission order (txn by txn, segment by segment); only *timing* may
/// overlap between transactions, which is exactly the concurrency the
/// surveyed hardware engines exploit.
struct mem_txn {
  u64 id = 0;
  txn_op op = txn_op::read;
  std::vector<txn_segment> segments;
  cycles complete_cycle = 0; ///< set by the port: completion time relative to
                             ///< its last drain() (monotone within a batch)

  [[nodiscard]] constexpr bool is_write() const noexcept { return op == txn_op::write; }

  /// Total payload bytes across all segments.
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t n = 0;
    for (const txn_segment& s : segments) n += s.data.size();
    return n;
  }

  /// Single-segment read request.
  [[nodiscard]] static mem_txn read_of(u64 id, addr_t addr, std::span<u8> out) {
    mem_txn t;
    t.id = id;
    t.op = txn_op::read;
    t.segments.push_back({addr, out});
    return t;
  }

  /// Single-segment write request (the span is read, not modified).
  [[nodiscard]] static mem_txn write_of(u64 id, addr_t addr, std::span<u8> in) {
    mem_txn t;
    t.id = id;
    t.op = txn_op::write;
    t.segments.push_back({addr, in});
    return t;
  }
};

static_assert(static_cast<u8>(txn_op::read) == 0 && static_cast<u8>(txn_op::write) == 1,
              "txn_op is part of the wire-visible contract; keep it stable");

} // namespace buscrypt::sim
