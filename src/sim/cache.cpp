#include "sim/cache.hpp"

#include "common/bitops.hpp"

#include <stdexcept>

namespace buscrypt::sim {

cache::cache(const cache_config& cfg, memory_port& lower)
    : cfg_(cfg), lower_(&lower) {
  if (!is_pow2(cfg.line_size) || cfg.line_size < 8)
    throw std::invalid_argument("cache: line_size must be a power of two >= 8");
  if (cfg.ways == 0 || cfg.size % (cfg.line_size * cfg.ways) != 0)
    throw std::invalid_argument("cache: size must be a multiple of line_size*ways");
  n_sets_ = cfg.size / (cfg.line_size * cfg.ways);
  if (!is_pow2(n_sets_))
    throw std::invalid_argument("cache: set count must be a power of two");
  lines_.resize(n_sets_ * cfg.ways);
  for (auto& l : lines_) l.data.resize(cfg.line_size, 0);
}

std::size_t cache::set_index(addr_t line_addr) const noexcept {
  return static_cast<std::size_t>((line_addr / cfg_.line_size) & (n_sets_ - 1));
}

bool cache::contains(addr_t addr) const noexcept {
  const addr_t line_addr = addr - addr % cfg_.line_size;
  const std::size_t base = set_index(line_addr) * cfg_.ways;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const line& l = lines_[base + w];
    if (l.valid && l.tag == line_addr) return true;
  }
  return false;
}

cache::locate_result cache::locate(addr_t line_addr, bool for_write) {
  const std::size_t base = set_index(line_addr) * cfg_.ways;
  ++tick_;

  // Hit?
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    line& l = lines_[base + w];
    if (l.valid && l.tag == line_addr) {
      ++stats_.hits;
      l.last_used = tick_;
      return {&l, 0};
    }
  }

  // Miss: pick a victim — first invalid way, else true LRU.
  ++stats_.misses;
  line* victim = &lines_[base];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    line& l = lines_[base + w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.last_used < victim->last_used) victim = &l;
  }

  cycles spent = 0;
  if (victim->valid && victim->dirty) {
    // Dirty miss: issue the evict/fill pair as one transaction batch so a
    // lower level with real concurrency (multi-bank DRAM, keystream
    // parallel to the fetch) can overlap them. Functional order is
    // preserved — the writeback drains victim->data before the fill
    // refills it.
    ++stats_.evictions;
    ++stats_.writebacks;
    mem_txn pair[2] = {mem_txn::write_of(0, victim->tag, victim->data),
                       mem_txn::read_of(1, line_addr, victim->data)};
    lower_->submit(pair);
    spent += lower_->drain();
  } else {
    if (victim->valid) ++stats_.evictions;
    spent += lower_->read(line_addr, victim->data);
  }
  victim->valid = true;
  victim->dirty = for_write && cfg_.write_back;
  victim->tag = line_addr;
  victim->last_used = tick_;
  return {victim, spent};
}

cycles cache::read(addr_t addr, std::span<u8> out) {
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const addr_t line_addr = a - a % cfg_.line_size;
    const std::size_t offset = static_cast<std::size_t>(a - line_addr);
    const std::size_t n = std::min(cfg_.line_size - offset, out.size() - done);

    ++stats_.accesses;
    auto [entry, extra] = locate(line_addr, /*for_write=*/false);
    for (std::size_t i = 0; i < n; ++i) out[done + i] = entry->data[offset + i];
    stats_.stall_cycles += extra;
    total += cfg_.hit_latency + extra;
    done += n;
  }
  return total;
}

cycles cache::write(addr_t addr, std::span<const u8> in) {
  cycles total = 0;
  std::size_t done = 0;
  while (done < in.size()) {
    const addr_t a = addr + done;
    const addr_t line_addr = a - a % cfg_.line_size;
    const std::size_t offset = static_cast<std::size_t>(a - line_addr);
    const std::size_t n = std::min(cfg_.line_size - offset, in.size() - done);

    ++stats_.accesses;
    if (cfg_.write_back) {
      auto [entry, extra] = locate(line_addr, /*for_write=*/true);
      for (std::size_t i = 0; i < n; ++i) entry->data[offset + i] = in[done + i];
      entry->dirty = true;
      stats_.stall_cycles += extra;
      total += cfg_.hit_latency + extra;
    } else {
      // Write-through: update the line if resident, always write below.
      const std::size_t base = set_index(line_addr) * cfg_.ways;
      bool hit = false;
      for (unsigned w = 0; w < cfg_.ways; ++w) {
        line& l = lines_[base + w];
        if (l.valid && l.tag == line_addr) {
          for (std::size_t i = 0; i < n; ++i) l.data[offset + i] = in[done + i];
          l.last_used = ++tick_;
          hit = true;
          break;
        }
      }
      if (hit) ++stats_.hits;
      else ++stats_.misses;

      if (!hit && cfg_.write_allocate) {
        auto [entry, extra] = locate(line_addr, /*for_write=*/true);
        // locate() counted another access path; rebalance the counters so
        // one store == one access.
        --stats_.accesses;
        --stats_.misses;
        for (std::size_t i = 0; i < n; ++i) entry->data[offset + i] = in[done + i];
        stats_.stall_cycles += extra;
        total += extra;
      }

      ++stats_.bypass_writes;
      const cycles below = lower_->write(a, in.subspan(done, n));
      stats_.stall_cycles += below;
      total += cfg_.hit_latency + below;
    }
    done += n;
  }
  return total;
}

cycles cache::flush() {
  // All dirty lines leave as one batch: the drain of an entire cache is
  // the throughput-bound case the transaction pipeline exists for.
  std::vector<mem_txn> writebacks;
  for (auto& l : lines_) {
    if (l.valid && l.dirty) {
      writebacks.push_back(mem_txn::write_of(writebacks.size(), l.tag, l.data));
      ++stats_.writebacks;
      l.dirty = false;
    }
  }
  if (writebacks.empty()) return 0;
  lower_->submit(writebacks);
  return lower_->drain();
}

} // namespace buscrypt::sim
