#include "sim/bus.hpp"

#include <algorithm>

namespace buscrypt::sim {

void recording_probe::on_beat(const bus_beat& beat) {
  ++seen_;
  if (capacity_ == 0 || log_.size() < capacity_) {
    log_.push_back(beat);
    return;
  }
  // Ring full: overwrite the oldest slot.
  log_[head_] = beat;
  head_ = (head_ + 1) % capacity_;
}

const std::vector<bus_beat>& recording_probe::log() const {
  if (head_ != 0) {
    // Normalise the ring so the vector reads oldest-first.
    std::rotate(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(head_),
                log_.end());
    head_ = 0;
  }
  return log_;
}

void external_memory::emit_beats(addr_t addr, std::span<const u8> data, bool write,
                                 cycles at, master_id master) {
  const unsigned bus_bytes = dram_->timing().bus_bytes;
  beats_ += (data.size() + bus_bytes - 1) / bus_bytes;
  if (probes_.empty()) return;
  for (std::size_t off = 0; off < data.size(); off += bus_bytes) {
    bus_beat beat;
    beat.addr = addr + off;
    beat.write = write;
    beat.master = master;
    const std::size_t n = std::min<std::size_t>(bus_bytes, data.size() - off);
    beat.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                     data.begin() + static_cast<std::ptrdiff_t>(off + n));
    beat.at = at + (off / bus_bytes) * dram_->timing().beat;
    for (bus_probe* p : probes_) p->on_beat(beat);
  }
}

cycles external_memory::read(addr_t addr, std::span<u8> out) {
  dram_->read_bytes(addr, out);
  // Stamp beats at data-arrival (after activate/CAS), the same convention
  // submit() uses, so scalar and batched traffic through one probe share a
  // single timebase.
  const cycles first = dram_->first_latency(addr);
  const cycles t = first + dram_->burst_cycles(out.size());
  emit_beats(addr, out, /*write=*/false, now_ + first, scalar_master_);
  now_ += t;
  bytes_read_ += out.size();
  return t;
}

cycles external_memory::write(addr_t addr, std::span<const u8> in) {
  dram_->write_bytes(addr, in);
  const cycles first = dram_->first_latency(addr);
  const cycles t = first + dram_->burst_cycles(in.size());
  emit_beats(addr, in, /*write=*/true, now_ + first, scalar_master_);
  now_ += t;
  bytes_written_ += in.size();
  return t;
}

void external_memory::submit(std::span<mem_txn> batch) {
  // The scheduled path: per-segment activate/CAS binds to the segment's
  // bank (distinct banks overlap), data beats serialise on the bus.
  // Functional effects stay in submission order; scalar calls never leave
  // bank_ready_ ahead of now_, so stale entries are harmless.
  const cycles start = now_;
  cycles bus_free = start;
  cycles last = start;
  for (mem_txn& txn : batch) {
    for (txn_segment& seg : txn.segments) {
      if (txn.is_write()) {
        dram_->write_bytes(seg.addr, seg.data);
        bytes_written_ += seg.data.size();
      } else {
        dram_->read_bytes(seg.addr, seg.data);
        bytes_read_ += seg.data.size();
      }
      const unsigned b = dram_->bank_of(seg.addr);
      const cycles cmd = std::max(start, bank_ready_[b]);
      const cycles data_ready = cmd + dram_->first_latency(seg.addr);
      const cycles bus_start = std::max(data_ready, bus_free);
      const cycles done = bus_start + dram_->burst_cycles(seg.data.size());
      bank_ready_[b] = done;
      bus_free = done;
      emit_beats(seg.addr, seg.data, txn.is_write(), bus_start, txn.master);
      last = std::max(last, done);
    }
    txn.complete_cycle = pending_txn_cycles_ + (last - start);
  }
  pending_txn_cycles_ += last - start;
  now_ = last;
}

} // namespace buscrypt::sim
