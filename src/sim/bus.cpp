#include "sim/bus.hpp"

namespace buscrypt::sim {

void external_memory::emit_beats(addr_t addr, std::span<const u8> data, bool write) {
  if (probes_.empty()) return;
  const unsigned bus_bytes = dram_->timing().bus_bytes;
  for (std::size_t off = 0; off < data.size(); off += bus_bytes) {
    bus_beat beat;
    beat.addr = addr + off;
    beat.write = write;
    const std::size_t n = std::min<std::size_t>(bus_bytes, data.size() - off);
    beat.data.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                     data.begin() + static_cast<std::ptrdiff_t>(off + n));
    beat.at = now_ + (off / bus_bytes) * dram_->timing().beat;
    for (bus_probe* p : probes_) p->on_beat(beat);
  }
}

cycles external_memory::read(addr_t addr, std::span<u8> out) {
  const cycles t = dram_->access_time(addr, out.size());
  dram_->read_bytes(addr, out);
  emit_beats(addr, out, /*write=*/false);
  now_ += t;
  bytes_read_ += out.size();
  return t;
}

cycles external_memory::write(addr_t addr, std::span<const u8> in) {
  const cycles t = dram_->access_time(addr, in.size());
  dram_->write_bytes(addr, in);
  emit_beats(addr, in, /*write=*/true);
  now_ += t;
  bytes_written_ += in.size();
  return t;
}

} // namespace buscrypt::sim
