#include "sim/bus_arbiter.hpp"

#include "sim/interconnect.hpp"

#include <stdexcept>

namespace buscrypt::sim {

bool parse_arb_policy(std::string_view name, arb_policy& out) noexcept {
  for (const arb_policy p : all_arb_policies)
    if (name == arb_policy_name(p)) {
      out = p;
      return true;
    }
  return false;
}

bus_arbiter::bus_arbiter(memory_port& port, arbiter_config cfg)
    : port_(&port), cfg_(cfg) {
  if (cfg_.window_txns == 0)
    throw std::invalid_argument("bus_arbiter: window_txns must be >= 1");
}

void bus_arbiter::add_master(bus_master& m) {
  if (m.config().id == any_master)
    throw std::invalid_argument("bus_arbiter: master id is the reserved "
                                "any_master sentinel");
  for (const bus_master* existing : masters_)
    if (existing->config().id == m.config().id)
      throw std::invalid_argument("bus_arbiter: duplicate master id");
  masters_.push_back(&m);
}

void bus_arbiter::set_grant_hook(std::function<void(master_id)> hook) {
  grant_hook_ = std::move(hook);
}

arbiter_stats bus_arbiter::run() {
  // The flat bus is the degenerate topology: one implicit cluster holding
  // every registered master, arbitrated by this config. The interconnect
  // takes the bit-identical grant sequence (see interconnect.hpp).
  interconnect ic(*port_, topology(cfg_));
  for (bus_master* m : masters_) ic.add_master(*m);
  if (grant_hook_) ic.set_grant_hook(grant_hook_);
  return ic.run().bus;
}

} // namespace buscrypt::sim
