#include "sim/bus_arbiter.hpp"

#include <stdexcept>

namespace buscrypt::sim {

bus_arbiter::bus_arbiter(memory_port& port, arbiter_config cfg)
    : port_(&port), cfg_(cfg) {
  if (cfg_.window_txns == 0)
    throw std::invalid_argument("bus_arbiter: window_txns must be >= 1");
}

void bus_arbiter::add_master(bus_master& m) {
  if (m.config().id == any_master)
    throw std::invalid_argument("bus_arbiter: master id is the reserved "
                                "any_master sentinel");
  for (const bus_master* existing : masters_)
    if (existing->config().id == m.config().id)
      throw std::invalid_argument("bus_arbiter: duplicate master id");
  masters_.push_back(&m);
}

void bus_arbiter::set_grant_hook(std::function<void(master_id)> hook) {
  grant_hook_ = std::move(hook);
}

int bus_arbiter::pick() {
  const std::size_t n = masters_.size();
  if (n == 0) return -1;

  if (cfg_.policy == arb_policy::round_robin) {
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = (rr_next_ + step) % n;
      if (masters_[i]->pending()) {
        rr_next_ = (i + 1) % n;
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // fixed_priority. Aging first: the longest-waiting master past the
  // starvation limit pre-empts priority (ties toward registration order).
  int starved = -1;
  if (cfg_.starvation_limit > 0) {
    u64 longest = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u64 streak = masters_[i]->wait_streak();
      if (masters_[i]->pending() && streak >= cfg_.starvation_limit && streak > longest) {
        longest = streak;
        starved = static_cast<int>(i);
      }
    }
  }
  if (starved >= 0) return starved;

  int best = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!masters_[i]->pending()) continue;
    if (best < 0 ||
        masters_[i]->config().priority > masters_[static_cast<std::size_t>(best)]->config().priority)
      best = static_cast<int>(i);
  }
  return best;
}

arbiter_stats bus_arbiter::run() {
  arbiter_stats st;
  cycles clock = 0;
  std::vector<mem_txn> window;
  window.reserve(cfg_.window_txns);

  // Restore the default attribution once the bus falls idle — on every
  // exit path: if a window submission throws, downstream beat tagging
  // must not stay stuck on the last granted master.
  struct hook_restore {
    const std::function<void(master_id)>* hook;
    ~hook_restore() {
      if (*hook) (*hook)(cpu_master);
    }
  } restore{&grant_hook_};

  for (int g = pick(); g >= 0; g = pick()) {
    bus_master& granted = *masters_[static_cast<std::size_t>(g)];
    if (grant_hook_) grant_hook_(granted.config().id);

    const std::size_t n = granted.stage(cfg_.window_txns, window);
    port_->submit(window);
    const cycles makespan = port_->drain();
    granted.retire(window, clock, makespan);
    clock += makespan;

    ++st.rounds;
    st.txns += n;
    for (bus_master* other : masters_)
      if (other != &granted && other->pending()) other->note_wait();
  }

  st.total_cycles = clock;
  st.masters.reserve(masters_.size());
  for (const bus_master* m : masters_) {
    st.bytes += m->stats().bytes;
    st.masters.push_back(m->stats());
  }
  return st;
}

} // namespace buscrypt::sim
