#pragma once
/// \file pool.hpp
/// Work-stealing thread pool for the fleet runner. Jobs are independent
/// by contract (each one simulates a whole SoC); the pool only decides
/// *which host thread* runs each job, never in what order results are
/// reported — so scheduling nondeterminism can never leak into fleet
/// output. Stealing is what keeps the pool busy under the fleet's wildly
/// skewed cell costs (a GI-3DES cell is ~1000x a Best-STP cell on the
/// host): workers that drain their own deque pull from the tail of a
/// busy victim's instead of idling.

#include "common/types.hpp"

#include <cstddef>
#include <functional>

namespace buscrypt::fleet {

/// What one pool run did on the host (telemetry, not simulation state).
struct pool_stats {
  unsigned threads = 0; ///< workers actually spawned
  u64 executed = 0;     ///< jobs run (== n on success)
  u64 steals = 0;       ///< jobs a worker took from another's deque
};

/// Run fn(0) .. fn(n-1) across \p threads workers and block until done.
///
/// Each worker owns a deque seeded round-robin with job indices; owners
/// pop LIFO from the back, idle workers steal FIFO from the front of the
/// first non-empty victim. Deques are mutex-guarded (simplicity and
/// TSan-provable correctness over lock-free cleverness — each job is a
/// whole SoC simulation, so queue overhead is noise).
///
/// \param threads worker count; 0 = std::thread::hardware_concurrency()
///        (minimum 1). threads == 1 runs the jobs inline in index order —
///        the serial reference the determinism tests compare against.
/// \param fn called concurrently for distinct indices; must synchronise
///        any shared state itself.
///
/// The first exception a job throws is rethrown here after every worker
/// has stopped; remaining queued jobs are skipped once a job has thrown.
pool_stats run_jobs(std::size_t n, unsigned threads,
                    const std::function<void(std::size_t)>& fn);

} // namespace buscrypt::fleet
