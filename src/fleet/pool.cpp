#include "fleet/pool.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace buscrypt::fleet {

namespace {

/// One worker's job deque. A plain mutex per deque: owners and thieves
/// contend only when they actually touch the same worker's queue.
struct worker_deque {
  std::mutex mu;
  std::deque<std::size_t> jobs;

  /// Owner side: LIFO from the back (cache-warm, newest first).
  bool pop_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }

  /// Thief side: FIFO from the front (oldest — likely the biggest share
  /// of remaining work under round-robin seeding).
  bool steal_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

} // namespace

pool_stats run_jobs(std::size_t n, unsigned threads,
                    const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  pool_stats stats;
  if (n == 0) {
    stats.threads = 0;
    return stats;
  }

  if (threads == 1 || n == 1) {
    // Serial reference path: same jobs, same order, no worker machinery.
    stats.threads = 1;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    stats.executed = n;
    return stats;
  }
  if (threads > n) threads = static_cast<unsigned>(n);

  std::vector<worker_deque> deques(threads);
  for (std::size_t i = 0; i < n; ++i)
    deques[i % threads].jobs.push_back(i); // pre-start: no locking needed

  std::atomic<u64> executed{0};
  std::atomic<u64> steals{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&](unsigned self) {
    std::size_t job = 0;
    while (!failed.load(std::memory_order_relaxed)) {
      bool got = deques[self].pop_back(job);
      u64 stole = 0;
      for (unsigned v = 1; !got && v < threads; ++v) {
        got = deques[(self + v) % threads].steal_front(job);
        stole = 1;
      }
      // All deques empty: done. Jobs never enqueue new jobs, so an empty
      // sweep can never be followed by fresh work appearing.
      if (!got) return;
      steals.fetch_add(stole, std::memory_order_relaxed);
      try {
        fn(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      executed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  stats.threads = threads;
  stats.executed = executed.load();
  stats.steals = steals.load();
  return stats;
}

} // namespace buscrypt::fleet
