#include "fleet/fleet.hpp"

#include "common/rng.hpp"
#include "edu/engine_edu.hpp"
#include "sim/workload.hpp"

#include <chrono>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace buscrypt::fleet {

namespace {

/// The embedded-class SoC geometry every cell runs (the tab7 bench
/// geometry: 8 KiB 2-way L1, 32 B lines, 8 MiB DRAM over 8 banks).
edu::soc_config cell_soc(const fleet_cell& c) {
  edu::soc_config cfg;
  cfg.l1.size = 8 * 1024;
  cfg.l1.line_size = 32;
  cfg.l1.ways = 2;
  cfg.mem_size = 8u << 20;
  cfg.mem_timing.banks = 8;
  cfg.key_seed = c.seed;
  if (c.kind == edu::engine_kind::inline_keyslot) {
    cfg.keyslot_backend = c.backend;
    cfg.keyslot_auth = c.auth;
    cfg.keyslot_policy = c.policy;
    cfg.keyslot_slots = c.keyslot_slots;
  }
  return cfg;
}

/// Deterministic firmware-like image: seed-derived, word-patterned so
/// compress_otp has structure to work with (pure noise would not
/// compress and the cell would degenerate).
bytes cell_image(const fleet_cell& c) {
  rng r(c.seed ^ 0xF1EE7'1A6EULL);
  bytes img(c.footprint);
  for (std::size_t off = 0; off + 4 <= img.size(); off += 4) {
    // Skewed high half (opcode-ish), noisy low half (immediate-ish).
    img[off] = static_cast<u8>(r.below(24) * 8);
    img[off + 1] = static_cast<u8>(0xE0 | r.below(8));
    img[off + 2] = r.next_byte();
    img[off + 3] = static_cast<u8>(r.below(64));
  }
  return img;
}

sim::workload cell_workload(const fleet_cell& c) {
  const std::size_t n = c.accesses;
  const std::size_t fp = c.footprint;
  sim::workload w;
  switch (c.load) {
    case traffic::mixed: {
      // The tab7 "mixed-heavy" shape at cell scale: branchy fetch over
      // many DRAM rows plus a streaming store component.
      w = sim::make_jumpy_code(n - n / 4, fp, 0.15, c.seed ^ 0x7AB7);
      sim::workload s = sim::make_streaming(n / 4, fp, 4, c.seed ^ 0x7AB8);
      w.accesses.insert(w.accesses.end(), s.accesses.begin(), s.accesses.end());
      break;
    }
    case traffic::jumpy:
      w = sim::make_jumpy_code(n, fp, 0.15, c.seed ^ 0x7AB7);
      break;
    case traffic::streaming:
      w = sim::make_streaming(n, fp, 4, c.seed ^ 0x7AB8);
      break;
    case traffic::data_rw:
      w = sim::make_data_rw(n, fp, 0.4, 0.5, 4, c.seed ^ 0x7AB9);
      break;
    case traffic::pointer_chase:
      w = sim::make_pointer_chase(n, fp, c.seed ^ 0x7ABA);
      break;
    case traffic::sequential:
      w = sim::make_sequential_code(n, fp, 64, c.seed ^ 0x7ABB);
      break;
  }
  w.name = std::string(traffic_name(c.load));
  return w;
}

/// Footprint slice of one noc master: the largest power of two that fits
/// footprint/noc_masters (keyslot domain bounds stay data-unit aligned at
/// any master count), floored at 4 KiB so tiny cells stay well-formed.
std::size_t noc_slice(const fleet_cell& c) {
  const std::size_t n = c.noc_masters == 0 ? 1 : c.noc_masters;
  std::size_t slice = c.footprint / n;
  while ((slice & (slice - 1)) != 0) slice &= slice - 1;
  return std::max<std::size_t>(slice, 4096);
}

/// Base address of one noc master's slice. Slices live above the
/// installed image (which occupies [0, footprint)): the image region is
/// read-only under compress_otp, and every other engine treats the split
/// identically, so the cast stays engine-agnostic.
addr_t noc_slice_base(const fleet_cell& c, std::size_t i) {
  const auto data_base =
      static_cast<addr_t>(std::max<std::size_t>(1u << 20, c.footprint));
  return data_base + static_cast<addr_t>(i * noc_slice(c));
}

} // namespace

std::string fleet_cell::label() const {
  std::string name;
  if (kind == edu::engine_kind::inline_keyslot && !backend.empty())
    name = std::string(edu::keyslot_name_prefix) + backend;
  else
    name = std::string(edu::engine_name(kind));
  if (kind == edu::engine_kind::inline_keyslot && auth != engine::auth_mode::none)
    name += "+" + std::string(engine::auth_mode_name(auth));
  if (kind == edu::engine_kind::inline_keyslot &&
      policy != engine::slot_policy::lru)
    name += "~" + std::string(engine::slot_policy_name(policy));
  if (kind == edu::engine_kind::inline_keyslot && keyslot_slots != 0)
    name += "@" + std::to_string(keyslot_slots);
  name += "/" + std::string(traffic_name(load));
  name += "/" + std::string(drive_mode_name(drive));
  if (drive == drive_mode::noc) {
    name += std::to_string(noc_masters) + "x" + std::to_string(noc_clusters);
    if (noc_qos) name += "+qos";
    if (noc_firewall) name += "+fw";
  }
  if (drive == drive_mode::lifetime) {
    name += ":" + std::string(sim::fault_point_name(inject));
    if (inject != sim::fault_point::none)
      name += "@" + std::to_string(inject_trigger);
    if (!offer_package) name += "+noresume";
  }
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof seed_hex, " s%llx",
                static_cast<unsigned long long>(seed));
  return name + seed_hex;
}

bool cell_result::sim_equal(const cell_result& o) const noexcept {
  return label == o.label && ops == o.ops && bytes == o.bytes &&
         total_cycles == o.total_cycles && edu.reads == o.edu.reads &&
         edu.writes == o.edu.writes && edu.cipher_blocks == o.edu.cipher_blocks &&
         edu.crypto_cycles == o.edu.crypto_cycles && edu.rmw_ops == o.edu.rmw_ops &&
         edu.batches == o.edu.batches && edu.batched_txns == o.edu.batched_txns &&
         integrity_faults == o.integrity_faults && domain_faults == o.domain_faults &&
         firewall_denials == o.firewall_denials && fallbacks == o.fallbacks &&
         updates_committed == o.updates_committed &&
         updates_rolled_back == o.updates_rolled_back &&
         torn_images == o.torn_images &&
         downgrade_breaches == o.downgrade_breaches && dram_fnv == o.dram_fnv;
}

u64 fnv1a(std::span<const u8> data) noexcept {
  u64 h = 0xCBF29CE484222325ULL;
  for (const u8 b : data) {
    h ^= b;
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

std::vector<edu::master_desc> noc_cast(const fleet_cell& cell) {
  const std::size_t n = cell.noc_masters == 0 ? 1 : cell.noc_masters;
  const std::size_t slice = noc_slice(cell);
  const std::size_t per = std::max<std::size_t>(cell.accesses / n, 64);

  std::vector<edu::master_desc> cast(n);
  for (std::size_t i = 0; i < n; ++i) {
    edu::master_desc& d = cast[i];
    const addr_t base = noc_slice_base(cell, i);
    const u64 seed = cell.seed ^ (0x40C0000ULL + i);
    // The tab8 cast ratio, repeated: one compute stream, two bulk movers,
    // one poller per group of four.
    switch (i % 4) {
      case 1:
      case 2:
        d.role = edu::master_kind::dma;
        d.name = "dma" + std::to_string(i);
        d.work = sim::make_dma_copy(
            std::min<std::size_t>(
                (std::max<std::size_t>(per * 4, 1024) + 127) / 128 * 128,
                slice / 2 / 128 * 128),
            base, base + slice / 2, 128, seed);
        d.priority = 1;
        break;
      case 3:
        d.role = edu::master_kind::peripheral;
        d.name = "periph" + std::to_string(i);
        d.work = sim::make_peripheral_poll(per, base, 8, 64, 16, seed);
        d.priority = 9;
        break;
      default:
        d.role = edu::master_kind::cpu;
        d.name = "cpu" + std::to_string(i);
        d.work = sim::confine_workload(
            sim::make_data_rw(per, slice / 2, 0.5, 0.4, 8, seed), base, slice);
        d.priority = 5;
        break;
    }
    if (cell.kind == edu::engine_kind::inline_keyslot && slice >= 4096) {
      d.domain_base = base;
      d.domain_len = slice;
    }
  }
  return cast;
}

sim::topology noc_topology(const fleet_cell& cell) {
  const std::size_t n = cell.noc_masters == 0 ? 1 : cell.noc_masters;
  const std::size_t slice = noc_slice(cell);

  sim::topology topo(sim::arbiter_config{sim::arb_policy::round_robin, 8, 0});
  // QoS classes live on declared slots, so a flat QoS cell declares one
  // explicit cluster — bit-identical arbitration to the implicit one.
  const std::size_t k =
      cell.noc_clusters > 0 ? cell.noc_clusters : (cell.noc_qos ? 1 : 0);
  std::vector<sim::cluster_id> clusters;
  for (std::size_t c = 0; c < k; ++c) {
    sim::cluster_config cc;
    cc.name = "c" + std::to_string(c);
    cc.arb = topo.root();
    clusters.push_back(topo.add_cluster(cc));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto m = static_cast<sim::master_id>(i);
    sim::qos_class cls = sim::qos_class::none;
    if (cell.noc_qos)
      cls = i % 4 == 3                     ? sim::qos_class::latency
            : (i % 4 == 1 || i % 4 == 2) ? sim::qos_class::bulk
                                         : sim::qos_class::none;
    if (!clusters.empty()) topo.add_master(clusters[i % clusters.size()], m, cls);
    if (cell.noc_firewall) {
      const addr_t base = noc_slice_base(cell, i);
      topo.add_firewall_rule(m, {base, slice, sim::fw_perm::rw, 0});
    }
  }
  return topo;
}

cell_result run_cell(const fleet_cell& cell) {
  const auto t0 = std::chrono::steady_clock::now();

  // Lifetime cells run the whole-device update episode — no SoC workload
  // drive; the episode owns its engine, fault injector and agent.
  if (cell.drive == drive_mode::lifetime) {
    update::lifetime_config lc;
    lc.seed = cell.seed;
    lc.auth = cell.auth;
    lc.backend = cell.backend.empty()
                     ? (cell.auth == engine::auth_mode::area ? "aes-ecb" : "aes-ctr")
                     : cell.backend;
    lc.inject = cell.inject;
    lc.trigger = cell.inject_trigger;
    lc.stalls = cell.inject == sim::fault_point::bus_stall
                    ? static_cast<unsigned>(cell.inject_trigger)
                    : 0;
    lc.offer_package = cell.offer_package;
    const update::lifetime_result lr = update::run_lifetime(lc);

    cell_result r;
    r.label = cell.label();
    r.ops = lr.beats;
    r.bytes = lc.image_bytes;
    r.total_cycles = lr.traffic_cycles + lr.update_cycles;
    r.updates_committed = lr.committed_new ? 1 : 0;
    r.updates_rolled_back = !lr.committed_new && lr.old_intact ? 1 : 0;
    r.torn_images = lr.torn ? 1 : 0;
    r.downgrade_breaches = lr.downgrade_blocked ? 0 : 1;
    r.dram_fnv = lr.dram_fingerprint;
    r.host_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    return r;
  }

  edu::secure_soc soc(cell.kind, cell_soc(cell));
  soc.load_image(0, cell_image(cell));
  const sim::workload w = cell_workload(cell);

  cell_result r;
  r.label = cell.label();
  switch (cell.drive) {
    case drive_mode::batched:
    case drive_mode::scalar: {
      const std::size_t batch = cell.drive == drive_mode::batched ? cell.batch_txns : 1;
      const sim::throughput_stats ts = soc.run_throughput(w, batch);
      r.ops = ts.ops;
      r.bytes = ts.bytes;
      r.total_cycles = ts.total_cycles;
      break;
    }
    case drive_mode::cpu: {
      const sim::run_stats rs = soc.run(w);
      r.ops = rs.instructions + rs.mem_ops;
      r.bytes = rs.bytes;
      r.total_cycles = rs.total_cycles;
      break;
    }
    case drive_mode::noc: {
      const std::vector<edu::master_desc> cast = noc_cast(cell);
      const edu::topology_run_stats ts = soc.run_topology(cast, noc_topology(cell));
      r.ops = ts.noc.bus.txns;
      r.bytes = ts.noc.bus.bytes;
      r.total_cycles = ts.noc.bus.total_cycles;
      break;
    }
    case drive_mode::lifetime:
      break; // handled above — never reaches the SoC drive
  }
  soc.flush();

  r.edu = soc.engine().stats();
  if (cell.kind == edu::engine_kind::inline_keyslot) {
    const engine::engine_stats& es =
        static_cast<edu::engine_edu&>(soc.engine()).engine().stats();
    r.integrity_faults = es.integrity_faults;
    r.domain_faults = es.domain_faults;
    r.firewall_denials = es.firewall_denials;
    r.fallbacks = es.fallbacks;
  }
  r.dram_fnv = fnv1a(soc.memory().raw());
  r.host_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

fleet_result run_fleet(const fleet_config& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = cfg.cells.size();

  // Execution order is a pure scheduling choice: results land at their
  // cell's config index, so a shuffled run must be bit-identical to a
  // serial one — that is the property the determinism tests hammer.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (cfg.shuffle && n > 1) {
    rng shuffle_rng(cfg.shuffle_seed ^ 0x5F1EE7ULL);
    for (std::size_t i = n - 1; i > 0; --i) // Fisher-Yates, deterministic
      std::swap(order[i], order[shuffle_rng.below(i + 1)]);
  }

  fleet_result out;
  out.cells.resize(n);
  out.pool = run_jobs(n, cfg.threads, [&](std::size_t i) {
    const std::size_t idx = order[i];
    out.cells[idx] = run_cell(cfg.cells[idx]);
  });
  out.host_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

churn_fleet_result run_churn_fleet(const churn_fleet_config& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = cfg.cells.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (cfg.shuffle && n > 1) {
    rng shuffle_rng(cfg.shuffle_seed ^ 0x5F1EE7ULL);
    for (std::size_t i = n - 1; i > 0; --i) // Fisher-Yates, deterministic
      std::swap(order[i], order[shuffle_rng.below(i + 1)]);
  }

  churn_fleet_result out;
  out.cells.resize(n);
  out.pool = run_jobs(n, cfg.threads, [&](std::size_t i) {
    const std::size_t idx = order[i];
    out.cells[idx] = engine::run_churn(cfg.cells[idx]);
  });
  out.host_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

u64 fleet_result::total_ops() const noexcept {
  u64 t = 0;
  for (const cell_result& c : cells) t += c.ops;
  return t;
}

u64 fleet_result::total_bytes() const noexcept {
  u64 t = 0;
  for (const cell_result& c : cells) t += c.bytes;
  return t;
}

cycles fleet_result::total_cycles() const noexcept {
  cycles t = 0;
  for (const cell_result& c : cells) t += c.total_cycles;
  return t;
}

double fleet_result::host_txns_per_sec() const noexcept {
  return host_ms <= 0.0 ? 0.0 : static_cast<double>(total_ops()) * 1000.0 / host_ms;
}

std::vector<fleet_cell> engine_matrix(std::size_t accesses, u64 seed) {
  std::vector<fleet_cell> cells;
  cells.reserve(edu::all_engines().size());
  for (const edu::engine_kind kind : edu::all_engines()) {
    fleet_cell c;
    c.kind = kind;
    c.accesses = accesses;
    c.seed = seed;
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<fleet_cell> engine_auth_matrix(std::size_t accesses, u64 seed) {
  constexpr engine::auth_mode modes[] = {
      engine::auth_mode::none, engine::auth_mode::mac, engine::auth_mode::area,
      engine::auth_mode::hash_tree};
  std::vector<fleet_cell> cells;
  cells.reserve(edu::all_engines().size() * 4);
  for (const edu::engine_kind kind : edu::all_engines()) {
    for (const engine::auth_mode mode : modes) {
      fleet_cell c;
      c.kind = kind;
      c.accesses = accesses;
      c.seed = seed;
      c.auth = mode;
      // AREA embeds its nonce inside the encrypted payload, so it rejects
      // pad-precomputable backends — the keyslot area cell runs aes-ecb.
      if (kind == edu::engine_kind::inline_keyslot && mode == engine::auth_mode::area)
        c.backend = "aes-ecb";
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

std::vector<fleet_cell> lifetime_matrix(std::size_t runs, u64 seed) {
  constexpr engine::auth_mode modes[] = {
      engine::auth_mode::none, engine::auth_mode::mac, engine::auth_mode::area,
      engine::auth_mode::hash_tree};
  std::vector<fleet_cell> cells;
  cells.reserve(std::size(sim::all_fault_points) * std::size(modes) * runs);
  for (const sim::fault_point point : sim::all_fault_points) {
    for (const engine::auth_mode mode : modes) {
      for (std::size_t i = 0; i < runs; ++i) {
        fleet_cell c;
        c.kind = edu::engine_kind::inline_keyslot;
        c.drive = drive_mode::lifetime;
        c.auth = mode;
        if (mode == engine::auth_mode::area) c.backend = "aes-ecb";
        c.inject = point;
        c.seed = seed + i;
        // Trigger placement, stall depth and the recovery path are all
        // seed-derived, so `runs` cells cut the protocol at `runs`
        // different places — randomized interruptions, reproducibly.
        rng r(c.seed ^ (static_cast<u64>(point) << 8) ^ static_cast<u64>(mode));
        switch (point) {
          case sim::fault_point::bus_beat:
          case sim::fault_point::bit_flip:
            c.inject_trigger = r.between(8, 6000);
            break;
          case sim::fault_point::flush:
            c.inject_trigger = r.below(3);
            break;
          case sim::fault_point::journal:
            c.inject_trigger = r.below(4);
            break;
          case sim::fault_point::bus_stall:
            c.inject_trigger = r.between(1, 10); // stall depth
            break;
          case sim::fault_point::none:
            break;
        }
        c.offer_package = r.chance(0.5);
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

std::vector<fleet_cell> seed_sweep(fleet_cell proto, std::size_t n) {
  std::vector<fleet_cell> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    fleet_cell c = proto;
    c.seed = proto.seed + i;
    cells.push_back(std::move(c));
  }
  return cells;
}

std::string fleet_json(const fleet_config& cfg, const fleet_result& r,
                       bool include_host) {
  std::string out;
  out.reserve(r.cells.size() * 256 + 512);
  char buf[512];
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };

  out += "{\n  \"bench\": \"fleet\",\n";
  add("  \"cells\": %zu,\n", r.cells.size());
  if (include_host) {
    add("  \"threads\": %u,\n  \"steals\": %llu,\n  \"host_ms\": %.1f,\n"
        "  \"host_txns_per_sec\": %.0f,\n",
        r.pool.threads, static_cast<unsigned long long>(r.pool.steals), r.host_ms,
        r.host_txns_per_sec());
  }
  add("  \"total_ops\": %llu,\n  \"total_bytes\": %llu,\n"
      "  \"total_cycles\": %llu,\n  \"matrix\": [\n",
      static_cast<unsigned long long>(r.total_ops()),
      static_cast<unsigned long long>(r.total_bytes()),
      static_cast<unsigned long long>(r.total_cycles()));
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const fleet_cell& c = cfg.cells[i];
    const cell_result& cr = r.cells[i];
    add("    {\"cell\": \"%s\", \"engine\": \"%s\", \"traffic\": \"%s\", "
        "\"auth\": \"%s\", \"drive\": \"%s\", \"seed\": %llu, \"accesses\": %zu, ",
        cr.label.c_str(), std::string(edu::engine_name(c.kind)).c_str(),
        std::string(traffic_name(c.load)).c_str(),
        std::string(engine::auth_mode_name(c.auth)).c_str(),
        std::string(drive_mode_name(c.drive)).c_str(),
        static_cast<unsigned long long>(c.seed), c.accesses);
    add("\"ops\": %llu, \"bytes\": %llu, \"cycles\": %llu, "
        "\"bytes_per_cycle\": %.6f, \"integrity_faults\": %llu, "
        "\"domain_faults\": %llu, \"firewall_denials\": %llu, "
        "\"fallbacks\": %llu, \"dram_fnv\": \"%016llx\"",
        static_cast<unsigned long long>(cr.ops),
        static_cast<unsigned long long>(cr.bytes),
        static_cast<unsigned long long>(cr.total_cycles), cr.bytes_per_cycle(),
        static_cast<unsigned long long>(cr.integrity_faults),
        static_cast<unsigned long long>(cr.domain_faults),
        static_cast<unsigned long long>(cr.firewall_denials),
        static_cast<unsigned long long>(cr.fallbacks),
        static_cast<unsigned long long>(cr.dram_fnv));
    // Lifetime-only fields, emitted only for lifetime cells so the
    // committed BENCH_fleet.json stays byte-identical.
    if (c.drive == drive_mode::lifetime)
      add(", \"fault\": \"%s\", \"updates_committed\": %llu, "
          "\"updates_rolled_back\": %llu, \"torn_images\": %llu, "
          "\"downgrade_breaches\": %llu",
          std::string(sim::fault_point_name(c.inject)).c_str(),
          static_cast<unsigned long long>(cr.updates_committed),
          static_cast<unsigned long long>(cr.updates_rolled_back),
          static_cast<unsigned long long>(cr.torn_images),
          static_cast<unsigned long long>(cr.downgrade_breaches));
    if (include_host) add(", \"host_ms\": %.1f", cr.host_ms);
    out += i + 1 == r.cells.size() ? "}\n" : "},\n";
  }
  out += "  ]\n}\n";
  return out;
}

} // namespace buscrypt::fleet
