#pragma once
/// \file fleet.hpp
/// Many-SoC fleet runner: execute N independent SoC simulations (cells)
/// across a work-stealing thread pool and aggregate their stats — the
/// horizontal production axis over the survey's deterministic single-SoC
/// engines, the way Linux's inline-encryption layer multiplexes many
/// request queues over one keyslot pool.
///
/// The contract that makes this safe is *cell independence*: a cell is a
/// pure function of its `fleet_cell` description. Every component a cell
/// touches (DRAM, caches, EDU, keyslot pool, authenticator, RNG streams)
/// is instantiated per cell inside run_cell(); the only process-wide
/// state reachable from a run is engine::backend_registry::builtin(),
/// which is immutable after construction with an internally locked
/// key-schedule cache (see cipher_backend.hpp) — cache state can change
/// host speed, never simulated results. Hence the determinism proof the
/// tests enforce: a cell's cycles, DRAM image and engine stats are
/// identical whether it runs alone, serially, or on a 16-thread fleet in
/// randomized order.

#include "edu/edu.hpp"
#include "edu/soc.hpp"
#include "engine/churn.hpp"
#include "fleet/pool.hpp"
#include "sim/fault_injector.hpp"
#include "update/lifetime.hpp"

#include <span>
#include <string>
#include <vector>

namespace buscrypt::fleet {

/// How a cell drives its SoC.
enum class drive_mode : u8 {
  batched,  ///< run_throughput with mem_txn batches (the tab7 fast path)
  scalar,   ///< run_throughput one blocking request at a time
  cpu,      ///< full CPU + L1 execution via secure_soc::run
  noc,      ///< multi-master interconnect via secure_soc::run_topology
  lifetime, ///< whole-device episode: boot → update under fault → recover
};

[[nodiscard]] constexpr std::string_view drive_mode_name(drive_mode m) noexcept {
  switch (m) {
    case drive_mode::batched: return "batched";
    case drive_mode::scalar: return "scalar";
    case drive_mode::cpu: return "cpu";
    case drive_mode::noc: return "noc";
    case drive_mode::lifetime: return "lifetime";
  }
  return "?";
}

/// A cell's traffic shape (the sim/workload.hpp generators).
enum class traffic : u8 { mixed, jumpy, streaming, data_rw, pointer_chase, sequential };

[[nodiscard]] constexpr std::string_view traffic_name(traffic t) noexcept {
  switch (t) {
    case traffic::mixed: return "mixed";
    case traffic::jumpy: return "jumpy";
    case traffic::streaming: return "streaming";
    case traffic::data_rw: return "data-rw";
    case traffic::pointer_chase: return "pointer-chase";
    case traffic::sequential: return "sequential";
  }
  return "?";
}

/// One independent SoC simulation: engine x traffic x auth x seed x
/// drive. Self-describing — two identical cells produce bit-identical
/// results on any thread, in any order.
struct fleet_cell {
  edu::engine_kind kind = edu::engine_kind::plaintext;
  traffic load = traffic::mixed;
  std::size_t accesses = 6000;        ///< workload length knob
  std::size_t footprint = 256 * 1024; ///< address range the workload covers
  /// inline_keyslot only (every other engine ignores both): default
  /// context's authentication scheme and cipher backend. AREA composes
  /// only with block-diffusion backends — the matrix builders pick
  /// aes-ecb for area cells; an explicit area-on-ctr cell throws, as the
  /// engine's attach does.
  engine::auth_mode auth = engine::auth_mode::none;
  std::string backend; ///< empty = keyslot_default_backend
  /// inline_keyslot only: slot-pool victim policy and size (0 = the
  /// engine_edu default). Policies never change a cell's DRAM bytes —
  /// the cross-policy sweep test proves exactly that.
  engine::slot_policy policy = engine::slot_policy::lru;
  unsigned keyslot_slots = 0;
  u64 seed = 0x5EC5EEDULL; ///< key material + workload + image derivation
  std::size_t batch_txns = 16; ///< batched drive only
  drive_mode drive = drive_mode::batched;
  // noc drive only (every other drive ignores all four): the interconnect
  // shape. The heterogeneous cast (CPU compute, DMA movers, peripheral
  // pollers — see noc_cast) partitions the footprint; noc_clusters == 0
  // is the flat implicit cluster (run_multi_master-equivalent), >= 1
  // deals the masters round-robin into that many explicit clusters.
  std::size_t noc_masters = 4;
  std::size_t noc_clusters = 0;
  bool noc_qos = false;      ///< role-derived QoS classes (dma bulk, periph latency)
  bool noc_firewall = false; ///< per-master whitelists over each slice
  // lifetime drive only (every other drive ignores all three): the fault
  // armed over the update leg. inject_trigger counts the point's native
  // unit (bus beats / flush boundaries / journal records; stall count for
  // bus_stall); offer_package picks the resume (true) or rollback (false)
  // recovery path after a cut.
  sim::fault_point inject = sim::fault_point::none;
  u64 inject_trigger = 0;
  bool offer_package = true;

  /// Display label, unique per distinct cell in the standard matrices:
  /// "<engine>[+auth][/backend][~policy][@slots]/<traffic>/<drive> s<seed>"
  /// (noc drive renders as "noc<m>x<c>[+qos][+fw]"; the policy/pool marks
  /// appear only off the defaults, so the committed tab10 labels are
  /// unchanged).
  [[nodiscard]] std::string label() const;
};

/// Everything one cell run measured. The sim_* portion is deterministic;
/// host_ms is the only machine-dependent field.
struct cell_result {
  std::string label;
  // Simulated results (deterministic).
  u64 ops = 0;            ///< port operations (batched/scalar) or instructions (cpu)
  u64 bytes = 0;          ///< payload bytes moved
  cycles total_cycles = 0;
  edu::edu_stats edu;     ///< the engine-front counters every EDU keeps
  u64 integrity_faults = 0; ///< keyslot engines only
  u64 domain_faults = 0;    ///< keyslot engines only
  u64 firewall_denials = 0; ///< keyslot noc cells only (rule-table refusals)
  u64 fallbacks = 0;        ///< keyslot engines only
  // lifetime cells only (zero elsewhere): crash-safety outcome counters.
  u64 updates_committed = 0;   ///< device ended on the new image
  u64 updates_rolled_back = 0; ///< device ended on the intact old image
  u64 torn_images = 0;         ///< neither — must stay 0 fleet-wide
  u64 downgrade_breaches = 0;  ///< stale-version probe accepted — must stay 0
  u64 dram_fnv = 0; ///< FNV-1a over the post-flush external memory image
  // Host speed (machine-dependent, excluded from equivalence).
  double host_ms = 0.0;

  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(bytes) / static_cast<double>(total_cycles);
  }

  /// Simulated-state equality: everything but host_ms. This is the
  /// fleet-vs-serial bit-equivalence relation the tests quantify over.
  [[nodiscard]] bool sim_equal(const cell_result& o) const noexcept;
};

struct fleet_config {
  std::vector<fleet_cell> cells;
  unsigned threads = 0; ///< pool size; 0 = hardware_concurrency, 1 = serial
  /// Execute in a deterministically shuffled order (shared-state stress;
  /// results are always reported in cells[] order regardless).
  bool shuffle = false;
  u64 shuffle_seed = 0;
};

struct fleet_result {
  std::vector<cell_result> cells; ///< config order, independent of execution order
  pool_stats pool;                ///< host-side: workers, steals
  double host_ms = 0.0;           ///< wall time of the whole fleet run

  [[nodiscard]] u64 total_ops() const noexcept;
  [[nodiscard]] u64 total_bytes() const noexcept;
  [[nodiscard]] cycles total_cycles() const noexcept;
  /// Aggregate host throughput: simulated port txns retired per host
  /// second across the whole fleet — the "million-user day" figure.
  [[nodiscard]] double host_txns_per_sec() const noexcept;
};

/// Run one cell, fully isolated: builds the SoC, installs a seed-derived
/// image, drives it, flushes, and checksums external memory.
[[nodiscard]] cell_result run_cell(const fleet_cell& cell);

/// The heterogeneous master cast of a noc cell: noc_masters descriptors
/// in the repeating role pattern cpu, dma, dma, periph, each over its own
/// slice of the footprint (DMA movers copy within the slice, pollers spin
/// on slice-base registers; on the keyslot engine each slice is that
/// master's private protection domain). Deterministic in (seed,
/// footprint, accesses, noc_masters) only — the scenario axis tab12 and
/// the fleet cells share.
[[nodiscard]] std::vector<edu::master_desc> noc_cast(const fleet_cell& cell);

/// The topology of a noc cell: flat when noc_clusters == 0, otherwise the
/// masters dealt round-robin into that many clusters; role-derived QoS
/// classes when noc_qos; a per-master rw whitelist over each slice when
/// noc_firewall (in-slice traffic never trips it, so the firewalled cell
/// moves the same bytes — the denial counters prove containment).
[[nodiscard]] sim::topology noc_topology(const fleet_cell& cell);

/// Run every cell of \p cfg across the pool. Results land in config
/// order; an exception in any cell aborts the fleet and rethrows.
[[nodiscard]] fleet_result run_fleet(const fleet_config& cfg);

// --- standard matrices -------------------------------------------------------

/// The 16-engine sweep (auth none), one cell per engine_kind.
[[nodiscard]] std::vector<fleet_cell> engine_matrix(std::size_t accesses, u64 seed);

/// The 16-engine x {none, mac, area, hash-tree} matrix (64 cells). Auth
/// composes with the keyslot engine; for every other engine the auth
/// axis is carried (and must be result-invariant — the tests check
/// exactly that). Area cells on the keyslot engine run the aes-ecb
/// backend, since AREA rejects pad-precomputable ciphers.
[[nodiscard]] std::vector<fleet_cell> engine_auth_matrix(std::size_t accesses, u64 seed);

/// \p n copies of \p proto with seeds proto.seed, proto.seed+1, ... —
/// the seed-sweep axis (distinct key material, workloads and images).
[[nodiscard]] std::vector<fleet_cell> seed_sweep(fleet_cell proto, std::size_t n);

/// Lifetime cells: every fault point x every auth scheme, \p runs
/// seed-randomized interruptions per pair (trigger placement, stall depth
/// and resume-vs-rollback path all derived from the cell seed). This is
/// the matrix run_fleet uses to exercise thousands of update
/// interruptions — the crash-safety analogue of engine_auth_matrix.
[[nodiscard]] std::vector<fleet_cell> lifetime_matrix(std::size_t runs, u64 seed);

// --- keyslot churn cells -----------------------------------------------------

/// A fleet of keyslot churn storms (engine/churn.hpp): each cell replays
/// one Zipf context storm against one private pool — the policy x pool x
/// skew comparison grid, run with the same work-stealing/shuffle
/// machinery and the same determinism contract as the SoC cells.
struct churn_fleet_config {
  std::vector<engine::churn_config> cells;
  unsigned threads = 0; ///< pool size; 0 = hardware_concurrency, 1 = serial
  bool shuffle = false; ///< deterministically shuffled execution order
  u64 shuffle_seed = 0;
};

struct churn_fleet_result {
  std::vector<engine::churn_result> cells; ///< config order, always
  pool_stats pool;
  double host_ms = 0.0;
};

/// Run every churn cell across the pool. Results land in config order;
/// cell results are bit-identical for any threads/shuffle choice.
[[nodiscard]] churn_fleet_result run_churn_fleet(const churn_fleet_config& cfg);

// --- serialization -----------------------------------------------------------

/// Deterministic JSON for a fleet run. With include_host = false every
/// machine-dependent field (host_ms, pool stats) is omitted, so one
/// config yields a byte-identical string across runs, thread counts and
/// execution orders — the artifact the determinism tests diff.
[[nodiscard]] std::string fleet_json(const fleet_config& cfg, const fleet_result& r,
                                     bool include_host = true);

/// FNV-1a 64-bit over a byte span (the DRAM-image fingerprint).
[[nodiscard]] u64 fnv1a(std::span<const u8> data) noexcept;

} // namespace buscrypt::fleet
