#pragma once
/// \file gi_edu.hpp
/// The General Instrument patent engine (Fig. 5): memory encrypted with
/// 3-DES in CBC, plus "the possibility to authenticate the data coming
/// from external memory thanks to a keyed hash algorithm". The survey's
/// verdict — "cipher block chaining technique is very robust but implies
/// unacceptable CPU performance degradation for random accesses" — falls
/// out of the model: CBC chains span whole segments, and the keyed hash
/// forces every random touch to fetch and verify its entire segment.

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

#include <unordered_map>

namespace buscrypt::edu {

struct gi_edu_config {
  std::size_t segment_bytes = 1024; ///< one CBC chain + one MAC per segment
  std::size_t tag_bytes = 8;
  bool authenticate = true;         ///< verify the keyed hash on fetch
  unsigned verified_cache_entries = 4; ///< recently-verified segments
  pipeline_model core = tdes_pipelined(); ///< the patent assumes HW 3-DES
  cycles hash_startup = 20;
  double hash_cycles_per_byte = 1.0;
  u64 iv_tweak = 0x61C0DEULL;
};

/// Whole-segment CBC + keyed-hash EDU.
class gi_edu final : public edu {
 public:
  /// \param cipher the 3-DES core; \param mac_key keyed-hash key.
  gi_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
         bytes mac_key, gi_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "GI-3DES-CBC+MAC"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path for reads: every touched segment's whole-chain
  /// fetch rides one lower window (multi-bank overlap across segments),
  /// with the pipelined 3-DES decipher and the keyed-hash verification
  /// chained on the serial units after each segment's own data arrival —
  /// the MAC unit streams one segment while the bus fetches the next.
  /// The recently-verified window advances in submission order at staging,
  /// so hash charges match scalar issue exactly. Writes are whole-segment
  /// read-modify-write (ciphertext depends on fetched data), so they
  /// detour through the scalar path in order.
  void submit(std::span<sim::mem_txn> batch) override;

  /// Count of authentication failures detected (tampering).
  [[nodiscard]] u64 auth_failures() const noexcept { return auth_failures_; }

  /// Storage overhead of the tags, in bytes, for a memory of \p mem_bytes.
  [[nodiscard]] std::size_t tag_overhead(std::size_t mem_bytes) const noexcept {
    return (mem_bytes / cfg_.segment_bytes) * cfg_.tag_bytes;
  }

  /// Segment-sized installs avoid spurious read-modify-writes.
  [[nodiscard]] std::size_t preferred_chunk() const noexcept override {
    return cfg_.segment_bytes;
  }

 private:
  struct segment_io {
    bytes plain;
    cycles spent = 0;
  };

  /// Fetch + decrypt (+ verify) a whole segment.
  segment_io load_segment(addr_t seg_base);
  /// Encrypt + tag + write back a whole segment.
  [[nodiscard]] cycles store_segment(addr_t seg_base, std::span<const u8> plain);

  void derive_iv(addr_t seg_base, std::span<u8> iv) const;
  [[nodiscard]] bytes compute_tag(addr_t seg_base, std::span<const u8> plain) const;
  [[nodiscard]] cycles hash_time(std::size_t nbytes) const noexcept;
  void touch_verified(addr_t seg_base);
  [[nodiscard]] bool recently_verified(addr_t seg_base) const noexcept;

  const crypto::block_cipher* cipher_;
  bytes mac_key_;
  gi_edu_config cfg_;
  std::unordered_map<addr_t, bytes> tags_; ///< tag store (modelled on-chip/side-band)
  std::vector<addr_t> verified_lru_;
  u64 auth_failures_ = 0;
};

} // namespace buscrypt::edu
