#include "edu/soc.hpp"

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/best_cipher.hpp"
#include "crypto/des.hpp"
#include "edu/aegis_edu.hpp"
#include "edu/block_edu.hpp"
#include "edu/cacheside_edu.hpp"
#include "edu/compress_edu.hpp"
#include "edu/dallas_edu.hpp"
#include "edu/dma_edu.hpp"
#include "edu/engine_edu.hpp"
#include "edu/gi_edu.hpp"
#include "edu/gilmont_edu.hpp"
#include "edu/plain_edu.hpp"
#include "edu/stream_edu.hpp"
#include "edu/xom_edu.hpp"

#include <stdexcept>

namespace buscrypt::edu {

// The engine_edu adapter composes its display name from the same
// constants engine_name() uses, so the table and the adapter can't drift.
static_assert(engine_name(engine_kind::inline_keyslot) == keyslot_default_name);

secure_soc::secure_soc(engine_kind kind, const soc_config& cfg)
    : kind_(kind), cfg_(cfg), dram_(cfg.mem_size, cfg.mem_timing), ext_(dram_) {
  // Deterministic key material (the on-chip secret registers).
  rng key_rng(cfg.key_seed);
  aes_key_ = key_rng.random_bytes(16);
  des_key_ = key_rng.random_bytes(8);
  tdes_key_ = key_rng.random_bytes(24);
  byte_key_ = key_rng.random_bytes(8);
  mac_key_ = key_rng.random_bytes(16);
  best_key_ = key_rng.random_bytes(16);

  // Functional cores. prf_ always exists (several EDUs use an AES PRF).
  prf_ = std::make_unique<crypto::aes>(aes_key_);

  const bool edu_above_cache = (kind == engine_kind::cacheside_otp);

  if (edu_above_cache) {
    // Fig. 7b: cache below the EDU, plain external path.
    l1_ = std::make_unique<sim::cache>(cfg.l1, ext_);
    edu_ = std::make_unique<cacheside_edu>(*l1_, *prf_, cacheside_edu_config{});
    cpu_ = std::make_unique<sim::cpu>(*edu_, cfg.l1.hit_latency);
    return;
  }

  switch (kind) {
    case engine_kind::plaintext:
      edu_ = std::make_unique<plain_edu>(ext_);
      break;
    case engine_kind::best_stp:
      cipher_ = std::make_unique<crypto::best_cipher>(best_key_);
      edu_ = std::make_unique<block_edu>(
          ext_, *cipher_, block_edu_config{block_mode::ecb, best_combinational(), 32, 0});
      break;
    case engine_kind::dallas_byte:
      byte_cipher_ = std::make_unique<crypto::byte_bus_cipher>(byte_key_, 24);
      edu_ = std::make_unique<dallas_byte_edu>(ext_, *byte_cipher_);
      break;
    case engine_kind::dallas_des:
      cipher_ = std::make_unique<crypto::des>(des_key_);
      edu_ = std::make_unique<dallas_des_edu>(ext_, *cipher_);
      break;
    case engine_kind::block_ecb_aes:
      edu_ = std::make_unique<block_edu>(
          ext_, *prf_, block_edu_config{block_mode::ecb, aes_iterative(), 32, 0});
      break;
    case engine_kind::block_cbc_aes:
      edu_ = std::make_unique<block_edu>(
          ext_, *prf_,
          block_edu_config{block_mode::cbc_line, aes_iterative(), cfg.l1.line_size, 0});
      break;
    case engine_kind::xom_aes:
      edu_ = std::make_unique<xom_edu>(ext_, *prf_);
      break;
    case engine_kind::aegis_cbc: {
      aegis_edu_config acfg;
      acfg.line_bytes = cfg.l1.line_size;
      edu_ = std::make_unique<aegis_edu>(ext_, *prf_, acfg);
      break;
    }
    case engine_kind::gilmont_3des: {
      cipher_ = std::make_unique<crypto::triple_des>(tdes_key_);
      gilmont_edu_config gcfg;
      gcfg.line_bytes = cfg.l1.line_size;
      edu_ = std::make_unique<gilmont_edu>(ext_, *cipher_, gcfg);
      break;
    }
    case engine_kind::gi_3des_cbc:
      cipher_ = std::make_unique<crypto::triple_des>(tdes_key_);
      edu_ = std::make_unique<gi_edu>(ext_, *cipher_, mac_key_, gi_edu_config{});
      break;
    case engine_kind::stream_otp:
      edu_ = std::make_unique<stream_edu>(ext_, *prf_, stream_edu_config{});
      break;
    case engine_kind::stream_serial: {
      stream_edu_config scfg;
      scfg.parallel_keystream = false;
      edu_ = std::make_unique<stream_edu>(ext_, *prf_, scfg);
      break;
    }
    case engine_kind::secure_dma:
      edu_ = std::make_unique<dma_edu>(ext_, *prf_, dma_edu_config{});
      break;
    case engine_kind::compress_otp: {
      compress_edu_config ccfg;
      // Group granularity matches the cache line so one fill reads exactly
      // one compressed group (fewer bus bytes than the raw line).
      ccfg.group_bytes = cfg.l1.line_size;
      edu_ = std::make_unique<compress_edu>(ext_, *prf_, ccfg);
      break;
    }
    case engine_kind::inline_keyslot: {
      engine_edu_config kcfg;
      kcfg.data_unit_size = cfg.l1.line_size;
      kcfg.policy = cfg.keyslot_policy;
      if (cfg.keyslot_slots != 0) kcfg.num_slots = cfg.keyslot_slots;
      if (!cfg.keyslot_backend.empty()) kcfg.backend = cfg.keyslot_backend;
      if (cfg.keyslot_auth != engine::auth_mode::none) {
        kcfg.auth.mode = cfg.keyslot_auth;
        kcfg.auth.base = 0;
        kcfg.auth.limit = cfg.keyslot_auth_limit;
        kcfg.auth.tag_base = cfg.keyslot_auth_tag_base;
        rng auth_rng(cfg.key_seed ^ 0xA07411ULL);
        kcfg.auth.key = auth_rng.random_bytes(16);
      }
      // The device key must fit the configured backend: the default AES
      // key for AES-family backends (bit-identical to the PR 3 wiring),
      // a seed-derived key of the smallest accepted length otherwise.
      bytes dev_key = aes_key_;
      const auto& backend = engine::backend_registry::builtin().at(kcfg.backend);
      if (!backend.key_len_ok(dev_key.size())) {
        for (std::size_t len = 1; len <= 32; ++len)
          if (backend.key_len_ok(len)) {
            rng kr(cfg.key_seed ^ (0xBACC0DEULL + len));
            dev_key = kr.random_bytes(len);
            break;
          }
      }
      edu_ = std::make_unique<engine_edu>(ext_, dev_key, std::move(kcfg));
      break;
    }
    case engine_kind::cacheside_otp:
      throw std::logic_error("unreachable");
  }

  if (cfg.split_l1) {
    sim::cache_config half = cfg.l1;
    half.size = cfg.l1.size / 2;
    l1_ = std::make_unique<sim::cache>(half, *edu_);  // data side
    l1i_ = std::make_unique<sim::cache>(half, *edu_); // instruction side
    cpu_ = std::make_unique<sim::cpu>(*l1i_, *l1_, cfg.l1.hit_latency);
  } else {
    l1_ = std::make_unique<sim::cache>(cfg.l1, *edu_);
    cpu_ = std::make_unique<sim::cpu>(*l1_, cfg.l1.hit_latency);
  }
}

void secure_soc::load_image(addr_t base, std::span<const u8> plain) {
  edu_->install_image(base, plain);
  if (kind_ == engine_kind::cacheside_otp) {
    // The install path ran through the cache; push everything to DRAM so
    // the image is externally resident before execution.
    (void)l1_->flush();
  }
}

bytes secure_soc::read_back(addr_t base, std::size_t len) {
  flush();
  bytes out(len);
  if (kind_ == engine_kind::cacheside_otp) {
    (void)edu_->read(base, out);
    return out;
  }
  edu_->read_image(base, out);
  return out;
}

sim::run_stats secure_soc::run(const sim::workload& w) { return cpu_->run(w); }

void secure_soc::prepare_txn_stream() {
  if (l1_) (void)l1_->flush_and_invalidate();
  if (l1i_) (void)l1i_->flush_and_invalidate();
  if (kind_ == engine_kind::secure_dma) (void)static_cast<dma_edu&>(*edu_).flush();
}

sim::arbiter_stats secure_soc::run_multi_master(std::span<const master_desc> masters,
                                                const multi_master_config& mm) {
  // The flat bus is the degenerate topology (one implicit cluster, no
  // firewall tables): run_topology takes the bit-identical grant sequence
  // and never attaches the engine firewall, so every PR 3 number holds.
  const sim::topology topo(
      sim::arbiter_config{mm.policy, mm.window_txns, mm.starvation_limit});
  return run_topology(masters, topo).noc.bus;
}

topology_run_stats secure_soc::run_topology(std::span<const master_desc> masters,
                                            const sim::topology& topo,
                                            const grant_observer& observe) {
  prepare_txn_stream();

  // Per-master protection domains on the keyslot engine. Keys derive from
  // the SoC seed and the domain base — not the master id — so a solo
  // re-run of one descriptor encrypts its range identically. The guard
  // tears every bound domain down on all exit paths: a throw mid-setup or
  // mid-run must not leave regions owned by a dead run's master ids (the
  // CPU would be silently firewalled out of them afterwards).
  struct domain_guard {
    engine::bus_encryption_engine* eng = nullptr;
    std::vector<engine::bus_encryption_engine::context_id> ctxs;
    ~domain_guard() {
      if (eng != nullptr)
        for (const auto ctx : ctxs) eng->destroy_context(ctx);
    }
  } domains;
  if (kind_ == engine_kind::inline_keyslot) {
    auto& adapter = static_cast<engine_edu&>(*edu_);
    for (std::size_t i = 0; i < masters.size(); ++i) {
      const master_desc& d = masters[i];
      if (d.domain_len == 0) continue;
      domains.eng = &adapter.engine();
      rng key_rng(cfg_.key_seed ^ (0xD07A15ULL + d.domain_base));
      const auto ctx = domains.eng->create_context(
          {std::string(adapter.config().backend), key_rng.random_bytes(16),
           adapter.config().data_unit_size});
      domains.ctxs.push_back(ctx); // before bind: an alignment throw still tears down
      domains.eng->bind_domain(static_cast<sim::master_id>(i), d.domain_base,
                               d.domain_len, ctx);
    }
  }

  std::vector<sim::bus_master> bus_masters;
  bus_masters.reserve(masters.size());
  for (std::size_t i = 0; i < masters.size(); ++i) {
    const master_desc& d = masters[i];
    sim::bus_master_config bc;
    bc.id = static_cast<sim::master_id>(i);
    bc.name = d.name.empty() ? std::string(master_kind_name(d.role)) : d.name;
    bc.priority = d.priority;
    bc.chunk = d.chunk != 0 ? d.chunk
                            : (d.role == master_kind::dma ? 4 * cfg_.l1.line_size
                                                          : cfg_.l1.line_size);
    bus_masters.emplace_back(std::move(bc), d.work);
  }

  sim::interconnect ic(*edu_, topo);
  for (sim::bus_master& m : bus_masters) ic.add_master(m);
  // Scalar-path beats (adapted EDUs, detours) are attributed per granted
  // window; the interconnect restores cpu_master when the bus falls idle.
  ic.set_grant_hook([this, &ic, &observe](sim::master_id m) {
    ext_.set_master(m);
    if (observe) observe(ic, m);
  });

  // Attach the topology's firewall to the engine for the run's duration
  // (rule tables checked before span_for). Keyslot engine only, and only
  // when there is a table to enforce — a table-free topology must stay on
  // the untouched PR 3 datapath, cycle for cycle. The guard detaches on
  // every exit path: the firewall dies with this frame.
  struct fw_guard {
    engine::bus_encryption_engine* eng = nullptr;
    ~fw_guard() {
      if (eng != nullptr) eng->set_firewall(nullptr);
    }
  } fw;
  if (kind_ == engine_kind::inline_keyslot && ic.firewall().any_table()) {
    fw.eng = &static_cast<engine_edu&>(*edu_).engine();
    fw.eng->set_firewall(&ic.firewall());
  }

  topology_run_stats out;
  // The domain guard unwinds the run's mappings on return or throw; the
  // ciphertext the domains wrote stays in DRAM.
  out.noc = ic.run();
  out.firewall.reserve(masters.size());
  for (std::size_t i = 0; i < masters.size(); ++i)
    out.firewall.push_back(ic.firewall().stats(static_cast<sim::master_id>(i)));
  out.sentinel_denials = ic.firewall().sentinel_denials();
  if (kind_ == engine_kind::inline_keyslot) {
    const auto& eng = static_cast<engine_edu&>(*edu_).engine();
    out.domains.reserve(masters.size());
    for (std::size_t i = 0; i < masters.size(); ++i)
      out.domains.push_back(eng.domain(static_cast<sim::master_id>(i)));
  }
  return out;
}

sim::throughput_stats secure_soc::run_throughput(const sim::workload& w,
                                                 std::size_t batch_txns) {
  prepare_txn_stream();
  const auto ops = sim::to_port_ops(w, cfg_.l1.line_size);
  if (batch_txns <= 1) return sim::issue_scalar(*edu_, ops, cfg_.l1.line_size);
  return sim::issue_batched(*edu_, ops, cfg_.l1.line_size, batch_txns);
}

void secure_soc::flush() {
  if (l1_) (void)l1_->flush();
  if (l1i_) (void)l1i_->flush();
  if (kind_ == engine_kind::secure_dma)
    (void)static_cast<dma_edu&>(*edu_).flush();
}

} // namespace buscrypt::edu
