#include "edu/cacheside_edu.hpp"

#include "common/bitops.hpp"

#include <algorithm>

namespace buscrypt::edu {

cacheside_edu::cacheside_edu(sim::cache& l1, const crypto::block_cipher& prf,
                             cacheside_edu_config cfg)
    : edu(l1), cache_(&l1), pad_(prf, cfg.tweak), cfg_(cfg) {}

void cacheside_edu::pad_for(addr_t addr, std::span<u8> pad_out) {
  pad_.generate(addr, pad_out);
  stats_.cipher_blocks += pad_.blocks_covering(addr, pad_out.size());
}

cycles cacheside_edu::access(addr_t addr, std::span<u8> inout, bool is_write,
                             std::span<const u8> wdata) {
  const bool was_resident = cache_->contains(addr);
  const sim::cache_config& cc = cache_->config();

  cycles below;
  if (is_write) {
    // Encrypt the store data, then let the (ciphertext) cache absorb it.
    bytes ct(wdata.begin(), wdata.end());
    bytes pad(ct.size());
    pad_for(addr, pad);
    xor_bytes(ct, pad);
    below = lower_->write(addr, ct);
    ++stats_.writes;
  } else {
    below = lower_->read(addr, inout);
    bytes pad(inout.size());
    pad_for(addr, pad);
    xor_bytes(inout, pad);
    ++stats_.reads;
  }

  // The cipher stage sits on the CPU<->cache path: charged on EVERY access.
  cycles total = below + cfg_.xor_cycles;
  stats_.crypto_cycles += cfg_.xor_cycles;

  if (!was_resident) {
    // A line (re)entered the cache: its keystream must be regenerated into
    // the keystream RAM. Generation runs concurrently with the external
    // fetch; only the overrun beyond the fetch is exposed. The fetch time
    // is what the cache charged beyond its hit latency.
    const cycles fetch_window = below > cc.hit_latency ? below - cc.hit_latency : 0;
    const addr_t line_addr = addr - addr % cc.line_size;
    const cycles ks =
        cfg_.pad_core.time_parallel(pad_.blocks_covering(line_addr, cc.line_size));
    stats_.cipher_blocks += pad_.blocks_covering(line_addr, cc.line_size);
    if (ks > fetch_window) {
      const cycles over = ks - fetch_window;
      total += over;
      overrun_ += over;
      stats_.crypto_cycles += over;
    }
  }
  return total;
}

cycles cacheside_edu::read(addr_t addr, std::span<u8> out) {
  return access(addr, out, /*is_write=*/false, {});
}

cycles cacheside_edu::write(addr_t addr, std::span<const u8> in) {
  return access(addr, {}, /*is_write=*/true, in);
}

} // namespace buscrypt::edu
