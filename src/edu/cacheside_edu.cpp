#include "edu/cacheside_edu.hpp"

#include "common/bitops.hpp"

#include <algorithm>

namespace buscrypt::edu {

cacheside_edu::cacheside_edu(sim::cache& l1, const crypto::block_cipher& prf,
                             cacheside_edu_config cfg)
    : edu(l1), cache_(&l1), pad_(prf, cfg.tweak), cfg_(cfg) {}

void cacheside_edu::pad_for(addr_t addr, std::span<u8> pad_out) {
  pad_.generate(addr, pad_out);
  stats_.cipher_blocks += pad_.blocks_covering(addr, pad_out.size());
}

cacheside_edu::access_io cacheside_edu::do_access(addr_t addr, std::span<u8> inout,
                                                  bool is_write,
                                                  std::span<const u8> wdata) {
  const bool was_resident = cache_->contains(addr);
  const sim::cache_config& cc = cache_->config();

  access_io io;
  if (is_write) {
    // Encrypt the store data, then let the (ciphertext) cache absorb it.
    bytes ct(wdata.begin(), wdata.end());
    bytes pad(ct.size());
    pad_for(addr, pad);
    xor_bytes(ct, pad);
    io.below = lower_->write(addr, ct);
    ++stats_.writes;
  } else {
    io.below = lower_->read(addr, inout);
    bytes pad(inout.size());
    pad_for(addr, pad);
    xor_bytes(inout, pad);
    ++stats_.reads;
  }

  // The cipher stage sits on the CPU<->cache path: charged on EVERY access.
  io.below += cfg_.xor_cycles;
  stats_.crypto_cycles += cfg_.xor_cycles;

  if (!was_resident) {
    // A line (re)entered the cache: its keystream must be regenerated into
    // the keystream RAM. Generation runs concurrently with the external
    // fetch; the fetch time is what the cache charged beyond its hit
    // latency (and the XOR stage just added).
    const cycles beyond = cc.hit_latency + cfg_.xor_cycles;
    io.fetch = io.below > beyond ? io.below - beyond : 0;
    const addr_t line_addr = addr - addr % cc.line_size;
    io.ks = cfg_.pad_core.time_parallel(pad_.blocks_covering(line_addr, cc.line_size));
    stats_.cipher_blocks += pad_.blocks_covering(line_addr, cc.line_size);
  }
  return io;
}

cycles cacheside_edu::access(addr_t addr, std::span<u8> inout, bool is_write,
                             std::span<const u8> wdata) {
  const access_io io = do_access(addr, inout, is_write, wdata);
  // Scalar issue: only this access's own fetch can hide its regeneration.
  const cycles over = io.ks > io.fetch ? io.ks - io.fetch : 0;
  overrun_ += over;
  stats_.crypto_cycles += over;
  return io.below + over;
}

void cacheside_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  const cycles base = pending_txn_cycles_;

  cycles served = 0;      ///< cache + XOR time, accumulated in order
  cycles ks_total = 0;    ///< keystream regeneration the window owes
  cycles fetch_total = 0; ///< external-fetch time it can hide behind
  for (sim::mem_txn& txn : batch) {
    for (sim::txn_segment& seg : txn.segments) {
      const access_io io =
          do_access(seg.addr, seg.data, txn.is_write(),
                    std::span<const u8>(seg.data));
      served += io.below;
      ks_total += io.ks;
      fetch_total += io.fetch;
    }
    txn.complete_cycle = base + served; // in-order: the cache is serial
  }
  const cycles overrun = ks_total > fetch_total ? ks_total - fetch_total : 0;
  overrun_ += overrun;
  stats_.crypto_cycles += overrun;
  pending_txn_cycles_ += served + overrun;
}

cycles cacheside_edu::read(addr_t addr, std::span<u8> out) {
  return access(addr, out, /*is_write=*/false, {});
}

cycles cacheside_edu::write(addr_t addr, std::span<const u8> in) {
  return access(addr, {}, /*is_write=*/true, in);
}

} // namespace buscrypt::edu
