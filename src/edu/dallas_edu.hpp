#pragma once
/// \file dallas_edu.hpp
/// The Dallas Semiconductor devices of Fig. 6.
///
/// dallas_byte_edu — the DS5002FP scheme: every byte enciphered
/// independently as a function of its address by a combinational cipher.
/// Near-zero latency and byte granularity (no read-modify-write, an 8-bit
/// part has no wider bus), but only 256 possible ciphertexts per location:
/// attack::kuhn breaks it exactly as Markus Kuhn broke the silicon.
///
/// dallas_des_edu — the DS5240 upgrade: "a true DES or 3-DES block cipher
/// which strengthened the robustness ... the 8-bit based ciphering passes
/// to 64-bit based ciphering", at the cost of an iterative DES core's
/// latency and the sub-block write penalty a 64-bit block implies.

#include "crypto/toy_cipher.hpp"
#include "edu/batch.hpp"
#include "edu/block_edu.hpp"

namespace buscrypt::edu {

/// DS5002FP-style byte-granular EDU.
class dallas_byte_edu final : public edu {
 public:
  dallas_byte_edu(sim::memory_port& lower, const crypto::byte_bus_cipher& cipher,
                  cycles per_access_cycles = 1)
      : edu(lower), cipher_(&cipher), per_access_(per_access_cycles) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "DS5002FP-byte"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override {
    ++stats_.reads;
    const cycles mem = lower_->read(addr, out);
    cipher_->decrypt_range(addr, out, out);
    stats_.cipher_blocks += out.size();
    stats_.crypto_cycles += per_access_;
    return mem + per_access_;
  }

  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override {
    ++stats_.writes;
    bytes ct(in.size());
    cipher_->encrypt_range(addr, in, ct);
    stats_.cipher_blocks += in.size();
    stats_.crypto_cycles += per_access_;
    return lower_->write(addr, ct) + per_access_;
  }

  /// Native batch path. The byte cipher has no alignment constraints, so
  /// every transaction batches: writes pre-encipher (combinational logic
  /// runs ahead of the bus), reads decipher as their beats land — the
  /// substitution streams with the burst, so only the per-access stage is
  /// chained after each arrival.
  void submit(std::span<sim::mem_txn> batch) override {
    note_batch(batch.size());
    txn_batcher b(*lower_, pending_txn_cycles_);
    for (sim::mem_txn& txn : batch) {
      b.begin_txn(txn);
      if (txn.segments.empty()) { // nothing to schedule: retire in place
        b.detour_via(txn, *this);
        continue;
      }
      for (sim::txn_segment& seg : txn.segments) {
        stats_.cipher_blocks += seg.data.size();
        stats_.crypto_cycles += per_access_;
        if (txn.is_write()) {
          ++stats_.writes;
          bytes& ct = b.scratch(seg.data.size());
          cipher_->encrypt_range(seg.addr, seg.data, ct);
          b.add_pre(per_access_);
          (void)b.queue(sim::txn_op::write, txn.master, seg.addr, ct);
        } else {
          ++stats_.reads;
          const std::size_t li =
              b.queue(sim::txn_op::read, txn.master, seg.addr, seg.data);
          b.add_gated(li, txn_batcher::no_lower, per_access_,
                      [this, addr = seg.addr, data = seg.data] {
                        cipher_->decrypt_range(addr, data, data);
                      });
        }
      }
    }
    b.flush();
    pending_txn_cycles_ += b.clock();
  }

 private:
  const crypto::byte_bus_cipher* cipher_;
  cycles per_access_;
};

/// DS5240-style 64-bit DES EDU.
class dallas_des_edu final : public block_edu {
 public:
  dallas_des_edu(sim::memory_port& lower, const crypto::block_cipher& des_cipher)
      : block_edu(lower, des_cipher,
                  block_edu_config{block_mode::ecb, des_iterative(), 32, 0}) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "DS5240-DES"; }
};

} // namespace buscrypt::edu
