#pragma once
/// \file timing.hpp
/// Hardware timing models for cipher cores. The survey's quantitative
/// claims are about *hardware* engines (pipelined AES at 14 cycles for
/// XOM, 300 k-gate AES for AEGIS, pipelined 3-DES for Gilmont); this file
/// carries those figures so the functional C++ ciphers can be charged
/// realistic cycle costs inside the simulator.

#include "common/types.hpp"

#include <string_view>

namespace buscrypt::edu {

/// A (possibly pipelined) block-cipher core.
///
/// latency  — cycles from a block entering to it leaving the core.
/// interval — initiation interval: cycles between successive block
///            admissions (1 = fully pipelined, == latency = iterative).
struct pipeline_model {
  std::string_view name = "core";
  cycles latency = 14;
  cycles interval = 1;
  std::size_t block_bytes = 16;
  u64 gates = 0; ///< silicon cost proxy, as reported by the surveyed works

  /// Blocks needed to cover \p nbytes.
  [[nodiscard]] std::size_t blocks_for(std::size_t nbytes) const noexcept {
    return (nbytes + block_bytes - 1) / block_bytes;
  }

  /// Time to push \p nblocks through when blocks are independent
  /// (ECB, CTR, CBC-decrypt): pipelining applies.
  [[nodiscard]] cycles time_parallel(std::size_t nblocks) const noexcept {
    return nblocks == 0 ? 0 : latency + (nblocks - 1) * interval;
  }

  /// Time when each block depends on the previous one (CBC-encrypt):
  /// the pipeline drains between blocks.
  [[nodiscard]] cycles time_chained(std::size_t nblocks) const noexcept {
    return nblocks * latency;
  }
};

/// XOM's AES core [13]: "low latency of 14 latency cycles, while a
/// throughput of one encrypted/decrypted data per clock cycle is claimed".
[[nodiscard]] constexpr pipeline_model aes_pipelined() noexcept {
  return {"AES-pipelined", 14, 1, 16, 300'000};
}

/// An area-conscious iterative AES: one round per cycle, no pipelining.
[[nodiscard]] constexpr pipeline_model aes_iterative() noexcept {
  return {"AES-iterative", 11, 11, 16, 26'000};
}

/// Iterative single-DES (16 rounds), DS5240-class.
[[nodiscard]] constexpr pipeline_model des_iterative() noexcept {
  return {"DES-iterative", 16, 16, 8, 15'000};
}

/// Gilmont's pipelined triple-DES [3]: 48 rounds, pipelined.
[[nodiscard]] constexpr pipeline_model tdes_pipelined() noexcept {
  return {"3DES-pipelined", 48, 1, 8, 120'000};
}

/// Iterative triple-DES (GI-patent class hardware).
[[nodiscard]] constexpr pipeline_model tdes_iterative() noexcept {
  return {"3DES-iterative", 48, 48, 8, 22'000};
}

/// Best's substitution/transposition network: shallow combinational logic.
[[nodiscard]] constexpr pipeline_model best_combinational() noexcept {
  return {"Best-STP", 2, 1, 8, 4'000};
}

/// DS5002FP byte cipher: one S-box lookup, effectively free.
[[nodiscard]] constexpr pipeline_model byte_combinational() noexcept {
  return {"DS5002-byte", 1, 1, 1, 600};
}

/// Keystream generator producing bus_width bytes/cycle after a setup
/// (LFSR/Trivium class): modelled as a 1-byte-block pipeline.
[[nodiscard]] constexpr pipeline_model stream_generator() noexcept {
  return {"stream-gen", 4, 1, 8, 3'000};
}

} // namespace buscrypt::edu
