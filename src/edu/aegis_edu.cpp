#include "edu/aegis_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/modes.hpp"
#include "edu/batch.hpp"

#include <stdexcept>

namespace buscrypt::edu {

aegis_edu::aegis_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
                     aegis_edu_config cfg)
    : edu(lower), cipher_(&cipher), cfg_(cfg), counter_state_(cfg.seed) {
  if (cfg_.line_bytes % cipher.block_size() != 0)
    throw std::invalid_argument("aegis_edu: line must be a block multiple");
}

void aegis_edu::derive_iv(addr_t line_addr, u64 nonce, std::span<u8> iv) const {
  // IV = E_K(block address || nonce) — unpredictable, per-line, fresh.
  bytes src(cipher_->block_size(), 0);
  store_be64(src.data(), line_addr);
  if (cipher_->block_size() >= 16) store_be64(src.data() + 8, nonce);
  else for (std::size_t i = 0; i < 8; ++i) src[i] ^= static_cast<u8>(nonce >> (8 * i));
  cipher_->encrypt_block(src, iv);
}

u64 aegis_edu::nonce_for(addr_t line_addr) const noexcept {
  const auto it = nonces_.find(line_addr);
  return it == nonces_.end() ? 0 : it->second;
}

u64 aegis_edu::fresh_nonce(addr_t line_addr) {
  if (cfg_.iv_mode == aegis_iv_mode::counter) return ++nonces_[line_addr];
  counter_state_ = counter_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  nonces_[line_addr] = counter_state_;
  return counter_state_;
}

cycles aegis_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  if (addr % cfg_.line_bytes != 0 || out.size() != cfg_.line_bytes) {
    // Non-line requests take the slow path: fetch covering lines.
    const addr_t base = addr - addr % cfg_.line_bytes;
    const addr_t end_addr = addr + out.size();
    const addr_t end = (end_addr % cfg_.line_bytes == 0)
                           ? end_addr
                           : end_addr + cfg_.line_bytes - end_addr % cfg_.line_bytes;
    bytes buf(static_cast<std::size_t>(end - base));
    cycles total = 0;
    for (addr_t a = base; a < end; a += cfg_.line_bytes)
      total += read(a, std::span<u8>(buf).subspan(static_cast<std::size_t>(a - base),
                                                  cfg_.line_bytes));
    const std::size_t head = static_cast<std::size_t>(addr - base);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = buf[head + i];
    return total;
  }

  const cycles mem = lower_->read(addr, out);

  bytes iv(cipher_->block_size());
  derive_iv(addr, nonce_for(addr), iv);
  crypto::cbc_decrypt(*cipher_, iv, out, out);

  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.line_bytes);
  stats_.cipher_blocks += nblocks + 1;
  // IV generation overlaps the fetch (address & nonce known at request);
  // CBC decryption is block-parallel but the whole line must finish before
  // the processor sees anything (no critical-word-first).
  const cycles crypt = cfg_.core.time_parallel(nblocks);
  stats_.crypto_cycles += crypt;
  return mem + crypt;
}

void aegis_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  const std::size_t lb = cfg_.line_bytes;
  const std::size_t nblocks = cfg_.core.blocks_for(lb);
  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments)
      if (seg.data.empty() || seg.addr % lb != 0 || seg.data.size() % lb != 0) {
        eligible = false;
        break;
      }
    if (!eligible) {
      b.detour_via(txn, *this);
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      // One count per line, matching scalar issue of the same line ops.
      for (std::size_t off = 0; off < seg.data.size(); off += lb) {
        const addr_t a = seg.addr + off;
        std::span<u8> line = seg.data.subspan(off, lb);
        stats_.cipher_blocks += nblocks + 1;
        if (txn.is_write()) {
          ++stats_.writes;
          // Fresh nonce in submission order, exactly as scalar issue.
          const u64 nonce = fresh_nonce(a);
          bytes& ct = b.scratch_copy(line);
          bytes iv(cipher_->block_size());
          derive_iv(a, nonce, iv);
          crypto::cbc_encrypt(*cipher_, iv, ct, ct);
          const cycles enc = cfg_.core.time_chained(nblocks) + cfg_.core.latency;
          stats_.crypto_cycles += enc;
          b.add_pre(enc);
          (void)b.queue(sim::txn_op::write, txn.master, a, ct);
        } else {
          ++stats_.reads;
          // Snapshot the nonce now: a later in-window write must not
          // change the IV this read's ciphertext was produced under.
          const u64 nonce = nonce_for(a);
          const std::size_t li = b.queue(sim::txn_op::read, txn.master, a, line);
          const cycles dec = cfg_.core.time_parallel(nblocks);
          stats_.crypto_cycles += dec;
          b.add_gated(li, txn_batcher::no_lower, dec, [this, a, nonce, line] {
            bytes iv(cipher_->block_size());
            derive_iv(a, nonce, iv);
            crypto::cbc_decrypt(*cipher_, iv, line, line);
          });
        }
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles aegis_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  if (addr % cfg_.line_bytes != 0 || in.size() != cfg_.line_bytes) {
    // Sub-line store: five-step read-modify-write at line granularity.
    ++stats_.rmw_ops;
    const addr_t base = addr - addr % cfg_.line_bytes;
    const addr_t end_addr = addr + in.size();
    const addr_t end = (end_addr % cfg_.line_bytes == 0)
                           ? end_addr
                           : end_addr + cfg_.line_bytes - end_addr % cfg_.line_bytes;
    bytes buf(static_cast<std::size_t>(end - base));
    cycles total = read(base, buf);
    const std::size_t head = static_cast<std::size_t>(addr - base);
    for (std::size_t i = 0; i < in.size(); ++i) buf[head + i] = in[i];
    for (addr_t a = base; a < end; a += cfg_.line_bytes)
      total += write(a, std::span<const u8>(buf).subspan(
                            static_cast<std::size_t>(a - base), cfg_.line_bytes));
    return total;
  }

  // Fresh nonce per write: random vector or monotonic counter.
  const u64 nonce = fresh_nonce(addr);

  bytes iv(cipher_->block_size());
  derive_iv(addr, nonce, iv);
  bytes ct(in.begin(), in.end());
  crypto::cbc_encrypt(*cipher_, iv, ct, ct);

  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.line_bytes);
  stats_.cipher_blocks += nblocks + 1;
  // CBC encryption is chained across the line; IV generation precedes it.
  const cycles crypt = cfg_.core.time_chained(nblocks) + cfg_.core.latency;
  stats_.crypto_cycles += crypt;
  return crypt + lower_->write(addr, ct);
}

} // namespace buscrypt::edu
