#pragma once
/// \file integrity_edu.hpp
/// The survey's closing "future exploration": "take into account the
/// problem of integrity, to thwart attacks based on the modification of
/// the fetched instructions." This engine extends the stream/OTP
/// confidentiality EDU with per-line authentication, in three levels:
///
///   none          — confidentiality only (baseline; spoof/splice/replay all land)
///   mac           — per-line truncated HMAC over (address || ciphertext),
///                   stored in a tag region of external memory: defeats
///                   spoofing (random/chosen ciphertext injection) and
///                   splicing (relocating a valid line to another address)
///   mac_versioned — the MAC additionally covers an on-chip version
///                   counter bumped on every write: defeats replay
///                   (restoring a stale line+tag pair)
///
/// The costs the later literature (and the survey's own authors' follow-up
/// work) made standard are all modeled: extra bus traffic for tags, MAC
/// unit latency, and on-chip version RAM.

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

#include <unordered_map>

namespace buscrypt::edu {

enum class integrity_level { none, mac, mac_versioned };

struct integrity_edu_config {
  std::size_t line_bytes = 32;
  std::size_t tag_bytes = 8;
  integrity_level level = integrity_level::mac_versioned;
  addr_t protected_limit = 1 << 21; ///< end of the protected address range
  addr_t tag_base = 6u << 20;       ///< where tags live in external memory
  pipeline_model pad_core = aes_pipelined();
  cycles mac_startup = 10;          ///< hardware MAC unit fill latency
  double mac_cycles_per_byte = 0.5;
  /// On-chip tag cache entries (64-byte tag lines). Without it every data
  /// fetch pays a second DRAM access for its tag; with it, sequential
  /// lines share a tag line 8:1. 0 disables (the naive design).
  unsigned tag_cache_entries = 16;
  u64 tweak = 0x17E617ULL;
};

/// Authenticating bus-encryption engine (pad cipher + per-line tags).
class integrity_edu final : public edu {
 public:
  /// \param prf     block cipher for the pad and (keyed) tag derivation.
  /// \param mac_key key for the line MACs.
  integrity_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                bytes mac_key, integrity_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path for line-aligned transactions. Writes pre-encipher
  /// (the pad is address+version-derived and the data is in hand) and
  /// pre-MAC at staging; their ciphertext lines *and* their tag stores
  /// ride the same lower window. Reads queue their line fetch plus — when
  /// the tag misses on chip — one deduplicated tag-line fetch per window;
  /// the serial MAC unit then verifies each line once its data and its tag
  /// line have both arrived, pipelining against later fetches, while the
  /// precomputable pad overlaps the whole window. Versions and tags are
  /// snapshotted in submission order, and tags written earlier in the same
  /// window forward to later reads (in-flush staged-tag forwarding), so a
  /// read never sees a stale or future tag. Fetched tag lines install into
  /// the on-chip cache when the window retires, with the window's staged
  /// tags applied on top. Sub-line requests detour in order.
  void submit(std::span<sim::mem_txn> batch) override;

  [[nodiscard]] std::size_t preferred_chunk() const noexcept override {
    return cfg_.line_bytes;
  }

  /// Tamper events detected so far (tag mismatches on fetch).
  [[nodiscard]] u64 tamper_events() const noexcept { return tamper_events_; }

  /// External-memory overhead for tags over the protected range.
  [[nodiscard]] std::size_t tag_memory_bytes() const noexcept {
    return static_cast<std::size_t>(cfg_.protected_limit / cfg_.line_bytes) *
           cfg_.tag_bytes;
  }

  /// On-chip version RAM (mac_versioned only): 4 bytes per line written.
  [[nodiscard]] std::size_t version_ram_bytes() const noexcept {
    return versions_.size() * 4;
  }

  /// Drop the (volatile) on-chip tag cache — a power cycle. Version
  /// counters survive: the design keeps them in on-chip NVM.
  void flush_tag_cache() noexcept {
    tag_cache_.clear();
    tag_cache_fifo_.clear();
  }

  /// Tag-cache effectiveness.
  [[nodiscard]] u64 tag_cache_hits() const noexcept { return tag_hits_; }
  [[nodiscard]] u64 tag_cache_misses() const noexcept { return tag_misses_; }
  [[nodiscard]] std::size_t tag_cache_ram_bytes() const noexcept {
    return cfg_.tag_cache_entries * k_tag_line;
  }

  /// Where the tag for the line at \p addr lives (attack-suite hook —
  /// a Class-II attacker can read the layout from the bus anyway).
  [[nodiscard]] addr_t tag_addr(addr_t addr) const noexcept {
    return cfg_.tag_base + (addr / cfg_.line_bytes) * cfg_.tag_bytes;
  }

  [[nodiscard]] const integrity_edu_config& config() const noexcept { return cfg_; }

 private:
  static constexpr std::size_t k_tag_line = 64; ///< tag-cache fill granule

  [[nodiscard]] cycles read_line(addr_t line_addr, std::span<u8> out);
  [[nodiscard]] cycles write_line(addr_t line_addr, std::span<const u8> in);

  void pad_line(addr_t line_addr, u64 version, std::span<u8> buf) const;
  [[nodiscard]] bytes line_tag(addr_t line_addr, u64 version,
                               std::span<const u8> ciphertext) const;
  [[nodiscard]] u64 version_of(addr_t line_addr) const noexcept;
  [[nodiscard]] cycles mac_time(std::size_t nbytes) const noexcept;

  /// Read the tag for \p line_addr into \p out, through the tag cache.
  /// Returns cycles spent on the external bus (0 on a tag-cache hit).
  [[nodiscard]] cycles fetch_tag(addr_t line_addr, std::span<u8> out);
  /// Write a freshly computed tag through cache and memory.
  [[nodiscard]] cycles store_tag(addr_t line_addr, std::span<const u8> tag);

  const crypto::block_cipher* prf_;
  bytes mac_key_;
  integrity_edu_config cfg_;
  std::unordered_map<addr_t, u64> versions_;
  std::unordered_map<addr_t, bytes> tag_cache_; ///< tag-line base -> 64 B
  std::vector<addr_t> tag_cache_fifo_;
  u64 tag_hits_ = 0;
  u64 tag_misses_ = 0;
  u64 tamper_events_ = 0;
};

} // namespace buscrypt::edu
