#include "edu/edu.hpp"

#include <algorithm>

namespace buscrypt::edu {

void edu::install_image(addr_t base, std::span<const u8> plain) {
  const std::size_t chunk = preferred_chunk();
  std::size_t off = 0;
  while (off < plain.size()) {
    const std::size_t n = std::min(chunk, plain.size() - off);
    (void)write(base + off, plain.subspan(off, n));
    off += n;
  }
}

void edu::read_image(addr_t base, std::span<u8> plain_out) {
  const std::size_t chunk = preferred_chunk();
  std::size_t off = 0;
  while (off < plain_out.size()) {
    const std::size_t n = std::min(chunk, plain_out.size() - off);
    (void)read(base + off, plain_out.subspan(off, n));
    off += n;
  }
}

} // namespace buscrypt::edu
