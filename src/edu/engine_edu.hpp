#pragma once
/// \file engine_edu.hpp
/// Adapter presenting the keyslot-based engine::bus_encryption_engine as
/// an EDU, so the unified engine slots into the same cache -> EDU ->
/// bus -> DRAM topology as every surveyed design and can be swept by the
/// benches alongside them. This replaces ad-hoc per-EDU cipher plumbing
/// with backend-by-name configuration: the same adapter runs AES-CTR,
/// 3DES-CBC or an RC4 keystream depending on one config string.

#include "edu/edu.hpp"
#include "edu/names.hpp"
#include "engine/bus_encryption_engine.hpp"

#include <string>

namespace buscrypt::edu {

struct engine_edu_config {
  std::string backend{keyslot_default_backend}; ///< engine::backend_registry name
  std::size_t data_unit_size = 32; ///< typically the cache line size
  unsigned num_slots = 4;          ///< hardware keyslot pool size
  /// Victim selection for the slot pool. Policies never change what the
  /// datapath produces — only hit/reprogram telemetry and timing.
  engine::slot_policy policy = engine::slot_policy::lru;
  engine::engine_config engine{};
  /// Authentication of the default context (mode none = PR 3 datapath,
  /// cycle for cycle). The window/tag geometry is the caller's; an empty
  /// key derives from the device key.
  engine::auth_config auth{};
};

/// EDU wrapping one bus_encryption_engine with a private slot pool. The
/// whole address space below the cache is mapped to a single context keyed
/// with the device key; callers may carve further contexts/regions through
/// engine().
class engine_edu final : public edu {
 public:
  /// \param key device key programmed into the default context.
  engine_edu(sim::memory_port& lower, std::span<const u8> key, engine_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Batches go straight to the engine's pipelined native path (slots
  /// programmed once per batch, crypto overlapped with the bus schedule).
  void submit(std::span<sim::mem_txn> batch) override;
  [[nodiscard]] cycles drain() override;

  void install_image(addr_t base, std::span<const u8> plain) override;
  void read_image(addr_t base, std::span<u8> plain_out) override;

  [[nodiscard]] std::size_t preferred_chunk() const noexcept override {
    return cfg_.data_unit_size;
  }

  [[nodiscard]] engine::bus_encryption_engine& engine() noexcept { return engine_; }
  [[nodiscard]] engine::keyslot_manager& slots() noexcept { return slots_; }
  [[nodiscard]] const engine_edu_config& config() const noexcept { return cfg_; }
  /// The default context's authenticator, or nullptr when auth is off.
  [[nodiscard]] engine::memory_authenticator* auth() noexcept {
    return engine_.auth_of(default_ctx_);
  }

 private:
  void sync_stats() noexcept;

  engine_edu_config cfg_;
  engine::keyslot_manager slots_;
  engine::bus_encryption_engine engine_;
  engine::bus_encryption_engine::context_id default_ctx_ = 0;
  std::string name_;
};

} // namespace buscrypt::edu
