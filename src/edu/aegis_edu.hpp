#pragma once
/// \file aegis_edu.hpp
/// The AEGIS bus-encryption engine [14] as surveyed: pipelined AES
/// (300,000 gates) in CBC mode where "the ciphering block chain
/// corresponds to a cache block, thus allowing random access to external
/// memory", with an IV "composed by the block address and by a random
/// vector; to thwart the birthday attack it is possible to replace the
/// random vector by a counter". The survey also notes "the fetch
/// instruction cannot be provided to the processor until an entire cache
/// block is deciphered" — modelled as no-critical-word-first.

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

#include <unordered_map>

namespace buscrypt::edu {

/// How the per-line IV nonce is produced (the ablation in T4).
enum class aegis_iv_mode {
  random_vector, ///< fresh random per write — birthday-attack exposed
  counter,       ///< per-line monotonic counter — collision-free until wrap
};

struct aegis_edu_config {
  std::size_t line_bytes = 32;
  aegis_iv_mode iv_mode = aegis_iv_mode::counter;
  pipeline_model core = aes_pipelined(); // the 300 k-gate pipelined AES
  u64 seed = 0xAE615ULL;
};

/// Per-cache-line CBC engine with (address, nonce)-derived IVs.
class aegis_edu final : public edu {
 public:
  aegis_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
            aegis_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "AEGIS-AES-CBC"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path for line-aligned transactions: per-line nonces are
  /// assigned (and the IV cipher + chained CBC encrypt run) at staging
  /// time for writes, so the 300 k-gate core works ahead of the bus, while
  /// read deciphers gate on each line's own arrival. Reads snapshot their
  /// line's nonce in submission order, so an in-window write of the same
  /// line never bleeds its fresh nonce into an earlier read's IV. Sub-line
  /// requests detour through the scalar five-step path in order.
  void submit(std::span<sim::mem_txn> batch) override;

  [[nodiscard]] std::size_t preferred_chunk() const noexcept override {
    return cfg_.line_bytes;
  }

  /// On-chip nonce table footprint for a memory of \p mem_bytes
  /// (8 bytes per line).
  [[nodiscard]] std::size_t nonce_ram_bytes(std::size_t mem_bytes) const noexcept {
    return mem_bytes / cfg_.line_bytes * 8;
  }

  /// Nonce values handed out so far (test hook for the birthday study).
  [[nodiscard]] const std::unordered_map<addr_t, u64>& nonces() const noexcept {
    return nonces_;
  }

 private:
  void derive_iv(addr_t line_addr, u64 nonce, std::span<u8> iv) const;
  [[nodiscard]] u64 nonce_for(addr_t line_addr) const noexcept;
  /// Mint (and record) the fresh per-write nonce for \p line_addr —
  /// monotonic counter or random vector per cfg — shared by the scalar
  /// and batched write paths so their ciphertext can never diverge.
  [[nodiscard]] u64 fresh_nonce(addr_t line_addr);

  const crypto::block_cipher* cipher_;
  aegis_edu_config cfg_;
  std::unordered_map<addr_t, u64> nonces_;
  u64 counter_state_;
};

} // namespace buscrypt::edu
