#pragma once
/// \file xom_edu.hpp
/// The XOM project's cipher unit [13] as surveyed: "a pipelined AES ...
/// which features a low latency of 14 latency cycles, while a throughput
/// of one encrypted/decrypted data per clock cycle is claimed". The survey
/// notes the unit was benchmarked only by latency ("taking into account
/// only the latency doesn't inform about the overall system cost") — the
/// tab1 bench supplies exactly that missing system-level measurement.
///
/// Functionally it is a per-block AES engine between cache and memory
/// controller, i.e. block_edu in ECB with the pipelined-AES timing preset.

#include "edu/block_edu.hpp"

namespace buscrypt::edu {

/// XOM-style pipelined-AES EDU.
class xom_edu final : public block_edu {
 public:
  xom_edu(sim::memory_port& lower, const crypto::block_cipher& aes_cipher)
      : block_edu(lower, aes_cipher,
                  block_edu_config{block_mode::ecb, aes_pipelined(), 32, 0}) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "XOM-AES"; }
};

} // namespace buscrypt::edu
