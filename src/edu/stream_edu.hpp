#pragma once
/// \file stream_edu.hpp
/// Stream-cipher EDU (Fig. 2a applied at the Fig. 2c location): ciphertext
/// = plaintext XOR pad(address), with the pad produced by a block-cipher
/// PRF over the address (seekable, so random access costs nothing).
///
/// Carries the survey's central performance claim: "the key stream
/// generation can be parallelised with external data fetch", unlike a
/// block cipher that "cannot start until a complete block has been
/// received". The parallel_keystream flag ablates exactly that.

#include "crypto/modes.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

namespace buscrypt::edu {

struct stream_edu_config {
  pipeline_model pad_core = aes_pipelined(); ///< PRF generating the pad
  bool parallel_keystream = true; ///< false = serialize pad after fetch (ablation)
  cycles xor_cycles = 1;          ///< the XOR gate stage
  u64 tweak = 0x57E4EA11C0DE5ULL;
};

/// One-time-pad style EDU; byte-addressable, so it NEVER pays the
/// five-step sub-block write penalty (contrast with block_edu).
class stream_edu final : public edu {
 public:
  stream_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
             stream_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "Stream-OTP"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path: the pad for every transaction is generated once up
  /// front from the addresses alone, so the whole batch's keystream
  /// pipeline runs concurrently with the whole batch's bus schedule —
  /// max(sum mem, sum pad) instead of the scalar sum of per-access maxes.
  /// This is Fig. 2a's "key stream generation can be parallelised with
  /// external data fetch" applied across requests, not just within one.
  void submit(std::span<sim::mem_txn> batch) override;

  [[nodiscard]] const stream_edu_config& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] cycles pad_time(addr_t addr, std::size_t len) const noexcept;
  void apply_pad(addr_t addr, std::span<u8> buf);

  crypto::address_pad pad_;
  stream_edu_config cfg_;
};

} // namespace buscrypt::edu
