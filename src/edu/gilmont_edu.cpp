#include "edu/gilmont_edu.hpp"

#include "crypto/modes.hpp"
#include "edu/batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::edu {

gilmont_edu::gilmont_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
                         gilmont_edu_config cfg)
    : edu(lower), cipher_(&cipher), cfg_(cfg) {
  if (cfg_.line_bytes % cipher.block_size() != 0)
    throw std::invalid_argument("gilmont_edu: line must be a block multiple");
  pf_data_.resize(cfg_.line_bytes);
}

void gilmont_edu::crypt_line(std::span<u8> buf, bool encrypt) {
  if (!cfg_.encrypt) return; // prefetch-only baseline
  stats_.cipher_blocks += buf.size() / cipher_->block_size();
  if (encrypt)
    crypto::ecb_encrypt(*cipher_, buf, buf);
  else
    crypto::ecb_decrypt(*cipher_, buf, buf);
}

void gilmont_edu::prefetch(addr_t line_addr) {
  if (line_addr + cfg_.line_bytes > cfg_.code_limit) {
    pf_valid_ = false;
    return;
  }
  // The prefetch read + decrypt happen in the background; its cycles do
  // not appear on the critical path (bus contention is the price, noted in
  // DESIGN.md). Functional effect: the decrypted next line is staged.
  (void)lower_->read(line_addr, pf_data_);
  crypt_line(pf_data_, /*encrypt=*/false);
  pf_valid_ = true;
  pf_addr_ = line_addr;
}

cycles gilmont_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  // Data region: clear-form passthrough (the surveyed limitation).
  if (addr >= cfg_.code_limit) return lower_->read(addr, out);

  if (addr % cfg_.line_bytes != 0 || out.size() != cfg_.line_bytes) {
    // Split to line-aligned requests.
    const addr_t base = addr - addr % cfg_.line_bytes;
    const addr_t end_addr = addr + out.size();
    const addr_t end = (end_addr % cfg_.line_bytes == 0)
                           ? end_addr
                           : end_addr + cfg_.line_bytes - end_addr % cfg_.line_bytes;
    bytes buf(static_cast<std::size_t>(end - base));
    cycles total = 0;
    for (addr_t a = base; a < end; a += cfg_.line_bytes)
      total += read(a, std::span<u8>(buf).subspan(static_cast<std::size_t>(a - base),
                                                  cfg_.line_bytes));
    const std::size_t head = static_cast<std::size_t>(addr - base);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = buf[head + i];
    return total;
  }

  if (cfg_.fetch_prediction && pf_valid_ && pf_addr_ == addr) {
    // Predicted correctly: the line is already fetched AND deciphered.
    ++prefetch_hits_;
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = pf_data_[i];
    pf_valid_ = false;
    prefetch(addr + cfg_.line_bytes);
    return 1;
  }

  ++prefetch_misses_;
  const cycles mem = lower_->read(addr, out);
  crypt_line(out, /*encrypt=*/false);
  const cycles crypt =
      cfg_.encrypt ? cfg_.core.time_parallel(cfg_.core.blocks_for(out.size())) : 0;
  stats_.crypto_cycles += crypt;
  if (cfg_.fetch_prediction) prefetch(addr + cfg_.line_bytes);
  return mem + crypt;
}

void gilmont_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  const std::size_t lb = cfg_.line_bytes;

  // Window view of the one-deep prefetch buffer. Each background fetch
  // executes as an uncharged zero-cycle retirement job: after the window's
  // demand traffic has drained (the prefetcher yields the bus to demand
  // fetches) but before any later hit's copy-out that depends on it. Its
  // cycles stay off the critical path, exactly as the scalar model's
  // fire-and-forget read; wpf_buf points at the staged fill until the
  // flush hook commits the last one into pf_data_.
  bool wpf_valid = pf_valid_;
  addr_t wpf_addr = pf_addr_;
  bytes* wpf_buf = nullptr; // null = pf_data_ holds settled data
  bool hooked = false;
  auto hook = [&] {
    if (hooked) return;
    hooked = true;
    b.at_flush_end([&] {
      if (wpf_buf != nullptr)
        std::copy(wpf_buf->begin(), wpf_buf->end(), pf_data_.begin());
      pf_valid_ = wpf_valid;
      pf_addr_ = wpf_addr;
      wpf_buf = nullptr;
      hooked = false;
    });
  };
  auto prefetch_native = [&](addr_t line_addr) {
    hook();
    if (line_addr + lb > cfg_.code_limit) {
      wpf_valid = false;
      return;
    }
    bytes& buf = b.scratch(lb);
    b.add_local(0, [this, &buf, line_addr] {
      (void)lower_->read(line_addr, buf);
      crypt_line(buf, /*encrypt=*/false);
    });
    wpf_valid = true;
    wpf_addr = line_addr;
    wpf_buf = &buf;
  };

  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    // Native: pure data-region segments (either direction) and line-aligned
    // code-region reads. Everything else — code writes (they must
    // invalidate the prefetch buffer before any later fetch), unaligned
    // code reads, boundary straddles — detours in order.
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments) {
      const bool data_region = seg.addr >= cfg_.code_limit;
      const bool code_read = !txn.is_write() && seg.addr % lb == 0 &&
                             seg.data.size() % lb == 0 && !seg.data.empty() &&
                             seg.addr + seg.data.size() <= cfg_.code_limit;
      if (!data_region && !code_read) {
        eligible = false;
        break;
      }
    }
    if (!eligible) {
      // The flush inside commits the window's prefetch state into
      // pf_data_; the scalar detour may then move the predictor, so
      // resynchronise the window view afterwards.
      b.detour_via(txn, *this);
      wpf_valid = pf_valid_;
      wpf_addr = pf_addr_;
      wpf_buf = nullptr;
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      if (seg.addr >= cfg_.code_limit) { // clear-form data passthrough
        if (txn.is_write()) ++stats_.writes;
        else ++stats_.reads;
        (void)b.queue(txn.op, txn.master, seg.addr, seg.data);
        continue;
      }
      for (std::size_t off = 0; off < seg.data.size(); off += lb) {
        const addr_t a = seg.addr + off;
        std::span<u8> line = seg.data.subspan(off, lb);
        ++stats_.reads;
        if (cfg_.fetch_prediction && wpf_valid && wpf_addr == a) {
          // Predicted: the line is fetched (or in flight in this very
          // window) and deciphered by retirement. The copy-out runs at
          // retirement too — the destination span may double as an
          // earlier queued write's source (the cache's evict/fill pair
          // reuses one line buffer).
          ++prefetch_hits_;
          bytes* src = wpf_buf;
          if (src == nullptr) src = &b.scratch_copy(pf_data_);
          b.add_local(1,
                      [line, src] { std::copy(src->begin(), src->end(), line.begin()); });
          wpf_valid = false;
          prefetch_native(a + lb);
          continue;
        }
        ++prefetch_misses_;
        const std::size_t li = b.queue(sim::txn_op::read, txn.master, a, line);
        const cycles crypt =
            cfg_.encrypt ? cfg_.core.time_parallel(cfg_.core.blocks_for(lb)) : 0;
        stats_.crypto_cycles += crypt;
        b.add_gated(li, txn_batcher::no_lower, crypt,
                    [this, line] { crypt_line(line, /*encrypt=*/false); });
        if (cfg_.fetch_prediction) prefetch_native(a + lb);
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles gilmont_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  if (addr >= cfg_.code_limit) return lower_->write(addr, in); // data: clear form

  // Static code is installed through the cipher; runtime code writes are
  // rare (self-modifying code) but handled: line-aligned encrypt, with the
  // five-step penalty for partial lines.
  const addr_t base = addr - addr % cfg_.line_bytes;
  const addr_t end_addr = addr + in.size();
  const addr_t end = (end_addr % cfg_.line_bytes == 0)
                         ? end_addr
                         : end_addr + cfg_.line_bytes - end_addr % cfg_.line_bytes;
  const std::size_t span_len = static_cast<std::size_t>(end - base);

  // Invalidate the prefetch buffer if any written line overlaps it.
  if (pf_valid_ && base < pf_addr_ + cfg_.line_bytes && pf_addr_ < end)
    pf_valid_ = false;

  bytes buf(span_len);
  cycles total = 0;
  const cycles crypt_cost =
      cfg_.encrypt ? cfg_.core.time_parallel(cfg_.core.blocks_for(span_len)) : 0;
  if (span_len != in.size()) {
    ++stats_.rmw_ops;
    total += lower_->read(base, buf);
    crypt_line(buf, /*encrypt=*/false);
    total += crypt_cost;
  }
  const std::size_t head = static_cast<std::size_t>(addr - base);
  for (std::size_t i = 0; i < in.size(); ++i) buf[head + i] = in[i];
  crypt_line(buf, /*encrypt=*/true);
  stats_.crypto_cycles += crypt_cost;
  total += crypt_cost + lower_->write(base, buf);
  return total;
}

} // namespace buscrypt::edu
