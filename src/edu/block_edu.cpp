#include "edu/block_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/modes.hpp"
#include "edu/batch.hpp"

#include <stdexcept>

namespace buscrypt::edu {

block_edu::block_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
                     block_edu_config cfg)
    : edu(lower), cipher_(&cipher), cfg_(cfg) {
  if (cipher.block_size() != cfg_.core.block_bytes)
    throw std::invalid_argument("block_edu: cipher block size != core model block size");
  if (cfg_.mode == block_mode::cbc_line) {
    if (cfg_.chain_bytes % cipher.block_size() != 0 || cfg_.chain_bytes == 0)
      throw std::invalid_argument("block_edu: chain_bytes must be a block multiple");
    granule_ = cfg_.chain_bytes;
  } else {
    granule_ = cipher.block_size();
  }
  name_ = std::string(cipher.name()) +
          (cfg_.mode == block_mode::ecb ? "-ECB" : "-CBCline");
}

std::string_view block_edu::name() const noexcept { return name_; }

void block_edu::derive_iv(addr_t granule_addr, std::span<u8> iv) const {
  // IV = E(tweak ^ addr): unpredictable to the attacker, recomputable from
  // the address alone (no IV storage) — the AEGIS-style construction.
  bytes block(cipher_->block_size(), 0);
  store_be64(block.data(), cfg_.iv_tweak ^ granule_addr);
  cipher_->encrypt_block(block, iv);
}

void block_edu::encrypt_range(addr_t addr, std::span<u8> buf) {
  const std::size_t bs = cipher_->block_size();
  stats_.cipher_blocks += buf.size() / bs;
  if (cfg_.mode == block_mode::ecb) {
    crypto::ecb_encrypt(*cipher_, buf, buf);
    return;
  }
  bytes iv(bs);
  for (std::size_t off = 0; off < buf.size(); off += granule_) {
    derive_iv(addr + off, iv);
    ++stats_.cipher_blocks; // the IV generation encryption
    crypto::cbc_encrypt(*cipher_, iv, buf.subspan(off, granule_), buf.subspan(off, granule_));
  }
}

void block_edu::decrypt_range(addr_t addr, std::span<u8> buf) {
  const std::size_t bs = cipher_->block_size();
  stats_.cipher_blocks += buf.size() / bs;
  if (cfg_.mode == block_mode::ecb) {
    crypto::ecb_decrypt(*cipher_, buf, buf);
    return;
  }
  bytes iv(bs);
  for (std::size_t off = 0; off < buf.size(); off += granule_) {
    derive_iv(addr + off, iv);
    ++stats_.cipher_blocks;
    crypto::cbc_decrypt(*cipher_, iv, buf.subspan(off, granule_), buf.subspan(off, granule_));
  }
}

cycles block_edu::decrypt_time(std::size_t nbytes) {
  // ECB and CBC-decrypt are block-parallel, so a pipelined core streams
  // them; IV derivation overlaps the fetch (address known at request).
  return cfg_.core.time_parallel(cfg_.core.blocks_for(nbytes));
}

cycles block_edu::encrypt_time(std::size_t nbytes) {
  const std::size_t nblocks = cfg_.core.blocks_for(nbytes);
  // CBC encryption is serial within a chain: the pipeline drains each block.
  return cfg_.mode == block_mode::cbc_line ? cfg_.core.time_chained(nblocks)
                                           : cfg_.core.time_parallel(nblocks);
}

cycles block_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  const addr_t start = addr - addr % granule_;
  const addr_t end_addr = addr + out.size();
  const addr_t end = (end_addr % granule_ == 0)
                         ? end_addr
                         : end_addr + granule_ - end_addr % granule_;
  const std::size_t span_len = static_cast<std::size_t>(end - start);

  bytes buf(span_len);
  const cycles mem = lower_->read(start, buf);
  decrypt_range(start, buf);
  const cycles crypt = decrypt_time(span_len);
  stats_.crypto_cycles += crypt;

  const std::size_t head = static_cast<std::size_t>(addr - start);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = buf[head + i];
  return mem + crypt;
}

void block_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments)
      if (seg.data.empty() || seg.addr % granule_ != 0 ||
          seg.data.size() % granule_ != 0) {
        eligible = false;
        break;
      }
    if (!eligible) {
      b.detour_via(txn, *this);
      continue;
    }
    // One count per segment, matching scalar issue of the same ops.
    for (sim::txn_segment& seg : txn.segments) {
      if (txn.is_write()) {
        ++stats_.writes;
        bytes& ct = b.scratch_copy(seg.data);
        encrypt_range(seg.addr, ct);
        const cycles enc = encrypt_time(ct.size());
        stats_.crypto_cycles += enc;
        b.add_pre(enc);
        (void)b.queue(sim::txn_op::write, txn.master, seg.addr, ct);
      } else {
        ++stats_.reads;
        const std::size_t li = b.queue(sim::txn_op::read, txn.master, seg.addr, seg.data);
        const cycles dec = decrypt_time(seg.data.size());
        stats_.crypto_cycles += dec;
        b.add_gated(li, txn_batcher::no_lower, dec,
                    [this, addr = seg.addr, data = seg.data] {
                      decrypt_range(addr, data);
                    });
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles block_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  const addr_t start = addr - addr % granule_;
  const addr_t end_addr = addr + in.size();
  const addr_t end = (end_addr % granule_ == 0)
                         ? end_addr
                         : end_addr + granule_ - end_addr % granule_;
  const std::size_t span_len = static_cast<std::size_t>(end - start);

  cycles total = 0;
  bytes buf(span_len);
  if (span_len != in.size()) {
    // The paper's five-step sub-block write: read + decipher + modify +
    // re-cipher + write back.
    ++stats_.rmw_ops;
    total += lower_->read(start, buf);
    decrypt_range(start, buf);
    const cycles dec = decrypt_time(span_len);
    stats_.crypto_cycles += dec;
    total += dec;
  }
  const std::size_t head = static_cast<std::size_t>(addr - start);
  for (std::size_t i = 0; i < in.size(); ++i) buf[head + i] = in[i];

  encrypt_range(start, buf);
  const cycles enc = encrypt_time(span_len);
  stats_.crypto_cycles += enc;
  total += enc;
  total += lower_->write(start, buf);
  return total;
}

} // namespace buscrypt::edu
