#pragma once
/// \file cacheside_edu.hpp
/// The Fig. 7b placement Section 4 analyses and rejects: the EDU sits
/// between the CPU core and the cache, so "all the data contained in the
/// cache memory will be ciphered". Costs the survey calls out, all
/// modelled here:
///   - every cache access (hit or miss) pays the cipher stage:
///     "Modifying the cache access time directly impacts the system
///     performance";
///   - the key stream must be resident on-chip: "add an on-chip memory
///     equivalent to the cache memory in term of size";
///   - keystream regeneration on a miss must finish within the external
///     fetch time or it stalls further.

#include "crypto/modes.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"
#include "sim/cache.hpp"

namespace buscrypt::edu {

struct cacheside_edu_config {
  pipeline_model pad_core = aes_pipelined();
  cycles xor_cycles = 1;        ///< per-access cipher stage on the hit path
  u64 tweak = 0xCAC4E51DEULL;
};

/// EDU between CPU and cache. The wrapped cache stores ciphertext; this
/// class XORs the keystream on every access. Keystream is tracked per
/// cache line in a model of the on-chip keystream RAM.
class cacheside_edu final : public edu {
 public:
  /// \param l1  the cache this EDU fronts (also its memory_port lower).
  /// \param prf block cipher generating the keystream; referenced.
  cacheside_edu(sim::cache& l1, const crypto::block_cipher& prf,
                cacheside_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "CacheSide-OTP"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. The cipher stage sits on the CPU<->cache path, so
  /// there is no lower bus window to overlap — the cache serves the
  /// transactions in order exactly as scalar issue would. What a batch
  /// *can* overlap is the keystream RAM refills: each missed line's
  /// regeneration may run during any other miss's external fetch, so the
  /// window pays only the excess of the total regeneration over the total
  /// fetch time (pooled), where scalar issue pays each overrun alone.
  void submit(std::span<sim::mem_txn> batch) override;

  /// Size of the on-chip keystream RAM the scheme requires — by
  /// construction equal to the cache data array ("doubling the integrated
  /// memory size seems to be unaffordable").
  [[nodiscard]] std::size_t keystream_ram_bytes() const noexcept {
    return cache_->config().size;
  }

  /// Cycles by which keystream regeneration overran the memory fetch.
  [[nodiscard]] cycles keystream_overrun_cycles() const noexcept { return overrun_; }

 private:
  /// One access through the (ciphertext) cache, shared by the scalar and
  /// batched paths: functional transform + cache time, plus the keystream
  /// refill this access owes and the fetch window it can hide behind
  /// (nonzero only when the touched line (re)entered the cache).
  struct access_io {
    cycles below = 0; ///< cache time + the per-access XOR stage
    cycles ks = 0;    ///< keystream regeneration owed
    cycles fetch = 0; ///< external-fetch window available to hide it
  };
  [[nodiscard]] access_io do_access(addr_t addr, std::span<u8> inout, bool is_write,
                                    std::span<const u8> wdata);
  [[nodiscard]] cycles access(addr_t addr, std::span<u8> inout, bool is_write,
                              std::span<const u8> wdata);
  void pad_for(addr_t addr, std::span<u8> pad_out);

  sim::cache* cache_;
  crypto::address_pad pad_;
  cacheside_edu_config cfg_;
  cycles overrun_ = 0;
};

} // namespace buscrypt::edu
