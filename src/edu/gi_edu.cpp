#include "edu/gi_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/mac.hpp"
#include "crypto/modes.hpp"
#include "edu/batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::edu {

gi_edu::gi_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
               bytes mac_key, gi_edu_config cfg)
    : edu(lower), cipher_(&cipher), mac_key_(std::move(mac_key)), cfg_(cfg) {
  if (cfg_.segment_bytes % cipher.block_size() != 0)
    throw std::invalid_argument("gi_edu: segment must be a block multiple");
  if (cfg_.tag_bytes == 0 || cfg_.tag_bytes > 32)
    throw std::invalid_argument("gi_edu: tag_bytes must be 1..32");
}

void gi_edu::derive_iv(addr_t seg_base, std::span<u8> iv) const {
  bytes src(cipher_->block_size(), 0);
  store_be64(src.data(), cfg_.iv_tweak ^ seg_base);
  cipher_->encrypt_block(src, iv);
}

bytes gi_edu::compute_tag(addr_t seg_base, std::span<const u8> plain) const {
  // Keyed hash over (address || plaintext) so segments cannot be swapped.
  bytes msg(8 + plain.size());
  store_be64(msg.data(), seg_base);
  std::copy(plain.begin(), plain.end(), msg.begin() + 8);
  return crypto::hmac_sha256_tag(mac_key_, msg, cfg_.tag_bytes);
}

cycles gi_edu::hash_time(std::size_t nbytes) const noexcept {
  return cfg_.hash_startup +
         static_cast<cycles>(static_cast<double>(nbytes) * cfg_.hash_cycles_per_byte);
}

void gi_edu::touch_verified(addr_t seg_base) {
  auto it = std::find(verified_lru_.begin(), verified_lru_.end(), seg_base);
  if (it != verified_lru_.end()) verified_lru_.erase(it);
  verified_lru_.push_back(seg_base);
  if (verified_lru_.size() > cfg_.verified_cache_entries)
    verified_lru_.erase(verified_lru_.begin());
}

bool gi_edu::recently_verified(addr_t seg_base) const noexcept {
  return std::find(verified_lru_.begin(), verified_lru_.end(), seg_base) !=
         verified_lru_.end();
}

gi_edu::segment_io gi_edu::load_segment(addr_t seg_base) {
  segment_io io;
  io.plain.resize(cfg_.segment_bytes);
  const cycles mem = lower_->read(seg_base, io.plain);

  bytes iv(cipher_->block_size());
  derive_iv(seg_base, iv);
  crypto::cbc_decrypt(*cipher_, iv, io.plain, io.plain);
  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.segment_bytes);
  stats_.cipher_blocks += nblocks + 1;
  const cycles crypt = cfg_.core.time_parallel(nblocks);

  io.spent = mem + crypt;
  if (cfg_.authenticate && !recently_verified(seg_base)) {
    const bytes tag = compute_tag(seg_base, io.plain);
    const auto it = tags_.find(seg_base);
    if (it == tags_.end() || !crypto::tag_equal(tag, it->second)) ++auth_failures_;
    io.spent += hash_time(cfg_.segment_bytes);
    touch_verified(seg_base);
  }
  stats_.crypto_cycles += io.spent - mem;
  return io;
}

cycles gi_edu::store_segment(addr_t seg_base, std::span<const u8> plain) {
  bytes ct(plain.begin(), plain.end());
  bytes iv(cipher_->block_size());
  derive_iv(seg_base, iv);
  crypto::cbc_encrypt(*cipher_, iv, ct, ct);
  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.segment_bytes);
  stats_.cipher_blocks += nblocks + 1;

  cycles spent = cfg_.core.time_chained(nblocks); // CBC encrypt is serial
  if (cfg_.authenticate) {
    tags_[seg_base] = compute_tag(seg_base, plain);
    spent += hash_time(cfg_.segment_bytes);
    touch_verified(seg_base);
  }
  stats_.crypto_cycles += spent;
  spent += lower_->write(seg_base, ct);
  return spent;
}

cycles gi_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.segment_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.segment_bytes - off, out.size() - done);
    segment_io io = load_segment(base);
    for (std::size_t i = 0; i < n; ++i) out[done + i] = io.plain[off + i];
    total += io.spent;
    done += n;
  }
  return total;
}

void gi_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.segment_bytes);
  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    // Writes RMW whole segments (data-dependent ciphertext): scalar detour.
    if (txn.is_write() || txn.segments.empty()) {
      b.detour_via(txn, *this);
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      ++stats_.reads; // one count per segment, as scalar issue of this op
      std::size_t done = 0;
      while (done < seg.data.size()) {
        const addr_t a = seg.addr + done;
        const addr_t base = a - a % cfg_.segment_bytes;
        const std::size_t off = static_cast<std::size_t>(a - base);
        const std::size_t n = std::min(cfg_.segment_bytes - off, seg.data.size() - done);

        bytes& buf = b.scratch(cfg_.segment_bytes);
        const std::size_t li = b.queue(sim::txn_op::read, txn.master, base, buf);
        // The verified-LRU decision is state, not data: advance it in
        // submission order now so later ops in the window see it.
        const bool verify = cfg_.authenticate && !recently_verified(base);
        if (verify) touch_verified(base);
        const cycles crypt = cfg_.core.time_parallel(nblocks) +
                             (verify ? hash_time(cfg_.segment_bytes) : 0);
        stats_.cipher_blocks += nblocks + 1;
        stats_.crypto_cycles += crypt;
        b.add_gated(li, txn_batcher::no_lower, crypt,
                    [this, base, &buf, off, out = seg.data.subspan(done, n), verify] {
                      bytes iv(cipher_->block_size());
                      derive_iv(base, iv);
                      crypto::cbc_decrypt(*cipher_, iv, buf, buf);
                      if (verify) {
                        const bytes tag = compute_tag(base, buf);
                        const auto it = tags_.find(base);
                        if (it == tags_.end() || !crypto::tag_equal(tag, it->second))
                          ++auth_failures_;
                      }
                      std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off),
                                  out.size(), out.begin());
                    });
        done += n;
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles gi_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  cycles total = 0;
  std::size_t done = 0;
  while (done < in.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.segment_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.segment_bytes - off, in.size() - done);

    if (off == 0 && n == cfg_.segment_bytes) {
      // Full-segment write: no need to fetch the old contents.
      total += store_segment(base, in.subspan(done, n));
    } else {
      // Whole-segment read-modify-write: the CBC chain and the tag both
      // cover the full segment.
      ++stats_.rmw_ops;
      segment_io io = load_segment(base);
      total += io.spent;
      for (std::size_t i = 0; i < n; ++i) io.plain[off + i] = in[done + i];
      total += store_segment(base, io.plain);
    }
    done += n;
  }
  return total;
}

} // namespace buscrypt::edu
