#include "edu/integrity_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/mac.hpp"
#include "edu/batch.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace buscrypt::edu {

integrity_edu::integrity_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                             bytes mac_key, integrity_edu_config cfg)
    : edu(lower), prf_(&prf), mac_key_(std::move(mac_key)), cfg_(cfg) {
  if (cfg_.line_bytes == 0 || cfg_.line_bytes % prf.block_size() != 0)
    throw std::invalid_argument("integrity_edu: line must be a PRF-block multiple");
  if (cfg_.tag_bytes == 0 || cfg_.tag_bytes > 32)
    throw std::invalid_argument("integrity_edu: tag_bytes must be 1..32");
  if (cfg_.tag_base < cfg_.protected_limit)
    throw std::invalid_argument("integrity_edu: tag region overlaps protected range");
}

std::string_view integrity_edu::name() const noexcept {
  switch (cfg_.level) {
    case integrity_level::none: return "Integrity-off";
    case integrity_level::mac: return "Integrity-MAC";
    case integrity_level::mac_versioned: return "Integrity-MAC+ver";
  }
  return "?";
}

u64 integrity_edu::version_of(addr_t line_addr) const noexcept {
  const auto it = versions_.find(line_addr);
  return it == versions_.end() ? 0 : it->second;
}

void integrity_edu::pad_line(addr_t line_addr, u64 version, std::span<u8> buf) const {
  // Pad block i = E(tweak ^ block_index || version): seekable by address
  // AND fresh per version, so pad reuse across writes never happens when
  // versioning is on.
  const std::size_t bs = prf_->block_size();
  bytes block(bs, 0);
  bytes pad(bs);
  for (std::size_t off = 0; off < buf.size(); off += bs) {
    store_be64(block.data(), cfg_.tweak ^ ((line_addr + off) / bs));
    if (bs >= 16) store_be64(block.data() + 8, version);
    else block[0] ^= static_cast<u8>(version);
    prf_->encrypt_block(block, pad);
    const std::size_t n = std::min(bs, buf.size() - off);
    xor_bytes(buf.subspan(off, n), pad);
  }
}

bytes integrity_edu::line_tag(addr_t line_addr, u64 version,
                              std::span<const u8> ciphertext) const {
  bytes msg(16 + ciphertext.size());
  store_be64(msg.data(), line_addr); // binds the tag to its address (anti-splice)
  store_be64(msg.data() + 8,
             cfg_.level == integrity_level::mac_versioned ? version : 0);
  std::copy(ciphertext.begin(), ciphertext.end(), msg.begin() + 16);
  return crypto::hmac_sha256_tag(mac_key_, msg, cfg_.tag_bytes);
}

cycles integrity_edu::mac_time(std::size_t nbytes) const noexcept {
  return cfg_.mac_startup +
         static_cast<cycles>(static_cast<double>(nbytes) * cfg_.mac_cycles_per_byte);
}

cycles integrity_edu::fetch_tag(addr_t line_addr, std::span<u8> out) {
  const addr_t ta = tag_addr(line_addr);
  const addr_t tag_line = ta - ta % k_tag_line;
  const std::size_t off = static_cast<std::size_t>(ta - tag_line);

  auto it = tag_cache_.find(tag_line);
  cycles spent = 0;
  if (it == tag_cache_.end() || cfg_.tag_cache_entries == 0) {
    ++tag_misses_;
    bytes fill(k_tag_line);
    spent = lower_->read(tag_line, fill);
    if (cfg_.tag_cache_entries != 0) {
      if (tag_cache_fifo_.size() >= cfg_.tag_cache_entries) {
        tag_cache_.erase(tag_cache_fifo_.front());
        tag_cache_fifo_.erase(tag_cache_fifo_.begin());
      }
      it = tag_cache_.emplace(tag_line, std::move(fill)).first;
      tag_cache_fifo_.push_back(tag_line);
    } else {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = fill[off + i];
      return spent;
    }
  } else {
    ++tag_hits_;
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = it->second[off + i];
  return spent;
}

cycles integrity_edu::store_tag(addr_t line_addr, std::span<const u8> tag) {
  const addr_t ta = tag_addr(line_addr);
  const addr_t tag_line = ta - ta % k_tag_line;
  const auto it = tag_cache_.find(tag_line);
  if (it != tag_cache_.end()) {
    const std::size_t off = static_cast<std::size_t>(ta - tag_line);
    for (std::size_t i = 0; i < tag.size(); ++i) it->second[off + i] = tag[i];
  }
  return lower_->write(ta, tag); // write-through: the chip stays in sync
}

cycles integrity_edu::read_line(addr_t line_addr, std::span<u8> out) {
  const cycles mem = lower_->read(line_addr, out);
  cycles total = mem;

  if (cfg_.level != integrity_level::none) {
    // Fetch and verify the tag BEFORE releasing data to the cache. The
    // MAC unit streams over the beats as they arrive, so only its fill
    // latency plus any excess over the burst is exposed.
    bytes stored_tag(cfg_.tag_bytes);
    total += fetch_tag(line_addr, stored_tag);
    const bytes expect = line_tag(line_addr, version_of(line_addr), out);
    if (!crypto::tag_equal(expect, stored_tag)) ++tamper_events_;
    const cycles mac_t = mac_time(cfg_.line_bytes);
    const cycles exposed = cfg_.mac_startup + (mac_t > mem ? mac_t - mem : 0);
    total += exposed;
    stats_.crypto_cycles += exposed;
  }

  // Decrypt: pad generation overlapped with the fetch.
  const u64 version = version_of(line_addr);
  pad_line(line_addr, version, out);
  const std::size_t nblocks = cfg_.pad_core.blocks_for(cfg_.line_bytes);
  stats_.cipher_blocks += nblocks;
  const cycles pad_t = cfg_.pad_core.time_parallel(nblocks);
  if (pad_t > mem) {
    total += pad_t - mem;
    stats_.crypto_cycles += pad_t - mem;
  }
  total += 1; // XOR stage
  return total;
}

cycles integrity_edu::write_line(addr_t line_addr, std::span<const u8> in) {
  u64 version = version_of(line_addr);
  if (cfg_.level == integrity_level::mac_versioned) version = ++versions_[line_addr];

  bytes ct(in.begin(), in.end());
  pad_line(line_addr, version, ct);
  const std::size_t nblocks = cfg_.pad_core.blocks_for(cfg_.line_bytes);
  stats_.cipher_blocks += nblocks;

  cycles total = cfg_.pad_core.time_parallel(nblocks) + 1;
  stats_.crypto_cycles += total;
  total += lower_->write(line_addr, ct);

  if (cfg_.level != integrity_level::none) {
    const bytes tag = line_tag(line_addr, version, ct);
    total += mac_time(cfg_.line_bytes);
    stats_.crypto_cycles += mac_time(cfg_.line_bytes);
    total += store_tag(line_addr, tag);
  }
  return total;
}

void integrity_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  const std::size_t lb = cfg_.line_bytes;
  const std::size_t nblocks = cfg_.pad_core.blocks_for(lb);
  const cycles pad_t = cfg_.pad_core.time_parallel(nblocks);
  const bool authed = cfg_.level != integrity_level::none;

  // Window tag plumbing: deduplicated tag-line fetches riding the same
  // lower window, plus the tags this window stages (forwarded to later
  // reads and applied to the on-chip cache at retirement).
  struct tag_fetch {
    addr_t line = 0;
    std::size_t li = 0;
    bytes* buf = nullptr;
  };
  std::vector<tag_fetch> fetches;
  std::unordered_map<addr_t, std::size_t> fetch_map; ///< tag line -> fetches idx
  std::unordered_map<addr_t, bytes> staged_tags;     ///< tag addr -> staged tag
  bool hooked = false;
  auto hook = [&] {
    if (hooked) return;
    hooked = true;
    b.at_flush_end([&] {
      // Install fetched tag lines (FIFO, as fetch_tag does) and lay the
      // window's staged tags on top — the state scalar issue leaves.
      if (cfg_.tag_cache_entries != 0) {
        for (const tag_fetch& tf : fetches) {
          if (tag_cache_.find(tf.line) != tag_cache_.end()) continue;
          if (tag_cache_fifo_.size() >= cfg_.tag_cache_entries) {
            tag_cache_.erase(tag_cache_fifo_.front());
            tag_cache_fifo_.erase(tag_cache_fifo_.begin());
          }
          tag_cache_.emplace(tf.line, *tf.buf);
          tag_cache_fifo_.push_back(tf.line);
        }
        for (const auto& [ta, tag] : staged_tags) {
          const addr_t line = ta - ta % k_tag_line;
          const auto it = tag_cache_.find(line);
          if (it == tag_cache_.end()) continue;
          const std::size_t off = static_cast<std::size_t>(ta - line);
          std::copy(tag.begin(), tag.end(),
                    it->second.begin() + static_cast<std::ptrdiff_t>(off));
        }
      }
      fetches.clear();
      fetch_map.clear();
      staged_tags.clear();
      hooked = false;
    });
  };

  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments)
      if (seg.data.empty() || seg.addr % lb != 0 || seg.data.size() % lb != 0) {
        eligible = false;
        break;
      }
    if (!eligible) {
      b.detour_via(txn, *this);
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      if (txn.is_write()) ++stats_.writes;
      else ++stats_.reads;
      for (std::size_t off = 0; off < seg.data.size(); off += lb) {
        const addr_t a = seg.addr + off;
        std::span<u8> line = seg.data.subspan(off, lb);
        stats_.cipher_blocks += nblocks;
        if (txn.is_write()) {
          u64 v = version_of(a);
          if (cfg_.level == integrity_level::mac_versioned) v = ++versions_[a];
          bytes& ct = b.scratch_copy(line);
          pad_line(a, v, ct);
          b.add_par(txn_batcher::no_lower, pad_t, 1);
          stats_.crypto_cycles += pad_t + 1;
          (void)b.queue(sim::txn_op::write, txn.master, a, ct);
          if (authed) {
            const bytes tag = line_tag(a, v, ct);
            const cycles mac_t = mac_time(lb);
            stats_.crypto_cycles += mac_t;
            b.add_pre(mac_t);
            const addr_t ta = tag_addr(a);
            // Write-through, exactly as store_tag: the cached copy (if
            // any) updates now; the DRAM store rides this window.
            const addr_t tline = ta - ta % k_tag_line;
            if (const auto it = tag_cache_.find(tline); it != tag_cache_.end()) {
              const std::size_t toff = static_cast<std::size_t>(ta - tline);
              std::copy(tag.begin(), tag.end(),
                        it->second.begin() + static_cast<std::ptrdiff_t>(toff));
            }
            staged_tags[ta] = tag;
            hook();
            bytes& tb = b.scratch_copy(tag);
            (void)b.queue_side(sim::txn_op::write, txn.master, ta, tb);
          }
          continue;
        }
        // Read: snapshot the version now (a later in-window write must not
        // bleed its bumped version into this line's pad or tag check).
        const u64 v = version_of(a);
        const std::size_t li = b.queue(sim::txn_op::read, txn.master, a, line);
        if (authed) {
          const addr_t ta = tag_addr(a);
          const addr_t tline = ta - ta % k_tag_line;
          const std::size_t toff = static_cast<std::size_t>(ta - tline);
          std::size_t tag_li = txn_batcher::no_lower;
          std::function<bytes()> stored;
          const auto fwd = staged_tags.find(ta);
          const auto cached = tag_cache_.find(tline);
          if (cfg_.tag_cache_entries != 0 && fwd != staged_tags.end()) {
            // In-flush forwarding: the tag a write staged moments ago.
            ++tag_hits_;
            stored = [tag = fwd->second] { return tag; };
          } else if (cfg_.tag_cache_entries != 0 && cached != tag_cache_.end()) {
            ++tag_hits_;
            const auto* line_bytes = &cached->second;
            bytes tag(line_bytes->begin() + static_cast<std::ptrdiff_t>(toff),
                      line_bytes->begin() +
                          static_cast<std::ptrdiff_t>(toff + cfg_.tag_bytes));
            stored = [tag = std::move(tag)] { return tag; };
          } else {
            ++tag_misses_;
            std::size_t idx;
            if (cfg_.tag_cache_entries == 0) {
              // Naive design: one tag fetch per access, nothing retained.
              bytes& fb = b.scratch(k_tag_line);
              idx = fetches.size();
              fetches.push_back({tline, b.queue_side(sim::txn_op::read, txn.master,
                                                     tline, fb),
                                 &fb});
            } else {
              const auto [it, inserted] = fetch_map.try_emplace(tline, fetches.size());
              if (inserted) {
                bytes& fb = b.scratch(k_tag_line);
                fetches.push_back({tline, b.queue_side(sim::txn_op::read, txn.master,
                                                       tline, fb),
                                   &fb});
              }
              idx = it->second;
            }
            hook();
            tag_li = fetches[idx].li;
            stored = [buf = fetches[idx].buf, toff, n = cfg_.tag_bytes] {
              return bytes(buf->begin() + static_cast<std::ptrdiff_t>(toff),
                           buf->begin() + static_cast<std::ptrdiff_t>(toff + n));
            };
          }
          // The serial MAC unit starts once data AND tag have arrived;
          // verification consumes the ciphertext before the pad pass.
          const cycles mac_t = mac_time(lb);
          stats_.crypto_cycles += mac_t;
          b.add_gated(li, tag_li, mac_t, [this, a, v, line, stored = std::move(stored)] {
            const bytes expect = line_tag(a, v, line);
            if (!crypto::tag_equal(expect, stored())) ++tamper_events_;
          });
        }
        stats_.crypto_cycles += 1; // the XOR stage
        b.add_par(li, pad_t, 1, [this, a, v, line] { pad_line(a, v, line); });
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles integrity_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  const std::size_t lb = cfg_.line_bytes;
  const addr_t base = addr - addr % lb;
  const addr_t end_addr = addr + out.size();
  const addr_t end = (end_addr % lb == 0) ? end_addr : end_addr + lb - end_addr % lb;

  bytes buf(static_cast<std::size_t>(end - base));
  cycles total = 0;
  for (addr_t a = base; a < end; a += lb)
    total += read_line(a, std::span<u8>(buf).subspan(static_cast<std::size_t>(a - base), lb));
  const std::size_t head = static_cast<std::size_t>(addr - base);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = buf[head + i];
  return total;
}

cycles integrity_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  const std::size_t lb = cfg_.line_bytes;
  const addr_t base = addr - addr % lb;
  const addr_t end_addr = addr + in.size();
  const addr_t end = (end_addr % lb == 0) ? end_addr : end_addr + lb - end_addr % lb;
  const std::size_t span_len = static_cast<std::size_t>(end - base);

  bytes buf(span_len);
  cycles total = 0;
  if (span_len != in.size()) {
    // The tag covers whole lines: sub-line stores read-modify-write.
    ++stats_.rmw_ops;
    total += read(base, buf);
  }
  const std::size_t head = static_cast<std::size_t>(addr - base);
  for (std::size_t i = 0; i < in.size(); ++i) buf[head + i] = in[i];
  for (addr_t a = base; a < end; a += lb)
    total += write_line(a, std::span<const u8>(buf).subspan(
                               static_cast<std::size_t>(a - base), lb));
  return total;
}

} // namespace buscrypt::edu
