#pragma once
/// \file compress_edu.hpp
/// The Section 4 / Fig. 8 proposal: "add a compression step to a ciphering
/// solution. The compression has to be done before ciphering, if not,
/// compression will have a very poor ratio due to the strong stochastic
/// properties of encrypted data."
///
/// Code region: CodePack-compressed groups, packed tight in external
/// memory, each group pad-encrypted over its compressed bytes. A line
/// fetch reads *fewer bus bytes* (the performance upside) but pays the
/// decompressor (the downside) — the origin of CodePack's "+/- 10%".
/// Data region: pad-encrypted, uncompressed (data is written at runtime;
/// the survey's proposal compresses the static code image).

#include "compress/codepack.hpp"
#include "crypto/modes.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

namespace buscrypt::edu {

struct compress_edu_config {
  std::size_t group_bytes = 64;
  pipeline_model pad_core = aes_pipelined();
  compress::codec_timing decomp = {4, 0.5}; ///< hardware decompressor model
  cycles xor_cycles = 1;
  bool encrypt = true;        ///< ablation: compression-only
  u64 tweak = 0xC0305E55ULL;
};

/// Compression + encryption EDU.
class compress_edu final : public edu {
 public:
  compress_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
               compress_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override {
    return cfg_.encrypt ? "Compress+OTP" : "Compress-only";
  }

  /// Compress, encrypt and lay out a static code image at \p base.
  /// Must be called before any read into [base, base+code.size()).
  void install_code(addr_t base, std::span<const u8> code);

  /// install_image routes through install_code for the first region and
  /// the pad path for later (data) regions.
  void install_image(addr_t base, std::span<const u8> plain) override;
  void read_image(addr_t base, std::span<u8> plain_out) override;

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. Code fetches queue their *compressed* group reads
  /// into one lower window (fewer bus bytes, banks overlapping); the
  /// address-derived pad runs in parallel with the whole window and the
  /// streaming decompressor is gated on each group's own arrival. The
  /// decompressor's fill latency (dictionary warm-up) is paid once per
  /// window — group state stays hot across a batch, the amortisation a
  /// scalar stream can never see. Data traffic takes the pad-overlap
  /// path (writes staged pre-enciphered, reads XORed on arrival).
  /// Requests straddling the code/data boundary detour in order.
  void submit(std::span<sim::mem_txn> batch) override;

  /// Memory density gain on the installed code ("increase of memory
  /// density of 35%" is CodePack's claim).
  [[nodiscard]] double density_gain() const noexcept { return image_.density_gain(); }
  [[nodiscard]] std::size_t compressed_bytes() const noexcept {
    return image_.compressed_size();
  }

 private:
  [[nodiscard]] bool in_code(addr_t addr, std::size_t len) const noexcept;
  [[nodiscard]] cycles read_code(addr_t addr, std::span<u8> out);
  [[nodiscard]] cycles pad_io(addr_t addr, std::span<u8> buf, bool is_write,
                              std::span<const u8> wdata);

  crypto::address_pad pad_;
  compress_edu_config cfg_;
  compress::codepack engine_;
  compress::codepack_image image_; ///< index + dictionaries (on-chip model)
  addr_t code_base_ = 0;
  std::size_t code_size_ = 0;
  bool code_installed_ = false;
  // Physical byte extents of each group in external memory.
  std::vector<std::pair<u32, u32>> group_extent_; ///< (offset, length)
};

} // namespace buscrypt::edu
