#pragma once
/// \file edu.hpp
/// The Encryption/Decryption Unit (EDU) base: a memory_port decorator
/// sitting "between the cache and the external memory controller"
/// (Best's rule, Fig. 2c) — everything above it sees plaintext, everything
/// below it (bus, DRAM, probes, attackers) sees ciphertext.

#include "sim/memory_port.hpp"

#include <span>
#include <string_view>

namespace buscrypt::edu {

/// Counters every EDU maintains, reported by the benches.
struct edu_stats {
  u64 reads = 0;
  u64 writes = 0;
  u64 cipher_blocks = 0;   ///< block-cipher invocations
  cycles crypto_cycles = 0; ///< cycles charged beyond the raw memory time
  u64 rmw_ops = 0;          ///< sub-block read-modify-write sequences
  u64 batches = 0;          ///< submit() calls served
  u64 batched_txns = 0;     ///< transactions carried by those batches
};

/// Base EDU. Derived classes implement the functional transform and the
/// timing policy; the plaintext baseline is plain_edu.
class edu : public sim::memory_port {
 public:
  explicit edu(sim::memory_port& lower) : lower_(&lower) {}

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Install a plaintext image into external memory through the encrypt
  /// path without charging simulation time (the paper's offline "memory
  /// content ciphering can be done offline"). Default: block-sized chunked
  /// writes with timing discarded.
  virtual void install_image(addr_t base, std::span<const u8> plain);

  /// Read back a plaintext view of memory through the decrypt path,
  /// without charging time (verification/test hook).
  virtual void read_image(addr_t base, std::span<u8> plain_out);

  /// Default transaction adapter: every surveyed EDU is batch-capable out
  /// of the box by serialising the batch through its own scalar
  /// read()/write() (functionally identical, no overlap). EDUs whose
  /// hardware genuinely overlaps crypto with the bus (stream_edu, the
  /// keyslot engine) override this with a native batch path.
  void submit(std::span<sim::mem_txn> batch) override {
    note_batch(batch.size());
    sim::memory_port::submit(batch);
  }

  [[nodiscard]] const edu_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Preferred transfer granularity for install_image chunking.
  [[nodiscard]] virtual std::size_t preferred_chunk() const noexcept { return 64; }

 protected:
  void note_batch(std::size_t txns) noexcept {
    ++stats_.batches;
    stats_.batched_txns += txns;
  }

  sim::memory_port* lower_;
  edu_stats stats_;
};

} // namespace buscrypt::edu
