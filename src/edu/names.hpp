#pragma once
/// \file names.hpp
/// Display names shared between the SoC engine table and the engine_edu
/// adapter, so "Keyslot-<backend>" is spelled in exactly one place
/// (engine_name() needs it as a constexpr string_view; engine_edu
/// composes it at runtime for non-default backends).

#include <string_view>

namespace buscrypt::edu {

/// Display-name prefix of the keyslot-based inline engine.
inline constexpr std::string_view keyslot_name_prefix = "Keyslot-";

/// Backend the SoC's inline_keyslot engine is built with by default.
inline constexpr std::string_view keyslot_default_backend = "aes-ctr";

/// The default inline engine's display name.
inline constexpr std::string_view keyslot_default_name = "Keyslot-aes-ctr";

static_assert(keyslot_default_name.substr(0, keyslot_name_prefix.size()) ==
                      keyslot_name_prefix &&
                  keyslot_default_name.substr(keyslot_name_prefix.size()) ==
                      keyslot_default_backend,
              "keyslot_default_name must stay prefix + default backend");

} // namespace buscrypt::edu
