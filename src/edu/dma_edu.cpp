#include "edu/dma_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/modes.hpp"
#include "edu/batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::edu {

dma_edu::dma_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
                 dma_edu_config cfg)
    : edu(lower), cipher_(&cipher), cfg_(cfg) {
  if (cfg_.page_bytes % cipher.block_size() != 0)
    throw std::invalid_argument("dma_edu: page must be a block multiple");
  if (cfg_.n_buffers == 0) throw std::invalid_argument("dma_edu: need >= 1 buffer");
  buffers_.resize(cfg_.n_buffers);
  for (auto& b : buffers_) b.data.resize(cfg_.page_bytes, 0);
}

void dma_edu::cipher_page(addr_t base, std::span<u8> buf, bool encrypt) {
  bytes iv(cipher_->block_size(), 0);
  bytes iv_src(cipher_->block_size(), 0);
  store_be64(iv_src.data(), cfg_.iv_tweak ^ base);
  cipher_->encrypt_block(iv_src, iv);
  stats_.cipher_blocks += 1 + buf.size() / cipher_->block_size();
  if (encrypt)
    crypto::cbc_encrypt(*cipher_, iv, buf, buf);
  else
    crypto::cbc_decrypt(*cipher_, iv, buf, buf);
}

cycles dma_edu::encrypt_and_writeback(page_buffer& pb) {
  // Encrypt a copy: the resident buffer must keep serving plaintext.
  bytes ct = pb.data;
  cipher_page(pb.base, ct, /*encrypt=*/true);
  // CBC encryption of the page is chained; DMA overlaps the bus transfer
  // with encryption of later blocks, so charge the longer of the two.
  const cycles crypt = cfg_.core.time_chained(cfg_.core.blocks_for(cfg_.page_bytes));
  const cycles mem = lower_->write(pb.base, ct);
  stats_.crypto_cycles += crypt;
  pb.dirty = false;
  return std::max(crypt, mem) + cfg_.core.latency;
}

dma_edu::page_buffer* dma_edu::find_buffer(addr_t page_base) noexcept {
  for (auto& b : buffers_)
    if (b.valid && b.base == page_base) return &b;
  return nullptr;
}

dma_edu::page_buffer* dma_edu::pick_victim() noexcept {
  page_buffer* victim = &buffers_[0];
  for (auto& b : buffers_) {
    if (!b.valid) return &b;
    if (b.last_used < victim->last_used) victim = &b;
  }
  return victim;
}

std::pair<dma_edu::page_buffer*, cycles> dma_edu::fault_in(addr_t page_base) {
  if (page_buffer* hit = find_buffer(page_base)) {
    hit->last_used = ++tick_;
    return {hit, 0};
  }

  ++page_faults_;
  page_buffer* victim = pick_victim();

  cycles spent = 0;
  if (victim->valid && victim->dirty) spent += encrypt_and_writeback(*victim);

  const cycles mem = lower_->read(page_base, victim->data);
  cipher_page(page_base, victim->data, /*encrypt=*/false);
  // CBC decryption pipelines behind the incoming burst.
  const cycles crypt = cfg_.core.time_parallel(cfg_.core.blocks_for(cfg_.page_bytes));
  stats_.crypto_cycles += crypt;
  spent += std::max(mem, crypt) + cfg_.core.latency;

  victim->valid = true;
  victim->dirty = false;
  victim->base = page_base;
  victim->last_used = ++tick_;
  return {victim, spent};
}

cycles dma_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.page_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.page_bytes - off, out.size() - done);
    auto [pb, spent] = fault_in(base);
    for (std::size_t i = 0; i < n; ++i) out[done + i] = pb->data[off + i];
    total += spent + cfg_.sram_latency;
    done += n;
  }
  return total;
}

cycles dma_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  cycles total = 0;
  std::size_t done = 0;
  while (done < in.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.page_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.page_bytes - off, in.size() - done);
    auto [pb, spent] = fault_in(base);
    for (std::size_t i = 0; i < n; ++i) pb->data[off + i] = in[done + i];
    pb->dirty = true;
    total += spent + cfg_.sram_latency;
    done += n;
  }
  return total;
}

void dma_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  const std::size_t nblocks = cfg_.core.blocks_for(cfg_.page_bytes);
  // Buffers whose data is still in flight in the current window: a pending
  // fill or a store whose copy-in runs at window retirement. Evicting one
  // would encrypt unsettled bytes, so the window retires first.
  std::vector<page_buffer*> in_flight;
  const auto unsettled = [&](const page_buffer* pb) {
    return std::find(in_flight.begin(), in_flight.end(), pb) != in_flight.end();
  };

  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    if (txn.segments.empty()) {
      b.detour_via(txn, *this);
      in_flight.clear(); // the detour's flush settled every buffer
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      if (txn.is_write()) ++stats_.writes;
      else ++stats_.reads;
      std::size_t done = 0;
      while (done < seg.data.size()) {
        const addr_t a = seg.addr + done;
        const addr_t base = a - a % cfg_.page_bytes;
        const std::size_t off = static_cast<std::size_t>(a - base);
        const std::size_t n = std::min(cfg_.page_bytes - off, seg.data.size() - done);

        page_buffer* pb = find_buffer(base);
        if (pb == nullptr) {
          ++page_faults_;
          pb = pick_victim();
          if (unsettled(pb)) {
            b.flush();
            in_flight.clear();
          }
          if (pb->valid && pb->dirty) {
            bytes& ct = b.scratch_copy(pb->data);
            cipher_page(pb->base, ct, /*encrypt=*/true);
            const cycles enc = cfg_.core.time_chained(nblocks);
            stats_.crypto_cycles += enc;
            b.add_pre(enc + cfg_.core.latency);
            (void)b.queue(sim::txn_op::write, txn.master, pb->base, ct);
            pb->dirty = false;
          }
          bytes& fill = b.scratch(cfg_.page_bytes);
          const std::size_t li = b.queue(sim::txn_op::read, txn.master, base, fill);
          // CBC decryption pipelines behind the incoming burst (the scalar
          // path's max(mem, crypt)): overlapped work, not arrival-gated.
          const cycles dec = cfg_.core.time_parallel(nblocks);
          stats_.crypto_cycles += dec;
          b.add_par(li, dec, cfg_.core.latency, [this, pb, &fill, base] {
            std::copy(fill.begin(), fill.end(), pb->data.begin());
            cipher_page(base, pb->data, /*encrypt=*/false);
          });
          pb->valid = true;
          pb->dirty = false;
          pb->base = base;
          in_flight.push_back(pb);
        }
        pb->last_used = ++tick_;

        // The access itself: SRAM-latency on-chip work; the data movement
        // runs at retirement, after any fill for this page has landed.
        if (txn.is_write()) {
          pb->dirty = true;
          if (!unsettled(pb)) in_flight.push_back(pb);
          b.add_local(cfg_.sram_latency,
                      [pb, off, src = std::span<const u8>(seg.data.subspan(done, n))] {
                        std::copy(src.begin(), src.end(),
                                  pb->data.begin() + static_cast<std::ptrdiff_t>(off));
                      });
        } else {
          b.add_local(cfg_.sram_latency, [pb, off, dst = seg.data.subspan(done, n)] {
            std::copy_n(pb->data.begin() + static_cast<std::ptrdiff_t>(off), dst.size(),
                        dst.begin());
          });
        }
        done += n;
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles dma_edu::flush() {
  cycles total = 0;
  for (auto& b : buffers_)
    if (b.valid && b.dirty) total += encrypt_and_writeback(b);
  return total;
}

} // namespace buscrypt::edu
