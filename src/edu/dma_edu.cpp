#include "edu/dma_edu.hpp"

#include "common/bitops.hpp"
#include "crypto/modes.hpp"

#include <stdexcept>

namespace buscrypt::edu {

dma_edu::dma_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
                 dma_edu_config cfg)
    : edu(lower), cipher_(&cipher), cfg_(cfg) {
  if (cfg_.page_bytes % cipher.block_size() != 0)
    throw std::invalid_argument("dma_edu: page must be a block multiple");
  if (cfg_.n_buffers == 0) throw std::invalid_argument("dma_edu: need >= 1 buffer");
  buffers_.resize(cfg_.n_buffers);
  for (auto& b : buffers_) b.data.resize(cfg_.page_bytes, 0);
}

void dma_edu::cipher_page(addr_t base, std::span<u8> buf, bool encrypt) {
  bytes iv(cipher_->block_size(), 0);
  bytes iv_src(cipher_->block_size(), 0);
  store_be64(iv_src.data(), cfg_.iv_tweak ^ base);
  cipher_->encrypt_block(iv_src, iv);
  stats_.cipher_blocks += 1 + buf.size() / cipher_->block_size();
  if (encrypt)
    crypto::cbc_encrypt(*cipher_, iv, buf, buf);
  else
    crypto::cbc_decrypt(*cipher_, iv, buf, buf);
}

cycles dma_edu::encrypt_and_writeback(page_buffer& pb) {
  // Encrypt a copy: the resident buffer must keep serving plaintext.
  bytes ct = pb.data;
  cipher_page(pb.base, ct, /*encrypt=*/true);
  // CBC encryption of the page is chained; DMA overlaps the bus transfer
  // with encryption of later blocks, so charge the longer of the two.
  const cycles crypt = cfg_.core.time_chained(cfg_.core.blocks_for(cfg_.page_bytes));
  const cycles mem = lower_->write(pb.base, ct);
  stats_.crypto_cycles += crypt;
  pb.dirty = false;
  return std::max(crypt, mem) + cfg_.core.latency;
}

std::pair<dma_edu::page_buffer*, cycles> dma_edu::fault_in(addr_t page_base) {
  for (auto& b : buffers_) {
    if (b.valid && b.base == page_base) {
      b.last_used = ++tick_;
      return {&b, 0};
    }
  }

  ++page_faults_;
  page_buffer* victim = &buffers_[0];
  for (auto& b : buffers_) {
    if (!b.valid) {
      victim = &b;
      break;
    }
    if (b.last_used < victim->last_used) victim = &b;
  }

  cycles spent = 0;
  if (victim->valid && victim->dirty) spent += encrypt_and_writeback(*victim);

  const cycles mem = lower_->read(page_base, victim->data);
  cipher_page(page_base, victim->data, /*encrypt=*/false);
  // CBC decryption pipelines behind the incoming burst.
  const cycles crypt = cfg_.core.time_parallel(cfg_.core.blocks_for(cfg_.page_bytes));
  stats_.crypto_cycles += crypt;
  spent += std::max(mem, crypt) + cfg_.core.latency;

  victim->valid = true;
  victim->dirty = false;
  victim->base = page_base;
  victim->last_used = ++tick_;
  return {victim, spent};
}

cycles dma_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.page_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.page_bytes - off, out.size() - done);
    auto [pb, spent] = fault_in(base);
    for (std::size_t i = 0; i < n; ++i) out[done + i] = pb->data[off + i];
    total += spent + cfg_.sram_latency;
    done += n;
  }
  return total;
}

cycles dma_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  cycles total = 0;
  std::size_t done = 0;
  while (done < in.size()) {
    const addr_t a = addr + done;
    const addr_t base = a - a % cfg_.page_bytes;
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n = std::min(cfg_.page_bytes - off, in.size() - done);
    auto [pb, spent] = fault_in(base);
    for (std::size_t i = 0; i < n; ++i) pb->data[off + i] = in[done + i];
    pb->dirty = true;
    total += spent + cfg_.sram_latency;
    done += n;
  }
  return total;
}

cycles dma_edu::flush() {
  cycles total = 0;
  for (auto& b : buffers_)
    if (b.valid && b.dirty) total += encrypt_and_writeback(b);
  return total;
}

} // namespace buscrypt::edu
