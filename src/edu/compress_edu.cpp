#include "edu/compress_edu.hpp"

#include "common/bitops.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::edu {

compress_edu::compress_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                           compress_edu_config cfg)
    : edu(lower), pad_(prf, cfg.tweak), cfg_(cfg), engine_(cfg.group_bytes) {}

bool compress_edu::in_code(addr_t addr, std::size_t len) const noexcept {
  return code_installed_ && addr >= code_base_ &&
         addr + len <= code_base_ + code_size_;
}

void compress_edu::install_code(addr_t base, std::span<const u8> code) {
  if (code_installed_) throw std::logic_error("compress_edu: code already installed");
  bytes padded(code.begin(), code.end());
  while (padded.size() % 4 != 0) padded.push_back(0);

  image_ = engine_.compress_image(padded);
  code_base_ = base;
  code_size_ = code.size();

  // Pack groups back-to-back in external memory starting at the code base.
  group_extent_.clear();
  addr_t phys = base;
  for (std::size_t g = 0; g < image_.group_bit_offsets.size(); ++g) {
    const std::size_t start_bit = image_.group_bit_offsets[g];
    const std::size_t end_bit = (g + 1 < image_.group_bit_offsets.size())
                                    ? image_.group_bit_offsets[g + 1]
                                    : image_.payload.size() * 8;
    const std::size_t start_byte = start_bit / 8;
    const std::size_t end_byte = (end_bit + 7) / 8;
    const std::size_t len = end_byte - start_byte;

    bytes chunk(image_.payload.begin() + static_cast<std::ptrdiff_t>(start_byte),
                image_.payload.begin() + static_cast<std::ptrdiff_t>(end_byte));
    if (cfg_.encrypt) {
      bytes pad(chunk.size());
      pad_.generate(phys, pad);
      xor_bytes(chunk, pad);
    }
    (void)lower_->write(phys, chunk);
    group_extent_.emplace_back(static_cast<u32>(phys - base), static_cast<u32>(len));
    phys += len;
  }
  if (phys > base + code_size_)
    throw std::logic_error("compress_edu: image expanded beyond its region");
  code_installed_ = true;
}

void compress_edu::install_image(addr_t base, std::span<const u8> plain) {
  if (!code_installed_) {
    install_code(base, plain);
    return;
  }
  // Subsequent regions are data: pad-encrypted, uncompressed.
  constexpr std::size_t chunk = 64;
  std::size_t off = 0;
  while (off < plain.size()) {
    const std::size_t n = std::min(chunk, plain.size() - off);
    (void)write(base + off, plain.subspan(off, n));
    off += n;
  }
}

void compress_edu::read_image(addr_t base, std::span<u8> plain_out) {
  std::size_t off = 0;
  while (off < plain_out.size()) {
    const std::size_t n = std::min<std::size_t>(32, plain_out.size() - off);
    (void)read(base + off, plain_out.subspan(off, n));
    off += n;
  }
}

cycles compress_edu::read_code(addr_t addr, std::span<u8> out) {
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const std::size_t g = static_cast<std::size_t>(a - code_base_) / image_.group_bytes;
    const std::size_t in_group = static_cast<std::size_t>(a - code_base_) % image_.group_bytes;
    const std::size_t n = std::min(image_.group_bytes - in_group, out.size() - done);

    const auto [phys_off, len] = group_extent_[g];
    const addr_t phys = code_base_ + phys_off;

    // Fetch the *compressed* group: fewer bus beats than a raw line.
    bytes chunk(len);
    const cycles mem = lower_->read(phys, chunk);
    cycles spent = mem;
    if (cfg_.encrypt) {
      bytes pad(chunk.size());
      pad_.generate(phys, pad);
      stats_.cipher_blocks += pad_.blocks_covering(phys, chunk.size());
      xor_bytes(chunk, pad);
      const cycles pad_t =
          cfg_.pad_core.time_parallel(pad_.blocks_covering(phys, chunk.size()));
      spent = std::max(mem, pad_t) + cfg_.xor_cycles;
    }
    // The decompressor streams: it consumes beats as they arrive (CodePack
    // style), so only its drain beyond the transfer is exposed.
    const cycles mem_and_pad = spent;

    // Stream the decrypted chunk straight into the decompressor, exactly
    // as the hardware fill path would.
    const std::size_t group_base = g * image_.group_bytes;
    const std::size_t group_len =
        std::min(image_.group_bytes, image_.original_size - group_base);
    const bytes group_plain = engine_.decompress_chunk(
        chunk, image_.group_bit_offsets[g] % 8, group_len, image_);
    spent = std::max(mem_and_pad, cfg_.decomp.latency_for(group_plain.size())) +
            cfg_.decomp.startup;
    stats_.crypto_cycles += spent - mem;

    for (std::size_t i = 0; i < n; ++i) out[done + i] = group_plain[in_group + i];
    total += spent;
    done += n;
  }
  return total;
}

cycles compress_edu::pad_io(addr_t addr, std::span<u8> buf, bool is_write,
                            std::span<const u8> wdata) {
  const std::size_t len = is_write ? wdata.size() : buf.size();
  const cycles pad_t = cfg_.encrypt
                           ? cfg_.pad_core.time_parallel(pad_.blocks_covering(addr, len))
                           : 0;
  cycles mem;
  if (is_write) {
    bytes ct(wdata.begin(), wdata.end());
    if (cfg_.encrypt) {
      bytes pad(ct.size());
      pad_.generate(addr, pad);
      stats_.cipher_blocks += pad_.blocks_covering(addr, ct.size());
      xor_bytes(ct, pad);
    }
    mem = lower_->write(addr, ct);
  } else {
    mem = lower_->read(addr, buf);
    if (cfg_.encrypt) {
      bytes pad(buf.size());
      pad_.generate(addr, pad);
      stats_.cipher_blocks += pad_.blocks_covering(addr, buf.size());
      xor_bytes(buf, pad);
    }
  }
  const cycles total = cfg_.encrypt ? std::max(mem, pad_t) + cfg_.xor_cycles : mem;
  stats_.crypto_cycles += total - mem;
  return total;
}

cycles compress_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  if (in_code(addr, out.size())) return read_code(addr, out);
  return pad_io(addr, out, /*is_write=*/false, {});
}

cycles compress_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  if (in_code(addr, in.size()))
    throw std::logic_error("compress_edu: code region is read-only");
  return pad_io(addr, {}, /*is_write=*/true, in);
}

} // namespace buscrypt::edu
