#include "edu/compress_edu.hpp"

#include "common/bitops.hpp"
#include "edu/batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::edu {

compress_edu::compress_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                           compress_edu_config cfg)
    : edu(lower), pad_(prf, cfg.tweak), cfg_(cfg), engine_(cfg.group_bytes) {}

bool compress_edu::in_code(addr_t addr, std::size_t len) const noexcept {
  return code_installed_ && addr >= code_base_ &&
         addr + len <= code_base_ + code_size_;
}

void compress_edu::install_code(addr_t base, std::span<const u8> code) {
  if (code_installed_) throw std::logic_error("compress_edu: code already installed");
  bytes padded(code.begin(), code.end());
  while (padded.size() % 4 != 0) padded.push_back(0);

  image_ = engine_.compress_image(padded);
  code_base_ = base;
  code_size_ = code.size();

  // Pack groups back-to-back in external memory starting at the code base.
  group_extent_.clear();
  addr_t phys = base;
  for (std::size_t g = 0; g < image_.group_bit_offsets.size(); ++g) {
    const std::size_t start_bit = image_.group_bit_offsets[g];
    const std::size_t end_bit = (g + 1 < image_.group_bit_offsets.size())
                                    ? image_.group_bit_offsets[g + 1]
                                    : image_.payload.size() * 8;
    const std::size_t start_byte = start_bit / 8;
    const std::size_t end_byte = (end_bit + 7) / 8;
    const std::size_t len = end_byte - start_byte;

    bytes chunk(image_.payload.begin() + static_cast<std::ptrdiff_t>(start_byte),
                image_.payload.begin() + static_cast<std::ptrdiff_t>(end_byte));
    if (cfg_.encrypt) {
      bytes pad(chunk.size());
      pad_.generate(phys, pad);
      xor_bytes(chunk, pad);
    }
    (void)lower_->write(phys, chunk);
    group_extent_.emplace_back(static_cast<u32>(phys - base), static_cast<u32>(len));
    phys += len;
  }
  if (phys > base + code_size_)
    throw std::logic_error("compress_edu: image expanded beyond its region");
  code_installed_ = true;
}

void compress_edu::install_image(addr_t base, std::span<const u8> plain) {
  if (!code_installed_) {
    install_code(base, plain);
    return;
  }
  // Subsequent regions are data: pad-encrypted, uncompressed.
  constexpr std::size_t chunk = 64;
  std::size_t off = 0;
  while (off < plain.size()) {
    const std::size_t n = std::min(chunk, plain.size() - off);
    (void)write(base + off, plain.subspan(off, n));
    off += n;
  }
}

void compress_edu::read_image(addr_t base, std::span<u8> plain_out) {
  std::size_t off = 0;
  while (off < plain_out.size()) {
    const std::size_t n = std::min<std::size_t>(32, plain_out.size() - off);
    (void)read(base + off, plain_out.subspan(off, n));
    off += n;
  }
}

cycles compress_edu::read_code(addr_t addr, std::span<u8> out) {
  cycles total = 0;
  std::size_t done = 0;
  while (done < out.size()) {
    const addr_t a = addr + done;
    const std::size_t g = static_cast<std::size_t>(a - code_base_) / image_.group_bytes;
    const std::size_t in_group = static_cast<std::size_t>(a - code_base_) % image_.group_bytes;
    const std::size_t n = std::min(image_.group_bytes - in_group, out.size() - done);

    const auto [phys_off, len] = group_extent_[g];
    const addr_t phys = code_base_ + phys_off;

    // Fetch the *compressed* group: fewer bus beats than a raw line.
    bytes chunk(len);
    const cycles mem = lower_->read(phys, chunk);
    cycles spent = mem;
    if (cfg_.encrypt) {
      bytes pad(chunk.size());
      pad_.generate(phys, pad);
      stats_.cipher_blocks += pad_.blocks_covering(phys, chunk.size());
      xor_bytes(chunk, pad);
      const cycles pad_t =
          cfg_.pad_core.time_parallel(pad_.blocks_covering(phys, chunk.size()));
      spent = std::max(mem, pad_t) + cfg_.xor_cycles;
    }
    // The decompressor streams: it consumes beats as they arrive (CodePack
    // style), so only its drain beyond the transfer is exposed.
    const cycles mem_and_pad = spent;

    // Stream the decrypted chunk straight into the decompressor, exactly
    // as the hardware fill path would.
    const std::size_t group_base = g * image_.group_bytes;
    const std::size_t group_len =
        std::min(image_.group_bytes, image_.original_size - group_base);
    const bytes group_plain = engine_.decompress_chunk(
        chunk, image_.group_bit_offsets[g] % 8, group_len, image_);
    spent = std::max(mem_and_pad, cfg_.decomp.latency_for(group_plain.size())) +
            cfg_.decomp.startup;
    stats_.crypto_cycles += spent - mem;

    for (std::size_t i = 0; i < n; ++i) out[done + i] = group_plain[in_group + i];
    total += spent;
    done += n;
  }
  return total;
}

cycles compress_edu::pad_io(addr_t addr, std::span<u8> buf, bool is_write,
                            std::span<const u8> wdata) {
  const std::size_t len = is_write ? wdata.size() : buf.size();
  const cycles pad_t = cfg_.encrypt
                           ? cfg_.pad_core.time_parallel(pad_.blocks_covering(addr, len))
                           : 0;
  cycles mem;
  if (is_write) {
    bytes ct(wdata.begin(), wdata.end());
    if (cfg_.encrypt) {
      bytes pad(ct.size());
      pad_.generate(addr, pad);
      stats_.cipher_blocks += pad_.blocks_covering(addr, ct.size());
      xor_bytes(ct, pad);
    }
    mem = lower_->write(addr, ct);
  } else {
    mem = lower_->read(addr, buf);
    if (cfg_.encrypt) {
      bytes pad(buf.size());
      pad_.generate(addr, pad);
      stats_.cipher_blocks += pad_.blocks_covering(addr, buf.size());
      xor_bytes(buf, pad);
    }
  }
  const cycles total = cfg_.encrypt ? std::max(mem, pad_t) + cfg_.xor_cycles : mem;
  stats_.crypto_cycles += total - mem;
  return total;
}

void compress_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());
  txn_batcher b(*lower_, pending_txn_cycles_);
  // The decompressor keeps its group state hot across one window: only the
  // first group in each window pays the fill latency.
  u64 warm_window = static_cast<u64>(-1);

  for (sim::mem_txn& txn : batch) {
    b.begin_txn(txn);
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments) {
      const bool code = in_code(seg.addr, seg.data.size());
      const bool code_overlap =
          code_installed_ && seg.addr < code_base_ + code_size_ &&
          seg.addr + seg.data.size() > code_base_;
      // Native: pure data segments, and whole-in-code reads. Straddles and
      // code writes (read-only region: the scalar path's error applies)
      // detour in order.
      if ((code_overlap && !code) || (code && txn.is_write())) {
        eligible = false;
        break;
      }
    }
    if (!eligible) {
      b.detour_via(txn, *this);
      continue;
    }
    for (sim::txn_segment& seg : txn.segments) {
      if (txn.is_write()) ++stats_.writes;
      else ++stats_.reads;
      if (!in_code(seg.addr, seg.data.size())) {
        // Data region: the pad-overlap path.
        const cycles pad_t =
            cfg_.encrypt ? cfg_.pad_core.time_parallel(
                               pad_.blocks_covering(seg.addr, seg.data.size()))
                         : 0;
        if (txn.is_write()) {
          bytes& ct = b.scratch_copy(seg.data);
          if (cfg_.encrypt) {
            bytes pad(ct.size());
            pad_.generate(seg.addr, pad);
            stats_.cipher_blocks += pad_.blocks_covering(seg.addr, ct.size());
            xor_bytes(ct, pad);
            b.add_par(txn_batcher::no_lower, pad_t, cfg_.xor_cycles);
            stats_.crypto_cycles += cfg_.xor_cycles;
          }
          (void)b.queue(sim::txn_op::write, txn.master, seg.addr, ct);
        } else {
          const std::size_t li =
              b.queue(sim::txn_op::read, txn.master, seg.addr, seg.data);
          if (cfg_.encrypt) {
            stats_.cipher_blocks += pad_.blocks_covering(seg.addr, seg.data.size());
            stats_.crypto_cycles += cfg_.xor_cycles;
            b.add_par(li, pad_t, cfg_.xor_cycles,
                      [this, addr = seg.addr, data = seg.data] {
                        bytes pad(data.size());
                        pad_.generate(addr, pad);
                        xor_bytes(data, pad);
                      });
          }
        }
        continue;
      }
      // Code region read: group-by-group compressed fetches.
      std::size_t done = 0;
      while (done < seg.data.size()) {
        const addr_t a = seg.addr + done;
        const std::size_t g =
            static_cast<std::size_t>(a - code_base_) / image_.group_bytes;
        const std::size_t in_group =
            static_cast<std::size_t>(a - code_base_) % image_.group_bytes;
        const std::size_t n =
            std::min(image_.group_bytes - in_group, seg.data.size() - done);
        const auto [phys_off, len] = group_extent_[g];
        const addr_t phys = code_base_ + phys_off;

        bytes& chunk = b.scratch(len);
        const std::size_t li = b.queue(sim::txn_op::read, txn.master, phys, chunk);
        if (cfg_.encrypt) {
          const cycles pad_t =
              cfg_.pad_core.time_parallel(pad_.blocks_covering(phys, len));
          stats_.cipher_blocks += pad_.blocks_covering(phys, len);
          stats_.crypto_cycles += cfg_.xor_cycles;
          b.add_par(li, pad_t, cfg_.xor_cycles, [this, phys, &chunk] {
            bytes pad(chunk.size());
            pad_.generate(phys, pad);
            xor_bytes(chunk, pad);
          });
        }
        const std::size_t group_base = g * image_.group_bytes;
        const std::size_t group_len =
            std::min(image_.group_bytes, image_.original_size - group_base);
        const bool first_in_window = warm_window != b.flush_seq();
        warm_window = b.flush_seq();
        const cycles decomp = cfg_.decomp.latency_for(group_len) +
                              (first_in_window ? cfg_.decomp.startup : 0);
        stats_.crypto_cycles += decomp;
        b.add_gated(li, txn_batcher::no_lower, decomp,
                    [this, g, &chunk, group_len, in_group,
                     out = seg.data.subspan(done, n)] {
                      const bytes plain = engine_.decompress_chunk(
                          chunk, image_.group_bit_offsets[g] % 8, group_len, image_);
                      std::copy_n(plain.begin() + static_cast<std::ptrdiff_t>(in_group),
                                  out.size(), out.begin());
                    });
        done += n;
      }
    }
  }
  b.flush();
  pending_txn_cycles_ += b.clock();
}

cycles compress_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  if (in_code(addr, out.size())) return read_code(addr, out);
  return pad_io(addr, out, /*is_write=*/false, {});
}

cycles compress_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  if (in_code(addr, in.size()))
    throw std::logic_error("compress_edu: code region is read-only");
  return pad_io(addr, {}, /*is_write=*/true, in);
}

} // namespace buscrypt::edu
