#pragma once
/// \file plain_edu.hpp
/// The no-protection baseline: data crosses the bus in clear form — the
/// situation Section 1 describes ("data and instructions are constantly
/// exchanged ... in clear form on the bus"). Every overhead in the benches
/// is measured against this.

#include "edu/edu.hpp"

namespace buscrypt::edu {

/// Pass-through EDU: zero added latency, identity transform.
class plain_edu final : public edu {
 public:
  using edu::edu;

  [[nodiscard]] std::string_view name() const noexcept override { return "plaintext"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override {
    ++stats_.reads;
    return lower_->read(addr, out);
  }

  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override {
    ++stats_.writes;
    return lower_->write(addr, in);
  }
};

} // namespace buscrypt::edu
