#pragma once
/// \file plain_edu.hpp
/// The no-protection baseline: data crosses the bus in clear form — the
/// situation Section 1 describes ("data and instructions are constantly
/// exchanged ... in clear form on the bus"). Every overhead in the benches
/// is measured against this.

#include "edu/edu.hpp"

namespace buscrypt::edu {

/// Pass-through EDU: zero added latency, identity transform.
class plain_edu final : public edu {
 public:
  using edu::edu;

  [[nodiscard]] std::string_view name() const noexcept override { return "plaintext"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override {
    ++stats_.reads;
    return lower_->read(addr, out);
  }

  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override {
    ++stats_.writes;
    return lower_->write(addr, in);
  }

  /// A wire has nothing to serialise: hand the batch straight to the lower
  /// level so multi-bank overlap reaches the unprotected baseline too.
  void submit(std::span<sim::mem_txn> batch) override {
    note_batch(batch.size());
    for (const sim::mem_txn& txn : batch) {
      // One count per segment, matching scalar issue of the same ops.
      if (txn.is_write()) stats_.writes += txn.segments.size();
      else stats_.reads += txn.segments.size();
    }
    lower_->submit(batch);
  }
  [[nodiscard]] cycles drain() override { return lower_->drain(); }
};

} // namespace buscrypt::edu
