#include "edu/engine_edu.hpp"

namespace buscrypt::edu {

engine_edu::engine_edu(sim::memory_port& lower, std::span<const u8> key,
                       engine_edu_config cfg)
    : edu(lower), cfg_(std::move(cfg)),
      slots_(engine::backend_registry::builtin(), cfg_.num_slots, cfg_.policy),
      engine_(lower, slots_, cfg_.engine),
      name_(std::string(keyslot_name_prefix) + cfg_.backend) {
  default_ctx_ = engine_.create_context(
      {cfg_.backend, bytes(key.begin(), key.end()), cfg_.data_unit_size});
  // Default context covers the full address space; further map_region()
  // calls on engine() override it (later mappings win).
  engine_.map_region(0, static_cast<std::size_t>(-1), default_ctx_);
  if (cfg_.auth.mode != engine::auth_mode::none) {
    if (cfg_.auth.key.empty()) cfg_.auth.key = bytes(key.begin(), key.end());
    engine_.attach_auth(default_ctx_, cfg_.auth);
    name_ += '+';
    name_ += engine::auth_mode_name(cfg_.auth.mode);
  }
}

cycles engine_edu::read(addr_t addr, std::span<u8> out) {
  const cycles t = engine_.read(addr, out);
  sync_stats();
  return t;
}

cycles engine_edu::write(addr_t addr, std::span<const u8> in) {
  const cycles t = engine_.write(addr, in);
  sync_stats();
  return t;
}

void engine_edu::submit(std::span<sim::mem_txn> batch) {
  engine_.submit(batch);
  sync_stats();
}

cycles engine_edu::drain() { return engine_.drain(); }

void engine_edu::install_image(addr_t base, std::span<const u8> plain) {
  engine_.install(base, plain);
  sync_stats();
}

void engine_edu::read_image(addr_t base, std::span<u8> plain_out) {
  engine_.read_plain(base, plain_out);
  sync_stats();
}

void engine_edu::sync_stats() noexcept {
  const engine::engine_stats& es = engine_.stats();
  stats_.reads = es.reads;
  stats_.writes = es.writes;
  stats_.cipher_blocks = es.units;
  stats_.crypto_cycles = es.crypto_cycles;
  stats_.rmw_ops = es.rmw_ops;
  stats_.batches = es.batches;
  stats_.batched_txns = es.batched_txns;
}

} // namespace buscrypt::edu
