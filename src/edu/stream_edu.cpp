#include "edu/stream_edu.hpp"

#include "common/bitops.hpp"

#include <algorithm>

namespace buscrypt::edu {

stream_edu::stream_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                       stream_edu_config cfg)
    : edu(lower), pad_(prf, cfg.tweak), cfg_(cfg) {}

cycles stream_edu::pad_time(addr_t addr, std::size_t len) const noexcept {
  return cfg_.pad_core.time_parallel(pad_.blocks_covering(addr, len));
}

void stream_edu::apply_pad(addr_t addr, std::span<u8> buf) {
  bytes pad_bytes(buf.size());
  pad_.generate(addr, pad_bytes);
  stats_.cipher_blocks += pad_.blocks_covering(addr, buf.size());
  xor_bytes(buf, pad_bytes);
}

cycles stream_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  const cycles mem = lower_->read(addr, out);
  apply_pad(addr, out);

  const cycles pad = pad_time(addr, out.size());
  cycles total;
  if (cfg_.parallel_keystream) {
    // Pad generation starts from the address alone, concurrently with the
    // external fetch; only the excess (if any) is exposed.
    total = std::max(mem, pad) + cfg_.xor_cycles;
  } else {
    total = mem + pad + cfg_.xor_cycles;
  }
  stats_.crypto_cycles += total - mem;
  return total;
}

cycles stream_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  bytes ct(in.begin(), in.end());
  apply_pad(addr, ct);

  const cycles pad = pad_time(addr, in.size());
  const cycles mem = lower_->write(addr, ct);
  // A write buffer lets pad generation overlap the bus transfer the same
  // way reads do.
  const cycles total = cfg_.parallel_keystream ? std::max(mem, pad) + cfg_.xor_cycles
                                               : mem + pad + cfg_.xor_cycles;
  stats_.crypto_cycles += total - mem;
  return total;
}

} // namespace buscrypt::edu
