#include "edu/stream_edu.hpp"

#include "common/bitops.hpp"

#include <algorithm>

namespace buscrypt::edu {

stream_edu::stream_edu(sim::memory_port& lower, const crypto::block_cipher& prf,
                       stream_edu_config cfg)
    : edu(lower), pad_(prf, cfg.tweak), cfg_(cfg) {}

cycles stream_edu::pad_time(addr_t addr, std::size_t len) const noexcept {
  return cfg_.pad_core.time_parallel(pad_.blocks_covering(addr, len));
}

void stream_edu::apply_pad(addr_t addr, std::span<u8> buf) {
  bytes pad_bytes(buf.size());
  pad_.generate(addr, pad_bytes);
  stats_.cipher_blocks += pad_.blocks_covering(addr, buf.size());
  xor_bytes(buf, pad_bytes);
}

cycles stream_edu::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  const cycles mem = lower_->read(addr, out);
  apply_pad(addr, out);

  const cycles pad = pad_time(addr, out.size());
  cycles total;
  if (cfg_.parallel_keystream) {
    // Pad generation starts from the address alone, concurrently with the
    // external fetch; only the excess (if any) is exposed.
    total = std::max(mem, pad) + cfg_.xor_cycles;
  } else {
    total = mem + pad + cfg_.xor_cycles;
  }
  stats_.crypto_cycles += total - mem;
  return total;
}

void stream_edu::submit(std::span<sim::mem_txn> batch) {
  note_batch(batch.size());

  // Stage ciphertext for every write segment up front (the pad needs only
  // the address, so all of it can be generated before any data moves).
  std::size_t write_segs = 0;
  for (const sim::mem_txn& txn : batch)
    if (txn.is_write()) write_segs += txn.segments.size();
  std::vector<bytes> staged;
  staged.reserve(write_segs); // no reallocation: spans below stay valid

  cycles pad_total = 0;
  cycles n_segments = 0; // xor stage runs once per segment, as in scalar issue
  std::vector<cycles> txn_pad(batch.size(), 0), txn_xor(batch.size(), 0);
  std::vector<sim::mem_txn> lower;
  lower.reserve(batch.size());
  for (std::size_t ti = 0; ti < batch.size(); ++ti) {
    sim::mem_txn& txn = batch[ti];
    // One count per segment, matching scalar issue of the same ops.
    if (txn.is_write()) stats_.writes += txn.segments.size();
    else stats_.reads += txn.segments.size();
    sim::mem_txn lt;
    lt.id = txn.id;
    lt.op = txn.op;
    lt.master = txn.master; // attribution rides down to the bus beats
    lt.segments.reserve(txn.segments.size());
    for (sim::txn_segment& seg : txn.segments) {
      const cycles p = pad_time(seg.addr, seg.data.size());
      pad_total += p;
      txn_pad[ti] += p;
      txn_xor[ti] += cfg_.xor_cycles;
      ++n_segments;
      if (txn.is_write()) {
        staged.emplace_back(seg.data.begin(), seg.data.end());
        apply_pad(seg.addr, staged.back());
        lt.segments.push_back({seg.addr, std::span<u8>(staged.back())});
      } else {
        lt.segments.push_back(seg);
      }
    }
    lower.push_back(std::move(lt));
  }

  lower_->submit(lower);
  const cycles mem = lower_->drain();

  // Reads decrypt as their data lands on the internal side of the bus.
  for (sim::mem_txn& txn : batch)
    if (!txn.is_write())
      for (sim::txn_segment& seg : txn.segments) apply_pad(seg.addr, seg.data);

  const cycles xr = cfg_.xor_cycles * n_segments;
  const cycles total = cfg_.parallel_keystream ? std::max(mem, pad_total) + xr
                                               : mem + pad_total + xr;
  stats_.crypto_cycles += total - mem;
  // Per-txn stamps, consistent with the makespan above: with the parallel
  // keystream a txn completes when both its data and its share of the pad
  // (generated in txn order) are in hand; serial hardware instead chains
  // pad work after each arrival. Stamps stay monotone (in-order retire)
  // and never exceed `total`.
  cycles pad_prefix = 0, serial_done = 0, mono = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const cycles arrival = lower[i].complete_cycle;
    pad_prefix += txn_pad[i];
    cycles fin;
    if (cfg_.parallel_keystream) {
      fin = std::max(arrival, pad_prefix) + txn_xor[i];
    } else {
      serial_done = std::max(serial_done, arrival) + txn_pad[i] + txn_xor[i];
      fin = serial_done;
    }
    mono = std::max(mono, fin);
    batch[i].complete_cycle = pending_txn_cycles_ + mono;
  }
  pending_txn_cycles_ += total;
}

cycles stream_edu::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  bytes ct(in.begin(), in.end());
  apply_pad(addr, ct);

  const cycles pad = pad_time(addr, in.size());
  const cycles mem = lower_->write(addr, ct);
  // A write buffer lets pad generation overlap the bus transfer the same
  // way reads do.
  const cycles total = cfg_.parallel_keystream ? std::max(mem, pad) + cfg_.xor_cycles
                                               : mem + pad + cfg_.xor_cycles;
  stats_.crypto_cycles += total - mem;
  return total;
}

} // namespace buscrypt::edu
