#pragma once
/// \file dma_edu.hpp
/// The VLSI Technology patent engine (Fig. 4): "data transfers to and from
/// the external memory are done page-by-page. All CPU external requests
/// are managed by a secure DMA unit and communications between external
/// and internal memory use an encryption / decryption core. This system
/// allows the use of block cipher techniques (robustness)."
///
/// Model: a small set of on-chip page buffers. A request to a resident
/// page is an SRAM access; a miss DMAs the whole page through the cipher
/// core (and writes back the evicted page if dirty). The OS-trust caveat
/// ("viable provided that the OS is trusted") is a security note, not a
/// performance one — see README.

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

#include <vector>

namespace buscrypt::edu {

struct dma_edu_config {
  std::size_t page_bytes = 4096;
  unsigned n_buffers = 4;        ///< on-chip page buffers
  cycles sram_latency = 2;       ///< access into a resident page buffer
  pipeline_model core = aes_pipelined();
  u64 iv_tweak = 0xD41A5EC0DEULL;
};

/// Page-granular secure DMA engine with CBC-per-page ciphering.
class dma_edu final : public edu {
 public:
  dma_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
          dma_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "SecureDMA-page"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. Page-fault traffic is what batches: every miss in
  /// the window queues its whole-page fill (and dirty-victim writeback)
  /// into one lower submission, so the DMA engine overlaps page transfers
  /// across DRAM banks, pre-enciphers evicted pages ahead of the bus and
  /// gates each fill's CBC decipher on its own burst arrival. Resident
  /// accesses stay SRAM-latency on-chip work. A victim whose contents are
  /// still in flight in the current window (pending fill or staged store)
  /// retires the window first, so writebacks always encrypt settled data.
  void submit(std::span<sim::mem_txn> batch) override;

  /// Write every dirty page buffer back (encrypting); returns cycles.
  [[nodiscard]] cycles flush();

  [[nodiscard]] u64 page_faults() const noexcept { return page_faults_; }
  [[nodiscard]] std::size_t buffer_ram_bytes() const noexcept {
    return cfg_.page_bytes * cfg_.n_buffers;
  }
  [[nodiscard]] const dma_edu_config& config() const noexcept { return cfg_; }

 private:
  struct page_buffer {
    bool valid = false;
    bool dirty = false;
    addr_t base = 0;
    u64 last_used = 0;
    bytes data;
  };

  /// Make the page containing \p addr resident; returns (buffer, cycles).
  std::pair<page_buffer*, cycles> fault_in(addr_t page_base);
  [[nodiscard]] cycles encrypt_and_writeback(page_buffer& pb);
  void cipher_page(addr_t base, std::span<u8> buf, bool encrypt);

  /// Resident buffer for \p page_base, or nullptr (no LRU touch).
  [[nodiscard]] page_buffer* find_buffer(addr_t page_base) noexcept;
  /// Eviction choice: first invalid buffer, else least recently used.
  [[nodiscard]] page_buffer* pick_victim() noexcept;

  const crypto::block_cipher* cipher_;
  dma_edu_config cfg_;
  std::vector<page_buffer> buffers_;
  u64 tick_ = 0;
  u64 page_faults_ = 0;
};

} // namespace buscrypt::edu
