#pragma once
/// \file soc.hpp
/// One-stop assembly of the full system under study: CPU -> L1 cache ->
/// EDU -> memory controller/bus -> external DRAM, with probe taps on the
/// bus. Every engine the survey covers can be instantiated by name, so the
/// benches and tests can sweep the whole design space uniformly.

#include "crypto/block_cipher.hpp"
#include "crypto/toy_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/names.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "engine/eviction_policy.hpp"
#include "engine/memory_authenticator.hpp"
#include "sim/bus.hpp"
#include "sim/bus_arbiter.hpp"
#include "sim/cache.hpp"
#include "sim/cpu.hpp"
#include "sim/interconnect.hpp"
#include "sim/workload.hpp"

#include <functional>

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace buscrypt::edu {

/// Every engine in the survey, plus the plaintext baseline.
enum class engine_kind {
  plaintext,       ///< no protection (Section 1 status quo)
  best_stp,        ///< Best's patent cipher (Fig. 3)
  dallas_byte,     ///< DS5002FP byte cipher (Fig. 6, old)
  dallas_des,      ///< DS5240 64-bit DES (Fig. 6, new)
  block_ecb_aes,   ///< generic AES-ECB between cache and MC (Fig. 2c)
  block_cbc_aes,   ///< per-line CBC AES with address IV
  xom_aes,         ///< XOM pipelined AES [13]
  aegis_cbc,       ///< AEGIS per-line CBC with counter IVs [14]
  gilmont_3des,    ///< Gilmont fetch-predicted 3DES [3]
  gi_3des_cbc,     ///< General Instrument 3DES-CBC + keyed hash (Fig. 5)
  stream_otp,      ///< stream/OTP EDU, keystream parallel to fetch (Fig. 2a)
  stream_serial,   ///< ablation: keystream NOT parallelised
  secure_dma,      ///< VLSI page-by-page secure DMA (Fig. 4)
  cacheside_otp,   ///< EDU between CPU and cache (Fig. 7b)
  compress_otp,    ///< compression + encryption (Fig. 8)
  inline_keyslot,  ///< unified keyslot engine (engine/), AES-CTR default
};

/// Printable engine name (matches each EDU's name()). Compile-time so the
/// benches and tests can static_assert on it.
[[nodiscard]] constexpr std::string_view engine_name(engine_kind kind) noexcept {
  switch (kind) {
    case engine_kind::plaintext: return "plaintext";
    case engine_kind::best_stp: return "Best-STP";
    case engine_kind::dallas_byte: return "DS5002FP-byte";
    case engine_kind::dallas_des: return "DS5240-DES";
    case engine_kind::block_ecb_aes: return "AES-ECB";
    case engine_kind::block_cbc_aes: return "AES-CBCline";
    case engine_kind::xom_aes: return "XOM-AES";
    case engine_kind::aegis_cbc: return "AEGIS-AES-CBC";
    case engine_kind::gilmont_3des: return "Gilmont-3DES";
    case engine_kind::gi_3des_cbc: return "GI-3DES-CBC+MAC";
    case engine_kind::stream_otp: return "Stream-OTP";
    case engine_kind::stream_serial: return "Stream-serial";
    case engine_kind::secure_dma: return "SecureDMA-page";
    case engine_kind::cacheside_otp: return "CacheSide-OTP";
    case engine_kind::compress_otp: return "Compress+OTP";
    case engine_kind::inline_keyslot: return keyslot_default_name;
  }
  return "?";
}

/// Every kind, in survey order — the sweep table, fixed at compile time.
inline constexpr std::array<engine_kind, 16> all_engine_kinds = {
    engine_kind::plaintext,     engine_kind::best_stp,
    engine_kind::dallas_byte,   engine_kind::dallas_des,
    engine_kind::block_ecb_aes, engine_kind::block_cbc_aes,
    engine_kind::xom_aes,       engine_kind::aegis_cbc,
    engine_kind::gilmont_3des,  engine_kind::gi_3des_cbc,
    engine_kind::stream_otp,    engine_kind::stream_serial,
    engine_kind::secure_dma,    engine_kind::cacheside_otp,
    engine_kind::compress_otp,  engine_kind::inline_keyslot,
};

/// All kinds, in survey order — for sweeps.
[[nodiscard]] constexpr const std::array<engine_kind, 16>& all_engines() noexcept {
  return all_engine_kinds;
}

/// Role of a bus master in a multi-master scenario: sets the default
/// display name and transaction granularity (a DMA engine moves whole
/// bursts; CPU and peripheral traffic is line-granular).
enum class master_kind : u8 { cpu, dma, peripheral };

[[nodiscard]] constexpr std::string_view master_kind_name(master_kind k) noexcept {
  switch (k) {
    case master_kind::cpu: return "cpu";
    case master_kind::dma: return "dma";
    case master_kind::peripheral: return "periph";
  }
  return "?";
}

/// One master of a multi-master run: who it is, what it issues, and how
/// the arbiter and the engine's protection domains should treat it.
/// Master ids are assigned by position in the span handed to
/// run_multi_master (index 0 = sim::cpu_master).
struct master_desc {
  master_kind role = master_kind::cpu;
  std::string name;      ///< display name; role default when empty
  sim::workload work;    ///< this master's request stream
  unsigned priority = 0; ///< higher wins under fixed-priority arbitration
  std::size_t chunk = 0; ///< txn granularity in bytes; 0 = role default
                         ///< (L1 line; 4 lines for dma)
  /// Keyslot engines only: bind [domain_base, domain_base + domain_len)
  /// as this master's private protection domain under its own key,
  /// derived deterministically from the SoC seed and domain_base (so a
  /// solo re-run of the same descriptor produces identical ciphertext).
  /// domain_len == 0 shares the SoC's default context. Ignored — traffic
  /// stays on the shared mapping — for every non-keyslot engine.
  addr_t domain_base = 0;
  std::size_t domain_len = 0;
};

/// Arbitration knobs of a multi-master run (see sim::arbiter_config).
/// \deprecated The legacy flat-bus shape: run_multi_master turns it into a
/// single-cluster sim::topology, which takes the bit-identical grant
/// sequence. New code should build a topology and call run_topology.
struct multi_master_config {
  sim::arb_policy policy = sim::arb_policy::round_robin;
  std::size_t window_txns = 8;
  u64 starvation_limit = 0; ///< fixed-priority aging bound; 0 = strict
};

/// What one topology run measured: the interconnect view (tree, QoS,
/// reconfiguration latency) plus the engine-side security accounting,
/// collected before the run's domains are torn down.
struct topology_run_stats {
  sim::interconnect_stats noc;
  /// Per-master firewall counters by master index — per-rule hit/deny
  /// breakdowns for programmed ports, all-zero entries for open ones.
  std::vector<sim::fw_master_stats> firewall;
  u64 sentinel_denials = 0; ///< forged any_master transactions refused
  /// Keyslot engine only: per-master protected-region traffic and
  /// denials, by master index (empty for every other engine).
  std::vector<engine::domain_stats> domains;

  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return noc.bus.bytes_per_cycle();
  }
};

struct soc_config {
  sim::cache_config l1{};
  sim::dram_timing mem_timing{};
  std::size_t mem_size = 8u << 20;
  u64 key_seed = 0x5EC5EEDULL; ///< deterministic key material derivation
  /// Harvard L1: two caches of l1.size/2 each (fetches vs data) over the
  /// same EDU. Ignored by the cacheside_otp engine (which wraps one cache).
  bool split_l1 = false;
  /// inline_keyslot only: cipher backend of the default context; empty =
  /// keyslot_default_backend. The tab9 auth sweep uses this axis.
  std::string keyslot_backend;
  /// inline_keyslot only: authentication of [0, keyslot_auth_limit) on the
  /// default context (none = PR 3 behaviour, cycle-identical). Tags/tree
  /// nodes live at keyslot_auth_tag_base, outside every workload's range.
  engine::auth_mode keyslot_auth = engine::auth_mode::none;
  addr_t keyslot_auth_limit = 1u << 19;
  addr_t keyslot_auth_tag_base = 6u << 20;
  /// inline_keyslot only: slot-pool victim policy and pool size (0 keeps
  /// the engine_edu default). Policies trade telemetry/timing under
  /// context churn; the datapath bytes are policy-invariant.
  engine::slot_policy keyslot_policy = engine::slot_policy::lru;
  unsigned keyslot_slots = 0;
  /// Interconnect shape for run_topology(masters): clusters, QoS classes
  /// and firewall rule tables. The default (no clusters, no tables) is
  /// the flat PR 3 bus, bit-for-bit.
  sim::topology topology{};
};

/// The assembled system. Owns every component; wiring depends on the
/// engine (cacheside_otp puts the EDU above the cache, everything else
/// below it).
class secure_soc {
 public:
  secure_soc(engine_kind kind, const soc_config& cfg);

  /// Install a plaintext image through the engine's offline encrypt path.
  void load_image(addr_t base, std::span<const u8> plain);

  /// Decrypted view of memory via the engine (test/verification hook).
  [[nodiscard]] bytes read_back(addr_t base, std::size_t len);

  /// Execute a workload; stats are cumulative per-run.
  [[nodiscard]] sim::run_stats run(const sim::workload& w);

  /// Drive the engine directly (no CPU/L1 in the way) with line-granular
  /// transactions lowered from \p w: the sustained requests/sec view of
  /// the engine. batch_txns == 1 issues scalar blocking requests; larger
  /// batches go through submit()/drain() and let the engine overlap
  /// keystream/crypto with the bus and the DRAM banks with each other.
  [[nodiscard]] sim::throughput_stats run_throughput(const sim::workload& w,
                                                     std::size_t batch_txns);

  /// Drive the engine as a shared multi-master interconnect: each
  /// descriptor becomes a sim::bus_master (id = its index) whose stream
  /// is lowered at its chunk granularity, and a flat arbiter
  /// time-multiplexes their windows onto the EDU under \p mm's policy.
  /// Bus beats are tagged with the granted master's id; on the keyslot
  /// engine, descriptors with domain_len > 0 get private per-master
  /// protection domains (own derived key) for the duration of the run.
  /// Like run_throughput, the stream bypasses the L1 (which is written
  /// back and invalidated on entry).
  /// \deprecated Compatibility shim over run_topology: builds the
  /// single-cluster topology of \p mm and returns the flat stats view.
  [[nodiscard]] sim::arbiter_stats run_multi_master(std::span<const master_desc> masters,
                                                    const multi_master_config& mm = {});

  /// Called at every grant while a topology run is live: the granted
  /// master's id plus the interconnect itself, so callers can stage
  /// firewall reprograms (interconnect::reprogram_firewall) or read live
  /// counters under traffic.
  using grant_observer = std::function<void(sim::interconnect&, sim::master_id)>;

  /// The topology-first driver: like run_multi_master, but the masters
  /// are arbitrated by the tree \p topo declares (clusters, QoS classes)
  /// and each master's firewall rule table is enforced by the engine
  /// *before* its protection-domain map. Masters bind to topology slots
  /// by index-id; undeclared indices join cluster 0. On the keyslot
  /// engine the firewall is attached only when \p topo programs at least
  /// one table, so a table-free topology is cycle-identical to the flat
  /// run. Returns the interconnect stats plus the run's firewall and
  /// per-master domain accounting.
  [[nodiscard]] topology_run_stats run_topology(std::span<const master_desc> masters,
                                                const sim::topology& topo,
                                                const grant_observer& observe = {});
  /// run_topology over the topology carried in soc_config.
  [[nodiscard]] topology_run_stats run_topology(std::span<const master_desc> masters) {
    return run_topology(masters, cfg_.topology);
  }

  /// Write all dirty state (cache lines, page buffers) back to DRAM.
  void flush();

  /// Attach a bus probe (attacker / logic analyser).
  void attach_probe(sim::bus_probe& probe) { ext_.attach(probe); }

  [[nodiscard]] engine_kind kind() const noexcept { return kind_; }
  [[nodiscard]] edu& engine() noexcept { return *edu_; }
  /// The unified L1, or the data cache when split_l1 is set.
  [[nodiscard]] sim::cache& l1() noexcept { return *l1_; }
  /// The instruction cache; null unless split_l1.
  [[nodiscard]] sim::cache* l1i() noexcept { return l1i_.get(); }
  [[nodiscard]] sim::dram& memory() noexcept { return dram_; }
  [[nodiscard]] sim::external_memory& external() noexcept { return ext_; }
  [[nodiscard]] const soc_config& config() const noexcept { return cfg_; }

 private:
  /// Entry discipline shared by the direct-transaction drivers
  /// (run_throughput, run_multi_master): the txn streams bypass the L1,
  /// so write back any dirty lines a prior run() left behind (so a later
  /// flush() cannot clobber this run's data) and drop the rest, so a
  /// later run() refetches what this run rewrites; ditto the secure-DMA
  /// page buffers.
  void prepare_txn_stream();

  engine_kind kind_;
  soc_config cfg_;
  sim::dram dram_;
  sim::external_memory ext_;

  // Key material and functional cipher cores (owned).
  bytes aes_key_, des_key_, tdes_key_, byte_key_, mac_key_, best_key_;
  std::unique_ptr<crypto::block_cipher> cipher_;
  std::unique_ptr<crypto::block_cipher> prf_;
  std::unique_ptr<crypto::byte_bus_cipher> byte_cipher_;

  std::unique_ptr<sim::cache> l1_;
  std::unique_ptr<sim::cache> l1i_; ///< only when split_l1
  std::unique_ptr<edu> edu_;
  std::unique_ptr<sim::cpu> cpu_;
};

} // namespace buscrypt::edu
