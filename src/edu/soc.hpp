#pragma once
/// \file soc.hpp
/// One-stop assembly of the full system under study: CPU -> L1 cache ->
/// EDU -> memory controller/bus -> external DRAM, with probe taps on the
/// bus. Every engine the survey covers can be instantiated by name, so the
/// benches and tests can sweep the whole design space uniformly.

#include "crypto/block_cipher.hpp"
#include "crypto/toy_cipher.hpp"
#include "edu/edu.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/cpu.hpp"
#include "sim/workload.hpp"

#include <memory>
#include <vector>

namespace buscrypt::edu {

/// Every engine in the survey, plus the plaintext baseline.
enum class engine_kind {
  plaintext,       ///< no protection (Section 1 status quo)
  best_stp,        ///< Best's patent cipher (Fig. 3)
  dallas_byte,     ///< DS5002FP byte cipher (Fig. 6, old)
  dallas_des,      ///< DS5240 64-bit DES (Fig. 6, new)
  block_ecb_aes,   ///< generic AES-ECB between cache and MC (Fig. 2c)
  block_cbc_aes,   ///< per-line CBC AES with address IV
  xom_aes,         ///< XOM pipelined AES [13]
  aegis_cbc,       ///< AEGIS per-line CBC with counter IVs [14]
  gilmont_3des,    ///< Gilmont fetch-predicted 3DES [3]
  gi_3des_cbc,     ///< General Instrument 3DES-CBC + keyed hash (Fig. 5)
  stream_otp,      ///< stream/OTP EDU, keystream parallel to fetch (Fig. 2a)
  stream_serial,   ///< ablation: keystream NOT parallelised
  secure_dma,      ///< VLSI page-by-page secure DMA (Fig. 4)
  cacheside_otp,   ///< EDU between CPU and cache (Fig. 7b)
  compress_otp,    ///< compression + encryption (Fig. 8)
  inline_keyslot,  ///< unified keyslot engine (engine/), AES-CTR default
};

/// Printable engine name (matches each EDU's name()).
[[nodiscard]] std::string_view engine_name(engine_kind kind);

/// All kinds, in survey order — for sweeps.
[[nodiscard]] const std::vector<engine_kind>& all_engines();

struct soc_config {
  sim::cache_config l1{};
  sim::dram_timing mem_timing{};
  std::size_t mem_size = 8u << 20;
  u64 key_seed = 0x5EC5EEDULL; ///< deterministic key material derivation
  /// Harvard L1: two caches of l1.size/2 each (fetches vs data) over the
  /// same EDU. Ignored by the cacheside_otp engine (which wraps one cache).
  bool split_l1 = false;
};

/// The assembled system. Owns every component; wiring depends on the
/// engine (cacheside_otp puts the EDU above the cache, everything else
/// below it).
class secure_soc {
 public:
  secure_soc(engine_kind kind, const soc_config& cfg);

  /// Install a plaintext image through the engine's offline encrypt path.
  void load_image(addr_t base, std::span<const u8> plain);

  /// Decrypted view of memory via the engine (test/verification hook).
  [[nodiscard]] bytes read_back(addr_t base, std::size_t len);

  /// Execute a workload; stats are cumulative per-run.
  [[nodiscard]] sim::run_stats run(const sim::workload& w);

  /// Write all dirty state (cache lines, page buffers) back to DRAM.
  void flush();

  /// Attach a bus probe (attacker / logic analyser).
  void attach_probe(sim::bus_probe& probe) { ext_.attach(probe); }

  [[nodiscard]] engine_kind kind() const noexcept { return kind_; }
  [[nodiscard]] edu& engine() noexcept { return *edu_; }
  /// The unified L1, or the data cache when split_l1 is set.
  [[nodiscard]] sim::cache& l1() noexcept { return *l1_; }
  /// The instruction cache; null unless split_l1.
  [[nodiscard]] sim::cache* l1i() noexcept { return l1i_.get(); }
  [[nodiscard]] sim::dram& memory() noexcept { return dram_; }
  [[nodiscard]] sim::external_memory& external() noexcept { return ext_; }
  [[nodiscard]] const soc_config& config() const noexcept { return cfg_; }

 private:
  engine_kind kind_;
  soc_config cfg_;
  sim::dram dram_;
  sim::external_memory ext_;

  // Key material and functional cipher cores (owned).
  bytes aes_key_, des_key_, tdes_key_, byte_key_, mac_key_, best_key_;
  std::unique_ptr<crypto::block_cipher> cipher_;
  std::unique_ptr<crypto::block_cipher> prf_;
  std::unique_ptr<crypto::byte_bus_cipher> byte_cipher_;

  std::unique_ptr<sim::cache> l1_;
  std::unique_ptr<sim::cache> l1i_; ///< only when split_l1
  std::unique_ptr<edu> edu_;
  std::unique_ptr<sim::cpu> cpu_;
};

} // namespace buscrypt::edu
