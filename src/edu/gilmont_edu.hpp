#pragma once
/// \file gilmont_edu.hpp
/// Gilmont et al. [3] as surveyed: "a fetch prediction unit and pipelined
/// triple-DES block cipher. They assume to keep the deciphering cost under
/// 2,5% in term of performance cost. However, this work only addresses
/// static code ciphering" — so writes (data) bypass the cipher entirely,
/// and a next-line prefetcher hides the 3-DES latency on sequential fetch.

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

namespace buscrypt::edu {

struct gilmont_edu_config {
  std::size_t line_bytes = 32;
  addr_t code_limit = 1 << 20;   ///< addresses below this are (static) code
  bool fetch_prediction = true;  ///< the prefetcher (ablation switch)
  bool encrypt = true;           ///< false = prefetcher only, no cipher —
                                 ///< the baseline the paper's "<2.5%" is
                                 ///< measured against
  pipeline_model core = tdes_pipelined();
  u64 iv_tweak = 0x6117ULL;
};

/// Static-code decryption engine with next-line fetch prediction.
class gilmont_edu final : public edu {
 public:
  gilmont_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
              gilmont_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override { return "Gilmont-3DES"; }

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. Data-region traffic is clear-form (the surveyed
  /// limitation), so it rides the lower window untouched and gets the full
  /// multi-bank overlap. Line-aligned code fetches keep the fetch
  /// prediction unit in the loop: predicted lines are served from the
  /// prefetch buffer at staging (1 cycle, no bus traffic) and the next
  /// line's background fetch launches immediately — it needs only the
  /// address, and code writes always detour, so no queued window write can
  /// alias it; mispredicted lines ride the window with their pipelined
  /// 3-DES decipher gated on arrival. Code writes and unaligned or
  /// boundary-crossing requests detour through the scalar path in order.
  void submit(std::span<sim::mem_txn> batch) override;

  [[nodiscard]] std::size_t preferred_chunk() const noexcept override {
    return cfg_.line_bytes;
  }

  [[nodiscard]] u64 prefetch_hits() const noexcept { return prefetch_hits_; }
  [[nodiscard]] u64 prefetch_misses() const noexcept { return prefetch_misses_; }
  [[nodiscard]] const gilmont_edu_config& config() const noexcept { return cfg_; }

 private:
  /// Decrypt one line-aligned code region in place (ECB over the line; the
  /// original uses 3-DES per 8-byte block).
  void crypt_line(std::span<u8> buf, bool encrypt);
  /// Launch the predicted next-line fetch into the prefetch buffer.
  void prefetch(addr_t line_addr);

  const crypto::block_cipher* cipher_;
  gilmont_edu_config cfg_;

  // One-deep prefetch buffer: (valid, address, decrypted data).
  bool pf_valid_ = false;
  addr_t pf_addr_ = 0;
  bytes pf_data_;
  u64 prefetch_hits_ = 0;
  u64 prefetch_misses_ = 0;
};

} // namespace buscrypt::edu
