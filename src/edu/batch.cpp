#include "edu/batch.hpp"

#include <algorithm>

namespace buscrypt::edu {

void txn_batcher::flush() {
  if (!open()) return;

  cycles mem_span = 0;
  if (!lower_.empty()) {
    port_->submit(lower_);
    mem_span = port_->drain();
  }
  auto arrival_of = [&](std::size_t li) -> cycles {
    return li == no_lower ? 0 : lower_[li].complete_cycle;
  };

  // Per-owner finishes, stamped in staging (= submission) order below.
  // Lower arrivals seed them so a pre-enciphered write completes with its
  // bus transfer.
  std::vector<std::pair<sim::mem_txn*, cycles>> fins;
  fins.reserve(order_.size());
  for (sim::mem_txn* t : order_) fins.emplace_back(t, 0);
  auto fin_of = [&](sim::mem_txn* t) -> cycles& {
    for (auto& [owner, fin] : fins)
      if (owner == t) return fin;
    return fins.emplace_back(t, 0).second;
  };
  for (std::size_t i = 0; i < lower_.size(); ++i)
    if (owners_[i] != nullptr) {
      cycles& f = fin_of(owners_[i]);
      f = std::max(f, lower_[i].complete_cycle);
    }

  // The three timing lanes. The serial core starts loaded with the staged
  // pre-encipher work; par work accumulates independently and only its
  // excess over the bus window surfaces in the makespan.
  cycles serial = pre_total_;
  cycles par_prefix = 0;
  cycles tail_total = 0;
  for (job& j : jobs_) {
    if (j.fn) j.fn();
    const cycles arrival = std::max(arrival_of(j.li), arrival_of(j.li2));
    cycles fin = 0;
    switch (j.k) {
      case kind::par:
        par_prefix += j.c;
        tail_total += j.tail;
        fin = std::max(arrival, par_prefix) + j.tail;
        break;
      case kind::gated:
        serial = std::max(serial, arrival) + j.c;
        fin = serial;
        break;
      case kind::local:
        serial += j.c;
        fin = serial;
        break;
    }
    if (j.owner != nullptr) {
      cycles& f = fin_of(j.owner);
      f = std::max(f, fin);
    }
  }
  const cycles makespan = std::max({mem_span, par_prefix, serial}) + tail_total;

  // In-order retirement: stamps are monotone in staging order and never
  // exceed the window makespan.
  cycles mono = 0;
  for (auto& [owner, fin] : fins) {
    mono = std::max(mono, fin);
    owner->complete_cycle = base_ + clock_ + mono;
  }
  clock_ += makespan;

  for (auto& fn : end_fns_) fn();

  lower_.clear();
  owners_.clear();
  order_.clear();
  jobs_.clear();
  end_fns_.clear();
  aux_.clear();
  pre_total_ = 0;
  ++flush_seq_;
}

} // namespace buscrypt::edu
