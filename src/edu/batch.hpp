#pragma once
/// \file batch.hpp
/// The shared staging engine behind the native EDU batch datapaths.
///
/// Every surveyed engine overlaps the same three things when it pipelines
/// a transaction window (Fig. 2a/2b, Tab. 7): work it can do *before* the
/// bus moves (pre-enciphering writes whose data is already in hand), work
/// derived from the *address alone* (keystream pads, IV setup) that runs
/// concurrently with the whole DRAM activate/CAS schedule, and work gated
/// on each transaction's *own data arrival* (serial ECB/CBC decipher, MAC
/// verification). txn_batcher models exactly those three lanes over one
/// lower submit()/drain() window, so each EDU's submit() only states
/// which lane each job belongs to and what functional transform runs when
/// the window retires:
///
///   - add_pre():   staged serial-core work shipped before the window
///                  (write encipher) — overlaps the whole bus schedule;
///   - add_par():   address-derived work (pads) — also overlapped, with a
///                  per-job tail (the XOR stage) charged after the max;
///   - add_gated(): serial-core work that cannot start before its lower
///                  transaction's data arrives; chained across the window
///                  so it pipelines against *later* fetches but its tail
///                  is never hidden — a single-transaction window
///                  degenerates to the scalar mem + crypto time;
///   - add_local(): on-chip work with no lower traffic (SRAM hits,
///                  prefetch-buffer hits).
///
/// Functional callbacks run in staging order after the lower window
/// drains, so read deciphers see arrived data and read-after-write inside
/// one window observes staged effects in submission order — the
/// \ref txn_contract invariants hold by construction. Transactions the
/// EDU cannot schedule natively detour through its scalar path: flush()
/// first (pending native work retires in order), then detour_scalar()
/// accounts the scalar cycles and stamps the transaction.

#include "common/types.hpp"
#include "sim/mem_txn.hpp"
#include "sim/memory_port.hpp"

#include <deque>
#include <functional>
#include <vector>

namespace buscrypt::edu {

class txn_batcher {
 public:
  /// "No lower transaction" sentinel for the gated/par lanes.
  static constexpr std::size_t no_lower = static_cast<std::size_t>(-1);

  /// \param lower the port windows are submitted to; referenced.
  /// \param base  the EDU's cycle accumulator at submit() entry — stamps
  ///              are relative to the EDU's last drain(), per the contract.
  txn_batcher(sim::memory_port& lower, cycles base) : port_(&lower), base_(base) {}

  /// Jobs and lower transactions staged until the next begin_txn belong to
  /// \p txn: its completion stamp is the latest finish among them.
  void begin_txn(sim::mem_txn& txn) { cur_ = &txn; }

  /// Stable scratch storage for staged ciphertext and fetch buffers; valid
  /// until the current window's flush-end hooks have run.
  [[nodiscard]] bytes& scratch(std::size_t size) {
    aux_.emplace_back(size);
    return aux_.back();
  }
  [[nodiscard]] bytes& scratch_copy(std::span<const u8> data) {
    aux_.emplace_back(data.begin(), data.end());
    return aux_.back();
  }

  /// Queue one lower transaction for the current batch transaction.
  /// Returns its window index (for arrival gating).
  std::size_t queue(sim::txn_op op, sim::master_id master, addr_t addr,
                    std::span<u8> data) {
    return queue_for(cur_, op, master, addr, data);
  }

  /// Side traffic (tag lines, metadata) that rides the window but stamps
  /// no batch transaction.
  std::size_t queue_side(sim::txn_op op, sim::master_id master, addr_t addr,
                         std::span<u8> data) {
    return queue_for(nullptr, op, master, addr, data);
  }

  /// Staged serial-core work shipped before the window (write encipher).
  void add_pre(cycles c) { pre_total_ += c; }

  /// Address-derived work overlapped with the whole window; \p tail is the
  /// per-job stage charged after the overlap (the XOR gate).
  void add_par(std::size_t lower_idx, cycles c, cycles tail,
               std::function<void()> fn = {}) {
    note_owner(cur_);
    jobs_.push_back({kind::par, lower_idx, no_lower, c, tail, cur_, std::move(fn)});
  }

  /// Serial-core work gated on the arrival of \p lower_idx (and
  /// \p lower_idx2 when both a data and a metadata fetch must land first;
  /// pass no_lower otherwise).
  void add_gated(std::size_t lower_idx, std::size_t lower_idx2, cycles c,
                 std::function<void()> fn = {}) {
    note_owner(cur_);
    jobs_.push_back({kind::gated, lower_idx, lower_idx2, c, 0, cur_, std::move(fn)});
  }

  /// On-chip work with no lower traffic, serialised with the gated lane.
  void add_local(cycles c, std::function<void()> fn = {}) {
    note_owner(cur_);
    jobs_.push_back({kind::local, no_lower, no_lower, c, 0, cur_, std::move(fn)});
  }

  /// Run \p fn after this window's callbacks (scratch still valid) — for
  /// per-window bookkeeping like tag-cache installs.
  void at_flush_end(std::function<void()> fn) { end_fns_.push_back(std::move(fn)); }

  /// Anything staged and not yet retired?
  [[nodiscard]] bool open() const noexcept { return !lower_.empty() || !jobs_.empty(); }

  /// Ship the window: submit + drain the lower transactions, run the
  /// functional callbacks in staging order, advance the clock by the
  /// window makespan and stamp every owning transaction.
  void flush();

  /// Account a scalar detour's cycles and stamp the current transaction.
  /// Call flush() first so pending native work retires in order.
  void detour_scalar(cycles c) {
    clock_ += c;
    if (cur_ != nullptr) cur_->complete_cycle = base_ + clock_;
  }

  /// The ordered detour every native path uses for a transaction it cannot
  /// schedule: flush pending native work, serve \p txn segment by segment
  /// through \p scalar's read()/write() (the EDU's own scalar datapath),
  /// and stamp it.
  void detour_via(sim::mem_txn& txn, sim::memory_port& scalar) {
    begin_txn(txn);
    flush();
    cycles t = 0;
    for (sim::txn_segment& seg : txn.segments)
      t += txn.is_write() ? scalar.write(seg.addr, std::span<const u8>(seg.data))
                          : scalar.read(seg.addr, seg.data);
    detour_scalar(t);
  }

  /// Cycles consumed by every window and detour so far (the submit()'s
  /// contribution to the EDU's accumulator).
  [[nodiscard]] cycles clock() const noexcept { return clock_; }

  /// Completed windows — EDUs use this to amortise per-window setup
  /// (decompressor dictionary warm-up) without extra plumbing.
  [[nodiscard]] u64 flush_seq() const noexcept { return flush_seq_; }

 private:
  enum class kind : u8 { par, gated, local };

  struct job {
    kind k;
    std::size_t li;
    std::size_t li2;
    cycles c;
    cycles tail;
    sim::mem_txn* owner;
    std::function<void()> fn;
  };

  std::size_t queue_for(sim::mem_txn* owner, sim::txn_op op, sim::master_id master,
                        addr_t addr, std::span<u8> data) {
    sim::mem_txn lt;
    lt.op = op;
    lt.master = master;
    lt.segments.push_back({addr, data});
    lower_.push_back(std::move(lt));
    owners_.push_back(owner);
    note_owner(owner);
    return lower_.size() - 1;
  }

  /// Track owners in staging (= submission) order so stamps stay monotone
  /// even when a transaction stages only on-chip jobs. Transactions stage
  /// contiguously, so adjacent dedup suffices.
  void note_owner(sim::mem_txn* t) {
    if (t != nullptr && (order_.empty() || order_.back() != t)) order_.push_back(t);
  }

  sim::memory_port* port_;
  std::vector<sim::mem_txn> lower_;
  std::vector<sim::mem_txn*> owners_; ///< aligned with lower_; null = side traffic
  std::vector<sim::mem_txn*> order_;  ///< owners in staging order, deduped
  std::deque<bytes> aux_;
  std::vector<job> jobs_;
  std::vector<std::function<void()>> end_fns_;
  cycles pre_total_ = 0;
  cycles base_;
  cycles clock_ = 0;
  u64 flush_seq_ = 0;
  sim::mem_txn* cur_ = nullptr;
};

} // namespace buscrypt::edu
