#pragma once
/// \file block_edu.hpp
/// The classic Fig. 2c engine: a block cipher between cache and memory
/// controller. Supports ECB (deterministic — the weakness Section 2.2
/// names) and per-line CBC with an address-derived IV (the AEGIS fix that
/// restores random access while keeping chaining).
///
/// Sub-granule writes trigger the paper's five-step penalty: "Read the
/// block from memory, Decipher it, Modify the corresponding sequence into
/// the block, Re-cipher it, Write it back in memory."

#include "crypto/block_cipher.hpp"
#include "edu/edu.hpp"
#include "edu/timing.hpp"

namespace buscrypt::edu {

enum class block_mode {
  ecb,      ///< independent blocks; same plaintext -> same ciphertext
  cbc_line, ///< CBC chained within each line-sized granule, IV = E(tweak ^ addr)
};

struct block_edu_config {
  block_mode mode = block_mode::ecb;
  pipeline_model core = aes_pipelined();
  std::size_t chain_bytes = 32; ///< CBC granule (cache-line sized)
  u64 iv_tweak = 0x0DDB1A5E5BA11ADULL;
};

/// Block-cipher EDU between cache and memory controller.
class block_edu : public edu {
 public:
  /// \param cipher functional core; referenced, not owned. Its
  ///        block_size() must equal cfg.core.block_bytes.
  block_edu(sim::memory_port& lower, const crypto::block_cipher& cipher,
            block_edu_config cfg);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path, shared by every block_edu-family engine (Best-STP,
  /// DS5240-DES, AES-ECB, AES-CBCline, XOM): granule-aligned writes are
  /// pre-enciphered up front so the (chained, for CBC) encrypt core runs
  /// ahead of the DRAM activate/CAS schedule, and the whole window ships
  /// as one lower submission (multi-bank overlap composes). Deciphers are
  /// serial-core work gated on each transaction's own data arrival: they
  /// pipeline against *later* fetches, and a single-transaction window
  /// degenerates to the scalar mem + crypto time. Sub-granule requests
  /// (the five-step RMW) detour through the scalar path in order.
  void submit(std::span<sim::mem_txn> batch) override;

  [[nodiscard]] std::size_t preferred_chunk() const noexcept override { return granule_; }
  [[nodiscard]] const block_edu_config& config() const noexcept { return cfg_; }

 protected:
  /// Functional transform of one granule-aligned range.
  void encrypt_range(addr_t addr, std::span<u8> buf);
  void decrypt_range(addr_t addr, std::span<u8> buf);

  /// Timing charged for ciphering \p nbytes on each path.
  [[nodiscard]] virtual cycles decrypt_time(std::size_t nbytes);
  [[nodiscard]] virtual cycles encrypt_time(std::size_t nbytes);

 private:
  void derive_iv(addr_t granule_addr, std::span<u8> iv) const;

  const crypto::block_cipher* cipher_;
  block_edu_config cfg_;
  std::size_t granule_; ///< alignment unit: block (ECB) or chain (CBC)
  std::string name_;
};

} // namespace buscrypt::edu
