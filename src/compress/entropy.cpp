#include "compress/entropy.hpp"

#include <array>
#include <cmath>
#include <string>
#include <unordered_map>

namespace buscrypt::compress {

double shannon_entropy(std::span<const u8> data) {
  if (data.empty()) return 0.0;
  std::array<u64, 256> hist{};
  for (u8 b : data) ++hist[b];
  const double n = static_cast<double>(data.size());
  double h = 0.0;
  for (u64 c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double chi_square(std::span<const u8> data) {
  if (data.empty()) return 0.0;
  std::array<u64, 256> hist{};
  for (u8 b : data) ++hist[b];
  const double expected = static_cast<double>(data.size()) / 256.0;
  double chi = 0.0;
  for (u64 c : hist) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

double serial_correlation(std::span<const u8> data) {
  if (data.size() < 2) return 0.0;
  const std::size_t n = data.size() - 1;
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = data[i];
    const double y = data[i + 1];
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double nn = static_cast<double>(n);
  const double num = nn * sum_xy - sum_x * sum_y;
  const double den = std::sqrt((nn * sum_x2 - sum_x * sum_x) * (nn * sum_y2 - sum_y * sum_y));
  return den == 0.0 ? 0.0 : num / den;
}

std::size_t repeated_blocks(std::span<const u8> data, std::size_t block_size) {
  if (block_size == 0) return 0;
  std::unordered_map<std::string, std::size_t> census;
  for (std::size_t off = 0; off + block_size <= data.size(); off += block_size) {
    census[std::string(reinterpret_cast<const char*>(&data[off]), block_size)]++;
  }
  std::size_t repeated = 0;
  for (const auto& [block, count] : census)
    if (count > 1) repeated += count;
  return repeated;
}

} // namespace buscrypt::compress
