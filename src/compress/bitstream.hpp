#pragma once
/// \file bitstream.hpp
/// MSB-first bit I/O shared by the Huffman and CodePack codecs.

#include "common/types.hpp"

#include <span>
#include <stdexcept>

namespace buscrypt::compress {

/// Append-only MSB-first bit writer.
class bit_writer {
 public:
  /// Write the low \p nbits of \p value, MSB first. nbits <= 32.
  void put(u32 value, unsigned nbits) {
    for (unsigned i = nbits; i-- > 0;) {
      const bool bit = (value >> i) & 1;
      if (fill_ == 0) out_.push_back(0);
      out_.back() = static_cast<u8>(out_.back() | (u8{bit} << (7 - fill_)));
      fill_ = (fill_ + 1) % 8;
    }
  }

  /// Total bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept {
    return out_.size() * 8 - (fill_ == 0 ? 0 : 8 - fill_);
  }

  /// Take the buffer (padded with zero bits to a byte boundary).
  [[nodiscard]] bytes take() && { return std::move(out_); }
  [[nodiscard]] const bytes& buffer() const noexcept { return out_; }

 private:
  bytes out_;
  unsigned fill_ = 0; ///< bits used in the last byte (0 == byte boundary)
};

/// MSB-first bit reader over a fixed buffer.
class bit_reader {
 public:
  explicit bit_reader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] bool get_bit() {
    if (pos_ >= data_.size() * 8) throw std::invalid_argument("bitstream: underrun");
    const bool bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }

  [[nodiscard]] u32 get(unsigned nbits) {
    u32 v = 0;
    for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | u32{get_bit()};
    return v;
  }

  [[nodiscard]] std::size_t bit_pos() const noexcept { return pos_; }
  void seek_bit(std::size_t bit) noexcept { pos_ = bit; }

 private:
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

} // namespace buscrypt::compress
