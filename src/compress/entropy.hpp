#pragma once
/// \file entropy.hpp
/// Statistical measures backing two of the survey's claims:
///   - "compression will have a very poor ratio [after encryption] due to
///     the strong stochastic properties of encrypted data";
///   - "compression increases the message entropy and thus improves the
///     efficiency of an encryption algorithm".
/// Also the repeated-block census that exposes ECB's determinism.

#include "common/types.hpp"

#include <span>

namespace buscrypt::compress {

/// Shannon entropy of the byte histogram, in bits per byte (0..8).
[[nodiscard]] double shannon_entropy(std::span<const u8> data);

/// Chi-square statistic against the uniform byte distribution. For random
/// data this concentrates near 255 (the degrees of freedom).
[[nodiscard]] double chi_square(std::span<const u8> data);

/// Lag-1 serial correlation coefficient. Near 0 for random data, near 1
/// for smooth/structured data.
[[nodiscard]] double serial_correlation(std::span<const u8> data);

/// Number of \p block_size-aligned blocks that appear more than once —
/// what an ECB ciphertext leaks about plaintext structure.
[[nodiscard]] std::size_t repeated_blocks(std::span<const u8> data, std::size_t block_size);

} // namespace buscrypt::compress
