#include "compress/huffman.hpp"

#include "common/bitops.hpp"
#include "compress/bitstream.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace buscrypt::compress {

namespace {

struct node {
  u64 weight;
  int left = -1;   // node index, or -1 for leaf
  int right = -1;
  int symbol = -1; // valid for leaves
};

void assign_depths(const std::vector<node>& nodes, int idx, u8 depth,
                   std::vector<u8>& lengths) {
  const node& nd = nodes[static_cast<std::size_t>(idx)];
  if (nd.symbol >= 0) {
    lengths[static_cast<std::size_t>(nd.symbol)] = depth == 0 ? 1 : depth;
    return;
  }
  assign_depths(nodes, nd.left, static_cast<u8>(depth + 1), lengths);
  assign_depths(nodes, nd.right, static_cast<u8>(depth + 1), lengths);
}

} // namespace

std::vector<u8> huffman_code_lengths(std::span<const u64> freq) {
  const std::size_t n = freq.size();
  std::vector<u8> lengths(n, 0);

  std::vector<node> nodes;
  auto cmp = [&nodes](int a, int b) {
    return nodes[static_cast<std::size_t>(a)].weight >
           nodes[static_cast<std::size_t>(b)].weight;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<int>(s)});
    heap.push(static_cast<int>(nodes.size() - 1));
  }
  if (nodes.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[static_cast<std::size_t>(a)].weight +
                         nodes[static_cast<std::size_t>(b)].weight,
                     a, b, -1});
    heap.push(static_cast<int>(nodes.size() - 1));
  }
  assign_depths(nodes, heap.top(), 0, lengths);
  return lengths;
}

std::vector<u32> canonical_codes(std::span<const u8> lengths) {
  // Sort symbols by (length, symbol) and hand out consecutive codes.
  std::vector<int> order;
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] != 0) order.push_back(static_cast<int>(s));
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const u8 la = lengths[static_cast<std::size_t>(a)];
    const u8 lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });

  std::vector<u32> codes(lengths.size(), 0);
  u32 code = 0;
  u8 prev_len = 0;
  for (int s : order) {
    const u8 len = lengths[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    codes[static_cast<std::size_t>(s)] = code;
    ++code;
    prev_len = len;
  }
  return codes;
}

bytes huffman_codec::compress(std::span<const u8> in) const {
  std::array<u64, 256> freq{};
  for (u8 b : in) ++freq[b];

  const auto lengths = huffman_code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  bytes out(4 + 256);
  store_le32(out.data(), static_cast<u32>(in.size()));
  for (int s = 0; s < 256; ++s) out[4 + static_cast<std::size_t>(s)] = lengths[static_cast<std::size_t>(s)];

  bit_writer bw;
  for (u8 b : in) bw.put(codes[b], lengths[b]);
  const bytes payload = std::move(bw).take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bytes huffman_codec::decompress(std::span<const u8> in) const {
  if (in.size() < 4 + 256) throw std::invalid_argument("huffman: truncated header");
  const u32 original = load_le32(in.data());
  std::vector<u8> lengths(256);
  for (int s = 0; s < 256; ++s) lengths[static_cast<std::size_t>(s)] = in[4 + static_cast<std::size_t>(s)];

  // Decode with a (length -> first code, symbol table) canonical walker.
  std::vector<int> order;
  for (int s = 0; s < 256; ++s)
    if (lengths[static_cast<std::size_t>(s)] != 0) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const u8 la = lengths[static_cast<std::size_t>(a)];
    const u8 lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  if (order.empty()) {
    if (original != 0) throw std::invalid_argument("huffman: empty code, nonempty data");
    return {};
  }

  // Canonical decode tables: for each code length, the numeric value of
  // the first code, the number of codes, and where its symbols start in
  // canonical order.
  constexpr unsigned k_max_len = 64;
  std::array<u64, k_max_len + 1> first_code{};
  std::array<u32, k_max_len + 1> count{};
  std::array<u32, k_max_len + 1> first_idx{};
  for (int s : order) ++count[lengths[static_cast<std::size_t>(s)]];
  {
    u64 code = 0;
    u32 idx = 0;
    for (unsigned len = 1; len <= k_max_len; ++len) {
      code <<= 1;
      first_code[len] = code;
      first_idx[len] = idx;
      code += count[len];
      idx += count[len];
    }
  }

  bit_reader br(in.subspan(4 + 256));
  bytes out;
  out.reserve(original);
  while (out.size() < original) {
    u64 code = 0;
    unsigned len = 0;
    for (;;) {
      code = (code << 1) | u64{br.get_bit()};
      ++len;
      if (len > k_max_len) throw std::invalid_argument("huffman: code too long");
      if (count[len] != 0 && code - first_code[len] < count[len]) {
        const u32 idx = first_idx[len] + static_cast<u32>(code - first_code[len]);
        out.push_back(static_cast<u8>(order[idx]));
        break;
      }
    }
  }
  return out;
}

} // namespace buscrypt::compress
