#include "compress/codepack.hpp"

#include "common/bitops.hpp"
#include "compress/bitstream.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace buscrypt::compress {

namespace {

/// Most frequent 16-bit halves, up to 256, most frequent first.
std::vector<u16> build_dict(const std::unordered_map<u16, u64>& freq) {
  std::vector<std::pair<u16, u64>> entries(freq.begin(), freq.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<u16> dict;
  dict.reserve(std::min<std::size_t>(entries.size(), 256));
  for (std::size_t i = 0; i < entries.size() && i < 256; ++i)
    dict.push_back(entries[i].first);
  return dict;
}

std::unordered_map<u16, u16> invert_dict(const std::vector<u16>& dict) {
  std::unordered_map<u16, u16> inv;
  inv.reserve(dict.size());
  for (std::size_t i = 0; i < dict.size(); ++i) inv.emplace(dict[i], static_cast<u16>(i));
  return inv;
}

void emit_half(bit_writer& bw, u16 half, const std::unordered_map<u16, u16>& inv) {
  const auto it = inv.find(half);
  if (it != inv.end()) {
    bw.put(0, 1);
    bw.put(it->second, 8);
  } else {
    bw.put(1, 1);
    bw.put(half, 16);
  }
}

u16 read_half(bit_reader& br, const std::vector<u16>& dict) {
  if (br.get_bit()) return static_cast<u16>(br.get(16));
  const u32 idx = br.get(8);
  if (idx >= dict.size()) throw std::invalid_argument("codepack: bad dict index");
  return dict[idx];
}

} // namespace

codepack::codepack(std::size_t group_bytes) : group_bytes_(group_bytes) {
  if (group_bytes_ == 0 || group_bytes_ % 4 != 0)
    throw std::invalid_argument("codepack: group_bytes must be a multiple of 4");
}

codepack_image codepack::compress_image(std::span<const u8> code) const {
  if (code.size() % 4 != 0)
    throw std::invalid_argument("codepack: code image must be whole words");

  codepack_image img;
  img.original_size = code.size();
  img.group_bytes = group_bytes_;

  std::unordered_map<u16, u64> hi_freq;
  std::unordered_map<u16, u64> lo_freq;
  for (std::size_t off = 0; off < code.size(); off += 4) {
    const u32 w = load_le32(&code[off]);
    ++hi_freq[static_cast<u16>(w >> 16)];
    ++lo_freq[static_cast<u16>(w)];
  }
  img.hi_dict = build_dict(hi_freq);
  img.lo_dict = build_dict(lo_freq);
  const auto hi_inv = invert_dict(img.hi_dict);
  const auto lo_inv = invert_dict(img.lo_dict);

  bit_writer bw;
  for (std::size_t off = 0; off < code.size(); off += 4) {
    if (off % group_bytes_ == 0)
      img.group_bit_offsets.push_back(static_cast<u32>(bw.bit_count()));
    const u32 w = load_le32(&code[off]);
    emit_half(bw, static_cast<u16>(w >> 16), hi_inv);
    emit_half(bw, static_cast<u16>(w), lo_inv);
  }
  img.payload = std::move(bw).take();
  return img;
}

bytes codepack::decompress_group(const codepack_image& img, std::size_t group) const {
  if (group >= img.group_bit_offsets.size())
    throw std::out_of_range("codepack: group index out of range");
  const std::size_t start = img.group_bit_offsets[group];
  const std::size_t group_base = group * img.group_bytes;
  const std::size_t n =
      std::min(img.group_bytes, img.original_size - group_base);

  bit_reader br(img.payload);
  br.seek_bit(start);
  bytes out(n);
  for (std::size_t off = 0; off < n; off += 4) {
    const u16 hi = read_half(br, img.hi_dict);
    const u16 lo = read_half(br, img.lo_dict);
    store_le32(&out[off], (u32{hi} << 16) | lo);
  }
  return out;
}

bytes codepack::decompress_chunk(std::span<const u8> chunk, std::size_t bit_offset,
                                 std::size_t out_bytes,
                                 const codepack_image& dicts) const {
  if (out_bytes % 4 != 0)
    throw std::invalid_argument("codepack: chunk output must be whole words");
  bit_reader br(chunk);
  br.seek_bit(bit_offset);
  bytes out(out_bytes);
  for (std::size_t off = 0; off < out_bytes; off += 4) {
    const u16 hi = read_half(br, dicts.hi_dict);
    const u16 lo = read_half(br, dicts.lo_dict);
    store_le32(&out[off], (u32{hi} << 16) | lo);
  }
  return out;
}

bytes codepack::decompress_all(const codepack_image& img) const {
  bytes out;
  out.reserve(img.original_size);
  for (std::size_t g = 0; g < img.group_bit_offsets.size(); ++g) {
    const bytes grp = decompress_group(img, g);
    out.insert(out.end(), grp.begin(), grp.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Flat codec adapter. Wire format:
// [u32 orig][u32 group_bytes][u16 nhi][u16 nlo][hi dict][lo dict]
// [u32 ngroups][u32 offsets...][payload]
// ---------------------------------------------------------------------------

bytes codepack_codec::compress(std::span<const u8> in) const {
  // Pad to a whole word; remember the true length in the header.
  bytes padded(in.begin(), in.end());
  while (padded.size() % 4 != 0) padded.push_back(0);

  const codepack engine(64);
  const codepack_image img = engine.compress_image(padded);

  bytes out(4 + 4 + 2 + 2);
  store_le32(out.data(), static_cast<u32>(in.size()));
  store_le32(out.data() + 4, static_cast<u32>(img.group_bytes));
  out[8] = static_cast<u8>(img.hi_dict.size());
  out[9] = static_cast<u8>(img.hi_dict.size() >> 8);
  out[10] = static_cast<u8>(img.lo_dict.size());
  out[11] = static_cast<u8>(img.lo_dict.size() >> 8);
  auto push_u16 = [&out](u16 v) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
  };
  for (u16 v : img.hi_dict) push_u16(v);
  for (u16 v : img.lo_dict) push_u16(v);
  bytes tail(4);
  store_le32(tail.data(), static_cast<u32>(img.group_bit_offsets.size()));
  out.insert(out.end(), tail.begin(), tail.end());
  for (u32 off : img.group_bit_offsets) {
    bytes tmp(4);
    store_le32(tmp.data(), off);
    out.insert(out.end(), tmp.begin(), tmp.end());
  }
  out.insert(out.end(), img.payload.begin(), img.payload.end());
  return out;
}

bytes codepack_codec::decompress(std::span<const u8> in) const {
  if (in.size() < 16) throw std::invalid_argument("codepack: truncated header");
  codepack_image img;
  const u32 original = load_le32(in.data());
  img.group_bytes = load_le32(in.data() + 4);
  const std::size_t nhi = in[8] | (std::size_t{in[9]} << 8);
  const std::size_t nlo = in[10] | (std::size_t{in[11]} << 8);
  std::size_t pos = 12;
  if (in.size() < pos + (nhi + nlo) * 2 + 4)
    throw std::invalid_argument("codepack: truncated dictionaries");
  for (std::size_t i = 0; i < nhi; ++i, pos += 2)
    img.hi_dict.push_back(static_cast<u16>(in[pos] | (u16{in[pos + 1]} << 8)));
  for (std::size_t i = 0; i < nlo; ++i, pos += 2)
    img.lo_dict.push_back(static_cast<u16>(in[pos] | (u16{in[pos + 1]} << 8)));
  const u32 ngroups = load_le32(&in[pos]);
  pos += 4;
  if (in.size() < pos + ngroups * 4)
    throw std::invalid_argument("codepack: truncated index");
  for (u32 g = 0; g < ngroups; ++g, pos += 4)
    img.group_bit_offsets.push_back(load_le32(&in[pos]));
  img.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(pos), in.end());
  img.original_size = (original + 3) / 4 * 4;

  const codepack engine(img.group_bytes);
  bytes padded = engine.decompress_all(img);
  padded.resize(original);
  return padded;
}

} // namespace buscrypt::compress
