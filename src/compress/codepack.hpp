#pragma once
/// \file codepack.hpp
/// CodePack-style instruction compression (IBM [16]). Like the real
/// PowerPC CodePack it: (1) treats code as 32-bit words split into high
/// and low 16-bit halves, each with its own dictionary (instruction
/// opcodes/registers concentrate in the high half, immediates in the low);
/// (2) compresses fixed-size groups independently; (3) keeps an index so
/// any group can be fetched and decompressed at random — the property the
/// compress EDU needs to serve cache-line fills.
///
/// Coding per half: flag bit 0 + 8-bit dictionary index (hit in the 256
/// most frequent halves) or flag bit 1 + 16 raw bits (miss).

#include "compress/codec.hpp"

#include <vector>

namespace buscrypt::compress {

/// A compressed code image with random-access group structure.
struct codepack_image {
  std::size_t original_size = 0;
  std::size_t group_bytes = 64;        ///< uncompressed group granularity
  std::vector<u16> hi_dict;            ///< <= 256 entries
  std::vector<u16> lo_dict;
  std::vector<u32> group_bit_offsets;  ///< start of each group in payload
  bytes payload;                       ///< bit-packed groups

  /// Total stored footprint: payload + dictionaries + index. The index is
  /// costed at 2 bytes per group (16-bit offsets relative to a 64 KiB
  /// region, the granularity CodePack's line address table uses).
  [[nodiscard]] std::size_t compressed_size() const noexcept {
    return payload.size() + (hi_dict.size() + lo_dict.size()) * 2 +
           group_bit_offsets.size() * 2;
  }
  /// Memory density gain vs the raw image (the paper quotes ~35%).
  [[nodiscard]] double density_gain() const noexcept {
    const std::size_t c = compressed_size();
    return c == 0 ? 0.0
                  : (static_cast<double>(original_size) - static_cast<double>(c)) /
                        static_cast<double>(original_size);
  }
};

/// The compressor/decompressor engine.
class codepack {
 public:
  /// \param group_bytes uncompressed bytes per random-access group; must
  ///        be a multiple of 4 (whole instruction words).
  explicit codepack(std::size_t group_bytes = 64);

  /// Build dictionaries over the whole image and pack every group.
  /// \p code length must be a multiple of 4.
  [[nodiscard]] codepack_image compress_image(std::span<const u8> code) const;

  /// Decompress a single group (cache-line fill path).
  [[nodiscard]] bytes decompress_group(const codepack_image& img, std::size_t group) const;

  /// Decompress a group directly from a fetched chunk of the payload —
  /// the hardware fill path, which never sees the whole image. \p chunk
  /// must contain the group's bits starting at \p bit_offset; dictionaries
  /// are taken from \p dicts.
  [[nodiscard]] bytes decompress_chunk(std::span<const u8> chunk, std::size_t bit_offset,
                                       std::size_t out_bytes,
                                       const codepack_image& dicts) const;

  /// Decompress everything (image install path).
  [[nodiscard]] bytes decompress_all(const codepack_image& img) const;

  [[nodiscard]] std::size_t group_bytes() const noexcept { return group_bytes_; }

 private:
  std::size_t group_bytes_;
};

/// Flat codec adapter so the Fig. 8 sweep can compare codepack with the
/// byte codecs on equal terms.
class codepack_codec final : public codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "CodePack"; }
  [[nodiscard]] bytes compress(std::span<const u8> in) const override;
  [[nodiscard]] bytes decompress(std::span<const u8> in) const override;
  [[nodiscard]] codec_timing timing() const noexcept override { return {4, 0.5}; }
};

} // namespace buscrypt::compress
