#pragma once
/// \file codec.hpp
/// Lossless codec contract for the Fig. 8 compression-before-encryption
/// pipeline. Each codec also carries a hardware latency model so the
/// compress EDU can charge decompression time on the fetch path (IBM
/// CodePack's "+/- 10%" performance claim is about exactly this trade:
/// fewer bus beats vs decompressor latency).

#include "common/types.hpp"

#include <span>
#include <string_view>

namespace buscrypt::compress {

/// Hardware decompressor timing: fixed startup plus per-output-byte cost.
struct codec_timing {
  cycles startup = 4;
  double cycles_per_byte = 0.5;

  [[nodiscard]] cycles latency_for(std::size_t out_bytes) const noexcept {
    return startup + static_cast<cycles>(static_cast<double>(out_bytes) * cycles_per_byte);
  }
};

/// A lossless byte codec. decompress(compress(x)) == x for all x.
class codec {
 public:
  virtual ~codec() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Compress; output is self-describing (embeds original length).
  [[nodiscard]] virtual bytes compress(std::span<const u8> in) const = 0;

  /// Decompress; \throws std::invalid_argument on corrupt input.
  [[nodiscard]] virtual bytes decompress(std::span<const u8> in) const = 0;

  /// Modeled hardware decompression timing.
  [[nodiscard]] virtual codec_timing timing() const noexcept { return {}; }

  /// Convenience: compressed size / original size (1.0 when empty).
  [[nodiscard]] double ratio_on(std::span<const u8> in) const {
    if (in.empty()) return 1.0;
    return static_cast<double>(compress(in).size()) / static_cast<double>(in.size());
  }
};

} // namespace buscrypt::compress
