#pragma once
/// \file rle.hpp
/// Run-length codec: the cheapest possible hardware decompressor (one
/// comparator and a counter). Baseline for the Fig. 8 study; only wins on
/// zero-padded images, loses on dense code.

#include "compress/codec.hpp"

namespace buscrypt::compress {

/// Escape-marker RLE. Runs of 4+ identical bytes become
/// (marker, length, value); a literal marker byte becomes (marker, 0).
class rle_codec final : public codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "RLE"; }
  [[nodiscard]] bytes compress(std::span<const u8> in) const override;
  [[nodiscard]] bytes decompress(std::span<const u8> in) const override;
  [[nodiscard]] codec_timing timing() const noexcept override { return {1, 0.125}; }

 private:
  static constexpr u8 k_marker = 0xA5;
  static constexpr std::size_t k_min_run = 4;
};

} // namespace buscrypt::compress
