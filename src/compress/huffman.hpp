#pragma once
/// \file huffman.hpp
/// Canonical Huffman codec over bytes — the entropy-coding workhorse of
/// the Fig. 8 study and the building block reused by the CodePack-style
/// code compressor.

#include "compress/codec.hpp"

#include <array>
#include <vector>

namespace buscrypt::compress {

/// Build Huffman code lengths for \p n symbols from \p freq (zero-frequency
/// symbols get length 0 == absent). Standard two-queue construction.
[[nodiscard]] std::vector<u8> huffman_code_lengths(std::span<const u64> freq);

/// Assign canonical codes (numeric, MSB-first) from lengths.
/// codes[i] is valid when lengths[i] != 0.
[[nodiscard]] std::vector<u32> canonical_codes(std::span<const u8> lengths);

/// Byte-oriented canonical Huffman codec.
/// Wire format: [u32 original_len][256 x u8 code lengths][bitstream].
class huffman_codec final : public codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "Huffman"; }
  [[nodiscard]] bytes compress(std::span<const u8> in) const override;
  [[nodiscard]] bytes decompress(std::span<const u8> in) const override;
  [[nodiscard]] codec_timing timing() const noexcept override { return {6, 1.0}; }
};

} // namespace buscrypt::compress
