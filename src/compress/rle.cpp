#include "compress/rle.hpp"

#include "common/bitops.hpp"

#include <stdexcept>

namespace buscrypt::compress {

bytes rle_codec::compress(std::span<const u8> in) const {
  bytes out;
  out.reserve(in.size() / 2 + 8);
  out.resize(4);
  store_le32(out.data(), static_cast<u32>(in.size()));

  std::size_t i = 0;
  while (i < in.size()) {
    const u8 v = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == v && run < 255) ++run;
    if (run >= k_min_run || v == k_marker) {
      out.push_back(k_marker);
      if (v == k_marker && run < k_min_run) {
        // Escaped literal marker(s): emit one at a time.
        out.push_back(0);
        i += 1;
        continue;
      }
      out.push_back(static_cast<u8>(run));
      out.push_back(v);
      i += run;
    } else {
      out.push_back(v);
      i += 1;
    }
  }
  return out;
}

bytes rle_codec::decompress(std::span<const u8> in) const {
  if (in.size() < 4) throw std::invalid_argument("rle: truncated header");
  const u32 original = load_le32(in.data());
  bytes out;
  out.reserve(original);

  std::size_t i = 4;
  while (i < in.size()) {
    const u8 b = in[i++];
    if (b != k_marker) {
      out.push_back(b);
      continue;
    }
    if (i >= in.size()) throw std::invalid_argument("rle: truncated escape");
    const u8 len = in[i++];
    if (len == 0) {
      out.push_back(k_marker);
      continue;
    }
    if (i >= in.size()) throw std::invalid_argument("rle: truncated run");
    const u8 v = in[i++];
    out.insert(out.end(), len, v);
  }
  if (out.size() != original) throw std::invalid_argument("rle: length mismatch");
  return out;
}

} // namespace buscrypt::compress
