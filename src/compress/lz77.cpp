#include "compress/lz77.hpp"

#include "common/bitops.hpp"

#include <stdexcept>
#include <vector>

namespace buscrypt::compress {

namespace {

constexpr std::size_t k_min_match = 3;
constexpr std::size_t k_max_match = 255;
constexpr int k_max_chain = 64;

u32 hash3(const u8* p) noexcept {
  return (u32{p[0]} << 16 | u32{p[1]} << 8 | u32{p[2]}) * 2654435761u >> 17;
}

} // namespace

bytes lz77_codec::compress(std::span<const u8> in) const {
  bytes out(4);
  store_le32(out.data(), static_cast<u32>(in.size()));

  constexpr std::size_t k_hash_size = 1 << 15;
  std::vector<i64> head(k_hash_size, -1);
  std::vector<i64> prev(in.size(), -1);

  // Flag-byte group state: position of the current flag byte in `out`,
  // and how many of its 8 token slots are used.
  std::size_t flag_pos = 0;
  unsigned flag_used = 8; // force a fresh flag byte on the first token
  auto begin_token = [&](bool is_match) {
    if (flag_used == 8) {
      flag_pos = out.size();
      out.push_back(0);
      flag_used = 0;
    }
    if (is_match) out[flag_pos] = static_cast<u8>(out[flag_pos] | (1u << flag_used));
    ++flag_used;
  };

  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (i + k_min_match <= in.size()) {
      const u32 h = hash3(&in[i]) & (k_hash_size - 1);
      i64 cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain < k_max_chain) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t dist = i - c;
        if (dist > window_ || dist > 32768) break;
        std::size_t len = 0;
        const std::size_t limit = std::min(k_max_match, in.size() - i);
        while (len < limit && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
        cand = prev[c];
        ++chain;
      }
    }

    if (best_len >= k_min_match) {
      begin_token(/*is_match=*/true);
      out.push_back(static_cast<u8>(best_dist));
      out.push_back(static_cast<u8>(best_dist >> 8));
      out.push_back(static_cast<u8>(best_len));
      // Insert hash entries for every position we skip.
      const std::size_t end = i + best_len;
      while (i < end && i + k_min_match <= in.size()) {
        const u32 h = hash3(&in[i]) & (k_hash_size - 1);
        prev[i] = head[h];
        head[h] = static_cast<i64>(i);
        ++i;
      }
      i = end;
    } else {
      begin_token(/*is_match=*/false);
      out.push_back(in[i]);
      if (i + k_min_match <= in.size()) {
        const u32 h = hash3(&in[i]) & (k_hash_size - 1);
        prev[i] = head[h];
        head[h] = static_cast<i64>(i);
      }
      ++i;
    }
  }
  return out;
}

bytes lz77_codec::decompress(std::span<const u8> in) const {
  if (in.size() < 4) throw std::invalid_argument("lz77: truncated header");
  const u32 original = load_le32(in.data());
  bytes out;
  out.reserve(original);

  std::size_t i = 4;
  while (i < in.size() && out.size() < original) {
    const u8 flags = in[i++];
    for (unsigned bit = 0; bit < 8 && out.size() < original; ++bit) {
      if (flags & (1u << bit)) {
        if (i + 3 > in.size()) throw std::invalid_argument("lz77: truncated match");
        const std::size_t dist = in[i] | (std::size_t{in[i + 1]} << 8);
        const std::size_t len = in[i + 2];
        i += 3;
        if (dist == 0 || dist > out.size())
          throw std::invalid_argument("lz77: bad match distance");
        for (std::size_t k = 0; k < len; ++k)
          out.push_back(out[out.size() - dist]);
      } else {
        if (i >= in.size()) throw std::invalid_argument("lz77: truncated literal");
        out.push_back(in[i++]);
      }
    }
  }
  if (out.size() != original) throw std::invalid_argument("lz77: length mismatch");
  return out;
}

} // namespace buscrypt::compress
