#pragma once
/// \file lz77.hpp
/// Windowed LZ77 with hash-chain match finding. The dictionary coder in
/// the Fig. 8 sweep; better ratio than RLE/Huffman alone on code images,
/// at a higher modeled decompressor cost.

#include "compress/codec.hpp"

namespace buscrypt::compress {

/// Token format (byte-oriented for a cheap hardware decoder): groups of 8
/// tokens share one flag byte (bit i set = token i is a match). A literal
/// is one byte; a match is <dist:u16 le> <len:u8> (len 3..255,
/// dist 1..32768). Worst-case expansion is 12.5%.
/// Header: u32 original length.
class lz77_codec final : public codec {
 public:
  explicit lz77_codec(std::size_t window = 32 * 1024) : window_(window) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "LZ77"; }
  [[nodiscard]] bytes compress(std::span<const u8> in) const override;
  [[nodiscard]] bytes decompress(std::span<const u8> in) const override;
  [[nodiscard]] codec_timing timing() const noexcept override { return {8, 0.75}; }

 private:
  std::size_t window_;
};

} // namespace buscrypt::compress
