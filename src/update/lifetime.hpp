#pragma once
/// \file lifetime.hpp
/// One complete device lifetime — boot → provision → traffic → in-field
/// update under an armed fault → power-cycle/recover → audit → teardown —
/// as a single deterministic, seeded function. This is the cell the fleet
/// re-drives thousands of times (the million-user-day axis) and the cell
/// tab13's recovery matrix sweeps: every run must end with the device
/// holding *exactly* the old image or *exactly* the new one, never a torn
/// mix, and never a downgrade.

#include "sim/fault_injector.hpp"
#include "update/update_agent.hpp"

namespace buscrypt::update {

/// Everything one lifetime depends on. Same config -> bit-identical result.
struct lifetime_config {
  u64 seed = 1;
  engine::auth_mode auth = engine::auth_mode::none;
  std::string backend = "aes-ctr";
  /// Armed fault for the update leg (none = clean update).
  sim::fault_point inject = sim::fault_point::none;
  u64 trigger = 0;       ///< in the point's native unit (beats/flushes/records)
  unsigned stalls = 0;   ///< bus_stall only
  /// Geometry — small defaults keep a fleet cell cheap.
  std::size_t image_bytes = 8u << 10;
  std::size_t chunk_bytes = 512;
  std::size_t data_unit = 32;
  /// Whether the updater daemon re-offers the package after the power
  /// cycle (resume path) or not (rollback path).
  bool offer_package = true;
  /// Probe that a stale-version replay fail-stops after the episode.
  bool downgrade_probe = true;
  /// Amortise RSA keygen across cells (not owned; nullptr = generate).
  const crypto::rsa_keypair* keys = nullptr;
};

/// What the lifetime concluded — the fields the fleet folds into its
/// determinism proofs and tab13 folds into the recovery matrix.
struct lifetime_result {
  update_status status = update_status::none_pending;
  bool cut = false;               ///< a power_cut fired mid-update
  bool committed_new = false;     ///< device ended on the new image
  bool old_intact = false;        ///< device ended on the old image
  bool torn = false;              ///< neither — the crash-safety failure
  bool downgrade_blocked = true;  ///< probe result (true when not probed)
  unsigned active_slot = 0;
  u64 version = 0;
  unsigned retries = 0;
  u64 beats = 0;                  ///< injector beats over the update leg
  cycles traffic_cycles = 0;      ///< pre-update execution traffic
  cycles update_cycles = 0;       ///< verify + install + backoff
  u64 dram_fingerprint = 0;       ///< FNV-1a over external memory
};

/// `recovered-or-rolled-back, zero torn images` in one predicate.
[[nodiscard]] constexpr bool lifetime_safe(const lifetime_result& lr) noexcept {
  return !lr.torn && (lr.committed_new || lr.old_intact) && lr.downgrade_blocked;
}

/// Drive one lifetime. Deterministic in \p cfg; never throws power_cut
/// (cuts are caught, power-cycled and recovered inside).
[[nodiscard]] lifetime_result run_lifetime(const lifetime_config& cfg);

/// A seeded device key of a length \p backend accepts (16 when possible) —
/// shared by the lifetime runner, the update tamper suite and the tests.
[[nodiscard]] bytes backend_device_key(const std::string& backend, u64 seed);

} // namespace buscrypt::update
