#pragma once
/// \file update_agent.hpp
/// Crash-safe in-field firmware update over the encrypted bus — the
/// riskiest moment in a secure device's life, and the one the survey's
/// threat model ultimately protects: a power cut or a tampered staged
/// image during an update must never brick or downgrade the part.
///
/// The design composes three existing pillars into an A/B update protocol
/// (fwupd's DFU interrupted-transfer discipline, cast onto this SoC):
///
///   - the Fig. 1 session-key flow: the editor ships the new image
///     ciphered under a fresh session key K, K wrapped under Em — plus a
///     *manifest* (per-chunk MACs and a version binding, all keyed by K)
///     so the device can verify the staged copy chunk by chunk;
///   - the keyslot engine + memory_authenticator: the staged image lands
///     in untrusted DRAM under a session context (optionally guarded by
///     mac/area/hash-tree), and each firmware slot is its own
///     authenticated region, so a torn install never contaminates the
///     running slot's authentication state;
///   - an on-chip journal (NVM, like the version RAM): fixed-size,
///     device-key-MAC'd records. The *single journal append of a
///     `committed` record is the atomic commit point* — every other byte
///     of the protocol may be cut mid-write and the device still boots
///     exactly the old or exactly the new image.
///
/// State machine (journal records in **bold**):
///
///       idle ──stage──▶ **staged** ──verify ok──▶ **installing**
///         ▲                   │ verify fail             │ install + readback
///         │                   ▼                         ▼
///         │            **rolled_back** ◀──readback fail── **installed**
///         │                   ▲                          │
///         └── power cut ──────┘ (or resume)              ▼
///                                                  **committed**
///
/// Every phase boundary is a fault_injector hook (flush), every DRAM beat
/// and journal byte a potential cut, which is what tab13 sweeps.

#include "engine/bus_encryption_engine.hpp"
#include "keymgmt/session.hpp"
#include "sim/fault_injector.hpp"

#include <optional>
#include <string>
#include <vector>

namespace buscrypt::update {

/// Lifecycle states; the subset marked in the diagram above is journaled.
enum class update_state : u8 {
  idle,
  staged,      ///< new image + manifest verified landed in staging DRAM
  installing,  ///< chunks being copied into the inactive slot
  installed,   ///< every chunk written; readback verify passed
  committed,   ///< the new slot is the boot slot (atomic point)
  rolled_back, ///< update abandoned; the old slot remains the boot slot
  torn,        ///< recovery's acknowledgement of a torn tail cell: the
               ///< crash-garbage record, rewritten in place under the
               ///< journal MAC so it can become interior without ever
               ///< reading as tampering
};

[[nodiscard]] constexpr std::string_view update_state_name(update_state s) noexcept {
  switch (s) {
    case update_state::idle: return "idle";
    case update_state::staged: return "staged";
    case update_state::installing: return "installing";
    case update_state::installed: return "installed";
    case update_state::committed: return "committed";
    case update_state::rolled_back: return "rolled-back";
    case update_state::torn: return "torn";
  }
  return "?";
}

/// What one update attempt (or recovery) concluded.
enum class update_status : u8 {
  committed,         ///< new image live, version bumped
  resumed,           ///< recovery re-drove an interrupted update to commit
  rolled_back,       ///< old image live, pending update abandoned
  none_pending,      ///< recovery found nothing to do
  downgrade_blocked, ///< stale version / replayed old package — fail-stop
  verify_failed,     ///< manifest/chunk/authenticator verification failed
  stall_aborted,     ///< bus stalled past the bounded retry budget
  journal_tampered,  ///< journal MAC check failed — fail-stop on last good
};

[[nodiscard]] constexpr std::string_view update_status_name(update_status s) noexcept {
  switch (s) {
    case update_status::committed: return "committed";
    case update_status::resumed: return "resumed";
    case update_status::rolled_back: return "rolled-back";
    case update_status::none_pending: return "none-pending";
    case update_status::downgrade_blocked: return "downgrade-blocked";
    case update_status::verify_failed: return "verify-failed";
    case update_status::stall_aborted: return "stall-aborted";
    case update_status::journal_tampered: return "journal-tampered";
  }
  return "?";
}

// --- the wire format ---------------------------------------------------------

/// The Fig. 1 package, extended for updates: a version binding and a
/// chunk-granular manifest, all MAC'd under the session key K so only the
/// legitimate editor (who chose K) can authorise content or version.
struct update_package {
  keymgmt::software_package wire; ///< K under Em, IV, image under K
  u64 version = 0;                ///< monotonic security version
  u64 image_bytes = 0;            ///< plaintext image length
  std::size_t chunk_bytes = 1024; ///< verification granule
  std::vector<bytes> chunk_macs;  ///< HMAC-SHA256/16 per chunk under K
  bytes manifest_mac;             ///< binds version + geometry + chunk MACs

  [[nodiscard]] std::size_t chunks() const noexcept {
    return chunk_bytes == 0
               ? 0
               : static_cast<std::size_t>((image_bytes + chunk_bytes - 1) / chunk_bytes);
  }
};

/// Editor-side packaging: pick K, wrap it under Em, cipher the image, MAC
/// every chunk and the manifest, ship everything over \p ch (the
/// eavesdropper records it all — nothing in the manifest is secret).
[[nodiscard]] update_package make_update_package(const bytes& image, u64 version,
                                                 const crypto::rsa_public_key& em,
                                                 keymgmt::insecure_channel& ch, rng& r,
                                                 std::size_t chunk_bytes = 1024);

/// The per-chunk MAC (16 bytes): HMAC-SHA256(K, "chunk" || index || version
/// || plaintext-chunk), truncated. Exposed so the agent's readback verify
/// and the tests share one definition with the packager.
[[nodiscard]] bytes chunk_mac(std::span<const u8> k, u64 version, u64 index,
                              std::span<const u8> chunk);

/// The manifest MAC (16 bytes) over version, geometry and every chunk MAC.
[[nodiscard]] bytes manifest_mac(std::span<const u8> k, const update_package& up);

// --- the on-chip journal -----------------------------------------------------

/// Append-only on-chip NVM journal. Each record is one fixed-size cell
/// whose write goes through the fault injector's NVM path — a power cut
/// mid-record leaves a torn cell whose MAC cannot verify, so recovery
/// skips it instead of half-trusting it. Record layout (little-endian):
///   [0,8) seq  [8] state  [9] slot  [10,18) version  [18,26) image_bytes
///   [26,34) HMAC-SHA256(journal key, bytes [0,26)) truncated to 8
///   [34,40) zero pad
class update_journal {
 public:
  static constexpr std::size_t k_record_bytes = 40;

  /// \param mac_key the device journal key (on-chip, never external).
  explicit update_journal(bytes mac_key) : key_(std::move(mac_key)) {}

  struct entry {
    u64 seq = 0;
    update_state state = update_state::idle;
    u8 slot = 0;
    u64 version = 0;
    u64 image_bytes = 0;
    bool valid = false; ///< MAC checked out
  };

  /// Append one record through \p fi's NVM write (may tear + power_cut).
  void append(update_state st, u8 slot, u64 version, u64 image_bytes,
              sim::fault_injector& fi);

  /// Rewrite an invalid *last* cell in place as a MAC'd `torn` marker.
  /// Recovery calls this once it has classified the torn tail as a crash
  /// signature, *before* appending anything past it — otherwise the
  /// invalid cell would become interior and read as tampering on every
  /// later recovery. No-op when the last cell is valid (or empty). The
  /// rewrite itself rides \p fi's NVM path: a cut mid-neutralisation
  /// leaves the cell invalid-and-last, so the next recovery just redoes it.
  void neutralize_torn_tail(sim::fault_injector& fi);

  /// Every stored cell, decoded, in append order (torn cells invalid).
  [[nodiscard]] std::vector<entry> entries() const;

  /// Any cell failing its MAC — torn write or active tamper.
  [[nodiscard]] bool tampered() const;

  /// The newest valid *protocol* record, or nothing (pre-provisioning).
  /// `torn` acknowledgement markers are skipped: they record that a cell
  /// was crash garbage, not a lifecycle step.
  [[nodiscard]] std::optional<entry> last_valid() const;

  /// The newest valid `committed` record — what boot trusts.
  [[nodiscard]] std::optional<entry> last_committed() const;

  [[nodiscard]] std::size_t records() const noexcept {
    return store_.size() / k_record_bytes;
  }

  /// The raw NVM cells — the attack suite's journal-tamper hook. (A real
  /// part would need a fault attack to reach these; modeling the access
  /// lets the suite prove the MAC catches it.)
  [[nodiscard]] std::span<u8> raw() noexcept { return store_; }

 private:
  [[nodiscard]] bytes record_mac(std::span<const u8> body) const;
  [[nodiscard]] bytes encode_record(u64 seq, update_state st, u8 slot, u64 version,
                                    u64 image_bytes) const;

  bytes key_;
  bytes store_; ///< on-chip NVM: survives power cycles
};

// --- the agent ---------------------------------------------------------------

struct update_config {
  /// A/B firmware slots, each its own encryption context + authenticated
  /// window (per-slot isolation is what keeps a torn install in B from
  /// ever touching A's authentication state).
  addr_t slot_base_a = 0;
  addr_t slot_base_b = 256u << 10;
  std::size_t slot_bytes = 256u << 10;
  /// Staging area: untrusted DRAM the session-keyed download lands in.
  addr_t staging_base = 512u << 10;
  /// Authentication scheme guarding all three windows (none = bare).
  engine::auth_mode auth = engine::auth_mode::none;
  std::size_t auth_tag_bytes = 8;
  /// Per-window tag/node regions (mac & hash-tree store material there).
  addr_t tag_base_a = 1u << 20;
  addr_t tag_base_b = (1u << 20) + (384u << 10);
  addr_t tag_base_staging = (1u << 20) + (768u << 10);
  /// Cipher backend + data unit of every context. AREA needs a diffusing
  /// block mode (the engine rejects CTR/stream backends at attach).
  std::string backend = "aes-ctr";
  std::size_t data_unit = 32;
  std::size_t chunk_bytes = 1024;
  /// Bounded retry/backoff against a stalled bus (DFU-style): up to
  /// max_retries waits, the n-th costing retry_backoff << n cycles.
  unsigned max_retries = 6;
  cycles retry_backoff = 32;
  /// Device key material (boot contexts, window auth, journal MAC). Empty
  /// derives a fixed test key.
  bytes device_key;
};

/// One update attempt / recovery, measured.
struct update_report {
  update_status status = update_status::none_pending;
  unsigned active_slot = 0; ///< after the episode
  u64 version = 0;          ///< after the episode
  cycles verify_cycles = 0;  ///< staged-image chunk verification
  cycles install_cycles = 0; ///< slot program + readback verify
  cycles total_cycles = 0;   ///< verify + install + stall backoff
  unsigned retries = 0;      ///< bus-stall retries spent
};

/// The update agent: owns the A/B slot state machine over one
/// bus_encryption_engine whose external path runs through a
/// fault_injector. On-chip state (journal, Dm, version mirror) survives
/// power_cycle(); volatile state (session key/context, auth caches) does
/// not — exactly the split the recovery invariants quantify over.
class update_agent {
 public:
  /// \param eng engine whose lower port is (or sits above) \p fi.
  /// \param fi the injectable external path + NVM write hooks.
  /// \param dm the device private key (Fig. 1 Dm, on-chip NVM).
  update_agent(engine::bus_encryption_engine& eng, sim::fault_injector& fi,
               crypto::rsa_private_key dm, update_config cfg);

  /// Factory provisioning: install \p image into slot A at \p version,
  /// attach the slot authenticators, journal the baseline commit.
  void provision(std::span<const u8> image, u64 version);

  /// Drive one full update: downgrade check, stage, verify, install,
  /// readback, commit. Throws sim::power_cut through when the injector
  /// fires — callers power_cycle() then recover().
  update_report apply(const update_package& up);

  /// Power loss: volatile state gone (session key + context, slot auth
  /// caches), on-chip NVM (journal, Dm, versions, tree roots) intact.
  void power_cycle();

  /// Journal-driven recovery. With \p pkg (the updater daemon re-offers
  /// the package after reboot), an interrupted update of that version is
  /// re-driven to commit — re-verifying the staged DRAM copy first, since
  /// it sat in untrusted memory across the cut. Without it, or on any
  /// verification failure, the pending update rolls back; the old slot
  /// was never touched and stays bootable. A journal whose MAC check
  /// fails fail-stops onto the last good committed record.
  update_report recover(const update_package* pkg = nullptr);

  // --- inspection ------------------------------------------------------------

  [[nodiscard]] unsigned active_slot() const noexcept { return active_; }
  [[nodiscard]] u64 version() const noexcept { return version_; }
  [[nodiscard]] std::size_t active_image_bytes() const noexcept {
    return static_cast<std::size_t>(image_bytes_[active_]);
  }
  /// Plaintext of the active slot through the engine (offline path).
  [[nodiscard]] bytes active_image();
  [[nodiscard]] addr_t slot_base(unsigned slot) const noexcept {
    return slot == 0 ? cfg_.slot_base_a : cfg_.slot_base_b;
  }
  [[nodiscard]] update_journal& journal() noexcept { return journal_; }
  [[nodiscard]] const update_config& config() const noexcept { return cfg_; }
  [[nodiscard]] engine::bus_encryption_engine& engine() noexcept { return *eng_; }

 private:
  /// (Re)build one slot's context: destroy, create, map, attach auth —
  /// the "erase" step of a flash update, and what keeps a previously torn
  /// tree/tag state from fail-stopping a fresh install.
  void rebuild_slot_context(unsigned slot);
  void rebuild_staging_context(std::span<const u8> k);
  [[nodiscard]] addr_t tag_base(unsigned slot) const noexcept {
    return slot == 0 ? cfg_.tag_base_a : cfg_.tag_base_b;
  }
  [[nodiscard]] engine::auth_config window_auth(addr_t base, std::size_t len,
                                                addr_t tags) const;
  /// Bounded retry/backoff against a stalled bus; false = budget blown.
  [[nodiscard]] bool wait_bus(update_report& rep, cycles& acc);
  /// The staged-verify → install → readback → commit drive shared by
  /// apply() and resume. \p resumed marks the report accordingly.
  [[nodiscard]] update_report drive(const update_package& up, std::span<const u8> k,
                                    bool resumed);
  [[nodiscard]] update_report roll_back(update_status why);
  /// Adopt boot state from the newest valid committed journal record.
  void sync_from_journal();
  void teardown_session();

  engine::bus_encryption_engine* eng_;
  sim::fault_injector* fi_;
  crypto::rsa_private_key dm_; ///< on-chip NVM
  update_config cfg_;
  update_journal journal_;     ///< on-chip NVM

  // On-chip NVM mirrors of the newest committed record.
  unsigned active_ = 0;
  u64 version_ = 0;
  u64 image_bytes_[2] = {0, 0};

  // Volatile (lost on power_cycle).
  engine::bus_encryption_engine::context_id ctx_slot_[2];
  engine::bus_encryption_engine::context_id ctx_session_;
  bytes session_key_;
  bool provisioned_ = false;
};

} // namespace buscrypt::update
