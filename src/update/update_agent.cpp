#include "update/update_agent.hpp"

#include "crypto/aes.hpp"
#include "crypto/mac.hpp"
#include "crypto/modes.hpp"
#include "crypto/rsa.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::update {

namespace {

constexpr std::size_t k_mac_bytes = 16;

void put_le64(bytes& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

u64 get_le64(std::span<const u8> in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= u64{in[static_cast<std::size_t>(i)]} << (8 * i);
  return v;
}

} // namespace

// --- wire format -------------------------------------------------------------

bytes chunk_mac(std::span<const u8> k, u64 version, u64 index,
                std::span<const u8> chunk) {
  bytes msg;
  msg.reserve(5 + 16 + chunk.size());
  for (const char c : {'c', 'h', 'u', 'n', 'k'}) msg.push_back(static_cast<u8>(c));
  put_le64(msg, index);
  put_le64(msg, version);
  msg.insert(msg.end(), chunk.begin(), chunk.end());
  return crypto::hmac_sha256_tag(k, msg, k_mac_bytes);
}

bytes manifest_mac(std::span<const u8> k, const update_package& up) {
  bytes msg;
  msg.reserve(8 + 24 + up.chunk_macs.size() * k_mac_bytes);
  for (const char c : {'m', 'a', 'n', 'i', 'f', 'e', 's', 't'})
    msg.push_back(static_cast<u8>(c));
  put_le64(msg, up.version);
  put_le64(msg, up.image_bytes);
  put_le64(msg, static_cast<u64>(up.chunk_bytes));
  for (const bytes& m : up.chunk_macs) msg.insert(msg.end(), m.begin(), m.end());
  return crypto::hmac_sha256_tag(k, msg, k_mac_bytes);
}

update_package make_update_package(const bytes& image, u64 version,
                                   const crypto::rsa_public_key& em,
                                   keymgmt::insecure_channel& ch, rng& r,
                                   std::size_t chunk_bytes) {
  if (chunk_bytes == 0) throw std::invalid_argument("update package: chunk_bytes 0");
  update_package up;
  up.version = version;
  up.image_bytes = image.size();
  up.chunk_bytes = chunk_bytes;

  // The Fig. 1 symmetric/asymmetric split, verbatim.
  const bytes k = r.random_bytes(16);
  up.wire.wrapped_session_key = crypto::rsa_wrap_key(em, k, r);
  up.wire.iv = r.random_bytes(16);
  const crypto::aes session_cipher(k);
  const bytes padded = crypto::pkcs7_pad(image, 16);
  up.wire.ciphered_image.resize(padded.size());
  crypto::cbc_encrypt(session_cipher, up.wire.iv, padded, up.wire.ciphered_image);

  // The manifest: chunk MACs over *plaintext* chunks (the device verifies
  // after deciphering through its session context), all keyed by K.
  for (std::size_t off = 0; off < image.size(); off += chunk_bytes) {
    const std::size_t n = std::min(chunk_bytes, image.size() - off);
    up.chunk_macs.push_back(
        chunk_mac(k, version, off / chunk_bytes,
                  std::span<const u8>(image).subspan(off, n)));
  }
  up.manifest_mac = manifest_mac(k, up);

  ch.send("editor->device: K wrapped under Em", up.wire.wrapped_session_key);
  ch.send("editor->device: IV", up.wire.iv);
  ch.send("editor->device: update image under K", up.wire.ciphered_image);
  bytes manifest_wire = up.manifest_mac;
  for (const bytes& m : up.chunk_macs)
    manifest_wire.insert(manifest_wire.end(), m.begin(), m.end());
  ch.send("editor->device: manifest (version, chunk MACs)", manifest_wire);
  return up;
}

// --- journal -----------------------------------------------------------------

bytes update_journal::record_mac(std::span<const u8> body) const {
  return crypto::hmac_sha256_tag(key_, body, 8);
}

bytes update_journal::encode_record(u64 seq, update_state st, u8 slot, u64 version,
                                    u64 image_bytes) const {
  bytes rec;
  rec.reserve(k_record_bytes);
  put_le64(rec, seq);
  rec.push_back(static_cast<u8>(st));
  rec.push_back(slot);
  put_le64(rec, version);
  put_le64(rec, image_bytes);
  const bytes mac = record_mac(rec);
  rec.insert(rec.end(), mac.begin(), mac.end());
  rec.resize(k_record_bytes, 0);
  return rec;
}

void update_journal::append(update_state st, u8 slot, u64 version, u64 image_bytes,
                            sim::fault_injector& fi) {
  const bytes rec = encode_record(records() + 1, st, slot, version, image_bytes);

  // The cell is claimed first, then written through the fault path: a cut
  // mid-record leaves a torn cell in place, exactly like real NVM.
  const std::size_t off = store_.size();
  store_.resize(off + k_record_bytes, 0);
  fi.nvm_write(std::span<u8>(store_).subspan(off, k_record_bytes), rec);
}

void update_journal::neutralize_torn_tail(sim::fault_injector& fi) {
  const std::size_t n = records();
  if (n == 0 || entries().back().valid) return;
  // Same seq the torn append claimed (1-based cell index): the chain stays
  // gapless, and only the journal-key holder can mint this marker.
  const bytes rec = encode_record(static_cast<u64>(n), update_state::torn,
                                  /*slot=*/0, /*version=*/0, /*image_bytes=*/0);
  fi.nvm_write(std::span<u8>(store_).subspan((n - 1) * k_record_bytes,
                                             k_record_bytes),
               rec);
}

std::vector<update_journal::entry> update_journal::entries() const {
  std::vector<entry> out;
  for (std::size_t off = 0; off + k_record_bytes <= store_.size();
       off += k_record_bytes) {
    const std::span<const u8> rec =
        std::span<const u8>(store_).subspan(off, k_record_bytes);
    entry e;
    e.seq = get_le64(rec);
    e.state = static_cast<update_state>(rec[8]);
    e.slot = rec[9];
    e.version = get_le64(rec.subspan(10));
    e.image_bytes = get_le64(rec.subspan(18));
    e.valid = rec[8] <= static_cast<u8>(update_state::torn) &&
              crypto::tag_equal(record_mac(rec.first(26)), rec.subspan(26, 8));
    out.push_back(e);
  }
  return out;
}

bool update_journal::tampered() const {
  for (const entry& e : entries())
    if (!e.valid) return true;
  return false;
}

std::optional<update_journal::entry> update_journal::last_valid() const {
  std::optional<entry> best;
  for (const entry& e : entries())
    if (e.valid && e.state != update_state::torn) best = e;
  return best;
}

std::optional<update_journal::entry> update_journal::last_committed() const {
  std::optional<entry> best;
  for (const entry& e : entries())
    if (e.valid && e.state == update_state::committed) best = e;
  return best;
}

// --- agent -------------------------------------------------------------------

update_agent::update_agent(engine::bus_encryption_engine& eng, sim::fault_injector& fi,
                           crypto::rsa_private_key dm, update_config cfg)
    : eng_(&eng), fi_(&fi), dm_(std::move(dm)), cfg_(std::move(cfg)),
      journal_(cfg_.device_key.empty() ? bytes(16, 0xD1) : cfg_.device_key) {
  if (cfg_.device_key.empty()) cfg_.device_key = bytes(16, 0xD1);
  if (cfg_.slot_bytes == 0 || cfg_.slot_bytes % cfg_.data_unit != 0 ||
      cfg_.chunk_bytes == 0 || cfg_.chunk_bytes % cfg_.data_unit != 0)
    throw std::invalid_argument("update_agent: slot/chunk size must be a "
                                "positive data-unit multiple");
  ctx_slot_[0] = ctx_slot_[1] = engine::bus_encryption_engine::no_context;
  ctx_session_ = engine::bus_encryption_engine::no_context;
}

engine::auth_config update_agent::window_auth(addr_t base, std::size_t len,
                                              addr_t tags) const {
  engine::auth_config a;
  a.mode = cfg_.auth;
  a.key = cfg_.device_key;
  a.base = base;
  a.limit = base + len;
  a.tag_bytes = cfg_.auth_tag_bytes;
  a.tag_base = tags;
  return a;
}

void update_agent::rebuild_slot_context(unsigned slot) {
  if (ctx_slot_[slot] != engine::bus_encryption_engine::no_context)
    eng_->destroy_context(ctx_slot_[slot]);
  ctx_slot_[slot] =
      eng_->create_context({cfg_.backend, cfg_.device_key, cfg_.data_unit});
  eng_->map_region(slot_base(slot), cfg_.slot_bytes, ctx_slot_[slot]);
  if (cfg_.auth != engine::auth_mode::none)
    (void)eng_->attach_auth(ctx_slot_[slot],
                            window_auth(slot_base(slot), cfg_.slot_bytes,
                                        tag_base(slot)));
}

void update_agent::rebuild_staging_context(std::span<const u8> k) {
  teardown_session();
  session_key_.assign(k.begin(), k.end());
  ctx_session_ =
      eng_->create_context({cfg_.backend, session_key_, cfg_.data_unit});
  eng_->map_region(cfg_.staging_base, cfg_.slot_bytes, ctx_session_);
}

void update_agent::teardown_session() {
  if (ctx_session_ != engine::bus_encryption_engine::no_context) {
    eng_->destroy_context(ctx_session_);
    ctx_session_ = engine::bus_encryption_engine::no_context;
  }
  session_key_.clear();
}

void update_agent::provision(std::span<const u8> image, u64 version) {
  if (image.size() > cfg_.slot_bytes)
    throw std::invalid_argument("provision: image exceeds the slot");
  rebuild_slot_context(0);
  // Install before attach would lose the seal; the attach in
  // rebuild_slot_context sealed zeros, so install through the engine keeps
  // tags/tree/sideband in sync unit by unit.
  eng_->install(cfg_.slot_base_a, image);
  rebuild_slot_context(1); // slot B: sealed-over zeros, ready as a target
  active_ = 0;
  version_ = version;
  image_bytes_[0] = image.size();
  image_bytes_[1] = 0;
  journal_.append(update_state::committed, 0, version, image.size(), *fi_);
  provisioned_ = true;
}

bool update_agent::wait_bus(update_report& rep, cycles& acc) {
  cycles backoff = cfg_.retry_backoff;
  for (unsigned tries = 0; fi_->stall_pending(); backoff *= 2) {
    if (++tries > cfg_.max_retries) return false;
    ++rep.retries;
    acc += backoff;
  }
  return true;
}

update_report update_agent::roll_back(update_status why) {
  teardown_session();
  journal_.append(update_state::rolled_back, static_cast<u8>(active_), version_,
                  image_bytes_[active_], *fi_);
  update_report rep;
  rep.status = why;
  rep.active_slot = active_;
  rep.version = version_;
  return rep;
}

update_report update_agent::apply(const update_package& up) {
  if (!provisioned_) throw std::logic_error("apply: provision first");
  update_report rep;
  rep.active_slot = active_;
  rep.version = version_;

  // Anti-downgrade fail-stop: the on-chip monotonic version beats a stale
  // or replayed package before a single staging byte moves.
  if (up.version <= version_) {
    rep.status = update_status::downgrade_blocked;
    return rep;
  }

  // Only the holder of Dm can unwrap K; only the holder of K could have
  // MAC'd the manifest — so a version field survives the check only if
  // the editor authorised it.
  bytes k;
  bytes image;
  try {
    k = crypto::rsa_unwrap_key(dm_, up.wire.wrapped_session_key);
    if (!crypto::tag_equal(manifest_mac(k, up), up.manifest_mac)) {
      rep.status = update_status::verify_failed;
      return rep;
    }
    const crypto::aes session_cipher(k);
    bytes padded(up.wire.ciphered_image.size());
    crypto::cbc_decrypt(session_cipher, up.wire.iv, up.wire.ciphered_image, padded);
    image = crypto::pkcs7_unpad(padded, 16);
  } catch (const std::invalid_argument&) {
    rep.status = update_status::verify_failed;
    return rep;
  }
  if (image.size() != up.image_bytes || image.size() > cfg_.slot_bytes ||
      up.chunk_macs.size() != up.chunks() || up.chunk_bytes != cfg_.chunk_bytes) {
    rep.status = update_status::verify_failed;
    return rep;
  }

  // Stage into untrusted DRAM under the session context (+ its own auth
  // window when a scheme is configured — flips planted while we hold the
  // session are caught by the authenticator, pre-resume flips by the
  // chunk MACs).
  rebuild_staging_context(k);
  eng_->install(cfg_.staging_base, image);
  if (cfg_.auth != engine::auth_mode::none)
    (void)eng_->attach_auth(ctx_session_,
                            window_auth(cfg_.staging_base, cfg_.slot_bytes,
                                        cfg_.tag_base_staging));
  fi_->on_flush();
  journal_.append(update_state::staged, static_cast<u8>(1 - active_), up.version,
                  up.image_bytes, *fi_);

  return drive(up, k, /*resumed=*/false);
}

update_report update_agent::drive(const update_package& up, std::span<const u8> k,
                                  bool resumed) {
  const unsigned target = 1 - active_;
  update_report rep;
  rep.active_slot = active_;
  rep.version = version_;
  const std::size_t chunks = up.chunks();
  bytes buf(cfg_.chunk_bytes);

  const auto faults = [&] { return eng_->stats().integrity_faults; };

  // --- phase 1: verify the staged copy chunk by chunk ------------------------
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t off = i * cfg_.chunk_bytes;
    const std::size_t n =
        std::min(cfg_.chunk_bytes, static_cast<std::size_t>(up.image_bytes) - off);
    const std::span<u8> chunk = std::span<u8>(buf).first(n);
    if (!wait_bus(rep, rep.verify_cycles)) return roll_back(update_status::stall_aborted);
    const u64 before = faults();
    rep.verify_cycles += eng_->read(cfg_.staging_base + off, chunk);
    if (faults() > before ||
        !crypto::tag_equal(chunk_mac(k, up.version, i, chunk), up.chunk_macs[i]))
      return roll_back(update_status::verify_failed);
  }
  fi_->on_flush();
  journal_.append(update_state::installing, static_cast<u8>(target), up.version,
                  up.image_bytes, *fi_);

  // --- phase 2: erase + program the inactive slot -----------------------------
  // Rebuilding the target context is the "erase": fresh keys-of-record for
  // the window's auth state, so a previously torn tree cannot fail-stop
  // the program pass.
  rebuild_slot_context(target);
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t off = i * cfg_.chunk_bytes;
    const std::size_t n =
        std::min(cfg_.chunk_bytes, static_cast<std::size_t>(up.image_bytes) - off);
    const std::span<u8> chunk = std::span<u8>(buf).first(n);
    if (!wait_bus(rep, rep.install_cycles))
      return roll_back(update_status::stall_aborted);
    const u64 before = faults();
    rep.install_cycles += eng_->read(cfg_.staging_base + off, chunk);
    if (faults() > before ||
        !crypto::tag_equal(chunk_mac(k, up.version, i, chunk), up.chunk_macs[i]))
      return roll_back(update_status::verify_failed);
    rep.install_cycles += eng_->write(slot_base(target) + off, chunk);
  }
  fi_->on_flush();
  journal_.append(update_state::installed, static_cast<u8>(target), up.version,
                  up.image_bytes, *fi_);

  // --- phase 3: readback verify — no torn or partial flash commits ------------
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t off = i * cfg_.chunk_bytes;
    const std::size_t n =
        std::min(cfg_.chunk_bytes, static_cast<std::size_t>(up.image_bytes) - off);
    const std::span<u8> chunk = std::span<u8>(buf).first(n);
    if (!wait_bus(rep, rep.install_cycles))
      return roll_back(update_status::stall_aborted);
    const u64 before = faults();
    rep.install_cycles += eng_->read(slot_base(target) + off, chunk);
    if (faults() > before ||
        !crypto::tag_equal(chunk_mac(k, up.version, i, chunk), up.chunk_macs[i]))
      return roll_back(update_status::verify_failed);
  }

  // --- phase 4: atomic commit -------------------------------------------------
  // This single journal append IS the commit: before it lands (and MACs),
  // recovery boots the old slot; after, the new one. There is no state in
  // between.
  journal_.append(update_state::committed, static_cast<u8>(target), up.version,
                  up.image_bytes, *fi_);
  active_ = target;
  version_ = up.version;
  image_bytes_[target] = up.image_bytes;
  teardown_session();

  rep.status = resumed ? update_status::resumed : update_status::committed;
  rep.active_slot = active_;
  rep.version = version_;
  rep.total_cycles = rep.verify_cycles + rep.install_cycles;
  return rep;
}

void update_agent::power_cycle() {
  // Volatile on-chip state is gone: the session key and its keyslot
  // context, plus every authenticator's caches. The journal, Dm, the
  // version mirrors, mac version RAM and tree roots are NVM and survive.
  teardown_session();
  for (const auto ctx : ctx_slot_)
    if (ctx != engine::bus_encryption_engine::no_context)
      if (engine::memory_authenticator* a = eng_->auth_of(ctx)) a->drop_caches();
}

void update_agent::sync_from_journal() {
  // The version mirror is a monotonic on-chip counter (RPMB-style): the
  // journal may fast-forward it, never rewind it — otherwise erasing the
  // newest committed record would be a downgrade primitive.
  if (const auto c = journal_.last_committed()) {
    if (c->version >= version_) {
      active_ = c->slot & 1;
      version_ = c->version;
      image_bytes_[active_] = c->image_bytes;
    }
  }
}

update_report update_agent::recover(const update_package* pkg) {
  update_report rep;

  // Fail-stop on a journal whose MAC chain does not check out — except for
  // the well-understood torn tail a power cut leaves: a single invalid
  // *last* cell is the crash signature, anything else is tampering.
  const std::vector<update_journal::entry> es = journal_.entries();
  bool tampered = false;
  for (std::size_t i = 0; i < es.size(); ++i)
    if (!es[i].valid && i + 1 != es.size()) tampered = true;
  const bool torn_tail = !es.empty() && !es.back().valid;

  sync_from_journal();
  rep.active_slot = active_;
  rep.version = version_;

  if (tampered) {
    // Boot the last good committed image and refuse everything pending.
    teardown_session();
    rep.status = update_status::journal_tampered;
    return rep;
  }

  // The torn tail is a classified crash signature now: acknowledge it in
  // place (rewrite as a MAC'd `torn` marker) before anything is appended
  // past it. Left raw, the invalid cell would become interior once the
  // resume/rollback below journals, and every later recovery would read
  // it as tampering — a benign power cut turned permanent fail-stop.
  if (torn_tail) journal_.neutralize_torn_tail(*fi_);

  const auto last = journal_.last_valid();
  const bool pending =
      last && (last->state == update_state::staged ||
               last->state == update_state::installing ||
               last->state == update_state::installed) &&
      last->version > version_;

  // A never-provisioned device has nothing to resume or restart into —
  // without the guard the no-pending branch below would call apply(),
  // which throws instead of reporting.
  if (provisioned_ && pkg != nullptr && pkg->version > version_ &&
      (!pending || pkg->version == last->version)) {
    // The updater daemon re-offers the package: resume. The session key
    // did not survive the cut, so unwrap it again; the staged copy sat in
    // untrusted DRAM, so it is re-verified from scratch (fresh staging
    // context + auth seal, then the chunk-MAC pass in drive()).
    bytes k;
    try {
      k = crypto::rsa_unwrap_key(dm_, pkg->wire.wrapped_session_key);
    } catch (const std::invalid_argument&) {
      return roll_back(update_status::verify_failed);
    }
    if (!crypto::tag_equal(manifest_mac(k, *pkg), pkg->manifest_mac))
      return roll_back(update_status::verify_failed);
    if (!pending) {
      // The cut landed before the staged record: nothing usable is in
      // DRAM — restart the whole download path.
      return apply(*pkg);
    }
    rebuild_staging_context(k);
    if (cfg_.auth != engine::auth_mode::none)
      (void)eng_->attach_auth(ctx_session_,
                              window_auth(cfg_.staging_base, cfg_.slot_bytes,
                                          cfg_.tag_base_staging));
    return drive(*pkg, k, /*resumed=*/true);
  }

  if (!pending && !torn_tail) {
    rep.status = update_status::none_pending;
    return rep;
  }
  return roll_back(update_status::rolled_back);
}

bytes update_agent::active_image() {
  bytes out(static_cast<std::size_t>(image_bytes_[active_]));
  eng_->read_plain(slot_base(active_), out);
  return out;
}

} // namespace buscrypt::update
