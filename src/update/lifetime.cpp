#include "update/lifetime.hpp"

#include "engine/cipher_backend.hpp"
#include "engine/keyslot_manager.hpp"
#include "sim/bus.hpp"
#include "sim/dram.hpp"

#include <algorithm>

namespace buscrypt::update {

namespace {

u64 fnv1a(std::span<const u8> data) noexcept {
  u64 h = 14695981039346656037ull;
  for (const u8 b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

} // namespace

bytes backend_device_key(const std::string& backend, u64 seed) {
  const engine::cipher_backend& b = engine::backend_registry::builtin().at(backend);
  if (b.key_len_ok(16)) {
    rng kr(seed ^ 0xDE71CEULL);
    return kr.random_bytes(16);
  }
  for (std::size_t len = 1; len <= 32; ++len)
    if (b.key_len_ok(len)) {
      rng kr(seed ^ (0xDE71CEULL + len));
      return kr.random_bytes(len);
    }
  throw std::invalid_argument("lifetime: no accepted key length for backend");
}

lifetime_result run_lifetime(const lifetime_config& cfg) {
  lifetime_result lr;
  rng r(cfg.seed ^ 0x11FE71'3E5ULL);

  // --- geometry: everything scales off the slot size ------------------------
  const std::size_t s = cfg.image_bytes; // slot == image (model firmware part)
  update_config ucfg;
  ucfg.slot_base_a = 0;
  ucfg.slot_base_b = s;
  ucfg.slot_bytes = s;
  ucfg.staging_base = 2 * s;
  ucfg.auth = cfg.auth;
  ucfg.tag_base_a = static_cast<addr_t>(4 * s);
  ucfg.tag_base_b = static_cast<addr_t>(6 * s);
  ucfg.tag_base_staging = static_cast<addr_t>(8 * s);
  ucfg.backend = cfg.backend;
  ucfg.data_unit = cfg.data_unit;
  ucfg.chunk_bytes = cfg.chunk_bytes;
  ucfg.device_key = backend_device_key(cfg.backend, cfg.seed);

  // --- boot: the SoC with the fault injector under the engine ---------------
  sim::dram chip(12 * s < (64u << 10) ? (64u << 10) : 12 * s);
  sim::external_memory ext(chip);
  sim::fault_injector fi(ext);
  engine::keyslot_manager slots(engine::backend_registry::builtin(), 4);
  engine::bus_encryption_engine eng(fi, slots);

  // --- key install (Fig. 1 provisioning) ------------------------------------
  crypto::rsa_keypair local_keys;
  const crypto::rsa_keypair* keys = cfg.keys;
  if (keys == nullptr) {
    local_keys = crypto::rsa_generate(r, 256);
    keys = &local_keys;
  }
  update_agent agent(eng, fi, keys->priv, ucfg);

  const bytes image_v1 = rng(cfg.seed ^ 0xF1EE7'1A6EULL).random_bytes(s);
  const bytes image_v2 = rng(cfg.seed ^ 0xF1EE7'1A6FULL).random_bytes(s);
  agent.provision(image_v1, 1);

  // --- traffic: execute from the active slot for a while ---------------------
  bytes buf(cfg.chunk_bytes);
  for (int i = 0; i < 8; ++i) {
    const addr_t at = agent.slot_base(agent.active_slot()) +
                      r.below(s / cfg.chunk_bytes) * cfg.chunk_bytes;
    lr.traffic_cycles += eng.read(at, buf);
  }

  // --- the update, under the armed fault -------------------------------------
  keymgmt::insecure_channel net;
  const update_package up =
      make_update_package(image_v2, 2, keys->pub, net, r, cfg.chunk_bytes);

  sim::fault_plan plan;
  plan.point = cfg.inject;
  plan.trigger = cfg.trigger;
  plan.seed = cfg.seed ^ 0xB1A57ULL;
  plan.blast_base = ucfg.staging_base;
  plan.blast_len = s;
  plan.stalls = cfg.stalls;
  fi.arm(plan);

  update_report rep;
  try {
    rep = agent.apply(up);
    lr.beats = fi.beats();
  } catch (const sim::power_cut&) {
    lr.cut = true;
    lr.beats = fi.beats();
    agent.power_cycle(); // volatile state gone; NVM + DRAM contents stay
    fi.disarm();         // the grid comes back clean
    rep = agent.recover(cfg.offer_package ? &up : nullptr);
  }
  fi.disarm();

  lr.status = rep.status;
  lr.retries = rep.retries;
  lr.update_cycles = rep.verify_cycles + rep.install_cycles;

  // --- audit: exactly-old or exactly-new, nothing else ------------------------
  const bytes now = agent.active_image();
  lr.committed_new = agent.version() == 2 && now == image_v2;
  lr.old_intact = agent.version() == 1 && now == image_v1;
  lr.torn = !lr.committed_new && !lr.old_intact;
  lr.active_slot = agent.active_slot();
  lr.version = agent.version();

  // --- downgrade probe: replay a stale version, expect fail-stop --------------
  if (cfg.downgrade_probe) {
    const update_package stale =
        make_update_package(image_v1, 1, keys->pub, net, r, cfg.chunk_bytes);
    const update_report drep = agent.apply(stale);
    const u64 v_after = agent.version();
    lr.downgrade_blocked = drep.status == update_status::downgrade_blocked &&
                           v_after == lr.version &&
                           agent.active_image() == now;
  }

  // --- teardown ---------------------------------------------------------------
  lr.dram_fingerprint = fnv1a(chip.raw());
  return lr;
}

} // namespace buscrypt::update
