#include "attack/tamper.hpp"

#include <stdexcept>

namespace buscrypt::attack {

namespace {

bytes pattern_line(std::size_t n, u8 seed) {
  bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<u8>(seed + i * 7);
  return out;
}

} // namespace

tamper_report run_tamper_suite(edu::integrity_edu& target, sim::dram& chip,
                               addr_t line_a, addr_t line_b) {
  const auto& cfg = target.config();
  const std::size_t lb = cfg.line_bytes;
  if (line_a % lb != 0 || line_b % lb != 0 || line_a == line_b)
    throw std::invalid_argument("tamper suite: need two distinct aligned lines");

  tamper_report report;
  const bytes plain_a = pattern_line(lb, 0x11);
  const bytes plain_b = pattern_line(lb, 0x77);
  bytes buf(lb);

  auto detected_by = [&](auto&& tamper_fn) {
    // (Re)establish good state, apply the tamper, power-cycle the device
    // (clearing the volatile tag cache — attackers pick their moment),
    // fetch, diff the counter.
    (void)target.write(line_a, plain_a);
    (void)target.write(line_b, plain_b);
    tamper_fn();
    target.flush_tag_cache();
    const u64 before = target.tamper_events();
    (void)target.read(line_a, buf);
    return target.tamper_events() > before;
  };

  // --- spoof: flip ciphertext bits on the chip -----------------------------
  report.spoof_detected = detected_by([&] { chip.raw()[line_a + 3] ^= 0x40; });
  report.spoof_corrupted_data = buf != plain_a;

  // --- splice: move B's valid ciphertext AND tag over A's ------------------
  report.splice_detected = detected_by([&] {
    for (std::size_t i = 0; i < lb; ++i)
      chip.raw()[line_a + i] = chip.raw()[line_b + i];
    const addr_t ta = target.tag_addr(line_a);
    const addr_t tb = target.tag_addr(line_b);
    for (std::size_t i = 0; i < cfg.tag_bytes; ++i)
      chip.raw()[ta + i] = chip.raw()[tb + i];
  });

  // --- replay: restore a stale (ciphertext, tag) snapshot ------------------
  (void)target.write(line_a, plain_a);
  bytes stale_ct(lb);
  bytes stale_tag(cfg.tag_bytes);
  chip.read_bytes(line_a, stale_ct);
  chip.read_bytes(target.tag_addr(line_a), stale_tag);

  const bytes plain_a2 = pattern_line(lb, 0xCC);
  (void)target.write(line_a, plain_a2); // the value the CPU believes is current

  chip.write_bytes(line_a, stale_ct); // the attacker's rollback
  chip.write_bytes(target.tag_addr(line_a), stale_tag);
  target.flush_tag_cache();

  const u64 before = target.tamper_events();
  (void)target.read(line_a, buf);
  report.replay_detected = target.tamper_events() > before;
  report.replay_restored_stale = (buf == plain_a);

  return report;
}

} // namespace buscrypt::attack
