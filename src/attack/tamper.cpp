#include "attack/tamper.hpp"

#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "engine/cipher_backend.hpp"
#include "engine/keyslot_manager.hpp"
#include "keymgmt/session.hpp"
#include "sim/bus.hpp"
#include "sim/fault_injector.hpp"
#include "update/lifetime.hpp"

#include <stdexcept>

namespace buscrypt::attack {

namespace {

bytes pattern_line(std::size_t n, u8 seed) {
  bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<u8>(seed + i * 7);
  return out;
}

} // namespace

tamper_report run_tamper_suite(edu::integrity_edu& target, sim::dram& chip,
                               addr_t line_a, addr_t line_b) {
  const auto& cfg = target.config();
  const std::size_t lb = cfg.line_bytes;
  if (line_a % lb != 0 || line_b % lb != 0 || line_a == line_b)
    throw std::invalid_argument("tamper suite: need two distinct aligned lines");

  tamper_report report;
  const bytes plain_a = pattern_line(lb, 0x11);
  const bytes plain_b = pattern_line(lb, 0x77);
  bytes buf(lb);

  auto detected_by = [&](auto&& tamper_fn) {
    // (Re)establish good state, apply the tamper, power-cycle the device
    // (clearing the volatile tag cache — attackers pick their moment),
    // fetch, diff the counter.
    (void)target.write(line_a, plain_a);
    (void)target.write(line_b, plain_b);
    tamper_fn();
    target.flush_tag_cache();
    const u64 before = target.tamper_events();
    (void)target.read(line_a, buf);
    return target.tamper_events() > before;
  };

  // --- spoof: flip ciphertext bits on the chip -----------------------------
  report.spoof_detected = detected_by([&] { chip.raw()[line_a + 3] ^= 0x40; });
  report.spoof_corrupted_data = buf != plain_a;

  // --- splice: move B's valid ciphertext AND tag over A's ------------------
  report.splice_detected = detected_by([&] {
    for (std::size_t i = 0; i < lb; ++i)
      chip.raw()[line_a + i] = chip.raw()[line_b + i];
    const addr_t ta = target.tag_addr(line_a);
    const addr_t tb = target.tag_addr(line_b);
    for (std::size_t i = 0; i < cfg.tag_bytes; ++i)
      chip.raw()[ta + i] = chip.raw()[tb + i];
  });

  // --- replay: restore a stale (ciphertext, tag) snapshot ------------------
  (void)target.write(line_a, plain_a);
  bytes stale_ct(lb);
  bytes stale_tag(cfg.tag_bytes);
  chip.read_bytes(line_a, stale_ct);
  chip.read_bytes(target.tag_addr(line_a), stale_tag);

  const bytes plain_a2 = pattern_line(lb, 0xCC);
  (void)target.write(line_a, plain_a2); // the value the CPU believes is current

  chip.write_bytes(line_a, stale_ct); // the attacker's rollback
  chip.write_bytes(target.tag_addr(line_a), stale_tag);
  target.flush_tag_cache();

  const u64 before = target.tamper_events();
  (void)target.read(line_a, buf);
  report.replay_detected = target.tamper_events() > before;
  report.replay_restored_stale = (buf == plain_a);

  return report;
}

engine_tamper_report run_engine_tamper_suite(engine::bus_encryption_engine& target,
                                             sim::dram& chip, addr_t line_a,
                                             addr_t line_b) {
  const auto ctx = target.context_at(line_a);
  if (ctx == engine::bus_encryption_engine::no_context ||
      ctx != target.context_at(line_b))
    throw std::invalid_argument("engine tamper suite: lines must share a context");
  const std::size_t lb = target.context_key(ctx).data_unit_size;
  if (line_a % lb != 0 || line_b % lb != 0 || line_a == line_b)
    throw std::invalid_argument("engine tamper suite: need two distinct aligned lines");
  engine::memory_authenticator* auth = target.auth_of(ctx);
  if (auth != nullptr && (!auth->covers(line_a) || !auth->covers(line_b)))
    throw std::invalid_argument("engine tamper suite: lines outside the "
                                "authenticated window");

  engine_tamper_report report;
  const bytes plain_a = pattern_line(lb, 0x11);
  const bytes plain_b = pattern_line(lb, 0x77);
  bytes buf(lb);

  const auto faults = [&] { return target.stats().integrity_faults; };
  // (Re)establish good state — a previous scenario may have left the tree
  // fail-stopped, so the operator re-seals before writing — apply the
  // tamper, power-cycle the volatile on-chip caches (attackers pick their
  // moment), fetch, diff the counter.
  const auto detected_by = [&](auto&& tamper_fn) {
    if (auth != nullptr) auth->seal_from_memory();
    (void)target.write(line_a, std::span<const u8>(plain_a));
    (void)target.write(line_b, std::span<const u8>(plain_b));
    tamper_fn();
    if (auth != nullptr) auth->drop_caches();
    const u64 before = faults();
    (void)target.read(line_a, buf);
    return faults() > before;
  };

  // --- clean baseline: the untampered round trip must never fault ----------
  report.clean_faulted = detected_by([] {}) || buf != plain_a;

  // --- spoof: flip ciphertext bits on the chip -----------------------------
  report.spoof_detected = detected_by([&] { chip.raw()[line_a + 3] ^= 0x40; });

  // --- splice: relocate B's line AND its authentication material -----------
  report.splice_detected = detected_by([&] {
    for (std::size_t i = 0; i < lb; ++i) chip.raw()[line_a + i] = chip.raw()[line_b + i];
    if (auth == nullptr) return;
    switch (auth->mode()) {
      case engine::auth_mode::mac: {
        const addr_t ta = auth->tag_addr(line_a);
        const addr_t tb = auth->tag_addr(line_b);
        for (std::size_t i = 0; i < auth->config().tag_bytes; ++i)
          chip.raw()[ta + i] = chip.raw()[tb + i];
        break;
      }
      case engine::auth_mode::hash_tree: {
        const u64 ia = (line_a - auth->config().base) / lb;
        const u64 ib = (line_b - auth->config().base) / lb;
        const addr_t na = auth->node_addr(0, ia);
        const addr_t nb = auth->node_addr(0, ib);
        for (std::size_t i = 0; i < auth->config().tag_bytes; ++i)
          chip.raw()[na + i] = chip.raw()[nb + i];
        break;
      }
      case engine::auth_mode::area:
        *auth->area_sideband(line_a) = *auth->area_sideband(line_b);
        break;
      case engine::auth_mode::none: break;
    }
  });

  // --- replay: roll line A and its authentication material back ------------
  if (auth != nullptr) auth->seal_from_memory(); // recover from the splice run
  (void)target.write(line_a, std::span<const u8>(plain_a));
  bytes stale_ct(lb);
  chip.read_bytes(line_a, stale_ct);
  bytes stale_auth;      // mac tag / whole stored tree / area sideband
  addr_t stale_base = 0; // external address the snapshot restores to
  if (auth != nullptr) switch (auth->mode()) {
      case engine::auth_mode::mac:
        stale_base = auth->tag_addr(line_a);
        stale_auth.resize(auth->config().tag_bytes);
        chip.read_bytes(stale_base, stale_auth);
        break;
      case engine::auth_mode::hash_tree:
        // Roll back every stored node: the strongest replay, beaten only
        // by the on-chip root.
        stale_base = auth->config().tag_base;
        stale_auth.resize(auth->tag_memory_bytes());
        chip.read_bytes(stale_base, stale_auth);
        break;
      case engine::auth_mode::area: stale_auth = *auth->area_sideband(line_a); break;
      case engine::auth_mode::none: break;
    }

  const bytes plain_a2 = pattern_line(lb, 0xCC);
  (void)target.write(line_a, std::span<const u8>(plain_a2)); // the current value

  chip.write_bytes(line_a, stale_ct); // the attacker's rollback
  if (auth != nullptr && !stale_auth.empty()) {
    if (auth->mode() == engine::auth_mode::area)
      *auth->area_sideband(line_a) = stale_auth;
    else chip.write_bytes(stale_base, stale_auth);
  }
  if (auth != nullptr) auth->drop_caches();

  const u64 before = faults();
  (void)target.read(line_a, buf);
  report.replay_detected = faults() > before;

  return report;
}

// --- update-lifecycle replays -------------------------------------------------

namespace {

/// A self-contained crash-safe-update rig: DRAM, fault injector, engine,
/// agent. One per replay so no state leaks between attacks.
struct update_rig {
  static constexpr std::size_t k_image = 8u << 10;
  static constexpr std::size_t k_chunk = 512;

  sim::dram chip;
  sim::external_memory ext;
  sim::fault_injector fi;
  engine::keyslot_manager slots;
  engine::bus_encryption_engine eng;
  update::update_agent agent;

  static update::update_config make_cfg(engine::auth_mode mode,
                                        const std::string& backend, u64 seed) {
    update::update_config c;
    c.slot_base_a = 0;
    c.slot_base_b = k_image;
    c.slot_bytes = k_image;
    c.staging_base = 2 * k_image;
    c.auth = mode;
    c.tag_base_a = 4 * k_image;
    c.tag_base_b = 6 * k_image;
    c.tag_base_staging = 8 * k_image;
    c.backend = backend;
    c.chunk_bytes = k_chunk;
    c.device_key = update::backend_device_key(backend, seed);
    return c;
  }

  update_rig(engine::auth_mode mode, const std::string& backend,
             const crypto::rsa_keypair& keys, u64 seed)
      : chip(128u << 10), ext(chip), fi(ext),
        slots(engine::backend_registry::builtin(), 4), eng(fi, slots),
        agent(eng, fi, keys.priv, make_cfg(mode, backend, seed)) {}
};

} // namespace

update_tamper_report run_update_tamper_suite(engine::auth_mode mode,
                                             const std::string& backend, u64 seed) {
  update_tamper_report rep;
  rng r(seed ^ 0x7A3B3A11ULL);
  const crypto::rsa_keypair keys = crypto::rsa_generate(r, 256);
  keymgmt::insecure_channel net;
  const bytes v1 = rng(seed ^ 0xF1EE7'1A6EULL).random_bytes(update_rig::k_image);
  const bytes v2 = rng(seed ^ 0xF1EE7'1A6FULL).random_bytes(update_rig::k_image);

  // A clean probe run proves the rig commits at all; two journal-cut
  // probes then fix the beat counts at the `installing` and `installed`
  // records, so the interrupting replays can place their cuts inside a
  // chosen phase regardless of how much bus traffic the auth scheme adds
  // (the hash tree's writeback would skew any total-beat fraction).
  {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    if (rig.agent.apply(up).status != update::update_status::committed)
      return rep; // the rig itself is broken — report nothing detected
  }
  const auto beats_at_journal = [&](u64 record_index) -> u64 {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    sim::fault_plan plan;
    plan.point = sim::fault_point::journal;
    plan.trigger = record_index;
    rig.fi.arm(plan);
    try {
      (void)rig.agent.apply(up);
    } catch (const sim::power_cut&) {
      return rig.fi.beats();
    }
    return 0;
  };
  const u64 beats_installing = beats_at_journal(1); // end of the verify phase
  const u64 beats_installed = beats_at_journal(2);  // end of the install phase
  if (beats_installing == 0 || beats_installed <= beats_installing)
    return rep;

  // --- downgrade: replay the stale v1 package after the v2 update -------------
  {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    (void)rig.agent.apply(up);
    const update::update_package stale =
        update::make_update_package(v1, 1, keys.pub, net, r, update_rig::k_chunk);
    const update::update_report dr = rig.agent.apply(stale);
    rep.downgrade_detected =
        dr.status == update::update_status::downgrade_blocked &&
        rig.agent.version() == 2 && rig.agent.active_image() == v2;
  }

  // --- partial flash: cut mid-install, try to boot the half-programmed slot ---
  {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    sim::fault_plan plan;
    plan.point = sim::fault_point::bus_beat;
    // Halfway through the slot-programming writes of phase 2.
    plan.trigger = beats_installing + (beats_installed - beats_installing) / 2;
    rig.fi.arm(plan);
    bool cut = false;
    try {
      (void)rig.agent.apply(up);
    } catch (const sim::power_cut&) {
      cut = true;
      rig.agent.power_cycle();
      rig.fi.disarm();
    }
    // The attacker offers nothing: boot must roll back to the intact old
    // image, never expose the partial flash.
    const update::update_report rr = rig.agent.recover(nullptr);
    rep.partial_flash_detected =
        cut && rr.status == update::update_status::rolled_back &&
        rig.agent.version() == 1 && rig.agent.active_image() == v1;
  }

  // --- interrupted update: flip staged bits while dark, re-offer the package --
  {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    sim::fault_plan plan;
    plan.point = sim::fault_point::bus_beat;
    plan.trigger = beats_installing / 2; // inside staging/verify, pre-install
    rig.fi.arm(plan);
    bool cut = false;
    try {
      (void)rig.agent.apply(up);
    } catch (const sim::power_cut&) {
      cut = true;
      rig.agent.power_cycle();
      rig.fi.disarm();
    }
    // While the device is dark the attacker garbles part of the staged
    // image sitting in untrusted DRAM.
    for (std::size_t i = 0; i < 64; ++i)
      rig.chip.raw()[rig.agent.config().staging_base + update_rig::k_image / 2 + i] ^=
          static_cast<u8>(0x80 | i);
    const update::update_report rr = rig.agent.recover(&up);
    // Safe outcomes only: the flips are caught and the update rolls back,
    // or a full restage overwrote them and exactly v2 committed.
    const bytes now = rig.agent.active_image();
    rep.interrupted_update_detected =
        cut && ((rig.agent.version() == 1 && now == v1 &&
                 rr.status != update::update_status::resumed) ||
                (rig.agent.version() == 2 && now == v2));
  }

  // --- journal tamper: rewrite a mid-chain record while dark ------------------
  {
    update_rig rig(mode, backend, keys, seed);
    rig.agent.provision(v1, 1);
    const update::update_package up =
        update::make_update_package(v2, 2, keys.pub, net, r, update_rig::k_chunk);
    (void)rig.agent.apply(up);
    rig.agent.power_cycle();
    // Flip one byte of the `staged` record (index 1 of 5): the MAC chain
    // breaks in the middle — unambiguous tampering, not a torn tail.
    rig.agent.journal().raw()[update::update_journal::k_record_bytes + 5] ^= 0x01;
    const update::update_report rr = rig.agent.recover(nullptr);
    rep.journal_tamper_detected =
        rr.status == update::update_status::journal_tampered &&
        rig.agent.version() == 2 && rig.agent.active_image() == v2;
  }

  return rep;
}

} // namespace buscrypt::attack
