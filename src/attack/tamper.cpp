#include "attack/tamper.hpp"

#include <stdexcept>

namespace buscrypt::attack {

namespace {

bytes pattern_line(std::size_t n, u8 seed) {
  bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<u8>(seed + i * 7);
  return out;
}

} // namespace

tamper_report run_tamper_suite(edu::integrity_edu& target, sim::dram& chip,
                               addr_t line_a, addr_t line_b) {
  const auto& cfg = target.config();
  const std::size_t lb = cfg.line_bytes;
  if (line_a % lb != 0 || line_b % lb != 0 || line_a == line_b)
    throw std::invalid_argument("tamper suite: need two distinct aligned lines");

  tamper_report report;
  const bytes plain_a = pattern_line(lb, 0x11);
  const bytes plain_b = pattern_line(lb, 0x77);
  bytes buf(lb);

  auto detected_by = [&](auto&& tamper_fn) {
    // (Re)establish good state, apply the tamper, power-cycle the device
    // (clearing the volatile tag cache — attackers pick their moment),
    // fetch, diff the counter.
    (void)target.write(line_a, plain_a);
    (void)target.write(line_b, plain_b);
    tamper_fn();
    target.flush_tag_cache();
    const u64 before = target.tamper_events();
    (void)target.read(line_a, buf);
    return target.tamper_events() > before;
  };

  // --- spoof: flip ciphertext bits on the chip -----------------------------
  report.spoof_detected = detected_by([&] { chip.raw()[line_a + 3] ^= 0x40; });
  report.spoof_corrupted_data = buf != plain_a;

  // --- splice: move B's valid ciphertext AND tag over A's ------------------
  report.splice_detected = detected_by([&] {
    for (std::size_t i = 0; i < lb; ++i)
      chip.raw()[line_a + i] = chip.raw()[line_b + i];
    const addr_t ta = target.tag_addr(line_a);
    const addr_t tb = target.tag_addr(line_b);
    for (std::size_t i = 0; i < cfg.tag_bytes; ++i)
      chip.raw()[ta + i] = chip.raw()[tb + i];
  });

  // --- replay: restore a stale (ciphertext, tag) snapshot ------------------
  (void)target.write(line_a, plain_a);
  bytes stale_ct(lb);
  bytes stale_tag(cfg.tag_bytes);
  chip.read_bytes(line_a, stale_ct);
  chip.read_bytes(target.tag_addr(line_a), stale_tag);

  const bytes plain_a2 = pattern_line(lb, 0xCC);
  (void)target.write(line_a, plain_a2); // the value the CPU believes is current

  chip.write_bytes(line_a, stale_ct); // the attacker's rollback
  chip.write_bytes(target.tag_addr(line_a), stale_tag);
  target.flush_tag_cache();

  const u64 before = target.tamper_events();
  (void)target.read(line_a, buf);
  report.replay_detected = target.tamper_events() > before;
  report.replay_restored_stale = (buf == plain_a);

  return report;
}

engine_tamper_report run_engine_tamper_suite(engine::bus_encryption_engine& target,
                                             sim::dram& chip, addr_t line_a,
                                             addr_t line_b) {
  const auto ctx = target.context_at(line_a);
  if (ctx == engine::bus_encryption_engine::no_context ||
      ctx != target.context_at(line_b))
    throw std::invalid_argument("engine tamper suite: lines must share a context");
  const std::size_t lb = target.context_key(ctx).data_unit_size;
  if (line_a % lb != 0 || line_b % lb != 0 || line_a == line_b)
    throw std::invalid_argument("engine tamper suite: need two distinct aligned lines");
  engine::memory_authenticator* auth = target.auth_of(ctx);
  if (auth != nullptr && (!auth->covers(line_a) || !auth->covers(line_b)))
    throw std::invalid_argument("engine tamper suite: lines outside the "
                                "authenticated window");

  engine_tamper_report report;
  const bytes plain_a = pattern_line(lb, 0x11);
  const bytes plain_b = pattern_line(lb, 0x77);
  bytes buf(lb);

  const auto faults = [&] { return target.stats().integrity_faults; };
  // (Re)establish good state — a previous scenario may have left the tree
  // fail-stopped, so the operator re-seals before writing — apply the
  // tamper, power-cycle the volatile on-chip caches (attackers pick their
  // moment), fetch, diff the counter.
  const auto detected_by = [&](auto&& tamper_fn) {
    if (auth != nullptr) auth->seal_from_memory();
    (void)target.write(line_a, std::span<const u8>(plain_a));
    (void)target.write(line_b, std::span<const u8>(plain_b));
    tamper_fn();
    if (auth != nullptr) auth->drop_caches();
    const u64 before = faults();
    (void)target.read(line_a, buf);
    return faults() > before;
  };

  // --- clean baseline: the untampered round trip must never fault ----------
  report.clean_faulted = detected_by([] {}) || buf != plain_a;

  // --- spoof: flip ciphertext bits on the chip -----------------------------
  report.spoof_detected = detected_by([&] { chip.raw()[line_a + 3] ^= 0x40; });

  // --- splice: relocate B's line AND its authentication material -----------
  report.splice_detected = detected_by([&] {
    for (std::size_t i = 0; i < lb; ++i) chip.raw()[line_a + i] = chip.raw()[line_b + i];
    if (auth == nullptr) return;
    switch (auth->mode()) {
      case engine::auth_mode::mac: {
        const addr_t ta = auth->tag_addr(line_a);
        const addr_t tb = auth->tag_addr(line_b);
        for (std::size_t i = 0; i < auth->config().tag_bytes; ++i)
          chip.raw()[ta + i] = chip.raw()[tb + i];
        break;
      }
      case engine::auth_mode::hash_tree: {
        const u64 ia = (line_a - auth->config().base) / lb;
        const u64 ib = (line_b - auth->config().base) / lb;
        const addr_t na = auth->node_addr(0, ia);
        const addr_t nb = auth->node_addr(0, ib);
        for (std::size_t i = 0; i < auth->config().tag_bytes; ++i)
          chip.raw()[na + i] = chip.raw()[nb + i];
        break;
      }
      case engine::auth_mode::area:
        *auth->area_sideband(line_a) = *auth->area_sideband(line_b);
        break;
      case engine::auth_mode::none: break;
    }
  });

  // --- replay: roll line A and its authentication material back ------------
  if (auth != nullptr) auth->seal_from_memory(); // recover from the splice run
  (void)target.write(line_a, std::span<const u8>(plain_a));
  bytes stale_ct(lb);
  chip.read_bytes(line_a, stale_ct);
  bytes stale_auth;      // mac tag / whole stored tree / area sideband
  addr_t stale_base = 0; // external address the snapshot restores to
  if (auth != nullptr) switch (auth->mode()) {
      case engine::auth_mode::mac:
        stale_base = auth->tag_addr(line_a);
        stale_auth.resize(auth->config().tag_bytes);
        chip.read_bytes(stale_base, stale_auth);
        break;
      case engine::auth_mode::hash_tree:
        // Roll back every stored node: the strongest replay, beaten only
        // by the on-chip root.
        stale_base = auth->config().tag_base;
        stale_auth.resize(auth->tag_memory_bytes());
        chip.read_bytes(stale_base, stale_auth);
        break;
      case engine::auth_mode::area: stale_auth = *auth->area_sideband(line_a); break;
      case engine::auth_mode::none: break;
    }

  const bytes plain_a2 = pattern_line(lb, 0xCC);
  (void)target.write(line_a, std::span<const u8>(plain_a2)); // the current value

  chip.write_bytes(line_a, stale_ct); // the attacker's rollback
  if (auth != nullptr && !stale_auth.empty()) {
    if (auth->mode() == engine::auth_mode::area) *auth->area_sideband(line_a) = stale_auth;
    else chip.write_bytes(stale_base, stale_auth);
  }
  if (auth != nullptr) auth->drop_caches();

  const u64 before = faults();
  (void)target.read(line_a, buf);
  report.replay_detected = faults() > before;

  return report;
}

} // namespace buscrypt::attack
