#pragma once
/// \file known_plaintext.hpp
/// ECB's determinism, quantified: "a same data will be ciphered to the
/// same value; which is the main security weakness of that mode"
/// (Section 2.2). Two analyses:
///   - structural leakage: how many ciphertext blocks repeat (an attacker
///     sees the plaintext's block-level structure for free);
///   - dictionary attack: an attacker who knows some plaintext regions
///     builds a ct -> pt dictionary and decrypts every other occurrence.

#include "common/types.hpp"

#include <span>

namespace buscrypt::attack {

/// Census of an ECB ciphertext image.
struct ecb_leakage {
  std::size_t total_blocks = 0;
  std::size_t distinct_blocks = 0;
  std::size_t repeated_blocks = 0; ///< blocks occurring more than once

  /// Fraction of the image whose structure is exposed.
  [[nodiscard]] double exposure() const noexcept {
    return total_blocks == 0
               ? 0.0
               : static_cast<double>(repeated_blocks) / static_cast<double>(total_blocks);
  }
};

/// Analyse block repetition in \p ciphertext.
[[nodiscard]] ecb_leakage analyze_ecb(std::span<const u8> ciphertext,
                                      std::size_t block_size);

/// Dictionary attack: the attacker knows plaintext for
/// [known_off, known_off+known_len) of the image. Build the ct->pt block
/// dictionary from that window and decrypt whatever else it covers.
/// Returns the number of plaintext bytes recovered OUTSIDE the known window.
[[nodiscard]] std::size_t ecb_dictionary_attack(std::span<const u8> ciphertext,
                                                std::span<const u8> plaintext,
                                                std::size_t known_off,
                                                std::size_t known_len,
                                                std::size_t block_size);

} // namespace buscrypt::attack
