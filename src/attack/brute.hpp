#pragma once
/// \file brute.hpp
/// The "temporal problem" of Section 1: "the key must be long enough to
/// thwart the brute force attack ... a cryptosystem has a lifetime of at
/// most 10 years due to the increase in computer processing power
/// (Moore's law)". Two halves:
///   - an analytic work-factor model with Moore-accelerated key search,
///   - an empirical mini brute force on reduced-keyspace DES that the
///     tests run to anchor the model's left edge in measured reality.

#include "common/types.hpp"

#include <span>
#include <vector>

namespace buscrypt::attack {

/// Attacker compute model.
struct brute_force_model {
  double keys_per_second = 1e9;   ///< initial search rate (Class II rig, 2005)
  double doubling_months = 18.0;  ///< Moore's law period

  /// Years to exhaust a \p key_bits keyspace when the search rate doubles
  /// every doubling_months (integrates the growing rate).
  [[nodiscard]] double years_to_exhaust(unsigned key_bits) const;

  /// Years to cover half the keyspace (expected time to find the key).
  [[nodiscard]] double years_expected(unsigned key_bits) const {
    return years_to_exhaust(key_bits > 0 ? key_bits - 1 : 0);
  }
};

/// One row of the survey's implied lifetime table.
struct lifetime_row {
  unsigned key_bits;
  double years_expected;
  bool survives_10_years; ///< the paper's quoted lifetime bar
};

/// Expected-break-time rows for the given key sizes.
[[nodiscard]] std::vector<lifetime_row> lifetime_table(
    const brute_force_model& model, std::span<const unsigned> key_bits);

/// Empirical brute force against DES with all but \p unknown_bits of the
/// key known (the attacker refines a leaked key). Returns keys tried until
/// the (plaintext, ciphertext) pair matched; 0 on failure.
[[nodiscard]] u64 brute_force_des_reduced(std::span<const u8> known_key8,
                                          unsigned unknown_bits,
                                          std::span<const u8> plain8,
                                          std::span<const u8> cipher8);

} // namespace buscrypt::attack
