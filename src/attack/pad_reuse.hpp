#pragma once
/// \file pad_reuse.hpp
/// The two-time-pad failure: a stream EDU whose pad depends only on the
/// address produces IDENTICAL pads for every write to one location, so a
/// bus probe that captures two ciphertext versions of the same line gets
/// ct1 ^ ct2 == pt1 ^ pt2 — no key required. This is the attack AEGIS's
/// per-write nonces (and integrity_edu's versioned pads) exist to stop.

#include "common/types.hpp"

#include <span>

namespace buscrypt::attack {

/// XOR-combine two ciphertexts of the same location: the pads cancel when
/// they were reused. Returns pt1 ^ pt2.
[[nodiscard]] bytes xor_ciphertexts(std::span<const u8> ct1, std::span<const u8> ct2);

/// Given the pad-reuse XOR and one known plaintext, recover the other.
[[nodiscard]] bytes two_time_pad_recover(std::span<const u8> ct1,
                                         std::span<const u8> ct2,
                                         std::span<const u8> known_pt1);

/// Crib heuristic: fraction of printable-ASCII bytes — high values signal
/// a successful recovery of text-like data.
[[nodiscard]] double printable_fraction(std::span<const u8> data);

} // namespace buscrypt::attack
