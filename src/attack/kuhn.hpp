#pragma once
/// \file kuhn.hpp
/// Markus Kuhn's cipher instruction search attack on the DS5002FP [6], as
/// summarised by the survey: "The hacker circumvents the cryptographic
/// problem by finding a hole in the architecture processing and by
/// applying exhaustive attack (8-bit instruction -> 256 possibilities).
/// After having identified the MOV instruction, he dumped the external
/// memory content in clear form through the parallel-port."
///
/// The attacker model: physical access to the external memory chip (can
/// write arbitrary ciphertext bytes), the reset line, the address bus (a
/// logic analyser sees every fetch address) and the parallel port. The
/// cipher key never leaves the MCU; it is never learned — the attack
/// recovers per-address decryption TABLES, which is all the architecture
/// hole requires.
///
/// Stages (each exploits that one address has only 256 ciphertexts):
///  1. find the SJMP encoding at address 0 by exhaustive search: a
///     deviating third fetch address betrays a taken short jump, and the
///     jump target leaks the operand's plaintext -> full D(1,.) table;
///  2. find LJMP at 0 the same way (page-3 target signature) -> D(2,.);
///  3. chain: jump to k, plant a known SJMP, sweep its operand -> D(k+1,.);
///  4. plant a dump program (MOV DPTR / MOVC / MOV P1,A) encoded via the
///     recovered tables; the port emits the victim firmware in clear.

#include "attack/mcu8051.hpp"

#include <array>
#include <map>

namespace buscrypt::attack {

/// Cost accounting and outcome of the attack.
struct kuhn_result {
  bool success = false;
  std::size_t device_runs = 0;    ///< resets of the target
  std::size_t bytes_written = 0;  ///< ciphertext bytes injected
  std::size_t tables_recovered = 0; ///< addresses with full D(addr,.) known
  bytes dumped;                   ///< recovered victim plaintext
};

/// The attack harness.
class kuhn_attack {
 public:
  /// \param cipher  the on-chip cipher under attack (used only through the
  ///                device; the attack never calls it directly).
  /// \param ext_mem the external memory chip (ciphertext, writable).
  kuhn_attack(const crypto::byte_bus_cipher& cipher, bytes& ext_mem);

  /// Run the full attack and dump [victim_base, victim_base+len).
  [[nodiscard]] kuhn_result execute(addr_t victim_base, std::size_t victim_len);

  /// Recovered decryption table for \p addr (test hook); entries are
  /// plaintext values 0..255 or -1 when unknown.
  [[nodiscard]] const std::array<int, 256>* table(addr_t addr) const;

 private:
  /// One instrumented device run.
  [[nodiscard]] mcu_run probe(std::size_t max_steps);

  void poke(addr_t addr, u8 ct);
  /// Find c such that D(addr, c) == plain (table must be complete).
  [[nodiscard]] u8 encode(addr_t addr, u8 plain) const;
  /// Match an observed jump target against all 256 possible rel values.
  [[nodiscard]] int rel_from_target(addr_t jump_base, addr_t target) const;

  void learn_table1_and_sjmp0();
  void learn_table2_and_ljmp0();
  void learn_table_via_chain(addr_t k); ///< requires tables at 1,2,k
  void plant_ljmp0(addr_t target);

  mcu8051 dev_;
  bytes* mem_;
  kuhn_result stats_;
  std::map<addr_t, std::array<int, 256>> tables_;
  int sjmp0_ = -1; ///< ciphertext of SJMP at address 0
  int ljmp0_ = -1; ///< ciphertext of LJMP at address 0
};

} // namespace buscrypt::attack
