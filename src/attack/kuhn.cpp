#include "attack/kuhn.hpp"

#include <stdexcept>

namespace buscrypt::attack {

namespace {

/// Fill a fresh table with "unknown".
std::array<int, 256> empty_table() {
  std::array<int, 256> t{};
  t.fill(-1);
  return t;
}

} // namespace

kuhn_attack::kuhn_attack(const crypto::byte_bus_cipher& cipher, bytes& ext_mem)
    : dev_(cipher, ext_mem), mem_(&ext_mem) {
  if (ext_mem.size() < 0x800)
    throw std::invalid_argument("kuhn_attack: need >= 2 KiB of external memory");
}

mcu_run kuhn_attack::probe(std::size_t max_steps) {
  ++stats_.device_runs;
  return dev_.run(max_steps);
}

void kuhn_attack::poke(addr_t addr, u8 ct) {
  (*mem_)[addr % mem_->size()] = ct;
  ++stats_.bytes_written;
}

u8 kuhn_attack::encode(addr_t addr, u8 plain) const {
  const auto it = tables_.find(addr);
  if (it == tables_.end())
    throw std::logic_error("kuhn_attack: no table for address");
  for (int c = 0; c < 256; ++c)
    if (it->second[static_cast<std::size_t>(c)] == static_cast<int>(plain))
      return static_cast<u8>(c);
  throw std::logic_error("kuhn_attack: table incomplete");
}

int kuhn_attack::rel_from_target(addr_t jump_base, addr_t target) const {
  // target = (jump_base + signext(val)) mod mem_size for exactly one val.
  const addr_t m = mem_->size();
  for (int val = 0; val < 256; ++val) {
    const i64 rel = val < 128 ? val : val - 256;
    const addr_t expect =
        static_cast<addr_t>((static_cast<i64>(jump_base) + rel % static_cast<i64>(m) +
                             static_cast<i64>(m)) %
                            static_cast<i64>(m));
    if (expect == target) return val;
  }
  return -1;
}

const std::array<int, 256>* kuhn_attack::table(addr_t addr) const {
  const auto it = tables_.find(addr);
  return it == tables_.end() ? nullptr : &it->second;
}

void kuhn_attack::learn_table1_and_sjmp0() {
  // Stage 1: exhaustive search for a short jump at the reset vector.
  // Detection: the third fetch address deviates from the linear 0,1,2.
  for (int c0 = 0; c0 < 256 && sjmp0_ < 0; ++c0) {
    for (u8 c1 : {u8{0x00}, u8{0x55}}) { // two operands dodge rel == 0
      poke(0, static_cast<u8>(c0));
      poke(1, c1);
      for (addr_t a = 2; a < 8; ++a) poke(a, 0x00);
      const mcu_run r = probe(6);
      if (r.fetch_addrs.size() >= 3 && r.fetch_addrs[0] == 0 &&
          r.fetch_addrs[1] == 1 && r.fetch_addrs[2] != 2) {
        sjmp0_ = c0;
        break;
      }
    }
  }
  if (sjmp0_ < 0) throw std::runtime_error("kuhn: SJMP not found at address 0");

  // Operand sweep: each run leaks D(1, c1) through the jump target.
  auto& t1 = tables_.emplace(1, empty_table()).first->second;
  poke(0, static_cast<u8>(sjmp0_));
  for (int c1 = 0; c1 < 256; ++c1) {
    poke(1, static_cast<u8>(c1));
    const mcu_run r = probe(4);
    const int val = rel_from_target(2, r.fetch_addrs.at(2));
    if (val < 0) throw std::runtime_error("kuhn: unmatched SJMP target");
    t1[static_cast<std::size_t>(c1)] = val;
  }
  ++stats_.tables_recovered;
}

void kuhn_attack::learn_table2_and_ljmp0() {
  // Stage 2: long-jump search. With the hi operand pinned to plaintext
  // 0x03 via the recovered D(1,.) table, a taken LJMP lands in page 3 —
  // a signature nothing else in the ISA can produce on the 4th fetch.
  const u8 hi3 = encode(1, 0x03);
  for (int c0 = 0; c0 < 256 && ljmp0_ < 0; ++c0) {
    if (c0 == sjmp0_) continue;
    poke(0, static_cast<u8>(c0));
    poke(1, hi3);
    poke(2, 0x00);
    for (addr_t a = 3; a < 8; ++a) poke(a, 0x00);
    const mcu_run r = probe(6);
    if (r.fetch_addrs.size() >= 4 && r.fetch_addrs[2] == 2 &&
        r.fetch_addrs[3] >= 0x300 && r.fetch_addrs[3] <= 0x3FF) {
      ljmp0_ = c0;
    }
  }
  if (ljmp0_ < 0) throw std::runtime_error("kuhn: LJMP not found at address 0");

  // Operand sweep: target low byte leaks D(2, c2).
  auto& t2 = tables_.emplace(2, empty_table()).first->second;
  poke(0, static_cast<u8>(ljmp0_));
  poke(1, hi3);
  for (int c2 = 0; c2 < 256; ++c2) {
    poke(2, static_cast<u8>(c2));
    const mcu_run r = probe(4);
    const addr_t t = r.fetch_addrs.at(3);
    if ((t >> 8) != 3) throw std::runtime_error("kuhn: LJMP target corrupt");
    t2[static_cast<std::size_t>(c2)] = static_cast<int>(t & 0xFF);
  }
  ++stats_.tables_recovered;
}

void kuhn_attack::plant_ljmp0(addr_t target) {
  poke(0, static_cast<u8>(ljmp0_));
  poke(1, encode(1, static_cast<u8>(target >> 8)));
  poke(2, encode(2, static_cast<u8>(target & 0xFF)));
}

void kuhn_attack::learn_table_via_chain(addr_t k) {
  // Stage 3 at address k: LJMP 0 -> k, plant SJMP at k (encodable: the
  // table for k is already known), sweep its operand at k+1. Special case
  // k == 2: reach it with SJMP rel 0 from address 0 instead of LJMP
  // (whose operands would collide with address 2).
  std::size_t base_fetches; // fetches consumed before the SJMP opcode at k
  if (k == 2) {
    poke(0, static_cast<u8>(sjmp0_));
    poke(1, encode(1, 0x00)); // rel 0: falls through to address 2
    base_fetches = 2;
  } else {
    plant_ljmp0(k);
    base_fetches = 3;
  }
  poke(k, encode(k, op_sjmp));

  auto& tk = tables_.emplace(k + 1, empty_table()).first->second;
  for (int c = 0; c < 256; ++c) {
    poke(k + 1, static_cast<u8>(c));
    const mcu_run r = probe(6);
    // fetches: [prefix..., k (opcode), k+1 (operand), target]
    const addr_t target = r.fetch_addrs.at(base_fetches + 2);
    const int val = rel_from_target(k + 2, target);
    if (val < 0) throw std::runtime_error("kuhn: unmatched chained SJMP target");
    tk[static_cast<std::size_t>(c)] = val;
  }
  ++stats_.tables_recovered;
}

kuhn_result kuhn_attack::execute(addr_t victim_base, std::size_t victim_len) {
  // --- Phase 1: recover decryption tables for the scratch area ---------
  learn_table1_and_sjmp0();
  learn_table2_and_ljmp0();
  // Tables for 3..12: enough to host the dump program at 3..11.
  learn_table_via_chain(2); // learns D(3,.)
  for (addr_t k = 3; k <= 11; ++k) learn_table_via_chain(k); // D(4..12,.)

  // --- Phase 2: the parallel-port dump ---------------------------------
  // Program at 3: MOV DPTR,#v / CLR A / MOVC A,@A+DPTR / MOV P1,A / SJMP self
  plant_ljmp0(3);
  poke(3, encode(3, op_mov_dptr));
  poke(6, encode(6, op_clr_a));
  poke(7, encode(7, op_movc));
  poke(8, encode(8, op_mov_dir_a));
  poke(9, encode(9, 0x90)); // direct address of P1
  poke(10, encode(10, op_sjmp));
  poke(11, encode(11, 0xFE)); // rel -2: spin

  stats_.dumped.clear();
  stats_.dumped.reserve(victim_len);
  for (std::size_t i = 0; i < victim_len; ++i) {
    const addr_t v = victim_base + i;
    poke(4, encode(4, static_cast<u8>(v >> 8)));
    poke(5, encode(5, static_cast<u8>(v & 0xFF)));
    const mcu_run r = probe(8);
    if (r.port_writes.empty())
      throw std::runtime_error("kuhn: dump program produced no port output");
    stats_.dumped.push_back(r.port_writes.front());
  }
  stats_.success = true;
  return stats_;
}

} // namespace buscrypt::attack
