#include "attack/brute.hpp"

#include "crypto/des.hpp"

#include <cmath>

namespace buscrypt::attack {

double brute_force_model::years_to_exhaust(unsigned key_bits) const {
  // Keys searched by time t (years), with rate r0 * 2^(t/T):
  //   K(t) = r0 * T' * (2^(t/T) - 1) / ln 2,  T' = T in seconds.
  // Solve K(t) = 2^bits for t.
  const double seconds_per_year = 365.25 * 24 * 3600;
  const double t_double_years = doubling_months / 12.0;
  const double t_double_seconds = t_double_years * seconds_per_year;
  const double target = std::pow(2.0, static_cast<double>(key_bits));
  const double ln2 = std::log(2.0);

  // 2^(t/T) = 1 + target * ln2 / (r0 * T_seconds)
  const double arg = 1.0 + target * ln2 / (keys_per_second * t_double_seconds);
  return t_double_years * std::log2(arg);
}

std::vector<lifetime_row> lifetime_table(const brute_force_model& model,
                                         std::span<const unsigned> key_bits) {
  std::vector<lifetime_row> rows;
  rows.reserve(key_bits.size());
  for (unsigned bits : key_bits) {
    const double years = model.years_expected(bits);
    rows.push_back({bits, years, years > 10.0});
  }
  return rows;
}

u64 brute_force_des_reduced(std::span<const u8> known_key8, unsigned unknown_bits,
                            std::span<const u8> plain8, std::span<const u8> cipher8) {
  if (known_key8.size() != 8 || plain8.size() != 8 || cipher8.size() != 8 ||
      unknown_bits > 30)
    return 0;

  bytes key(known_key8.begin(), known_key8.end());
  const u64 limit = u64{1} << unknown_bits;
  std::array<u8, 8> out{};
  for (u64 guess = 0; guess < limit; ++guess) {
    // Overlay exactly unknown_bits guessed bits onto the low bytes of the
    // key, preserving everything else. DES ignores each byte's parity bit
    // (bit 0), so the guess occupies 7 data bits per byte, low bytes first.
    u64 g = guess;
    unsigned remaining = unknown_bits;
    for (std::size_t byte_idx = 0; remaining > 0 && byte_idx < 8; ++byte_idx) {
      const unsigned take = remaining < 7 ? remaining : 7;
      const u8 field_mask = static_cast<u8>(((1u << take) - 1) << 1);
      const u8 field = static_cast<u8>((g & ((1u << take) - 1)) << 1);
      key[7 - byte_idx] =
          static_cast<u8>((known_key8[7 - byte_idx] & ~field_mask) | field);
      g >>= take;
      remaining -= take;
    }
    const crypto::des candidate(key);
    candidate.encrypt_block(plain8, out);
    bool match = true;
    for (int i = 0; i < 8; ++i)
      if (out[static_cast<std::size_t>(i)] != cipher8[static_cast<std::size_t>(i)]) {
        match = false;
        break;
      }
    if (match) return guess + 1;
  }
  return 0;
}

} // namespace buscrypt::attack
