#pragma once
/// \file mcu8051.hpp
/// A minimal 8051-style microcontroller with DS5002FP-style bus encryption:
/// every external fetch goes through the byte cipher, both for code and for
/// MOVC table reads — exactly the architecture Markus Kuhn attacked [6].
/// The instruction subset is chosen so his attack is expressible:
/// observable port writes (the "parallel port"), short/long jumps whose
/// fetch patterns leak operand plaintext, and MOVC for the final dump.

#include "crypto/toy_cipher.hpp"

#include <functional>
#include <vector>

namespace buscrypt::attack {

/// Supported opcodes (plaintext encodings, 8051 values where they exist).
enum : u8 {
  op_nop = 0x00,      ///< 1 byte
  op_ljmp = 0x02,     ///< 3 bytes: LJMP hi lo
  op_inc_a = 0x04,    ///< 1 byte
  op_mov_a_imm = 0x74,///< 2 bytes: MOV A,#imm
  op_sjmp = 0x80,     ///< 2 bytes: SJMP rel (signed)
  op_mov_dptr = 0x90, ///< 3 bytes: MOV DPTR,#hi,#lo
  op_movc = 0x93,     ///< 1 byte: MOVC A,@A+DPTR (external, deciphered)
  op_clr_a = 0xE4,    ///< 1 byte
  op_mov_dir_a = 0xF5,///< 2 bytes: MOV direct,A (direct 0x90 = port P1)
};

/// Result of one bounded execution.
struct mcu_run {
  std::vector<addr_t> fetch_addrs; ///< the externally visible address bus
  std::vector<u8> port_writes;     ///< values written to P1 (the parallel port)
  std::size_t steps = 0;
};

/// The secured microcontroller. External memory holds CIPHERTEXT; the
/// on-chip cipher decrypts every fetch. The attacker owns ext_mem (it is
/// the external SRAM chip) but not the cipher key.
class mcu8051 {
 public:
  /// \param cipher   the on-chip bus cipher (key hidden inside).
  /// \param ext_mem  the external memory chip, attacker-writable ciphertext.
  mcu8051(const crypto::byte_bus_cipher& cipher, bytes& ext_mem)
      : cipher_(&cipher), mem_(&ext_mem) {}

  /// Reset and execute at most \p max_steps instructions from address 0.
  [[nodiscard]] mcu_run run(std::size_t max_steps) const;

 private:
  [[nodiscard]] u8 read_plain(addr_t addr) const;

  const crypto::byte_bus_cipher* cipher_;
  bytes* mem_;
};

} // namespace buscrypt::attack
