#pragma once
/// \file tamper.hpp
/// Active (integrity) attacks on external memory — the threat the survey's
/// conclusion defers to future work: "thwart attacks based on the
/// modification of the fetched instructions". The canonical trio:
///
///   spoof  — overwrite a line with chosen/garbled ciphertext;
///   splice — relocate a VALID (ciphertext, tag) pair to another address;
///   replay — restore a STALE (ciphertext, tag) pair at its own address.
///
/// Run against edu::integrity_edu at each protection level to produce the
/// detection matrix (bench/tab6_integrity).

#include "edu/integrity_edu.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "sim/dram.hpp"

#include <string>

namespace buscrypt::attack {

/// Which tampers the engine caught.
struct tamper_report {
  bool spoof_detected = false;
  bool splice_detected = false;
  bool replay_detected = false;
  bool spoof_corrupted_data = false;  ///< plaintext seen by the CPU changed
  bool replay_restored_stale = false; ///< CPU read the stale value verbatim
};

/// Execute the three tampers against \p target whose external memory chip
/// is \p chip. \p line_a and \p line_b must be distinct line-aligned
/// addresses inside the protected range.
[[nodiscard]] tamper_report run_tamper_suite(edu::integrity_edu& target,
                                             sim::dram& chip, addr_t line_a,
                                             addr_t line_b);

/// The same trio against the production keyslot engine, whatever
/// auth scheme guards the lines' context (none, mac, area, hash_tree).
/// Detection = the engine's integrity_faults counter moved on the fetch;
/// the attacker also relocates/rolls back the matching authentication
/// material (mac tag bytes, tree nodes, AREA widened-memory cells) and
/// power-cycles the volatile caches before fetching — the strongest
/// Class-II position each scheme claims to resist.
struct engine_tamper_report {
  bool clean_faulted = false;   ///< any false fault on the untampered run
  bool spoof_detected = false;  ///< flipped ciphertext bits caught
  bool splice_detected = false; ///< line B (+ auth material) over line A caught
  bool replay_detected = false; ///< stale (line, auth material) rollback caught
};

/// \p line_a and \p line_b must be distinct data-unit-aligned addresses in
/// the same encryption context of \p target (inside the authenticated
/// window when one is attached); \p chip is the raw external part.
[[nodiscard]] engine_tamper_report
run_engine_tamper_suite(engine::bus_encryption_engine& target, sim::dram& chip,
                        addr_t line_a, addr_t line_b);

/// The update-lifecycle replay classes (ISSUE: the IEEE-1735 lesson — the
/// *protocol*, not the cipher, is what attackers break). Each replay is
/// driven against a fresh crash-safe update_agent rig under \p mode/\p
/// backend and must end with the attack *detected*: the device refuses the
/// attacker's outcome and still boots an exact, authorised image.
///
///   downgrade          — replay a stale (older-version) signed package;
///   partial-flash      — cut power mid-install, then try to boot what the
///                        attacker hopes is a half-programmed slot;
///   interrupted-update — cut power mid-update, flip staged-image bits
///                        while the device is dark, re-offer the package;
///   journal-tamper     — rewrite a journal record while the device is
///                        dark, then let recovery run.
struct update_tamper_report {
  bool downgrade_detected = false;          ///< stale version fail-stopped
  bool partial_flash_detected = false;      ///< no half-programmed boot
  bool interrupted_update_detected = false; ///< planted flips never committed
  bool journal_tamper_detected = false;     ///< MAC chain break fail-stopped
  [[nodiscard]] bool all_detected() const noexcept {
    return downgrade_detected && partial_flash_detected &&
           interrupted_update_detected && journal_tamper_detected;
  }
};

/// Run the four update replays on a self-contained rig (engine + fault
/// injector + update_agent). Deterministic in (\p mode, \p backend, \p
/// seed). \p backend must be auth-compatible (AREA needs a block mode).
[[nodiscard]] update_tamper_report
run_update_tamper_suite(engine::auth_mode mode, const std::string& backend,
                        u64 seed);

} // namespace buscrypt::attack
