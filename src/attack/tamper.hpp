#pragma once
/// \file tamper.hpp
/// Active (integrity) attacks on external memory — the threat the survey's
/// conclusion defers to future work: "thwart attacks based on the
/// modification of the fetched instructions". The canonical trio:
///
///   spoof  — overwrite a line with chosen/garbled ciphertext;
///   splice — relocate a VALID (ciphertext, tag) pair to another address;
///   replay — restore a STALE (ciphertext, tag) pair at its own address.
///
/// Run against edu::integrity_edu at each protection level to produce the
/// detection matrix (bench/tab6_integrity).

#include "edu/integrity_edu.hpp"
#include "engine/bus_encryption_engine.hpp"
#include "sim/dram.hpp"

namespace buscrypt::attack {

/// Which tampers the engine caught.
struct tamper_report {
  bool spoof_detected = false;
  bool splice_detected = false;
  bool replay_detected = false;
  bool spoof_corrupted_data = false;  ///< plaintext seen by the CPU changed
  bool replay_restored_stale = false; ///< CPU read the stale value verbatim
};

/// Execute the three tampers against \p target whose external memory chip
/// is \p chip. \p line_a and \p line_b must be distinct line-aligned
/// addresses inside the protected range.
[[nodiscard]] tamper_report run_tamper_suite(edu::integrity_edu& target,
                                             sim::dram& chip, addr_t line_a,
                                             addr_t line_b);

/// The same trio against the production keyslot engine, whatever
/// auth scheme guards the lines' context (none, mac, area, hash_tree).
/// Detection = the engine's integrity_faults counter moved on the fetch;
/// the attacker also relocates/rolls back the matching authentication
/// material (mac tag bytes, tree nodes, AREA widened-memory cells) and
/// power-cycles the volatile caches before fetching — the strongest
/// Class-II position each scheme claims to resist.
struct engine_tamper_report {
  bool clean_faulted = false;   ///< any false fault on the untampered run
  bool spoof_detected = false;  ///< flipped ciphertext bits caught
  bool splice_detected = false; ///< line B (+ auth material) over line A caught
  bool replay_detected = false; ///< stale (line, auth material) rollback caught
};

/// \p line_a and \p line_b must be distinct data-unit-aligned addresses in
/// the same encryption context of \p target (inside the authenticated
/// window when one is attached); \p chip is the raw external part.
[[nodiscard]] engine_tamper_report
run_engine_tamper_suite(engine::bus_encryption_engine& target, sim::dram& chip,
                        addr_t line_a, addr_t line_b);

} // namespace buscrypt::attack
