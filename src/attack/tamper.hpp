#pragma once
/// \file tamper.hpp
/// Active (integrity) attacks on external memory — the threat the survey's
/// conclusion defers to future work: "thwart attacks based on the
/// modification of the fetched instructions". The canonical trio:
///
///   spoof  — overwrite a line with chosen/garbled ciphertext;
///   splice — relocate a VALID (ciphertext, tag) pair to another address;
///   replay — restore a STALE (ciphertext, tag) pair at its own address.
///
/// Run against edu::integrity_edu at each protection level to produce the
/// detection matrix (bench/tab6_integrity).

#include "edu/integrity_edu.hpp"
#include "sim/dram.hpp"

namespace buscrypt::attack {

/// Which tampers the engine caught.
struct tamper_report {
  bool spoof_detected = false;
  bool splice_detected = false;
  bool replay_detected = false;
  bool spoof_corrupted_data = false;  ///< plaintext seen by the CPU changed
  bool replay_restored_stale = false; ///< CPU read the stale value verbatim
};

/// Execute the three tampers against \p target whose external memory chip
/// is \p chip. \p line_a and \p line_b must be distinct line-aligned
/// addresses inside the protected range.
[[nodiscard]] tamper_report run_tamper_suite(edu::integrity_edu& target,
                                             sim::dram& chip, addr_t line_a,
                                             addr_t line_b);

} // namespace buscrypt::attack
