#include "attack/mcu8051.hpp"

namespace buscrypt::attack {

u8 mcu8051::read_plain(addr_t addr) const {
  const addr_t a = addr % mem_->size();
  return cipher_->decrypt_byte(a, (*mem_)[a]);
}

mcu_run mcu8051::run(std::size_t max_steps) const {
  mcu_run out;
  addr_t pc = 0;
  u8 a = 0;
  u16 dptr = 0;

  auto fetch = [&]() -> u8 {
    out.fetch_addrs.push_back(pc % mem_->size());
    const u8 v = read_plain(pc);
    ++pc;
    return v;
  };

  for (std::size_t step = 0; step < max_steps; ++step) {
    ++out.steps;
    const u8 op = fetch();
    switch (op) {
      case op_nop:
        break;
      case op_clr_a:
        a = 0;
        break;
      case op_inc_a:
        ++a;
        break;
      case op_mov_a_imm:
        a = fetch();
        break;
      case op_sjmp: {
        const auto rel = static_cast<std::int8_t>(fetch());
        pc = static_cast<addr_t>(static_cast<i64>(pc) + rel);
        break;
      }
      case op_ljmp: {
        const u8 hi = fetch();
        const u8 lo = fetch();
        pc = (addr_t{hi} << 8) | lo;
        break;
      }
      case op_mov_dptr: {
        const u8 hi = fetch();
        const u8 lo = fetch();
        dptr = static_cast<u16>((u16{hi} << 8) | lo);
        break;
      }
      case op_movc:
        // External table read: deciphered by the bus cipher like any fetch.
        a = read_plain(static_cast<addr_t>(dptr) + a);
        break;
      case op_mov_dir_a: {
        const u8 direct = fetch();
        if (direct == 0x90) out.port_writes.push_back(a); // P1: visible!
        break;
      }
      default:
        // Unimplemented opcodes execute as 1-byte no-ops.
        break;
    }
  }
  return out;
}

} // namespace buscrypt::attack
