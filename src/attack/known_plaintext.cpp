#include "attack/known_plaintext.hpp"

#include <string>
#include <unordered_map>

namespace buscrypt::attack {

namespace {

std::string block_key(std::span<const u8> data, std::size_t off, std::size_t n) {
  return std::string(reinterpret_cast<const char*>(&data[off]), n);
}

} // namespace

ecb_leakage analyze_ecb(std::span<const u8> ciphertext, std::size_t block_size) {
  ecb_leakage out;
  if (block_size == 0) return out;
  std::unordered_map<std::string, std::size_t> census;
  for (std::size_t off = 0; off + block_size <= ciphertext.size(); off += block_size) {
    ++census[block_key(ciphertext, off, block_size)];
    ++out.total_blocks;
  }
  out.distinct_blocks = census.size();
  for (const auto& [blk, count] : census)
    if (count > 1) out.repeated_blocks += count;
  return out;
}

std::size_t ecb_dictionary_attack(std::span<const u8> ciphertext,
                                  std::span<const u8> plaintext,
                                  std::size_t known_off, std::size_t known_len,
                                  std::size_t block_size) {
  std::unordered_map<std::string, std::string> dict;
  const std::size_t known_end = known_off + known_len;
  for (std::size_t off = known_off; off + block_size <= known_end; off += block_size) {
    dict.emplace(block_key(ciphertext, off, block_size),
                 block_key(plaintext, off, block_size));
  }

  std::size_t recovered = 0;
  for (std::size_t off = 0; off + block_size <= ciphertext.size(); off += block_size) {
    if (off >= known_off && off < known_end) continue;
    const auto it = dict.find(block_key(ciphertext, off, block_size));
    if (it == dict.end()) continue;
    // The dictionary's answer must actually be right (it is, under ECB).
    if (it->second == block_key(plaintext, off, block_size)) recovered += block_size;
  }
  return recovered;
}

} // namespace buscrypt::attack
