#pragma once
/// \file probe.hpp
/// Board-level bus probing analysis: what does the logic analyser on the
/// processor-memory bus actually learn? Used by the tests to prove that
/// with an EDU in place the traffic is ciphertext (near-zero plaintext
/// visibility), and without one the whole working set leaks.

#include "sim/bus.hpp"

#include <span>

namespace buscrypt::attack {

/// Reconstruct the attacker's best-effort memory image from a probe log:
/// the last value observed for each byte address (reads and writes both
/// leak). Unobserved bytes are left as \p fill.
[[nodiscard]] bytes reconstruct_from_probe(const sim::recording_probe& probe,
                                           std::size_t image_size, u8 fill = 0);

/// Fraction of \p secret bytes the bus traffic exposed verbatim at their
/// own addresses (1.0 == the probe saw the whole secret in clear).
[[nodiscard]] double leakage_fraction(const sim::recording_probe& probe,
                                      addr_t secret_base,
                                      std::span<const u8> secret);

/// Count of probe beats whose data contains \p pattern as a substring —
/// cheap signature scan an attacker would run first.
[[nodiscard]] std::size_t pattern_sightings(const sim::recording_probe& probe,
                                            std::span<const u8> pattern);

} // namespace buscrypt::attack
