#include "attack/trace_analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace buscrypt::attack {

namespace {

/// Accumulates one profile beat by beat; finish() runs the whole-trace
/// analyses (hot spot, loop period). Lets the per-master breakdown make a
/// single pass over the probe log however many masters it carries.
struct profile_builder {
  trace_profile p;
  std::unordered_map<addr_t, u64> census;
  std::vector<addr_t> read_lines;

  void add(const sim::bus_beat& beat, std::size_t line_size) {
    const addr_t line = beat.addr - beat.addr % line_size;
    if (beat.write) {
      ++p.write_beats;
    } else {
      ++p.read_beats;
      // Collapse the beats of one burst into a single line visit so the
      // period is measured in lines, not bus beats.
      if (read_lines.empty() || read_lines.back() != line)
        read_lines.push_back(line);
    }
    ++census[line];
  }

  [[nodiscard]] trace_profile finish(std::size_t max_period) {
    p.distinct_lines = census.size();
    for (const auto& [line, hits] : census) {
      if (hits > p.hottest_hits) {
        p.hottest_hits = hits;
        p.hottest_line = line;
      }
    }
    // Loop detection: smallest period q such that >= 90% of positions
    // agree with their q-shifted neighbour.
    const std::size_t n = read_lines.size();
    if (n >= 16) {
      for (std::size_t q = 1; q <= max_period && q * 2 <= n; ++q) {
        std::size_t agree = 0;
        const std::size_t checks = n - q;
        for (std::size_t i = 0; i < checks; ++i)
          if (read_lines[i] == read_lines[i + q]) ++agree;
        if (static_cast<double>(agree) >= 0.9 * static_cast<double>(checks)) {
          p.loop_period = q;
          break;
        }
      }
    }
    return p;
  }
};

/// One pass over the probe, keeping only the beats \p master drove — or
/// every beat when the filter is the reserved sim::any_master sentinel
/// (which the arbiter guarantees never appears on the bus as a real id).
trace_profile profile_filtered(const sim::recording_probe& probe,
                               std::size_t line_size, std::size_t max_period,
                               sim::master_id master) {
  if (line_size == 0) return {};
  profile_builder b;
  b.read_lines.reserve(probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const sim::bus_beat& beat = probe[i];
    if (master != sim::any_master && beat.master != master) continue;
    b.add(beat, line_size);
  }
  return b.finish(max_period);
}

} // namespace

trace_profile profile_bus_trace(const sim::recording_probe& probe,
                                std::size_t line_size, std::size_t max_period) {
  return profile_filtered(probe, line_size, max_period, sim::any_master);
}

std::vector<sim::master_id> masters_in_trace(const sim::recording_probe& probe) {
  std::vector<sim::master_id> ids;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const sim::master_id m = probe[i].master;
    if (std::find(ids.begin(), ids.end(), m) == ids.end()) ids.push_back(m);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

trace_profile profile_master_trace(const sim::recording_probe& probe,
                                   sim::master_id master, std::size_t line_size,
                                   std::size_t max_period) {
  return profile_filtered(probe, line_size, max_period, master);
}

std::vector<std::pair<sim::master_id, trace_profile>>
per_master_profiles(const sim::recording_probe& probe, std::size_t line_size,
                    std::size_t max_period) {
  std::vector<std::pair<sim::master_id, trace_profile>> out;
  if (line_size == 0) return out;
  // Single pass: bucket beats into one builder per master as they stream
  // by (probe logs from throughput runs hold millions of beats; few
  // masters, so the bucket scan is cheap).
  std::vector<std::pair<sim::master_id, profile_builder>> builders;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const sim::bus_beat& beat = probe[i];
    profile_builder* b = nullptr;
    for (auto& [id, builder] : builders)
      if (id == beat.master) {
        b = &builder;
        break;
      }
    if (b == nullptr) b = &builders.emplace_back(beat.master, profile_builder{}).second;
    b->add(beat, line_size);
  }
  std::sort(builders.begin(), builders.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.reserve(builders.size());
  for (auto& [id, builder] : builders)
    out.emplace_back(id, builder.finish(max_period));
  return out;
}

} // namespace buscrypt::attack
