#include "attack/trace_analysis.hpp"

#include <unordered_map>
#include <vector>

namespace buscrypt::attack {

trace_profile profile_bus_trace(const sim::recording_probe& probe,
                                std::size_t line_size, std::size_t max_period) {
  trace_profile out;
  if (line_size == 0) return out;

  std::unordered_map<addr_t, u64> census;
  std::vector<addr_t> read_lines;
  read_lines.reserve(probe.size());

  for (std::size_t i = 0; i < probe.size(); ++i) {
    const sim::bus_beat& beat = probe[i];
    const addr_t line = beat.addr - beat.addr % line_size;
    if (beat.write) {
      ++out.write_beats;
    } else {
      ++out.read_beats;
      // Collapse the beats of one burst into a single line visit so the
      // period is measured in lines, not bus beats.
      if (read_lines.empty() || read_lines.back() != line)
        read_lines.push_back(line);
    }
    ++census[line];
  }
  out.distinct_lines = census.size();
  for (const auto& [line, hits] : census) {
    if (hits > out.hottest_hits) {
      out.hottest_hits = hits;
      out.hottest_line = line;
    }
  }

  // Loop detection: smallest period p such that >= 90% of positions agree
  // with their p-shifted neighbour.
  const std::size_t n = read_lines.size();
  if (n >= 16) {
    for (std::size_t p = 1; p <= max_period && p * 2 <= n; ++p) {
      std::size_t agree = 0;
      const std::size_t checks = n - p;
      for (std::size_t i = 0; i < checks; ++i)
        if (read_lines[i] == read_lines[i + p]) ++agree;
      if (static_cast<double>(agree) >= 0.9 * static_cast<double>(checks)) {
        out.loop_period = p;
        break;
      }
    }
  }
  return out;
}

} // namespace buscrypt::attack
