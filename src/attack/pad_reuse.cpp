#include "attack/pad_reuse.hpp"

#include <cctype>
#include <stdexcept>

namespace buscrypt::attack {

bytes xor_ciphertexts(std::span<const u8> ct1, std::span<const u8> ct2) {
  if (ct1.size() != ct2.size())
    throw std::invalid_argument("xor_ciphertexts: length mismatch");
  bytes out(ct1.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<u8>(ct1[i] ^ ct2[i]);
  return out;
}

bytes two_time_pad_recover(std::span<const u8> ct1, std::span<const u8> ct2,
                           std::span<const u8> known_pt1) {
  const bytes diff = xor_ciphertexts(ct1, ct2);
  if (known_pt1.size() != diff.size())
    throw std::invalid_argument("two_time_pad_recover: length mismatch");
  bytes out(diff.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<u8>(diff[i] ^ known_pt1[i]);
  return out;
}

double printable_fraction(std::span<const u8> data) {
  if (data.empty()) return 0.0;
  std::size_t printable = 0;
  for (u8 b : data)
    if (std::isprint(b) || b == '\n' || b == '\t') ++printable;
  return static_cast<double>(printable) / static_cast<double>(data.size());
}

} // namespace buscrypt::attack
