#pragma once
/// \file trace_analysis.hpp
/// Address-bus leakage. Even a perfect data cipher leaves the ADDRESS
/// lines in clear (only the DS5002FP family scrambled them): a probe
/// learns the working set, the read/write mix, hot spots, and loop
/// structure — "observing ... system execution can be done through simple
/// board-level probing" (Section 1). These analyses quantify what stays
/// visible through every EDU in the library.
///
/// On a multi-master bus the master-id lines (AHB HMASTER-style, carried
/// on sim::bus_beat::master) leak *more*: an attacker separates the CPU's
/// fetch stream from the DMA engine's bulk transfers and the peripheral's
/// polling loop, profiling each master's working set independently instead
/// of conflating the interleaved streams.

#include "sim/bus.hpp"

#include <vector>

namespace buscrypt::attack {

/// What the address trace alone reveals.
struct trace_profile {
  u64 read_beats = 0;
  u64 write_beats = 0;
  std::size_t distinct_lines = 0; ///< working-set size in lines
  addr_t hottest_line = 0;
  u64 hottest_hits = 0;
  std::size_t loop_period = 0;    ///< dominant period in line-fetch sequence, 0 = none

  [[nodiscard]] double write_fraction() const noexcept {
    const u64 total = read_beats + write_beats;
    return total == 0 ? 0.0 : static_cast<double>(write_beats) / static_cast<double>(total);
  }
};

/// Profile a recorded bus trace at \p line_size granularity, all masters
/// conflated (the single-master view). Loop period search is capped at
/// \p max_period.
[[nodiscard]] trace_profile profile_bus_trace(const sim::recording_probe& probe,
                                              std::size_t line_size,
                                              std::size_t max_period = 2048);

/// Distinct master ids observed in the trace, ascending.
[[nodiscard]] std::vector<sim::master_id> masters_in_trace(const sim::recording_probe& probe);

/// Profile only the beats \p master drove — per-master attribution of an
/// interleaved multi-master trace.
[[nodiscard]] trace_profile profile_master_trace(const sim::recording_probe& probe,
                                                 sim::master_id master,
                                                 std::size_t line_size,
                                                 std::size_t max_period = 2048);

/// One (master, profile) pair per master seen in the trace, ascending by
/// master id — the full per-master breakdown an analyser produces.
[[nodiscard]] std::vector<std::pair<sim::master_id, trace_profile>>
per_master_profiles(const sim::recording_probe& probe, std::size_t line_size,
                    std::size_t max_period = 2048);

} // namespace buscrypt::attack
