#pragma once
/// \file trace_analysis.hpp
/// Address-bus leakage. Even a perfect data cipher leaves the ADDRESS
/// lines in clear (only the DS5002FP family scrambled them): a probe
/// learns the working set, the read/write mix, hot spots, and loop
/// structure — "observing ... system execution can be done through simple
/// board-level probing" (Section 1). These analyses quantify what stays
/// visible through every EDU in the library.

#include "sim/bus.hpp"

namespace buscrypt::attack {

/// What the address trace alone reveals.
struct trace_profile {
  u64 read_beats = 0;
  u64 write_beats = 0;
  std::size_t distinct_lines = 0; ///< working-set size in lines
  addr_t hottest_line = 0;
  u64 hottest_hits = 0;
  std::size_t loop_period = 0;    ///< dominant period in line-fetch sequence, 0 = none

  [[nodiscard]] double write_fraction() const noexcept {
    const u64 total = read_beats + write_beats;
    return total == 0 ? 0.0 : static_cast<double>(write_beats) / static_cast<double>(total);
  }
};

/// Profile a recorded bus trace at \p line_size granularity. Loop period
/// search is capped at \p max_period.
[[nodiscard]] trace_profile profile_bus_trace(const sim::recording_probe& probe,
                                              std::size_t line_size,
                                              std::size_t max_period = 2048);

} // namespace buscrypt::attack
