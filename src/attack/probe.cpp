#include "attack/probe.hpp"

#include <algorithm>

namespace buscrypt::attack {

bytes reconstruct_from_probe(const sim::recording_probe& probe,
                             std::size_t image_size, u8 fill) {
  bytes image(image_size, fill);
  for (std::size_t b = 0; b < probe.size(); ++b) {
    const sim::bus_beat& beat = probe[b];
    for (std::size_t i = 0; i < beat.data.size(); ++i) {
      const addr_t a = beat.addr + i;
      if (a < image_size) image[a] = beat.data[i];
    }
  }
  return image;
}

double leakage_fraction(const sim::recording_probe& probe, addr_t secret_base,
                        std::span<const u8> secret) {
  if (secret.empty()) return 0.0;
  const bytes seen = reconstruct_from_probe(probe, secret_base + secret.size(), 0);
  // Count matches only where the probe actually observed traffic.
  std::vector<bool> observed(secret_base + secret.size(), false);
  for (std::size_t b = 0; b < probe.size(); ++b) {
    const sim::bus_beat& beat = probe[b];
    for (std::size_t i = 0; i < beat.data.size(); ++i)
      if (beat.addr + i < observed.size()) observed[beat.addr + i] = true;
  }

  std::size_t matches = 0;
  for (std::size_t i = 0; i < secret.size(); ++i)
    if (observed[secret_base + i] && seen[secret_base + i] == secret[i]) ++matches;
  return static_cast<double>(matches) / static_cast<double>(secret.size());
}

std::size_t pattern_sightings(const sim::recording_probe& probe,
                              std::span<const u8> pattern) {
  if (pattern.empty()) return 0;
  std::size_t hits = 0;
  for (std::size_t b = 0; b < probe.size(); ++b) {
    const sim::bus_beat& beat = probe[b];
    auto it = beat.data.begin();
    while ((it = std::search(it, beat.data.end(), pattern.begin(), pattern.end())) !=
           beat.data.end()) {
      ++hits;
      ++it;
    }
  }
  return hits;
}

} // namespace buscrypt::attack
