#pragma once
/// \file birthday.hpp
/// The birthday attack the survey raises against AEGIS's IV scheme: with a
/// b-bit *random* vector in the IV, two lines collide after ~sqrt(2^b)
/// writes, leaking XOR relations between plaintexts; replacing the random
/// vector by a *counter* removes collisions entirely until wrap-around.

#include "common/rng.hpp"

#include <vector>

namespace buscrypt::attack {

/// Monte-Carlo: draw uniformly random \p bits-bit nonces until one repeats.
/// Returns the number of draws at the first collision.
[[nodiscard]] u64 draws_until_collision(rng& r, unsigned bits);

/// Analytic expectation of draws_until_collision: ~ sqrt(pi/2 * 2^bits).
[[nodiscard]] double expected_birthday_draws(unsigned bits);

/// Counter nonces: first collision happens exactly at 2^bits + 1 draws
/// (wrap); returned for the comparison table.
[[nodiscard]] double counter_collision_draws(unsigned bits);

/// Repeated Monte-Carlo mean over \p trials runs.
[[nodiscard]] double mean_draws_until_collision(rng& r, unsigned bits, unsigned trials);

} // namespace buscrypt::attack
