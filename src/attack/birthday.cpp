#include "attack/birthday.hpp"

#include <cmath>
#include <unordered_set>

namespace buscrypt::attack {

u64 draws_until_collision(rng& r, unsigned bits) {
  const u64 mask = bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1;
  std::unordered_set<u64> seen;
  for (u64 draws = 1;; ++draws) {
    const u64 v = r.next_u64() & mask;
    if (!seen.insert(v).second) return draws;
  }
}

double expected_birthday_draws(unsigned bits) {
  return std::sqrt(3.14159265358979323846 / 2.0 *
                   std::pow(2.0, static_cast<double>(bits)));
}

double counter_collision_draws(unsigned bits) {
  return std::pow(2.0, static_cast<double>(bits)) + 1.0;
}

double mean_draws_until_collision(rng& r, unsigned bits, unsigned trials) {
  double sum = 0.0;
  for (unsigned t = 0; t < trials; ++t)
    sum += static_cast<double>(draws_until_collision(r, bits));
  return trials == 0 ? 0.0 : sum / trials;
}

} // namespace buscrypt::attack
