#include "engine/churn.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <stdexcept>

namespace buscrypt::engine {

zipf_sampler::zipf_sampler(std::size_t n, double s, u64 seed) : rng_(seed) {
  if (n == 0) throw std::invalid_argument("zipf_sampler: need at least one rank");
  if (s < 0.0) throw std::invalid_argument("zipf_sampler: negative skew");
  cum_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cum_[r] = total;
  }
}

std::size_t zipf_sampler::next() {
  // 53 uniform bits -> [0, 1) -> a point on the cumulative weight line.
  const double u = static_cast<double>(rng_.next_u64() >> 11) * 0x1.0p-53;
  const double target = u * cum_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
  const std::size_t r = static_cast<std::size_t>(it - cum_.begin());
  return r < cum_.size() ? r : cum_.size() - 1;
}

std::string churn_config::label() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s/p%u/z%.2f/c%zu",
                std::string(slot_policy_name(policy)).c_str(), slots, zipf_s,
                contexts);
  return buf;
}

bool churn_result::sim_equal(const churn_result& o) const noexcept {
  return label == o.label && ops == o.ops && fallbacks == o.fallbacks &&
         bytes == o.bytes && total_cycles == o.total_cycles &&
         stall_cycles == o.stall_cycles && draw_fnv == o.draw_fnv &&
         slots.hits == o.slots.hits && slots.programs == o.slots.programs &&
         slots.cold_programs == o.slots.cold_programs &&
         slots.reprograms == o.slots.reprograms &&
         slots.prefetch_programs == o.slots.prefetch_programs &&
         slots.evictions == o.slots.evictions && slots.denials == o.slots.denials &&
         slots.acquires == o.slots.acquires &&
         slots.occupancy_acc == o.slots.occupancy_acc;
}

namespace {

void fnv_accumulate(u64& h, u64 v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x00000100000001B3ULL;
  }
}

} // namespace

churn_result run_churn(const churn_config& cfg) {
  const auto t0 = std::chrono::steady_clock::now();

  const backend_registry& registry = backend_registry::builtin();
  const cipher_backend& backend = registry.at(cfg.backend);
  std::size_t key_len = 16;
  if (!backend.key_len_ok(key_len)) {
    for (std::size_t len = 1; len <= 64; ++len)
      if (backend.key_len_ok(len)) {
        key_len = len;
        break;
      }
  }

  keyslot_manager mgr(registry, cfg.slots, cfg.policy);
  zipf_sampler draws(cfg.contexts, cfg.zipf_s, cfg.seed ^ 0x21BF5EEDULL);

  churn_result r;
  r.label = cfg.label();
  r.draw_fnv = 0xCBF29CE484222325ULL;

  // One data unit of seed-derived payload, transformed in place each op
  // so every cell does real crypto work per acquire.
  rng payload_rng(cfg.seed ^ 0xDA7AULL);
  bytes unit = payload_rng.random_bytes(cfg.data_unit);
  bytes out(cfg.data_unit);

  std::deque<int> held; // the in_flight most recent leases, oldest first

  for (std::size_t op = 0; op < cfg.ops; ++op) {
    const std::size_t id = draws.next();
    fnv_accumulate(r.draw_fnv, static_cast<u64>(id));

    rng key_rng(cfg.seed ^ (0x6B5EEDULL + static_cast<u64>(id)));
    keyslot_key k{cfg.backend, key_rng.random_bytes(key_len), cfg.data_unit};

    const keyslot_stats& ks = mgr.stats();
    const u64 demand_before = ks.cold_programs + ks.reprograms;
    const int slot = mgr.acquire(k);

    cycles cost = 0;
    if (slot == keyslot_manager::no_slot) {
      // Pool pinned out: software one-shot cipher, penalty multiplier —
      // the blk-crypto-fallback path, costed as the engine costs it.
      ++r.fallbacks;
      const std::unique_ptr<keyed_cipher> sw = backend.make_keyed(k.key);
      sw->encrypt_unit(static_cast<u64>(id), unit, out);
      cost = sw->unit_cost(cfg.data_unit, true) * cfg.fallback_penalty;
    } else {
      if (ks.cold_programs + ks.reprograms != demand_before) {
        cost += cfg.slot_program_cycles;
        r.stall_cycles += cfg.slot_program_cycles;
      }
      keyed_cipher& kc = mgr.keyed(slot);
      kc.encrypt_unit(static_cast<u64>(id), unit, out);
      cost += kc.unit_cost(cfg.data_unit, true);
      held.push_back(slot);
      while (held.size() > cfg.in_flight) {
        mgr.release(held.front());
        held.pop_front();
      }
    }
    r.total_cycles += cost;
    r.bytes += cfg.data_unit;
    ++r.ops;
  }

  for (const int slot : held) mgr.release(slot);
  r.slots = mgr.stats();
  r.host_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

} // namespace buscrypt::engine
