#include "engine/memory_authenticator.hpp"

#include "common/bitops.hpp"
#include "crypto/mac.hpp"

#include <algorithm>
#include <stdexcept>

namespace buscrypt::engine {

bool parse_auth_mode(std::string_view name, auth_mode& out) noexcept {
  for (const auth_mode m : all_auth_modes)
    if (name == auth_mode_name(m)) {
      out = m;
      return true;
    }
  return false;
}

namespace {

/// Node-cache key: stored tree levels stay tiny (< 2^8) and node indices
/// far below 2^56, so one u64 addresses the whole (level, index) space.
[[nodiscard]] constexpr u64 node_key(unsigned level, u64 index) noexcept {
  return (u64{level} << 56) | index;
}

} // namespace

memory_authenticator::memory_authenticator(sim::memory_port& lower, auth_config cfg,
                                           std::size_t unit_bytes)
    : lower_(&lower), cfg_(std::move(cfg)), unit_(unit_bytes) {
  if (cfg_.mode == auth_mode::none)
    throw std::invalid_argument("memory_authenticator: mode none has no state");
  if (cfg_.key.empty())
    throw std::invalid_argument("memory_authenticator: empty key");
  if (unit_ == 0 || cfg_.limit <= cfg_.base || cfg_.base % unit_ != 0 ||
      (cfg_.limit - cfg_.base) % unit_ != 0)
    throw std::invalid_argument("memory_authenticator: window must be a non-empty "
                                "data-unit-aligned range");
  if (cfg_.tag_bytes == 0 || cfg_.tag_bytes > 32)
    throw std::invalid_argument("memory_authenticator: tag_bytes must be 1..32");

  const u64 lines = (cfg_.limit - cfg_.base) / unit_;
  if (cfg_.mode == auth_mode::hash_tree) {
    if (cfg_.tree_arity < 2 || cfg_.tree_arity > 8)
      throw std::invalid_argument("memory_authenticator: tree_arity must be 2..8");
    // Stored levels, leaves first; the root (one node) stays on-chip.
    for (u64 n = lines; n > 1; n = (n + cfg_.tree_arity - 1) / cfg_.tree_arity)
      level_sizes_.push_back(n);
    addr_t at = cfg_.tag_base;
    for (const u64 n : level_sizes_) {
      level_base_.push_back(at);
      at += n * cfg_.tag_bytes;
    }
    root_.assign(cfg_.tag_bytes, 0);
  }
  if (cfg_.mode != auth_mode::area) {
    const addr_t tag_end = cfg_.tag_base + tag_memory_bytes();
    if (cfg_.tag_base < cfg_.limit && tag_end > cfg_.base)
      throw std::invalid_argument("memory_authenticator: tag region overlaps the "
                                  "authenticated window");
  }
}

cycles memory_authenticator::mac_time(std::size_t nbytes) const noexcept {
  return cfg_.mac_startup +
         static_cast<cycles>(static_cast<double>(nbytes) * cfg_.mac_cycles_per_byte);
}

u64 memory_authenticator::version_of(addr_t unit_addr) const noexcept {
  const auto it = versions_.find(unit_addr);
  return it == versions_.end() ? 0 : it->second;
}

void memory_authenticator::note(check_result& r, bool charge) noexcept {
  if (!charge) {
    r.bus = 0;
    r.compute = 0;
    return;
  }
  stats_.auth_cycles += r.compute;
}

// --- mac -----------------------------------------------------------------------

addr_t memory_authenticator::tag_addr(addr_t unit_addr) const noexcept {
  return cfg_.tag_base + unit_index(unit_addr) * cfg_.tag_bytes;
}

bytes memory_authenticator::unit_tag(addr_t unit_addr, u64 version,
                                     std::span<const u8> ct) const {
  // Address in the MAC defeats splicing, the version defeats replay, the
  // ciphertext itself defeats spoofing.
  bytes msg(16 + ct.size());
  store_be64(msg.data(), unit_addr);
  store_be64(msg.data() + 8, version);
  std::copy(ct.begin(), ct.end(), msg.begin() + 16);
  return crypto::hmac_sha256_tag(cfg_.key, msg, cfg_.tag_bytes);
}

cycles memory_authenticator::fetch_tag(addr_t unit_addr, std::span<u8> out) {
  const addr_t ta = tag_addr(unit_addr);
  const addr_t tag_line = ta - ta % k_tag_line;
  const std::size_t off = static_cast<std::size_t>(ta - tag_line);

  auto it = tag_cache_.find(tag_line);
  cycles spent = 0;
  if (it == tag_cache_.end() || cfg_.tag_cache_entries == 0) {
    ++stats_.tag_misses;
    ++stats_.tag_bus_reads;
    bytes fill(k_tag_line);
    spent = lower_->read(tag_line, fill);
    if (cfg_.tag_cache_entries == 0) {
      std::copy_n(fill.begin() + static_cast<std::ptrdiff_t>(off), out.size(),
                  out.begin());
      return spent;
    }
    install_tag_line(tag_line, fill);
    it = tag_cache_.find(tag_line);
  } else {
    ++stats_.tag_hits;
  }
  std::copy_n(it->second.begin() + static_cast<std::ptrdiff_t>(off), out.size(),
              out.begin());
  return spent;
}

void memory_authenticator::install_tag_line(addr_t tag_line, std::span<const u8> data) {
  if (cfg_.tag_cache_entries == 0) return;
  auto it = tag_cache_.find(tag_line);
  if (it != tag_cache_.end()) {
    it->second.assign(data.begin(), data.end());
    return;
  }
  if (tag_cache_fifo_.size() >= cfg_.tag_cache_entries) {
    tag_cache_.erase(tag_cache_fifo_.front());
    tag_cache_fifo_.erase(tag_cache_fifo_.begin());
  }
  tag_cache_.emplace(tag_line, bytes(data.begin(), data.end()));
  tag_cache_fifo_.push_back(tag_line);
}

cycles memory_authenticator::store_tag(addr_t unit_addr, std::span<const u8> tag) {
  const addr_t ta = tag_addr(unit_addr);
  const addr_t tag_line = ta - ta % k_tag_line;
  const auto it = tag_cache_.find(tag_line);
  if (it != tag_cache_.end()) {
    const std::size_t off = static_cast<std::size_t>(ta - tag_line);
    std::copy(tag.begin(), tag.end(),
              it->second.begin() + static_cast<std::ptrdiff_t>(off));
  }
  ++stats_.tag_bus_writes;
  return lower_->write(ta, tag); // write-through: the chip stays in sync
}

// --- hash tree -----------------------------------------------------------------

addr_t memory_authenticator::node_addr(unsigned level, u64 index) const noexcept {
  return level_base_[level] + index * cfg_.tag_bytes;
}

bytes memory_authenticator::leaf_digest(u64 index, std::span<const u8> ct) const {
  bytes msg(9 + ct.size());
  msg[0] = 'L'; // domain separation: a leaf can never collide with a node
  store_be64(msg.data() + 1, index);
  std::copy(ct.begin(), ct.end(), msg.begin() + 9);
  return crypto::hmac_sha256_tag(cfg_.key, msg, cfg_.tag_bytes);
}

bytes memory_authenticator::node_digest(unsigned level, u64 index,
                                        std::span<const u8> children) const {
  bytes msg(10 + children.size());
  msg[0] = 'N';
  msg[1] = static_cast<u8>(level);
  store_be64(msg.data() + 2, index);
  std::copy(children.begin(), children.end(), msg.begin() + 10);
  return crypto::hmac_sha256_tag(cfg_.key, msg, cfg_.tag_bytes);
}

bytes memory_authenticator::read_node(unsigned level, u64 index, cycles& bus,
                                      bool* from_cache) {
  const auto it = node_cache_.find(node_key(level, index));
  if (it != node_cache_.end()) {
    ++stats_.tag_hits;
    if (from_cache != nullptr) *from_cache = true;
    return it->second;
  }
  ++stats_.tag_misses;
  ++stats_.tag_bus_reads;
  if (from_cache != nullptr) *from_cache = false;
  bytes out(cfg_.tag_bytes);
  bus += lower_->read(node_addr(level, index), out);
  return out;
}

void memory_authenticator::cache_node(unsigned level, u64 index, const bytes& digest) {
  if (cfg_.tag_cache_entries == 0) return;
  const u64 key = node_key(level, index);
  const auto it = node_cache_.find(key);
  if (it != node_cache_.end()) {
    it->second = digest;
    return;
  }
  if (node_cache_fifo_.size() >= cfg_.tag_cache_entries) {
    node_cache_.erase(node_cache_fifo_.front());
    node_cache_fifo_.erase(node_cache_fifo_.begin());
  }
  node_cache_.emplace(key, digest);
  node_cache_fifo_.push_back(key);
}

void memory_authenticator::write_node(unsigned level, u64 index, const bytes& digest,
                                      cycles& bus) {
  ++stats_.tag_bus_writes;
  bus += lower_->write(node_addr(level, index), digest);
  cache_node(level, index, digest);
}

// --- area ----------------------------------------------------------------------

std::size_t memory_authenticator::area_stored_bytes(std::size_t granule) const noexcept {
  const std::size_t cap = granule - cfg_.tag_bytes;
  const std::size_t blocks = (unit_ + cap - 1) / cap;
  return blocks * granule;
}

bytes memory_authenticator::area_nonce(addr_t unit_addr, u64 version,
                                       std::size_t block) const {
  // A per-block slice of PRF(address, version, block index): relocation
  // changes the address, replay the version, so either garbles the check.
  bytes msg(24);
  store_be64(msg.data(), unit_addr);
  store_be64(msg.data() + 8, version);
  store_be64(msg.data() + 16, block);
  return crypto::hmac_sha256_tag(cfg_.key, msg, cfg_.tag_bytes);
}

cycles memory_authenticator::area_encipher(keyed_cipher& kc, addr_t unit_addr,
                                           std::span<const u8> plain,
                                           std::span<u8> dram_ct, bool initial,
                                           bool charge) {
  const std::size_t g = kc.granule();
  const std::size_t cap = g - cfg_.tag_bytes;
  const std::size_t stored = area_stored_bytes(g);
  const std::size_t blocks = stored / g;
  const u64 version = initial ? version_of(unit_addr) : ++versions_[unit_addr];

  // Expanded payload: each cipher block = data slice + nonce slice, so the
  // redundancy sits inside every diffusion domain of the unit.
  bytes expanded(stored, 0);
  std::size_t taken = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t n = std::min(cap, plain.size() - taken);
    std::copy_n(plain.begin() + static_cast<std::ptrdiff_t>(taken), n,
                expanded.begin() + static_cast<std::ptrdiff_t>(b * g));
    taken += n;
    const bytes nonce = area_nonce(unit_addr, version, b);
    std::copy(nonce.begin(), nonce.end(),
              expanded.begin() + static_cast<std::ptrdiff_t>(b * g + cap));
  }
  kc.encrypt_unit(unit_addr / unit_, expanded, expanded);

  // First unit_ bytes take the unit's normal DRAM burst; the expansion
  // rides the widened-memory sideband cells — zero extra bus beats.
  std::copy_n(expanded.begin(), unit_, dram_ct.begin());
  sideband_[unit_addr].assign(expanded.begin() + static_cast<std::ptrdiff_t>(unit_),
                              expanded.end());
  ++stats_.updates;
  if (!charge) return 0;
  const cycles t = kc.unit_cost(stored, /*encrypt=*/true) +
                   mac_time(cfg_.tag_bytes * blocks);
  stats_.auth_cycles += mac_time(cfg_.tag_bytes * blocks);
  return t;
}

memory_authenticator::area_staged
memory_authenticator::area_prepare(addr_t unit_addr) const {
  area_staged staged;
  staged.version = version_of(unit_addr);
  const auto sb = sideband_.find(unit_addr);
  if (sb != sideband_.end()) staged.sideband = sb->second;
  return staged;
}

memory_authenticator::check_result
memory_authenticator::area_decipher(keyed_cipher& kc, addr_t unit_addr,
                                    std::span<const u8> dram_ct,
                                    std::span<u8> plain_out, bool charge) {
  return area_finish(kc, unit_addr, dram_ct, plain_out, area_prepare(unit_addr),
                     charge);
}

memory_authenticator::check_result
memory_authenticator::area_finish(keyed_cipher& kc, addr_t unit_addr,
                                  std::span<const u8> dram_ct,
                                  std::span<u8> plain_out, const area_staged& staged,
                                  bool charge) {
  const std::size_t g = kc.granule();
  const std::size_t cap = g - cfg_.tag_bytes;
  const std::size_t stored = area_stored_bytes(g);
  const std::size_t blocks = stored / g;
  const u64 version = staged.version;

  bytes expanded(stored, 0);
  std::copy(dram_ct.begin(), dram_ct.end(), expanded.begin());
  std::copy(staged.sideband.begin(), staged.sideband.end(),
            expanded.begin() + static_cast<std::ptrdiff_t>(unit_));
  kc.decrypt_unit(unit_addr / unit_, expanded, expanded);

  check_result r;
  r.ok = !staged.sideband.empty();
  std::size_t taken = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const bytes nonce = area_nonce(unit_addr, version, b);
    if (!crypto::tag_equal(
            nonce, std::span<const u8>(expanded).subspan(b * g + cap, cfg_.tag_bytes)))
      r.ok = false;
    const std::size_t n = std::min(cap, plain_out.size() - taken);
    std::copy_n(expanded.begin() + static_cast<std::ptrdiff_t>(b * g), n,
                plain_out.begin() + static_cast<std::ptrdiff_t>(taken));
    taken += n;
  }
  ++stats_.verifies;
  if (!r.ok) ++stats_.faults;
  r.compute = kc.unit_cost(stored, /*encrypt=*/false) +
              mac_time(cfg_.tag_bytes * blocks);
  note(r, charge);
  return r;
}

// --- verify / update ------------------------------------------------------------

memory_authenticator::check_result
memory_authenticator::verify_unit(addr_t unit_addr, std::span<const u8> ct,
                                  bool charge) {
  check_result r;
  ++stats_.verifies;

  if (cfg_.mode == auth_mode::mac) {
    bytes stored(cfg_.tag_bytes);
    r.bus = fetch_tag(unit_addr, stored);
    const bytes expect = unit_tag(unit_addr, version_of(unit_addr), ct);
    r.compute = mac_time(ct.size());
    r.ok = crypto::tag_equal(expect, stored);
    if (!r.ok) ++stats_.faults;
    note(r, charge);
    return r;
  }

  // hash_tree: climb from the computed leaf until a trusted cached node
  // (early exit) or the on-chip root settles it. Fetched siblings and
  // computed path nodes become trusted only if the walk verifies.
  const unsigned levels = tree_levels();
  u64 idx = unit_index(unit_addr);
  bytes cur = leaf_digest(idx, ct);
  r.compute += mac_time(ct.size());
  std::vector<std::pair<u64, bytes>> install;
  install.emplace_back(node_key(0, idx), cur);
  bool decided = false;
  for (unsigned lvl = 0; lvl < levels; ++lvl) {
    ++stats_.nodes_walked;
    const auto hit = node_cache_.find(node_key(lvl, idx));
    if (hit != node_cache_.end()) {
      ++stats_.tag_hits;
      r.ok = hit->second == cur;
      decided = true;
      break;
    }
    const u64 parent = idx / cfg_.tree_arity;
    const u64 first = parent * cfg_.tree_arity;
    const u64 last = std::min<u64>(first + cfg_.tree_arity, level_sizes_[lvl]);
    bytes children;
    children.reserve(static_cast<std::size_t>(last - first) * cfg_.tag_bytes);
    for (u64 c = first; c < last; ++c) {
      if (c == idx) {
        children.insert(children.end(), cur.begin(), cur.end());
        continue;
      }
      const bytes d = read_node(lvl, c, r.bus);
      children.insert(children.end(), d.begin(), d.end());
      install.emplace_back(node_key(lvl, c), d);
    }
    cur = node_digest(lvl + 1, parent, children);
    r.compute += mac_time(children.size());
    idx = parent;
    if (lvl + 1 < levels) install.emplace_back(node_key(lvl + 1, idx), cur);
  }
  if (!decided) r.ok = cur == root_;
  if (r.ok) {
    for (const auto& [key, digest] : install)
      cache_node(static_cast<unsigned>(key >> 56), key & ~(u64{0xFF} << 56), digest);
  } else {
    ++stats_.faults;
  }
  note(r, charge);
  return r;
}

memory_authenticator::check_result
memory_authenticator::update_unit(addr_t unit_addr, std::span<const u8> ct,
                                  bool charge) {
  check_result r;
  ++stats_.updates;

  if (cfg_.mode == auth_mode::mac) {
    const u64 version = ++versions_[unit_addr];
    const bytes tag = unit_tag(unit_addr, version, ct);
    r.compute = mac_time(ct.size());
    r.bus = store_tag(unit_addr, tag);
    note(r, charge);
    return r;
  }

  // hash_tree. Pass A authenticates the stored path first — a tampered
  // sibling must never be hashed into the new root — then pass B rebuilds
  // the path from the new leaf with those (now trusted) siblings. A pass-A
  // mismatch refuses the whole update (fail-stop): stored nodes and the
  // root stay untouched, the subtree reads as tampered until an operator
  // re-seals the region.
  const unsigned levels = tree_levels();
  const u64 leaf_idx = unit_index(unit_addr);

  struct level_ctx {
    u64 first = 0, last = 0, self = 0;
    std::vector<bytes> children; ///< self slot overwritten in pass B
  };
  std::vector<level_ctx> path(levels);

  if (levels > 0) {
    u64 idx = leaf_idx;
    bytes cur = read_node(0, idx, r.bus);
    for (unsigned lvl = 0; lvl < levels; ++lvl) {
      ++stats_.nodes_walked;
      level_ctx& lc = path[lvl];
      const u64 parent = idx / cfg_.tree_arity;
      lc.first = parent * cfg_.tree_arity;
      lc.last = std::min<u64>(lc.first + cfg_.tree_arity, level_sizes_[lvl]);
      lc.self = idx;
      bytes children;
      for (u64 c = lc.first; c < lc.last; ++c) {
        bytes d = c == idx ? cur : read_node(lvl, c, r.bus);
        children.insert(children.end(), d.begin(), d.end());
        lc.children.push_back(std::move(d));
      }
      cur = node_digest(lvl + 1, parent, children);
      r.compute += mac_time(children.size());
      idx = parent;
    }
    r.ok = cur == root_;
    if (!r.ok) {
      ++stats_.faults;
      note(r, charge);
      return r; // refused: nothing below may reach the root
    }
  }

  bytes cur = leaf_digest(leaf_idx, ct);
  r.compute += mac_time(ct.size());
  u64 idx = leaf_idx;
  if (levels > 0) write_node(0, idx, cur, r.bus);
  cache_node(0, idx, cur);
  for (unsigned lvl = 0; lvl < levels; ++lvl) {
    level_ctx& lc = path[lvl];
    lc.children[static_cast<std::size_t>(lc.self - lc.first)] = cur;
    bytes children;
    for (const bytes& d : lc.children) children.insert(children.end(), d.begin(), d.end());
    const u64 parent = idx / cfg_.tree_arity;
    cur = node_digest(lvl + 1, parent, children);
    r.compute += mac_time(children.size());
    idx = parent;
    if (lvl + 1 < levels) {
      write_node(lvl + 1, idx, cur, r.bus);
    } else {
      // Pass-A siblings proved authentic: keep them warm for later walks.
      if (r.ok)
        for (u64 c = lc.first; c < lc.last; ++c)
          cache_node(lvl, c, lc.children[static_cast<std::size_t>(c - lc.first)]);
    }
  }
  root_ = cur;
  note(r, charge);
  return r;
}

// --- batched-pipeline protocol (mac) --------------------------------------------

memory_authenticator::staged_verify
memory_authenticator::batch_prepare_verify(addr_t unit_addr) {
  batch_open_ = true;
  staged_verify sv;
  sv.unit_addr = unit_addr;
  sv.version = version_of(unit_addr);
  const addr_t ta = tag_addr(unit_addr);
  sv.tag_line = ta - ta % k_tag_line;
  sv.tag_off = static_cast<std::size_t>(ta - sv.tag_line);
  // A tag staged earlier in this flush forwards on-chip — the DRAM copy is
  // still in flight on the same batch.
  if (const auto fwd = staged_tags_.find(ta); fwd != staged_tags_.end()) {
    ++stats_.tag_hits;
    sv.have_tag = true;
    sv.tag = fwd->second;
    return sv;
  }
  const auto it = tag_cache_.find(sv.tag_line);
  if (it != tag_cache_.end() && cfg_.tag_cache_entries != 0) {
    ++stats_.tag_hits;
    sv.have_tag = true;
    sv.tag.assign(it->second.begin() + static_cast<std::ptrdiff_t>(sv.tag_off),
                  it->second.begin() +
                      static_cast<std::ptrdiff_t>(sv.tag_off + cfg_.tag_bytes));
  } else {
    ++stats_.tag_misses; // the engine stages (and counts) the actual fetch
  }
  return sv;
}

memory_authenticator::check_result
memory_authenticator::batch_finish_verify(const staged_verify& sv,
                                          std::span<const u8> ct,
                                          std::span<const u8> tag_line_data,
                                          bool charge) {
  check_result r;
  ++stats_.verifies;
  std::span<const u8> stored;
  if (sv.have_tag) {
    stored = sv.tag;
  } else {
    install_tag_line(sv.tag_line, tag_line_data);
    // The fetch was ordered before any tag write staged later in this
    // flush: overlay those so the installed line is current, not stale.
    if (const auto it = tag_cache_.find(sv.tag_line); it != tag_cache_.end()) {
      for (const auto& [ta, tag] : staged_tags_) {
        if (ta < sv.tag_line || ta >= sv.tag_line + k_tag_line) continue;
        std::copy(tag.begin(), tag.end(),
                  it->second.begin() + static_cast<std::ptrdiff_t>(ta - sv.tag_line));
      }
    }
    stored = tag_line_data.subspan(sv.tag_off, cfg_.tag_bytes);
  }
  const bytes expect = unit_tag(sv.unit_addr, sv.version, ct);
  r.compute = mac_time(ct.size());
  r.ok = crypto::tag_equal(expect, stored);
  if (!r.ok) ++stats_.faults;
  note(r, charge);
  return r;
}

memory_authenticator::staged_update
memory_authenticator::batch_stage_update(addr_t unit_addr, std::span<const u8> ct,
                                         bool charge) {
  batch_open_ = true;
  ++stats_.updates;
  staged_update su;
  const u64 version = ++versions_[unit_addr];
  su.tag = unit_tag(unit_addr, version, ct);
  su.tag_addr = tag_addr(unit_addr);
  staged_tags_[su.tag_addr] = su.tag; // forward to later reads in this flush
  if (charge) {
    su.compute = mac_time(ct.size());
    stats_.auth_cycles += su.compute;
  }
  // Write-through semantics: the cached line (if any) sees the new tag
  // now; the engine rides the external write on the same lower batch.
  const auto it = tag_cache_.find(su.tag_addr - su.tag_addr % k_tag_line);
  if (it != tag_cache_.end()) {
    const std::size_t off = static_cast<std::size_t>(su.tag_addr % k_tag_line);
    std::copy(su.tag.begin(), su.tag.end(),
              it->second.begin() + static_cast<std::ptrdiff_t>(off));
  }
  ++stats_.tag_bus_writes;
  return su;
}

// --- lifecycle ------------------------------------------------------------------

void memory_authenticator::seal_from_memory() {
  // Precondition: no open batch window. A reseal here would recompute tags
  // from DRAM while staged tag writes are still riding the in-flight lower
  // batch — the flush would then land stale tags over the fresh seal,
  // silent corruption that only surfaces as spurious faults much later.
  if (batch_open_)
    throw std::logic_error("memory_authenticator: seal_from_memory() during an "
                           "open batch flush window");
  if (cfg_.mode == auth_mode::area) return; // the engine seals, it owns the cipher
  drop_caches(); // stale trusted digests must not outlive a reseal
  bytes ct(unit_);
  if (cfg_.mode == auth_mode::mac) {
    for (addr_t a = cfg_.base; a < cfg_.limit; a += unit_) {
      (void)lower_->read(a, ct);
      (void)lower_->write(tag_addr(a), unit_tag(a, version_of(a), ct));
    }
    return;
  }
  // hash_tree: build bottom-up over the current content, store every
  // level, keep the root on-chip.
  const u64 lines = (cfg_.limit - cfg_.base) / unit_;
  std::vector<bytes> level(static_cast<std::size_t>(lines));
  for (u64 i = 0; i < lines; ++i) {
    (void)lower_->read(cfg_.base + i * unit_, ct);
    level[static_cast<std::size_t>(i)] = leaf_digest(i, ct);
  }
  for (unsigned lvl = 0;; ++lvl) {
    if (lvl < tree_levels())
      for (u64 i = 0; i < level.size(); ++i)
        (void)lower_->write(node_addr(lvl, i), level[static_cast<std::size_t>(i)]);
    if (level.size() == 1) {
      root_ = level.front();
      return;
    }
    std::vector<bytes> up((level.size() + cfg_.tree_arity - 1) / cfg_.tree_arity);
    for (u64 p = 0; p < up.size(); ++p) {
      bytes children;
      const u64 first = p * cfg_.tree_arity;
      const u64 last = std::min<u64>(first + cfg_.tree_arity, level.size());
      for (u64 c = first; c < last; ++c)
        children.insert(children.end(), level[static_cast<std::size_t>(c)].begin(),
                        level[static_cast<std::size_t>(c)].end());
      up[static_cast<std::size_t>(p)] = node_digest(lvl + 1, p, children);
    }
    level = std::move(up);
  }
}

void memory_authenticator::drop_caches() noexcept {
  tag_cache_.clear();
  tag_cache_fifo_.clear();
  node_cache_.clear();
  node_cache_fifo_.clear();
  // A power cut can unwind the engine's submit() mid-flush, before
  // batch_flush_done() retires the forwarding window. The window is
  // volatile state: left set, a perfectly legitimate post-boot reseal
  // would trip the open-batch guard forever.
  staged_tags_.clear();
  batch_open_ = false;
}

bytes* memory_authenticator::area_sideband(addr_t unit_addr) noexcept {
  const auto it = sideband_.find(unit_addr);
  return it == sideband_.end() ? nullptr : &it->second;
}

std::size_t memory_authenticator::tag_memory_bytes() const noexcept {
  if (cfg_.mode == auth_mode::area) return 0;
  const u64 lines = (cfg_.limit - cfg_.base) / unit_;
  if (cfg_.mode == auth_mode::mac)
    return static_cast<std::size_t>(lines) * cfg_.tag_bytes;
  u64 nodes = 0;
  for (const u64 n : level_sizes_) nodes += n;
  return static_cast<std::size_t>(nodes) * cfg_.tag_bytes;
}

std::size_t memory_authenticator::onchip_bytes() const noexcept {
  return versions_.size() * 4 + tag_cache_.size() * k_tag_line +
         node_cache_.size() * cfg_.tag_bytes + root_.size();
}

} // namespace buscrypt::engine
