#include "engine/cipher_backend.hpp"

#include "common/bitops.hpp"
#include "crypto/aes.hpp"
#include "crypto/best_cipher.hpp"
#include "crypto/des.hpp"
#include "crypto/lfsr.hpp"
#include "crypto/modes.hpp"
#include "crypto/rc4.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace buscrypt::engine {

namespace {

/// Constant nonce folded into every CTR counter block; the uniqueness of
/// the keystream comes from the globally-unique counter, not the nonce.
constexpr u64 k_ctr_tweak = 0x42E5'C0DE'0D1E'5EEDULL;

void check_unit(std::size_t granule, std::span<const u8> in, std::span<const u8> out) {
  if (in.size() != out.size())
    throw std::invalid_argument("keyed_cipher: in/out size mismatch");
  if (granule != 0 && in.size() % granule != 0)
    throw std::invalid_argument("keyed_cipher: unit not a multiple of the cipher granule");
}

void check_units(std::size_t unit_len, std::span<const u8> in, std::span<const u8> out) {
  if (in.size() != out.size())
    throw std::invalid_argument("keyed_cipher: in/out size mismatch");
  if (unit_len == 0 || in.size() % unit_len != 0)
    throw std::invalid_argument("keyed_cipher: run must be whole units");
}

/// Keyed block cipher + mode over data units. Holds its expanded core by
/// shared_ptr: cores come from the backend's schedule cache, so several
/// keyed instances of one key (slots, fallbacks, probes) share one
/// expansion.
class block_keyed final : public keyed_cipher {
 public:
  block_keyed(std::string name, unit_mode mode, backend_cost cost,
              std::shared_ptr<const crypto::block_cipher> cipher)
      : name_(std::move(name)), mode_(mode), cost_(cost), cipher_(std::move(cipher)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t granule() const noexcept override {
    // CTR is a stream mode: any byte length goes.
    return mode_ == unit_mode::ctr ? 1 : cipher_->block_size();
  }

  void encrypt_unit(u64 dun, std::span<const u8> in, std::span<u8> out) override {
    crypt(dun, in, out, /*encrypt=*/true);
  }
  void decrypt_unit(u64 dun, std::span<const u8> in, std::span<u8> out) override {
    crypt(dun, in, out, /*encrypt=*/false);
  }

  void encrypt_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                     std::span<u8> out) override {
    check_units(unit_len, in, out);
    switch (mode_) {
      case unit_mode::ecb:
        // Unit boundaries don't matter without an IV: one bulk pass.
        check_unit(granule(), in, out);
        cipher_->encrypt_blocks(in, out);
        break;
      case unit_mode::ctr:
        ctr_units(first_dun, unit_len, in, out);
        break;
      case unit_mode::cbc:
        // Encryption chains serially within each unit; nothing to widen.
        keyed_cipher::encrypt_units(first_dun, unit_len, in, out);
        break;
    }
  }

  void decrypt_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                     std::span<u8> out) override {
    check_units(unit_len, in, out);
    switch (mode_) {
      case unit_mode::ecb:
        check_unit(granule(), in, out);
        cipher_->decrypt_blocks(in, out);
        break;
      case unit_mode::ctr:
        ctr_units(first_dun, unit_len, in, out); // XOR pad: decrypt == encrypt
        break;
      case unit_mode::cbc:
        cbc_decrypt_units(first_dun, unit_len, in, out);
        break;
    }
  }

  [[nodiscard]] cycles unit_cost(std::size_t nbytes, bool encrypt) const noexcept override {
    return cost_.time(nbytes, encrypt);
  }

  [[nodiscard]] bool pad_precomputable() const noexcept override {
    return mode_ == unit_mode::ctr;
  }

  void generate_pads(u64 first_dun, std::size_t unit_len, std::span<u8> out) override {
    if (mode_ != unit_mode::ctr) { // fall back to the zero-encipher default
      keyed_cipher::generate_pads(first_dun, unit_len, out);
      return;
    }
    if (unit_len == 0 || out.size() % unit_len != 0)
      throw std::invalid_argument("generate_pads: out must be whole units");
    fill_ctr_pads(first_dun, unit_len, out);
  }

 private:
  /// CTR pad fill for a run of units: build every counter block of the run,
  /// encrypt them all in one bulk call (a whole bitsliced batch for the DES
  /// cores), then lay the pads out per unit. Same bytes ctr_crypt produces.
  void fill_ctr_pads(u64 first_dun, std::size_t unit_len, std::span<u8> out) {
    const std::size_t bs = cipher_->block_size();
    const std::size_t nunits = out.size() / unit_len;
    const std::size_t bpu = (unit_len + bs - 1) / bs; // counter blocks per unit
    const bool aligned = unit_len % bs == 0;
    bytes scratch;
    std::span<u8> work = out;
    if (!aligned) {
      scratch.resize(nunits * bpu * bs);
      work = scratch;
    }
    std::size_t w = 0;
    for (std::size_t u = 0; u < nunits; ++u) {
      u64 ctr = (first_dun + u) << 16;
      for (std::size_t b = 0; b < bpu; ++b, ++ctr, w += bs) {
        u8* cb = work.data() + w;
        std::fill(cb, cb + bs, u8{0});
        if (bs >= 16) {
          store_be64(cb, k_ctr_tweak);
          store_be64(cb + bs - 8, ctr);
        } else {
          store_be64(cb, k_ctr_tweak ^ ctr);
        }
      }
    }
    cipher_->encrypt_blocks(work, work);
    if (!aligned)
      for (std::size_t u = 0; u < nunits; ++u)
        std::copy_n(work.begin() + static_cast<std::ptrdiff_t>(u * bpu * bs), unit_len,
                    out.begin() + static_cast<std::ptrdiff_t>(u * unit_len));
  }

  /// CTR unit run: one bulk pad fill for the whole window, then a u64-wide
  /// XOR against the payload (encrypt and decrypt are the same operation).
  void ctr_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                 std::span<u8> out) {
    bytes pads(in.size());
    fill_ctr_pads(first_dun, unit_len, pads);
    xor_bytes(out, in, pads);
  }

  /// CBC decryption over a unit run: ESSIV IVs for every unit derived in
  /// one bulk encrypt, the whole window block-decrypted in one bulk call
  /// (where the bitsliced DES path lives), then the per-unit chain applied
  /// u64-wide. Byte-identical to per-unit cbc_decrypt.
  void cbc_decrypt_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                         std::span<u8> out) {
    const std::size_t bs = cipher_->block_size();
    if (unit_len % bs != 0)
      throw std::invalid_argument("keyed_cipher: unit not a multiple of the cipher granule");
    if (in.empty()) return;
    const std::size_t nunits = in.size() / unit_len;
    bytes ivs(nunits * bs, 0);
    for (std::size_t u = 0; u < nunits; ++u)
      store_le64(ivs.data() + u * bs, first_dun + u);
    cipher_->encrypt_blocks(ivs, ivs);
    const bytes ct(in.begin(), in.end()); // in/out may alias; chain needs ct
    cipher_->decrypt_blocks(ct, out);
    for (std::size_t u = 0; u < nunits; ++u) {
      const std::size_t base = u * unit_len;
      xor_bytes(out.subspan(base, bs), std::span<const u8>(ivs).subspan(u * bs, bs));
      if (unit_len > bs)
        xor_bytes(out.subspan(base + bs, unit_len - bs),
                  std::span<const u8>(ct).subspan(base, unit_len - bs));
    }
  }

  void crypt(u64 dun, std::span<const u8> in, std::span<u8> out, bool encrypt) {
    check_unit(granule(), in, out);
    switch (mode_) {
      case unit_mode::ecb:
        encrypt ? crypto::ecb_encrypt(*cipher_, in, out)
                : crypto::ecb_decrypt(*cipher_, in, out);
        break;
      case unit_mode::cbc: {
        // ESSIV-style address IV: IV = E_K(DUN), so equal plaintext units
        // at different addresses produce unrelated ciphertext.
        bytes iv(cipher_->block_size(), 0);
        store_le64(iv.data(), dun);
        cipher_->encrypt_block(iv, iv);
        encrypt ? crypto::cbc_encrypt(*cipher_, iv, in, out)
                : crypto::cbc_decrypt(*cipher_, iv, in, out);
        break;
      }
      case unit_mode::ctr: {
        // A globally-unique counter per cipher block: units may be any
        // size up to 2^16 blocks without keystream reuse.
        const u64 ctr0 = dun << 16;
        crypto::ctr_crypt(*cipher_, k_ctr_tweak, ctr0, in, out);
        break;
      }
    }
  }

  std::string name_; // owned: keyed instances outlive their backend in keyslots
  unit_mode mode_;
  backend_cost cost_;
  std::shared_ptr<const crypto::block_cipher> cipher_;
};

/// Keyed stream cipher: reseed(key, DUN-iv) per unit.
class stream_keyed final : public keyed_cipher {
 public:
  stream_keyed(std::string name, backend_cost cost, bytes key, stream_backend::factory make)
      : name_(std::move(name)), cost_(cost), key_(std::move(key)), make_(std::move(make)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t granule() const noexcept override { return 1; }

  void encrypt_unit(u64 dun, std::span<const u8> in, std::span<u8> out) override {
    crypt(dun, in, out);
  }
  void decrypt_unit(u64 dun, std::span<const u8> in, std::span<u8> out) override {
    crypt(dun, in, out);
  }

  [[nodiscard]] cycles unit_cost(std::size_t nbytes, bool encrypt) const noexcept override {
    return cost_.time(nbytes, encrypt);
  }

  [[nodiscard]] bool pad_precomputable() const noexcept override { return true; }

  void generate_pads(u64 first_dun, std::size_t unit_len, std::span<u8> out) override {
    // Bulk keystream: one reseed per unit, generated straight into the
    // batch pad buffer — no per-unit copy + XOR round trip.
    u8 iv[8];
    for (std::size_t uoff = 0; uoff < out.size(); uoff += unit_len) {
      store_le64(iv, first_dun + uoff / unit_len);
      if (!gen_) gen_ = make_(key_, iv);
      else gen_->reseed(key_, iv);
      gen_->keystream(out.subspan(uoff, unit_len));
    }
  }

 private:
  void crypt(u64 dun, std::span<const u8> in, std::span<u8> out) {
    check_unit(1, in, out);
    u8 iv[8];
    store_le64(iv, dun);
    if (!gen_) gen_ = make_(key_, iv);
    else gen_->reseed(key_, iv);
    std::copy(in.begin(), in.end(), out.begin());
    gen_->apply(out);
  }

  std::string name_; // owned: see block_keyed
  backend_cost cost_;
  bytes key_;
  stream_backend::factory make_;
  std::unique_ptr<crypto::stream_cipher> gen_;
};

} // namespace

// --- keyed_cipher -----------------------------------------------------------

void keyed_cipher::encrypt_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                                 std::span<u8> out) {
  check_units(unit_len, in, out);
  for (std::size_t off = 0; off < in.size(); off += unit_len)
    encrypt_unit(first_dun + off / unit_len, in.subspan(off, unit_len),
                 out.subspan(off, unit_len));
}

void keyed_cipher::decrypt_units(u64 first_dun, std::size_t unit_len, std::span<const u8> in,
                                 std::span<u8> out) {
  check_units(unit_len, in, out);
  for (std::size_t off = 0; off < in.size(); off += unit_len)
    decrypt_unit(first_dun + off / unit_len, in.subspan(off, unit_len),
                 out.subspan(off, unit_len));
}

void keyed_cipher::generate_pads(u64 first_dun, std::size_t unit_len, std::span<u8> out) {
  // Exact for any XOR-pad cipher: pad == E(0). Non-pad modes never call
  // this (pad_precomputable() is the caller's gate).
  if (unit_len == 0 || out.size() % unit_len != 0)
    throw std::invalid_argument("generate_pads: out must be whole units");
  const bytes zeros(unit_len, 0);
  for (std::size_t off = 0; off < out.size(); off += unit_len)
    encrypt_unit(first_dun + off / unit_len, zeros, out.subspan(off, unit_len));
}

// --- block_backend ----------------------------------------------------------

block_backend::block_backend(std::string name, unit_mode mode, backend_cost cost,
                             std::vector<std::size_t> key_lens, factory make)
    : name_(std::move(name)), mode_(mode), cost_(cost),
      key_lens_(std::move(key_lens)), make_(std::move(make)) {}

bool block_backend::key_len_ok(std::size_t len) const noexcept {
  return std::find(key_lens_.begin(), key_lens_.end(), len) != key_lens_.end();
}

std::size_t block_backend::max_data_unit_size() const noexcept {
  // CTR reserves 2^16 counter values per DUN; a larger unit would reuse
  // keystream across adjacent units (the pad_reuse break).
  return mode_ == unit_mode::ctr ? (std::size_t{1} << 16) * cost_.block_bytes
                                 : std::numeric_limits<std::size_t>::max();
}

std::shared_ptr<const crypto::block_cipher>
block_backend::expanded_core(std::span<const u8> key) const {
  // One lock covers lookup, insert and telemetry: the backend instance is
  // shared process-wide (builtin()), so fleet worker threads race here.
  // Expansion itself runs under the lock too — double expansion of one
  // key would be functionally harmless (cores for a key are identical)
  // but would make the hits+expansions == calls invariant flaky.
  std::lock_guard<std::mutex> lock(sched_mu_);
  ++sched_tick_;
  for (sched_entry& e : sched_cache_) {
    if (e.key.size() == key.size() && std::equal(key.begin(), key.end(), e.key.begin())) {
      e.tick = sched_tick_;
      ++sched_hits_;
      return e.core;
    }
  }
  ++sched_expansions_;
  std::shared_ptr<const crypto::block_cipher> core = make_(key);
  if (sched_cache_.size() >= k_sched_cache_entries) {
    auto lru = sched_cache_.begin();
    for (auto it = sched_cache_.begin(); it != sched_cache_.end(); ++it)
      if (it->tick < lru->tick) lru = it;
    *lru = {bytes(key.begin(), key.end()), core, sched_tick_};
  } else {
    sched_cache_.push_back({bytes(key.begin(), key.end()), core, sched_tick_});
  }
  return core;
}

u64 block_backend::schedule_hits() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return sched_hits_;
}

u64 block_backend::schedule_expansions() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return sched_expansions_;
}

std::unique_ptr<keyed_cipher> block_backend::make_keyed(std::span<const u8> key) const {
  if (!key_len_ok(key.size()))
    throw std::invalid_argument("backend " + name_ + ": unsupported key length");
  return std::make_unique<block_keyed>(name_, mode_, cost_, expanded_core(key));
}

// --- stream_backend ---------------------------------------------------------

stream_backend::stream_backend(std::string name, backend_cost cost,
                               std::vector<std::size_t> key_lens, factory make)
    : name_(std::move(name)), cost_(cost), key_lens_(std::move(key_lens)),
      make_(std::move(make)) {}

bool stream_backend::key_len_ok(std::size_t len) const noexcept {
  return std::find(key_lens_.begin(), key_lens_.end(), len) != key_lens_.end();
}

std::unique_ptr<keyed_cipher> stream_backend::make_keyed(std::span<const u8> key) const {
  if (!key_len_ok(key.size()))
    throw std::invalid_argument("backend " + name_ + ": unsupported key length");
  return std::make_unique<stream_keyed>(name_, cost_, bytes(key.begin(), key.end()), make_);
}

// --- backend_registry -------------------------------------------------------

void backend_registry::add(std::unique_ptr<cipher_backend> backend) {
  for (auto& b : backends_) {
    if (b->name() == backend->name()) {
      b = std::move(backend);
      return;
    }
  }
  backends_.push_back(std::move(backend));
}

const cipher_backend* backend_registry::find(std::string_view name) const noexcept {
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  return nullptr;
}

const cipher_backend& backend_registry::at(std::string_view name) const {
  const cipher_backend* b = find(name);
  if (!b) throw std::out_of_range("backend_registry: no backend named '" + std::string(name) + "'");
  return *b;
}

std::vector<std::string_view> backend_registry::names() const {
  std::vector<std::string_view> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

namespace {

std::unique_ptr<crypto::block_cipher> make_aes(std::span<const u8> key) {
  return std::make_unique<crypto::aes>(key);
}

// Cost figures follow edu/timing.hpp's surveyed cores.
constexpr backend_cost aes_cost{11, 11, 16, false};
constexpr backend_cost aes_cbc_cost{11, 11, 16, true};
constexpr backend_cost des_cost{16, 16, 8, true};
constexpr backend_cost tdes_cost{48, 48, 8, true};
constexpr backend_cost tdes_ctr_cost{48, 48, 8, false};
constexpr backend_cost best_cost{2, 1, 8, false};
constexpr backend_cost stream_cost{4, 1, 8, false};

backend_registry make_builtin() {
  backend_registry reg;
  const std::vector<std::size_t> aes_keys{16, 24, 32};

  reg.add(std::make_unique<block_backend>("aes-ecb", unit_mode::ecb, aes_cost, aes_keys, make_aes));
  reg.add(std::make_unique<block_backend>("aes-cbc", unit_mode::cbc, aes_cbc_cost, aes_keys, make_aes));
  reg.add(std::make_unique<block_backend>("aes-ctr", unit_mode::ctr, aes_cost, aes_keys, make_aes));

  reg.add(std::make_unique<block_backend>(
      "des-cbc", unit_mode::cbc, des_cost, std::vector<std::size_t>{8},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::des>(key);
      }));
  reg.add(std::make_unique<block_backend>(
      "3des-cbc", unit_mode::cbc, tdes_cost, std::vector<std::size_t>{16, 24},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::triple_des>(key);
      }));
  reg.add(std::make_unique<block_backend>(
      "3des-ctr", unit_mode::ctr, tdes_ctr_cost, std::vector<std::size_t>{16, 24},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::triple_des>(key);
      }));
  reg.add(std::make_unique<block_backend>(
      "best-ecb", unit_mode::ecb, best_cost, std::vector<std::size_t>{16},
      [](std::span<const u8> key) -> std::unique_ptr<crypto::block_cipher> {
        return std::make_unique<crypto::best_cipher>(key);
      }));

  reg.add(std::make_unique<stream_backend>(
      "rc4-stream", stream_cost, std::vector<std::size_t>{8, 16, 32},
      [](std::span<const u8> key, std::span<const u8> iv) -> std::unique_ptr<crypto::stream_cipher> {
        auto g = std::make_unique<crypto::rc4>(key);
        g->reseed(key, iv);
        return g;
      }));
  reg.add(std::make_unique<stream_backend>(
      "lfsr-stream", stream_cost, std::vector<std::size_t>{8, 16},
      [](std::span<const u8> key, std::span<const u8> iv) -> std::unique_ptr<crypto::stream_cipher> {
        return std::make_unique<crypto::galois_lfsr>(key, iv);
      }));
  reg.add(std::make_unique<stream_backend>(
      "trivium-stream", stream_cost, std::vector<std::size_t>{8, 10},
      [](std::span<const u8> key, std::span<const u8> iv) -> std::unique_ptr<crypto::stream_cipher> {
        return std::make_unique<crypto::trivium>(key, iv);
      }));
  return reg;
}

} // namespace

const backend_registry& backend_registry::builtin() {
  static const backend_registry reg = make_builtin();
  return reg;
}

} // namespace buscrypt::engine
