#include "engine/eviction_policy.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace buscrypt::engine {

namespace {

constexpr int no_slot = -1; // mirrors keyslot_manager::no_slot

/// First empty idle slot, or no_slot. Every policy tries this before its
/// own ranking: programming an empty slot evicts nobody.
int first_empty_idle(std::span<const slot_view> slots) {
  for (std::size_t i = 0; i < slots.size(); ++i)
    if (slots[i].refcount == 0 && !slots[i].programmed) return static_cast<int>(i);
  return no_slot;
}

/// Exact LRU — one loop, bit-identical to the pre-policy manager: the
/// first empty idle slot wins immediately, else the idle slot with the
/// smallest last_use tick.
class lru_policy : public eviction_policy {
 public:
  [[nodiscard]] slot_policy kind() const noexcept override { return slot_policy::lru; }

  [[nodiscard]] int pick_victim(std::span<const slot_view> slots) override {
    int victim = no_slot;
    u64 oldest = std::numeric_limits<u64>::max();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].refcount != 0) continue;
      if (!slots[i].programmed) return static_cast<int>(i);
      if (slots[i].last_use < oldest) {
        oldest = slots[i].last_use;
        victim = static_cast<int>(i);
      }
    }
    return victim;
  }
};

/// CLOCK / second-chance: a ref bit per slot, set on hit and program,
/// cleared as the hand sweeps. The hand skips pinned slots (their bits
/// survive — a pinned slot keeps its recency claim), gives each set bit
/// one more revolution, and takes the first idle slot found cleared. Two
/// revolutions bound the sweep: the first clears every idle bit, so the
/// second must land — unless every slot is pinned.
class clock_policy : public eviction_policy {
 public:
  explicit clock_policy(unsigned num_slots) : ref_(num_slots, false) {}

  [[nodiscard]] slot_policy kind() const noexcept override {
    return slot_policy::clock_hand;
  }

  void on_program(std::size_t slot) override { ref_[slot] = true; }
  void on_hit(std::size_t slot) override { ref_[slot] = true; }
  void on_evict(std::size_t slot) override { ref_[slot] = false; }

  [[nodiscard]] int pick_victim(std::span<const slot_view> slots) override {
    if (int empty = first_empty_idle(slots); empty != no_slot) return empty;
    const std::size_t n = slots.size();
    for (std::size_t step = 0; step < 2 * n; ++step) {
      const std::size_t i = hand_;
      hand_ = (hand_ + 1) % n;
      if (slots[i].refcount != 0) continue;
      if (ref_[i]) {
        ref_[i] = false; // second chance spent
        continue;
      }
      return static_cast<int>(i);
    }
    return no_slot; // every slot pinned
  }

 private:
  std::vector<bool> ref_;
  std::size_t hand_ = 0;
};

/// Usage-aware (LFU-flavoured): evict the idle slot whose key served the
/// fewest acquires since being programmed; break ties toward the older
/// last_use. A key that has proven itself hot survives bursts of
/// program-once contexts that would flush a pure-recency pool.
class refcount_policy : public eviction_policy {
 public:
  [[nodiscard]] slot_policy kind() const noexcept override {
    return slot_policy::refcount;
  }

  [[nodiscard]] int pick_victim(std::span<const slot_view> slots) override {
    int victim = no_slot;
    u64 fewest = std::numeric_limits<u64>::max();
    u64 oldest = std::numeric_limits<u64>::max();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].refcount != 0) continue;
      if (!slots[i].programmed) return static_cast<int>(i);
      if (slots[i].uses < fewest ||
          (slots[i].uses == fewest && slots[i].last_use < oldest)) {
        fewest = slots[i].uses;
        oldest = slots[i].last_use;
        victim = static_cast<int>(i);
      }
    }
    return victim;
  }
};

/// LRU victim selection with the prefetch flag raised: the refill logic
/// itself lives in the manager (it needs the displaced keys and the
/// cipher registry, which policies deliberately cannot see).
class prefetch_policy : public lru_policy {
 public:
  [[nodiscard]] slot_policy kind() const noexcept override {
    return slot_policy::prefetch;
  }
  [[nodiscard]] bool wants_prefetch() const noexcept override { return true; }
};

} // namespace

bool parse_slot_policy(std::string_view name, slot_policy& out) noexcept {
  for (const slot_policy p : all_slot_policies) {
    if (slot_policy_name(p) == name) {
      out = p;
      return true;
    }
  }
  return false;
}

std::unique_ptr<eviction_policy> make_eviction_policy(slot_policy p,
                                                      unsigned num_slots) {
  switch (p) {
    case slot_policy::lru: return std::make_unique<lru_policy>();
    case slot_policy::clock_hand: return std::make_unique<clock_policy>(num_slots);
    case slot_policy::refcount: return std::make_unique<refcount_policy>();
    case slot_policy::prefetch: return std::make_unique<prefetch_policy>();
  }
  throw std::invalid_argument("make_eviction_policy: unknown policy");
}

} // namespace buscrypt::engine
