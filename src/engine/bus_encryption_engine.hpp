#pragma once
/// \file bus_encryption_engine.hpp
/// The unified bus-encryption engine: an inline crypto stage on the
/// processor-memory path, parameterized by keyslots instead of hard-wired
/// to one cipher. It generalises the survey's per-design EDUs (Fig. 2-8)
/// the way the Linux inline-encryption framework generalises per-driver
/// crypto: upper layers create an *encryption context* (key + backend +
/// data-unit size), the context resolves to a keyslot per request, and the
/// engine transforms whole data units addressed by their data-unit number.
///
/// Topology (survey Fig. 2c): cache -> [this engine] -> bus/DRAM, so
/// everything on the external bus — and every probe — sees ciphertext.
/// Multiple address regions may be mapped to different contexts (secure
/// kernel vs application vs DMA buffer), which is what a small slot pool
/// with LRU reuse models.

#include "engine/keyslot_manager.hpp"
#include "sim/memory_port.hpp"

#include <utility>
#include <vector>

namespace buscrypt::engine {

struct engine_config {
  /// Cycles to program key material into a hardware slot (charged on each
  /// slot miss; the warm-slot hit path is free, which is the point of the
  /// pool).
  cycles slot_program_cycles = 40;
  /// When no slot is free, transform with a software one-shot cipher
  /// instead of failing (the blk-crypto-fallback analogue). Disabling it
  /// makes a pinned-out pool throw, which the tests exercise.
  bool allow_fallback = true;
  /// Cycle multiplier for the fallback path (software is slower than the
  /// inline hardware datapath).
  cycles fallback_penalty = 4;
};

/// Per-engine counters.
struct engine_stats {
  u64 reads = 0;
  u64 writes = 0;
  u64 units = 0;          ///< data units transformed
  u64 rmw_ops = 0;        ///< partial-unit writes needing read-modify-write
  u64 fallbacks = 0;      ///< requests served by the software fallback
  u64 passthrough = 0;    ///< requests to unmapped (unprotected) regions
  u64 batches = 0;        ///< submit() calls served
  u64 batched_txns = 0;   ///< transactions carried by those batches
  u64 batch_native = 0;   ///< transactions taken by the pipelined batch path
  cycles crypto_cycles = 0;
};

/// Inline encryption stage between the cache level and external memory.
class bus_encryption_engine final : public sim::memory_port {
 public:
  using context_id = std::size_t;
  static constexpr context_id no_context = static_cast<context_id>(-1);

  /// \param lower the external path (bus + DRAM); referenced, not owned.
  /// \param slots shared keyslot pool; referenced, not owned.
  bus_encryption_engine(sim::memory_port& lower, keyslot_manager& slots,
                        engine_config cfg = {});

  /// Register an encryption context. Validates the backend name, the key
  /// length, and that the data-unit size is a positive multiple of the
  /// backend granule. The key schedule is not expanded until first use.
  [[nodiscard]] context_id create_context(keyslot_key k);

  /// Drop a context and evict its key from the slot pool if idle.
  void destroy_context(context_id ctx);

  /// Protect [base, base+len) with \p ctx. Later mappings win on overlap.
  /// Requests to unmapped addresses pass through in plaintext.
  void map_region(addr_t base, std::size_t len, context_id ctx);

  /// The context protecting \p addr, or no_context.
  [[nodiscard]] context_id context_at(addr_t addr) const noexcept;

  /// The context at \p addr and the length of the longest prefix of
  /// [addr, addr+len) it uniformly covers. One pass over the region list.
  [[nodiscard]] std::pair<context_id, std::size_t> span_at(addr_t addr,
                                                           std::size_t len) const noexcept;

  // --- memory_port: the timed, functional datapath -------------------------
  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. Per batch: every referenced context resolves to a
  /// keyslot once (slots are pinned and programmed at most once, however
  /// many transactions share them), write units are enciphered up front,
  /// the whole batch goes to the lower port as one submission (multi-bank
  /// overlap composes), and read units decipher as the data lands — so the
  /// crypto pipeline runs concurrently with the bus schedule and the batch
  /// costs max(mem, crypto) instead of their sum. Transactions that need
  /// unit-unaligned or unmapped handling drop to the scalar path without
  /// breaking functional order (pending lower work is flushed first).
  void submit(std::span<sim::mem_txn> batch) override;

  // --- offline paths (no simulated time) -----------------------------------
  /// Install a plaintext image through the encrypt path ("memory content
  /// ciphering can be done offline", Section 2.1).
  void install(addr_t base, std::span<const u8> plain);
  /// Plaintext view through the decrypt path (verification hook).
  void read_plain(addr_t base, std::span<u8> out);

  [[nodiscard]] const engine_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] keyslot_manager& slots() noexcept { return *slots_; }
  [[nodiscard]] const keyslot_key& context_key(context_id ctx) const;

 private:
  struct region {
    addr_t base = 0;
    std::size_t len = 0;
    context_id ctx = no_context;
  };

  /// A keyslot held for the duration of one request or one batch, or the
  /// software fallback when the pool is pinned out. The single home of the
  /// acquire/program-cost/fallback protocol, shared by the scalar and
  /// batched datapaths so their timing and stats cannot drift apart.
  struct slot_lease {
    std::unique_ptr<slot_guard> guard;      ///< pins the hardware slot
    std::unique_ptr<keyed_cipher> software; ///< fallback instance, if used
    keyed_cipher* kc = nullptr;
    bool fallback = false;
    cycles setup = 0; ///< slot-program cycles charged (0 on a warm hit)
  };

  /// With \p hw_only, a pinned-out pool returns a lease whose kc is null
  /// instead of falling back or throwing — the batch path probes this way
  /// so it can retire its window and retry before giving up.
  /// \throws std::runtime_error when the pool is pinned, fallback is off
  ///         and \p hw_only is false.
  [[nodiscard]] slot_lease lease_slot(const keyslot_key& k, bool charge_time,
                                      bool hw_only = false);

  /// One mapped-region segment of a request, expressed in covering units.
  [[nodiscard]] cycles crypt_span(context_id ctx, addr_t addr, std::span<u8> data,
                                  bool is_write, bool charge_time);

  [[nodiscard]] cycles transform_units(keyed_cipher& kc, const keyslot_key& k,
                                       addr_t unit_base, std::span<u8> buf,
                                       bool encrypt, bool fallback, bool charge);

  sim::memory_port* lower_;
  keyslot_manager* slots_;
  engine_config cfg_;
  std::vector<keyslot_key> contexts_;
  std::vector<bool> context_live_;
  std::vector<region> regions_;
  engine_stats stats_;
};

} // namespace buscrypt::engine
