#pragma once
/// \file bus_encryption_engine.hpp
/// The unified bus-encryption engine: an inline crypto stage on the
/// processor-memory path, parameterized by keyslots instead of hard-wired
/// to one cipher. It generalises the survey's per-design EDUs (Fig. 2-8)
/// the way the Linux inline-encryption framework generalises per-driver
/// crypto: upper layers create an *encryption context* (key + backend +
/// data-unit size), the context resolves to a keyslot per request, and the
/// engine transforms whole data units addressed by their data-unit number.
///
/// Topology (survey Fig. 2c): cache -> [this engine] -> bus/DRAM, so
/// everything on the external bus — and every probe — sees ciphertext.
/// Multiple address regions may be mapped to different contexts (secure
/// kernel vs application vs DMA buffer), which is what a small slot pool
/// with LRU reuse models.
///
/// On a multi-master interconnect the engine additionally acts as the
/// hardware firewall (Cotret et al.): a region may be *bound to one
/// master* (bind_domain), making protection a per-master property. A
/// request from any other master is denied on-chip — reads return the
/// bus-error fill pattern instead of plaintext, writes are dropped, no
/// ciphertext ever reaches the external bus — and the denial is counted
/// in that master's domain_stats. Domains with different keys share the
/// one keyslot pool through their contexts, exactly as concurrent masters
/// share the hardware.

#include "engine/keyslot_manager.hpp"
#include "engine/memory_authenticator.hpp"
#include "sim/firewall.hpp"
#include "sim/memory_port.hpp"

#include <utility>
#include <vector>

namespace buscrypt::engine {

struct engine_config {
  /// Cycles to program key material into a hardware slot (charged on each
  /// slot miss; the warm-slot hit path is free, which is the point of the
  /// pool).
  cycles slot_program_cycles = 40;
  /// When no slot is free, transform with a software one-shot cipher
  /// instead of failing (the blk-crypto-fallback analogue). Disabling it
  /// makes a pinned-out pool throw, which the tests exercise.
  bool allow_fallback = true;
  /// Cycle multiplier for the fallback path (software is slower than the
  /// inline hardware datapath).
  cycles fallback_penalty = 4;
  /// Cycles a denied cross-domain access costs (the firewall's bus-error
  /// response). Denials never touch the lower port.
  cycles fault_cycles = 8;
};

/// Per-engine counters.
struct engine_stats {
  u64 reads = 0;
  u64 writes = 0;
  u64 units = 0;          ///< data units transformed
  u64 rmw_ops = 0;        ///< partial-unit writes needing read-modify-write
  u64 fallbacks = 0;      ///< requests served by the software fallback
  u64 passthrough = 0;    ///< requests to unmapped (unprotected) regions
  u64 batches = 0;        ///< submit() calls served
  u64 batched_txns = 0;   ///< transactions carried by those batches
  u64 batch_native = 0;   ///< transactions taken by the pipelined batch path
  u64 domain_faults = 0;  ///< cross-domain accesses denied by the firewall
  u64 firewall_denials = 0; ///< spans refused by the per-master rule tables
  u64 integrity_faults = 0; ///< authenticated units that failed verification
  u64 reprogram_stalls = 0; ///< requests that waited for a demand key program
  cycles reprogram_stall_cycles = 0; ///< cycles those waits cost (in crypto_cycles)
  cycles crypto_cycles = 0;
};

/// Per-master counters of protected-region traffic (accesses through
/// mapped regions, by the master that issued them) plus denials.
struct domain_stats {
  u64 reads = 0;   ///< protected spans read by this master
  u64 writes = 0;  ///< protected spans written by this master
  u64 bytes = 0;   ///< payload bytes through protected regions
  u64 faults = 0;  ///< accesses denied (region bound to another master)
  u64 firewall_denials = 0; ///< spans this master's rule table refused
  u64 integrity_faults = 0; ///< tampered units this master fetched
};

/// Inline encryption stage between the cache level and external memory.
class bus_encryption_engine final : public sim::memory_port {
 public:
  using context_id = std::size_t;
  using master_id = sim::master_id;
  static constexpr context_id no_context = static_cast<context_id>(-1);
  /// Region owner sentinel: any master may access (a shared mapping).
  /// The one reserved id from sim/mem_txn.hpp — never a real master.
  static constexpr master_id any_master = sim::any_master;
  /// Fill byte a denied read returns — the bus-error pattern a firewall
  /// drives instead of data (never the region's plaintext).
  static constexpr u8 fault_fill = 0xFF;

  /// \param lower the external path (bus + DRAM); referenced, not owned.
  /// \param slots shared keyslot pool; referenced, not owned.
  bus_encryption_engine(sim::memory_port& lower, keyslot_manager& slots,
                        engine_config cfg = {});

  /// Register an encryption context. Validates the backend name, the key
  /// length, and that the data-unit size is a positive multiple of the
  /// backend granule. The key schedule is not expanded until first use.
  [[nodiscard]] context_id create_context(keyslot_key k);

  /// Drop a context and evict its key from the slot pool if idle.
  void destroy_context(context_id ctx);

  /// Protect [base, base+len) with \p ctx, accessible to every master.
  /// Later mappings win on overlap. Requests to unmapped addresses pass
  /// through in plaintext.
  void map_region(addr_t base, std::size_t len, context_id ctx);

  /// Protect [base, base+len) with \p ctx as \p owner's private domain:
  /// only transactions tagged with that master id may touch it. Like
  /// map_region, later mappings win — a domain binding carves its range
  /// out of any older shared mapping, and the denied range never falls
  /// through to the older context (that would leak plaintext).
  void bind_domain(master_id owner, addr_t base, std::size_t len, context_id ctx);

  /// The context protecting \p addr, or no_context (ownership-blind).
  [[nodiscard]] context_id context_at(addr_t addr) const noexcept;

  /// The context at \p addr and the length of the longest prefix of
  /// [addr, addr+len) it uniformly covers, ignoring domain ownership
  /// (the offline/trusted view). One pass over the region list.
  [[nodiscard]] std::pair<context_id, std::size_t> span_at(addr_t addr,
                                                           std::size_t len) const noexcept;

  /// One uniform span of a request as master \p m sees it: the covering
  /// context, the prefix length it uniformly covers (splitting at both
  /// context and ownership boundaries), and whether \p m is allowed in.
  struct access_span {
    context_id ctx = no_context;
    std::size_t len = 0;
    bool allowed = true;
  };
  [[nodiscard]] access_span span_for(master_id m, addr_t addr,
                                     std::size_t len) const noexcept;

  /// Guard \p ctx with an authentication scheme over cfg's window (see
  /// memory_authenticator). The current external content of the window is
  /// sealed at attach, so a clean run never faults; every later store
  /// through the engine keeps tags / tree / redundancy in sync. Composes
  /// with everything the context already does: keyslots (AREA runs inside
  /// the context's own leased cipher), protection domains (a tampered
  /// fetch is charged to the issuing master's integrity_faults) and the
  /// batched pipeline (tag traffic rides the same lower batches).
  /// \throws std::invalid_argument for a dead context, a second attach,
  ///         mode none, AREA on a backend without block diffusion
  ///         (pad-precomputable CTR/stream modes), or any window/tag
  ///         geometry the authenticator rejects.
  memory_authenticator& attach_auth(context_id ctx, auth_config cfg);

  /// The authenticator guarding \p ctx, or nullptr (auth_mode none).
  [[nodiscard]] memory_authenticator* auth_of(context_id ctx) noexcept {
    return ctx < auths_.size() ? auths_[ctx].get() : nullptr;
  }
  [[nodiscard]] const memory_authenticator* auth_of(context_id ctx) const noexcept {
    return ctx < auths_.size() ? auths_[ctx].get() : nullptr;
  }

  /// Master whose scalar read()/write() calls are being served: always
  /// sim::cpu_master, except while submit() detours a tagged transaction
  /// through the scalar datapath (the batch path tags transactions, so
  /// there is deliberately no public setter — the firewall subject cannot
  /// be switched from outside).
  [[nodiscard]] master_id active_master() const noexcept { return active_master_; }

  /// Attach the interconnect's bus firewall: every request is checked
  /// against it *before* the protection-domain map — Cotret et al.'s rule
  /// tables sit at the master's bus interface, in front of the EDU, so a
  /// denied span never reaches span_for (reads get the fault_fill
  /// bus-error pattern, writes are dropped, fault_cycles charged).
  /// Referenced, not owned; nullptr detaches (the PR 3 behaviour).
  void set_firewall(sim::bus_firewall* fw) noexcept { fw_ = fw; }
  [[nodiscard]] sim::bus_firewall* firewall() const noexcept { return fw_; }

  /// Per-master traffic/denial counters (empty stats for unseen masters).
  [[nodiscard]] domain_stats domain(master_id m) const noexcept;

  // --- memory_port: the timed, functional datapath -------------------------
  [[nodiscard]] cycles read(addr_t addr, std::span<u8> out) override;
  [[nodiscard]] cycles write(addr_t addr, std::span<const u8> in) override;

  /// Native batch path. Per batch: every referenced context resolves to a
  /// keyslot once (slots are pinned and programmed at most once, however
  /// many transactions share them), write units are enciphered up front,
  /// the whole batch goes to the lower port as one submission (multi-bank
  /// overlap composes), and read units decipher as the data lands — so the
  /// crypto pipeline runs concurrently with the bus schedule and the batch
  /// costs max(mem, crypto) instead of their sum. Transactions that need
  /// unit-unaligned or unmapped handling drop to the scalar path without
  /// breaking functional order (pending lower work is flushed first).
  void submit(std::span<sim::mem_txn> batch) override;

  // --- offline paths (no simulated time) -----------------------------------
  /// Install a plaintext image through the encrypt path ("memory content
  /// ciphering can be done offline", Section 2.1).
  void install(addr_t base, std::span<const u8> plain);
  /// Plaintext view through the decrypt path (verification hook).
  void read_plain(addr_t base, std::span<u8> out);

  [[nodiscard]] const engine_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] keyslot_manager& slots() noexcept { return *slots_; }
  [[nodiscard]] const keyslot_key& context_key(context_id ctx) const;

 private:
  struct region {
    addr_t base = 0;
    std::size_t len = 0;
    context_id ctx = no_context;
    master_id owner = any_master; ///< any_master = shared mapping
  };

  /// A keyslot held for the duration of one request or one batch, or the
  /// software fallback when the pool is pinned out. The single home of the
  /// acquire/program-cost/fallback protocol, shared by the scalar and
  /// batched datapaths so their timing and stats cannot drift apart.
  struct slot_lease {
    std::unique_ptr<slot_guard> guard;      ///< pins the hardware slot
    std::unique_ptr<keyed_cipher> software; ///< fallback instance, if used
    keyed_cipher* kc = nullptr;
    bool fallback = false;
    cycles setup = 0; ///< slot-program cycles charged (0 on a warm hit)
  };

  /// With \p hw_only, a pinned-out pool returns a lease whose kc is null
  /// instead of falling back or throwing — the batch path probes this way
  /// so it can retire its window and retry before giving up.
  /// \throws std::runtime_error when the pool is pinned, fallback is off
  ///         and \p hw_only is false.
  [[nodiscard]] slot_lease lease_slot(const keyslot_key& k, bool charge_time,
                                      bool hw_only = false);

  /// One mapped-region segment of a request, expressed in covering units.
  [[nodiscard]] cycles crypt_span(context_id ctx, addr_t addr, std::span<u8> data,
                                  bool is_write, bool charge_time);

  /// crypt_span's AREA datapath: per-unit expanded payloads through the
  /// context's leased cipher instead of the in-place unit transform.
  [[nodiscard]] cycles area_span(memory_authenticator& auth, keyed_cipher& kc,
                                 const keyslot_key& k, addr_t addr, std::span<u8> data,
                                 bool is_write, bool charge_time, bool fallback);

  /// Charge one verified-failed unit: engine + per-master counters, the
  /// bus-error fill already applied by the caller.
  void note_integrity_fault(master_id m);

  [[nodiscard]] cycles transform_units(keyed_cipher& kc, const keyslot_key& k,
                                       addr_t unit_base, std::span<u8> buf,
                                       bool encrypt, bool fallback, bool charge);

  /// transform_units via one bulk keystream call (generate_pads) plus one
  /// XOR pass — the batch path's hot loop for pad-precomputable backends
  /// (CTR, streams). Byte-identical to transform_units with identical
  /// charged cycles and stats; falls back to it for block modes or
  /// unit-unaligned spans.
  [[nodiscard]] cycles transform_units_bulk(keyed_cipher& kc, const keyslot_key& k,
                                            addr_t unit_base, std::span<u8> buf,
                                            bool encrypt, bool fallback, bool charge);

  /// Record protected-region traffic (or a denial) against \p m.
  void note_domain(master_id m, bool is_write, std::size_t n, bool fault);

  /// Charge one firewall-denied span: engine + per-master counters (the
  /// bus_firewall's own per-rule counters were bumped by check()).
  void note_firewall(master_id m);

  /// \p m's counters, created on first sight (few masters: linear scan).
  [[nodiscard]] domain_stats& domain_slot(master_id m);

  sim::memory_port* lower_;
  keyslot_manager* slots_;
  engine_config cfg_;
  std::vector<keyslot_key> contexts_;
  std::vector<bool> context_live_;
  std::vector<std::unique_ptr<memory_authenticator>> auths_; ///< by context id
  std::vector<region> regions_;
  std::vector<std::pair<master_id, domain_stats>> domains_; ///< few masters: linear
  sim::bus_firewall* fw_ = nullptr; ///< checked before span_for when attached
  master_id active_master_ = sim::cpu_master;
  engine_stats stats_;
};

} // namespace buscrypt::engine
