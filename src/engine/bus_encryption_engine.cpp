#include "engine/bus_encryption_engine.hpp"

#include "common/bitops.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace buscrypt::engine {

bus_encryption_engine::bus_encryption_engine(sim::memory_port& lower,
                                             keyslot_manager& slots, engine_config cfg)
    : lower_(&lower), slots_(&slots), cfg_(cfg) {}

bus_encryption_engine::context_id bus_encryption_engine::create_context(keyslot_key k) {
  const cipher_backend& backend = slots_->registry().at(k.backend);
  if (!backend.key_len_ok(k.key.size()))
    throw std::invalid_argument("create_context: bad key length for backend " + k.backend);
  // Granule check needs a keyed instance's view; all our backends expose a
  // fixed granule independent of the key, so probe with the key itself.
  const auto probe = backend.make_keyed(k.key);
  if (k.data_unit_size == 0 || k.data_unit_size % probe->granule() != 0)
    throw std::invalid_argument("create_context: data_unit_size not a multiple of the "
                                "cipher granule for backend " + k.backend);
  if (k.data_unit_size > backend.max_data_unit_size())
    throw std::invalid_argument("create_context: data_unit_size exceeds the IV-safe "
                                "bound for backend " + k.backend +
                                " (CTR keystream would repeat across units)");
  contexts_.push_back(std::move(k));
  context_live_.push_back(true);
  auths_.push_back(nullptr);
  return contexts_.size() - 1;
}

void bus_encryption_engine::destroy_context(context_id ctx) {
  if (ctx >= contexts_.size() || !context_live_[ctx])
    throw std::out_of_range("destroy_context: bad context id");
  context_live_[ctx] = false;
  std::erase_if(regions_, [ctx](const region& r) { return r.ctx == ctx; });
  auths_[ctx].reset();
  (void)slots_->evict(contexts_[ctx]); // best-effort: may be absent or busy
}

memory_authenticator& bus_encryption_engine::attach_auth(context_id ctx,
                                                         auth_config cfg) {
  if (ctx >= contexts_.size() || !context_live_[ctx])
    throw std::out_of_range("attach_auth: bad context id");
  if (auths_[ctx] != nullptr)
    throw std::invalid_argument("attach_auth: context already authenticated");
  const keyslot_key& k = contexts_[ctx];
  if (cfg.mode == auth_mode::area) {
    // AREA's check IS the block cipher's diffusion: a pad-precomputable
    // mode (CTR, stream) XORs bit-for-bit, so a flipped ciphertext bit
    // would flip exactly one plaintext bit and leave every nonce slice
    // intact. Reject those up front.
    const auto probe = slots_->registry().at(k.backend).make_keyed(k.key);
    if (probe->pad_precomputable())
      throw std::invalid_argument("attach_auth: AREA needs a diffusing block mode "
                                  "(got pad-precomputable backend " + k.backend + ")");
    if (cfg.tag_bytes >= probe->granule())
      throw std::invalid_argument("attach_auth: AREA redundancy must leave data "
                                  "capacity in every cipher block");
  }
  auths_[ctx] = std::make_unique<memory_authenticator>(*lower_, std::move(cfg),
                                                       k.data_unit_size);
  memory_authenticator& auth = *auths_[ctx];
  if (auth.mode() == auth_mode::area) {
    // Seal the window in place: reinterpret the current external bytes
    // through the context's normal decrypt, then re-store them in the
    // expanded AREA format at version 0. Offline, like install().
    const std::size_t du = k.data_unit_size;
    slot_lease lease = lease_slot(k, /*charge_time=*/false);
    bytes plain(du), ct(du);
    for (addr_t a = auth.config().base; a < auth.config().limit; a += du) {
      (void)lower_->read(a, plain);
      (void)transform_units(*lease.kc, k, a, plain, /*encrypt=*/false, lease.fallback,
                            /*charge=*/false);
      (void)auth.area_encipher(*lease.kc, a, plain, ct, /*initial=*/true,
                               /*charge=*/false);
      (void)lower_->write(a, ct);
    }
  } else {
    auth.seal_from_memory();
  }
  return auth;
}

void bus_encryption_engine::note_integrity_fault(master_id m) {
  ++stats_.integrity_faults;
  ++domain_slot(m).integrity_faults;
}

void bus_encryption_engine::map_region(addr_t base, std::size_t len, context_id ctx) {
  if (ctx != no_context && (ctx >= contexts_.size() || !context_live_[ctx]))
    throw std::out_of_range("map_region: bad context id");
  if (ctx != no_context && base % contexts_[ctx].data_unit_size != 0)
    throw std::invalid_argument("map_region: base not data-unit aligned");
  regions_.push_back({base, len, ctx, any_master});
}

void bus_encryption_engine::bind_domain(master_id owner, addr_t base, std::size_t len,
                                        context_id ctx) {
  if (owner == any_master)
    throw std::invalid_argument("bind_domain: owner must be a concrete master "
                                "(use map_region for shared mappings)");
  map_region(base, len, ctx); // same validation + later-mapping-wins order
  regions_.back().owner = owner;
}

bus_encryption_engine::context_id
bus_encryption_engine::context_at(addr_t addr) const noexcept {
  // Later mappings win: scan newest-first.
  for (auto it = regions_.rbegin(); it != regions_.rend(); ++it)
    if (addr >= it->base && addr - it->base < it->len) return it->ctx;
  return no_context;
}

std::pair<bus_encryption_engine::context_id, std::size_t>
bus_encryption_engine::span_at(addr_t addr, std::size_t len) const noexcept {
  // The trusted, ownership-blind resolution (offline install/readback):
  // same span splitting, access check discarded.
  const access_span s = span_for(any_master, addr, len);
  return {s.ctx, s.len};
}

bus_encryption_engine::access_span
bus_encryption_engine::span_for(master_id m, addr_t addr, std::size_t len) const noexcept {
  // Winning region = newest one containing addr (its index bounds which
  // later mappings can still override parts of the span). Ownership rides
  // the region, so domain boundaries and context boundaries split spans
  // identically.
  std::size_t win = regions_.size();
  for (std::size_t i = regions_.size(); i-- > 0;) {
    const region& r = regions_[i];
    if (addr >= r.base && addr - r.base < r.len) {
      win = i;
      break;
    }
  }
  addr_t end = addr + len;
  access_span out;
  if (win != regions_.size()) {
    const region& r = regions_[win];
    out.ctx = r.ctx;
    // Only the region's owner (or anyone, on a shared mapping) gets in.
    // any_master is never trusted here: owners are always concrete ids,
    // so a request forged with the sentinel can match no owned region —
    // the trusted ownership-blind view exists only behind span_at(),
    // which the untrusted datapaths never call with attacker-controlled
    // masters.
    out.allowed = r.owner == any_master || r.owner == m;
    end = std::min<addr_t>(end, r.base + r.len);
  }
  // Any newer region starting inside (addr, end) changes the context there.
  for (std::size_t j = (win == regions_.size() ? 0 : win + 1); j < regions_.size(); ++j)
    if (regions_[j].base > addr && regions_[j].base < end) end = regions_[j].base;
  out.len = static_cast<std::size_t>(end - addr);
  return out;
}

domain_stats bus_encryption_engine::domain(master_id m) const noexcept {
  for (const auto& [id, st] : domains_)
    if (id == m) return st;
  return {};
}

domain_stats& bus_encryption_engine::domain_slot(master_id m) {
  for (auto& [id, s] : domains_)
    if (id == m) return s;
  return domains_.emplace_back(m, domain_stats{}).second;
}

void bus_encryption_engine::note_domain(master_id m, bool is_write, std::size_t n,
                                        bool fault) {
  domain_stats& st = domain_slot(m);
  if (fault) {
    ++st.faults;
    ++stats_.domain_faults;
    return;
  }
  if (is_write) ++st.writes;
  else ++st.reads;
  st.bytes += n;
}

void bus_encryption_engine::note_firewall(master_id m) {
  ++domain_slot(m).firewall_denials;
  ++stats_.firewall_denials;
}

const keyslot_key& bus_encryption_engine::context_key(context_id ctx) const {
  if (ctx >= contexts_.size() || !context_live_[ctx])
    throw std::out_of_range("context_key: bad context id");
  return contexts_[ctx];
}

cycles bus_encryption_engine::transform_units(keyed_cipher& kc, const keyslot_key& k,
                                              addr_t unit_base, std::span<u8> buf,
                                              bool encrypt, bool fallback, bool charge) {
  const std::size_t du = k.data_unit_size;
  cycles t = 0;
  // Whole-unit prefix in one bulk call: the backend sees the entire run
  // (bitsliced DES, batched ESSIV IVs, windowed CTR pads) instead of one
  // unit at a time. Charging is per full unit with the same formula as the
  // scalar loop below, so simulated cycles are bit-identical.
  std::size_t off = 0;
  const std::size_t whole =
      unit_base % du == 0 ? buf.size() - buf.size() % du : 0;
  if (whole != 0) {
    std::span<u8> run = buf.first(whole);
    if (encrypt) kc.encrypt_units(unit_base / du, du, run, run);
    else kc.decrypt_units(unit_base / du, du, run, run);
    off = whole;
    if (charge) {
      const cycles n = static_cast<cycles>(whole / du);
      cycles c = kc.unit_cost(du, encrypt);
      if (fallback) c *= cfg_.fallback_penalty;
      t += c * n;
      stats_.crypto_cycles += c * n;
      stats_.units += static_cast<u64>(n);
    }
  }
  for (; off < buf.size(); off += du) {
    const std::size_t n = std::min(du, buf.size() - off);
    const u64 dun = (unit_base + off) / du;
    std::span<u8> unit = buf.subspan(off, n);
    if (encrypt) kc.encrypt_unit(dun, unit, unit);
    else kc.decrypt_unit(dun, unit, unit);
    if (charge) {
      cycles c = kc.unit_cost(n, encrypt);
      if (fallback) c *= cfg_.fallback_penalty;
      t += c;
      stats_.crypto_cycles += c;
      ++stats_.units;
    }
  }
  return t;
}

cycles bus_encryption_engine::transform_units_bulk(keyed_cipher& kc,
                                                   const keyslot_key& k,
                                                   addr_t unit_base, std::span<u8> buf,
                                                   bool encrypt, bool fallback,
                                                   bool charge) {
  const std::size_t du = k.data_unit_size;
  if (!kc.pad_precomputable() || buf.empty() || unit_base % du != 0 ||
      buf.size() % du != 0)
    return transform_units(kc, k, unit_base, buf, encrypt, fallback, charge);
  bytes pad(buf.size());
  kc.generate_pads(unit_base / du, du, pad);
  xor_bytes(buf, pad); // u64-wide pad application

  if (!charge) return 0;
  const cycles n = static_cast<cycles>(buf.size() / du);
  cycles c = kc.unit_cost(du, encrypt);
  if (fallback) c *= cfg_.fallback_penalty;
  stats_.crypto_cycles += c * n;
  stats_.units += n;
  return c * n;
}

bus_encryption_engine::slot_lease
bus_encryption_engine::lease_slot(const keyslot_key& k, bool charge_time, bool hw_only) {
  slot_lease lease;
  // A stall is charged only for *demand* programs (cold or displacing);
  // prefetch refills expand their schedules in idle time, so a hit on a
  // prefetched slot stays free — that is the policy's whole payoff.
  const keyslot_stats& ks = slots_->stats();
  const u64 demand_before = ks.cold_programs + ks.reprograms;
  lease.guard = std::make_unique<slot_guard>(*slots_, k);
  if (lease.guard->valid()) {
    lease.kc = &lease.guard->keyed();
    if (charge_time && ks.cold_programs + ks.reprograms != demand_before) {
      lease.setup = cfg_.slot_program_cycles;
      stats_.crypto_cycles += cfg_.slot_program_cycles;
      ++stats_.reprogram_stalls;
      stats_.reprogram_stall_cycles += cfg_.slot_program_cycles;
    }
    return lease;
  }
  if (hw_only) {
    lease.guard.reset(); // caller retires its window and retries
    return lease;
  }
  // Fall back to a software one-shot cipher when the pool is pinned out.
  if (!cfg_.allow_fallback)
    throw std::runtime_error("bus_encryption_engine: keyslot pool exhausted and "
                             "fallback disabled");
  lease.software = slots_->registry().at(k.backend).make_keyed(k.key);
  lease.kc = lease.software.get();
  lease.fallback = true;
  ++stats_.fallbacks;
  return lease;
}

cycles bus_encryption_engine::crypt_span(context_id ctx, addr_t addr, std::span<u8> data,
                                         bool is_write, bool charge_time) {
  const keyslot_key& k = contexts_[ctx];
  const std::size_t du = k.data_unit_size;
  const addr_t a0 = addr / du * du;                      // covering range, unit aligned
  const addr_t a1 = (addr + data.size() + du - 1) / du * du;
  const bool head_partial = addr != a0;
  const bool tail_partial = addr + data.size() != a1;

  slot_lease lease = lease_slot(k, charge_time);
  keyed_cipher* kc = lease.kc;
  const bool fallback = lease.fallback;
  cycles t = lease.setup;

  memory_authenticator* auth = auths_[ctx].get();
  if (auth != nullptr && auth->mode() == auth_mode::area)
    return t + area_span(*auth, *kc, k, addr, data, is_write, charge_time, fallback);

  bytes cover(static_cast<std::size_t>(a1 - a0));

  // mac/hash_tree verify the *ciphertext* of one covered unit; a mismatch
  // is counted against the issuing master and the unit's plaintext is
  // replaced by the bus-error fill (the CPU must never consume it).
  auto verify_ct = [&](addr_t unit_addr, std::span<const u8> ct) -> bool {
    if (auth == nullptr || !auth->covers(unit_addr)) return true;
    const auto cr = auth->verify_unit(unit_addr, ct, charge_time);
    t += cr.bus + cr.compute;
    return cr.ok;
  };
  auto fault_unit = [&](std::span<u8> plain) {
    std::fill(plain.begin(), plain.end(), fault_fill);
    note_integrity_fault(active_master_);
    if (charge_time) t += cfg_.fault_cycles;
  };

  if (!is_write) {
    t += lower_->read(a0, cover);
    std::vector<std::size_t> failed;
    if (auth != nullptr)
      for (std::size_t off = 0; off < cover.size(); off += du)
        if (!verify_ct(a0 + off, std::span<const u8>(cover).subspan(off, du)))
          failed.push_back(off);
    t += transform_units(*kc, k, a0, cover, /*encrypt=*/false, fallback, charge_time);
    for (const std::size_t off : failed)
      fault_unit(std::span<u8>(cover).subspan(off, du));
    std::copy_n(cover.begin() + static_cast<std::ptrdiff_t>(addr - a0), data.size(),
                data.begin());
    return t;
  }

  // Write path. Partial edge units trigger the paper's five-step penalty:
  // read, decipher, modify, re-cipher, write back.
  if (head_partial || tail_partial) {
    if (head_partial) {
      std::span<u8> head(cover.data(), du);
      t += lower_->read(a0, head);
      const bool ok = verify_ct(a0, head);
      t += transform_units(*kc, k, a0, head, /*encrypt=*/false, fallback, charge_time);
      if (!ok) fault_unit(head);
      ++stats_.rmw_ops;
    }
    if (tail_partial && (a1 - a0 > du || !head_partial)) {
      std::span<u8> tail(cover.data() + cover.size() - du, du);
      t += lower_->read(a1 - du, tail);
      const bool ok = verify_ct(a1 - du, tail);
      t += transform_units(*kc, k, a1 - du, tail, /*encrypt=*/false, fallback, charge_time);
      if (!ok) fault_unit(tail);
      ++stats_.rmw_ops; // guard above ensures this unit was not the head RMW
    }
  }
  std::copy(data.begin(), data.end(),
            cover.begin() + static_cast<std::ptrdiff_t>(addr - a0));
  t += transform_units(*kc, k, a0, cover, /*encrypt=*/true, fallback, charge_time);
  if (auth != nullptr)
    for (std::size_t off = 0; off < cover.size(); off += du) {
      const addr_t ua = a0 + off;
      if (!auth->covers(ua)) continue;
      const auto cr =
          auth->update_unit(ua, std::span<const u8>(cover).subspan(off, du), charge_time);
      t += cr.bus + cr.compute;
      if (!cr.ok) { // hash_tree caught a tampered stored path on the write walk
        note_integrity_fault(active_master_);
        if (charge_time) t += cfg_.fault_cycles;
      }
    }
  t += lower_->write(a0, cover);
  return t;
}

cycles bus_encryption_engine::area_span(memory_authenticator& auth, keyed_cipher& kc,
                                        const keyslot_key& k, addr_t addr,
                                        std::span<u8> data, bool is_write,
                                        bool charge_time, bool fallback) {
  const std::size_t du = k.data_unit_size;
  const addr_t a0 = addr / du * du;
  const addr_t a1 = (addr + data.size() + du - 1) / du * du;
  const bool head_partial = addr != a0;
  const bool tail_partial = addr + data.size() != a1;
  cycles t = 0;

  auto charge_unit = [&](cycles c) {
    if (!charge_time) return;
    t += c;
    stats_.crypto_cycles += c;
    ++stats_.units;
  };
  // Unseal one covered unit in place: DRAM ciphertext + sideband ->
  // plaintext, nonce slices checked on the way.
  auto unseal = [&](addr_t ua, std::span<u8> buf) {
    bytes plain(du);
    const auto cr = auth.area_decipher(kc, ua, buf, plain, charge_time);
    std::copy(plain.begin(), plain.end(), buf.begin());
    charge_unit(cr.compute);
    if (!cr.ok) {
      std::fill(buf.begin(), buf.end(), fault_fill);
      note_integrity_fault(active_master_);
      if (charge_time) t += cfg_.fault_cycles;
    }
  };

  if (!is_write) {
    bytes cover(static_cast<std::size_t>(a1 - a0));
    t += lower_->read(a0, cover);
    for (std::size_t off = 0; off < cover.size(); off += du) {
      const addr_t ua = a0 + off;
      std::span<u8> unit = std::span<u8>(cover).subspan(off, du);
      if (auth.covers(ua)) unseal(ua, unit);
      else t += transform_units(kc, k, ua, unit, /*encrypt=*/false, fallback, charge_time);
    }
    std::copy_n(cover.begin() + static_cast<std::ptrdiff_t>(addr - a0), data.size(),
                data.begin());
    return t;
  }

  // Write path: assemble the plaintext cover (RMW through the unseal for
  // partial edges), then re-seal unit by unit and store in one burst.
  bytes plain_cover(static_cast<std::size_t>(a1 - a0));
  auto rmw_read = [&](addr_t ua, std::span<u8> buf) {
    t += lower_->read(ua, buf);
    if (auth.covers(ua)) unseal(ua, buf);
    else t += transform_units(kc, k, ua, buf, /*encrypt=*/false, fallback, charge_time);
    ++stats_.rmw_ops;
  };
  if (head_partial) rmw_read(a0, std::span<u8>(plain_cover.data(), du));
  if (tail_partial && (a1 - a0 > du || !head_partial))
    rmw_read(a1 - du, std::span<u8>(plain_cover.data() + plain_cover.size() - du, du));
  std::copy(data.begin(), data.end(),
            plain_cover.begin() + static_cast<std::ptrdiff_t>(addr - a0));

  bytes ct_cover(plain_cover.size());
  for (std::size_t off = 0; off < plain_cover.size(); off += du) {
    const addr_t ua = a0 + off;
    std::span<u8> ct = std::span<u8>(ct_cover).subspan(off, du);
    if (auth.covers(ua)) {
      const cycles c = auth.area_encipher(
          kc, ua, std::span<const u8>(plain_cover).subspan(off, du), ct,
          /*initial=*/false, charge_time);
      charge_unit(c);
    } else {
      std::copy_n(plain_cover.begin() + static_cast<std::ptrdiff_t>(off), du, ct.begin());
      t += transform_units(kc, k, ua, ct, /*encrypt=*/true, fallback, charge_time);
    }
  }
  t += lower_->write(a0, ct_cover);
  return t;
}

cycles bus_encryption_engine::read(addr_t addr, std::span<u8> out) {
  ++stats_.reads;
  cycles t = 0;
  std::size_t off = 0;
  while (off < out.size()) {
    std::size_t lim = out.size() - off;
    if (fw_ != nullptr) {
      // Rule tables sit in front of the domain map: a denied span is the
      // bus-error fill, never plaintext, and span_for is not consulted.
      const sim::fw_span fd = fw_->check(active_master_, addr + off, lim,
                                         /*is_write=*/false);
      if (!fd.allowed) {
        std::span<u8> part = out.subspan(off, fd.len);
        std::fill(part.begin(), part.end(), fault_fill);
        note_firewall(active_master_);
        t += cfg_.fault_cycles;
        off += fd.len;
        continue;
      }
      lim = fd.len;
    }
    const access_span s = span_for(active_master_, addr + off, lim);
    std::span<u8> part = out.subspan(off, s.len);
    if (!s.allowed) {
      // Firewall denial: bus-error fill, never the domain's plaintext,
      // and the request is blocked on-chip (no lower traffic to probe).
      std::fill(part.begin(), part.end(), fault_fill);
      note_domain(active_master_, /*is_write=*/false, s.len, /*fault=*/true);
      t += cfg_.fault_cycles;
    } else if (s.ctx == no_context) {
      t += lower_->read(addr + off, part);
      ++stats_.passthrough;
    } else {
      t += crypt_span(s.ctx, addr + off, part, /*is_write=*/false, true);
      note_domain(active_master_, /*is_write=*/false, s.len, /*fault=*/false);
    }
    off += s.len;
  }
  return t;
}

cycles bus_encryption_engine::write(addr_t addr, std::span<const u8> in) {
  ++stats_.writes;
  cycles t = 0;
  std::size_t off = 0;
  while (off < in.size()) {
    std::size_t lim = in.size() - off;
    if (fw_ != nullptr) {
      const sim::fw_span fd = fw_->check(active_master_, addr + off, lim,
                                         /*is_write=*/true);
      if (!fd.allowed) {
        // Denied writes are dropped whole, like domain denials below.
        note_firewall(active_master_);
        t += cfg_.fault_cycles;
        off += fd.len;
        continue;
      }
      lim = fd.len;
    }
    const access_span s = span_for(active_master_, addr + off, lim);
    if (!s.allowed) {
      // Denied writes are dropped whole: the owning domain's ciphertext
      // (and plaintext) is untouched.
      note_domain(active_master_, /*is_write=*/true, s.len, /*fault=*/true);
      t += cfg_.fault_cycles;
    } else if (s.ctx == no_context) {
      t += lower_->write(addr + off, in.subspan(off, s.len));
      ++stats_.passthrough;
    } else {
      bytes tmp(in.begin() + static_cast<std::ptrdiff_t>(off),
                in.begin() + static_cast<std::ptrdiff_t>(off + s.len));
      t += crypt_span(s.ctx, addr + off, tmp, /*is_write=*/true, true);
      note_domain(active_master_, /*is_write=*/true, s.len, /*fault=*/false);
    }
    off += s.len;
  }
  return t;
}

void bus_encryption_engine::submit(std::span<sim::mem_txn> batch) {
  ++stats_.batches;
  stats_.batched_txns += batch.size();

  // One keyslot resolution per context per batch: the lease pins the slot
  // (refcount) for the whole batch, so the program cost is paid at most
  // once however many transactions share the context.
  // Running batch clock: slot setup, flush makespans and scalar detours
  // accrue here in issue order, so each txn can be stamped with its own
  // completion time (relative to the last drain(), per the contract).
  const cycles base = pending_txn_cycles_;
  cycles clock = 0;

  std::vector<std::pair<context_id, slot_lease>> live;
  // Lookup-only: pin() below guarantees every staged context is in `live`,
  // and a fresh lease here would bypass the contention-retirement protocol.
  auto resolve = [&](context_id ctx) -> std::pair<keyed_cipher*, bool> {
    for (auto& [id, lease] : live)
      if (id == ctx) return {lease.kc, lease.fallback};
    throw std::logic_error("bus_encryption_engine: context staged without a pin");
  };
  // Hardware-only pin for the native path: never commits to the software
  // fallback, so contention can be handled by retiring the window instead.
  auto pin = [&](context_id ctx) -> bool {
    for (auto& [id, lease] : live)
      if (id == ctx) return true;
    slot_lease lease = lease_slot(contexts_[ctx], /*charge_time=*/true, /*hw_only=*/true);
    if (lease.kc == nullptr) return false;
    clock += lease.setup;
    live.emplace_back(ctx, std::move(lease));
    return true;
  };

  // Staged ciphertext for write segments; reserved up front so the spans
  // handed to the lower batch stay valid.
  std::size_t write_segs = 0;
  for (const sim::mem_txn& txn : batch)
    if (txn.is_write()) write_segs += txn.segments.size();
  std::vector<bytes> staged;
  staged.reserve(write_segs);

  struct post_read {
    keyed_cipher* kc;
    const keyslot_key* key;
    addr_t addr;
    std::span<u8> data;
    bool fallback;
    std::size_t txn_idx; ///< owning entry in `lower`, for its arrival time
    memory_authenticator* area = nullptr; ///< set when the segment unseals AREA units
    master_id master = sim::cpu_master;   ///< for integrity-fault attribution
    /// Staging-order unseal snapshots, one per covered unit in segment
    /// order: a later in-batch write of the unit must not bleed its bumped
    /// version / new sideband into this read's verify.
    std::vector<memory_authenticator::area_staged> area_snaps;
  };
  std::vector<sim::mem_txn> lower;
  std::vector<sim::mem_txn*> flush_txns; ///< batch txns aligned with `lower`;
                                         ///< null for auth (tag) side traffic
  std::vector<post_read> posts;
  cycles par_crypto = 0; ///< pad-precomputable work pending in this flush
  cycles engine_pre = 0; ///< data-dependent encipher staged before submission
  cycles mac_pre = 0;    ///< write tags staged on the serial MAC unit

  // Authentication side-channel of the same lower batch: tag lines to
  // fetch (deduped per flush), staged tag/scratch buffers (stable storage
  // — lower txns hold spans into them), and the verifies to finish once
  // data and tags arrive.
  std::deque<bytes> aux;
  struct tag_fetch {
    addr_t line = 0;
    std::size_t lower_idx = 0; ///< assigned when the fetch txn is pushed
    bytes* buf = nullptr;
  };
  std::vector<tag_fetch> tag_fetches;
  std::unordered_map<addr_t, std::size_t> tagline_map; ///< line -> tag_fetches idx
  struct pending_ver {
    memory_authenticator* auth = nullptr;
    memory_authenticator::staged_verify sv;
    std::size_t data_idx = 0; ///< entry in `lower` carrying the unit
    std::span<u8> ct;         ///< the unit inside the segment buffer
    std::ptrdiff_t fetch_idx = -1; ///< into tag_fetches; -1 = cache snapshot
    master_id master = sim::cpu_master;
  };
  std::vector<pending_ver> pending;

  // Ship the accumulated lower batch and decipher the reads it carried.
  // Called before any scalar detour so functional order is preserved.
  // Timing: pad-precomputable crypto (CTR/stream) needs only the DUN, so it
  // runs in parallel with the fetch (Fig. 2a) and the flush costs the max of
  // the two. Data-dependent crypto (ECB/CBC decrypt) runs on one serial
  // cipher core and each unit cannot start before its own data arrives, so
  // it pipelines against *later* fetches but its tail is never hidden — a
  // single-txn batch degenerates to the scalar mem + crypto.
  auto flush_lower = [&] {
    if (lower.empty()) return;
    lower_->submit(lower);
    const cycles mem_span = lower_->drain();
    // Per-lower-txn finish: data arrival, pushed later by any serial
    // decipher it still owes.
    std::vector<cycles> finish(lower.size());
    for (std::size_t i = 0; i < lower.size(); ++i) finish[i] = lower[i].complete_cycle;

    // MAC verifies first, over the ciphertext as it arrived and before the
    // decrypt pass consumes it. The MAC unit is serial: each verify starts
    // once its data AND its tag line have arrived (the overlap with other
    // transactions' fetches is the point of riding the batch).
    struct fail_rec {
      std::span<u8> span;
      master_id master;
    };
    std::vector<fail_rec> fails;
    cycles mac_done = mac_pre;
    for (pending_ver& pv : pending) {
      cycles arrive = finish[pv.data_idx];
      std::span<const u8> line{};
      if (pv.fetch_idx >= 0) {
        const tag_fetch& tf = tag_fetches[static_cast<std::size_t>(pv.fetch_idx)];
        arrive = std::max(arrive, lower[tf.lower_idx].complete_cycle);
        line = *tf.buf;
      }
      const auto cr = pv.auth->batch_finish_verify(pv.sv, pv.ct, line, /*charge=*/true);
      mac_done = std::max(mac_done, arrive) + cr.compute;
      finish[pv.data_idx] = std::max(finish[pv.data_idx], mac_done);
      if (!cr.ok) fails.push_back({pv.ct, pv.master});
    }

    cycles engine_done = engine_pre;
    for (post_read& pr : posts) {
      if (pr.area != nullptr) {
        // AREA unseal: per-unit expanded decipher on the serial core, each
        // unit gated on the segment's own data arrival.
        const std::size_t du = pr.key->data_unit_size;
        cycles done = std::max(engine_done, lower[pr.txn_idx].complete_cycle);
        std::size_t snap = 0;
        for (std::size_t off = 0; off < pr.data.size(); off += du) {
          const addr_t ua = pr.addr + off;
          std::span<u8> unit = pr.data.subspan(off, du);
          if (pr.area->covers(ua)) {
            bytes plain(du);
            const auto cr = pr.area->area_finish(*pr.kc, ua, unit, plain,
                                                 pr.area_snaps[snap++],
                                                 /*charge=*/true);
            std::copy(plain.begin(), plain.end(), unit.begin());
            stats_.crypto_cycles += cr.compute;
            ++stats_.units;
            done += cr.compute;
            if (!cr.ok) fails.push_back({unit, pr.master});
          } else {
            done += transform_units(*pr.kc, *pr.key, ua, unit, /*encrypt=*/false,
                                    pr.fallback, /*charge=*/true);
          }
        }
        engine_done = done;
        finish[pr.txn_idx] = std::max(finish[pr.txn_idx], engine_done);
        continue;
      }
      // Pad-precomputable reads take the bulk-keystream datapath: the
      // segment's whole pad in one generate_pads call, XORed on arrival.
      const cycles c =
          transform_units_bulk(*pr.kc, *pr.key, pr.addr, pr.data,
                               /*encrypt=*/false, pr.fallback, /*charge=*/true);
      if (pr.kc->pad_precomputable()) {
        par_crypto += c;
      } else {
        engine_done = std::max(engine_done, lower[pr.txn_idx].complete_cycle) + c;
        finish[pr.txn_idx] = std::max(finish[pr.txn_idx], engine_done);
      }
    }
    // A failed verify blocks the unit's plaintext: bus-error fill, charged
    // to the issuing master, after the decrypt pass so the fill survives.
    for (const fail_rec& f : fails) {
      std::fill(f.span.begin(), f.span.end(), fault_fill);
      note_integrity_fault(f.master);
    }
    cycles mono = 0; // in-order retirement: stamps stay monotone
    for (std::size_t i = 0; i < lower.size(); ++i) {
      mono = std::max(mono, finish[i]);
      if (flush_txns[i] != nullptr) flush_txns[i]->complete_cycle = base + clock + mono;
    }
    clock += std::max({mem_span, par_crypto, engine_done, mac_done});
    // Staged tags are all in DRAM and the cache now: retire the forwarding
    // window on every authenticator this batch may have touched.
    for (const auto& auth : auths_)
      if (auth != nullptr && auth->mode() == auth_mode::mac) auth->batch_flush_done();
    lower.clear();
    flush_txns.clear();
    posts.clear();
    pending.clear();
    tag_fetches.clear();
    tagline_map.clear();
    par_crypto = 0;
    engine_pre = 0;
    mac_pre = 0;
  };

  std::vector<context_id> seg_ctx; // eligibility-pass span_for results, reused below
  for (sim::mem_txn& txn : batch) {
    // The pipelined path handles whole data units inside one context; a
    // txn needing RMW, region splits, passthrough or a domain denial
    // detours via the scalar datapath (which counts its own reads/writes
    // and serves the fault fill under the txn's master).
    seg_ctx.clear();
    bool eligible = !txn.segments.empty();
    for (const sim::txn_segment& seg : txn.segments) {
      if (fw_ != nullptr) {
        // peek, not check: the counting check happens exactly once per
        // served span — at staging below, or inside the scalar detour.
        const sim::fw_span fd =
            fw_->peek(txn.master, seg.addr, seg.data.size(), txn.is_write());
        if (!fd.allowed || fd.len != seg.data.size()) {
          eligible = false;
          break;
        }
      }
      const access_span s = span_for(txn.master, seg.addr, seg.data.size());
      if (!s.allowed || s.ctx == no_context || s.len != seg.data.size()) {
        eligible = false;
        break;
      }
      const std::size_t du = contexts_[s.ctx].data_unit_size;
      if (seg.addr % du != 0 || seg.data.size() % du != 0) {
        eligible = false;
        break;
      }
      // Hash-tree verification is a causally serial walk (each level needs
      // the one below), so tree-guarded units take the scalar datapath.
      const memory_authenticator* a = auths_[s.ctx].get();
      if (a != nullptr && a->mode() == auth_mode::hash_tree &&
          seg.addr < a->config().limit && seg.addr + seg.data.size() > a->config().base) {
        eligible = false;
        break;
      }
      seg_ctx.push_back(s.ctx);
    }

    if (eligible) {
      // Pin every context this txn touches before staging any of it. A
      // pool miss first retires the window — flushing pending work and
      // releasing this batch's pins, the per-request release the scalar
      // path gets from its slot guards — then retries; a txn whose own
      // context set still cannot co-reside in the pool detours to the
      // scalar datapath, which leases (and may fall back) per segment
      // exactly as scalar issue would.
      for (int attempt = 0;; ++attempt) {
        bool missed = false;
        for (context_id ctx : seg_ctx)
          if (!pin(ctx)) {
            missed = true;
            break;
          }
        if (!missed) break;
        flush_lower();
        live.clear();
        if (attempt == 1) {
          eligible = false;
          break;
        }
      }
    }

    if (!eligible) {
      flush_lower();
      live.clear(); // release this batch's pins: the detour leases per request
      // The scalar datapath serves the detour as the txn's master, so
      // domain checks, fault fills and per-domain stats stay correct.
      // RAII swap: a throw mid-detour (e.g. pinned pool with fallback
      // off) must not leave the firewall subject stuck on this master.
      struct scoped_master {
        master_id* slot;
        master_id prev;
        scoped_master(master_id& s, master_id m) : slot(&s), prev(s) { s = m; }
        ~scoped_master() { *slot = prev; }
      } swap(active_master_, txn.master);
      for (sim::txn_segment& seg : txn.segments)
        clock += txn.is_write() ? write(seg.addr, std::span<const u8>(seg.data))
                                : read(seg.addr, seg.data);
      txn.complete_cycle = base + clock;
      continue;
    }

    ++stats_.batch_native;
    // One count per segment, matching scalar issue of the same ops.
    if (txn.is_write()) stats_.writes += txn.segments.size();
    else stats_.reads += txn.segments.size();
    sim::mem_txn lt;
    lt.id = txn.id;
    lt.op = txn.op;
    lt.master = txn.master; // attribution rides down to the bus beats
    lt.segments.reserve(txn.segments.size());
    // Tag side traffic this txn adds to the lower batch, pushed after the
    // data txn so the batch stays in submission order.
    std::vector<std::pair<addr_t, bytes*>> tag_writes;
    std::vector<std::size_t> new_fetches;
    for (std::size_t si = 0; si < txn.segments.size(); ++si) {
      sim::txn_segment& seg = txn.segments[si];
      const context_id ctx = seg_ctx[si];
      const auto [kc, fallback] = resolve(ctx);
      const keyslot_key& k = contexts_[ctx];
      memory_authenticator* auth = auths_[ctx].get();
      const std::size_t du = k.data_unit_size;
      if (fw_ != nullptr) // the allowed span's one counting check (rule hit)
        (void)fw_->check(txn.master, seg.addr, seg.data.size(), txn.is_write());
      note_domain(txn.master, txn.is_write(), seg.data.size(), /*fault=*/false);
      if (txn.is_write()) {
        staged.emplace_back(seg.data.begin(), seg.data.end());
        if (auth != nullptr && auth->mode() == auth_mode::area) {
          // Seal unit by unit: the expanded encipher replaces the in-place
          // transform; block modes only, so it all lands on the serial core.
          bytes& ct = staged.back();
          for (std::size_t off = 0; off < ct.size(); off += du) {
            const addr_t ua = seg.addr + off;
            std::span<u8> unit = std::span<u8>(ct).subspan(off, du);
            if (auth->covers(ua)) {
              const cycles c = auth->area_encipher(
                  *kc, ua, std::span<const u8>(seg.data).subspan(off, du), unit,
                  /*initial=*/false, /*charge=*/true);
              stats_.crypto_cycles += c;
              ++stats_.units;
              engine_pre += c;
            } else {
              engine_pre += transform_units(*kc, k, ua, unit, /*encrypt=*/true,
                                            fallback, /*charge=*/true);
            }
          }
        } else {
          const cycles c =
              transform_units_bulk(*kc, k, seg.addr, staged.back(),
                                   /*encrypt=*/true, fallback, /*charge=*/true);
          // Write data is in hand at staging time: precomputable pads overlap
          // the bus, block-mode encipher occupies the serial core up front.
          if (kc->pad_precomputable()) par_crypto += c;
          else engine_pre += c;
          if (auth != nullptr) { // mac: new tags ride the same lower batch
            for (std::size_t off = 0; off < staged.back().size(); off += du) {
              const addr_t ua = seg.addr + off;
              if (!auth->covers(ua)) continue;
              auto su = auth->batch_stage_update(
                  ua, std::span<const u8>(staged.back()).subspan(off, du),
                  /*charge=*/true);
              mac_pre += su.compute;
              aux.emplace_back(std::move(su.tag));
              tag_writes.emplace_back(su.tag_addr, &aux.back());
            }
          }
        }
        lt.segments.push_back({seg.addr, std::span<u8>(staged.back())});
      } else {
        lt.segments.push_back(seg);
        const bool is_area = auth != nullptr && auth->mode() == auth_mode::area;
        posts.push_back({kc, &k, seg.addr, seg.data, fallback, lower.size(),
                         is_area ? auth : nullptr, txn.master, {}});
        if (is_area)
          for (std::size_t off = 0; off < seg.data.size(); off += du) {
            const addr_t ua = seg.addr + off;
            if (auth->covers(ua)) posts.back().area_snaps.push_back(auth->area_prepare(ua));
          }
        if (auth != nullptr && auth->mode() == auth_mode::mac) {
          for (std::size_t off = 0; off < seg.data.size(); off += du) {
            const addr_t ua = seg.addr + off;
            if (!auth->covers(ua)) continue;
            pending_ver pv{auth, auth->batch_prepare_verify(ua), lower.size(),
                           seg.data.subspan(off, du), -1, txn.master};
            if (!pv.sv.have_tag) {
              // One fetch per tag line per flush, shared by every unit
              // whose tag packs into it.
              const auto [it, inserted] =
                  tagline_map.try_emplace(pv.sv.tag_line, tag_fetches.size());
              if (inserted) {
                auth->note_batch_tag_fetch();
                aux.emplace_back(memory_authenticator::k_tag_line);
                tag_fetches.push_back({pv.sv.tag_line, 0, &aux.back()});
                new_fetches.push_back(it->second);
              }
              pv.fetch_idx = static_cast<std::ptrdiff_t>(it->second);
            }
            pending.push_back(std::move(pv));
          }
        }
      }
    }
    lower.push_back(std::move(lt));
    flush_txns.push_back(&txn);
    // Tag traffic rides the same batch, attributed to the same master.
    for (const auto& [ta, buf] : tag_writes) {
      sim::mem_txn tt;
      tt.op = sim::txn_op::write;
      tt.master = txn.master;
      tt.segments.push_back({ta, std::span<u8>(*buf)});
      lower.push_back(std::move(tt));
      flush_txns.push_back(nullptr);
    }
    for (const std::size_t fi : new_fetches) {
      tag_fetches[fi].lower_idx = lower.size();
      sim::mem_txn tt;
      tt.op = sim::txn_op::read;
      tt.master = txn.master;
      tt.segments.push_back({tag_fetches[fi].line, std::span<u8>(*tag_fetches[fi].buf)});
      lower.push_back(std::move(tt));
      flush_txns.push_back(nullptr);
    }
  }
  flush_lower();

  // clock now holds slot setup + the causally-scheduled flush makespans +
  // scalar detours (which already folded their crypto into their own time).
  pending_txn_cycles_ += clock;
}

void bus_encryption_engine::install(addr_t base, std::span<const u8> plain) {
  std::size_t off = 0;
  while (off < plain.size()) {
    const auto [ctx, n] = span_at(base + off, plain.size() - off);
    if (ctx == no_context) {
      (void)lower_->write(base + off, plain.subspan(off, n));
    } else {
      bytes tmp(plain.begin() + static_cast<std::ptrdiff_t>(off),
                plain.begin() + static_cast<std::ptrdiff_t>(off + n));
      (void)crypt_span(ctx, base + off, tmp, /*is_write=*/true, false);
    }
    off += n;
  }
}

void bus_encryption_engine::read_plain(addr_t base, std::span<u8> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    const auto [ctx, n] = span_at(base + off, out.size() - off);
    std::span<u8> part = out.subspan(off, n);
    if (ctx == no_context) (void)lower_->read(base + off, part);
    else (void)crypt_span(ctx, base + off, part, /*is_write=*/false, false);
    off += n;
  }
}

} // namespace buscrypt::engine
